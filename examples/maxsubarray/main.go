// Maxsubarray runs the maximum-subarray problem through the hybrid
// framework and cross-checks against Kadane's linear scan. With a constant-
// size combine (T(n) = 2T(n/2) + Θ(1)) the work is leaf-dominated, and the
// leaf batch — one quadruple per element — is exactly the wide, uniform
// kernel GPUs like, so the hybrid schedule assigns almost everything below
// the transfer level to the device.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	const logN = 20
	r := rand.New(rand.NewSource(5))
	in := make([]int32, 1<<logN)
	for i := range in {
		in[i] = int32(r.Intn(2001) - 1000) // signed values: the interesting case
	}

	be := hybriddc.MustSim(hybriddc.HPU1())
	s, err := hybriddc.NewMaxSubarray(in)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	seq, err := hybriddc.RunSequentialCtx(ctx, be, s)
	if err != nil {
		log.Fatal(err)
	}
	want := s.Result()
	fmt.Printf("max subarray sum of 2^%d signed values = %d\n", logN, want)
	fmt.Printf("sequential:      %.6fs\n", seq.Seconds)

	be = hybriddc.MustSim(hybriddc.HPU1())
	s, _ = hybriddc.NewMaxSubarray(in)
	alpha, y := hybriddc.PlanAdvanced(be, s)
	rep, err := hybriddc.RunAdvancedHybridCtx(ctx, be, s, alpha, y)
	if err != nil {
		log.Fatal(err)
	}
	if s.Result() != want {
		log.Fatalf("hybrid result %d != sequential %d", s.Result(), want)
	}
	fmt.Printf("advanced hybrid: %.6fs (%.2fx) at alpha=%.3f y=%d\n",
		rep.Seconds, seq.Seconds/rep.Seconds, alpha, y)
}
