// Matmul runs divide-and-conquer dense matrix multiplication
// (T(n) = 8T(n/2) + Θ(n²)) through the hybrid framework, truncating the
// recursion so the leaves are block products — the paper's §7 suggestion of
// switching to non-recursive kernels at the lowest levels. It also shows the
// numeric model working on a recurrence outside the f(n) = Θ(n^{log_b a})
// family that mergesort belongs to.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro"
)

const (
	dim   = 256 // matrix dimension
	depth = 2   // recursion depth: 8^2 = 64 leaf blocks of 64×64
)

func randomMatrix(n int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	m := make([]float64, n*n)
	for i := range m {
		m[i] = r.Float64()*2 - 1
	}
	return m
}

func main() {
	a := randomMatrix(dim, 1)
	b := randomMatrix(dim, 2)

	// Sequential baseline.
	be := hybriddc.MustSim(hybriddc.HPU1())
	m, err := hybriddc.NewMatMul(a, b, dim, depth)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	seq, err := hybriddc.RunSequentialCtx(ctx, be, m)
	if err != nil {
		log.Fatal(err)
	}
	want := m.Result()
	fmt.Printf("D&C matmul %dx%d, depth %d (leaves: %d blocks of %dx%d) on %s\n\n",
		dim, dim, depth, 1<<(3*depth), dim>>depth, dim>>depth, hybriddc.HPU1().Name)
	fmt.Printf("sequential 1-core: %.4fs\n", seq.Seconds)

	// The advanced hybrid with model-chosen parameters. The recurrence has
	// few levels, so the planner's numeric search does the work here.
	be = hybriddc.MustSim(hybriddc.HPU1())
	m, _ = hybriddc.NewMatMul(a, b, dim, depth)
	alpha, y := hybriddc.PlanAdvanced(be, m)
	rep, err := hybriddc.RunAdvancedHybridCtx(ctx, be, m, alpha, y)
	if err != nil {
		log.Fatal(err)
	}
	checkSame(m.Result(), want)
	fmt.Printf("advanced hybrid:   %.4fs (%.2fx) at alpha=%.3f y=%d\n",
		rep.Seconds, seq.Seconds/rep.Seconds, alpha, y)

	// GPU-only, as a cautionary baseline: the top divide/combine levels
	// have almost no parallelism (one task at the root), so running them
	// as single device work-items is disastrous — exactly why the paper
	// schedules narrow levels on the CPU.
	be = hybriddc.MustSim(hybriddc.HPU1())
	m, _ = hybriddc.NewMatMul(a, b, dim, depth)
	rep, err = hybriddc.RunGPUOnlyCtx(ctx, be, m)
	if err != nil {
		log.Fatal(err)
	}
	checkSame(m.Result(), want)
	fmt.Printf("gpu-only (naive):  %.4fs (%.2fx) — narrow top levels starve the device;\n",
		rep.Seconds, seq.Seconds/rep.Seconds)
	fmt.Println("                   the hybrid schedule exists to avoid exactly this.")
}

func checkSame(got, want []float64) {
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			log.Fatalf("result mismatch at %d: %g != %g", i, got[i], want[i])
		}
	}
}
