// Custom-platform shows the full §6.4 workflow on a user-defined machine:
// define an HPU (here, a beefier 8-core CPU with a mid-range GPU), recover
// its (p, g, γ) parameters with the estimation harness exactly as one would
// on real hardware, feed them to the analytic model, and run the advanced
// hybrid mergesort with the planned division.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/hpu"
	"repro/internal/simcpu"
	"repro/internal/simgpu"
	"repro/internal/workload"
)

// myMachine is a fictional 8-core desktop with a 2048-thread GPU, specified
// the way a user of the library would describe their own hardware.
func myMachine() hybriddc.Platform {
	return hybriddc.Platform{
		Name: "MY1",
		CPU: simcpu.Params{
			Name: "8-core desktop", Cores: 8, ClockGHz: 3.6,
			RateOpsPerSec: 6e8, LLCBytes: 16 << 20, MemBWOpsPerSec: 2.4e9,
			MemWeight: hpu.MemWeight, DispatchOverheadSec: 1e-6,
		},
		GPU: simgpu.Params{
			Name: "mid-range dGPU", SatThreads: 2048, PhysicalPEs: 1024,
			Gamma: 1.0 / 96, HideFactor: 12, BaseRateOpsPerSec: 6e8,
			MemWeight: hpu.MemWeight, StridePenalty: 4, LaunchOverheadSec: 1.5e-5,
		},
		Link: hpu.LinkParams{Name: "PCIe 3.0", LatencySec: 3e-5, SecPerByte: 1.0 / 8e9},
	}
}

func main() {
	pl := myMachine()

	// Step 1: estimate the platform parameters, as §6.4 does once per
	// machine (Figs 5 and 6).
	est, err := hybriddc.EstimatePlatform(pl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated parameters for %s: p=%d g=%d 1/γ=%.0f\n",
		pl.Name, est.P, est.G, est.GammaInv)

	// Step 2: plan the advanced division from the estimated machine.
	const logN = 20
	mach := hybriddc.Machine{P: est.P, G: est.G, Gamma: 1 / est.GammaInv}
	poly, err := hybriddc.NewPolyModel(2, 2, float64(1<<logN), mach)
	if err != nil {
		log.Fatal(err)
	}
	alpha, yf, frac := poly.Optimum()
	y := int(yf + 0.5)
	fmt.Printf("model plan: alpha=%.3f, transfer level y=%d, GPU share %.0f%%\n",
		alpha, y, 100*frac)

	// Step 3: run hybrid mergesort with the planned division.
	in := workload.Uniform(1<<logN, 3)
	be := hybriddc.MustSim(pl)
	s, err := hybriddc.NewMergesort(in)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	seqRep, err := hybriddc.RunSequentialCtx(ctx, be, s)
	if err != nil {
		log.Fatal(err)
	}

	be = hybriddc.MustSim(pl)
	s, _ = hybriddc.NewMergesort(in)
	rep, err := hybriddc.RunAdvancedHybridCtx(ctx, be, s, alpha, y,
		hybriddc.WithCoalesce())
	if err != nil {
		log.Fatal(err)
	}
	if !workload.IsSorted(s.Result()) {
		log.Fatal("output not sorted")
	}
	fmt.Printf("sequential %.4fs, advanced hybrid %.4fs: %.2fx speedup\n",
		seqRep.Seconds, rep.Seconds, seqRep.Seconds/rep.Seconds)
}
