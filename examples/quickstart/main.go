// Quickstart: run the paper's §4.3 divide-and-conquer sum example through
// the generic hybrid framework on the simulated HPU1 platform, and compare
// the three schedules (sequential, CPU breadth-first, advanced hybrid).
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/workload"
)

func main() {
	const logN = 20
	in := workload.Uniform(1<<logN, 42)

	// Single-core recursive baseline (Algorithm 1 / Algorithm 4).
	be := hybriddc.MustSim(hybriddc.HPU1())
	s, err := hybriddc.NewSum(in)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	seq, err := hybriddc.RunSequentialCtx(ctx, be, s)
	if err != nil {
		log.Fatal(err)
	}
	total := s.Result()
	fmt.Printf("sum(2^%d elements) = %d\n", logN, total)
	fmt.Printf("sequential:        %.6fs\n", seq.Seconds)

	// Breadth-first on all four CPU cores (Algorithm 2).
	be = hybriddc.MustSim(hybriddc.HPU1())
	s, _ = hybriddc.NewSum(in)
	bf, err := hybriddc.RunBreadthFirstCPUCtx(ctx, be, s)
	if err != nil {
		log.Fatal(err)
	}
	mustEqual(s.Result(), total)
	fmt.Printf("breadth-first CPU: %.6fs (%.2fx)\n", bf.Seconds, seq.Seconds/bf.Seconds)

	// Advanced hybrid (§5.2): the model picks the work ratio α and the
	// transfer level y, then the CPU and GPU run concurrently with a
	// single round trip over the link.
	be = hybriddc.MustSim(hybriddc.HPU1())
	s, _ = hybriddc.NewSum(in)
	alpha, y := hybriddc.PlanAdvanced(be, s)
	rep, err := hybriddc.RunAdvancedHybridCtx(ctx, be, s, alpha, y,
		hybriddc.WithCoalesce())
	if err != nil {
		log.Fatal(err)
	}
	mustEqual(s.Result(), total)
	fmt.Printf("advanced hybrid:   %.6fs (%.2fx) at alpha=%.3f y=%d\n",
		rep.Seconds, seq.Seconds/rep.Seconds, alpha, y)
	fmt.Println()
	fmt.Println("note: a sum's combine is Θ(1) work per task, so shipping data to the")
	fmt.Println("GPU buys little — the hybrid schedule wins far more on mergesort-like")
	fmt.Println("algorithms with Θ(n) combines (see examples/mergesort).")
}

func mustEqual(got, want int64) {
	if got != want {
		log.Fatalf("result mismatch: %d != %d", got, want)
	}
}
