// Native-sort runs the same generic framework on real goroutines instead of
// the simulator: a breadth-first parallel mergesort on this machine's cores,
// timed with the wall clock. It demonstrates that the library is a usable
// multi-core divide-and-conquer runtime, not only a reproduction harness.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"

	"repro"
	"repro/internal/workload"
)

func main() {
	const logN = 22
	in := workload.Uniform(1<<logN, 11)
	workers := runtime.GOMAXPROCS(0)
	fmt.Printf("native mergesort of 2^%d int32 on %d real cores\n\n", logN, workers)

	// Sequential baseline on one worker.
	be, err := hybriddc.NewNative(hybriddc.NativeConfig{CPUWorkers: 1})
	if err != nil {
		log.Fatal(err)
	}
	s, err := hybriddc.NewMergesort(in)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	seq, err := hybriddc.RunSequentialCtx(ctx, be, s)
	if err != nil {
		log.Fatal(err)
	}
	be.Close()
	if !workload.IsSorted(s.Result()) {
		log.Fatal("sequential output not sorted")
	}
	fmt.Printf("sequential (1 worker):      %.4fs\n", seq.Seconds)

	// Breadth-first on all cores.
	be, err = hybriddc.NewNative(hybriddc.NativeConfig{CPUWorkers: workers})
	if err != nil {
		log.Fatal(err)
	}
	defer be.Close()
	s, _ = hybriddc.NewMergesort(in)
	bf, err := hybriddc.RunBreadthFirstCPUCtx(ctx, be, s)
	if err != nil {
		log.Fatal(err)
	}
	if !workload.IsSorted(s.Result()) {
		log.Fatal("parallel output not sorted")
	}
	fmt.Printf("breadth-first (%d workers): %.4fs  (%.2fx)\n",
		workers, bf.Seconds, seq.Seconds/bf.Seconds)
	fmt.Println()
	fmt.Println("note: the top merge levels are sequential, which caps mergesort's")
	fmt.Println("multi-core speedup near 2.5-3x on 4 cores — the very observation")
	fmt.Println("that motivates offloading the wide levels to a GPU in the paper.")
}
