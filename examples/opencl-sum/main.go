// Opencl-sum reimplements the paper's §4.3 GPU sum (Algorithm 5) directly
// against the OpenCL-style host API, the way the paper's own host programs
// were written: create a context and an in-order queue, ship the array to a
// device buffer, launch one kernel per recursion level with get_global_id
// semantics, and read the result back. It shows the substrate beneath the
// higher-level framework of the other examples.
package main

import (
	"fmt"
	"log"

	"repro/internal/hpu"
	"repro/internal/opencl"
	"repro/internal/workload"
)

func main() {
	const n = 1 << 20
	in := workload.Uniform(n, 9)

	ctx, err := opencl.CreateContext(hpu.HPU1())
	if err != nil {
		log.Fatal(err)
	}
	dev := ctx.Device()
	fmt.Printf("device: %s (%d PEs, saturates at %d work-items, 1/γ = %.0f)\n\n",
		dev.Name, dev.ComputeUnit, dev.Saturation, 1/dev.Gamma)

	queue := opencl.CreateQueue(ctx)
	input, err := opencl.CreateBuffer[int32](ctx, n)
	if err != nil {
		log.Fatal(err)
	}
	sums, err := opencl.CreateBuffer[int64](ctx, n)
	if err != nil {
		log.Fatal(err)
	}
	if err := opencl.EnqueueWrite(queue, input, in); err != nil {
		log.Fatal(err)
	}

	// Widen the int32 input into 64-bit partial sums on the device.
	inMem, sumMem := input.Mem(), sums.Mem()
	if err := opencl.EnqueueNDRange(queue, func(wi opencl.WorkItem) {
		sumMem[wi.Global] = int64(inMem[wi.Global])
	}, n, 64, opencl.LaunchCost{Ops: 1, MemWords: 3, Coalesced: true}); err != nil {
		log.Fatal(err)
	}

	// Algorithm 5: for each level with k subproblems, work-item id does
	// sums[id] += sums[id+k]. One kernel launch per level of the
	// breadth-first recursion tree, as in §4.2.
	launches := 0
	for k := n / 2; k >= 1; k /= 2 {
		k := k
		err := opencl.EnqueueNDRange(queue, func(wi opencl.WorkItem) {
			sumMem[wi.Global] += sumMem[wi.Global+k]
		}, k, 64, opencl.LaunchCost{Ops: 1, MemWords: 3, Coalesced: true})
		if err != nil {
			log.Fatal(err)
		}
		launches++
	}
	out := make([]int64, 1)
	if err := opencl.EnqueueRead(queue, sums, out); err != nil {
		log.Fatal(err)
	}
	start := ctx.Now()
	queue.Finish()

	var want int64
	for _, v := range in {
		want += int64(v)
	}
	fmt.Printf("sum(2^20 elements) = %d (reference %d)\n", out[0], want)
	fmt.Printf("%d kernel launches, %.6fs of device+link virtual time\n",
		launches+1, ctx.Now()-start)
	if out[0] != want {
		log.Fatal("MISMATCH")
	}
}
