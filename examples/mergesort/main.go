// Mergesort walks through the paper's §6 case study end to end on the
// simulated HPU1: let the §5.2 model choose the work division, then compare
// every strategy — the 1-core recursive baseline, the 4-core breadth-first
// version, the basic hybrid, the advanced hybrid (with and without the §6.3
// coalescing transformation), and the GPU-only parallel-merge baseline of
// Fig 9.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/algos/mergesort"
	"repro/internal/workload"
)

const logN = 20

// run executes one freshly-built sorter through fn and returns its makespan.
func run(in []int32, fn func(*hybriddc.Sim, *mergesort.Sorter) (hybriddc.Report, error)) float64 {
	be := hybriddc.MustSim(hybriddc.HPU1())
	s, err := hybriddc.NewMergesort(in)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := fn(be, s)
	if err != nil {
		log.Fatal(err)
	}
	if !workload.IsSorted(s.Result()) {
		log.Fatalf("%s: output not sorted", rep.Strategy)
	}
	return rep.Seconds
}

func main() {
	in := workload.Uniform(1<<logN, 7)
	fmt.Printf("hybrid mergesort of n = 2^%d uniform random int32 on %s\n\n",
		logN, hybriddc.HPU1().Name)

	ctx := context.Background()
	seq := run(in, func(be *hybriddc.Sim, s *mergesort.Sorter) (hybriddc.Report, error) {
		return hybriddc.RunSequentialCtx(ctx, be, s)
	})
	fmt.Printf("sequential 1-core   %.4fs\n", seq)

	bf := run(in, func(be *hybriddc.Sim, s *mergesort.Sorter) (hybriddc.Report, error) {
		return hybriddc.RunBreadthFirstCPUCtx(ctx, be, s)
	})
	fmt.Printf("breadth-first CPU   %.4fs  (%.2fx)\n", bf, seq/bf)

	x, _ := hybriddc.BasicCrossover(2, hybriddc.MachineOf(hybriddc.MustSim(hybriddc.HPU1())))
	basic := run(in, func(be *hybriddc.Sim, s *mergesort.Sorter) (hybriddc.Report, error) {
		return hybriddc.RunBasicHybridCtx(ctx, be, s, x, hybriddc.WithCoalesce())
	})
	fmt.Printf("basic hybrid (x=%d) %.4fs  (%.2fx)\n", x, basic, seq/basic)

	planner, _ := hybriddc.NewMergesort(in)
	alpha, y := hybriddc.PlanAdvanced(hybriddc.MustSim(hybriddc.HPU1()), planner)
	fmt.Printf("\nmodel: advanced division alpha=%.3f, transfer level y=%d\n", alpha, y)

	adv := run(in, func(be *hybriddc.Sim, s *mergesort.Sorter) (hybriddc.Report, error) {
		return hybriddc.RunAdvancedHybridCtx(ctx, be, s, alpha, y, hybriddc.WithCoalesce())
	})
	fmt.Printf("advanced hybrid     %.4fs  (%.2fx)\n", adv, seq/adv)

	advRaw := run(in, func(be *hybriddc.Sim, s *mergesort.Sorter) (hybriddc.Report, error) {
		return hybriddc.RunAdvancedHybridCtx(ctx, be, s, alpha, y)
	})
	fmt.Printf("  without coalescing %.4fs (%.2fx)\n", advRaw, seq/advRaw)

	// GPU-only baseline with the parallel binary-search merge (Fig 9).
	be := hybriddc.MustSim(hybriddc.HPU1())
	ps, err := hybriddc.NewParallelMergesort(in)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := hybriddc.RunGPUOnlyCtx(ctx, be, ps)
	if err != nil {
		log.Fatal(err)
	}
	if !workload.IsSorted(ps.Result()) {
		log.Fatal("gpu-only output not sorted")
	}
	fmt.Printf("gpu-only parallel   %.4fs total, %.4fs device  (%.2fx, %.2fx sort-only)\n",
		rep.Seconds, rep.GPUPortionSeconds, seq/rep.Seconds, seq/rep.GPUPortionSeconds)
}
