package hybriddc_test

import (
	"context"
	"fmt"

	"repro"
	"repro/internal/workload"
)

// ExamplePlanAdvanced reproduces the paper's §5.2.2 example: for mergesort
// on HPU1 with n = 2^24, the model chooses α ≈ 0.16 and transfer level ≈ 10.
func ExamplePlanAdvanced() {
	s, _ := hybriddc.NewMergesort(make([]int32, 1<<24))
	alpha, y := hybriddc.PlanAdvanced(hybriddc.MustSim(hybriddc.HPU1()), s)
	fmt.Printf("alpha=%.2f y=%d\n", alpha, y)
	// Output: alpha=0.16 y=9
}

// ExampleRunAdvancedHybridCtx sorts with the §5.2 advanced work division on
// the simulated HPU1 and verifies the result.
func ExampleRunAdvancedHybridCtx() {
	in := workload.Uniform(1<<16, 1)
	s, _ := hybriddc.NewMergesort(in)
	be := hybriddc.MustSim(hybriddc.HPU1())
	rep, err := hybriddc.RunAdvancedHybridCtx(context.Background(), be, s, 0.17, 8,
		hybriddc.WithCoalesce())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(rep.Strategy, workload.IsSorted(s.Result()))
	// Output: advanced-hybrid true
}

// ExampleEstimatePlatform recovers the Table 2 parameters of HPU1 through
// the paper's §6.4 estimation procedures.
func ExampleEstimatePlatform() {
	res, _ := hybriddc.EstimatePlatform(hybriddc.HPU1())
	fmt.Printf("p=%d g=%d 1/gamma=%.0f\n", res.P, res.G, res.GammaInv)
	// Output: p=4 g=4096 1/gamma=160
}

// ExampleBasicCrossover computes the §5.1 level at which execution moves to
// the GPU: ⌈log2(p/γ)⌉ = ⌈log2(640)⌉ = 10 on HPU1.
func ExampleBasicCrossover() {
	x, ok := hybriddc.BasicCrossover(2, hybriddc.MachineOf(hybriddc.MustSim(hybriddc.HPU1())))
	fmt.Println(x, ok)
	// Output: 10 true
}

// ExampleNewServerPool serves concurrent GPU-bound jobs over a two-device
// pool: load-aware placement spreads the jobs across the devices while
// every result stays bit-identical to a single-device run.
func ExampleNewServerPool() {
	pool := []hybriddc.Backend{
		hybriddc.MustSim(hybriddc.HPU1()),
		hybriddc.MustSim(hybriddc.HPU1()),
	}
	srv, err := hybriddc.NewServerPool(pool,
		hybriddc.WithPlacement(hybriddc.PlaceModeledWork))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer srv.Close()

	var handles []*hybriddc.JobHandle
	var sorted []func() bool
	for i := 0; i < 4; i++ {
		s, _ := hybriddc.NewMergesort(workload.Uniform(1<<12, int64(i+1)))
		h, err := srv.Submit(context.Background(), hybriddc.JobSpec{
			Alg: s, Strategy: hybriddc.JobAdvancedHybrid, Alpha: 0.17, Y: 6,
		})
		if err != nil {
			fmt.Println(err)
			return
		}
		handles = append(handles, h)
		sorted = append(sorted, func() bool { return workload.IsSorted(s.Result()) })
	}
	ok := true
	for i, h := range handles {
		if _, err := h.Wait(context.Background()); err != nil || !sorted[i]() {
			ok = false
		}
	}
	fmt.Println(len(srv.Stats().Devices), ok)
	// Output: 2 true
}

// ExampleNewSum runs the paper's §4.3 divide-and-conquer sum.
func ExampleNewSum() {
	s, _ := hybriddc.NewSum([]int32{3, 1, 4, 1, 5, 9, 2, 6})
	hybriddc.RunBreadthFirstCPUCtx(context.Background(), hybriddc.MustSim(hybriddc.HPU2()), s)
	fmt.Println(s.Result())
	// Output: 31
}
