package hybriddc

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Observability surface: a dependency-free metrics registry and a span
// recorder, attachable to any executor run or Server with functional
// options. Both are no-ops when absent — a run without WithMetrics or
// WithSpanRecorder pays nothing.

// Metrics is a registry of counters, gauges and histograms. Instruments are
// created on first use and are safe for concurrent use; Snapshot, WriteJSON
// and PublishExpvar expose the current values. A nil *Metrics disables
// collection at zero cost.
type Metrics = metrics.Registry

// MetricsSnapshot is a point-in-time copy of every instrument in a registry.
type MetricsSnapshot = metrics.Snapshot

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return metrics.NewRegistry() }

// WithMetrics directs a run's execution metrics into the registry: per-level
// batch latency histograms per unit, CPU/GPU busy and idle time, and
// transfer bytes/counts split by direction. Metric names and semantics are
// listed in DESIGN.md §9.
func WithMetrics(reg *Metrics) Option { return core.WithMetrics(reg) }

// WithSpanRecorder records every batch and transfer of the run as spans in
// rec, which can then be summarized (Utilization), rendered as an ASCII
// Gantt chart, or exported as Chrome trace-event JSON (WriteChromeTrace).
// Unlike WithTrace, which prints a one-shot summary, the recorder is
// inspectable programmatically and can be shared across runs.
func WithSpanRecorder(rec *TraceRecorder) Option {
	return core.WithBackendWrapper(func(be core.Backend) core.Backend {
		return trace.Wrap(be, rec)
	})
}

// Tracing types, re-exported from the recorder's package.
type (
	// Span is one recorded interval: a batch on a unit, or a link transfer,
	// stamped with its job ID and recursion level.
	Span = trace.Span
	// TraceUnit identifies a resource lane in the timeline.
	TraceUnit = trace.Unit
)

// The units recorded by a traced backend.
const (
	// TraceUnitCPU is the CPU lane.
	TraceUnitCPU = trace.UnitCPU
	// TraceUnitGPU is the GPU lane.
	TraceUnitGPU = trace.UnitGPU
	// TraceUnitLink is the host↔device link lane.
	TraceUnitLink = trace.UnitLink
)

// NewTraceRecorderLimit returns a recorder retaining at most limit spans in
// a ring buffer (the newest span evicts the oldest; Dropped reports how
// many were evicted). Use it for continuously-traced servers, where an
// unbounded recorder would grow without limit.
func NewTraceRecorderLimit(limit int) *TraceRecorder { return trace.NewRecorderLimit(limit) }
