package hybriddc

import "repro/internal/dcerr"

// The framework's error taxonomy: every public constructor and executor
// wraps exactly one of these sentinels with %w, so callers can classify any
// failure with errors.Is regardless of which layer produced it. See
// DESIGN.md ("Error taxonomy") for the grouping rationale.
var (
	// ErrNotPowerOfTwo: the instance size is not a power of two >= 2.
	ErrNotPowerOfTwo = dcerr.ErrNotPowerOfTwo
	// ErrBadShape: structurally invalid instance data (mismatched operand
	// lengths, undersized inputs, out-of-range recursion depths).
	ErrBadShape = dcerr.ErrBadShape
	// ErrBadAlpha: a CPU work fraction α outside [0, 1].
	ErrBadAlpha = dcerr.ErrBadAlpha
	// ErrBadLevel: a transfer, split, or crossover level outside the tree.
	ErrBadLevel = dcerr.ErrBadLevel
	// ErrBadParam: an invalid machine, platform, or configuration value.
	ErrBadParam = dcerr.ErrBadParam
	// ErrNoGPU: a hybrid or GPU-only strategy on a CPU-only backend.
	ErrNoGPU = dcerr.ErrNoGPU
	// ErrQueueFull: the Server's bounded admission queue rejected the job.
	ErrQueueFull = dcerr.ErrQueueFull
	// ErrCanceled: an execution stopped at a level boundary because its
	// context was canceled or its deadline expired; the Report is partial.
	ErrCanceled = dcerr.ErrCanceled
	// ErrBackendClosed: an operation on a backend after Close.
	ErrBackendClosed = dcerr.ErrBackendClosed
	// ErrServerClosed: a submission to a Server after Close.
	ErrServerClosed = dcerr.ErrServerClosed
	// ErrDeviceFault: the device path failed mid-run (kernel error, transfer
	// corruption, or a close race); the Report is partial. Retry and
	// fallback policies (WithRetry, WithFallback) classify on it.
	ErrDeviceFault = dcerr.ErrDeviceFault
	// ErrDegraded: the Server's circuit breaker is shedding GPU-bound work;
	// resubmit later, on the CPU path, or with WithFallback(CPUOnly).
	ErrDegraded = dcerr.ErrDegraded
	// ErrRetriesExhausted: every attempt allowed by WithRetry faulted; the
	// error also matches ErrDeviceFault (the last attempt's failure).
	ErrRetriesExhausted = dcerr.ErrRetriesExhausted
)
