# Development entry points. `make check` is the CI gate: full build, vet,
# race-enabled tests, and the serving layer's self-checking load smoke.

GO ?= go

.PHONY: all build vet test race smoke check bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# 5-second self-checking load test of the job server on the native backend:
# mixed algorithms and strategies, random priorities and cancellations.
# Exits nonzero on any failed job, accounting mismatch, or goroutine leak.
smoke:
	$(GO) run ./cmd/hpuserve --smoke

check: build vet race smoke

bench:
	$(GO) test -bench=. -benchmem .
