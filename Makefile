# Development entry points. `make check` is the CI gate: full build, vet,
# race-enabled tests, and the serving layer's self-checking load smoke.

GO ?= go

.PHONY: all build vet test test-short race fuzz-smoke cover smoke obs-smoke chaos-smoke api-smoke check bench bench-serve bench-cpu bench-multi bench-alloc bench-auto

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Developer-sized sweep: the 240-job soaks in cmd/hpuserve skip under
# -short, keeping this under ~30s of wall clock.
test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Seed-corpus replay of the wire-format fuzzers (no fuzzing engine, just the
# checked-in testdata/fuzz crashers and edge cases as ordinary table rows).
# Continuous fuzzing is `go test -fuzz=FuzzReadInt32Frame ./internal/api/`
# and friends; this target is the cheap regression gate CI runs on every
# check.
fuzz-smoke:
	$(GO) test -run '^Fuzz' ./internal/api/

# Coverage gate. COVER_BASELINE is the recorded floor for the -short suite's
# total statement coverage; lower it only with a PR that explains why.
COVER_BASELINE = 60.0

cover:
	$(GO) test -short -coverprofile=cover.out ./...
	@$(GO) tool cover -func=cover.out | tail -n 1
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	awk -v t=$$total -v b=$(COVER_BASELINE) 'BEGIN { \
		if (t + 0 < b + 0) { printf "cover: total %.1f%% is below the %.1f%% baseline\n", t, b; exit 1 } \
		printf "cover: total %.1f%% meets the %.1f%% baseline\n", t, b }'

# 5-second self-checking load test of the job server on the native backend:
# mixed algorithms and strategies, random priorities and cancellations.
# Exits nonzero on any failed job, accounting mismatch, or goroutine leak.
smoke:
	$(GO) run ./cmd/hpuserve --smoke

# Observability smoke: same load with the HTTP endpoints served on a
# loopback port, then a self-scrape of /metrics asserting the queue-depth,
# per-priority latency, and transfer-byte metrics advanced under load.
obs-smoke:
	$(GO) run ./cmd/hpuserve --obs-smoke --duration 2s

# Chaos soak under the race detector: 240 jobs through a seeded fault
# injector (~20% device-fault rate), retry/hedge/fallback policies and the
# circuit breaker active. Exits nonzero on any wrong result, unbounded
# shedding, silent reliability metrics, or goroutine leak; writes the fault
# report CI uploads as an artifact. The second run soaks a 2-device pool
# with faults injected into one device only: that device must trip its
# breaker and auto-drain, every job must still verify, and no healthy job
# may be shed with ErrDegraded.
chaos-smoke:
	$(GO) run -race ./cmd/hpuserve --chaos --chaos-report CHAOS_report.json
	$(GO) run -race ./cmd/hpuserve --chaos --chaos-devices 2 --chaos-fault-rate 0.4 --chaos-report CHAOS_pool_report.json

# Remote-serving smoke over real TCP: boots the HTTP/JSON job API, drives 64
# concurrent clients with a mixed mergesort/scan/sum workload (every result
# verified bit-identical against a local reference), asserts overload
# surfaces as 429 + Retry-After, streams /events for per-level progress,
# scrapes /metrics, then SIGTERMs itself and asserts the drain refuses new
# submissions while completing every in-flight job before the listener
# closes.
api-smoke:
	$(GO) run ./cmd/hpuserve --api-smoke

check: build vet race fuzz-smoke smoke

bench:
	$(GO) test -bench=. -benchmem .

# Fused vs unfused serving throughput on the simulator: 64 GPU-only jobs at
# three sizes through a plain and a fusing server, timed in deterministic
# virtual seconds and written to BENCH_serve.json. Exits nonzero if any
# per-job result differs between the two or the small-job speedup falls
# below the 1.5x acceptance floor.
bench-serve:
	$(GO) run ./cmd/hpuserve --bench-fusion --bench-out BENCH_serve.json

# Breadth-first CPU executor: legacy channel pool vs work-stealing engine vs
# engine with automatic leaf coarsening, for mergesort/dcsum/scan at three
# sizes (every run verified bit-identical against the sequential baseline),
# plus the saturated-dispatch comparison where the engine's 2x acceptance
# floor is enforced. Writes BENCH_cpu.json and a markdown table for the CI
# job summary.
bench-cpu:
	$(GO) run ./cmd/hpuserve --bench-cpu --bench-cpu-out BENCH_cpu.json --bench-cpu-summary BENCH_cpu.md

# Multi-device serving throughput on the simulator: the same GPU-bound
# 64-job mix through pools of 1, 2 and 4 devices, timed in deterministic
# virtual seconds (pool makespan = slowest device's clock). Writes
# BENCH_multidev.json; exits nonzero if any result diverges from the
# single-device run or the 2-device pool misses the 1.6x speedup floor.
bench-multi:
	$(GO) run ./cmd/hpuserve --bench-multi --bench-multi-out BENCH_multidev.json

# Allocation-regression gate for the zero-copy hot path: -benchmem profiles
# of the served submit path and the fused GPU executor with the buffer pool
# disabled vs enabled, plus the JSON vs binary API round trip at 1M
# elements over real TCP. Writes BENCH_alloc.json; exits nonzero if pooling
# regresses submit allocs/op, the fused path's bytes/op are not at least
# halved, the binary wire is below 2x, or the two wire formats disagree.
bench-alloc:
	$(GO) run ./cmd/hpuserve --bench-alloc --bench-alloc-out BENCH_alloc.json

# Strategy Auto vs every fixed strategy on the simulated HPU1, across a
# mergesort size sweep spanning the CPU/GPU crossover. The auto server's
# calibrator is warmed with fixed-strategy training traffic, then each size
# is measured once in deterministic virtual seconds. Writes BENCH_auto.json;
# exits nonzero if auto strays more than 10% from the best fixed strategy at
# any size, never beats the worst fixed strategy by 1.5x, or any result is
# not bit-identical to the plain-Go sort.
bench-auto:
	$(GO) run ./cmd/hpuserve --bench-auto --bench-auto-out BENCH_auto.json
