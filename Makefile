# Development entry points. `make check` is the CI gate: full build, vet,
# race-enabled tests, and the serving layer's self-checking load smoke.

GO ?= go

.PHONY: all build vet test race smoke obs-smoke check bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# 5-second self-checking load test of the job server on the native backend:
# mixed algorithms and strategies, random priorities and cancellations.
# Exits nonzero on any failed job, accounting mismatch, or goroutine leak.
smoke:
	$(GO) run ./cmd/hpuserve --smoke

# Observability smoke: same load with the HTTP endpoints served on a
# loopback port, then a self-scrape of /metrics asserting the queue-depth,
# per-priority latency, and transfer-byte metrics advanced under load.
obs-smoke:
	$(GO) run ./cmd/hpuserve --obs-smoke --duration 2s

check: build vet race smoke

bench:
	$(GO) test -bench=. -benchmem .
