// Package api exposes a serve.Server over HTTP/JSON — the wire protocol
// that turns the in-process serving layer (bounded admission, weighted-fair
// dispatch, reliability policies, device pool) into a remote job service.
// DESIGN.md §14 documents the protocol; internal/api/client is the matching
// typed Go client.
//
// Routes:
//
//	POST /v1/jobs             submit a job (JobRequest → JobAccepted)
//	GET  /v1/jobs/{id}        job status (JobStatus)
//	GET  /v1/jobs/{id}/result block for the result (JobResult)
//	GET  /v1/jobs/{id}/events SSE stream of per-level progress spans
//	POST /v1/drain/{device}   drain a pool device out of rotation
//	GET  /metrics             JSON snapshot of the metrics registry
//	GET  /healthz             liveness (200, or 503 while draining)
//
// Error responses carry an ErrorBody whose Kind is a row of
// dcerr.HTTPTable, the single sentinel→status mapping shared by server and
// client, so a remote caller sees backpressure (429 + Retry-After on a full
// admission queue) and breaker state (503 on a shed GPU path) exactly as an
// in-process caller sees ErrQueueFull and ErrDegraded.
package api

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dcerr"
	"repro/internal/serve"
)

// JobRequest is the POST /v1/jobs payload.
type JobRequest struct {
	// Algorithm selects the instance kind: "mergesort", "scan" or "sum".
	Algorithm string `json:"algorithm"`
	// Data is the instance input (power-of-two length).
	Data []int32 `json:"data"`
	// Strategy selects the executor: "seq-1cpu", "bf-cpu", "basic-hybrid",
	// "advanced-hybrid", "gpu-only" (the serve.Strategy names) or "auto",
	// which lets the server's online calibrator pick the cheapest strategy
	// for this instance at dispatch. Defaults to "bf-cpu".
	Strategy string `json:"strategy,omitempty"`
	// Alpha and Y parameterize "advanced-hybrid"; Crossover parameterizes
	// "basic-hybrid".
	Alpha     float64 `json:"alpha,omitempty"`
	Y         int     `json:"y,omitempty"`
	Crossover int     `json:"crossover,omitempty"`
	// Priority is the weighted-fair scheduling weight (≥ 1; 0 means 1).
	Priority int `json:"priority,omitempty"`
	// Coalesce applies the §6.3 coalescing layout around the device phase.
	Coalesce bool `json:"coalesce,omitempty"`
	// Reliability is the job's optional fault-handling policy.
	Reliability *Reliability `json:"reliability,omitempty"`
}

// Reliability is the wire form of the serving layer's per-job reliability
// policy (serve.WithRetry and friends). The server owns the payload, so
// re-executing policies need no client-side fresh-instance factory.
type Reliability struct {
	// MaxRetries re-executes a device-faulted job up to this many more times.
	MaxRetries int `json:"max_retries,omitempty"`
	// BackoffMS is the pause between retry attempts, in milliseconds.
	BackoffMS int64 `json:"backoff_ms,omitempty"`
	// DeadlineMS bounds the job's total execution budget, in milliseconds.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// HedgeMS, when positive, starts a CPU duplicate of a straggling
	// GPU-bound job after this many milliseconds; first result wins.
	HedgeMS int64 `json:"hedge_ms,omitempty"`
	// Fallback selects the degradation path: "" (none) or "cpu-only".
	Fallback string `json:"fallback,omitempty"`
}

// JobAccepted is the POST /v1/jobs success response.
type JobAccepted struct {
	// ID is the job's server-assigned identifier, used in every other route.
	ID uint64 `json:"id"`
	// Status is "queued".
	Status string `json:"status"`
}

// Report is the wire form of core.Report.
type Report struct {
	Algorithm string `json:"algorithm"`
	Strategy  string `json:"strategy"`
	// ChosenStrategy is set for jobs submitted with "strategy": "auto": the
	// strategy the server's calibrator selected (which the Strategy field
	// then reflects, unless a fallback or hedge re-ran the job elsewhere).
	ChosenStrategy    string  `json:"chosen_strategy,omitempty"`
	Seconds           float64 `json:"seconds"`
	CPUPortionSeconds float64 `json:"cpu_portion_seconds,omitempty"`
	GPUPortionSeconds float64 `json:"gpu_portion_seconds,omitempty"`
	Partial           bool    `json:"partial,omitempty"`
}

// JobStatus is the GET /v1/jobs/{id} response. State is "running" until the
// job settles (queued jobs are "running" too — the admission queue is part
// of the service), then "done"; a failed job is "done" with Error set.
type JobStatus struct {
	ID    uint64 `json:"id"`
	State string `json:"state"`
	// Error is the job's terminal error (done jobs only); its Kind matches
	// dcerr.HTTPTable so clients can restore the sentinel.
	Error *ErrorBody `json:"error,omitempty"`
	// Report is the job's execution report (done jobs only; partial for
	// canceled runs).
	Report *Report `json:"report,omitempty"`
	// Attempts, HedgeWon and FellBack mirror the Handle accessors: how many
	// executions ran, and whether the hedge or the CPU fallback produced the
	// result.
	Attempts int  `json:"attempts,omitempty"`
	HedgeWon bool `json:"hedge_won,omitempty"`
	FellBack bool `json:"fell_back,omitempty"`
	// QueueWaitSeconds is how long the job waited for dispatch.
	QueueWaitSeconds float64 `json:"queue_wait_seconds,omitempty"`
}

// JobResult is the GET /v1/jobs/{id}/result response. Exactly one of the
// payload fields is set, matching the job's algorithm.
type JobResult struct {
	ID     uint64  `json:"id"`
	Report Report  `json:"report"`
	Sorted []int32 `json:"sorted,omitempty"` // mergesort
	Scan   []int64 `json:"scan,omitempty"`   // scan
	Sum    *int64  `json:"sum,omitempty"`    // sum
}

// ErrorBody is the JSON body of every non-2xx response.
type ErrorBody struct {
	// Error is the human-readable message.
	Error string `json:"error"`
	// Kind is the stable wire label from dcerr.HTTPTable ("" when the error
	// is outside the taxonomy, e.g. a malformed request body).
	Kind string `json:"kind,omitempty"`
}

// Event is one SSE event payload on GET /v1/jobs/{id}/events. Span events
// stream per-level execution progress (Type "span"); the final event is
// Type "done" carrying the job's terminal status.
type Event struct {
	Type string `json:"type"` // "status", "span" or "done"
	// Span fields (Type "span"): one recorded execution interval. Unit is
	// "cpu", "gpu", "link", "queue", "job" or "attempt"; Level is the
	// recursion level for unit spans; Start and End are backend seconds.
	Unit  string  `json:"unit,omitempty"`
	Level int     `json:"level,omitempty"`
	Label string  `json:"label,omitempty"`
	Start float64 `json:"start,omitempty"`
	End   float64 `json:"end,omitempty"`
	// Status is set on "status" (initial state) and "done" (terminal) events.
	Status *JobStatus `json:"status,omitempty"`
}

// RequestTimeoutHeader carries the caller's deadline, propagated into the
// job's execution context on submit and bounding the wait on result reads.
// The value is a Go duration string ("1.5s") or a plain number of seconds.
const RequestTimeoutHeader = "Request-Timeout"

// ParseTimeout parses a RequestTimeoutHeader value.
func ParseTimeout(v string) (time.Duration, error) {
	if v == "" {
		return 0, nil
	}
	if d, err := time.ParseDuration(v); err == nil {
		if d <= 0 {
			return 0, fmt.Errorf("api: non-positive timeout %q: %w", v, dcerr.ErrBadParam)
		}
		return d, nil
	}
	if secs, err := strconv.ParseFloat(v, 64); err == nil {
		if secs <= 0 {
			return 0, fmt.Errorf("api: non-positive timeout %q: %w", v, dcerr.ErrBadParam)
		}
		return time.Duration(secs * float64(time.Second)), nil
	}
	return 0, fmt.Errorf("api: bad %s %q: %w", RequestTimeoutHeader, v, dcerr.ErrBadParam)
}

// ParseStrategy maps a wire strategy name to serve.Strategy. The names are
// the serve.Strategy.String() values; "" defaults to bf-cpu.
func ParseStrategy(s string) (serve.Strategy, error) {
	switch strings.ToLower(s) {
	case "", "bf-cpu":
		return serve.BreadthFirstCPU, nil
	case "seq-1cpu", "sequential":
		return serve.Sequential, nil
	case "basic-hybrid":
		return serve.BasicHybrid, nil
	case "advanced-hybrid":
		return serve.AdvancedHybrid, nil
	case "gpu-only":
		return serve.GPUOnly, nil
	case "auto":
		return serve.Auto, nil
	}
	return 0, fmt.Errorf("api: unknown strategy %q: %w", s, dcerr.ErrBadParam)
}

// Options converts the wire reliability policy to serving-layer options.
func (r *Reliability) Options() ([]core.Option, error) {
	if r == nil {
		return nil, nil
	}
	if r.MaxRetries < 0 || r.BackoffMS < 0 || r.DeadlineMS < 0 || r.HedgeMS < 0 {
		return nil, fmt.Errorf("api: negative reliability field: %w", dcerr.ErrBadParam)
	}
	var opts []core.Option
	if r.MaxRetries > 0 {
		opts = append(opts, serve.WithRetry(r.MaxRetries, time.Duration(r.BackoffMS)*time.Millisecond))
	}
	if r.DeadlineMS > 0 {
		opts = append(opts, serve.WithDeadline(time.Duration(r.DeadlineMS)*time.Millisecond))
	}
	if r.HedgeMS > 0 {
		opts = append(opts, serve.WithHedge(time.Duration(r.HedgeMS)*time.Millisecond))
	}
	switch strings.ToLower(r.Fallback) {
	case "":
	case "cpu-only":
		opts = append(opts, serve.WithFallback(serve.CPUOnly))
	default:
		return nil, fmt.Errorf("api: unknown fallback %q: %w", r.Fallback, dcerr.ErrBadParam)
	}
	return opts, nil
}

// wireReport converts a core.Report.
func wireReport(r core.Report) Report {
	return Report{
		Algorithm:         r.Algorithm,
		Strategy:          r.Strategy,
		ChosenStrategy:    r.AutoStrategy,
		Seconds:           r.Seconds,
		CPUPortionSeconds: r.CPUPortionSeconds,
		GPUPortionSeconds: r.GPUPortionSeconds,
		Partial:           r.Partial,
	}
}
