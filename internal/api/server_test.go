package api_test

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/api/client"
	"repro/internal/dcerr"
	"repro/internal/metrics"
	"repro/internal/native"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/workload"
)

// harness boots a real serve.Server behind a real TCP listener and returns a
// client pointed at it. Cleanup shuts the API server down and closes the pool.
type harness struct {
	srv  *api.Server
	pool *serve.Server
	cli  *client.Client
	reg  *metrics.Registry
	rec  *trace.Recorder
	base string
}

func newHarness(t *testing.T, poolOpts []serve.Option, apiOpts ...api.Option) *harness {
	t.Helper()
	be, err := native.New(native.Config{CPUWorkers: 2, DeviceLanes: 4})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	rec := trace.NewRecorderLimit(1 << 14)
	poolOpts = append([]serve.Option{serve.WithRecorder(rec)}, poolOpts...)
	pool, err := serve.New(be, poolOpts...)
	if err != nil {
		t.Fatal(err)
	}
	apiOpts = append([]api.Option{api.WithMetrics(reg), api.WithRecorder(rec), api.WithEventPoll(2 * time.Millisecond)}, apiOpts...)
	srv, err := api.New(pool, apiOpts...)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	h := &harness{
		srv:  srv,
		pool: pool,
		reg:  reg,
		rec:  rec,
		base: "http://" + ln.Addr().String(),
	}
	h.cli = client.New(h.base)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
		pool.Close()
	})
	return h
}

// TestRoundTripAllAlgorithms submits each algorithm kind remotely and checks
// the result is bit-identical to the locally computed answer.
func TestRoundTripAllAlgorithms(t *testing.T) {
	h := newHarness(t, nil)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))
	data := workload.Uniform(1<<10, rng.Int63())

	// mergesort
	hd, err := h.cli.Submit(ctx, api.JobRequest{Algorithm: "mergesort", Data: data, Strategy: "bf-cpu"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := hd.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]int32(nil), data...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(res.Sorted) != len(want) {
		t.Fatalf("sorted length %d, want %d", len(res.Sorted), len(want))
	}
	for i := range want {
		if res.Sorted[i] != want[i] {
			t.Fatalf("sorted[%d] = %d, want %d", i, res.Sorted[i], want[i])
		}
	}
	if res.Report.Algorithm == "" || res.Report.Seconds < 0 {
		t.Fatalf("implausible report %+v", res.Report)
	}

	// scan (prefix sums)
	hd, err = h.cli.Submit(ctx, api.JobRequest{Algorithm: "scan", Data: data})
	if err != nil {
		t.Fatal(err)
	}
	if res, err = hd.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	var acc int64
	for i, v := range data {
		acc += int64(v)
		if res.Scan[i] != acc {
			t.Fatalf("scan[%d] = %d, want %d", i, res.Scan[i], acc)
		}
	}

	// sum
	hd, err = h.cli.Submit(ctx, api.JobRequest{Algorithm: "sum", Data: data, Strategy: "seq-1cpu"})
	if err != nil {
		t.Fatal(err)
	}
	if res, err = hd.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if res.Sum == nil || *res.Sum != acc {
		t.Fatalf("sum = %v, want %d", res.Sum, acc)
	}

	// Status after settlement reads "done" with a report.
	st, err := hd.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Report == nil || st.Error != nil {
		t.Fatalf("status %+v, want done with report", st)
	}
}

// TestBadRequests pins the 400-class mapping: unknown algorithm, unknown
// strategy, bad timeout header, malformed JSON, bad path ids, and 404s.
func TestBadRequests(t *testing.T) {
	h := newHarness(t, nil)
	ctx := context.Background()
	data := workload.Uniform(64, 1)

	cases := []struct {
		req  api.JobRequest
		want error
	}{
		{api.JobRequest{Algorithm: "quicksort", Data: data}, dcerr.ErrBadParam},
		{api.JobRequest{Algorithm: "mergesort", Data: data, Strategy: "warp-drive"}, dcerr.ErrBadParam},
		{api.JobRequest{Algorithm: "mergesort", Data: data[:63]}, dcerr.ErrNotPowerOfTwo},
		{api.JobRequest{Algorithm: "mergesort", Data: data, Reliability: &api.Reliability{MaxRetries: -1}}, dcerr.ErrBadParam},
		{api.JobRequest{Algorithm: "mergesort", Data: data, Reliability: &api.Reliability{Fallback: "tpu"}}, dcerr.ErrBadParam},
	}
	for i, tc := range cases {
		_, err := h.cli.Submit(ctx, tc.req)
		var apiErr *client.Error
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
			t.Fatalf("case %d: err %v, want 400", i, err)
		}
		if !errors.Is(err, tc.want) {
			t.Fatalf("case %d: %v does not unwrap to %v", i, err, tc.want)
		}
	}

	// Malformed JSON body.
	resp, err := http.Post(h.base+"/v1/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}

	// Bad Request-Timeout header.
	req, _ := http.NewRequest(http.MethodPost, h.base+"/v1/jobs", strings.NewReader("{}"))
	req.Header.Set(api.RequestTimeoutHeader, "yesterday")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad timeout: status %d, want 400", resp.StatusCode)
	}

	// Unknown job: 404 on status, result and events.
	for _, path := range []string{"/v1/jobs/999999", "/v1/jobs/999999/result", "/v1/jobs/999999/events"} {
		resp, err := http.Get(h.base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}

	// Non-numeric job id: 400.
	resp, err = http.Get(h.base + "/v1/jobs/banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id: status %d, want 400", resp.StatusCode)
	}

	// Bad drain device: 400 unwrapping to ErrBadParam.
	if err := h.cli.Drain(ctx, 42); !errors.Is(err, dcerr.ErrBadParam) {
		t.Fatalf("drain of bogus device: %v, want ErrBadParam", err)
	}
}

// TestBackpressure429 saturates a tiny admission queue and checks overflow
// surfaces remotely as 429 + Retry-After, unwrapping to ErrQueueFull.
func TestBackpressure429(t *testing.T) {
	h := newHarness(t, []serve.Option{serve.WithQueueDepth(1), serve.WithMaxInFlight(1)})
	ctx := context.Background()
	data := workload.Uniform(1<<16, 3)

	var mu sync.Mutex
	var handles []*client.Handle
	saw429 := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				hd, err := h.cli.Submit(ctx, api.JobRequest{Algorithm: "mergesort", Data: data})
				if err == nil {
					mu.Lock()
					handles = append(handles, hd)
					mu.Unlock()
					continue
				}
				var apiErr *client.Error
				if !errors.As(err, &apiErr) {
					t.Errorf("submit: %v", err)
					return
				}
				if apiErr.Status != http.StatusTooManyRequests {
					t.Errorf("submit: status %d, want 429 (err %v)", apiErr.Status, err)
					return
				}
				if apiErr.RetryAfter <= 0 {
					t.Errorf("429 without Retry-After hint: %+v", apiErr)
					return
				}
				if !errors.Is(err, dcerr.ErrQueueFull) {
					t.Errorf("429 does not unwrap to ErrQueueFull: %v", err)
					return
				}
				mu.Lock()
				saw429++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if saw429 == 0 {
		t.Fatal("never saw a 429 despite queue depth 1 under 8-way submit pressure")
	}
	// Every accepted job still completes correctly despite the overload.
	for _, hd := range handles {
		if _, err := hd.Wait(ctx); err != nil {
			t.Fatalf("accepted job %d failed: %v", hd.ID(), err)
		}
	}
}

// TestDeadlinePropagation submits with a microscopic Request-Timeout and
// checks the job settles with the canceled taxonomy over the wire (504).
func TestDeadlinePropagation(t *testing.T) {
	h := newHarness(t, []serve.Option{serve.WithMaxInFlight(1)})
	ctx := context.Background()

	// Occupy the only slot so the doomed job's deadline expires before (or
	// early into) execution; the doomed instance is far too large to finish
	// inside its 5ms budget even if it dispatches immediately.
	big := workload.Uniform(1<<19, 9)
	blocker, err := h.cli.Submit(ctx, api.JobRequest{Algorithm: "mergesort", Data: big})
	if err != nil {
		t.Fatal(err)
	}
	// Submit with an explicit 5ms Request-Timeout (raw HTTP, so the tiny
	// budget does not also strangle the submission round trip).
	payload, err := json.Marshal(api.JobRequest{Algorithm: "mergesort", Data: big})
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPost, h.base+"/v1/jobs", strings.NewReader(string(payload)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.RequestTimeoutHeader, "5ms")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var acc api.JobAccepted
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit with timeout: status %d, want 202", resp.StatusCode)
	}
	doomed := h.cli.Job(acc.ID)
	_, werr := doomed.Wait(ctx)
	if !errors.Is(werr, dcerr.ErrCanceled) {
		t.Fatalf("doomed job: %v, want ErrCanceled over the wire", werr)
	}
	var apiErr *client.Error
	if !errors.As(werr, &apiErr) || apiErr.Status != http.StatusGatewayTimeout {
		t.Fatalf("doomed job: %v, want 504", werr)
	}
	st, err := doomed.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Error == nil || st.Error.Kind != "canceled" {
		t.Fatalf("doomed status %+v, want done with canceled error", st)
	}
	if _, err := blocker.Wait(ctx); err != nil {
		t.Fatalf("blocker: %v", err)
	}
}

// TestResultWaitTimeout checks a bounded result read on a running job comes
// back 504/"canceled" while the job keeps running, and a later unbounded
// read still gets the result.
func TestResultWaitTimeout(t *testing.T) {
	h := newHarness(t, []serve.Option{serve.WithMaxInFlight(1)})
	ctx := context.Background()
	data := workload.Uniform(1<<16, 5)
	hd, err := h.cli.Submit(ctx, api.JobRequest{Algorithm: "scan", Data: data})
	if err != nil {
		t.Fatal(err)
	}
	shortCtx, cancel := context.WithTimeout(ctx, time.Millisecond)
	_, werr := hd.Wait(shortCtx)
	cancel()
	if werr == nil {
		// Fast machine: job finished inside 1ms; nothing left to assert.
		return
	}
	var apiErr *client.Error
	if errors.As(werr, &apiErr) && apiErr.Status != http.StatusGatewayTimeout {
		t.Fatalf("bounded wait: status %d, want 504 (%v)", apiErr.Status, werr)
	}
	res, err := hd.Wait(ctx)
	if err != nil {
		t.Fatalf("second wait: %v", err)
	}
	if len(res.Scan) != len(data) {
		t.Fatalf("scan result length %d, want %d", len(res.Scan), len(data))
	}
}

// TestEventsStream checks the SSE feed: an initial status, at least one
// per-level span from the recorder, and a terminal done event with a report.
func TestEventsStream(t *testing.T) {
	h := newHarness(t, nil)
	ctx := context.Background()
	data := workload.Uniform(1<<12, 17)
	hd, err := h.cli.Submit(ctx, api.JobRequest{Algorithm: "mergesort", Data: data})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var types []string
	levels := map[int]bool{}
	streamCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	err = hd.Stream(streamCtx, func(ev api.Event) error {
		mu.Lock()
		defer mu.Unlock()
		types = append(types, ev.Type)
		if ev.Type == "span" && (ev.Unit == "cpu" || ev.Unit == "gpu") {
			levels[ev.Level] = true
		}
		if ev.Type == "done" {
			if ev.Status == nil || ev.Status.State != "done" || ev.Status.Report == nil {
				t.Errorf("done event without settled status: %+v", ev)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if len(types) < 2 || types[0] != "status" || types[len(types)-1] != "done" {
		t.Fatalf("event sequence %v, want status ... done", types)
	}
	sawSpan := false
	for _, ty := range types {
		if ty == "span" {
			sawSpan = true
		}
	}
	if !sawSpan {
		t.Fatal("no span events streamed; recorder wiring broken")
	}
	if len(levels) < 2 {
		t.Fatalf("per-level progress covered levels %v, want >= 2 distinct levels", levels)
	}
}

// TestShutdownDrains checks Shutdown finishes in-flight jobs before the
// listener closes: a job accepted pre-shutdown still completes and its
// result stays readable until the listener actually closes, while new
// submissions are refused with 503.
func TestShutdownDrains(t *testing.T) {
	be, err := native.New(native.Config{CPUWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := serve.New(be, serve.WithMaxInFlight(1))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	srv, err := api.New(pool, api.WithEventPoll(2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	cli := client.New("http://" + ln.Addr().String())
	ctx := context.Background()

	data := workload.Uniform(1<<19, 23)
	hd, err := cli.Submit(ctx, api.JobRequest{Algorithm: "mergesort", Data: data})
	if err != nil {
		t.Fatal(err)
	}

	shCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(shCtx) }()

	// Admission must close promptly even though the job is still running.
	probe := workload.Uniform(64, 24)
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := cli.Submit(ctx, api.JobRequest{Algorithm: "sum", Data: probe})
		var apiErr *client.Error
		if errors.As(err, &apiErr) && apiErr.Status == http.StatusServiceUnavailable {
			if !errors.Is(err, dcerr.ErrServerClosed) {
				t.Fatalf("drain refusal does not unwrap to ErrServerClosed: %v", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submissions never refused during drain (last err %v)", err)
		}
		time.Sleep(time.Millisecond)
	}

	// The in-flight job must settle successfully and the server must wait
	// for it before closing the listener.
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
	// Listener is closed now; the accepted job must already have settled
	// cleanly (drain completed all in-flight work before the listener
	// closed).
	if st := pool.Stats(); st.Completed == 0 {
		t.Fatalf("pool stats %+v: job %d did not settle before listener close", st, hd.ID())
	}
}

// TestMetricsAndRequestIDs checks api_* metrics advance and request ids
// round-trip through the X-Request-Id header.
func TestMetricsAndRequestIDs(t *testing.T) {
	h := newHarness(t, nil)
	ctx := context.Background()
	data := workload.Uniform(256, 29)
	hd, err := h.cli.Submit(ctx, api.JobRequest{Algorithm: "sum", Data: data})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hd.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	raw, err := h.cli.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	for _, key := range []string{"api_requests_total", "api_requests_submit_total", "api_requests_result_total", "api_status_2xx_total"} {
		if _, ok := snap.Counters[key]; !ok {
			t.Fatalf("metrics snapshot missing counter %s (have %d)", key, len(snap.Counters))
		}
	}
	if snap.Counters["api_requests_total"] == 0 || snap.Counters["api_status_2xx_total"] == 0 {
		t.Fatalf("api request counters did not advance: %v", snap.Counters)
	}
	if _, ok := snap.Histograms["api_latency_seconds_submit"]; !ok {
		t.Fatal("metrics snapshot missing submit latency histogram")
	}

	// Request id: echoed when supplied, generated otherwise; stamped into
	// api trace spans.
	req, _ := http.NewRequest(http.MethodGet, h.base+"/healthz", nil)
	req.Header.Set("X-Request-Id", "req-test-77")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "req-test-77" {
		t.Fatalf("X-Request-Id echo = %q, want req-test-77", got)
	}
	sawAPI := false
	for _, sp := range h.rec.Spans() {
		if sp.Unit == "api" && strings.Contains(sp.Label, "rid=req-test-77") {
			sawAPI = true
		}
	}
	if !sawAPI {
		t.Fatal("no api span carrying the supplied request id")
	}
}

// TestReliabilityOverWire submits a job with a retry policy through the wire
// and checks attempts are reported; the Fresh factory server-side must make
// re-execution possible without client involvement.
func TestReliabilityOverWire(t *testing.T) {
	h := newHarness(t, nil)
	ctx := context.Background()
	data := workload.Uniform(512, 31)
	hd, err := h.cli.Submit(ctx, api.JobRequest{
		Algorithm:   "mergesort",
		Data:        data,
		Reliability: &api.Reliability{MaxRetries: 2, BackoffMS: 1, DeadlineMS: 60_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hd.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	st, err := hd.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Attempts < 1 {
		t.Fatalf("attempts %d, want >= 1", st.Attempts)
	}
}
