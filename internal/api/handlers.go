package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/algos/dcsum"
	"repro/internal/algos/mergesort"
	"repro/internal/algos/scan"
	"repro/internal/core"
	"repro/internal/dcerr"
	"repro/internal/mempool"
	"repro/internal/serve"
)

// buildAlg constructs a fresh instance for a wire algorithm kind. It is both
// the submission path and the Job.Fresh factory re-executing reliability
// policies start over from.
func buildAlg(kind string, data []int32) (core.Alg, error) {
	switch strings.ToLower(kind) {
	case "mergesort":
		return mergesort.New(data)
	case "scan":
		return scan.New(data)
	case "sum", "dcsum":
		return dcsum.New(data)
	}
	return nil, fmt.Errorf("api: unknown algorithm %q: %w", kind, dcerr.ErrBadParam)
}

// extractResult reads the settled instance's output into the wire result.
func extractResult(res *JobResult, alg core.Alg) error {
	switch a := alg.(type) {
	case *mergesort.Sorter:
		res.Sorted = a.Result()
	case *scan.Scanner:
		res.Scan = a.Result()
	case *dcsum.Summer:
		v := a.Result()
		res.Sum = &v
	default:
		return fmt.Errorf("api: no result extractor for %T: %w", alg, dcerr.ErrBadParam)
	}
	return nil
}

// handleSubmit is POST /v1/jobs: validate, build the instance, propagate the
// caller's Request-Timeout into the job context, submit, and track the
// handle. Returns the job ID for request-span tagging.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) uint64 {
	if s.draining.Load() {
		writeErr(w, fmt.Errorf("api: shutting down: %w", dcerr.ErrServerClosed))
		return 0
	}
	timeout, err := ParseTimeout(r.Header.Get(RequestTimeoutHeader))
	if err != nil {
		writeErr(w, err)
		return 0
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req JobRequest
	var pooled []int32 // binary payload leased from the pool, job-owned
	if strings.HasPrefix(r.Header.Get("Content-Type"), ContentTypeInt32) {
		// Binary submission: the body is one int32 frame, every other
		// JobRequest field travels as query parameters.
		req, err = RequestFromQuery(r.URL.Query())
		if err != nil {
			writeErr(w, err)
			return 0
		}
		pooled, err = ReadInt32Frame(r.Body, s.cfg.MaxBodyBytes)
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeErrStatus(w, http.StatusRequestEntityTooLarge,
					fmt.Sprintf("api: request body over %d bytes", tooBig.Limit), "bad-param")
				return 0
			}
			writeErrStatus(w, http.StatusBadRequest, "api: malformed binary frame: "+err.Error(), "bad-param")
			return 0
		}
		req.Data = pooled
	} else if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErrStatus(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("api: request body over %d bytes", tooBig.Limit), "bad-param")
			return 0
		}
		writeErrStatus(w, http.StatusBadRequest, "api: malformed JSON body: "+err.Error(), "bad-param")
		return 0
	}
	// From here on a failed submission must hand the pooled payload back
	// (a nil slice is a no-op Put).
	strat, err := ParseStrategy(req.Strategy)
	if err != nil {
		mempool.Int32s.Put(pooled)
		writeErr(w, err)
		return 0
	}
	alg, err := buildAlg(req.Algorithm, req.Data)
	if err != nil {
		mempool.Int32s.Put(pooled)
		writeErr(w, err)
		return 0
	}
	var opts []core.Option
	if req.Priority > 0 {
		opts = append(opts, core.WithPriority(req.Priority))
	}
	if req.Coalesce {
		opts = append(opts, core.WithCoalesce())
	}
	relOpts, err := req.Reliability.Options()
	if err != nil {
		core.ReleaseAlg(alg)
		mempool.Int32s.Put(pooled)
		writeErr(w, err)
		return 0
	}
	opts = append(opts, relOpts...)

	// The job context outlives the HTTP request on purpose: submission is
	// asynchronous, and only the caller's declared deadline — not its
	// connection lifetime — bounds the execution.
	jobCtx := context.Background()
	cancel := context.CancelFunc(func() {})
	if timeout > 0 {
		jobCtx, cancel = context.WithTimeout(jobCtx, timeout)
	}
	kind, data := req.Algorithm, req.Data
	h, err := s.pool.Submit(jobCtx, serve.Job{
		Alg:       alg,
		Strategy:  strat,
		Alpha:     req.Alpha,
		Y:         req.Y,
		Crossover: req.Crossover,
		Fresh:     func() (core.Alg, error) { return buildAlg(kind, data) },
	}, opts...)
	if err != nil {
		cancel()
		core.ReleaseAlg(alg)
		mempool.Int32s.Put(pooled)
		writeErr(w, err)
		return 0
	}

	j := &job{id: h.ID, h: h, cancel: cancel, alg: alg, data: pooled}
	s.mu.Lock()
	s.jobs[h.ID] = j
	s.mu.Unlock()
	s.jobsWG.Add(1)
	go s.watch(j)

	writeJSON(w, http.StatusAccepted, JobAccepted{ID: h.ID, Status: "queued"})
	return h.ID
}

// watch releases the job's deadline timer at settlement and evicts the
// oldest settled jobs beyond the retention bound. Evicted jobs return
// their instances and pooled payloads once no handler still reads them —
// removal from the map under the mutex guarantees no new reader appears.
func (s *Server) watch(j *job) {
	defer s.jobsWG.Done()
	<-j.h.Done()
	j.cancel()
	s.mu.Lock()
	s.settled = append(s.settled, j.id)
	var evicted []*job
	for len(s.settled) > s.cfg.RetainJobs {
		if ej := s.jobs[s.settled[0]]; ej != nil {
			evicted = append(evicted, ej)
		}
		delete(s.jobs, s.settled[0])
		s.settled = s.settled[1:]
	}
	s.mu.Unlock()
	for _, ej := range evicted {
		go s.releaseJob(ej)
	}
}

// lookup finds a tracked job by the {id} path value and takes a read
// reference on it; the caller must j.refs.Done() when finished, so
// eviction-time release can wait out in-flight readers. A miss writes the
// 404.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeErrStatus(w, http.StatusBadRequest, "api: bad job id "+r.PathValue("id"), "bad-param")
		return nil
	}
	s.mu.Lock()
	j := s.jobs[id]
	if j != nil {
		j.refs.Add(1)
	}
	s.mu.Unlock()
	if j == nil {
		writeErrStatus(w, http.StatusNotFound, fmt.Sprintf("api: no job %d", id), "not-found")
		return nil
	}
	return j
}

// status builds the job's wire status. Blocking accessors are only touched
// once Done is closed.
func (s *Server) status(j *job) JobStatus {
	st := JobStatus{ID: j.id, State: "running"}
	select {
	case <-j.h.Done():
	default:
		return st
	}
	st.State = "done"
	rep, err := j.h.Report()
	wr := wireReport(rep)
	st.Report = &wr
	if err != nil {
		st.Error = &ErrorBody{Error: err.Error(), Kind: dcerr.KindOf(err)}
	}
	st.Attempts = j.h.Attempts()
	st.HedgeWon = j.h.HedgeWon()
	st.FellBack = j.h.FellBack()
	st.QueueWaitSeconds = j.h.QueueWaitSeconds()
	return st
}

// handleStatus is GET /v1/jobs/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) uint64 {
	j := s.lookup(w, r)
	if j == nil {
		return 0
	}
	defer j.refs.Done()
	writeJSON(w, http.StatusOK, s.status(j))
	return j.id
}

// handleResult is GET /v1/jobs/{id}/result: block until the job settles —
// bounded by the request context and an optional Request-Timeout — then
// return the result payload, or the job's error mapped through
// dcerr.HTTPTable. A wait that expires while the job is still running is
// 504; the job keeps running.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) uint64 {
	j := s.lookup(w, r)
	if j == nil {
		return 0
	}
	defer j.refs.Done()
	timeout, err := ParseTimeout(r.Header.Get(RequestTimeoutHeader))
	if err != nil {
		writeErr(w, err)
		return j.id
	}
	waitCtx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		waitCtx, cancel = context.WithTimeout(waitCtx, timeout)
		defer cancel()
	}
	rep, err := j.h.Wait(waitCtx)
	if err != nil {
		select {
		case <-j.h.Done():
			// The job itself settled with an error: map it.
			writeErr(w, err)
		default:
			// Only the wait expired; the job is still running.
			writeErrStatus(w, http.StatusGatewayTimeout,
				fmt.Sprintf("api: job %d still running: %v", j.id, err), "canceled")
		}
		return j.id
	}
	if writeBinaryResult(w, r.Header.Get("Accept"), rep, j.h.ResultAlg()) {
		return j.id
	}
	res := JobResult{ID: j.id, Report: wireReport(rep)}
	if err := extractResult(&res, j.h.ResultAlg()); err != nil {
		writeErr(w, err)
		return j.id
	}
	writeJSON(w, http.StatusOK, res)
	return j.id
}

// writeBinaryResult serves the result as a raw little-endian frame when the
// Accept header asks for one matching the algorithm's payload type, with
// the execution report in the ReportHeader. It reports whether it handled
// the response; JSON stays the default for every other Accept value.
func writeBinaryResult(w http.ResponseWriter, accept string, rep core.Report, alg core.Alg) bool {
	writeHdr := func(contentType string) bool {
		repJSON, err := json.Marshal(wireReport(rep))
		if err != nil {
			return false
		}
		w.Header().Set("Content-Type", contentType)
		w.Header().Set(ReportHeader, string(repJSON))
		w.WriteHeader(http.StatusOK)
		return true
	}
	switch a := alg.(type) {
	case *mergesort.Sorter:
		if !acceptsType(accept, ContentTypeInt32) || !writeHdr(ContentTypeInt32) {
			return false
		}
		WriteInt32Frame(w, a.Result())
	case *scan.Scanner:
		if !acceptsType(accept, ContentTypeInt64) || !writeHdr(ContentTypeInt64) {
			return false
		}
		WriteInt64Frame(w, a.Result())
	case *dcsum.Summer:
		if !acceptsType(accept, ContentTypeInt64) || !writeHdr(ContentTypeInt64) {
			return false
		}
		WriteInt64Frame(w, []int64{a.Result()})
	default:
		return false
	}
	return true
}

// handleDrain is POST /v1/drain/{device}: gracefully drain one pool device.
// The request context (plus Request-Timeout) bounds only the wait — on
// expiry the drain continues in the background, mirroring
// Server.DrainBackend.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) uint64 {
	dev, err := strconv.Atoi(r.PathValue("device"))
	if err != nil {
		writeErrStatus(w, http.StatusBadRequest, "api: bad device id "+r.PathValue("device"), "bad-param")
		return 0
	}
	timeout, err := ParseTimeout(r.Header.Get(RequestTimeoutHeader))
	if err != nil {
		writeErr(w, err)
		return 0
	}
	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if err := s.pool.DrainBackend(ctx, dev); err != nil {
		if ctx.Err() != nil && !errors.Is(err, dcerr.ErrBadParam) && !errors.Is(err, dcerr.ErrServerClosed) {
			writeErrStatus(w, http.StatusGatewayTimeout,
				fmt.Sprintf("api: drain of device %d still in progress: %v", dev, err), "canceled")
			return 0
		}
		writeErr(w, err)
		return 0
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "drained", "device": dev})
	return 0
}

// handleMetrics is GET /metrics: the registry snapshot as JSON, rendered
// through a pooled scrape buffer so periodic scrapes do not grow the heap.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) uint64 {
	w.Header().Set("Content-Type", "application/json")
	if s.cfg.Metrics == nil {
		w.Write([]byte("{}\n"))
		return 0
	}
	buf := getBuf()
	defer putBuf(buf)
	if err := s.cfg.Metrics.WriteJSON(buf); err != nil {
		writeErrStatus(w, http.StatusInternalServerError, "api: render metrics: "+err.Error(), "")
		return 0
	}
	w.Write(buf.Bytes())
	return 0
}

// handleHealthz is GET /healthz: 200 while serving, 503 while draining.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) uint64 {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeErrStatus(w, http.StatusServiceUnavailable, "draining", "server-closed")
		return 0
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	return 0
}
