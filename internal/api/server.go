package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dcerr"
	"repro/internal/mempool"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/trace"
)

// Config is the resolved form of the Options.
type Config struct {
	// MaxBodyBytes bounds a request body; oversized submissions are rejected
	// with 413. Defaults to 8 MiB.
	MaxBodyBytes int64
	// MaxConns bounds concurrent accepted connections (0 = unlimited).
	MaxConns int
	// RetainJobs bounds how many settled jobs stay queryable; the oldest
	// settled job is evicted beyond it. Defaults to 4096.
	RetainJobs int
	// EventPoll is how often /events polls the recorder for new spans.
	// Defaults to 25ms.
	EventPoll time.Duration
	// Metrics, if non-nil, receives the api_* metrics; expose it to remote
	// scrapers via GET /metrics.
	Metrics *metrics.Registry
	// Trace, if non-nil, is the span recorder /events streams from. It
	// should be the same recorder the serve.Server was built with
	// (serve.WithRecorder), so per-level executor spans carry job IDs; API
	// request spans (unit "api", labeled with the request id) land in it
	// too.
	Trace *trace.Recorder
}

// Option configures a Server.
type Option func(*Config)

// WithMaxBodyBytes bounds request bodies; oversized submissions get 413.
func WithMaxBodyBytes(n int64) Option { return func(c *Config) { c.MaxBodyBytes = n } }

// WithMaxConns bounds concurrent accepted connections; excess dials queue in
// the listener backlog. 0 (the default) is unlimited.
func WithMaxConns(n int) Option { return func(c *Config) { c.MaxConns = n } }

// WithRetainJobs bounds how many settled jobs remain queryable.
func WithRetainJobs(n int) Option { return func(c *Config) { c.RetainJobs = n } }

// WithEventPoll sets the /events recorder poll interval.
func WithEventPoll(d time.Duration) Option { return func(c *Config) { c.EventPoll = d } }

// WithMetrics directs the api_* metrics into reg and serves reg on
// GET /metrics. Share the registry with the serve.Server (serve.WithMetrics)
// so one scrape sees the whole stack.
func WithMetrics(reg *metrics.Registry) Option { return func(c *Config) { c.Metrics = reg } }

// WithRecorder sets the span recorder /events streams from and API request
// spans are recorded into. Share it with the serve.Server
// (serve.WithRecorder) so the stream carries per-level executor progress.
func WithRecorder(rec *trace.Recorder) Option { return func(c *Config) { c.Trace = rec } }

// job is one tracked submission. The API server owns the instances it
// built for the job (the submit-time alg and, via Job.Fresh, the settled
// result instance) plus any pooled binary payload; all are returned to the
// buffer pools when the job leaves the retention ring. refs brackets
// handlers that hold the job, so release waits for in-flight readers.
type job struct {
	id     uint64
	h      *serve.Handle
	cancel context.CancelFunc
	alg    core.Alg
	data   []int32 // pooled binary submit payload (nil for JSON submissions)
	refs   sync.WaitGroup
}

// Server is the HTTP/JSON front-end over a serve.Server.
type Server struct {
	pool *serve.Server
	cfg  Config

	mu      sync.Mutex
	jobs    map[uint64]*job
	settled []uint64 // eviction order of settled jobs

	jobsWG   sync.WaitGroup
	draining atomic.Bool
	reqSeq   atomic.Uint64
	start    time.Time

	httpMu  sync.Mutex
	httpSrv *http.Server

	handler http.Handler

	mRequests, mBytesIn, mBytesOut     *metrics.Counter
	mStatus2xx, mStatus4xx, mStatus5xx *metrics.Counter
	mInFlight                          *metrics.Gauge
	routeReq                           map[string]*metrics.Counter
	routeLat                           map[string]*metrics.Histogram
}

// Metric names recorded when WithMetrics is configured.
const (
	MetricRequests  = "api_requests_total"
	MetricInFlight  = "api_inflight"
	MetricBytesIn   = "api_bytes_in_total"
	MetricBytesOut  = "api_bytes_out_total"
	MetricStatus2xx = "api_status_2xx_total"
	MetricStatus4xx = "api_status_4xx_total"
	MetricStatus5xx = "api_status_5xx_total"
	// MetricRouteRequestsFmt and MetricRouteLatencyFmt are per-route (the %s
	// is the route name: submit, status, result, events, drain, metrics,
	// healthz).
	MetricRouteRequestsFmt = "api_requests_%s_total"
	MetricRouteLatencyFmt  = "api_latency_seconds_%s"
)

// routes is the fixed route set instrumented per route.
var routes = []string{"submit", "status", "result", "events", "drain", "metrics", "healthz"}

// New builds an API server over the pool. The pool is borrowed: Shutdown
// stops HTTP admission and drains the jobs this API submitted, but closing
// the serve.Server (and its backends) stays with the caller.
func New(pool *serve.Server, opts ...Option) (*Server, error) {
	if pool == nil {
		return nil, fmt.Errorf("api: nil serve.Server: %w", dcerr.ErrBadParam)
	}
	cfg := Config{}
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.RetainJobs == 0 {
		cfg.RetainJobs = 4096
	}
	if cfg.EventPoll == 0 {
		cfg.EventPoll = 25 * time.Millisecond
	}
	if cfg.MaxBodyBytes < 0 || cfg.MaxConns < 0 || cfg.RetainJobs < 0 || cfg.EventPoll < 0 {
		return nil, fmt.Errorf("api: negative limit: %w", dcerr.ErrBadParam)
	}
	s := &Server{
		pool:  pool,
		cfg:   cfg,
		jobs:  map[uint64]*job{},
		start: time.Now(),
	}
	if reg := cfg.Metrics; reg != nil {
		s.mRequests = reg.Counter(MetricRequests)
		s.mInFlight = reg.Gauge(MetricInFlight)
		s.mBytesIn = reg.Counter(MetricBytesIn)
		s.mBytesOut = reg.Counter(MetricBytesOut)
		s.mStatus2xx = reg.Counter(MetricStatus2xx)
		s.mStatus4xx = reg.Counter(MetricStatus4xx)
		s.mStatus5xx = reg.Counter(MetricStatus5xx)
		s.routeReq = map[string]*metrics.Counter{}
		s.routeLat = map[string]*metrics.Histogram{}
		for _, rt := range routes {
			s.routeReq[rt] = reg.Counter(fmt.Sprintf(MetricRouteRequestsFmt, rt))
			s.routeLat[rt] = reg.Histogram(fmt.Sprintf(MetricRouteLatencyFmt, rt))
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.route("submit", s.handleSubmit))
	mux.HandleFunc("GET /v1/jobs/{id}", s.route("status", s.handleStatus))
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.route("result", s.handleResult))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.route("events", s.handleEvents))
	mux.HandleFunc("POST /v1/drain/{device}", s.route("drain", s.handleDrain))
	mux.HandleFunc("GET /metrics", s.route("metrics", s.handleMetrics))
	mux.HandleFunc("GET /healthz", s.route("healthz", s.handleHealthz))
	s.handler = mux
	return s, nil
}

// Handler returns the API's http.Handler, for callers that bring their own
// http.Server (tests, embedding in a larger mux).
func (s *Server) Handler() http.Handler { return s.handler }

// Serve accepts connections on ln until Shutdown. It applies the server's
// connection limit and header/idle timeouts, and returns nil after a clean
// Shutdown.
func (s *Server) Serve(ln net.Listener) error {
	if s.cfg.MaxConns > 0 {
		ln = limitListener(ln, s.cfg.MaxConns)
	}
	srv := &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
		MaxHeaderBytes:    1 << 16,
	}
	s.httpMu.Lock()
	s.httpSrv = srv
	s.httpMu.Unlock()
	err := srv.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown is the graceful drain: new submissions are refused with 503 (and
// Retry-After, so well-behaved clients go elsewhere), every job this API
// admitted runs to settlement — their status/result/events requests keep
// being served — and only then does the listener close. ctx bounds the whole
// wait; on expiry in-flight connections are closed forcibly.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.jobsWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
	}
	s.httpMu.Lock()
	srv := s.httpSrv
	s.httpMu.Unlock()
	if srv == nil {
		return ctx.Err()
	}
	if ctx.Err() != nil {
		srv.Close()
		return ctx.Err()
	}
	err := srv.Shutdown(ctx)
	if err == nil {
		// Clean drain: every connection is gone, so the retained jobs'
		// instances and payloads can settle back into the buffer pools.
		s.mu.Lock()
		retained := make([]*job, 0, len(s.jobs))
		for _, j := range s.jobs {
			retained = append(retained, j)
		}
		s.jobs = map[uint64]*job{}
		s.settled = nil
		s.mu.Unlock()
		for _, j := range retained {
			s.releaseJob(j)
		}
	}
	return err
}

// releaseJob returns a job's server-owned instances and pooled payload to
// the buffer pools. Callers must guarantee no handler still reads the job
// (it is out of the map and its refs drained).
func (s *Server) releaseJob(j *job) {
	j.refs.Wait()
	if ra := j.h.ResultAlg(); ra != nil && ra != j.alg {
		core.ReleaseAlg(ra)
	}
	if j.alg != nil {
		core.ReleaseAlg(j.alg)
		j.alg = nil
	}
	mempool.Int32s.Put(j.data)
	j.data = nil
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// JobsInFlight reports how many admitted jobs have not yet settled.
func (s *Server) JobsInFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		select {
		case <-j.h.Done():
		default:
			n++
		}
	}
	return n
}

// route wraps a handler with the per-request instrumentation: request
// counters, in-flight gauge, status-class counters, byte counters, per-route
// latency histograms, request-id tagging (X-Request-Id in, echoed out,
// stamped on the request's trace span), and the drain gate for submissions.
func (s *Server) route(name string, h func(http.ResponseWriter, *http.Request) uint64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rid := r.Header.Get("X-Request-Id")
		if rid == "" {
			rid = fmt.Sprintf("r%d", s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-Id", rid)
		s.mRequests.Inc()
		if c := s.routeReq[name]; c != nil {
			c.Inc()
		}
		s.mInFlight.Add(1)
		defer s.mInFlight.Add(-1)

		cw := &countingWriter{ResponseWriter: w}
		body := &countingReader{inner: r.Body}
		r.Body = body
		jobID := h(cw, r)

		s.mBytesIn.Add(uint64(body.n.Load()))
		s.mBytesOut.Add(uint64(cw.bytes))
		switch {
		case cw.status >= 500:
			s.mStatus5xx.Inc()
		case cw.status >= 400:
			s.mStatus4xx.Inc()
		default:
			s.mStatus2xx.Inc()
		}
		dt := time.Since(t0)
		if hist := s.routeLat[name]; hist != nil {
			hist.Observe(dt.Seconds())
		}
		if s.cfg.Trace != nil {
			end := time.Since(s.start).Seconds()
			s.cfg.Trace.Add(trace.Span{
				Unit:  "api",
				Label: fmt.Sprintf("%s rid=%s status=%d", name, rid, cw.statusOr200()),
				Job:   jobID,
				Start: end - dt.Seconds(),
				End:   end,
			})
		}
	}
}

// writeJSON writes a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeErr maps err through dcerr.HTTPTable and writes the ErrorBody.
// Backpressure statuses carry Retry-After so remote callers shed load the
// way in-process callers back off on ErrQueueFull.
func writeErr(w http.ResponseWriter, err error) {
	status := dcerr.HTTPStatus(err)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, ErrorBody{Error: err.Error(), Kind: dcerr.KindOf(err)})
}

// writeErrStatus writes an ErrorBody with an explicit status for errors
// outside the dcerr taxonomy (404s, malformed bodies).
func writeErrStatus(w http.ResponseWriter, status int, msg, kind string) {
	writeJSON(w, status, ErrorBody{Error: msg, Kind: kind})
}

// countingWriter tallies the response status and body bytes.
type countingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *countingWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *countingWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *countingWriter) statusOr200() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// Flush forwards to the wrapped writer, so SSE streaming works through the
// instrumentation layer.
func (w *countingWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		if w.status == 0 {
			w.status = http.StatusOK
		}
		f.Flush()
	}
}

// countingReader tallies consumed request-body bytes.
type countingReader struct {
	inner interface {
		Read([]byte) (int, error)
		Close() error
	}
	n atomic.Int64
}

func (r *countingReader) Read(p []byte) (int, error) {
	n, err := r.inner.Read(p)
	r.n.Add(int64(n))
	return n, err
}

func (r *countingReader) Close() error { return r.inner.Close() }

// limitListener bounds concurrent accepted connections with a semaphore;
// Accept blocks while the limit is reached, leaving excess dials in the
// kernel backlog instead of open goroutines.
func limitListener(ln net.Listener, max int) net.Listener {
	return &limitedListener{Listener: ln, sem: make(chan struct{}, max)}
}

type limitedListener struct {
	net.Listener
	sem chan struct{}
}

func (l *limitedListener) Accept() (net.Conn, error) {
	l.sem <- struct{}{}
	c, err := l.Listener.Accept()
	if err != nil {
		<-l.sem
		return nil, err
	}
	return &limitedConn{Conn: c, release: func() { <-l.sem }}, nil
}

type limitedConn struct {
	net.Conn
	once    sync.Once
	release func()
}

func (c *limitedConn) Close() error {
	err := c.Conn.Close()
	c.once.Do(c.release)
	return err
}
