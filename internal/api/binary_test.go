package api_test

import (
	"bytes"
	"context"
	"math/rand"
	"net/http"
	"testing"

	"repro/internal/api"
	"repro/internal/api/client"
	"repro/internal/workload"
)

// TestBinaryFrameRoundTrip pins the frame codec: encode → decode is the
// identity for both element widths, including the empty frame.
func TestBinaryFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 7, 1 << 10} {
		d32 := make([]int32, n)
		d64 := make([]int64, n)
		for i := 0; i < n; i++ {
			d32[i] = rng.Int31() - 1<<30
			d64[i] = rng.Int63() - 1<<62
		}
		var buf bytes.Buffer
		if err := api.WriteInt32Frame(&buf, d32); err != nil {
			t.Fatal(err)
		}
		got32, err := api.ReadInt32Frame(&buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(got32) != n {
			t.Fatalf("int32 frame n=%d decoded %d elements", n, len(got32))
		}
		for i := range got32 {
			if got32[i] != d32[i] {
				t.Fatalf("int32 frame n=%d differs at %d: %d != %d", n, i, got32[i], d32[i])
			}
		}
		buf.Reset()
		if err := api.WriteInt64Frame(&buf, d64); err != nil {
			t.Fatal(err)
		}
		got64, err := api.ReadInt64Frame(&buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(got64) != n {
			t.Fatalf("int64 frame n=%d decoded %d elements", n, len(got64))
		}
		for i := range got64 {
			if got64[i] != d64[i] {
				t.Fatalf("int64 frame n=%d differs at %d: %d != %d", n, i, got64[i], d64[i])
			}
		}
	}
}

// TestBinaryFrameRejects pins the decoder's validation: bad magic, wrong
// element width, and a count past the body limit all fail cleanly.
func TestBinaryFrameRejects(t *testing.T) {
	var good bytes.Buffer
	if err := api.WriteInt32Frame(&good, []int32{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	frame := good.Bytes()

	bad := append([]byte{}, frame...)
	copy(bad, "NOPE")
	if _, err := api.ReadInt32Frame(bytes.NewReader(bad), 0); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := api.ReadInt64Frame(bytes.NewReader(frame), 0); err == nil {
		t.Error("int32 frame accepted as int64")
	}
	if _, err := api.ReadInt32Frame(bytes.NewReader(frame), 24); err == nil {
		t.Error("frame over the byte limit accepted")
	}
	if _, err := api.ReadInt32Frame(bytes.NewReader(frame[:10]), 0); err == nil {
		t.Error("truncated header accepted")
	}
}

// TestQueryParamsRoundTrip pins the query-parameter encoding of a binary
// submission against its server-side decoder.
func TestQueryParamsRoundTrip(t *testing.T) {
	req := api.JobRequest{
		Algorithm: "mergesort",
		Strategy:  "advanced-hybrid",
		Alpha:     0.5,
		Y:         3,
		Priority:  2,
		Coalesce:  true,
		Reliability: &api.Reliability{
			MaxRetries: 2,
			BackoffMS:  5,
			DeadlineMS: 1000,
			Fallback:   "cpu-only",
		},
	}
	got, err := api.RequestFromQuery(req.QueryParams())
	if err != nil {
		t.Fatal(err)
	}
	if got.Algorithm != req.Algorithm || got.Strategy != req.Strategy ||
		got.Alpha != req.Alpha || got.Y != req.Y || got.Crossover != req.Crossover ||
		got.Priority != req.Priority || got.Coalesce != req.Coalesce {
		t.Errorf("round trip mangled request: %+v != %+v", got, req)
	}
	if got.Reliability == nil || *got.Reliability != *req.Reliability {
		t.Errorf("round trip mangled reliability: %+v != %+v", got.Reliability, req.Reliability)
	}
}

// TestBinaryRoundTripBitExact runs each algorithm through both wire formats
// against one server and requires bit-identical results.
func TestBinaryRoundTripBitExact(t *testing.T) {
	h := newHarness(t, nil)
	ctx := context.Background()
	bin := client.New(h.base, client.WithBinary())
	data := workload.Uniform(1<<10, 23)

	for _, kind := range []string{"mergesort", "scan", "sum"} {
		req := api.JobRequest{Algorithm: kind, Data: data, Strategy: "gpu-only"}

		jh, err := h.cli.Submit(ctx, req)
		if err != nil {
			t.Fatalf("%s: JSON submit: %v", kind, err)
		}
		jres, err := jh.Wait(ctx)
		if err != nil {
			t.Fatalf("%s: JSON wait: %v", kind, err)
		}

		bh, err := bin.Submit(ctx, req)
		if err != nil {
			t.Fatalf("%s: binary submit: %v", kind, err)
		}
		bres, err := bh.Wait(ctx)
		if err != nil {
			t.Fatalf("%s: binary wait: %v", kind, err)
		}

		switch kind {
		case "mergesort":
			if len(bres.Sorted) != len(jres.Sorted) {
				t.Fatalf("mergesort: binary %d elements, JSON %d", len(bres.Sorted), len(jres.Sorted))
			}
			for i := range bres.Sorted {
				if bres.Sorted[i] != jres.Sorted[i] {
					t.Fatalf("mergesort differs at %d: %d != %d", i, bres.Sorted[i], jres.Sorted[i])
				}
			}
		case "scan":
			if len(bres.Scan) != len(jres.Scan) {
				t.Fatalf("scan: binary %d elements, JSON %d", len(bres.Scan), len(jres.Scan))
			}
			for i := range bres.Scan {
				if bres.Scan[i] != jres.Scan[i] {
					t.Fatalf("scan differs at %d: %d != %d", i, bres.Scan[i], jres.Scan[i])
				}
			}
		case "sum":
			if bres.Sum == nil || jres.Sum == nil || *bres.Sum != *jres.Sum {
				t.Fatalf("sum differs: binary %v, JSON %v", bres.Sum, jres.Sum)
			}
		}
		if bres.Report.Algorithm != jres.Report.Algorithm {
			t.Errorf("%s: report algorithm differs: %q != %q", kind, bres.Report.Algorithm, jres.Report.Algorithm)
		}
	}
}

// TestBinaryResultNegotiation pins the Accept negotiation: without a binary
// Accept the result stays JSON; with one the body is a raw frame and the
// report rides in the X-Hpu-Report header.
func TestBinaryResultNegotiation(t *testing.T) {
	h := newHarness(t, nil)
	ctx := context.Background()
	jh, err := h.cli.Submit(ctx, api.JobRequest{
		Algorithm: "mergesort", Data: workload.Uniform(1<<8, 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jh.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	get := func(accept string) *http.Response {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			h.base+"/v1/jobs/1/result", nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := get(""); resp.Header.Get("Content-Type") != "application/json" {
		t.Errorf("default Accept returned %q, want JSON", resp.Header.Get("Content-Type"))
	}
	resp := get(api.ContentTypeInt32)
	if ct := resp.Header.Get("Content-Type"); ct != api.ContentTypeInt32 {
		t.Fatalf("binary Accept returned %q", ct)
	}
	if resp.Header.Get(api.ReportHeader) == "" {
		t.Error("binary result missing " + api.ReportHeader)
	}
	if sorted, err := api.ReadInt32Frame(resp.Body, 0); err != nil {
		t.Errorf("binary result body: %v", err)
	} else if len(sorted) != 1<<8 {
		t.Errorf("binary result has %d elements, want %d", len(sorted), 1<<8)
	}
}
