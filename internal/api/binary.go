package api

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net/url"
	"strconv"
	"strings"
	"sync"

	"repro/internal/dcerr"
	"repro/internal/mempool"
)

// Binary payload path: application/x-hpu-int32le (and the int64 variant)
// carries raw little-endian element frames instead of JSON arrays, cutting
// both wire bytes (no digits, commas or base64) and codec allocations (no
// per-element token parsing). A frame is:
//
//	offset 0  magic "HPU1" (4 bytes)
//	offset 4  element size in bytes (4 or 8)
//	offset 5  reserved, zero (3 bytes)
//	offset 8  element count, uint64 little-endian
//	offset 16 payload: count × elemSize bytes, little-endian
//
// On submit the frame is the POST body and the non-payload JobRequest
// fields travel as query parameters (JobRequest.QueryParams /
// RequestFromQuery are the two symmetric halves). On result reads the
// frame is negotiated via Accept — JSON stays the default — and the
// execution Report rides in the ReportHeader as one JSON object.
const (
	// ContentTypeInt32 is the media type of an int32 little-endian frame
	// (mergesort data and results).
	ContentTypeInt32 = "application/x-hpu-int32le"
	// ContentTypeInt64 is the media type of an int64 little-endian frame
	// (scan results; a sum result is a one-element frame).
	ContentTypeInt64 = "application/x-hpu-int64le"
	// ReportHeader carries the JSON-encoded Report on binary result reads,
	// where the body is the bare payload frame.
	ReportHeader = "X-Hpu-Report"
)

const (
	frameMagic      = "HPU1"
	frameHeaderSize = 16
)

// bufPool recycles scratch buffers across responses: SSE event encoding,
// /metrics scrapes, and client-side frame assembly all draw from it.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// getBuf leases a reset scratch buffer.
func getBuf() *bytes.Buffer { return bufPool.Get().(*bytes.Buffer) }

// putBuf returns a scratch buffer, dropping outliers so one huge response
// does not pin its allocation forever.
func putBuf(b *bytes.Buffer) {
	if b.Cap() > 1<<22 {
		return
	}
	b.Reset()
	bufPool.Put(b)
}

// frameHeader assembles the 16-byte header.
func frameHeader(elemSize byte, count int) [frameHeaderSize]byte {
	var hdr [frameHeaderSize]byte
	copy(hdr[:4], frameMagic)
	hdr[4] = elemSize
	binary.LittleEndian.PutUint64(hdr[8:], uint64(count))
	return hdr
}

// readFrameHeader validates the magic and element size and returns the
// element count. maxBytes (when positive) bounds the whole frame, mirroring
// the server's request-body cap.
func readFrameHeader(r io.Reader, elemSize byte, maxBytes int64) (int, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		// A short header is a malformed request, not an I/O environment
		// problem: classify it ErrBadParam so the API answers 400, and keep
		// the io error in the chain for transports that care.
		return 0, fmt.Errorf("api: binary frame header: %w: %w", err, dcerr.ErrBadParam)
	}
	if string(hdr[:4]) != frameMagic {
		return 0, fmt.Errorf("api: bad frame magic %q: %w", hdr[:4], dcerr.ErrBadParam)
	}
	if hdr[4] != elemSize {
		return 0, fmt.Errorf("api: frame element size %d, want %d: %w", hdr[4], elemSize, dcerr.ErrBadParam)
	}
	count := binary.LittleEndian.Uint64(hdr[8:])
	if maxBytes > 0 && count > uint64(maxBytes-frameHeaderSize)/uint64(elemSize) {
		return 0, fmt.Errorf("api: frame of %d elements over %d-byte limit: %w",
			count, maxBytes, dcerr.ErrBadParam)
	}
	const sanity = 1 << 31 // frames beyond 2Gi elements are corrupt counts
	if count > sanity {
		return 0, fmt.Errorf("api: implausible frame count %d: %w", count, dcerr.ErrBadParam)
	}
	return int(count), nil
}

// WriteInt32Frame writes data as one int32 little-endian frame. The
// element conversion stages through a pooled buffer, so steady-state
// encoding allocates nothing.
func WriteInt32Frame(w io.Writer, data []int32) error {
	hdr := frameHeader(4, len(data))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	buf := mempool.Bytes.Get(4 * len(data))
	defer mempool.Bytes.Put(buf)
	for i, v := range data {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
	}
	_, err := w.Write(buf)
	return err
}

// WriteInt64Frame writes data as one int64 little-endian frame.
func WriteInt64Frame(w io.Writer, data []int64) error {
	hdr := frameHeader(8, len(data))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	buf := mempool.Bytes.Get(8 * len(data))
	defer mempool.Bytes.Put(buf)
	for i, v := range data {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
	}
	_, err := w.Write(buf)
	return err
}

// ReadInt32Frame decodes one int32 frame. The returned slice is leased
// from the buffer pool; the server returns it at job eviction, and
// slices that escape to API callers are simply reclaimed by the GC.
func ReadInt32Frame(r io.Reader, maxBytes int64) ([]int32, error) {
	n, err := readFrameHeader(r, 4, maxBytes)
	if err != nil {
		return nil, err
	}
	buf := mempool.Bytes.Get(4 * n)
	defer mempool.Bytes.Put(buf)
	if _, err := io.ReadFull(r, buf); err != nil {
		// Fewer payload bytes than the header promised: malformed frame.
		return nil, fmt.Errorf("api: binary frame payload: %w: %w", err, dcerr.ErrBadParam)
	}
	out := mempool.Int32s.Get(n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return out, nil
}

// ReadInt64Frame decodes one int64 frame.
func ReadInt64Frame(r io.Reader, maxBytes int64) ([]int64, error) {
	n, err := readFrameHeader(r, 8, maxBytes)
	if err != nil {
		return nil, err
	}
	buf := mempool.Bytes.Get(8 * n)
	defer mempool.Bytes.Put(buf)
	if _, err := io.ReadFull(r, buf); err != nil {
		// Fewer payload bytes than the header promised: malformed frame.
		return nil, fmt.Errorf("api: binary frame payload: %w: %w", err, dcerr.ErrBadParam)
	}
	out := mempool.Int64s.Get(n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}

// QueryParams renders the request's non-payload fields as the query string
// of a binary submission. RequestFromQuery is the inverse.
func (r JobRequest) QueryParams() url.Values {
	q := url.Values{}
	q.Set("algorithm", r.Algorithm)
	if r.Strategy != "" {
		q.Set("strategy", r.Strategy)
	}
	if r.Alpha != 0 {
		q.Set("alpha", strconv.FormatFloat(r.Alpha, 'g', -1, 64))
	}
	if r.Y != 0 {
		q.Set("y", strconv.Itoa(r.Y))
	}
	if r.Crossover != 0 {
		q.Set("crossover", strconv.Itoa(r.Crossover))
	}
	if r.Priority != 0 {
		q.Set("priority", strconv.Itoa(r.Priority))
	}
	if r.Coalesce {
		q.Set("coalesce", "1")
	}
	if rel := r.Reliability; rel != nil {
		if rel.MaxRetries != 0 {
			q.Set("max_retries", strconv.Itoa(rel.MaxRetries))
		}
		if rel.BackoffMS != 0 {
			q.Set("backoff_ms", strconv.FormatInt(rel.BackoffMS, 10))
		}
		if rel.DeadlineMS != 0 {
			q.Set("deadline_ms", strconv.FormatInt(rel.DeadlineMS, 10))
		}
		if rel.HedgeMS != 0 {
			q.Set("hedge_ms", strconv.FormatInt(rel.HedgeMS, 10))
		}
		if rel.Fallback != "" {
			q.Set("fallback", rel.Fallback)
		}
	}
	return q
}

// RequestFromQuery rebuilds a JobRequest (minus Data) from a binary
// submission's query parameters.
func RequestFromQuery(q url.Values) (JobRequest, error) {
	req := JobRequest{
		Algorithm: q.Get("algorithm"),
		Strategy:  q.Get("strategy"),
		Coalesce:  q.Get("coalesce") == "1" || strings.EqualFold(q.Get("coalesce"), "true"),
	}
	geti := func(key string, dst *int) error {
		v := q.Get(key)
		if v == "" {
			return nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("api: bad query %s=%q: %w", key, v, dcerr.ErrBadParam)
		}
		*dst = n
		return nil
	}
	get64 := func(key string, dst *int64) error {
		v := q.Get(key)
		if v == "" {
			return nil
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fmt.Errorf("api: bad query %s=%q: %w", key, v, dcerr.ErrBadParam)
		}
		*dst = n
		return nil
	}
	if v := q.Get("alpha"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return req, fmt.Errorf("api: bad query alpha=%q: %w", v, dcerr.ErrBadParam)
		}
		req.Alpha = f
	}
	if err := geti("y", &req.Y); err != nil {
		return req, err
	}
	if err := geti("crossover", &req.Crossover); err != nil {
		return req, err
	}
	if err := geti("priority", &req.Priority); err != nil {
		return req, err
	}
	rel := Reliability{Fallback: q.Get("fallback")}
	if err := geti("max_retries", &rel.MaxRetries); err != nil {
		return req, err
	}
	if err := get64("backoff_ms", &rel.BackoffMS); err != nil {
		return req, err
	}
	if err := get64("deadline_ms", &rel.DeadlineMS); err != nil {
		return req, err
	}
	if err := get64("hedge_ms", &rel.HedgeMS); err != nil {
		return req, err
	}
	if rel != (Reliability{}) {
		req.Reliability = &rel
	}
	return req, nil
}

// acceptsType reports whether the Accept header lists the content type.
// The media types are distinctive enough that substring matching is exact.
func acceptsType(accept, contentType string) bool {
	return strings.Contains(accept, contentType)
}
