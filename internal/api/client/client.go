// Package client is the typed Go client for the HTTP/JSON job API
// (internal/api). It mirrors the in-process serving semantics over the
// wire: Submit returns a Handle, Handle.Wait blocks for the result under a
// caller context, Handle.Stream follows the job's per-level progress, and
// every error is restored to its dcerr sentinel — errors.Is(err,
// dcerr.ErrQueueFull) works the same against a remote server as against a
// local serve.Server.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/dcerr"
)

// bufPool recycles request-assembly buffers (binary submit frames), and
// readerPool recycles the bufio.Reader fronting binary result decodes, so
// steady-state clients allocate neither.
var (
	bufPool    = sync.Pool{New: func() any { return new(bytes.Buffer) }}
	readerPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, 64<<10) }}
)

func getBuf() *bytes.Buffer { return bufPool.Get().(*bytes.Buffer) }

func putBuf(b *bytes.Buffer) {
	if b.Cap() > 1<<22 {
		return
	}
	b.Reset()
	bufPool.Put(b)
}

// drainClose exhausts and closes a response body. Leaving bytes unread —
// a decoder stopping at the closing brace — kills the keep-alive
// connection; the bounded drain lets the transport reuse it.
func drainClose(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// Error is a non-2xx API response, carrying the HTTP status, the wire kind,
// and — when the kind maps to a dcerr sentinel — unwrapping to it, so
// errors.Is classification survives the round trip.
type Error struct {
	// Status is the HTTP response status.
	Status int
	// Kind is the wire label from dcerr.HTTPTable ("" outside the taxonomy).
	Kind string
	// Message is the server's human-readable error text.
	Message string
	// RetryAfter is the server's backoff hint (429/503 responses), zero
	// otherwise.
	RetryAfter time.Duration
	sentinel   error
}

// Error implements error.
func (e *Error) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("api: %s (http %d)", e.Message, e.Status)
	}
	return fmt.Sprintf("api: http %d", e.Status)
}

// Unwrap exposes the dcerr sentinel for errors.Is, or nil for errors
// outside the taxonomy.
func (e *Error) Unwrap() error { return e.sentinel }

// Client talks to one API server.
type Client struct {
	base   string
	hc     *http.Client
	binary bool
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (timeouts,
// transports, test doubles). The default client has no overall timeout —
// waits are bounded per call by contexts.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithBinary switches the payload hot path to the raw little-endian wire
// format: Submit posts the data as an application/x-hpu-int32le frame
// (request fields travel as query parameters) and Wait negotiates a binary
// result frame via Accept. Results are bit-identical to the JSON path;
// only the encoding — and the bytes and allocations it costs — changes.
func WithBinary() Option { return func(c *Client) { c.binary = true } }

// New returns a client for the server at base, e.g.
// "http://127.0.0.1:8080".
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
	for _, o := range opts {
		if o != nil {
			o(c)
		}
	}
	return c
}

// Handle tracks one remotely submitted job.
type Handle struct {
	c  *Client
	id uint64
}

// Job returns a handle for an already-known job ID — e.g. one submitted by
// another process — without a round trip.
func (c *Client) Job(id uint64) *Handle { return &Handle{c: c, id: id} }

// ID returns the server-assigned job ID.
func (h *Handle) ID() uint64 { return h.id }

// decodeErr turns a non-2xx response into an *Error.
func decodeErr(resp *http.Response) error {
	var body api.ErrorBody
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	_ = json.Unmarshal(raw, &body)
	if body.Error == "" {
		body.Error = strings.TrimSpace(string(raw))
	}
	e := &Error{
		Status:   resp.StatusCode,
		Kind:     body.Kind,
		Message:  body.Error,
		sentinel: dcerr.ByKind(body.Kind),
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return e
}

// timeoutHeader derives the Request-Timeout header from ctx's deadline, so
// the caller's budget propagates into the server-side job context exactly as
// an in-process Submit ctx would.
func timeoutHeader(ctx context.Context, req *http.Request) {
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem > 0 {
			req.Header.Set(api.RequestTimeoutHeader, rem.String())
		}
	}
}

// Submit posts a job. ctx bounds the submission round trip, and its
// deadline (if any) propagates to the server as the job's execution budget.
// A full admission queue surfaces as an error matching dcerr.ErrQueueFull
// with a populated RetryAfter; a shed GPU path as dcerr.ErrDegraded.
func (c *Client) Submit(ctx context.Context, job api.JobRequest) (*Handle, error) {
	var req *http.Request
	var err error
	if c.binary {
		buf := getBuf()
		defer putBuf(buf)
		if err := api.WriteInt32Frame(buf, job.Data); err != nil {
			return nil, fmt.Errorf("api: encode job frame: %w", err)
		}
		url := c.base + "/v1/jobs?" + job.QueryParams().Encode()
		req, err = http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(buf.Bytes()))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", api.ContentTypeInt32)
	} else {
		payload, err := json.Marshal(job)
		if err != nil {
			return nil, fmt.Errorf("api: encode job: %w", err)
		}
		req, err = http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs", bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
	}
	timeoutHeader(ctx, req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("api: submit: %w", err)
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusAccepted {
		return nil, decodeErr(resp)
	}
	var acc api.JobAccepted
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		return nil, fmt.Errorf("api: decode submit response: %w", err)
	}
	return &Handle{c: c, id: acc.ID}, nil
}

// Status fetches the job's current status without blocking on completion.
func (h *Handle) Status(ctx context.Context) (api.JobStatus, error) {
	var st api.JobStatus
	err := h.c.getJSON(ctx, fmt.Sprintf("%s/v1/jobs/%d", h.c.base, h.id), &st)
	return st, err
}

// Wait blocks until the job settles and returns its result, mirroring
// serve.Handle.Wait: ctx bounds only the wait (its deadline is forwarded so
// the server gives up at the same moment), and a job that finished with an
// error returns it restored to its dcerr sentinel.
func (h *Handle) Wait(ctx context.Context) (api.JobResult, error) {
	var res api.JobResult
	url := fmt.Sprintf("%s/v1/jobs/%d/result", h.c.base, h.id)
	if !h.c.binary {
		err := h.c.getJSON(ctx, url, &res)
		return res, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return res, err
	}
	req.Header.Set("Accept", api.ContentTypeInt32+", "+api.ContentTypeInt64+", application/json")
	timeoutHeader(ctx, req)
	resp, err := h.c.hc.Do(req)
	if err != nil {
		return res, fmt.Errorf("api: get %s: %w", url, err)
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return res, decodeErr(resp)
	}
	ct := resp.Header.Get("Content-Type")
	if !strings.HasPrefix(ct, api.ContentTypeInt32) && !strings.HasPrefix(ct, api.ContentTypeInt64) {
		// The server elected JSON (e.g. an algorithm with no binary form).
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			return res, fmt.Errorf("api: decode %s: %w", url, err)
		}
		return res, nil
	}
	if err := json.Unmarshal([]byte(resp.Header.Get(api.ReportHeader)), &res.Report); err != nil {
		return res, fmt.Errorf("api: decode %s header: %w", api.ReportHeader, err)
	}
	res.ID = h.id
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(resp.Body)
	defer func() {
		br.Reset(nil) // drop the body reference before pooling
		readerPool.Put(br)
	}()
	if strings.HasPrefix(ct, api.ContentTypeInt32) {
		res.Sorted, err = api.ReadInt32Frame(br, 0)
		return res, err
	}
	vals, err := api.ReadInt64Frame(br, 0)
	if err != nil {
		return res, err
	}
	// One int64 frame serves both remaining algorithms; the report's
	// algorithm name says which payload field it is.
	if res.Report.Algorithm == "dcsum" && len(vals) == 1 {
		res.Sum = &vals[0]
		return res, nil
	}
	res.Scan = vals
	return res, nil
}

// Stream follows the job's /events SSE feed, invoking fn for every event —
// an initial "status", a "span" per recorded execution interval (per-level
// batches, transfers, attempts), and a terminal "done" — until the stream
// ends, fn returns an error, or ctx is canceled. A clean end (server sent
// "done") returns nil.
func (h *Handle) Stream(ctx context.Context, fn func(api.Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/jobs/%d/events", h.c.base, h.id), nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := h.c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("api: stream: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeErr(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 8<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimSpace(strings.TrimPrefix(line, "data:"))...)
		case line == "" && len(data) > 0:
			var ev api.Event
			if err := json.Unmarshal(data, &ev); err != nil {
				return fmt.Errorf("api: decode event: %w", err)
			}
			data = data[:0]
			if err := fn(ev); err != nil {
				return err
			}
			if ev.Type == "done" {
				return nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return context.Cause(ctx)
		}
		return fmt.Errorf("api: stream: %w", err)
	}
	return fmt.Errorf("api: event stream ended before done")
}

// Drain asks the server to drain a pool device gracefully; ctx (and its
// forwarded deadline) bounds the wait, after which the drain continues
// server-side.
func (c *Client) Drain(ctx context.Context, device int) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		fmt.Sprintf("%s/v1/drain/%d", c.base, device), nil)
	if err != nil {
		return err
	}
	timeoutHeader(ctx, req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("api: drain: %w", err)
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return decodeErr(resp)
	}
	return nil
}

// Metrics fetches the server's /metrics JSON snapshot.
func (c *Client) Metrics(ctx context.Context) (json.RawMessage, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("api: metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeErr(resp)
	}
	return io.ReadAll(resp.Body)
}

// Healthy reports whether the server answers /healthz with 200 (false while
// it drains toward shutdown).
func (c *Client) Healthy(ctx context.Context) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return false, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, err
	}
	drainClose(resp)
	return resp.StatusCode == http.StatusOK, nil
}

// getJSON runs one GET with the ctx deadline forwarded, decoding a 200 into
// out and everything else into an *Error.
func (c *Client) getJSON(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	timeoutHeader(ctx, req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("api: get %s: %w", url, err)
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return decodeErr(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("api: decode %s: %w", url, err)
	}
	return nil
}
