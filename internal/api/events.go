package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/trace"
)

// spanKey identifies an emitted span, so the /events poll loop sends each
// recorded interval exactly once per stream.
type spanKey struct {
	unit       trace.Unit
	label      string
	start, end float64
}

// handleEvents is GET /v1/jobs/{id}/events: a Server-Sent Events stream of
// the job's progress. The first event is the job's current status; then
// every span the shared recorder attributes to the job — per-level cpu/gpu
// batches, link transfers, the serving layer's queue/job/attempt spans —
// streams as a "span" event as it is recorded; the terminal event is "done"
// with the settled status. Without a configured recorder the stream carries
// only the status and done events.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) uint64 {
	j := s.lookup(w, r)
	if j == nil {
		return 0
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErrStatus(w, http.StatusInternalServerError, "api: response writer cannot stream", "")
		return j.id
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	send := func(ev Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	st := s.status(j)
	if !send(Event{Type: "status", Status: &st}) {
		return j.id
	}

	seen := map[spanKey]struct{}{}
	emit := func() bool {
		if s.cfg.Trace == nil {
			return true
		}
		for _, sp := range s.cfg.Trace.Spans() {
			if sp.Job != j.id || sp.Unit == "api" {
				continue
			}
			k := spanKey{sp.Unit, sp.Label, sp.Start, sp.End}
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			if !send(Event{
				Type:  "span",
				Unit:  string(sp.Unit),
				Level: sp.Level,
				Label: sp.Label,
				Start: sp.Start,
				End:   sp.End,
			}) {
				return false
			}
		}
		return true
	}

	ticker := time.NewTicker(s.cfg.EventPoll)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return j.id
		case <-j.h.Done():
			// Drain the spans the settlement raced in, then finish.
			if emit() {
				done := s.status(j)
				send(Event{Type: "done", Status: &done})
			}
			return j.id
		case <-ticker.C:
			if !emit() {
				return j.id
			}
		}
	}
}
