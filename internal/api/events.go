package api

import (
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/trace"
)

// spanKey identifies an emitted span, so the /events poll loop sends each
// recorded interval exactly once per stream.
type spanKey struct {
	unit       trace.Unit
	label      string
	start, end float64
}

// handleEvents is GET /v1/jobs/{id}/events: a Server-Sent Events stream of
// the job's progress. The first event is the job's current status; then
// every span the shared recorder attributes to the job — per-level cpu/gpu
// batches, link transfers, the serving layer's queue/job/attempt spans —
// streams as a "span" event as it is recorded; the terminal event is "done"
// with the settled status. Without a configured recorder the stream carries
// only the status and done events.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) uint64 {
	j := s.lookup(w, r)
	if j == nil {
		return 0
	}
	defer j.refs.Done()
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErrStatus(w, http.StatusInternalServerError, "api: response writer cannot stream", "")
		return j.id
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	// One pooled buffer and one encoder serve the whole stream: each event
	// is assembled in place and written with a single Write, so a long
	// span stream allocates nothing per event.
	buf := getBuf()
	defer putBuf(buf)
	enc := json.NewEncoder(buf)
	send := func(ev Event) bool {
		buf.Reset()
		buf.WriteString("event: ")
		buf.WriteString(ev.Type)
		buf.WriteString("\ndata: ")
		if err := enc.Encode(&ev); err != nil {
			return false
		}
		buf.WriteByte('\n') // Encode ended the data line; blank line ends the event
		if _, err := w.Write(buf.Bytes()); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	st := s.status(j)
	if !send(Event{Type: "status", Status: &st}) {
		return j.id
	}

	seen := map[spanKey]struct{}{}
	emit := func() bool {
		if s.cfg.Trace == nil {
			return true
		}
		for _, sp := range s.cfg.Trace.Spans() {
			if sp.Job != j.id || sp.Unit == "api" {
				continue
			}
			k := spanKey{sp.Unit, sp.Label, sp.Start, sp.End}
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			if !send(Event{
				Type:  "span",
				Unit:  string(sp.Unit),
				Level: sp.Level,
				Label: sp.Label,
				Start: sp.Start,
				End:   sp.End,
			}) {
				return false
			}
		}
		return true
	}

	ticker := time.NewTicker(s.cfg.EventPoll)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return j.id
		case <-j.h.Done():
			// Drain the spans the settlement raced in, then finish.
			if emit() {
				done := s.status(j)
				send(Event{Type: "done", Status: &done})
			}
			return j.id
		case <-ticker.C:
			if !emit() {
				return j.id
			}
		}
	}
}
