package api_test

// Fuzz harness for the two attacker-facing decoders: the HPU1 binary wire
// frame (ReadInt32Frame / ReadInt64Frame) and the binary submission's query
// parameters (RequestFromQuery). The contract under fuzzing is uniform:
// malformed input returns an error classified dcerr.ErrBadParam — never a
// panic, never an unclassified error that would surface as a 500. The seed
// corpus (f.Add plus testdata/fuzz) covers the interesting malformations:
// truncated header, truncated payload, oversized element count, wrong magic,
// wrong element size, and non-numeric query values.
//
// `go test -run '^Fuzz'` replays the seeds (wired into `make check`);
// `go test -fuzz FuzzReadInt32Frame ./internal/api` explores from them.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"net/url"
	"testing"

	"repro/internal/api"
	"repro/internal/dcerr"
)

// frame assembles a wire frame with an arbitrary (possibly lying) header.
func frame(magic string, elemSize byte, count uint64, payload []byte) []byte {
	b := make([]byte, 0, 16+len(payload))
	b = append(b, magic...)
	b = append(b, elemSize, 0, 0, 0)
	b = binary.LittleEndian.AppendUint64(b, count)
	return append(b, payload...)
}

// seedFrames are shared by both frame fuzzers: every header field lied
// about at least once.
func seedFrames(f *testing.F, elemSize byte) {
	f.Add([]byte{})                                 // empty input
	f.Add([]byte("HPU1"))                           // truncated header (magic only)
	f.Add(frame("HPU1", elemSize, 2, nil)[:5])      // truncated header (past magic)
	f.Add(frame("HPUX", elemSize, 0, nil))          // wrong magic
	f.Add(frame("HPU1", 0, 0, nil))                 // zero element size
	f.Add(frame("HPU1", 9, 1, []byte("AAAAAAAAA"))) // wrong element size
	f.Add(frame("HPU1", elemSize, ^uint64(0), nil)) // oversized count
	f.Add(frame("HPU1", elemSize, 1<<40, nil))      // implausible count
	f.Add(frame("HPU1", elemSize, 4, []byte{1, 2})) // payload shorter than count
	valid := make([]byte, 2*int(elemSize))
	f.Add(frame("HPU1", elemSize, 2, valid)) // well-formed two-element frame
}

func FuzzReadInt32Frame(f *testing.F) {
	seedFrames(f, 4)
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := api.ReadInt32Frame(bytes.NewReader(data), 1<<20)
		if err != nil {
			if !errors.Is(err, dcerr.ErrBadParam) {
				t.Fatalf("malformed frame error %v does not classify as ErrBadParam", err)
			}
			return
		}
		// A successful decode must be consistent with the header it read.
		if len(data) < 16 {
			t.Fatalf("decoded %d elements from a %d-byte input (< header)", len(out), len(data))
		}
		if want := binary.LittleEndian.Uint64(data[8:16]); uint64(len(out)) != want {
			t.Fatalf("decoded %d elements, header said %d", len(out), want)
		}
	})
}

func FuzzReadInt64Frame(f *testing.F) {
	seedFrames(f, 8)
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := api.ReadInt64Frame(bytes.NewReader(data), 1<<20)
		if err != nil {
			if !errors.Is(err, dcerr.ErrBadParam) {
				t.Fatalf("malformed frame error %v does not classify as ErrBadParam", err)
			}
			return
		}
		if len(data) < 16 {
			t.Fatalf("decoded %d elements from a %d-byte input (< header)", len(out), len(data))
		}
		if want := binary.LittleEndian.Uint64(data[8:16]); uint64(len(out)) != want {
			t.Fatalf("decoded %d elements, header said %d", len(out), want)
		}
	})
}

func FuzzRequestFromQuery(f *testing.F) {
	f.Add("algorithm=mergesort&strategy=auto&priority=2")
	f.Add("algorithm=scan&alpha=0.75&y=3&crossover=2&coalesce=1")
	f.Add("alpha=notanumber")
	f.Add("y=99999999999999999999")
	f.Add("crossover=-1&priority=1e9")
	f.Add("max_retries=two&backoff_ms=10")
	f.Add("deadline_ms=%gg&hedge_ms=5")
	f.Add("fallback=cpu-only&hedge_ms=9223372036854775808")
	f.Add("alpha=NaN&y=1")
	f.Fuzz(func(t *testing.T, raw string) {
		q, err := url.ParseQuery(raw)
		if err != nil {
			return // not this decoder's input space
		}
		req, err := api.RequestFromQuery(q)
		if err != nil {
			if !errors.Is(err, dcerr.ErrBadParam) {
				t.Fatalf("malformed query error %v does not classify as ErrBadParam", err)
			}
			return
		}
		// Round trip: a successfully parsed request re-encodes to parameters
		// that parse back to the same request.
		back, err := api.RequestFromQuery(req.QueryParams())
		if err != nil {
			t.Fatalf("re-encoded query failed to parse: %v", err)
		}
		// Alpha compares NaN-tolerantly: "alpha=NaN" parses, and NaN round
		// trips to NaN, which plain != would call a divergence.
		sameAlpha := back.Alpha == req.Alpha ||
			(math.IsNaN(back.Alpha) && math.IsNaN(req.Alpha))
		// Coalesce survives only canonical spellings; QueryParams always emits
		// the canonical "1", so the round trip normalizes, never diverges.
		if back.Algorithm != req.Algorithm || back.Strategy != req.Strategy ||
			!sameAlpha || back.Y != req.Y ||
			back.Crossover != req.Crossover || back.Priority != req.Priority ||
			back.Coalesce != req.Coalesce {
			t.Fatalf("query round trip diverged: %+v vs %+v", req, back)
		}
	})
}
