package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeFloat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("jobs_total") != c {
		t.Error("same name returned a different counter")
	}

	g := r.Gauge("queue_depth")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Errorf("gauge = %d, want 2", got)
	}
	g.Max(10)
	g.Max(7)
	if got := g.Value(); got != 10 {
		t.Errorf("gauge after Max = %d, want 10", got)
	}

	f := r.Float("busy_seconds")
	f.Add(0.25)
	f.Add(0.5)
	if got := f.Value(); got != 0.75 {
		t.Errorf("float = %g, want 0.75", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency", 1, 10, 100)
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["latency"]
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if s.Sum != 556.5 {
		t.Errorf("sum = %g, want 556.5", s.Sum)
	}
	// v <= bound buckets: {0.5, 1} <= 1, {5} <= 10, {50} <= 100, {500} overflow.
	want := []uint64{2, 1, 1, 1}
	for i, n := range want {
		if s.Counts[i] != n {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], n, s.Counts)
		}
	}
	// Second lookup ignores differing bounds.
	if got := r.Histogram("latency", 7); got.Count() != 5 {
		t.Error("re-creating a histogram lost observations")
	}
}

// TestNilRegistryNoops pins the disabled path: every instrument obtained
// from a nil registry must be callable and free of effects.
func TestNilRegistryNoops(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(7)
	r.Gauge("g").Add(-1)
	r.Gauge("g").Max(9)
	r.Float("f").Add(1.5)
	r.Histogram("h").Observe(0.1)
	if v := r.Counter("c").Value(); v != 0 {
		t.Errorf("nil counter = %d", v)
	}
	if v := r.Gauge("g").Value(); v != 0 {
		t.Errorf("nil gauge = %d", v)
	}
	if v := r.Float("f").Value(); v != 0 {
		t.Errorf("nil float = %g", v)
	}
	if n := r.Histogram("h").Count(); n != 0 {
		t.Errorf("nil histogram count = %d", n)
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Floats)+len(s.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
	r.PublishExpvar("never")
}

// TestDisabledPathAllocs pins constraint 1 of the package doc: with metrics
// disabled (nil instruments), observing costs zero allocations.
func TestDisabledPathAllocs(t *testing.T) {
	var r *Registry
	c, g, f, h := r.Counter("c"), r.Gauge("g"), r.Float("f"), r.Histogram("h")
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Add(1)
		f.Add(0.5)
		h.Observe(0.1)
	})
	if allocs != 0 {
		t.Errorf("disabled metrics path allocates %g allocs/op, want 0", allocs)
	}
}

// TestEnabledPathAllocs pins the hot path: observing on pre-created
// instruments allocates nothing either — only instrument creation does.
func TestEnabledPathAllocs(t *testing.T) {
	r := NewRegistry()
	c, g, f, h := r.Counter("c"), r.Gauge("g"), r.Float("f"), r.Histogram("h")
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Add(1)
		f.Add(0.5)
		h.Observe(0.1)
	})
	if allocs != 0 {
		t.Errorf("enabled metrics hot path allocates %g allocs/op, want 0", allocs)
	}
}

func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("ops")
			f := r.Float("sum")
			h := r.Histogram("lat", 0.5)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				f.Add(1)
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	const total = workers * perWorker
	if got := r.Counter("ops").Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := r.Float("sum").Value(); math.Abs(got-total) > 1e-9 {
		t.Errorf("float = %g, want %d", got, total)
	}
	if got := r.Histogram("lat").Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total").Add(2)
	r.Gauge("queue_depth").Set(1)
	r.Histogram("wait_seconds", 0.1, 1).Observe(0.05)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if s.Counters["jobs_total"] != 2 {
		t.Errorf("round-tripped counter = %d, want 2", s.Counters["jobs_total"])
	}
	if s.Gauges["queue_depth"] != 1 {
		t.Errorf("round-tripped gauge = %d, want 1", s.Gauges["queue_depth"])
	}
	h := s.Histograms["wait_seconds"]
	if h.Count != 1 || h.Counts[0] != 1 {
		t.Errorf("round-tripped histogram = %+v", h)
	}
	if !strings.Contains(buf.String(), "wait_seconds") {
		t.Error("JSON missing histogram name")
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	r.PublishExpvar("metrics_test_registry")
	r.PublishExpvar("metrics_test_registry") // second publish must not panic
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.001)
	}
}

func BenchmarkDisabledObserve(b *testing.B) {
	var r *Registry
	c, h := r.Counter("c"), r.Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(0.001)
	}
}
