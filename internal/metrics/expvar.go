package metrics

import (
	"encoding/json"
	"expvar"
	"io"
)

// WriteJSON emits the registry snapshot as indented JSON (map keys sort, so
// output is deterministic for a quiescent registry). Safe on a nil registry,
// which emits an empty snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// PublishExpvar exposes the registry under the given name on the standard
// library's expvar surface (/debug/vars). The snapshot is taken lazily on
// every scrape. Publishing the same registry again is a no-op; publishing a
// second registry under an already-taken name panics, as expvar does. No-op
// on a nil registry.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	r.published.Do(func() {
		expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	})
}
