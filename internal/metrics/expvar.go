package metrics

import (
	"encoding/json"
	"expvar"
	"io"
	"sync"
)

// WriteJSON emits the registry snapshot as indented JSON (map keys sort, so
// output is deterministic for a quiescent registry). Safe on a nil registry,
// which emits an empty snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// expvarTargets maps each published expvar name to the registry currently
// exported under it. expvar names are process-global and can never be
// unpublished, so the exported Func reads through this indirection: the
// latest registry published under a name wins. Without it, two server
// lifecycles in one process (the soak tests, a restart loop) would panic on
// the duplicate name.
var (
	expvarMu      sync.Mutex
	expvarTargets = map[string]*Registry{}
)

// PublishExpvar exposes the registry under the given name on the standard
// library's expvar surface (/debug/vars). The snapshot is taken lazily on
// every scrape. Publishing again under a name another registry holds
// re-points the name at this registry (expvar entries are process-global
// and permanent, so "latest wins" is the only non-panicking semantics). No-op
// on a nil registry.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	_, republish := expvarTargets[name]
	expvarTargets[name] = r
	if republish {
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		expvarMu.Lock()
		target := expvarTargets[name]
		expvarMu.Unlock()
		return target.Snapshot()
	}))
}
