// Package metrics is a dependency-free registry of counters, gauges, floats
// and bucketed histograms for the serving and execution layers. It exists
// because the paper's whole argument is about knowing where time goes on an
// HPU — per-level unit choice (§5.1), CPU/GPU overlap and idle time (§5.2),
// transfer cost λ+δ·w — and a production deployment needs those observables
// continuously, not only in a post-run Report.
//
// Design constraints, in order:
//
//  1. Zero cost when disabled. Every instrument type no-ops on a nil
//     receiver, and a nil *Registry hands out nil instruments, so
//     instrumented code performs a single predictable nil check and no
//     allocation when metrics are off.
//  2. Atomic hot path. Observing a value is one or two atomic operations
//     (lock-free CAS loop for float accumulation); the registry mutex is
//     taken only at instrument creation, never per observation.
//  3. Exposition without dependencies. Snapshot returns plain maps,
//     WriteJSON emits them with encoding/json, and PublishExpvar bridges
//     to the standard library's /debug/vars.
//
// Instruments are identified by flat snake_case names (the convention used
// across this repo is documented in DESIGN.md §9). Creating the same name
// twice returns the same instrument.
package metrics

import (
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. A nil Counter no-ops.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 level (queue depth, busy workers).
// A nil Gauge no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge's current level.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Max raises the gauge to n if n exceeds its current level (a high-water
// mark).
func (g *Gauge) Max(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current level (0 for a nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Float is a lock-free float64 accumulator (busy seconds, transferred
// megabytes). A nil Float no-ops.
type Float struct {
	bits atomic.Uint64
}

// Add accumulates delta into the float.
func (f *Float) Add(delta float64) {
	if f == nil {
		return
	}
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the accumulated total (0 for a nil Float).
func (f *Float) Value() float64 {
	if f == nil {
		return 0
	}
	return math.Float64frombits(f.bits.Load())
}

// Histogram counts float64 observations into fixed buckets. Bucket i counts
// observations v ≤ Bounds[i]; one implicit overflow bucket counts the rest.
// Count and Sum accumulate all observations, so Sum doubles as a total-time
// accumulator for latency histograms. A nil Histogram no-ops.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last = overflow
	count  atomic.Uint64
	sum    Float
}

// DurationBuckets are the default upper bounds (seconds) for latency
// histograms: 10µs to 10s, one decade apart. The range covers both virtual
// time on the simulator and wall clock on the native backend.
var DurationBuckets = []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 for a nil Histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 for a nil Histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// HistogramSnapshot is the exported state of a histogram. Counts[i] pairs
// with Bounds[i]; the final extra entry of Counts is the overflow bucket.
type HistogramSnapshot struct {
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
}

// snapshot copies the histogram state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    h.sum.Value(),
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Registry holds named instruments. The zero value is not usable; construct
// with NewRegistry. A nil *Registry is the disabled state: its methods
// return nil instruments whose operations all no-op.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	floats     map[string]*Float
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		floats:     map[string]*Float{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a no-op instrument) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Float returns the named float accumulator, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Float(name string) *Float {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.floats[name]
	if !ok {
		f = &Float{}
		r.floats[name] = f
	}
	return f
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds (must be sorted ascending) on first use; later calls ignore
// bounds and return the existing instrument. Empty bounds default to
// DurationBuckets. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		if len(bounds) == 0 {
			bounds = DurationBuckets
		}
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)+1),
		}
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument in a registry.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Floats     map[string]float64           `json:"floats"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the current state of every instrument. On a nil registry
// it returns an empty (but non-nil-mapped) snapshot, so exposition code
// never branches.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Floats:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, f := range r.floats {
		s.Floats[name] = f.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}
