// Package opencl is a minimal OpenCL-style host API (§3.1 of the paper) over
// the simulated GPU device: contexts, device buffers, an in-order command
// queue, and NDRange kernel launches whose work-items receive global/local
// ids — the programming model Algorithm 3 ("functionGPU") targets. The
// paper's host programs for mergesort map onto this API directly; the
// package exists so the reproduction includes the substrate the paper's
// implementation was written against, and so new device kernels can be
// written in the paper's idiom.
//
// Kernels execute functionally on buffer memory; time advances on the
// context's virtual clock using the internal/simgpu cost model. Transfers
// between host and device pay the platform's λ + δ·w link cost. Work-group
// barriers are not modeled: the framework's kernels (like the paper's) are
// barrier-free, with one independent task per work-item.
package opencl

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hpu"
)

// Context owns a simulated device and its command queues.
type Context struct {
	sim *hpu.Sim
}

// CreateContext builds a context for the platform's device.
func CreateContext(pl hpu.Platform) (*Context, error) {
	sim, err := hpu.NewSim(pl)
	if err != nil {
		return nil, err
	}
	return &Context{sim: sim}, nil
}

// DeviceInfo describes the context's device, as clGetDeviceInfo would.
type DeviceInfo struct {
	Name        string
	ComputeUnit int // physical processing elements
	Saturation  int // empirical parallel width g
	Gamma       float64
}

// Device returns the device description.
func (c *Context) Device() DeviceInfo {
	p := c.sim.Platform().GPU
	return DeviceInfo{
		Name:        p.Name,
		ComputeUnit: p.PhysicalPEs,
		Saturation:  p.SatThreads,
		Gamma:       p.Gamma,
	}
}

// Now reports the context's virtual time in seconds.
func (c *Context) Now() float64 { return c.sim.Now() }

// Buffer is a device-resident memory object.
type Buffer[T any] struct {
	ctx *Context
	mem []T
}

// CreateBuffer allocates a device buffer of n elements.
func CreateBuffer[T any](ctx *Context, n int) (*Buffer[T], error) {
	if n <= 0 {
		return nil, fmt.Errorf("opencl: buffer size %d must be positive", n)
	}
	return &Buffer[T]{ctx: ctx, mem: make([]T, n)}, nil
}

// Len returns the buffer's element count.
func (b *Buffer[T]) Len() int { return len(b.mem) }

// Mem exposes the device memory for kernels to close over, the counterpart
// of passing the buffer as a kernel argument. Host code must not touch it
// outside enqueued commands; use EnqueueWrite/EnqueueRead instead.
func (b *Buffer[T]) Mem() []T { return b.mem }

// Queue is an in-order command queue: enqueued commands execute one after
// another in submission order, as OpenCL's default queues do.
type Queue struct {
	ctx *Context
	ops []func(done func())
}

// CreateQueue builds an in-order queue on the context.
func CreateQueue(ctx *Context) *Queue { return &Queue{ctx: ctx} }

// bytesOf estimates the wire size of n elements of T (4 bytes assumed for
// int32-like payloads, 8 otherwise; the link model only needs magnitude).
func bytesOf[T any](n int) int64 {
	var t T
	switch any(t).(type) {
	case int32, uint32, float32:
		return int64(n) * 4
	default:
		return int64(n) * 8
	}
}

// EnqueueWrite copies host data into the buffer, paying the link cost.
func EnqueueWrite[T any](q *Queue, b *Buffer[T], host []T) error {
	if len(host) > len(b.mem) {
		return fmt.Errorf("opencl: write of %d elements into buffer of %d", len(host), len(b.mem))
	}
	data := append([]T(nil), host...)
	q.ops = append(q.ops, func(done func()) {
		q.ctx.sim.TransferToGPU(bytesOf[T](len(data)), func() {
			copy(b.mem, data)
			done()
		})
	})
	return nil
}

// EnqueueRead copies the buffer back to host memory, paying the link cost.
// The destination is filled when Finish returns.
func EnqueueRead[T any](q *Queue, b *Buffer[T], host []T) error {
	if len(host) > len(b.mem) {
		return fmt.Errorf("opencl: read of %d elements from buffer of %d", len(host), len(b.mem))
	}
	q.ops = append(q.ops, func(done func()) {
		q.ctx.sim.TransferToCPU(bytesOf[T](len(host)), func() {
			copy(host, b.mem[:len(host)])
			done()
		})
	})
	return nil
}

// WorkItem carries the ids a kernel instance can query, mirroring
// get_global_id / get_local_id / get_group_id.
type WorkItem struct {
	Global int
	Local  int
	Group  int
}

// Kernel is the body executed once per work-item.
type Kernel func(wi WorkItem)

// LaunchCost describes a kernel's per-work-item cost profile for the device
// timing model.
type LaunchCost struct {
	// Ops and MemWords are per-item, in the platform's normalized units.
	Ops      float64
	MemWords float64
	// Coalesced marks adjacent-work-item locality of global accesses.
	Coalesced bool
	// Divergent marks data-dependent control flow (defeats latency hiding).
	Divergent bool
}

// EnqueueNDRange launches globalSize work-items organized in groups of
// localSize (the last group may be partial). The kernel runs functionally at
// dequeue time; the launch occupies the device per the simgpu model.
func EnqueueNDRange(q *Queue, k Kernel, globalSize, localSize int, cost LaunchCost) error {
	if k == nil {
		return fmt.Errorf("opencl: nil kernel")
	}
	if globalSize <= 0 || localSize <= 0 {
		return fmt.Errorf("opencl: invalid NDRange %d/%d", globalSize, localSize)
	}
	q.ops = append(q.ops, func(done func()) {
		batch := core.Batch{
			Tasks: globalSize,
			Cost: core.Cost{
				Ops: cost.Ops, MemWords: cost.MemWords,
				Coalesced: cost.Coalesced, Divergent: cost.Divergent,
			},
			Run: func(id int) {
				k(WorkItem{Global: id, Local: id % localSize, Group: id / localSize})
			},
		}
		q.ctx.sim.GPU().Submit(batch, done)
	})
	return nil
}

// Finish executes all enqueued commands in order and blocks until the last
// completes, like clFinish.
func (q *Queue) Finish() {
	ops := q.ops
	q.ops = nil
	completed := false
	var at func(i int)
	at = func(i int) {
		if i == len(ops) {
			completed = true
			return
		}
		ops[i](func() { at(i + 1) })
	}
	at(0)
	q.ctx.sim.Wait()
	if !completed {
		panic("opencl: queue did not drain")
	}
}
