package opencl

import (
	"testing"

	"repro/internal/hpu"
	"repro/internal/workload"
)

func newCtx(t *testing.T) *Context {
	t.Helper()
	ctx, err := CreateContext(hpu.HPU1())
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func TestDeviceInfo(t *testing.T) {
	d := newCtx(t).Device()
	if d.Name == "" || d.Saturation != 4096 || d.ComputeUnit != 1600 {
		t.Errorf("unexpected device info %+v", d)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	ctx := newCtx(t)
	q := CreateQueue(ctx)
	buf, err := CreateBuffer[int32](ctx, 1024)
	if err != nil {
		t.Fatal(err)
	}
	in := workload.Uniform(1024, 1)
	out := make([]int32, 1024)
	if err := EnqueueWrite(q, buf, in); err != nil {
		t.Fatal(err)
	}
	if err := EnqueueRead(q, buf, out); err != nil {
		t.Fatal(err)
	}
	start := ctx.Now()
	q.Finish()
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
	if ctx.Now() <= start {
		t.Error("transfers advanced no virtual time")
	}
}

// TestAlgorithm5Sum runs the paper's GPU sum kernel verbatim: at each level
// with k subproblems, work-item id executes v[id] += v[id+k] (Algorithm 5).
func TestAlgorithm5Sum(t *testing.T) {
	ctx := newCtx(t)
	q := CreateQueue(ctx)
	const n = 1 << 12
	in := workload.Uniform(n, 2)
	buf, err := CreateBuffer[int32](ctx, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := EnqueueWrite(q, buf, in); err != nil {
		t.Fatal(err)
	}
	mem := buf.mem // kernels close over device memory, as in Algorithm 3
	for k := n / 2; k >= 1; k /= 2 {
		k := k
		kernel := func(wi WorkItem) {
			if wi.Global < k {
				mem[wi.Global] += mem[wi.Global+k]
			}
		}
		if err := EnqueueNDRange(q, kernel, k, 64,
			LaunchCost{Ops: 1, MemWords: 3, Coalesced: true}); err != nil {
			t.Fatal(err)
		}
	}
	out := make([]int32, 1)
	if err := EnqueueRead(q, buf, out); err != nil {
		t.Fatal(err)
	}
	q.Finish()

	var want int32
	for _, v := range in {
		want += v
	}
	if out[0] != want {
		t.Errorf("Algorithm 5 sum = %d, want %d", out[0], want)
	}
}

func TestWorkItemIDs(t *testing.T) {
	ctx := newCtx(t)
	q := CreateQueue(ctx)
	const global, local = 100, 16
	seen := make([]WorkItem, global)
	if err := EnqueueNDRange(q, func(wi WorkItem) { seen[wi.Global] = wi },
		global, local, LaunchCost{Ops: 1}); err != nil {
		t.Fatal(err)
	}
	q.Finish()
	for id, wi := range seen {
		if wi.Global != id || wi.Local != id%local || wi.Group != id/local {
			t.Fatalf("work-item %d has ids %+v", id, wi)
		}
	}
}

func TestInOrderQueue(t *testing.T) {
	// A kernel enqueued after a write must observe the written data even
	// though the link and device are separate simulated resources.
	ctx := newCtx(t)
	q := CreateQueue(ctx)
	buf, _ := CreateBuffer[int32](ctx, 4)
	if err := EnqueueWrite(q, buf, []int32{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	var got int32
	if err := EnqueueNDRange(q, func(wi WorkItem) {
		if wi.Global == 0 {
			got = buf.mem[3]
		}
	}, 1, 1, LaunchCost{Ops: 1}); err != nil {
		t.Fatal(err)
	}
	q.Finish()
	if got != 4 {
		t.Errorf("kernel observed %d, want 4 (queue not in order?)", got)
	}
}

func TestValidation(t *testing.T) {
	ctx := newCtx(t)
	q := CreateQueue(ctx)
	if _, err := CreateBuffer[int32](ctx, 0); err == nil {
		t.Error("CreateBuffer accepted size 0")
	}
	buf, _ := CreateBuffer[int32](ctx, 2)
	if err := EnqueueWrite(q, buf, make([]int32, 3)); err == nil {
		t.Error("EnqueueWrite accepted oversized host data")
	}
	if err := EnqueueRead(q, buf, make([]int32, 3)); err == nil {
		t.Error("EnqueueRead accepted oversized destination")
	}
	if err := EnqueueNDRange(q, nil, 1, 1, LaunchCost{}); err == nil {
		t.Error("EnqueueNDRange accepted nil kernel")
	}
	if err := EnqueueNDRange(q, func(WorkItem) {}, 0, 1, LaunchCost{}); err == nil {
		t.Error("EnqueueNDRange accepted zero global size")
	}
}

func TestDivergentKernelSlower(t *testing.T) {
	run := func(divergent bool) float64 {
		ctx := newCtx(t)
		q := CreateQueue(ctx)
		if err := EnqueueNDRange(q, func(WorkItem) {}, 1<<14, 64,
			LaunchCost{Ops: 100, Divergent: divergent}); err != nil {
			t.Fatal(err)
		}
		start := ctx.Now()
		q.Finish()
		return ctx.Now() - start
	}
	if d, u := run(true), run(false); d <= u {
		t.Errorf("divergent launch (%g) not slower than uniform (%g)", d, u)
	}
}
