// Package core implements the paper's primary contribution: a generic
// framework that turns a recursive divide-and-conquer algorithm into a
// breadth-first form whose per-level task batches can be scheduled across a
// hybrid CPU-GPU platform (the "HPU" of López-Ortiz, Salinger and Suderman),
// together with the basic (§5.1) and advanced (§5.2) work-division
// strategies.
//
// The framework is backend-agnostic: batches execute either on the simulated
// platform of internal/hpu (virtual time, calibrated to the paper's two test
// machines) or on the real-goroutine backend of internal/native.
package core

// Cost describes the abstract cost of a single task in units normalized to
// one CPU core (γ_c = 1 in the paper's model). Device backends turn a Cost
// into a service time using their own rate parameters.
type Cost struct {
	// Ops is the number of scalar operations the task performs, at
	// normalized CPU speed 1 op per unit work.
	Ops float64
	// MemWords is the number of 4-byte words the task moves to or from
	// global memory. On the simulated GPU uncoalesced word traffic is
	// penalized; on the simulated CPU it drives bandwidth contention.
	MemWords float64
	// Coalesced reports whether the task's global-memory access pattern is
	// coalesced across adjacent work-items (§6.3 of the paper). It only
	// affects GPU execution.
	Coalesced bool
	// Divergent reports whether work-items follow data-dependent control
	// flow (e.g. one sequential merge per thread). Divergent kernels defeat
	// the device's SIMD latency hiding and run at the single-thread rate γ
	// per lane — exactly the assumption of the paper's §5 model. Uniform
	// kernels (element-wise sum, the Fig 9 binary-search merge) reach the
	// device's full saturated throughput.
	Divergent bool
	// WorkingSet is the number of bytes the batch as a whole touches; the
	// CPU backend compares it against last-level cache capacity.
	WorkingSet int64
}

// Scale returns c with Ops and MemWords multiplied by k.
func (c Cost) Scale(k float64) Cost {
	c.Ops *= k
	c.MemWords *= k
	return c
}

// Batch is a homogeneous set of independent tasks, typically one recursion
// level (or a contiguous index slice of one level) of a breadth-first
// divide-and-conquer execution.
type Batch struct {
	// Tasks is the number of independent tasks in the batch.
	Tasks int
	// Cost is the per-task cost. When CostOps is set, Cost still supplies
	// the memory/coalescing/divergence profile but its Ops field describes
	// the average task (used by backends that do not price items
	// individually).
	Cost Cost
	// CostOps, if non-nil, returns task i's scalar op count, for batches
	// with heterogeneous tasks (e.g. ragged merges near a non-power-of-two
	// input's end). The simulated GPU prices such batches at SIMD
	// wavefront granularity: every lane of a wavefront pays its slowest
	// item.
	CostOps func(i int) float64
	// Run performs task i functionally on host memory. It may be nil for
	// pure cost-model runs (no data movement). Backends may invoke Run
	// concurrently for distinct i, so it must be safe for disjoint indices.
	Run func(i int)
	// Level is the recursion level this batch belongs to (0 = root),
	// stamped by the executors for observability layers (tracing, metrics).
	// Backends do not interpret it.
	Level int
}

// Empty reports whether the batch contains no tasks.
func (b Batch) Empty() bool { return b.Tasks <= 0 }

// TotalOps returns the batch's aggregate scalar operation count.
func (b Batch) TotalOps() float64 { return float64(b.Tasks) * b.Cost.Ops }

// LevelExecutor runs batches on one processing unit. Submit is asynchronous:
// done fires (exactly once) when the whole batch has completed. On the
// simulated backend done runs inside the event loop; on the native backend it
// runs on an arbitrary goroutine. Multiple batches submitted without waiting
// are serviced concurrently up to the unit's parallelism.
type LevelExecutor interface {
	// Submit schedules the batch and returns immediately.
	Submit(b Batch, done func())
	// Parallelism reports the unit's usable degree of parallelism: p for a
	// CPU, the empirical saturation thread count g for a GPU.
	Parallelism() int
}

// Backend is a hybrid platform the executors in this package can drive.
type Backend interface {
	// CPU returns the multi-core unit. Never nil.
	CPU() LevelExecutor
	// GPU returns the device unit, or nil for a CPU-only platform.
	GPU() LevelExecutor
	// GPUGamma reports the GPU:CPU scalar speed ratio γ < 1 (0 if no GPU).
	GPUGamma() float64
	// TransferToGPU moves n bytes host→device and calls done on completion.
	TransferToGPU(n int64, done func())
	// TransferToCPU moves n bytes device→host and calls done on completion.
	TransferToCPU(n int64, done func())
	// Now reports elapsed time in seconds: virtual time on the simulator,
	// wall-clock time on the native backend.
	Now() float64
	// Wait blocks until all submitted work (including chained completions)
	// has finished. On the simulator this drives the event loop.
	Wait()
}
