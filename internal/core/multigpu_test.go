package core_test

import (
	"context"
	"sort"
	"testing"

	"repro/internal/algos/mergesort"
	. "repro/internal/core"
	"repro/internal/hpu"
	"repro/internal/workload"
)

// coalesceOpts returns the coalescing option when on, for table-driven
// tests that toggle it.
func coalesceOpts(on bool) []Option {
	if on {
		return []Option{WithCoalesce()}
	}
	return nil
}

func sortedRef(in []int32) []int32 {
	out := append([]int32(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestMultiGPUSortsCorrectly(t *testing.T) {
	for _, devices := range []int{1, 2, 3, 4} {
		for _, coalesce := range []bool{false, true} {
			in := workload.Uniform(1<<12, int64(devices))
			be, err := hpu.NewMultiSim(hpu.HPU1(), devices)
			if err != nil {
				t.Fatal(err)
			}
			s, err := mergesort.New(in)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := RunMultiGPUCtx(context.Background(), be, s, 0.2, 7, coalesceOpts(coalesce)...)
			if err != nil {
				t.Fatalf("devices=%d coalesce=%v: %v", devices, coalesce, err)
			}
			want := sortedRef(in)
			got := s.Result()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("devices=%d coalesce=%v: unsorted at %d", devices, coalesce, i)
				}
			}
			if rep.Seconds <= 0 {
				t.Errorf("devices=%d: nonpositive duration", devices)
			}
		}
	}
}

func TestMultiGPUStructure(t *testing.T) {
	// Each device's combine ranges must be disjoint and cover exactly the
	// GPU portion.
	p := newProbe(2, 8)
	be, err := hpu.NewMultiSim(hpu.HPU1(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunMultiGPUCtx(context.Background(), be, p, 0.25, 5, WithSplit(2)); err != nil {
		t.Fatal(err)
	}
	for level, ranges := range p.combinedRanges() {
		total := 0
		for _, r := range ranges {
			total += r[1] - r[0]
		}
		if want := TasksAtLevel(2, level); total != want {
			t.Errorf("level %d: combined tasks = %d, want %d (%v)", level, total, want, ranges)
		}
	}
}

func TestMultiGPUAlphaOne(t *testing.T) {
	// α=1 leaves every device idle; the run degenerates to CPU-only.
	in := workload.Uniform(1<<10, 1)
	be, err := hpu.NewMultiSim(hpu.HPU2(), 2)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := mergesort.New(in)
	rep, err := RunMultiGPUCtx(context.Background(), be, s, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GPUPortionSeconds != 0 {
		t.Errorf("α=1 multi-GPU run reported device time %g", rep.GPUPortionSeconds)
	}
	got := s.Result()
	want := sortedRef(in)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("unsorted")
		}
	}
}

func TestMultiGPUMoreDevicesThanWork(t *testing.T) {
	// Split level 1 on a=2 gives at most 2 GPU stripes; 4 devices must not
	// break striping.
	in := workload.Uniform(1<<10, 2)
	be, err := hpu.NewMultiSim(hpu.HPU1(), 4)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := mergesort.New(in)
	if _, err := RunMultiGPUCtx(context.Background(), be, s, 0.4, 4, WithSplit(1), WithCoalesce()); err != nil {
		t.Fatal(err)
	}
	got := s.Result()
	want := sortedRef(in)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("unsorted")
		}
	}
}

func TestMultiGPUValidation(t *testing.T) {
	if _, err := hpu.NewMultiSim(hpu.HPU1(), 0); err == nil {
		t.Error("NewMultiSim accepted 0 devices")
	}
	be, _ := hpu.NewMultiSim(hpu.HPU1(), 1)
	s, _ := mergesort.New(workload.Uniform(1<<8, 1))
	if _, err := RunMultiGPUCtx(context.Background(), be, s, -1, 3, WithSplit(0)); err == nil {
		t.Error("accepted alpha < 0")
	}
	if _, err := RunMultiGPUCtx(context.Background(), be, s, 0.5, 99, WithSplit(0)); err == nil {
		t.Error("accepted y > L")
	}
}

// TestDualDieFootnote reproduces the decision behind the paper's footnote 5:
// on HPU1's dual-GPU card, the second die's extra transfers are not
// worthwhile for the hybrid mergesort at the paper's sizes.
func TestDualDieFootnote(t *testing.T) {
	in := workload.Uniform(1<<16, 3)
	run := func(devices int) float64 {
		be, err := hpu.NewMultiSim(hpu.HPU1(), devices)
		if err != nil {
			t.Fatal(err)
		}
		s, _ := mergesort.New(in)
		rep, err := RunMultiGPUCtx(context.Background(), be, s, 0.17, 8, WithCoalesce())
		if err != nil {
			t.Fatal(err)
		}
		return rep.Seconds
	}
	single, dual := run(1), run(2)
	// The dual-die run must not be dramatically better — the available
	// parallelism cannot saturate both dies above the transfer level
	// (footnote 5); allow it to be mildly better or worse.
	if dual < 0.75*single {
		t.Errorf("dual-die run %gs much faster than single %gs; footnote 5 trade-off not reproduced",
			dual, single)
	}
}
