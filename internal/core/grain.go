package core

// Leaf coarsening (DESIGN.md §11): near the leaves a breadth-first level
// holds a^l tiny tasks, and per-task scheduling overhead dominates the
// useful work. A grain of n collapses the bottom k = ⌊log_a(n)⌋ internal
// levels of the CPU portion into ONE batch whose task j executes the whole
// subtree rooted at coarse level cl = L−k depth-first in place: divide
// levels cl..L−1, the base case, and combine levels L−1..cl, restricted to
// subtree j's contiguous index ranges. The result is bit-identical to the
// level-by-level execution because subproblems at each level are indexed
// contiguously (the Alg contract), so distinct subtrees touch disjoint data
// and within a subtree the phase order (divide top-down, base, combine
// bottom-up) is preserved exactly.
//
// Coarsening applies only to CPU-side batches, whose constructors are pure
// (the executors already build them eagerly at plan-construction time);
// GPU batch constructors may be stateful (layout transforms) and are never
// coarsened.

// GrainAuto selects the leaf-coarsening grain automatically: the largest
// collapse that still leaves at least 4·p coarse subtrees, so every CPU
// worker keeps several steals' worth of slack.
const GrainAuto = -1

// autoGrainSlack is the minimum number of coarse subtrees per CPU worker
// that GrainAuto preserves.
const autoGrainSlack = 4

// WithGrain sets the leaf-coarsening grain for the run's CPU portion: the
// bottom ⌊log_a(n)⌋ breadth-first levels collapse into one depth-first
// coarse chunk per subtree (at most n leaves each). 0 or 1 disables
// coarsening (the default); GrainAuto picks the largest grain that keeps
// all CPU workers busy. Results are bit-identical for any grain. Executors
// without a CPU leaf phase (sequential, basic hybrid, GPU-only, fused)
// accept and ignore the option.
func WithGrain(n int) Option {
	return func(c *RunConfig) {
		if n < 0 {
			n = GrainAuto
		}
		c.Grain = n
	}
}

// coarseLevels resolves the configured grain to k, the number of bottom
// internal levels to collapse. L is the total internal level count, floor
// the lowest level the coarse root may reach (0 for CPU-only runs, the
// split level for the advanced hybrid's CPU portion), and tasksAt(cl) the
// number of CPU-owned subtrees rooted at level cl (used by GrainAuto to
// preserve parallel slack of autoGrainSlack·p).
func coarseLevels(grain, a, L, floor, p int, tasksAt func(cl int) int) int {
	maxK := L - floor
	if maxK < 0 {
		maxK = 0
	}
	switch {
	case grain == 0 || grain == 1:
		return 0
	case grain == GrainAuto:
		k := 0
		for k < maxK && tasksAt(L-k-1) >= autoGrainSlack*p {
			k++
		}
		return k
	default:
		k, leaves := 0, 1
		for k < maxK && leaves*a <= grain {
			k++
			leaves *= a
		}
		return k
	}
}

// CoarseBatch builds the coarse batch for subtrees [lo, hi) rooted at level
// cl of alg's recursion tree: task j executes subtree lo+j completely and in
// place — divide levels cl..Levels()−1, the base case, then combine levels
// Levels()−1..cl — over the subtree's contiguous index ranges. Per-task Cost
// aggregates the per-level CPU costs of one subtree. The per-level batches
// are constructed eagerly, matching the executors' existing contract that
// CPU batch constructors are pure.
func CoarseBatch(alg Alg, cl, lo, hi int) Batch {
	L := alg.Levels()
	a := alg.Arity()
	w := hi - lo
	if w <= 0 {
		return Batch{}
	}
	// phase is one level's work restricted to the coarse range: run is the
	// level batch's (range-relative) task body, f the number of its tasks
	// belonging to each subtree.
	type phase struct {
		run func(i int)
		f   int
	}
	var phases []phase
	var perTask Cost
	add := func(b Batch, f int) {
		if b.Empty() {
			return
		}
		perTask.Ops += b.Cost.Ops * float64(f)
		perTask.MemWords += b.Cost.MemWords * float64(f)
		if b.Cost.WorkingSet > perTask.WorkingSet {
			perTask.WorkingSet = b.Cost.WorkingSet
		}
		if b.Run != nil {
			phases = append(phases, phase{b.Run, f})
		}
	}
	for l := cl; l < L; l++ {
		f := TasksAtLevel(a, l-cl)
		add(alg.DivideBatch(l, lo*f, hi*f), f)
	}
	fL := TasksAtLevel(a, L-cl)
	add(alg.BaseBatch(lo*fL, hi*fL), fL)
	for l := L - 1; l >= cl; l-- {
		f := TasksAtLevel(a, l-cl)
		add(alg.CombineBatch(l, lo*f, hi*f), f)
	}
	return Batch{
		Tasks: w,
		Cost:  perTask,
		Level: cl,
		Run: func(j int) {
			for _, ph := range phases {
				for i := j * ph.f; i < (j+1)*ph.f; i++ {
					ph.run(i)
				}
			}
		},
	}
}
