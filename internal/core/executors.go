package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/dcerr"
)

// Report summarizes one execution.
type Report struct {
	Algorithm string
	Strategy  string
	// AutoStrategy is the strategy the serving layer's auto-tuner chose for
	// the job ("" unless the job was submitted with Strategy Auto). It can
	// differ from Strategy when a reliability policy substituted the
	// execution path (a CPU fallback or a hedge win runs bf-cpu whatever
	// was chosen).
	AutoStrategy string
	// Seconds is the total makespan. For a canceled (Partial) run it is the
	// time from start to the level boundary where execution stopped.
	Seconds float64
	// CPUPortionSeconds is, for the advanced strategy, the time at which
	// the CPU finished its α-portion (measured from the fork); for other
	// strategies it is the time spent in CPU phases.
	CPUPortionSeconds float64
	// GPUPortionSeconds is the time at which the GPU chain (including the
	// transfer back) finished, measured from the fork; for GPU-only runs
	// it is the device-resident time excluding transfers.
	GPUPortionSeconds float64
	// Partial reports that the run was canceled at a level boundary before
	// completing; the instance's result data is not valid.
	Partial bool
}

// DefaultSplit returns the natural split level for the advanced strategy:
// the level (from the top) at which the CPU's α-portion first contains at
// least p subproblems, ⌈log_a(p/α)⌉, clamped to [0, y]. Below this level the
// CPU side can keep all p cores busy, matching the §5.2 analysis.
func DefaultSplit(alg Alg, p int, alpha float64, y int) int {
	if alpha <= 0 {
		return 0
	}
	a := alg.Arity()
	s := 0
	for TasksAtLevel(a, s) > 0 && alpha*float64(TasksAtLevel(a, s)) < float64(p) && s < y {
		s++
	}
	if s > y {
		s = y
	}
	return s
}

// Autonomous marks backends whose submitted work progresses on its own
// goroutines, so an executor can block on its chain's completion signal
// without driving Wait. Event-loop backends (the simulator) lack this
// method — or return false — and are driven via Wait instead.
type Autonomous interface {
	Autonomous() bool
}

// Closer is implemented by backends with an explicit shutdown; executors
// refuse to start on a closed backend.
type Closer interface {
	Closed() bool
}

// Faulter is implemented by backend layers that can report a device fault
// observed while a run was in flight — the fault-injection wrapper of
// internal/faults, or a real device adapter surfacing asynchronous launch
// errors. Executors consult it when the run's chain completes: a non-nil
// fault marks the Report partial and classifies the run's error under
// dcerr.ErrDeviceFault, so the serving layer's retry and fallback policies
// can re-divide the work instead of returning corrupt results.
type Faulter interface {
	// Fault returns the first device fault observed during the run, or nil.
	Fault() error
}

// DeviceProber is implemented by backends that can cheaply verify their
// device path is alive without submitting work. The serving layer's circuit
// breaker consults it before admitting a half-open trial job.
type DeviceProber interface {
	// ProbeDevice returns nil when the device path can accept work.
	ProbeDevice() error
}

// deviceFault returns the backend chain's recorded fault, if any.
func deviceFault(be Backend) error {
	if f, ok := be.(Faulter); ok {
		return f.Fault()
	}
	return nil
}

func autonomous(be Backend) bool {
	a, ok := be.(Autonomous)
	return ok && a.Autonomous()
}

// checkOpen returns ErrBackendClosed if the backend reports itself closed.
func checkOpen(be Backend) error {
	if c, ok := be.(Closer); ok && c.Closed() {
		return fmt.Errorf("core: %w", dcerr.ErrBackendClosed)
	}
	return nil
}

// instrument applies the run's observability layers to the backend: first
// the user wrapper (tracing), then — outermost, so it accounts the run
// exactly as driven — the metrics meter.
func instrument(be Backend, cfg *RunConfig) Backend {
	if cfg.Wrap != nil {
		be = cfg.Wrap(be)
	}
	if cfg.Metrics != nil {
		be = meter(be, cfg.Metrics)
	}
	return be
}

// atLevel stamps the batch with its recursion level for observability
// layers (trace spans, per-level metrics).
func atLevel(b Batch, l int) Batch {
	b.Level = l
	return b
}

// step is one asynchronous stage of an execution plan.
type step func(next func())

// stepsPool recycles the executors' plan slices. A plan is one slice of
// step closures per run (a few per hybrid run); leasing the slice spine
// here removes the append-growth garbage from every Submit on the serving
// hot path. The closures themselves still allocate — they capture per-run
// state — but the spine dominated the slice churn.
var stepsPool = sync.Pool{New: func() any {
	s := make([]step, 0, 64)
	return &s
}}

// getSteps leases an empty plan slice.
func getSteps() []step {
	return (*stepsPool.Get().(*[]step))[:0]
}

// putSteps returns a plan slice once its chain has fully completed. The
// stored closures are cleared so pooled spines don't pin per-run captures.
func putSteps(s []step) {
	if cap(s) == 0 {
		return
	}
	s = s[:cap(s)]
	clear(s)
	s = s[:0]
	stepsPool.Put(&s)
}

// runSeq chains steps sequentially, then calls done.
func runSeq(steps []step, done func()) {
	runSeqCtx(context.Background(), steps, func(bool) { done() })
}

// runSeqCtx chains steps sequentially, checking for cancellation before each
// step (a level boundary). done fires exactly once, with canceled=true if
// the chain stopped early. The in-flight step always completes before the
// chain stops, so no batch is ever abandoned mid-service.
func runSeqCtx(ctx context.Context, steps []step, done func(canceled bool)) {
	cdone := ctx.Done()
	var at func(i int)
	at = func(i int) {
		if cdone != nil && ctx.Err() != nil {
			done(true)
			return
		}
		if i == len(steps) {
			done(false)
			return
		}
		steps[i](func() { at(i + 1) })
	}
	at(0)
}

// awaitChain blocks until the chain that will close done has finished. For
// event-loop backends it drives Wait; for autonomous backends it blocks on
// the signal alone, so concurrent runs sharing the backend do not wait for
// each other.
func awaitChain(be Backend, done <-chan struct{}) {
	if autonomous(be) {
		<-done
		return
	}
	be.Wait()
	select {
	case <-done:
	default:
		panic("core: execution did not complete")
	}
}

// canceledErr wraps the cancellation cause under the typed sentinel.
func canceledErr(ctx context.Context, alg Alg, strategy string) error {
	if cause := context.Cause(ctx); cause != nil && cause != context.Canceled {
		return fmt.Errorf("core: %s %s: %w: %w", alg.Name(), strategy, dcerr.ErrCanceled, cause)
	}
	return fmt.Errorf("core: %s %s: %w", alg.Name(), strategy, dcerr.ErrCanceled)
}

// finish invokes the algorithm's Finish hook, if any.
func finish(alg Alg) {
	type finisher interface{ Finish() }
	if f, ok := alg.(finisher); ok {
		f.Finish()
	}
}

// settle finalizes a report after its chain completed: stamps the makespan,
// runs the Finish hook (only for complete, fault-free runs — a partial
// result is not valid data), applies observers, and builds the cancellation
// or device-fault error. A device fault recorded by a Faulter layer takes
// precedence over cancellation: the fault is the more specific cause, and
// its error already classifies under dcerr.ErrDeviceFault.
func settle(ctx context.Context, be Backend, cfg *RunConfig, alg Alg, rep *Report, start float64, canceled bool) error {
	rep.Seconds = be.Now() - start
	rep.AutoStrategy = cfg.AutoStrategy
	if mb, ok := be.(*meteredBackend); ok {
		mb.finish(rep.Seconds)
	}
	var err error
	switch fault := deviceFault(be); {
	case fault != nil:
		rep.Partial = true
		err = fmt.Errorf("core: %s %s: %w", alg.Name(), rep.Strategy, fault)
	case canceled:
		rep.Partial = true
		err = canceledErr(ctx, alg, rep.Strategy)
	default:
		finish(alg)
	}
	if cfg.Observe != nil {
		cfg.Observe(rep)
	}
	return err
}

// RunSequentialCtx executes the algorithm on a single CPU core (the paper's
// recursive baseline), checking ctx at every level boundary. On cancellation
// it returns a partial Report and an error wrapping dcerr.ErrCanceled.
// WithGrain is accepted but has no effect — the run is already one task per
// level on one core.
func RunSequentialCtx(ctx context.Context, be Backend, alg Alg, opts ...Option) (Report, error) {
	cfg := NewRunConfig(opts...)
	be = instrument(be, &cfg)
	if err := checkOpen(be); err != nil {
		return Report{}, err
	}
	L := alg.Levels()
	a := alg.Arity()
	steps := getSteps()
	defer func() { putSteps(steps) }()
	for l := 0; l < L; l++ {
		b := atLevel(alg.DivideBatch(l, 0, TasksAtLevel(a, l)), l)
		steps = append(steps, func(next func()) { submitSeq(be, b, next) })
	}
	base := atLevel(alg.BaseBatch(0, TasksAtLevel(a, L)), L)
	steps = append(steps, func(next func()) { submitSeq(be, base, next) })
	for l := L - 1; l >= 0; l-- {
		b := atLevel(alg.CombineBatch(l, 0, TasksAtLevel(a, l)), l)
		steps = append(steps, func(next func()) { submitSeq(be, b, next) })
	}

	rep := Report{Algorithm: alg.Name(), Strategy: "seq-1cpu"}
	start := be.Now()
	done := make(chan struct{})
	var canceled bool
	runSeqCtx(ctx, steps, func(c bool) { canceled = c; close(done) })
	awaitChain(be, done)
	return rep, settle(ctx, be, &cfg, alg, &rep, start, canceled)
}

// RunBreadthFirstCPUCtx executes the algorithm breadth-first on the CPU
// only, using all p cores per level (the multi-core baseline), checking ctx
// at every level boundary. With WithGrain the bottom levels collapse into
// depth-first coarse chunks (grain.go); the result is bit-identical.
func RunBreadthFirstCPUCtx(ctx context.Context, be Backend, alg Alg, opts ...Option) (Report, error) {
	cfg := NewRunConfig(opts...)
	be = instrument(be, &cfg)
	if err := checkOpen(be); err != nil {
		return Report{}, err
	}
	L := alg.Levels()
	a := alg.Arity()
	k := coarseLevels(cfg.Grain, a, L, 0, be.CPU().Parallelism(),
		func(cl int) int { return TasksAtLevel(a, cl) })
	cl := L - k
	steps := getSteps()
	defer func() { putSteps(steps) }()
	for l := 0; l < cl; l++ {
		b := atLevel(alg.DivideBatch(l, 0, TasksAtLevel(a, l)), l)
		steps = append(steps, func(next func()) { be.CPU().Submit(b, next) })
	}
	if k > 0 {
		// Coarse step: divide cl..L-1, base, combine L-1..cl, one
		// depth-first chunk per subtree rooted at cl.
		b := CoarseBatch(alg, cl, 0, TasksAtLevel(a, cl))
		steps = append(steps, func(next func()) { be.CPU().Submit(b, next) })
	} else {
		base := atLevel(alg.BaseBatch(0, TasksAtLevel(a, L)), L)
		steps = append(steps, func(next func()) { be.CPU().Submit(base, next) })
	}
	for l := cl - 1; l >= 0; l-- {
		b := atLevel(alg.CombineBatch(l, 0, TasksAtLevel(a, l)), l)
		steps = append(steps, func(next func()) { be.CPU().Submit(b, next) })
	}

	rep := Report{Algorithm: alg.Name(), Strategy: "bf-cpu"}
	start := be.Now()
	done := make(chan struct{})
	var canceled bool
	runSeqCtx(ctx, steps, func(c bool) { canceled = c; close(done) })
	awaitChain(be, done)
	return rep, settle(ctx, be, &cfg, alg, &rep, start, canceled)
}

// RunBasicHybridCtx executes the §5.1 basic work division: levels above the
// crossover run on the CPU (full width), levels at and below it — including
// the leaves — run on the GPU, with a single round trip across the link.
// crossover is the level index i at which execution moves to the GPU; use
// the model package's BasicCrossover to compute the paper's log_a(p/γ).
// ctx is checked at every level boundary; on cancellation the partial
// Report's error wraps dcerr.ErrCanceled. WithGrain is accepted but has no
// effect: the CPU portion holds only the levels above the crossover, never
// a leaf-adjacent phase that coarsening could collapse.
func RunBasicHybridCtx(ctx context.Context, be Backend, alg GPUAlg, crossover int, opts ...Option) (Report, error) {
	cfg := NewRunConfig(opts...)
	be = instrument(be, &cfg)
	if err := checkOpen(be); err != nil {
		return Report{}, err
	}
	L := alg.Levels()
	if crossover < 0 || crossover > L {
		return Report{}, fmt.Errorf("core: crossover level %d out of range [0,%d]: %w", crossover, L, dcerr.ErrBadLevel)
	}
	if be.GPU() == nil {
		return Report{}, fmt.Errorf("core: %w", dcerr.ErrNoGPU)
	}
	a := alg.Arity()
	x := crossover
	start := be.Now()
	steps := getSteps()
	defer func() { putSteps(steps) }()

	// Top divide phase on CPU.
	for l := 0; l < x; l++ {
		b := atLevel(alg.DivideBatch(l, 0, TasksAtLevel(a, l)), l)
		steps = append(steps, func(next func()) { be.CPU().Submit(b, next) })
	}
	// Ship the whole instance to the device, staging into a leased segment
	// when the backend pools device memory (released after the chain, so
	// the next same-shape run reuses the residency).
	bytes := alg.GPUBytes(x, 0, TasksAtLevel(a, x))
	sa := segmentAllocator(be)
	var seg *Segment
	defer func() { seg.Release() }()
	if sa != nil {
		steps = append(steps, func(next func()) { seg = sa.AllocSegment(bytes); next() })
	}
	steps = append(steps, func(next func()) { be.TransferToGPU(bytes, next) })
	// Device-resident phase: divide down, base, combine back up to x.
	for l := x; l < L; l++ {
		b := atLevel(alg.GPUDivideBatch(l, 0, TasksAtLevel(a, l)), l)
		steps = append(steps, func(next func()) { be.GPU().Submit(b, next) })
	}
	tr, _ := alg.(Transformable)
	if cfg.Coalesce && tr != nil {
		b := atLevel(tr.PermuteForGPU(L, 0, TasksAtLevel(a, L)), L)
		steps = append(steps, func(next func()) { be.GPU().Submit(b, next) })
	}
	steps = append(steps, func(next func()) {
		// Constructed lazily: a preceding permute step may have changed
		// the algorithm's device layout state.
		be.GPU().Submit(atLevel(alg.GPUBaseBatch(0, TasksAtLevel(a, L)), L), next)
	})
	for l := L - 1; l >= x; l-- {
		l := l
		steps = append(steps, func(next func()) {
			be.GPU().Submit(atLevel(alg.GPUCombineBatch(l, 0, TasksAtLevel(a, l)), l), next)
		})
	}
	if cfg.Coalesce && tr != nil {
		steps = append(steps, func(next func()) {
			be.GPU().Submit(atLevel(tr.PermuteBack(x, 0, TasksAtLevel(a, x)), x), next)
		})
	}
	steps = append(steps, func(next func()) { be.TransferToCPU(bytes, next) })
	rep := Report{Algorithm: alg.Name(), Strategy: "basic-hybrid"}
	steps = append(steps, func(next func()) { rep.GPUPortionSeconds = be.Now() - start; next() })
	// Remaining combine levels on CPU.
	for l := x - 1; l >= 0; l-- {
		b := atLevel(alg.CombineBatch(l, 0, TasksAtLevel(a, l)), l)
		steps = append(steps, func(next func()) { be.CPU().Submit(b, next) })
	}

	done := make(chan struct{})
	var canceled bool
	runSeqCtx(ctx, steps, func(c bool) { canceled = c; close(done) })
	awaitChain(be, done)
	return rep, settle(ctx, be, &cfg, alg, &rep, start, canceled)
}

// RunAdvancedHybridCtx executes the §5.2 advanced work division
// (Algorithm 8). At the split level the subproblems are partitioned
// α : (1−α); the CPU solves its portion breadth-first while the GPU solves
// the rest bottom-up through level y, hands it back (the second and last
// transfer), and the CPU finishes everything above. CPU-side work of both
// chains shares the same p cores, as in the paper's two-thread
// implementation. The split level defaults to DefaultSplit; override it with
// WithSplit. ctx is checked at every level boundary of all three chains.
func RunAdvancedHybridCtx(ctx context.Context, be Backend, alg GPUAlg, alpha float64, y int, opts ...Option) (Report, error) {
	cfg := NewRunConfig(opts...)
	be = instrument(be, &cfg)
	if err := checkOpen(be); err != nil {
		return Report{}, err
	}
	L := alg.Levels()
	a := alg.Arity()
	if alpha < 0 || alpha > 1 {
		return Report{}, fmt.Errorf("core: alpha %g: %w", alpha, dcerr.ErrBadAlpha)
	}
	if y < 0 || y > L {
		return Report{}, fmt.Errorf("core: transfer level %d out of range [0,%d]: %w", y, L, dcerr.ErrBadLevel)
	}
	if be.GPU() == nil {
		return Report{}, fmt.Errorf("core: %w", dcerr.ErrNoGPU)
	}
	s := DefaultSplit(alg, be.CPU().Parallelism(), alpha, y)
	if cfg.SplitSet {
		s = cfg.Split
	}
	if s > y {
		return Report{}, fmt.Errorf("core: split level %d above transfer level %d: %w", s, y, dcerr.ErrBadLevel)
	}

	width := TasksAtLevel(a, s)
	cCount := int(alpha*float64(width) + 0.5)
	if cCount < 0 {
		cCount = 0
	}
	if cCount > width {
		cCount = width
	}
	// at returns the index range of a portion [c0,c1) (defined at level s)
	// at level l ≥ s.
	at := func(l, c0, c1 int) (int, int) {
		f := TasksAtLevel(a, l-s)
		return c0 * f, c1 * f
	}

	start := be.Now()

	// Joint top divide phase, full width, on CPU.
	top := getSteps()
	defer func() { putSteps(top) }()
	for l := 0; l < s; l++ {
		b := atLevel(alg.DivideBatch(l, 0, TasksAtLevel(a, l)), l)
		top = append(top, func(next func()) { be.CPU().Submit(b, next) })
	}

	// CPU chain over portion [0, cCount). With WithGrain its bottom levels
	// collapse into depth-first coarse chunks, clamped at the split level
	// (the coarse root never rises above s); the GPU portion is untouched.
	cpuChain := getSteps()
	defer func() { putSteps(cpuChain) }()
	if cCount > 0 {
		k := coarseLevels(cfg.Grain, a, L, s, be.CPU().Parallelism(),
			func(cl int) int { lo, hi := at(cl, 0, cCount); return hi - lo })
		cl := L - k
		for l := s; l < cl; l++ {
			lo, hi := at(l, 0, cCount)
			b := atLevel(alg.DivideBatch(l, lo, hi), l)
			cpuChain = append(cpuChain, func(next func()) { be.CPU().Submit(b, next) })
		}
		if k > 0 {
			lo, hi := at(cl, 0, cCount)
			b := CoarseBatch(alg, cl, lo, hi)
			cpuChain = append(cpuChain, func(next func()) { be.CPU().Submit(b, next) })
		} else {
			lo, hi := at(L, 0, cCount)
			base := atLevel(alg.BaseBatch(lo, hi), L)
			cpuChain = append(cpuChain, func(next func()) { be.CPU().Submit(base, next) })
		}
		for l := cl - 1; l >= s; l-- {
			lo, hi := at(l, 0, cCount)
			b := atLevel(alg.CombineBatch(l, lo, hi), l)
			cpuChain = append(cpuChain, func(next func()) { be.CPU().Submit(b, next) })
		}
	}

	// GPU chain over portion [cCount, width).
	gpuChain := getSteps()
	defer func() { putSteps(gpuChain) }()
	var gpuDeviceDone float64
	tr, _ := alg.(Transformable)
	sa := segmentAllocator(be)
	var seg *Segment
	defer func() { seg.Release() }()
	if cCount < width {
		bytes := alg.GPUBytes(s, cCount, width)
		if sa != nil {
			gpuChain = append(gpuChain, func(next func()) { seg = sa.AllocSegment(bytes); next() })
		}
		gpuChain = append(gpuChain, func(next func()) { be.TransferToGPU(bytes, next) })
		for l := s; l < L; l++ {
			lo, hi := at(l, cCount, width)
			b := atLevel(alg.GPUDivideBatch(l, lo, hi), l)
			gpuChain = append(gpuChain, func(next func()) { be.GPU().Submit(b, next) })
		}
		if cfg.Coalesce && tr != nil {
			lo, hi := at(L, cCount, width)
			b := atLevel(tr.PermuteForGPU(L, lo, hi), L)
			gpuChain = append(gpuChain, func(next func()) { be.GPU().Submit(b, next) })
		}
		gpuChain = append(gpuChain, func(next func()) {
			lo, hi := at(L, cCount, width)
			be.GPU().Submit(atLevel(alg.GPUBaseBatch(lo, hi), L), next)
		})
		for l := L - 1; l >= y; l-- {
			l := l
			gpuChain = append(gpuChain, func(next func()) {
				lo, hi := at(l, cCount, width)
				be.GPU().Submit(atLevel(alg.GPUCombineBatch(l, lo, hi), l), next)
			})
		}
		if cfg.Coalesce && tr != nil {
			gpuChain = append(gpuChain, func(next func()) {
				lo, hi := at(y, cCount, width)
				be.GPU().Submit(atLevel(tr.PermuteBack(y, lo, hi), y), next)
			})
		}
		gpuChain = append(gpuChain, func(next func()) { be.TransferToCPU(bytes, next) })
		gpuChain = append(gpuChain, func(next func()) { gpuDeviceDone = be.Now(); next() })
		// Above the transfer level the GPU portion continues on the CPU,
		// competing with the CPU chain for cores, as in the paper.
		for l := y - 1; l >= s; l-- {
			l := l
			gpuChain = append(gpuChain, func(next func()) {
				lo, hi := at(l, cCount, width)
				be.CPU().Submit(atLevel(alg.CombineBatch(l, lo, hi), l), next)
			})
		}
	}

	// Joint combine phase above the split, full width, on CPU.
	tail := getSteps()
	defer func() { putSteps(tail) }()
	for l := s - 1; l >= 0; l-- {
		b := atLevel(alg.CombineBatch(l, 0, TasksAtLevel(a, l)), l)
		tail = append(tail, func(next func()) { be.CPU().Submit(b, next) })
	}

	rep := Report{Algorithm: alg.Name(), Strategy: "advanced-hybrid"}
	done := make(chan struct{})
	var canceled bool

	runSeqCtx(ctx, top, func(c bool) {
		if c {
			canceled = true
			close(done)
			return
		}
		forkAt := be.Now()
		var cpuCanceled, gpuCanceled bool
		join := Join(2, func() {
			if cpuCanceled || gpuCanceled {
				canceled = true
				close(done)
				return
			}
			runSeqCtx(ctx, tail, func(c bool) { canceled = c; close(done) })
		})
		runSeqCtx(ctx, cpuChain, func(c bool) {
			cpuCanceled = c
			rep.CPUPortionSeconds = be.Now() - forkAt
			join()
		})
		runSeqCtx(ctx, gpuChain, func(c bool) {
			gpuCanceled = c
			if gpuDeviceDone >= forkAt {
				rep.GPUPortionSeconds = gpuDeviceDone - forkAt
			}
			join()
		})
	})
	awaitChain(be, done)
	return rep, settle(ctx, be, &cfg, alg, &rep, start, canceled)
}

// RunGPUOnlyCtx executes the whole algorithm breadth-first on the device
// (the Fig 9 baseline), checking ctx at every level boundary. The report's
// GPUPortionSeconds excludes the two host↔device transfers ("sort only" in
// the paper); Seconds includes them.
func RunGPUOnlyCtx(ctx context.Context, be Backend, alg GPUAlg, opts ...Option) (Report, error) {
	cfg := NewRunConfig(opts...)
	be = instrument(be, &cfg)
	if err := checkOpen(be); err != nil {
		return Report{}, err
	}
	if be.GPU() == nil {
		return Report{}, fmt.Errorf("core: %w", dcerr.ErrNoGPU)
	}
	L := alg.Levels()
	a := alg.Arity()
	start := be.Now()
	steps := getSteps()
	defer func() { putSteps(steps) }()
	bytes := alg.GPUBytes(0, 0, 1)
	sa := segmentAllocator(be)
	var seg *Segment
	defer func() { seg.Release() }()
	if sa != nil {
		steps = append(steps, func(next func()) { seg = sa.AllocSegment(bytes); next() })
	}
	steps = append(steps, func(next func()) { be.TransferToGPU(bytes, next) })
	var devStart float64
	steps = append(steps, func(next func()) { devStart = be.Now(); next() })
	for l := 0; l < L; l++ {
		b := atLevel(alg.GPUDivideBatch(l, 0, TasksAtLevel(a, l)), l)
		steps = append(steps, func(next func()) { be.GPU().Submit(b, next) })
	}
	tr, _ := alg.(Transformable)
	if cfg.Coalesce && tr != nil {
		b := atLevel(tr.PermuteForGPU(L, 0, TasksAtLevel(a, L)), L)
		steps = append(steps, func(next func()) { be.GPU().Submit(b, next) })
	}
	steps = append(steps, func(next func()) {
		be.GPU().Submit(atLevel(alg.GPUBaseBatch(0, TasksAtLevel(a, L)), L), next)
	})
	for l := L - 1; l >= 0; l-- {
		l := l
		steps = append(steps, func(next func()) {
			be.GPU().Submit(atLevel(alg.GPUCombineBatch(l, 0, TasksAtLevel(a, l)), l), next)
		})
	}
	if cfg.Coalesce && tr != nil {
		steps = append(steps, func(next func()) {
			be.GPU().Submit(tr.PermuteBack(0, 0, 1), next)
		})
	}
	rep := Report{Algorithm: alg.Name(), Strategy: "gpu-only"}
	steps = append(steps, func(next func()) { rep.GPUPortionSeconds = be.Now() - devStart; next() })
	steps = append(steps, func(next func()) { be.TransferToCPU(bytes, next) })

	done := make(chan struct{})
	var canceled bool
	runSeqCtx(ctx, steps, func(c bool) { canceled = c; close(done) })
	awaitChain(be, done)
	return rep, settle(ctx, be, &cfg, alg, &rep, start, canceled)
}
