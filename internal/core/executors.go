package core

import (
	"fmt"
)

// Options control backend-independent execution details.
type Options struct {
	// Coalesce applies the §6.3 memory-layout transformation around the
	// GPU-resident phase when the algorithm implements Transformable.
	Coalesce bool
}

// Report summarizes one execution.
type Report struct {
	Algorithm string
	Strategy  string
	// Seconds is the total makespan.
	Seconds float64
	// CPUPortionSeconds is, for the advanced strategy, the time at which
	// the CPU finished its α-portion (measured from the fork); for other
	// strategies it is the time spent in CPU phases.
	CPUPortionSeconds float64
	// GPUPortionSeconds is the time at which the GPU chain (including the
	// transfer back) finished, measured from the fork; for GPU-only runs
	// it is the device-resident time excluding transfers.
	GPUPortionSeconds float64
}

// AdvancedParams configure the §5.2 advanced work division.
type AdvancedParams struct {
	// Alpha is the fraction of subproblems assigned to the CPU.
	Alpha float64
	// Y is the transfer level: the GPU executes its portion bottom-up from
	// the leaves through level Y, then hands results back to the CPU.
	Y int
	// Split is the level at which the α : (1−α) split is applied
	// (Algorithm 8's threshold level). Must satisfy 0 ≤ Split ≤ Y. If
	// negative, DefaultSplit is used.
	Split int
}

// DefaultSplit returns the natural split level for the advanced strategy:
// the level (from the top) at which the CPU's α-portion first contains at
// least p subproblems, ⌈log_a(p/α)⌉, clamped to [0, y]. Below this level the
// CPU side can keep all p cores busy, matching the §5.2 analysis.
func DefaultSplit(alg Alg, p int, alpha float64, y int) int {
	if alpha <= 0 {
		return 0
	}
	a := alg.Arity()
	s := 0
	for TasksAtLevel(a, s) > 0 && alpha*float64(TasksAtLevel(a, s)) < float64(p) && s < y {
		s++
	}
	if s > y {
		s = y
	}
	return s
}

// step is one asynchronous stage of an execution plan.
type step func(next func())

// runSeq chains steps sequentially, then calls done.
func runSeq(steps []step, done func()) {
	var at func(i int)
	at = func(i int) {
		if i == len(steps) {
			done()
			return
		}
		steps[i](func() { at(i + 1) })
	}
	at(0)
}

// finish invokes the algorithm's Finish hook, if any.
func finish(alg Alg) {
	type finisher interface{ Finish() }
	if f, ok := alg.(finisher); ok {
		f.Finish()
	}
}

// RunBreadthFirstCPU executes the algorithm breadth-first on the CPU only,
// using all p cores per level (the multi-core baseline).
func RunBreadthFirstCPU(be Backend, alg Alg) Report {
	start := be.Now()
	L := alg.Levels()
	a := alg.Arity()
	var steps []step
	for l := 0; l < L; l++ {
		b := alg.DivideBatch(l, 0, TasksAtLevel(a, l))
		steps = append(steps, func(next func()) { be.CPU().Submit(b, next) })
	}
	base := alg.BaseBatch(0, TasksAtLevel(a, L))
	steps = append(steps, func(next func()) { be.CPU().Submit(base, next) })
	for l := L - 1; l >= 0; l-- {
		b := alg.CombineBatch(l, 0, TasksAtLevel(a, l))
		steps = append(steps, func(next func()) { be.CPU().Submit(b, next) })
	}
	doneAll := false
	runSeq(steps, func() { doneAll = true })
	be.Wait()
	if !doneAll {
		panic("core: breadth-first execution did not complete")
	}
	finish(alg)
	return Report{
		Algorithm: alg.Name(),
		Strategy:  "bf-cpu",
		Seconds:   be.Now() - start,
	}
}

// RunSequential executes the algorithm on a single CPU core (the paper's
// recursive baseline) and reports its makespan.
func RunSequential(be Backend, alg Alg) Report {
	start := be.Now()
	completed := false
	RunRecursive(be, alg, func() { completed = true })
	be.Wait()
	if !completed {
		panic("core: sequential execution did not complete")
	}
	finish(alg)
	return Report{
		Algorithm: alg.Name(),
		Strategy:  "seq-1cpu",
		Seconds:   be.Now() - start,
	}
}

// RunBasicHybrid executes the §5.1 basic work division: levels above the
// crossover run on the CPU (full width), levels at and below it — including
// the leaves — run on the GPU, with a single round trip across the link.
// crossover is the level index i at which execution moves to the GPU; use
// the model package's BasicCrossover to compute the paper's log_a(p/γ).
func RunBasicHybrid(be Backend, alg GPUAlg, crossover int, opt Options) (Report, error) {
	L := alg.Levels()
	if crossover < 0 || crossover > L {
		return Report{}, fmt.Errorf("core: crossover level %d out of range [0,%d]", crossover, L)
	}
	if be.GPU() == nil {
		return Report{}, fmt.Errorf("core: backend has no GPU")
	}
	a := alg.Arity()
	x := crossover
	start := be.Now()
	var steps []step

	// Top divide phase on CPU.
	for l := 0; l < x; l++ {
		b := alg.DivideBatch(l, 0, TasksAtLevel(a, l))
		steps = append(steps, func(next func()) { be.CPU().Submit(b, next) })
	}
	// Ship the whole instance to the device.
	bytes := alg.GPUBytes(x, 0, TasksAtLevel(a, x))
	steps = append(steps, func(next func()) { be.TransferToGPU(bytes, next) })
	// Device-resident phase: divide down, base, combine back up to x.
	for l := x; l < L; l++ {
		b := alg.GPUDivideBatch(l, 0, TasksAtLevel(a, l))
		steps = append(steps, func(next func()) { be.GPU().Submit(b, next) })
	}
	tr, _ := alg.(Transformable)
	if opt.Coalesce && tr != nil {
		b := tr.PermuteForGPU(L, 0, TasksAtLevel(a, L))
		steps = append(steps, func(next func()) { be.GPU().Submit(b, next) })
	}
	steps = append(steps, func(next func()) {
		// Constructed lazily: a preceding permute step may have changed
		// the algorithm's device layout state.
		be.GPU().Submit(alg.GPUBaseBatch(0, TasksAtLevel(a, L)), next)
	})
	for l := L - 1; l >= x; l-- {
		l := l
		steps = append(steps, func(next func()) {
			be.GPU().Submit(alg.GPUCombineBatch(l, 0, TasksAtLevel(a, l)), next)
		})
	}
	if opt.Coalesce && tr != nil {
		steps = append(steps, func(next func()) {
			be.GPU().Submit(tr.PermuteBack(x, 0, TasksAtLevel(a, x)), next)
		})
	}
	steps = append(steps, func(next func()) { be.TransferToCPU(bytes, next) })
	var gpuDone float64
	steps = append(steps, func(next func()) { gpuDone = be.Now() - start; next() })
	// Remaining combine levels on CPU.
	for l := x - 1; l >= 0; l-- {
		b := alg.CombineBatch(l, 0, TasksAtLevel(a, l))
		steps = append(steps, func(next func()) { be.CPU().Submit(b, next) })
	}

	completed := false
	runSeq(steps, func() { completed = true })
	be.Wait()
	if !completed {
		panic("core: basic hybrid execution did not complete")
	}
	finish(alg)
	return Report{
		Algorithm:         alg.Name(),
		Strategy:          "basic-hybrid",
		Seconds:           be.Now() - start,
		GPUPortionSeconds: gpuDone,
	}, nil
}

// RunAdvancedHybrid executes the §5.2 advanced work division (Algorithm 8).
// At the split level the subproblems are partitioned α : (1−α); the CPU
// solves its portion breadth-first while the GPU solves the rest bottom-up
// through level prm.Y, hands it back (the second and last transfer), and the
// CPU finishes everything above. CPU-side work of both chains shares the
// same p cores, as in the paper's two-thread implementation.
func RunAdvancedHybrid(be Backend, alg GPUAlg, prm AdvancedParams, opt Options) (Report, error) {
	L := alg.Levels()
	a := alg.Arity()
	if prm.Alpha < 0 || prm.Alpha > 1 {
		return Report{}, fmt.Errorf("core: alpha %g out of range [0,1]", prm.Alpha)
	}
	if prm.Y < 0 || prm.Y > L {
		return Report{}, fmt.Errorf("core: transfer level %d out of range [0,%d]", prm.Y, L)
	}
	s := prm.Split
	if s < 0 {
		s = DefaultSplit(alg, be.CPU().Parallelism(), prm.Alpha, prm.Y)
	}
	if s > prm.Y {
		return Report{}, fmt.Errorf("core: split level %d above transfer level %d", s, prm.Y)
	}
	if be.GPU() == nil {
		return Report{}, fmt.Errorf("core: backend has no GPU")
	}

	width := TasksAtLevel(a, s)
	cCount := int(prm.Alpha*float64(width) + 0.5)
	if cCount < 0 {
		cCount = 0
	}
	if cCount > width {
		cCount = width
	}
	// at returns the index range of a portion [c0,c1) (defined at level s)
	// at level l ≥ s.
	at := func(l, c0, c1 int) (int, int) {
		f := TasksAtLevel(a, l-s)
		return c0 * f, c1 * f
	}

	start := be.Now()

	// Joint top divide phase, full width, on CPU.
	var top []step
	for l := 0; l < s; l++ {
		b := alg.DivideBatch(l, 0, TasksAtLevel(a, l))
		top = append(top, func(next func()) { be.CPU().Submit(b, next) })
	}

	// CPU chain over portion [0, cCount).
	var cpuChain []step
	if cCount > 0 {
		for l := s; l < L; l++ {
			lo, hi := at(l, 0, cCount)
			b := alg.DivideBatch(l, lo, hi)
			cpuChain = append(cpuChain, func(next func()) { be.CPU().Submit(b, next) })
		}
		lo, hi := at(L, 0, cCount)
		base := alg.BaseBatch(lo, hi)
		cpuChain = append(cpuChain, func(next func()) { be.CPU().Submit(base, next) })
		for l := L - 1; l >= s; l-- {
			lo, hi := at(l, 0, cCount)
			b := alg.CombineBatch(l, lo, hi)
			cpuChain = append(cpuChain, func(next func()) { be.CPU().Submit(b, next) })
		}
	}

	// GPU chain over portion [cCount, width).
	var gpuChain []step
	var gpuDeviceDone float64
	tr, _ := alg.(Transformable)
	if cCount < width {
		bytes := alg.GPUBytes(s, cCount, width)
		gpuChain = append(gpuChain, func(next func()) { be.TransferToGPU(bytes, next) })
		for l := s; l < L; l++ {
			lo, hi := at(l, cCount, width)
			b := alg.GPUDivideBatch(l, lo, hi)
			gpuChain = append(gpuChain, func(next func()) { be.GPU().Submit(b, next) })
		}
		if opt.Coalesce && tr != nil {
			lo, hi := at(L, cCount, width)
			b := tr.PermuteForGPU(L, lo, hi)
			gpuChain = append(gpuChain, func(next func()) { be.GPU().Submit(b, next) })
		}
		gpuChain = append(gpuChain, func(next func()) {
			lo, hi := at(L, cCount, width)
			be.GPU().Submit(alg.GPUBaseBatch(lo, hi), next)
		})
		for l := L - 1; l >= prm.Y; l-- {
			l := l
			gpuChain = append(gpuChain, func(next func()) {
				lo, hi := at(l, cCount, width)
				be.GPU().Submit(alg.GPUCombineBatch(l, lo, hi), next)
			})
		}
		if opt.Coalesce && tr != nil {
			gpuChain = append(gpuChain, func(next func()) {
				lo, hi := at(prm.Y, cCount, width)
				be.GPU().Submit(tr.PermuteBack(prm.Y, lo, hi), next)
			})
		}
		gpuChain = append(gpuChain, func(next func()) { be.TransferToCPU(bytes, next) })
		gpuChain = append(gpuChain, func(next func()) { gpuDeviceDone = be.Now(); next() })
		// Above the transfer level the GPU portion continues on the CPU,
		// competing with the CPU chain for cores, as in the paper.
		for l := prm.Y - 1; l >= s; l-- {
			l := l
			gpuChain = append(gpuChain, func(next func()) {
				lo, hi := at(l, cCount, width)
				be.CPU().Submit(alg.CombineBatch(l, lo, hi), next)
			})
		}
	}

	// Joint combine phase above the split, full width, on CPU.
	var tail []step
	for l := s - 1; l >= 0; l-- {
		b := alg.CombineBatch(l, 0, TasksAtLevel(a, l))
		tail = append(tail, func(next func()) { be.CPU().Submit(b, next) })
	}

	var rep Report
	rep.Algorithm = alg.Name()
	rep.Strategy = "advanced-hybrid"
	completed := false

	runSeq(top, func() {
		forkAt := be.Now()
		join := Join(2, func() {
			runSeq(tail, func() { completed = true })
		})
		runSeq(cpuChain, func() {
			rep.CPUPortionSeconds = be.Now() - forkAt
			join()
		})
		runSeq(gpuChain, func() {
			if gpuDeviceDone >= forkAt {
				rep.GPUPortionSeconds = gpuDeviceDone - forkAt
			}
			join()
		})
	})
	be.Wait()
	if !completed {
		panic("core: advanced hybrid execution did not complete")
	}
	finish(alg)
	rep.Seconds = be.Now() - start
	return rep, nil
}

// RunGPUOnly executes the whole algorithm breadth-first on the device (the
// Fig 9 baseline). The report's GPUPortionSeconds excludes the two
// host↔device transfers ("sort only" in the paper); Seconds includes them.
func RunGPUOnly(be Backend, alg GPUAlg, opt Options) (Report, error) {
	if be.GPU() == nil {
		return Report{}, fmt.Errorf("core: backend has no GPU")
	}
	L := alg.Levels()
	a := alg.Arity()
	start := be.Now()
	var steps []step
	bytes := alg.GPUBytes(0, 0, 1)
	steps = append(steps, func(next func()) { be.TransferToGPU(bytes, next) })
	var devStart float64
	steps = append(steps, func(next func()) { devStart = be.Now(); next() })
	for l := 0; l < L; l++ {
		b := alg.GPUDivideBatch(l, 0, TasksAtLevel(a, l))
		steps = append(steps, func(next func()) { be.GPU().Submit(b, next) })
	}
	tr, _ := alg.(Transformable)
	if opt.Coalesce && tr != nil {
		b := tr.PermuteForGPU(L, 0, TasksAtLevel(a, L))
		steps = append(steps, func(next func()) { be.GPU().Submit(b, next) })
	}
	steps = append(steps, func(next func()) {
		be.GPU().Submit(alg.GPUBaseBatch(0, TasksAtLevel(a, L)), next)
	})
	for l := L - 1; l >= 0; l-- {
		l := l
		steps = append(steps, func(next func()) {
			be.GPU().Submit(alg.GPUCombineBatch(l, 0, TasksAtLevel(a, l)), next)
		})
	}
	if opt.Coalesce && tr != nil {
		steps = append(steps, func(next func()) {
			be.GPU().Submit(tr.PermuteBack(0, 0, 1), next)
		})
	}
	var devEnd float64
	steps = append(steps, func(next func()) { devEnd = be.Now(); next() })
	steps = append(steps, func(next func()) { be.TransferToCPU(bytes, next) })

	completed := false
	runSeq(steps, func() { completed = true })
	be.Wait()
	if !completed {
		panic("core: gpu-only execution did not complete")
	}
	finish(alg)
	return Report{
		Algorithm:         alg.Name(),
		Strategy:          "gpu-only",
		Seconds:           be.Now() - start,
		GPUPortionSeconds: devEnd - devStart,
	}, nil
}
