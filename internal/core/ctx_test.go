package core_test

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	. "repro/internal/core"
	"repro/internal/dcerr"
	"repro/internal/hpu"
	"repro/internal/native"
)

// cancelAlg is an instrumented GPUAlg whose hook fires from inside a chosen
// batch's first task, letting tests cancel a run from a precisely known
// point of the execution plan. Because the executors check their context
// before each step (a level boundary), everything scheduled after the
// hooked batch's level is guaranteed not to run.
type cancelAlg struct {
	levels int
	hook   func(phase string, level int)

	mu     sync.Mutex
	events []probeEvent
}

func newCancelAlg(levels int) *cancelAlg { return &cancelAlg{levels: levels} }

func (c *cancelAlg) record(phase string, level, lo, hi int) Batch {
	if hi <= lo {
		return Batch{}
	}
	return Batch{
		Tasks: hi - lo,
		Cost:  Cost{Ops: 100},
		Run: func(i int) {
			if i != 0 {
				return
			}
			c.mu.Lock()
			c.events = append(c.events, probeEvent{phase, level, lo, hi})
			c.mu.Unlock()
			if c.hook != nil {
				c.hook(phase, level)
			}
		},
	}
}

func (c *cancelAlg) snapshot() []probeEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]probeEvent(nil), c.events...)
}

func (c *cancelAlg) Name() string { return "cancel-probe" }
func (c *cancelAlg) Arity() int   { return 2 }
func (c *cancelAlg) Shrink() int  { return 2 }
func (c *cancelAlg) N() int       { return 1 << c.levels }
func (c *cancelAlg) Levels() int  { return c.levels }

func (c *cancelAlg) DivideBatch(level, lo, hi int) Batch {
	return c.record("divide", level, lo, hi)
}
func (c *cancelAlg) BaseBatch(lo, hi int) Batch { return c.record("base", -1, lo, hi) }
func (c *cancelAlg) CombineBatch(level, lo, hi int) Batch {
	return c.record("combine", level, lo, hi)
}
func (c *cancelAlg) GPUDivideBatch(level, lo, hi int) Batch {
	return c.record("gpu-divide", level, lo, hi)
}
func (c *cancelAlg) GPUBaseBatch(lo, hi int) Batch { return c.record("gpu-base", -1, lo, hi) }
func (c *cancelAlg) GPUCombineBatch(level, lo, hi int) Batch {
	return c.record("gpu-combine", level, lo, hi)
}
func (c *cancelAlg) GPUBytes(level, lo, hi int) int64 { return int64(hi-lo) * 64 }

// waitGoroutines polls until the goroutine count returns to the baseline
// (plus slack for runtime helpers), failing if it never does.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutine leak: %d at start, %d after close", base, n)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

type ctxRunner func(ctx context.Context, be Backend, alg *cancelAlg) (Report, error)

func basicRunner(crossover int) ctxRunner {
	return func(ctx context.Context, be Backend, alg *cancelAlg) (Report, error) {
		return RunBasicHybridCtx(ctx, be, alg, crossover)
	}
}

func advancedRunner(alpha float64, y, split int) ctxRunner {
	return func(ctx context.Context, be Backend, alg *cancelAlg) (Report, error) {
		return RunAdvancedHybridCtx(ctx, be, alg, alpha, y, WithSplit(split))
	}
}

// TestCancellationMatrix cancels executions from precisely known points —
// before the run starts, mid-level on the CPU phase, mid-level on the GPU
// phase, and after the transfer back — on both the simulated and the native
// backend, asserting the run stops within one level boundary, the Report is
// partial, and the error unwraps to dcerr.ErrCanceled.
func TestCancellationMatrix(t *testing.T) {
	const levels = 6
	cases := []struct {
		name string
		// phase/level select the batch whose first task cancels the context;
		// phase "" cancels before the run starts.
		phase string
		level int
		run   ctxRunner
		// forbidden reports events that must not appear once the context was
		// canceled at the trigger point.
		forbidden func(e probeEvent) bool
	}{
		{
			name: "before-start",
			run:  basicRunner(3),
			forbidden: func(e probeEvent) bool {
				return true // nothing at all may run
			},
		},
		{
			name: "mid-cpu-divide", phase: "divide", level: 1,
			run: basicRunner(3),
			forbidden: func(e probeEvent) bool {
				return e.phase != "divide" || e.level > 1
			},
		},
		{
			name: "mid-gpu-base", phase: "gpu-base", level: -1,
			run: basicRunner(2),
			forbidden: func(e probeEvent) bool {
				return e.phase == "gpu-combine" || e.phase == "combine"
			},
		},
		{
			name: "after-transfer", phase: "combine", level: 1,
			run: basicRunner(2),
			forbidden: func(e probeEvent) bool {
				return e.phase == "combine" && e.level == 0
			},
		},
		{
			name: "sequential-mid", phase: "divide", level: 2,
			run: func(ctx context.Context, be Backend, alg *cancelAlg) (Report, error) {
				return RunSequentialCtx(ctx, be, alg)
			},
			forbidden: func(e probeEvent) bool {
				return e.phase != "divide" || e.level > 2
			},
		},
		{
			name: "advanced-top-divide", phase: "divide", level: 0,
			run: advancedRunner(0.5, 3, 2),
			forbidden: func(e probeEvent) bool {
				return !(e.phase == "divide" && e.level == 0)
			},
		},
		{
			// Cancel inside the CPU chain after the fork: the tail combine
			// above the split must never run, whatever the GPU chain managed
			// to finish before its own next boundary check.
			name: "advanced-mid-chain", phase: "divide", level: 2,
			run: advancedRunner(0.5, 3, 2),
			forbidden: func(e probeEvent) bool {
				return e.phase == "base" || (e.phase == "combine" && e.level < 2)
			},
		},
	}

	backends := []struct {
		name string
		open func(t *testing.T) (Backend, func())
	}{
		{"sim", func(t *testing.T) (Backend, func()) {
			return hpu.MustSim(hpu.HPU1()), func() {}
		}},
		{"native", func(t *testing.T) (Backend, func()) {
			b, err := native.New(native.Config{CPUWorkers: 2, DeviceLanes: 4})
			if err != nil {
				t.Fatal(err)
			}
			return b, func() { b.Close() }
		}},
	}

	for _, bk := range backends {
		t.Run(bk.name, func(t *testing.T) {
			base := runtime.NumGoroutine()
			for _, tc := range cases {
				t.Run(tc.name, func(t *testing.T) {
					be, stop := bk.open(t)
					alg := newCancelAlg(levels)
					ctx, cancel := context.WithCancel(context.Background())
					defer cancel()
					if tc.phase == "" {
						cancel()
					} else {
						var once sync.Once
						alg.hook = func(phase string, level int) {
							if phase == tc.phase && level == tc.level {
								once.Do(cancel)
							}
						}
					}

					rep, err := tc.run(ctx, be, alg)
					stop()
					if err == nil {
						t.Fatal("canceled run returned nil error")
					}
					if !errors.Is(err, dcerr.ErrCanceled) {
						t.Fatalf("error %v does not unwrap to ErrCanceled", err)
					}
					if !rep.Partial {
						t.Error("canceled run's Report is not marked Partial")
					}
					if rep.Seconds < 0 {
						t.Errorf("partial Report has negative makespan %g", rep.Seconds)
					}
					events := alg.snapshot()
					if tc.phase != "" {
						found := false
						for _, e := range events {
							if e.phase == tc.phase && e.level == tc.level {
								found = true
							}
						}
						if !found {
							t.Fatalf("trigger batch %s@%d never ran (events %v)", tc.phase, tc.level, events)
						}
					}
					for _, e := range events {
						if tc.forbidden(e) {
							t.Errorf("batch ran past the cancellation boundary: %+v", e)
						}
					}
				})
			}
			waitGoroutines(t, base)
		})
	}
}

// TestCancellationControl runs the same strategies uncanceled, as the
// baseline for the matrix: complete runs, no Partial flag, no error.
func TestCancellationControl(t *testing.T) {
	runners := map[string]ctxRunner{
		"sequential": func(ctx context.Context, be Backend, alg *cancelAlg) (Report, error) {
			return RunSequentialCtx(ctx, be, alg)
		},
		"bf-cpu": func(ctx context.Context, be Backend, alg *cancelAlg) (Report, error) {
			return RunBreadthFirstCPUCtx(ctx, be, alg)
		},
		"basic":    basicRunner(2),
		"advanced": advancedRunner(0.5, 3, 2),
		"gpu-only": func(ctx context.Context, be Backend, alg *cancelAlg) (Report, error) {
			return RunGPUOnlyCtx(ctx, be, alg)
		},
	}
	for name, run := range runners {
		t.Run(name, func(t *testing.T) {
			be := hpu.MustSim(hpu.HPU1())
			rep, err := run(context.Background(), be, newCancelAlg(6))
			if err != nil {
				t.Fatal(err)
			}
			if rep.Partial {
				t.Error("complete run marked Partial")
			}
			if rep.Seconds <= 0 {
				t.Errorf("complete run has makespan %g", rep.Seconds)
			}
		})
	}
}

// TestCancellationDeadlineCause asserts an expired deadline surfaces both the
// typed sentinel and the context cause.
func TestCancellationDeadlineCause(t *testing.T) {
	be := hpu.MustSim(hpu.HPU1())
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	rep, err := RunSequentialCtx(ctx, be, newCancelAlg(4))
	if !errors.Is(err, dcerr.ErrCanceled) {
		t.Fatalf("error %v does not unwrap to ErrCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not unwrap to context.DeadlineExceeded", err)
	}
	if !rep.Partial {
		t.Error("deadline-expired run's Report is not marked Partial")
	}
}

// TestExecutorsRefuseClosedBackend asserts every executor guards with
// ErrBackendClosed instead of submitting to dead pools.
func TestExecutorsRefuseClosedBackend(t *testing.T) {
	b, err := native.New(native.Config{CPUWorkers: 1, DeviceLanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	alg := newCancelAlg(4)
	ctx := context.Background()
	checks := map[string]error{}
	_, checks["sequential"] = RunSequentialCtx(ctx, b, alg)
	_, checks["bf-cpu"] = RunBreadthFirstCPUCtx(ctx, b, alg)
	_, checks["basic"] = RunBasicHybridCtx(ctx, b, alg, 2)
	_, checks["advanced"] = RunAdvancedHybridCtx(ctx, b, alg, 0.5, 2)
	_, checks["gpu-only"] = RunGPUOnlyCtx(ctx, b, alg)
	for name, err := range checks {
		if !errors.Is(err, dcerr.ErrBackendClosed) {
			t.Errorf("%s on closed backend: error %v does not unwrap to ErrBackendClosed", name, err)
		}
	}
	if len(alg.snapshot()) != 0 {
		t.Errorf("closed backend still ran batches: %v", alg.snapshot())
	}
}
