package core_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/algos/dcsum"
	"repro/internal/algos/mergesort"
	"repro/internal/algos/scan"
	. "repro/internal/core"
	"repro/internal/dcerr"
	"repro/internal/hpu"
	"repro/internal/native"
)

// fusedMember pairs an instance wired into a fused run with an identical
// instance run independently, plus a checker comparing their results.
type fusedMember struct {
	fused GPUAlg
	ref   GPUAlg
	check func(t *testing.T, tag string)
}

func randomData(rng *rand.Rand, n int) []int32 {
	d := make([]int32, n)
	for i := range d {
		d[i] = int32(rng.Intn(2001) - 1000)
	}
	return d
}

func newFusedMember(t *testing.T, rng *rand.Rand, kind, n int) fusedMember {
	t.Helper()
	data := randomData(rng, n)
	clone := func() []int32 { return append([]int32(nil), data...) }
	switch kind {
	case 0:
		a, err := scan.New(clone())
		if err != nil {
			t.Fatal(err)
		}
		b, _ := scan.New(clone())
		return fusedMember{a, b, func(t *testing.T, tag string) {
			got, want := a.Result(), b.Result()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: scan n=%d: result[%d] = %d, want %d", tag, n, i, got[i], want[i])
				}
			}
		}}
	case 1:
		a, err := dcsum.New(clone())
		if err != nil {
			t.Fatal(err)
		}
		b, _ := dcsum.New(clone())
		return fusedMember{a, b, func(t *testing.T, tag string) {
			if got, want := a.Result(), b.Result(); got != want {
				t.Fatalf("%s: dcsum n=%d: result = %d, want %d", tag, n, got, want)
			}
		}}
	default:
		a, err := mergesort.New(clone())
		if err != nil {
			t.Fatal(err)
		}
		b, _ := mergesort.New(clone())
		return fusedMember{a, b, func(t *testing.T, tag string) {
			got, want := a.Result(), b.Result()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: mergesort n=%d: result[%d] = %d, want %d", tag, n, i, got[i], want[i])
				}
			}
		}}
	}
}

// TestFusedMatchesIndependentRuns is the fusion correctness property test:
// over random mixes of algorithm kinds, sizes, and member counts, a fused
// run's per-member results are bit-identical to N independent RunGPUOnlyCtx
// runs, with and without the coalescing layout switch.
func TestFusedMatchesIndependentRuns(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			k := 1 + rng.Intn(6)
			coalesce := seed%2 == 1
			members := make([]fusedMember, k)
			algs := make([]GPUAlg, k)
			for i := range members {
				members[i] = newFusedMember(t, rng, rng.Intn(3), 1<<(2+rng.Intn(8)))
				algs[i] = members[i].fused
			}
			var opts []Option
			if coalesce {
				opts = append(opts, WithCoalesce())
			}

			reps, err := RunFusedGPUCtx(context.Background(), hpu.MustSim(hpu.HPU1()), algs, opts...)
			if err != nil {
				t.Fatalf("fused run: %v", err)
			}
			if len(reps) != k {
				t.Fatalf("got %d reports, want %d", len(reps), k)
			}
			for i, m := range members {
				if _, err := RunGPUOnlyCtx(context.Background(), hpu.MustSim(hpu.HPU1()), m.ref, opts...); err != nil {
					t.Fatalf("reference run %d: %v", i, err)
				}
			}
			tag := fmt.Sprintf("seed=%d coalesce=%v", seed, coalesce)
			for i, m := range members {
				m.check(t, tag)
				r := reps[i]
				if r.Strategy != FusedStrategy {
					t.Errorf("%s: member %d strategy = %q, want %q", tag, i, r.Strategy, FusedStrategy)
				}
				if r.Partial {
					t.Errorf("%s: member %d unexpectedly partial", tag, i)
				}
				if r.Seconds <= 0 {
					t.Errorf("%s: member %d Seconds = %v, want > 0", tag, i, r.Seconds)
				}
				if r.GPUPortionSeconds <= 0 || r.GPUPortionSeconds > r.Seconds {
					t.Errorf("%s: member %d GPUPortionSeconds = %v out of (0, %v]",
						tag, i, r.GPUPortionSeconds, r.Seconds)
				}
			}
		})
	}
}

// TestFusedNativeBackend runs a mixed fused batch on the real-goroutine
// backend, where completions arrive from many goroutines, and checks
// results against independent runs on the same backend.
func TestFusedNativeBackend(t *testing.T) {
	be, err := native.New(native.Config{CPUWorkers: 2, DeviceLanes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()

	rng := rand.New(rand.NewSource(42))
	members := make([]fusedMember, 4)
	algs := make([]GPUAlg, len(members))
	for i := range members {
		members[i] = newFusedMember(t, rng, i%3, 1<<(3+i))
		algs[i] = members[i].fused
	}
	reps, err := RunFusedGPUCtx(context.Background(), be, algs)
	if err != nil {
		t.Fatalf("fused run: %v", err)
	}
	for i, m := range members {
		if _, err := RunGPUOnlyCtx(context.Background(), be, m.ref); err != nil {
			t.Fatalf("reference run %d: %v", i, err)
		}
		m.check(t, "native")
		if reps[i].Partial {
			t.Errorf("member %d unexpectedly partial", i)
		}
	}
}

// TestFusedSingleMember checks that a fused run degenerates cleanly to one
// member (the fusion-declined path serve falls back to).
func TestFusedSingleMember(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := newFusedMember(t, rng, 2, 256)
	reps, err := RunFusedGPUCtx(context.Background(), hpu.MustSim(hpu.HPU1()), []GPUAlg{m.fused})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunGPUOnlyCtx(context.Background(), hpu.MustSim(hpu.HPU1()), m.ref); err != nil {
		t.Fatal(err)
	}
	m.check(t, "single")
	if len(reps) != 1 || reps[0].Strategy != FusedStrategy {
		t.Fatalf("reports = %+v, want one %s report", reps, FusedStrategy)
	}
}

// TestFusedCancellation cancels a fused run before it starts and from a
// hook inside a member's batch, asserting every member settles Partial with
// an error unwrapping dcerr.ErrCanceled and no goroutines leak.
func TestFusedCancellation(t *testing.T) {
	t.Run("pre-canceled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		algs := []GPUAlg{newCancelAlg(4), newCancelAlg(3)}
		reps, err := RunFusedGPUCtx(ctx, hpu.MustSim(hpu.HPU1()), algs)
		if !errors.Is(err, dcerr.ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
		for i, r := range reps {
			if !r.Partial {
				t.Errorf("member %d not partial after cancellation", i)
			}
		}
	})
	t.Run("mid-run-native", func(t *testing.T) {
		base := runtime.NumGoroutine()
		be, err := native.New(native.Config{CPUWorkers: 2, DeviceLanes: 2})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		a := newCancelAlg(5)
		a.hook = func(phase string, level int) {
			if phase == "gpu-combine" && level == 3 {
				cancel()
			}
		}
		b := newCancelAlg(4)
		reps, err := RunFusedGPUCtx(ctx, be, []GPUAlg{a, b})
		if !errors.Is(err, dcerr.ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
		for i, r := range reps {
			if !r.Partial {
				t.Errorf("member %d not partial after cancellation", i)
			}
		}
		be.Close()
		waitGoroutines(t, base)
	})
}

// TestFusedValidation pins the constructor-grade error taxonomy of the
// fused entry point.
func TestFusedValidation(t *testing.T) {
	sim := hpu.MustSim(hpu.HPU1())
	if _, err := RunFusedGPUCtx(context.Background(), sim, nil); !errors.Is(err, dcerr.ErrBadParam) {
		t.Errorf("empty member list: err = %v, want ErrBadParam", err)
	}
	if _, err := RunFusedGPUCtx(context.Background(), sim, []GPUAlg{newProbe(2, 3), nil}); !errors.Is(err, dcerr.ErrBadParam) {
		t.Errorf("nil member: err = %v, want ErrBadParam", err)
	}
	cpuOnly, err := native.New(native.Config{CPUWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cpuOnly.Close()
	if _, err := RunFusedGPUCtx(context.Background(), cpuOnly, []GPUAlg{newProbe(2, 3)}); !errors.Is(err, dcerr.ErrNoGPU) {
		t.Errorf("no GPU: err = %v, want ErrNoGPU", err)
	}
}

// TestFusedAmortizesLaunches pins the point of fusion on the simulated
// clock: k equal small jobs fused take far less virtual time than k
// independent runs back-to-back, because each recursion level costs one
// kernel launch instead of k and the link latency is paid per chunk, not
// per job.
func TestFusedAmortizesLaunches(t *testing.T) {
	const k, n = 16, 1024
	rng := rand.New(rand.NewSource(3))

	fusedSim := hpu.MustSim(hpu.HPU1())
	algs := make([]GPUAlg, k)
	members := make([]fusedMember, k)
	for i := range algs {
		members[i] = newFusedMember(t, rng, 0, n)
		algs[i] = members[i].fused
	}
	if _, err := RunFusedGPUCtx(context.Background(), fusedSim, algs); err != nil {
		t.Fatal(err)
	}
	fused := fusedSim.Now()

	soloSim := hpu.MustSim(hpu.HPU1())
	for _, m := range members {
		if _, err := RunGPUOnlyCtx(context.Background(), soloSim, m.ref); err != nil {
			t.Fatal(err)
		}
	}
	solo := soloSim.Now()

	if fused*1.5 > solo {
		t.Errorf("fused makespan %v not ≥1.5× better than %v for %d jobs of n=%d",
			fused, solo, k, n)
	}
}
