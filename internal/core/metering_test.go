package core

import (
	"context"
	"testing"

	"repro/internal/metrics"
)

// fakeBackend is a synchronous in-package backend: every Submit runs the
// batch immediately and advances a fake clock, so metered durations are
// deterministic and nonzero.
type fakeBackend struct {
	now float64
	cpu *fakeExec
	gpu *fakeExec
}

type fakeExec struct{ be *fakeBackend }

func (e *fakeExec) Parallelism() int { return 4 }
func (e *fakeExec) Submit(b Batch, done func()) {
	if b.Run != nil {
		for i := 0; i < b.Tasks; i++ {
			b.Run(i)
		}
	}
	e.be.now += 0.001
	if done != nil {
		done()
	}
}

func newFakeBackend(withGPU bool) *fakeBackend {
	be := &fakeBackend{}
	be.cpu = &fakeExec{be: be}
	if withGPU {
		be.gpu = &fakeExec{be: be}
	}
	return be
}

func (f *fakeBackend) CPU() LevelExecutor { return f.cpu }
func (f *fakeBackend) GPU() LevelExecutor {
	if f.gpu == nil {
		return nil
	}
	return f.gpu
}
func (f *fakeBackend) GPUGamma() float64 { return 0.1 }
func (f *fakeBackend) TransferToGPU(n int64, done func()) {
	f.now += 0.0005
	done()
}
func (f *fakeBackend) TransferToCPU(n int64, done func()) {
	f.now += 0.0005
	done()
}
func (f *fakeBackend) Now() float64 { return f.now }
func (f *fakeBackend) Wait()        {}

// meterAlg is a minimal two-level GPUAlg for metering tests.
type meterAlg struct{}

func (meterAlg) Name() string { return "meter-alg" }
func (meterAlg) Arity() int   { return 2 }
func (meterAlg) Shrink() int  { return 2 }
func (meterAlg) N() int       { return 4 }
func (meterAlg) Levels() int  { return 2 }
func (meterAlg) DivideBatch(level, lo, hi int) Batch {
	return Batch{Tasks: hi - lo, Cost: Cost{Ops: 10}}
}
func (meterAlg) BaseBatch(lo, hi int) Batch {
	return Batch{Tasks: hi - lo, Cost: Cost{Ops: 5}}
}
func (meterAlg) CombineBatch(level, lo, hi int) Batch {
	return Batch{Tasks: hi - lo, Cost: Cost{Ops: 10}}
}
func (a meterAlg) GPUDivideBatch(level, lo, hi int) Batch  { return a.DivideBatch(level, lo, hi) }
func (a meterAlg) GPUBaseBatch(lo, hi int) Batch           { return a.BaseBatch(lo, hi) }
func (a meterAlg) GPUCombineBatch(level, lo, hi int) Batch { return a.CombineBatch(level, lo, hi) }
func (meterAlg) GPUBytes(level, lo, hi int) int64          { return int64(hi-lo) * 128 }

func TestMeteredSequentialRun(t *testing.T) {
	reg := metrics.NewRegistry()
	be := newFakeBackend(true)
	if _, err := RunSequentialCtx(context.Background(), be, meterAlg{}, WithMetrics(reg)); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if got := s.Counters[MetricRuns]; got != 1 {
		t.Errorf("%s = %d, want 1", MetricRuns, got)
	}
	// Sequential: 2 divide levels + base + 2 combine levels = 5 CPU batches.
	if got := s.Histograms[MetricCPUBatchSeconds].Count; got != 5 {
		t.Errorf("%s count = %d, want 5", MetricCPUBatchSeconds, got)
	}
	if got := s.Histograms[MetricRunSeconds].Count; got != 1 {
		t.Errorf("%s count = %d, want 1", MetricRunSeconds, got)
	}
	if got := s.Counters[MetricToGPUBytes]; got != 0 {
		t.Errorf("sequential run moved %d bytes to GPU", got)
	}
}

func TestMeteredHybridTransfers(t *testing.T) {
	reg := metrics.NewRegistry()
	be := newFakeBackend(true)
	if _, err := RunBasicHybridCtx(context.Background(), be, meterAlg{}, 1, WithMetrics(reg)); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if got := s.Counters[MetricToGPUTransfers]; got != 1 {
		t.Errorf("%s = %d, want 1", MetricToGPUTransfers, got)
	}
	if got := s.Counters[MetricToCPUTransfers]; got != 1 {
		t.Errorf("%s = %d, want 1", MetricToCPUTransfers, got)
	}
	// Crossover at level 1: 2 subproblems of 128 bytes each cross, each way.
	if got := s.Counters[MetricToGPUBytes]; got != 256 {
		t.Errorf("%s = %d, want 256", MetricToGPUBytes, got)
	}
	if got := s.Counters[MetricToCPUBytes]; got != 256 {
		t.Errorf("%s = %d, want 256", MetricToCPUBytes, got)
	}
	if got := s.Histograms[MetricGPUBatchSeconds].Count; got == 0 {
		t.Error("no GPU batches metered in a hybrid run")
	}
}

// TestNilMetricsUnchanged pins that a run without WithMetrics drives the
// bare backend (no metering wrapper interposed).
func TestNilMetricsUnchanged(t *testing.T) {
	be := newFakeBackend(true)
	cfg := NewRunConfig()
	if got := instrument(be, &cfg); got != Backend(be) {
		t.Errorf("instrument without metrics wrapped the backend: %T", got)
	}
}
