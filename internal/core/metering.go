package core

import "repro/internal/metrics"

// Metric names recorded by the metered backend. They are package-level so
// exposition layers and tests can reference them without typos; semantics
// are documented in DESIGN.md §9.
const (
	MetricRuns            = "core_runs_total"
	MetricRunSeconds      = "core_run_seconds"
	MetricCPUBatchSeconds = "core_cpu_batch_seconds"
	MetricGPUBatchSeconds = "core_gpu_batch_seconds"
	MetricCPUBusySeconds  = "core_cpu_busy_seconds"
	MetricGPUBusySeconds  = "core_gpu_busy_seconds"
	MetricCPUIdleSeconds  = "core_cpu_idle_seconds"
	MetricGPUIdleSeconds  = "core_gpu_idle_seconds"
	MetricToGPUTransfers  = "core_transfer_to_gpu_total"
	MetricToCPUTransfers  = "core_transfer_to_cpu_total"
	MetricToGPUBytes      = "core_transfer_to_gpu_bytes"
	MetricToCPUBytes      = "core_transfer_to_cpu_bytes"
)

// meteredBackend interposes on a backend to account every batch and
// transfer into a metrics registry. One instance is created per run (by
// instrument), so it can also accumulate the run's own busy time and charge
// the unit idle remainder when the run settles.
type meteredBackend struct {
	inner Backend
	cpu   *meteredExecutor
	gpu   *meteredExecutor

	toGPUCount, toCPUCount *metrics.Counter
	toGPUBytes, toCPUBytes *metrics.Counter
	runs                   *metrics.Counter
	runSeconds             *metrics.Histogram
	cpuIdle, gpuIdle       *metrics.Float
}

var _ Backend = (*meteredBackend)(nil)

// meter wraps be so every batch and transfer is accounted into reg.
func meter(be Backend, reg *metrics.Registry) *meteredBackend {
	m := &meteredBackend{
		inner:      be,
		toGPUCount: reg.Counter(MetricToGPUTransfers),
		toCPUCount: reg.Counter(MetricToCPUTransfers),
		toGPUBytes: reg.Counter(MetricToGPUBytes),
		toCPUBytes: reg.Counter(MetricToCPUBytes),
		runs:       reg.Counter(MetricRuns),
		runSeconds: reg.Histogram(MetricRunSeconds),
		cpuIdle:    reg.Float(MetricCPUIdleSeconds),
		gpuIdle:    reg.Float(MetricGPUIdleSeconds),
	}
	m.cpu = &meteredExecutor{
		inner: be.CPU(), be: be,
		batch: reg.Histogram(MetricCPUBatchSeconds),
		busy:  reg.Float(MetricCPUBusySeconds),
	}
	if g := be.GPU(); g != nil {
		m.gpu = &meteredExecutor{
			inner: g, be: be,
			batch: reg.Histogram(MetricGPUBatchSeconds),
			busy:  reg.Float(MetricGPUBusySeconds),
		}
	}
	return m
}

// finish settles the run's derived metrics: the makespan observation and the
// per-unit idle remainder makespan − Σ batch time. Batches overlapping on a
// unit (two chains of the advanced division sharing the CPU) can push the
// busy sum past the makespan, in which case the idle charge clamps at zero.
func (m *meteredBackend) finish(makespan float64) {
	m.runs.Inc()
	m.runSeconds.Observe(makespan)
	charge := func(idle *metrics.Float, e *meteredExecutor) {
		if e == nil {
			return
		}
		if d := makespan - e.runBusy.Value(); d > 0 {
			idle.Add(d)
		}
	}
	charge(m.cpuIdle, m.cpu)
	charge(m.gpuIdle, m.gpu)
}

// CPU implements Backend.
func (m *meteredBackend) CPU() LevelExecutor { return m.cpu }

// GPU implements Backend.
func (m *meteredBackend) GPU() LevelExecutor {
	if m.gpu == nil {
		return nil
	}
	return m.gpu
}

// GPUGamma implements Backend.
func (m *meteredBackend) GPUGamma() float64 { return m.inner.GPUGamma() }

// TransferToGPU implements Backend.
func (m *meteredBackend) TransferToGPU(n int64, done func()) {
	m.toGPUCount.Inc()
	m.toGPUBytes.Add(uint64(n))
	m.inner.TransferToGPU(n, done)
}

// TransferToCPU implements Backend.
func (m *meteredBackend) TransferToCPU(n int64, done func()) {
	m.toCPUCount.Inc()
	m.toCPUBytes.Add(uint64(n))
	m.inner.TransferToCPU(n, done)
}

// Now implements Backend.
func (m *meteredBackend) Now() float64 { return m.inner.Now() }

// Unwrap implements Unwrapper so capability probes (segment allocation)
// reach the wrapped backend.
func (m *meteredBackend) Unwrap() Backend { return m.inner }

// Wait implements Backend.
func (m *meteredBackend) Wait() { m.inner.Wait() }

// Autonomous forwards the wrapped backend's marker so executors drive a
// metered backend exactly like the bare one.
func (m *meteredBackend) Autonomous() bool { return autonomous(m.inner) }

// Closed forwards the wrapped backend's Closer state.
func (m *meteredBackend) Closed() bool {
	c, ok := m.inner.(Closer)
	return ok && c.Closed()
}

// Fault forwards the wrapped backend's Faulter state, so a device fault
// recorded beneath the meter still reaches the executor's settlement.
func (m *meteredBackend) Fault() error { return deviceFault(m.inner) }

// meteredExecutor accounts every submitted batch: its queue+service latency
// into a histogram (whose Sum is total batch time), and into both the
// registry-wide and the per-run busy accumulators.
type meteredExecutor struct {
	inner   LevelExecutor
	be      Backend
	batch   *metrics.Histogram
	busy    *metrics.Float
	runBusy metrics.Float // per-run accumulation, feeds the idle remainder
}

var _ LevelExecutor = (*meteredExecutor)(nil)

// Parallelism implements LevelExecutor.
func (e *meteredExecutor) Parallelism() int { return e.inner.Parallelism() }

// Submit implements LevelExecutor.
func (e *meteredExecutor) Submit(b Batch, done func()) {
	if b.Empty() {
		if done != nil {
			done()
		}
		return
	}
	start := e.be.Now()
	e.inner.Submit(b, func() {
		d := e.be.Now() - start
		e.batch.Observe(d)
		e.busy.Add(d)
		e.runBusy.Add(d)
		if done != nil {
			done()
		}
	})
}
