package core_test

import (
	"context"
	"reflect"
	"testing"

	. "repro/internal/core"
	"repro/internal/hpu"
)

func TestRunConfigDefaults(t *testing.T) {
	c := NewRunConfig()
	if c.Coalesce || c.SplitSet || c.Wrap != nil || c.Observe != nil {
		t.Errorf("zero options resolved to non-default config %+v", c)
	}
	if c.Priority != 1 {
		t.Errorf("default priority = %d, want 1", c.Priority)
	}
}

func TestWithPriorityClamp(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{-3, 1}, {0, 1}, {1, 1}, {7, 7}} {
		if got := NewRunConfig(WithPriority(tc.in)).Priority; got != tc.want {
			t.Errorf("WithPriority(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestWithSplitNegativeRestoresDefault(t *testing.T) {
	c := NewRunConfig(WithSplit(3))
	if !c.SplitSet || c.Split != 3 {
		t.Errorf("WithSplit(3) = %+v", c)
	}
	c = NewRunConfig(WithSplit(3), WithSplit(-1))
	if c.SplitSet {
		t.Errorf("WithSplit(-1) did not restore the default: %+v", c)
	}
}

func TestWithObserverChains(t *testing.T) {
	var order []string
	c := NewRunConfig(
		WithObserver(func(*Report) { order = append(order, "first") }),
		WithObserver(nil),
		WithObserver(func(*Report) { order = append(order, "second") }),
	)
	c.Observe(&Report{})
	if want := []string{"first", "second"}; !reflect.DeepEqual(order, want) {
		t.Errorf("observers ran as %v, want %v", order, want)
	}
}

// TestWithSplitRestoreEquivalence asserts WithSplit(-1) undoes an earlier
// WithSplit at execution level too: the run is identical — same batch
// sequence on the deterministic simulator, same virtual makespan — to one
// that never set a split level.
func TestWithSplitRestoreEquivalence(t *testing.T) {
	plain := newProbe(2, 6)
	repPlain, err := RunAdvancedHybridCtx(context.Background(), hpu.MustSim(hpu.HPU1()), plain,
		0.3, 4)
	if err != nil {
		t.Fatal(err)
	}
	restored := newProbe(2, 6)
	repRestored, err := RunAdvancedHybridCtx(context.Background(), hpu.MustSim(hpu.HPU1()), restored,
		0.3, 4, WithSplit(2), WithSplit(-1))
	if err != nil {
		t.Fatal(err)
	}
	if repPlain.Seconds != repRestored.Seconds {
		t.Errorf("makespans differ: default %g, WithSplit(-1) %g", repPlain.Seconds, repRestored.Seconds)
	}
	if !reflect.DeepEqual(plain.events, restored.events) {
		t.Errorf("batch sequences differ:\ndefault %v\nWithSplit(-1) %v", plain.events, restored.events)
	}
}

// TestWithBackendWrapper asserts the wrapper substitutes the backend the
// executor drives.
func TestWithBackendWrapper(t *testing.T) {
	wrapped := false
	be := hpu.MustSim(hpu.HPU1())
	_, err := RunSequentialCtx(context.Background(), be, newProbe(2, 3),
		WithBackendWrapper(func(inner Backend) Backend {
			wrapped = true
			return inner
		}))
	if err != nil {
		t.Fatal(err)
	}
	if !wrapped {
		t.Error("backend wrapper never ran")
	}
}
