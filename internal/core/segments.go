package core

import (
	"math/bits"
	"sync"

	"repro/internal/metrics"
)

// SegmentAllocator is implemented by backends that manage device-side
// staging memory as leased segments. Executors that ship data to the device
// lease a segment for the transfer's footprint and release it when the data
// has left the device, so repeated runs of the same shape reuse device
// allocations instead of paying a fresh device malloc per run — the λ-side
// analogue of the host mempool. The simulator models this as accounting
// (its device memory is host memory); a real device adapter would back
// Segment with an actual device allocation.
type SegmentAllocator interface {
	// AllocSegment leases a device segment of at least the given byte
	// size. The returned segment must be Released exactly once.
	AllocSegment(bytes int64) *Segment
}

// Unwrapper is implemented by backend decorators (metering, fault
// injection) so capability probes can reach inner layers that the
// decorator does not forward explicitly.
type Unwrapper interface {
	Unwrap() Backend
}

// segmentAllocator walks the backend decorator chain to the first layer
// that can lease device segments, or nil.
func segmentAllocator(be Backend) SegmentAllocator {
	for be != nil {
		if sa, ok := be.(SegmentAllocator); ok {
			return sa
		}
		u, ok := be.(Unwrapper)
		if !ok {
			return nil
		}
		be = u.Unwrap()
	}
	return nil
}

// Segment is one leased device staging range. Its capacity is the size
// class the cache rounded the request up to.
type Segment struct {
	cache *SegmentCache
	class int64
}

// Bytes returns the segment's capacity.
func (s *Segment) Bytes() int64 {
	if s == nil {
		return 0
	}
	return s.class
}

// Release returns the segment to its cache for reuse. Safe on nil;
// releasing twice is an accounting bug and panics.
func (s *Segment) Release() {
	if s == nil || s.cache == nil {
		return
	}
	c := s.cache
	s.cache = nil
	c.release(s.class)
}

// SegmentCache is a size-classed cache of device staging segments. Alloc
// rounds requests up to a power of two and reuses a free segment of that
// class when one is resident, only growing device residency on a miss.
// Because the backends in this repo execute functionally on host memory,
// the cache tracks residency and reuse as accounting (what a device
// allocator pool would do), giving the executors and metrics the same
// lease discipline a real device adapter needs.
//
// The zero value is ready to use. Safe for concurrent use.
type SegmentCache struct {
	mu       sync.Mutex
	free     map[int64]int64 // class size -> free segment count
	resident int64           // bytes held by the cache, free + leased
	leased   int64
	allocs   uint64 // misses: residency had to grow
	reuses   uint64 // hits: a parked segment was re-leased

	mAllocs   *metrics.Counter
	mReuses   *metrics.Counter
	mResident *metrics.Gauge
}

// SetMetrics attaches the cache's instruments to r under the given name
// prefix: <prefix>_segment_allocs_total, <prefix>_segment_reuses_total,
// <prefix>_segment_resident_bytes. A nil registry detaches.
func (c *SegmentCache) SetMetrics(prefix string, r *metrics.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r == nil {
		c.mAllocs, c.mReuses, c.mResident = nil, nil, nil
		return
	}
	c.mAllocs = r.Counter(prefix + "_segment_allocs_total")
	c.mReuses = r.Counter(prefix + "_segment_reuses_total")
	c.mResident = r.Gauge(prefix + "_segment_resident_bytes")
}

// segmentClass rounds n up to a power of two (minimum 256 bytes).
func segmentClass(n int64) int64 {
	const minClass = 256
	if n <= minClass {
		return minClass
	}
	return 1 << bits.Len64(uint64(n-1))
}

// AllocSegment leases a segment of at least bytes. Never returns nil.
func (c *SegmentCache) AllocSegment(bytes int64) *Segment {
	class := segmentClass(bytes)
	c.mu.Lock()
	if c.free[class] > 0 {
		c.free[class]--
		c.leased += class
		c.reuses++
		m := c.mReuses
		c.mu.Unlock()
		m.Inc()
		return &Segment{cache: c, class: class}
	}
	if c.free == nil {
		c.free = make(map[int64]int64)
	}
	c.resident += class
	c.leased += class
	c.allocs++
	mA, mR := c.mAllocs, c.mResident
	resident := c.resident
	c.mu.Unlock()
	mA.Inc()
	mR.Set(resident)
	return &Segment{cache: c, class: class}
}

func (c *SegmentCache) release(class int64) {
	c.mu.Lock()
	if c.leased < class {
		c.mu.Unlock()
		panic("core: segment released twice")
	}
	c.leased -= class
	c.free[class]++
	c.mu.Unlock()
}

// SegmentStats is a point-in-time snapshot of a cache.
type SegmentStats struct {
	Allocs        uint64 `json:"allocs"`
	Reuses        uint64 `json:"reuses"`
	ResidentBytes int64  `json:"resident_bytes"`
	LeasedBytes   int64  `json:"leased_bytes"`
}

// Stats snapshots the cache counters.
func (c *SegmentCache) Stats() SegmentStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return SegmentStats{
		Allocs:        c.allocs,
		Reuses:        c.reuses,
		ResidentBytes: c.resident,
		LeasedBytes:   c.leased,
	}
}

// Trim drops the cache's free segments, shrinking modeled residency to the
// currently leased bytes. Backends call it on close or drain.
func (c *SegmentCache) Trim() {
	c.mu.Lock()
	c.free = nil
	c.resident = c.leased
	m := c.mResident
	resident := c.resident
	c.mu.Unlock()
	m.Set(resident)
}
