package core_test

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/algos/dcsum"
	"repro/internal/algos/fft"
	"repro/internal/algos/karatsuba"
	"repro/internal/algos/matmul"
	"repro/internal/algos/maxsubarray"
	"repro/internal/algos/mergesort"
	"repro/internal/algos/scan"
	"repro/internal/algos/strassen"
	. "repro/internal/core"
	"repro/internal/hpu"
	"repro/internal/native"
)

// grainCase builds one algorithm instance over fixed data and extracts its
// result as a comparable value. Result values must be bit-identical across
// executions (float algorithms included: coarsening reorders whole tasks,
// never the arithmetic within one, so even rounding is reproduced exactly).
type grainCase struct {
	name  string
	build func(t *testing.T) Alg
	value func(alg Alg) any
}

func grainCases() []grainCase {
	rng := rand.New(rand.NewSource(7))
	ints := func(n int) []int32 {
		d := make([]int32, n)
		for i := range d {
			d[i] = int32(rng.Intn(2001) - 1000)
		}
		return d
	}
	sortData := ints(1 << 10)
	sumData := ints(1 << 10)
	scanData := ints(1 << 10)
	maxData := ints(1 << 10)
	kaA, kaB := ints(1<<8), ints(1<<8)
	fftData := make([]complex128, 1<<8)
	for i := range fftData {
		fftData[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	mmN := 16
	mmA := make([]float64, mmN*mmN)
	mmB := make([]float64, mmN*mmN)
	for i := range mmA {
		mmA[i] = rng.Float64()*2 - 1
		mmB[i] = rng.Float64()*2 - 1
	}
	clone32 := func(d []int32) []int32 { return append([]int32(nil), d...) }
	clone64 := func(d []float64) []float64 { return append([]float64(nil), d...) }
	cloneC := func(d []complex128) []complex128 { return append([]complex128(nil), d...) }

	return []grainCase{
		{"mergesort", func(t *testing.T) Alg {
			a, err := mergesort.New(clone32(sortData))
			if err != nil {
				t.Fatal(err)
			}
			return a
		}, func(alg Alg) any { return append([]int32(nil), alg.(*mergesort.Sorter).Result()...) }},
		{"mergesort-any", func(t *testing.T) Alg {
			a, err := mergesort.NewAny(clone32(sortData[:1000]))
			if err != nil {
				t.Fatal(err)
			}
			return a
		}, func(alg Alg) any { return append([]int32(nil), alg.(*mergesort.AnySorter).Result()...) }},
		{"dcsum", func(t *testing.T) Alg {
			a, err := dcsum.New(clone32(sumData))
			if err != nil {
				t.Fatal(err)
			}
			return a
		}, func(alg Alg) any { return alg.(*dcsum.Summer).Result() }},
		{"scan", func(t *testing.T) Alg {
			a, err := scan.New(clone32(scanData))
			if err != nil {
				t.Fatal(err)
			}
			return a
		}, func(alg Alg) any { return append([]int64(nil), alg.(*scan.Scanner).Result()...) }},
		{"maxsubarray", func(t *testing.T) Alg {
			a, err := maxsubarray.New(clone32(maxData))
			if err != nil {
				t.Fatal(err)
			}
			return a
		}, func(alg Alg) any { return alg.(*maxsubarray.Solver).Result() }},
		{"karatsuba", func(t *testing.T) Alg {
			a, err := karatsuba.New(clone32(kaA), clone32(kaB))
			if err != nil {
				t.Fatal(err)
			}
			return a
		}, func(alg Alg) any { return append([]int64(nil), alg.(*karatsuba.Multiplier).Result()...) }},
		{"fft", func(t *testing.T) Alg {
			a, err := fft.New(cloneC(fftData))
			if err != nil {
				t.Fatal(err)
			}
			return a
		}, func(alg Alg) any { return append([]complex128(nil), alg.(*fft.Transform).Result()...) }},
		{"matmul", func(t *testing.T) Alg {
			a, err := matmul.New(clone64(mmA), clone64(mmB), mmN, 3)
			if err != nil {
				t.Fatal(err)
			}
			return a
		}, func(alg Alg) any { return append([]float64(nil), alg.(*matmul.Multiplier).Result()...) }},
		{"strassen", func(t *testing.T) Alg {
			a, err := strassen.New(clone64(mmA), clone64(mmB), mmN, 2)
			if err != nil {
				t.Fatal(err)
			}
			return a
		}, func(alg Alg) any { return append([]float64(nil), alg.(*strassen.Multiplier).Result()...) }},
	}
}

// grainSettings is the matrix the ISSUE pins: coarsening off, tiny, large,
// and automatic.
var grainSettings = []struct {
	name  string
	grain int
}{
	{"grain=1", 1},
	{"grain=4", 4},
	{"grain=64", 64},
	{"grain=auto", GrainAuto},
}

// TestGrainBitIdentical is the leaf-coarsening property test: for every
// algorithm, every grain setting, and both backends, the breadth-first CPU
// run's result is bit-identical to the sequential baseline.
func TestGrainBitIdentical(t *testing.T) {
	for _, tc := range grainCases() {
		t.Run(tc.name, func(t *testing.T) {
			ref := tc.build(t)
			if _, err := RunSequentialCtx(context.Background(), hpu.MustSim(hpu.HPU1()), ref); err != nil {
				t.Fatal(err)
			}
			want := tc.value(ref)

			for _, backend := range []string{"sim", "native"} {
				for _, gs := range grainSettings {
					t.Run(backend+"/"+gs.name, func(t *testing.T) {
						var be Backend
						switch backend {
						case "sim":
							be = hpu.MustSim(hpu.HPU1())
						case "native":
							nb, err := native.New(native.Config{CPUWorkers: 4})
							if err != nil {
								t.Fatal(err)
							}
							defer nb.Close()
							be = nb
						}
						alg := tc.build(t)
						if _, err := RunBreadthFirstCPUCtx(context.Background(), be, alg, WithGrain(gs.grain)); err != nil {
							t.Fatal(err)
						}
						if got := tc.value(alg); !reflect.DeepEqual(got, want) {
							t.Fatalf("%s %s %s: result differs from sequential baseline", tc.name, backend, gs.name)
						}
					})
				}
			}
		})
	}
}

// TestGrainAdvancedHybridBitIdentical pins that grain wired through the
// advanced hybrid's CPU portion (clamped at the split level) also preserves
// results exactly, on both backends.
func TestGrainAdvancedHybridBitIdentical(t *testing.T) {
	build := func(t *testing.T, kind int, data []int32) GPUAlg {
		t.Helper()
		clone := append([]int32(nil), data...)
		switch kind {
		case 0:
			a, err := scan.New(clone)
			if err != nil {
				t.Fatal(err)
			}
			return a
		case 1:
			a, err := dcsum.New(clone)
			if err != nil {
				t.Fatal(err)
			}
			return a
		default:
			a, err := mergesort.New(clone)
			if err != nil {
				t.Fatal(err)
			}
			return a
		}
	}
	value := func(alg GPUAlg) any {
		switch a := alg.(type) {
		case *scan.Scanner:
			return append([]int64(nil), a.Result()...)
		case *dcsum.Summer:
			return a.Result()
		default:
			return append([]int32(nil), alg.(*mergesort.Sorter).Result()...)
		}
	}
	rng := rand.New(rand.NewSource(11))
	data := make([]int32, 1<<10)
	for i := range data {
		data[i] = int32(rng.Intn(2001) - 1000)
	}
	names := []string{"scan", "dcsum", "mergesort"}
	for kind := 0; kind < 3; kind++ {
		t.Run(names[kind], func(t *testing.T) {
			ref := build(t, kind, data)
			if _, err := RunSequentialCtx(context.Background(), hpu.MustSim(hpu.HPU1()), ref); err != nil {
				t.Fatal(err)
			}
			want := value(ref)
			L := ref.Levels()
			y := L - 2
			for _, backend := range []string{"sim", "native"} {
				for _, gs := range grainSettings {
					t.Run(fmt.Sprintf("%s/%s", backend, gs.name), func(t *testing.T) {
						var be Backend
						switch backend {
						case "sim":
							be = hpu.MustSim(hpu.HPU1())
						case "native":
							nb, err := native.New(native.Config{CPUWorkers: 4, DeviceLanes: 8})
							if err != nil {
								t.Fatal(err)
							}
							defer nb.Close()
							be = nb
						}
						alg := build(t, kind, data)
						if _, err := RunAdvancedHybridCtx(context.Background(), be, alg, 0.25, y, WithGrain(gs.grain)); err != nil {
							t.Fatal(err)
						}
						if got := value(alg); !reflect.DeepEqual(got, want) {
							t.Fatalf("%s %s %s: result differs from sequential baseline", names[kind], backend, gs.name)
						}
					})
				}
			}
		})
	}
}
