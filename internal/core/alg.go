package core

// Alg describes a regular divide-and-conquer algorithm after the paper's
// Algorithm 2 rewrite: execution proceeds breadth-first over the recursion
// tree, where level l (counted from the root, level 0) holds a^l independent
// subproblems of size n/b^l. Subproblems at each level are indexed
// contiguously left to right, so a contiguous index range corresponds to a
// contiguous region of the data — the property the advanced work division
// uses to split the input α : (1−α) between CPU and GPU.
//
// An algorithm with a trivial phase (mergesort has no divide work, sum has no
// base work) returns an empty Batch for it.
type Alg interface {
	// Name identifies the algorithm in traces and reports.
	Name() string
	// Arity is the branching factor a of T(n) = a·T(n/b) + f(n).
	Arity() int
	// Shrink is the size divisor b.
	Shrink() int
	// N is the input size of the instance.
	N() int
	// Levels is the number of internal levels of the recursion tree: level
	// indices run 0..Levels()-1, and the leaf (base-case) level is
	// Levels(). For n = b^L this is L.
	Levels() int

	// DivideBatch returns the top-down divide work for subproblems
	// [lo, hi) of level l (0 ≤ l < Levels()).
	DivideBatch(level, lo, hi int) Batch
	// BaseBatch returns the base-case work for leaves [lo, hi) of the leaf
	// level.
	BaseBatch(lo, hi int) Batch
	// CombineBatch returns the bottom-up combine work for subproblems
	// [lo, hi) of level l, assuming all their children are solved.
	CombineBatch(level, lo, hi int) Batch
}

// GPUAlg is implemented by algorithms whose batches can execute on the
// device. GPU batches may differ from CPU ones: a different per-thread
// kernel (Algorithm 3 of the paper) and different cost annotations
// (coalescing, §6.3).
type GPUAlg interface {
	Alg
	// GPUDivideBatch is DivideBatch with device cost annotations.
	GPUDivideBatch(level, lo, hi int) Batch
	// GPUBaseBatch is BaseBatch with device cost annotations.
	GPUBaseBatch(lo, hi int) Batch
	// GPUCombineBatch is CombineBatch with device cost annotations.
	GPUCombineBatch(level, lo, hi int) Batch
	// GPUBytes reports how many bytes must cross the host-device link to
	// ship subproblems [lo, hi) of level l (the same amount returns).
	GPUBytes(level, lo, hi int) int64
}

// Transformable is implemented by algorithms that support the paper's §6.3
// memory-coalescing layout transformation: before running device levels the
// data region for subproblem range [lo,hi) at the given level is permuted so
// that the i-th elements of all sublists are contiguous, and permuted back
// before the CPU resumes.
type Transformable interface {
	// PermuteForGPU rearranges [lo,hi) of level l into device layout and
	// returns the cost of doing so on the device.
	PermuteForGPU(level, lo, hi int) Batch
	// PermuteBack restores host layout.
	PermuteBack(level, lo, hi int) Batch
}

// Releaser is implemented by algorithm instances whose working buffers are
// leased from internal/mempool. Release returns those buffers to the pool;
// it must be called at most once per owner, only when no result slice
// obtained from the instance is still referenced, and never concurrently
// with execution. Implementations are idempotent so a single owner may call
// it defensively, but two owners must not both call it. The serving layers
// invoke Release on instances they created themselves (retry, hedge and
// fallback attempts; API-built jobs at eviction) — never on caller-owned
// instances.
type Releaser interface {
	Release()
}

// ReleaseAlg releases a, if it supports it. Safe on nil.
func ReleaseAlg(a Alg) {
	if r, ok := a.(Releaser); ok {
		r.Release()
	}
}

// TasksAtLevel returns a^level, the total number of subproblems at a level.
func TasksAtLevel(a, level int) int {
	t := 1
	for i := 0; i < level; i++ {
		t *= a
	}
	return t
}

// RunRecursive executes the algorithm the classic depth-first way on a
// single CPU core of the backend and returns when done. It is the paper's
// sequential baseline (the denominator of every speedup figure). The
// recursion is simulated level-by-level — for a regular algorithm the
// sequential order of task execution does not change total time on one core.
func RunRecursive(be Backend, alg Alg, done func()) {
	L := alg.Levels()
	// Divide phase, top-down.
	var step func(level int)
	var combine func(level int)
	step = func(level int) {
		if level == L {
			leaves := TasksAtLevel(alg.Arity(), L)
			submitSeq(be, alg.BaseBatch(0, leaves), func() { combine(L - 1) })
			return
		}
		k := TasksAtLevel(alg.Arity(), level)
		submitSeq(be, alg.DivideBatch(level, 0, k), func() { step(level + 1) })
	}
	combine = func(level int) {
		if level < 0 {
			done()
			return
		}
		k := TasksAtLevel(alg.Arity(), level)
		submitSeq(be, alg.CombineBatch(level, 0, k), func() { combine(level - 1) })
	}
	step(0)
}

// submitSeq runs a batch on a single core by folding it into one task whose
// cost is the whole batch, preserving functional execution order.
func submitSeq(be Backend, b Batch, done func()) {
	if b.Empty() {
		done()
		return
	}
	run := b.Run
	tasks := b.Tasks
	seq := Batch{
		Tasks: 1,
		Cost:  b.Cost.Scale(float64(tasks)),
		Level: b.Level,
	}
	seq.Cost.WorkingSet = b.Cost.WorkingSet
	if run != nil {
		seq.Run = func(int) {
			for i := 0; i < tasks; i++ {
				run(i)
			}
		}
	}
	be.CPU().Submit(seq, done)
}

// Join returns a completion callback that invokes then after being called n
// times. It is safe for concurrent use (the native backend calls completions
// from multiple goroutines).
func Join(n int, then func()) func() {
	if n <= 0 {
		panic("core: Join requires n > 0")
	}
	j := &joiner{remaining: int64(n), then: then}
	return j.done
}
