package core

import (
	"sync"
	"testing"
)

func TestCostScale(t *testing.T) {
	c := Cost{Ops: 2, MemWords: 4, Coalesced: true, Divergent: true, WorkingSet: 100}
	s := c.Scale(3)
	if s.Ops != 6 || s.MemWords != 12 {
		t.Errorf("Scale = %+v", s)
	}
	if !s.Coalesced || !s.Divergent || s.WorkingSet != 100 {
		t.Errorf("Scale changed non-magnitude fields: %+v", s)
	}
}

func TestBatchHelpers(t *testing.T) {
	if !(Batch{}).Empty() {
		t.Error("zero batch not empty")
	}
	if (Batch{Tasks: 1}).Empty() {
		t.Error("one-task batch empty")
	}
	b := Batch{Tasks: 5, Cost: Cost{Ops: 3}}
	if got := b.TotalOps(); got != 15 {
		t.Errorf("TotalOps = %g, want 15", got)
	}
}

func TestTasksAtLevel(t *testing.T) {
	cases := []struct{ a, level, want int }{
		{2, 0, 1}, {2, 10, 1024}, {3, 3, 27}, {8, 2, 64},
	}
	for _, c := range cases {
		if got := TasksAtLevel(c.a, c.level); got != c.want {
			t.Errorf("TasksAtLevel(%d,%d) = %d, want %d", c.a, c.level, got, c.want)
		}
	}
}

func TestJoin(t *testing.T) {
	fired := 0
	done := Join(3, func() { fired++ })
	done()
	done()
	if fired != 0 {
		t.Fatal("Join fired early")
	}
	done()
	if fired != 1 {
		t.Fatalf("Join fired %d times, want 1", fired)
	}
}

func TestJoinConcurrent(t *testing.T) {
	const n = 64
	fired := 0
	var mu sync.Mutex
	done := Join(n, func() {
		mu.Lock()
		fired++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			done()
		}()
	}
	wg.Wait()
	if fired != 1 {
		t.Fatalf("concurrent Join fired %d times, want 1", fired)
	}
}

func TestJoinValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Join(0) did not panic")
		}
	}()
	Join(0, func() {})
}

// stubAlg is a minimal Alg for DefaultSplit testing.
type stubAlg struct{ a, levels int }

func (s stubAlg) Name() string                         { return "stub" }
func (s stubAlg) Arity() int                           { return s.a }
func (s stubAlg) Shrink() int                          { return 2 }
func (s stubAlg) N() int                               { return 1 << s.levels }
func (s stubAlg) Levels() int                          { return s.levels }
func (s stubAlg) DivideBatch(level, lo, hi int) Batch  { return Batch{} }
func (s stubAlg) BaseBatch(lo, hi int) Batch           { return Batch{} }
func (s stubAlg) CombineBatch(level, lo, hi int) Batch { return Batch{} }

func TestDefaultSplit(t *testing.T) {
	alg := stubAlg{a: 2, levels: 20}
	// α·2^s >= p: with p=4, α=0.16: 2^s >= 25 → s = 5.
	if got := DefaultSplit(alg, 4, 0.16, 10); got != 5 {
		t.Errorf("DefaultSplit = %d, want 5", got)
	}
	// Clamped by y.
	if got := DefaultSplit(alg, 4, 0.01, 3); got != 3 {
		t.Errorf("DefaultSplit clamp = %d, want 3", got)
	}
	// α = 0 puts the split at the root.
	if got := DefaultSplit(alg, 4, 0, 10); got != 0 {
		t.Errorf("DefaultSplit(α=0) = %d, want 0", got)
	}
	// Arity 3.
	if got := DefaultSplit(stubAlg{a: 3, levels: 10}, 4, 0.5, 9); got != 2 {
		t.Errorf("DefaultSplit(a=3) = %d, want 2 (0.5·3^2 = 4.5 >= 4)", got)
	}
}

func TestRunSeq(t *testing.T) {
	var order []int
	steps := []step{
		func(next func()) { order = append(order, 1); next() },
		func(next func()) { order = append(order, 2); next() },
		func(next func()) { order = append(order, 3); next() },
	}
	doneCalled := false
	runSeq(steps, func() { doneCalled = true })
	if !doneCalled || len(order) != 3 || order[0] != 1 || order[2] != 3 {
		t.Errorf("runSeq order = %v, done = %v", order, doneCalled)
	}
	// Empty chain fires done immediately.
	fired := false
	runSeq(nil, func() { fired = true })
	if !fired {
		t.Error("empty runSeq did not fire done")
	}
}
