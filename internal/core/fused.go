package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dcerr"
	"repro/internal/mempool"
)

// FusedStrategy is the Report.Strategy stamped on every member of a fused
// execution.
const FusedStrategy = "fused-gpu"

// RunFusedGPUCtx executes several independent GPU-resident jobs as ONE
// breadth-first execution, generalizing the paper's batching argument (§4,
// Algorithm 3) from "one kernel launch per level of one job" to "one kernel
// launch per level across many jobs". Each member algorithm keeps its own
// data (its segment); segments never merge past their own root, so the
// per-job results are bit-identical to N independent RunGPUOnlyCtx runs.
//
// Execution pipelines the host↔device traffic the way the paper's advanced
// scheme (§5.2) hides its single round trip behind concurrent work:
//
//   - Members are grouped into transfer chunks (two, for double buffering).
//     Chunk k+1 uploads over the link while chunk k's device-resident divide
//     and base phases run, so ingest overlaps compute.
//   - Once every segment is resident, the combine phase walks the recursion
//     trees leaf-aligned: at step t, one fused kernel launch executes level
//     L_m-1-t of every member m that is still combining. Members of equal
//     subproblem size therefore share a launch regardless of their depth.
//   - A member's root completes after L_m steps; its result transfers back
//     immediately, overlapping the remaining combine steps of deeper
//     members (egress pipelining).
//
// WithGrain is accepted but has no effect: the fused execution is entirely
// device-resident, and leaf coarsening applies only to CPU-side phases.
//
// Fusing amortizes both the per-launch overhead (the launch-dominated small
// input regime of §6) and the per-transfer latency λ: k same-size jobs pay
// one launch per level and O(chunks) λ terms instead of k of each.
//
// The returned slice has one Report per member, stamped FusedStrategy:
// Seconds is the member's own completion offset (its result back on the
// host) from the fused start, and GPUPortionSeconds the device-resident
// time of its chunk. ctx is checked at every fused level boundary; on
// cancellation every member's Report is Partial and the single returned
// error wraps dcerr.ErrCanceled (member data validity is all-or-nothing:
// fusion trades per-job cancellation granularity for launch amortization).
//
// With WithCoalesce, members implementing Transformable get the §6.3 layout
// switch fused too: one permute launch before the base phase per chunk, and
// one permute-back launch per group of members finishing the same step.
func RunFusedGPUCtx(ctx context.Context, be Backend, algs []GPUAlg, opts ...Option) ([]Report, error) {
	cfg := NewRunConfig(opts...)
	be = instrument(be, &cfg)
	if err := checkOpen(be); err != nil {
		return nil, err
	}
	if len(algs) == 0 {
		return nil, fmt.Errorf("core: fused run with no members: %w", dcerr.ErrBadParam)
	}
	for i, alg := range algs {
		if alg == nil {
			return nil, fmt.Errorf("core: fused member %d is nil: %w", i, dcerr.ErrBadParam)
		}
	}
	if be.GPU() == nil {
		return nil, fmt.Errorf("core: %w", dcerr.ErrNoGPU)
	}
	if ctx == nil {
		ctx = context.Background()
	}

	n := len(algs)
	reports := make([]Report, n) // returned to the caller: never pooled
	// Per-run scratch is leased from the pool and handed back after the
	// chain has fully retired (every element is written before any read).
	depth := mempool.Ints.Get(n)     // L_m
	leaves := mempool.Ints.Get(n)    // a^L_m
	bytes := mempool.Int64s.Get(n)   // whole-instance transfer size
	chunkOf := mempool.Ints.Get(n)   // transfer chunk index of each member
	rootAt := mempool.Float64s.Get(n)
	defer func() {
		mempool.Ints.Put(depth)
		mempool.Ints.Put(leaves)
		mempool.Int64s.Put(bytes)
		mempool.Ints.Put(chunkOf)
		mempool.Float64s.Put(rootAt)
	}()
	maxL := 0
	for m, alg := range algs {
		reports[m] = Report{Algorithm: alg.Name(), Strategy: FusedStrategy}
		depth[m] = alg.Levels()
		leaves[m] = TasksAtLevel(alg.Arity(), depth[m])
		bytes[m] = alg.GPUBytes(0, 0, 1)
		if depth[m] > maxL {
			maxL = depth[m]
		}
	}
	chunks := fusedChunks(bytes, chunkOf)

	gpu := be.GPU()
	start := be.Now()

	// Device staging: one leased segment per member, acquired with its
	// chunk's upload and released as its result leaves the device, so the
	// next fused run of the same shape reuses the device residency
	// instead of re-staging per group.
	sa := segmentAllocator(be)
	segs := make([]*Segment, n)
	defer func() {
		// Safety net for canceled runs; Release is idempotent.
		for _, s := range segs {
			s.Release()
		}
	}()

	// Completion accounting: every concurrently progressing branch of the
	// pipeline (a chunk's upload+pre chain, the combine chain, each egress
	// transfer) holds one reference; done closes when the last one drops.
	// Stamps and the canceled flag are guarded by mu because the native
	// backend fires completions from many goroutines.
	var (
		mu          sync.Mutex
		canceled    bool
		outstanding atomic.Int64
		done        = make(chan struct{})
	)
	// deviceStart[c] is stamped during chunk c's ingest, and every read
	// (member egress) happens after the all-chunks-resident barrier, so
	// the pooled slice's unspecified contents never surface; rootAt[m] is
	// likewise stamped before the only read.
	deviceStart := mempool.Float64s.Get(len(chunks))
	defer func() { mempool.Float64s.Put(deviceStart) }()
	release := func() {
		if outstanding.Add(-1) == 0 {
			close(done)
		}
	}
	hold := func() { outstanding.Add(1) }
	markCanceled := func() {
		mu.Lock()
		canceled = true
		mu.Unlock()
	}

	// fuse builds the single launch for one aligned step from the member
	// batch constructor; construction is lazy (inside the step) because a
	// preceding permute may change a member's device layout state.
	fuse := func(members []int, part func(m int) Batch) Batch {
		parts := make([]Batch, 0, len(members))
		for _, m := range members {
			parts = append(parts, part(m))
		}
		return fuseBatches(parts)
	}

	// Combine phase, shared by every member once resident. advance(t) runs
	// after t fused combine steps have completed.
	var advance func(t int)
	advance = func(t int) {
		if ctx.Err() != nil {
			markCanceled()
			release()
			return
		}
		// Members whose root completed at this step: permute back (fused),
		// then start their egress transfer, overlapping deeper members'
		// remaining combines.
		var fin []int
		for m := range algs {
			if depth[m] == t {
				fin = append(fin, m)
			}
		}
		proceed := func() {
			if len(fin) > 0 {
				now := be.Now()
				var sum int64
				mu.Lock()
				for _, m := range fin {
					rootAt[m] = now
					sum += bytes[m]
				}
				mu.Unlock()
				hold()
				group := fin
				be.TransferToCPU(sum, func() {
					end := be.Now()
					mu.Lock()
					for _, m := range group {
						reports[m].Seconds = end - start
						reports[m].GPUPortionSeconds = rootAt[m] - deviceStart[chunkOf[m]]
					}
					mu.Unlock()
					for _, m := range group {
						segs[m].Release()
					}
					release()
				})
			}
			if t == maxL {
				release() // combine chain ends
				return
			}
			b := fuse(activeAt(depth, t), func(m int) Batch {
				lvl := depth[m] - 1 - t
				return atLevel(algs[m].GPUCombineBatch(lvl, 0, TasksAtLevel(algs[m].Arity(), lvl)), lvl)
			})
			gpu.Submit(b, func() { advance(t + 1) })
		}
		if cfg.Coalesce && len(fin) > 0 {
			pb := fuse(fin, func(m int) Batch {
				if tr, ok := algs[m].(Transformable); ok {
					return tr.PermuteBack(0, 0, 1)
				}
				return Batch{}
			})
			gpu.Submit(pb, proceed)
			return
		}
		proceed()
	}

	barrier := Join(len(chunks), func() {
		hold()
		advance(0)
	})

	// Ingest: chunk c's upload, then its device-resident divide and base
	// phases, with chunk c+1's upload forked as soon as the link frees —
	// the double-buffered pipeline.
	var startChunk func(c int)
	startChunk = func(c int) {
		members := chunks[c]
		maxLc := 0
		for _, m := range members {
			if depth[m] > maxLc {
				maxLc = depth[m]
			}
		}
		var sum int64
		for _, m := range members {
			sum += bytes[m]
		}
		steps := getSteps()
		if sa != nil {
			steps = append(steps, func(next func()) {
				for _, m := range members {
					segs[m] = sa.AllocSegment(bytes[m])
				}
				next()
			})
		}
		steps = append(steps, func(next func()) { be.TransferToGPU(sum, next) })
		steps = append(steps, func(next func()) {
			mu.Lock()
			deviceStart[c] = be.Now()
			mu.Unlock()
			if c+1 < len(chunks) {
				hold()
				startChunk(c + 1)
			}
			next()
		})
		for t := 0; t < maxLc; t++ {
			t := t
			steps = append(steps, func(next func()) {
				b := fuse(members, func(m int) Batch {
					off := maxLc - depth[m]
					if t < off {
						return Batch{}
					}
					lvl := t - off
					return atLevel(algs[m].GPUDivideBatch(lvl, 0, TasksAtLevel(algs[m].Arity(), lvl)), lvl)
				})
				gpu.Submit(b, next)
			})
		}
		if cfg.Coalesce {
			steps = append(steps, func(next func()) {
				b := fuse(members, func(m int) Batch {
					if tr, ok := algs[m].(Transformable); ok {
						return atLevel(tr.PermuteForGPU(depth[m], 0, leaves[m]), depth[m])
					}
					return Batch{}
				})
				gpu.Submit(b, next)
			})
		}
		steps = append(steps, func(next func()) {
			b := fuse(members, func(m int) Batch {
				return atLevel(algs[m].GPUBaseBatch(0, leaves[m]), depth[m])
			})
			gpu.Submit(b, next)
		})
		runSeqCtx(ctx, steps, func(c bool) {
			if c {
				markCanceled()
			} else {
				barrier()
			}
			putSteps(steps)
			release()
		})
	}

	hold()
	startChunk(0)
	awaitChain(be, done)

	makespan := be.Now() - start
	if mb, ok := be.(*meteredBackend); ok {
		mb.finish(makespan)
	}
	var err error
	if canceled {
		for m := range reports {
			reports[m].Partial = true
			reports[m].Seconds = makespan
		}
		err = canceledErr(ctx, algs[0], FusedStrategy)
	} else {
		for _, alg := range algs {
			finish(alg)
		}
	}
	if cfg.Observe != nil {
		for m := range reports {
			cfg.Observe(&reports[m])
		}
	}
	return reports, err
}

// activeAt returns the members still combining after t completed steps.
func activeAt(depth []int, t int) []int {
	var out []int
	for m, d := range depth {
		if d > t {
			out = append(out, m)
		}
	}
	return out
}

// fusedChunks partitions member indices into two transfer chunks of roughly
// equal byte volume (one chunk for a single member), preserving order, and
// records each member's chunk index.
func fusedChunks(bytes []int64, chunkOf []int) [][]int {
	n := len(bytes)
	if n == 1 {
		chunkOf[0] = 0
		return [][]int{{0}}
	}
	var total int64
	for _, b := range bytes {
		total += b
	}
	var acc int64
	cut := n - 1 // at least one member in the second chunk
	for i := 0; i < n-1; i++ {
		acc += bytes[i]
		if 2*acc >= total {
			cut = i + 1
			break
		}
	}
	chunks := [][]int{make([]int, 0, cut), make([]int, 0, n-cut)}
	for i := 0; i < n; i++ {
		c := 0
		if i >= cut {
			c = 1
		}
		chunkOf[i] = c
		chunks[c] = append(chunks[c], i)
	}
	return chunks
}

// fuseBatches merges per-member batches for one aligned recursion step into
// a single batch (one kernel launch). Task indices are concatenated in
// member order and dispatched back to the owning member's Run, so the fused
// launch performs exactly the member launches' work. Costs merge
// conservatively: coalesced only if every part is, divergent if any part
// is, and heterogeneous per-item op counts (or parts with unequal uniform
// costs) become a fused CostOps so SIMD wavefront pricing still sees every
// item.
func fuseBatches(parts []Batch) Batch {
	live := parts[:0]
	for _, p := range parts {
		if !p.Empty() {
			live = append(live, p)
		}
	}
	if len(live) == 0 {
		return Batch{}
	}
	if len(live) == 1 {
		return live[0]
	}

	offsets := make([]int, len(live)+1)
	uniform := true
	het := false
	first := live[0].Cost
	var totalOps, totalWS float64
	anyRun := false
	level := 0
	for i, p := range live {
		offsets[i+1] = offsets[i] + p.Tasks
		if p.CostOps != nil {
			het = true
		}
		if p.Cost.Ops != first.Ops || p.Cost.MemWords != first.MemWords {
			uniform = false
		}
		totalOps += float64(p.Tasks) * p.Cost.Ops
		totalWS += float64(p.Cost.WorkingSet)
		if p.Run != nil {
			anyRun = true
		}
		if p.Level > level {
			level = p.Level
		}
	}
	total := offsets[len(live)]

	cost := first
	cost.Ops = totalOps / float64(total)
	cost.WorkingSet = int64(totalWS)
	for _, p := range live {
		if !p.Cost.Coalesced {
			cost.Coalesced = false
		}
		if p.Cost.Divergent {
			cost.Divergent = true
		}
		if p.Cost.MemWords > cost.MemWords {
			cost.MemWords = p.Cost.MemWords
		}
	}

	owner := func(i int) (Batch, int) {
		k := sort.Search(len(offsets), func(j int) bool { return offsets[j] > i }) - 1
		return live[k], i - offsets[k]
	}
	out := Batch{Tasks: total, Cost: cost, Level: level}
	if anyRun {
		out.Run = func(i int) {
			p, j := owner(i)
			if p.Run != nil {
				p.Run(j)
			}
		}
	}
	if het || !uniform {
		out.CostOps = func(i int) float64 {
			p, j := owner(i)
			if p.CostOps != nil {
				return p.CostOps(j)
			}
			return p.Cost.Ops
		}
	}
	return out
}
