package core

import "testing"

// TestFuseBatches pins the segment-merge semantics: concatenated task index
// spaces dispatching back to the owning member, and conservative cost
// merging (coalesced AND, divergent OR, working sets summed, heterogeneous
// costs preserved per item).
func TestFuseBatches(t *testing.T) {
	var ran [3][]int
	mk := func(owner, tasks int, c Cost) Batch {
		return Batch{
			Tasks: tasks,
			Cost:  c,
			Run:   func(i int) { ran[owner] = append(ran[owner], i) },
		}
	}
	parts := []Batch{
		mk(0, 2, Cost{Ops: 4, MemWords: 2, Coalesced: true, WorkingSet: 100}),
		{}, // empty members drop out
		mk(1, 3, Cost{Ops: 4, MemWords: 2, Coalesced: true, WorkingSet: 50}),
		mk(2, 1, Cost{Ops: 10, MemWords: 8, Divergent: true, WorkingSet: 7}),
	}
	b := fuseBatches(parts)
	if b.Tasks != 6 {
		t.Fatalf("Tasks = %d, want 6", b.Tasks)
	}
	for i := 0; i < b.Tasks; i++ {
		b.Run(i)
	}
	want := [3][]int{{0, 1}, {0, 1, 2}, {0}}
	for owner := range want {
		if len(ran[owner]) != len(want[owner]) {
			t.Fatalf("owner %d ran %v, want %v", owner, ran[owner], want[owner])
		}
		for j := range want[owner] {
			if ran[owner][j] != want[owner][j] {
				t.Fatalf("owner %d ran %v, want %v", owner, ran[owner], want[owner])
			}
		}
	}
	if b.Cost.Coalesced {
		t.Error("fused batch coalesced despite a divergent member")
	}
	if !b.Cost.Divergent {
		t.Error("fused batch not divergent despite a divergent member")
	}
	if b.Cost.WorkingSet != 157 {
		t.Errorf("WorkingSet = %d, want 157", b.Cost.WorkingSet)
	}
	if b.Cost.MemWords != 8 {
		t.Errorf("MemWords = %v, want max 8", b.Cost.MemWords)
	}
	if b.CostOps == nil {
		t.Fatal("heterogeneous parts must produce a per-item CostOps")
	}
	if got := b.CostOps(5); got != 10 {
		t.Errorf("CostOps(5) = %v, want the owner's 10", got)
	}
	if got := b.CostOps(0); got != 4 {
		t.Errorf("CostOps(0) = %v, want the owner's 4", got)
	}
}

func TestFuseBatchesUniform(t *testing.T) {
	c := Cost{Ops: 5, MemWords: 3, Coalesced: true}
	b := fuseBatches([]Batch{
		{Tasks: 4, Cost: c, Run: func(int) {}},
		{Tasks: 4, Cost: c, Run: func(int) {}},
	})
	if b.CostOps != nil {
		t.Error("uniform equal-cost parts should stay uniform (no CostOps)")
	}
	if b.Cost.Ops != 5 || !b.Cost.Coalesced {
		t.Errorf("uniform cost not preserved: %+v", b.Cost)
	}
}

func TestFuseBatchesSingle(t *testing.T) {
	p := Batch{Tasks: 3, Cost: Cost{Ops: 2}}
	b := fuseBatches([]Batch{{}, p, {}})
	if b.Tasks != 3 || b.Cost.Ops != 2 || b.CostOps != nil {
		t.Errorf("single live part should pass through, got %+v", b)
	}
	if !fuseBatches([]Batch{{}, {}}).Empty() {
		t.Error("all-empty fuse should be empty")
	}
}

// TestFusedChunks pins the double-buffer split: two chunks of roughly equal
// byte volume, order preserved, singleton degenerating to one chunk.
func TestFusedChunks(t *testing.T) {
	cases := []struct {
		bytes []int64
		want  [][]int
	}{
		{[]int64{64}, [][]int{{0}}},
		{[]int64{64, 64}, [][]int{{0}, {1}}},
		{[]int64{64, 64, 64, 64}, [][]int{{0, 1}, {2, 3}}},
		{[]int64{1000, 1, 1}, [][]int{{0}, {1, 2}}},
		{[]int64{1, 1, 1000}, [][]int{{0, 1}, {2}}},
	}
	for _, tc := range cases {
		chunkOf := make([]int, len(tc.bytes))
		got := fusedChunks(tc.bytes, chunkOf)
		if len(got) != len(tc.want) {
			t.Errorf("bytes %v: %d chunks, want %d", tc.bytes, len(got), len(tc.want))
			continue
		}
		for c := range tc.want {
			if len(got[c]) != len(tc.want[c]) {
				t.Errorf("bytes %v: chunk %d = %v, want %v", tc.bytes, c, got[c], tc.want[c])
				continue
			}
			for j, m := range tc.want[c] {
				if got[c][j] != m {
					t.Errorf("bytes %v: chunk %d = %v, want %v", tc.bytes, c, got[c], tc.want[c])
				}
				if got[c][j] == m && chunkOf[m] != c {
					t.Errorf("bytes %v: chunkOf[%d] = %d, want %d", tc.bytes, m, chunkOf[m], c)
				}
			}
		}
	}
}
