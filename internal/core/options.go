package core

import "repro/internal/metrics"

// RunConfig is the resolved form of a list of Options: the per-run knobs
// shared by every executor. Construct it with NewRunConfig; zero values mean
// "default".
type RunConfig struct {
	// Coalesce applies the §6.3 memory-layout transformation around the
	// GPU-resident phase when the algorithm implements Transformable.
	Coalesce bool
	// Split is the advanced division's split level; meaningful only when
	// SplitSet is true, otherwise DefaultSplit is used.
	Split    int
	SplitSet bool
	// Priority is the scheduling weight used by serving layers (higher is
	// dispatched sooner under contention). Direct executors ignore it.
	Priority int
	// Wrap, if non-nil, substitutes the backend the executor drives — the
	// hook used by tracing and other instrumentation layers.
	Wrap func(Backend) Backend
	// Observe, if non-nil, runs on the final Report before the executor
	// returns (after a partial, canceled run too).
	Observe func(*Report)
	// Metrics, if non-nil, receives the run's execution metrics (batch
	// latencies, busy/idle time, transfer traffic; names in DESIGN.md §9).
	Metrics *metrics.Registry
	// Grain is the leaf-coarsening grain for the CPU portion (DESIGN.md
	// §11): 0 or 1 disables coarsening, GrainAuto selects it from the CPU
	// parallelism, n > 1 collapses the bottom ⌊log_a(n)⌋ levels. Set with
	// WithGrain.
	Grain int
}

// Option configures a single execution. Options are accepted by the
// context-aware executors (RunSequentialCtx, RunBasicHybridCtx,
// RunAdvancedHybridCtx, RunGPUOnlyCtx) and by the serving layer's Submit.
type Option func(*RunConfig)

// NewRunConfig resolves a list of options. Nil options are ignored.
func NewRunConfig(opts ...Option) RunConfig {
	c := RunConfig{Priority: 1}
	for _, o := range opts {
		if o != nil {
			o(&c)
		}
	}
	return c
}

// WithCoalesce enables the §6.3 coalescing layout transformation around the
// device-resident phase (a no-op for algorithms that are not Transformable).
func WithCoalesce() Option {
	return func(c *RunConfig) { c.Coalesce = true }
}

// WithSplit pins the advanced division's split level (Algorithm 8's
// threshold level) instead of deriving it with DefaultSplit. A negative s
// restores the default.
func WithSplit(s int) Option {
	return func(c *RunConfig) {
		if s < 0 {
			c.SplitSet = false
			return
		}
		c.Split, c.SplitSet = s, true
	}
}

// WithPriority sets the job's scheduling weight for serving layers; weights
// below 1 are clamped to 1. Direct executors ignore it.
func WithPriority(w int) Option {
	return func(c *RunConfig) {
		if w < 1 {
			w = 1
		}
		c.Priority = w
	}
}

// WithMetrics directs the run's execution metrics into the registry:
// per-level batch latency histograms per unit, CPU/GPU busy and idle time,
// and transfer bytes/counts split by direction (metric names in DESIGN.md
// §9). A nil registry disables metrics (the default); the disabled path
// performs no allocation and no atomic work.
func WithMetrics(reg *metrics.Registry) Option {
	return func(c *RunConfig) { c.Metrics = reg }
}

// WithBackendWrapper substitutes the backend seen by the executor; tracing
// uses this to interpose span recording on every Submit and transfer.
func WithBackendWrapper(wrap func(Backend) Backend) Option {
	return func(c *RunConfig) { c.Wrap = wrap }
}

// WithObserver registers f to run on the final Report before the executor
// returns. Multiple observers chain in registration order.
func WithObserver(f func(*Report)) Option {
	return func(c *RunConfig) {
		if f == nil {
			return
		}
		prev := c.Observe
		c.Observe = func(r *Report) {
			if prev != nil {
				prev(r)
			}
			f(r)
		}
	}
}

// AsOptions converts the deprecated Options struct to the functional form.
func (o Options) AsOptions() []Option {
	var opts []Option
	if o.Coalesce {
		opts = append(opts, WithCoalesce())
	}
	return opts
}
