package core

import (
	"time"

	"repro/internal/metrics"
)

// Fallback selects where a job re-runs after its device path failed.
type Fallback int

const (
	// FallbackNone disables fallback: a device fault is returned to the
	// caller once the retry policy (if any) is exhausted.
	FallbackNone Fallback = iota
	// FallbackCPUOnly re-runs the job breadth-first on the CPU engine with
	// bit-identical results, and lets the serving layer admit GPU-bound
	// jobs while its circuit breaker has the device path open.
	FallbackCPUOnly
)

// Reliability is a job's fault-handling policy, interpreted by serving
// layers (direct executors ignore it, like Priority). Zero value means no
// policy: one attempt, no deadline, no hedge, no fallback.
type Reliability struct {
	// MaxRetries is how many times a device-fault-classified attempt is
	// re-executed (on a fresh instance from Job.Fresh) before giving up.
	MaxRetries int
	// Backoff is the pause between attempts.
	Backoff time.Duration
	// Deadline is the job's total budget from submission; once it expires
	// the job stops at its next level boundary with ErrCanceled.
	Deadline time.Duration
	// Hedge, when HedgeSet, duplicates a GPU-bound job on the CPU path
	// after this much time without a result; first result wins.
	Hedge    time.Duration
	HedgeSet bool
	// Fallback selects the degradation path after retries are exhausted.
	Fallback Fallback
}

// Zero reports whether no reliability policy is configured.
func (r Reliability) Zero() bool { return r == Reliability{} }

// Reexecutes reports whether the policy can run more than one attempt, and
// therefore needs a fresh-instance factory (serve.Job.Fresh).
func (r Reliability) Reexecutes() bool {
	return r.MaxRetries > 0 || r.HedgeSet || r.Fallback != FallbackNone
}

// RunConfig is the resolved form of a list of Options: the per-run knobs
// shared by every executor. Construct it with NewRunConfig; zero values mean
// "default".
type RunConfig struct {
	// Coalesce applies the §6.3 memory-layout transformation around the
	// GPU-resident phase when the algorithm implements Transformable.
	Coalesce bool
	// Split is the advanced division's split level; meaningful only when
	// SplitSet is true, otherwise DefaultSplit is used.
	Split    int
	SplitSet bool
	// Priority is the scheduling weight used by serving layers (higher is
	// dispatched sooner under contention). Direct executors ignore it.
	Priority int
	// Wrap, if non-nil, substitutes the backend the executor drives — the
	// hook used by tracing and other instrumentation layers.
	Wrap func(Backend) Backend
	// Observe, if non-nil, runs on the final Report before the executor
	// returns (after a partial, canceled run too).
	Observe func(*Report)
	// Metrics, if non-nil, receives the run's execution metrics (batch
	// latencies, busy/idle time, transfer traffic; names in DESIGN.md §9).
	Metrics *metrics.Registry
	// Grain is the leaf-coarsening grain for the CPU portion (DESIGN.md
	// §11): 0 or 1 disables coarsening, GrainAuto selects it from the CPU
	// parallelism, n > 1 collapses the bottom ⌊log_a(n)⌋ levels. Set with
	// WithGrain.
	Grain int
	// Reliability is the job's fault-handling policy, used by serving
	// layers (retry, deadline, hedge, CPU fallback; see serve.WithRetry and
	// friends). Direct executors ignore it.
	Reliability Reliability
	// AutoStrategy names the strategy an auto-tuning serving layer chose
	// for this run; executors stamp it into Report.AutoStrategy verbatim.
	// Set with WithAutoStrategy (by the serving layer, not callers).
	AutoStrategy string
}

// Option configures a single execution. Options are accepted by the
// context-aware executors (RunSequentialCtx, RunBasicHybridCtx,
// RunAdvancedHybridCtx, RunGPUOnlyCtx) and by the serving layer's Submit.
type Option func(*RunConfig)

// NewRunConfig resolves a list of options. Nil options are ignored.
func NewRunConfig(opts ...Option) RunConfig {
	c := RunConfig{Priority: 1}
	for _, o := range opts {
		if o != nil {
			o(&c)
		}
	}
	return c
}

// WithCoalesce enables the §6.3 coalescing layout transformation around the
// device-resident phase (a no-op for algorithms that are not Transformable).
func WithCoalesce() Option {
	return func(c *RunConfig) { c.Coalesce = true }
}

// WithSplit pins the advanced division's split level (Algorithm 8's
// threshold level) instead of deriving it with DefaultSplit. A negative s
// restores the default.
func WithSplit(s int) Option {
	return func(c *RunConfig) {
		if s < 0 {
			c.SplitSet = false
			return
		}
		c.Split, c.SplitSet = s, true
	}
}

// WithPriority sets the job's scheduling weight for serving layers; weights
// below 1 are clamped to 1. Direct executors ignore it.
func WithPriority(w int) Option {
	return func(c *RunConfig) {
		if w < 1 {
			w = 1
		}
		c.Priority = w
	}
}

// WithMetrics directs the run's execution metrics into the registry:
// per-level batch latency histograms per unit, CPU/GPU busy and idle time,
// and transfer bytes/counts split by direction (metric names in DESIGN.md
// §9). A nil registry disables metrics (the default); the disabled path
// performs no allocation and no atomic work.
func WithMetrics(reg *metrics.Registry) Option {
	return func(c *RunConfig) { c.Metrics = reg }
}

// WithBackendWrapper substitutes the backend seen by the executor; tracing
// uses this to interpose span recording on every Submit and transfer.
func WithBackendWrapper(wrap func(Backend) Backend) Option {
	return func(c *RunConfig) { c.Wrap = wrap }
}

// WithAutoStrategy records the auto-tuner's chosen strategy name so the
// run's Report carries it (Report.AutoStrategy). The serving layer applies
// it to attempts of auto-submitted jobs; it has no effect on execution.
func WithAutoStrategy(name string) Option {
	return func(c *RunConfig) { c.AutoStrategy = name }
}

// WithObserver registers f to run on the final Report before the executor
// returns. Multiple observers chain in registration order.
func WithObserver(f func(*Report)) Option {
	return func(c *RunConfig) {
		if f == nil {
			return
		}
		prev := c.Observe
		c.Observe = func(r *Report) {
			if prev != nil {
				prev(r)
			}
			f(r)
		}
	}
}
