package core

import "testing"

// TestCoarseLevels pins the grain→k resolution: explicit grains collapse
// ⌊log_a(grain)⌋ levels bounded by the floor, and auto keeps at least
// autoGrainSlack·p coarse subtrees.
func TestCoarseLevels(t *testing.T) {
	full := func(a int) func(int) int {
		return func(cl int) int { return TasksAtLevel(a, cl) }
	}
	cases := []struct {
		name                  string
		grain, a, L, floor, p int
		tasksAt               func(int) int
		want                  int
	}{
		{"off-0", 0, 2, 10, 0, 4, full(2), 0},
		{"off-1", 1, 2, 10, 0, 4, full(2), 0},
		{"grain-4-a2", 4, 2, 10, 0, 4, full(2), 2},
		{"grain-64-a2", 64, 2, 10, 0, 4, full(2), 6},
		{"grain-not-power", 5, 2, 10, 0, 4, full(2), 2},
		{"grain-3-a3", 3, 3, 6, 0, 4, full(3), 1},
		{"grain-9-a3", 9, 3, 6, 0, 4, full(3), 2},
		{"floor-clamps", 1 << 20, 2, 10, 7, 4, full(2), 3},
		{"floor-at-L", 64, 2, 10, 10, 4, full(2), 0},
		// Auto with p=4 wants ≥16 subtrees: for L=10, a=2 the coarse root
		// can rise to level 4 (16 tasks), collapsing 6 levels.
		{"auto", GrainAuto, 2, 10, 0, 4, full(2), 6},
		{"auto-small-tree", GrainAuto, 2, 3, 0, 4, full(2), 0},
		{"auto-floored", GrainAuto, 2, 10, 8, 4, full(2), 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := coarseLevels(c.grain, c.a, c.L, c.floor, c.p, c.tasksAt); got != c.want {
				t.Errorf("coarseLevels(grain=%d, a=%d, L=%d, floor=%d, p=%d) = %d, want %d",
					c.grain, c.a, c.L, c.floor, c.p, got, c.want)
			}
		})
	}
}

// gridAlg is a synthetic algorithm whose every phase writes a distinct tag
// into a log cell per (phase, level, task), so a test can verify exactly
// which work a coarse batch runs and in what per-subtree order.
type gridAlg struct {
	L     int
	trace []int32 // one cell per leaf; accumulates a checksum
}

func (g *gridAlg) Name() string { return "grid" }
func (g *gridAlg) Arity() int   { return 2 }
func (g *gridAlg) Shrink() int  { return 2 }
func (g *gridAlg) N() int       { return 1 << g.L }
func (g *gridAlg) Levels() int  { return g.L }

func (g *gridAlg) leafRange(level, i int) (int, int) {
	w := 1 << (g.L - level)
	return i * w, (i + 1) * w
}

func (g *gridAlg) mark(level, i int, tag int32) {
	lo, hi := g.leafRange(level, i)
	for x := lo; x < hi; x++ {
		g.trace[x] = g.trace[x]*31 + tag
	}
}

func (g *gridAlg) DivideBatch(level, lo, hi int) Batch {
	if hi <= lo {
		return Batch{}
	}
	return Batch{Tasks: hi - lo, Cost: Cost{Ops: 1}, Run: func(i int) { g.mark(level, lo+i, int32(1+level)) }}
}

func (g *gridAlg) BaseBatch(lo, hi int) Batch {
	if hi <= lo {
		return Batch{}
	}
	return Batch{Tasks: hi - lo, Cost: Cost{Ops: 2}, Run: func(i int) { g.mark(g.L, lo+i, 101) }}
}

func (g *gridAlg) CombineBatch(level, lo, hi int) Batch {
	if hi <= lo {
		return Batch{}
	}
	return Batch{Tasks: hi - lo, Cost: Cost{Ops: 3}, Run: func(i int) { g.mark(level, lo+i, int32(201+level)) }}
}

// TestCoarseBatchCoversSubtreeExactly pins CoarseBatch semantics: task j
// performs precisely the divide/base/combine work of subtree j in
// depth-phase order, producing the same per-leaf trace as level-by-level
// execution, and the aggregate per-task cost matches the sum over phases.
func TestCoarseBatchCoversSubtreeExactly(t *testing.T) {
	const L = 5
	ref := &gridAlg{L: L, trace: make([]int32, 1<<L)}
	for l := 0; l < L; l++ {
		runAll(ref.DivideBatch(l, 0, TasksAtLevel(2, l)))
	}
	runAll(ref.BaseBatch(0, TasksAtLevel(2, L)))
	for l := L - 1; l >= 0; l-- {
		runAll(ref.CombineBatch(l, 0, TasksAtLevel(2, l)))
	}

	const cl = 2
	got := &gridAlg{L: L, trace: make([]int32, 1<<L)}
	for l := 0; l < cl; l++ {
		runAll(got.DivideBatch(l, 0, TasksAtLevel(2, l)))
	}
	cb := CoarseBatch(got, cl, 0, TasksAtLevel(2, cl))
	if cb.Tasks != TasksAtLevel(2, cl) {
		t.Fatalf("coarse batch has %d tasks, want %d", cb.Tasks, TasksAtLevel(2, cl))
	}
	runAll(cb)
	for l := cl - 1; l >= 0; l-- {
		runAll(got.CombineBatch(l, 0, TasksAtLevel(2, l)))
	}

	for i := range ref.trace {
		if got.trace[i] != ref.trace[i] {
			t.Fatalf("leaf %d: coarse trace %d != level-by-level trace %d", i, got.trace[i], ref.trace[i])
		}
	}

	// Cost aggregation: per subtree, levels cl..L-1 contribute 2^(l-cl)
	// divide tasks of 1 op each, 2^(L-cl) base tasks of 2 ops, and the
	// combine mirror at 3 ops.
	wantOps := 0.0
	for l := cl; l < L; l++ {
		wantOps += float64(TasksAtLevel(2, l-cl)) * (1 + 3)
	}
	wantOps += float64(TasksAtLevel(2, L-cl)) * 2
	if cb.Cost.Ops != wantOps {
		t.Errorf("coarse per-task Ops = %g, want %g", cb.Cost.Ops, wantOps)
	}
}

func runAll(b Batch) {
	if b.Run == nil {
		return
	}
	for i := 0; i < b.Tasks; i++ {
		b.Run(i)
	}
}
