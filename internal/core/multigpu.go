package core

import (
	"fmt"

	"repro/internal/dcerr"
)

// MultiGPUBackend is a Backend with several GPU devices (the §3.2 extension
// to multiple cards). Devices share the host link.
type MultiGPUBackend interface {
	Backend
	// GPUs returns the device list; GPU() must be GPUs()[0].
	GPUs() []LevelExecutor
}

// RunAdvancedMultiGPU is the advanced work division with the GPU portion
// striped across all devices of the backend: at the split level the CPU
// keeps α of the subproblems and each device receives an equal contiguous
// share of the rest, running it bottom-up through level prm.Y before handing
// back. Each device costs two link crossings, so more devices only pay off
// when the per-device work dwarfs the extra transfers — the trade-off the
// paper's footnote 5 cites for using a single die of the HD 5970.
func RunAdvancedMultiGPU(be MultiGPUBackend, alg GPUAlg, prm AdvancedParams, opt Options) (Report, error) {
	devices := be.GPUs()
	if len(devices) == 0 {
		return Report{}, fmt.Errorf("core: %w (multi-GPU strategy)", dcerr.ErrNoGPU)
	}
	L := alg.Levels()
	a := alg.Arity()
	if prm.Alpha < 0 || prm.Alpha > 1 {
		return Report{}, fmt.Errorf("core: alpha %g: %w", prm.Alpha, dcerr.ErrBadAlpha)
	}
	if prm.Y < 0 || prm.Y > L {
		return Report{}, fmt.Errorf("core: transfer level %d out of range [0,%d]: %w", prm.Y, L, dcerr.ErrBadLevel)
	}
	s := prm.Split
	if s < 0 {
		s = DefaultSplit(alg, be.CPU().Parallelism(), prm.Alpha, prm.Y)
	}
	if s > prm.Y {
		return Report{}, fmt.Errorf("core: split level %d above transfer level %d: %w", s, prm.Y, dcerr.ErrBadLevel)
	}

	width := TasksAtLevel(a, s)
	cCount := int(prm.Alpha*float64(width) + 0.5)
	if cCount < 0 {
		cCount = 0
	}
	if cCount > width {
		cCount = width
	}
	gCount := width - cCount
	k := len(devices)
	if gCount < k {
		k = gCount // fewer subproblems than devices: leave the rest idle
	}
	at := func(l, c0, c1 int) (int, int) {
		f := TasksAtLevel(a, l-s)
		return c0 * f, c1 * f
	}

	start := be.Now()
	var top []step
	for l := 0; l < s; l++ {
		b := alg.DivideBatch(l, 0, TasksAtLevel(a, l))
		top = append(top, func(next func()) { be.CPU().Submit(b, next) })
	}

	var cpuChain []step
	if cCount > 0 {
		for l := s; l < L; l++ {
			lo, hi := at(l, 0, cCount)
			b := alg.DivideBatch(l, lo, hi)
			cpuChain = append(cpuChain, func(next func()) { be.CPU().Submit(b, next) })
		}
		lo, hi := at(L, 0, cCount)
		base := alg.BaseBatch(lo, hi)
		cpuChain = append(cpuChain, func(next func()) { be.CPU().Submit(base, next) })
		for l := L - 1; l >= s; l-- {
			lo, hi := at(l, 0, cCount)
			b := alg.CombineBatch(l, lo, hi)
			cpuChain = append(cpuChain, func(next func()) { be.CPU().Submit(b, next) })
		}
	}

	// One chain per device over its contiguous stripe of the GPU portion.
	tr, _ := alg.(Transformable)
	deviceChain := func(dev LevelExecutor, c0, c1 int) []step {
		var chain []step
		bytes := alg.GPUBytes(s, c0, c1)
		chain = append(chain, func(next func()) { be.TransferToGPU(bytes, next) })
		for l := s; l < L; l++ {
			l := l
			chain = append(chain, func(next func()) {
				lo, hi := at(l, c0, c1)
				dev.Submit(alg.GPUDivideBatch(l, lo, hi), next)
			})
		}
		if opt.Coalesce && tr != nil {
			chain = append(chain, func(next func()) {
				lo, hi := at(L, c0, c1)
				dev.Submit(tr.PermuteForGPU(L, lo, hi), next)
			})
		}
		chain = append(chain, func(next func()) {
			lo, hi := at(L, c0, c1)
			dev.Submit(alg.GPUBaseBatch(lo, hi), next)
		})
		for l := L - 1; l >= prm.Y; l-- {
			l := l
			chain = append(chain, func(next func()) {
				lo, hi := at(l, c0, c1)
				dev.Submit(alg.GPUCombineBatch(l, lo, hi), next)
			})
		}
		if opt.Coalesce && tr != nil {
			chain = append(chain, func(next func()) {
				lo, hi := at(prm.Y, c0, c1)
				dev.Submit(tr.PermuteBack(prm.Y, lo, hi), next)
			})
		}
		chain = append(chain, func(next func()) { be.TransferToCPU(bytes, next) })
		// Continue this stripe on the CPU above the transfer level.
		for l := prm.Y - 1; l >= s; l-- {
			l := l
			chain = append(chain, func(next func()) {
				lo, hi := at(l, c0, c1)
				be.CPU().Submit(alg.CombineBatch(l, lo, hi), next)
			})
		}
		return chain
	}

	var tail []step
	for l := s - 1; l >= 0; l-- {
		b := alg.CombineBatch(l, 0, TasksAtLevel(a, l))
		tail = append(tail, func(next func()) { be.CPU().Submit(b, next) })
	}

	rep := Report{Algorithm: alg.Name(), Strategy: fmt.Sprintf("advanced-%dgpu", k)}
	completed := false
	runSeq(top, func() {
		chains := 1 + k
		join := Join(chains, func() {
			runSeq(tail, func() { completed = true })
		})
		forkAt := be.Now()
		runSeq(cpuChain, func() {
			rep.CPUPortionSeconds = be.Now() - forkAt
			join()
		})
		// Stripe the GPU portion: device d gets [cCount + d·per, ...).
		for d := 0; d < k; d++ {
			per := gCount / k
			extra := gCount % k
			c0 := cCount + d*per + min(d, extra)
			c1 := c0 + per
			if d < extra {
				c1++
			}
			chain := deviceChain(devices[d], c0, c1)
			runSeq(chain, func() {
				if t := be.Now() - forkAt; t > rep.GPUPortionSeconds {
					rep.GPUPortionSeconds = t
				}
				join()
			})
		}
	})
	be.Wait()
	if !completed {
		panic("core: multi-GPU execution did not complete")
	}
	finish(alg)
	rep.Seconds = be.Now() - start
	return rep, nil
}
