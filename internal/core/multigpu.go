package core

import (
	"context"
	"fmt"

	"repro/internal/dcerr"
)

// MultiGPUBackend is a Backend with several GPU devices (the §3.2 extension
// to multiple cards). Devices share the host link.
type MultiGPUBackend interface {
	Backend
	// GPUs returns the device list; GPU() must be GPUs()[0].
	GPUs() []LevelExecutor
}

// RunMultiGPUCtx is the advanced work division with the GPU portion striped
// across all devices of the backend: at the split level the CPU keeps α of
// the subproblems and each device receives an equal contiguous share of the
// rest, running it bottom-up through level y before handing back. Each
// device costs two link crossings, so more devices only pay off when the
// per-device work dwarfs the extra transfers — the trade-off the paper's
// footnote 5 cites for using a single die of the HD 5970.
//
// ctx is checked at every level boundary of every chain; on cancellation the
// partial Report's error wraps dcerr.ErrCanceled. The split level defaults
// to DefaultSplit; override it with WithSplit. A WithBackendWrapper layer
// that does not itself implement MultiGPUBackend (tracing, metering) sees
// the CPU and transfer traffic but not the per-device submissions, which go
// to the raw device executors.
func RunMultiGPUCtx(ctx context.Context, be MultiGPUBackend, alg GPUAlg, alpha float64, y int, opts ...Option) (Report, error) {
	cfg := NewRunConfig(opts...)
	ibe := instrument(be, &cfg)
	if err := checkOpen(ibe); err != nil {
		return Report{}, err
	}
	devices := be.GPUs()
	if mg, ok := ibe.(MultiGPUBackend); ok {
		devices = mg.GPUs()
	}
	if len(devices) == 0 {
		return Report{}, fmt.Errorf("core: %w (multi-GPU strategy)", dcerr.ErrNoGPU)
	}
	L := alg.Levels()
	a := alg.Arity()
	if alpha < 0 || alpha > 1 {
		return Report{}, fmt.Errorf("core: alpha %g: %w", alpha, dcerr.ErrBadAlpha)
	}
	if y < 0 || y > L {
		return Report{}, fmt.Errorf("core: transfer level %d out of range [0,%d]: %w", y, L, dcerr.ErrBadLevel)
	}
	s := DefaultSplit(alg, ibe.CPU().Parallelism(), alpha, y)
	if cfg.SplitSet {
		s = cfg.Split
	}
	if s > y {
		return Report{}, fmt.Errorf("core: split level %d above transfer level %d: %w", s, y, dcerr.ErrBadLevel)
	}

	width := TasksAtLevel(a, s)
	cCount := int(alpha*float64(width) + 0.5)
	if cCount < 0 {
		cCount = 0
	}
	if cCount > width {
		cCount = width
	}
	gCount := width - cCount
	k := len(devices)
	if gCount < k {
		k = gCount // fewer subproblems than devices: leave the rest idle
	}
	at := func(l, c0, c1 int) (int, int) {
		f := TasksAtLevel(a, l-s)
		return c0 * f, c1 * f
	}

	start := ibe.Now()

	// Joint top divide phase, full width, on CPU.
	top := getSteps()
	defer func() { putSteps(top) }()
	for l := 0; l < s; l++ {
		b := atLevel(alg.DivideBatch(l, 0, TasksAtLevel(a, l)), l)
		top = append(top, func(next func()) { ibe.CPU().Submit(b, next) })
	}

	// CPU chain over portion [0, cCount).
	cpuChain := getSteps()
	defer func() { putSteps(cpuChain) }()
	if cCount > 0 {
		for l := s; l < L; l++ {
			lo, hi := at(l, 0, cCount)
			b := atLevel(alg.DivideBatch(l, lo, hi), l)
			cpuChain = append(cpuChain, func(next func()) { ibe.CPU().Submit(b, next) })
		}
		lo, hi := at(L, 0, cCount)
		base := atLevel(alg.BaseBatch(lo, hi), L)
		cpuChain = append(cpuChain, func(next func()) { ibe.CPU().Submit(base, next) })
		for l := L - 1; l >= s; l-- {
			lo, hi := at(l, 0, cCount)
			b := atLevel(alg.CombineBatch(l, lo, hi), l)
			cpuChain = append(cpuChain, func(next func()) { ibe.CPU().Submit(b, next) })
		}
	}

	// One chain per device over its contiguous stripe of the GPU portion.
	// Each stripe stages into a leased device segment when the backend
	// pools device memory, released with the chain.
	tr, _ := alg.(Transformable)
	sa := segmentAllocator(ibe)
	segs := make([]*Segment, k)
	defer func() {
		for _, sg := range segs {
			sg.Release()
		}
	}()
	deviceChain := func(d int, dev LevelExecutor, c0, c1 int) []step {
		chain := getSteps()
		bytes := alg.GPUBytes(s, c0, c1)
		if sa != nil {
			chain = append(chain, func(next func()) { segs[d] = sa.AllocSegment(bytes); next() })
		}
		chain = append(chain, func(next func()) { ibe.TransferToGPU(bytes, next) })
		for l := s; l < L; l++ {
			l := l
			chain = append(chain, func(next func()) {
				lo, hi := at(l, c0, c1)
				dev.Submit(atLevel(alg.GPUDivideBatch(l, lo, hi), l), next)
			})
		}
		if cfg.Coalesce && tr != nil {
			chain = append(chain, func(next func()) {
				lo, hi := at(L, c0, c1)
				dev.Submit(atLevel(tr.PermuteForGPU(L, lo, hi), L), next)
			})
		}
		chain = append(chain, func(next func()) {
			lo, hi := at(L, c0, c1)
			dev.Submit(atLevel(alg.GPUBaseBatch(lo, hi), L), next)
		})
		for l := L - 1; l >= y; l-- {
			l := l
			chain = append(chain, func(next func()) {
				lo, hi := at(l, c0, c1)
				dev.Submit(atLevel(alg.GPUCombineBatch(l, lo, hi), l), next)
			})
		}
		if cfg.Coalesce && tr != nil {
			chain = append(chain, func(next func()) {
				lo, hi := at(y, c0, c1)
				dev.Submit(atLevel(tr.PermuteBack(y, lo, hi), y), next)
			})
		}
		chain = append(chain, func(next func()) { ibe.TransferToCPU(bytes, next) })
		// Continue this stripe on the CPU above the transfer level.
		for l := y - 1; l >= s; l-- {
			l := l
			chain = append(chain, func(next func()) {
				lo, hi := at(l, c0, c1)
				ibe.CPU().Submit(atLevel(alg.CombineBatch(l, lo, hi), l), next)
			})
		}
		return chain
	}

	// Joint combine phase above the split, full width, on CPU.
	tail := getSteps()
	defer func() { putSteps(tail) }()
	for l := s - 1; l >= 0; l-- {
		b := atLevel(alg.CombineBatch(l, 0, TasksAtLevel(a, l)), l)
		tail = append(tail, func(next func()) { ibe.CPU().Submit(b, next) })
	}

	rep := Report{Algorithm: alg.Name(), Strategy: fmt.Sprintf("advanced-%dgpu", k)}
	done := make(chan struct{})
	var canceled bool

	runSeqCtx(ctx, top, func(c bool) {
		if c {
			canceled = true
			close(done)
			return
		}
		forkAt := ibe.Now()
		chains := 1 + k
		var anyCanceled bool
		join := Join(chains, func() {
			if anyCanceled {
				canceled = true
				close(done)
				return
			}
			runSeqCtx(ctx, tail, func(c bool) { canceled = c; close(done) })
		})
		runSeqCtx(ctx, cpuChain, func(c bool) {
			if c {
				anyCanceled = true
			}
			rep.CPUPortionSeconds = ibe.Now() - forkAt
			join()
		})
		// Stripe the GPU portion: device d gets [cCount + d·per, ...).
		for d := 0; d < k; d++ {
			per := gCount / k
			extra := gCount % k
			c0 := cCount + d*per + min(d, extra)
			c1 := c0 + per
			if d < extra {
				c1++
			}
			chain := deviceChain(d, devices[d], c0, c1)
			runSeqCtx(ctx, chain, func(c bool) {
				if c {
					anyCanceled = true
				}
				if t := ibe.Now() - forkAt; t > rep.GPUPortionSeconds {
					rep.GPUPortionSeconds = t
				}
				putSteps(chain)
				join()
			})
		}
	})
	awaitChain(ibe, done)
	return rep, settle(ctx, ibe, &cfg, alg, &rep, start, canceled)
}
