package core_test

import (
	"context"

	"fmt"
	"sync"
	"testing"

	. "repro/internal/core"
	"repro/internal/hpu"
)

// probeAlg is an instrumented GPUAlg that records every batch the executors
// actually run, so tests can assert the structural invariants of each
// strategy: phase ordering, range partitioning, and unit placement.
type probeAlg struct {
	a, levels int

	mu     sync.Mutex
	events []probeEvent
}

type probeEvent struct {
	phase string // "divide", "base", "combine", "gpu-divide", "gpu-base", "gpu-combine"
	level int    // -1 for base
	lo    int
	hi    int
}

func newProbe(a, levels int) *probeAlg { return &probeAlg{a: a, levels: levels} }

func (p *probeAlg) record(phase string, level, lo, hi int) Batch {
	if hi <= lo {
		return Batch{}
	}
	return Batch{
		Tasks: hi - lo,
		Cost:  Cost{Ops: 100},
		Run: func(i int) {
			if i != 0 {
				return
			}
			p.mu.Lock()
			p.events = append(p.events, probeEvent{phase, level, lo, hi})
			p.mu.Unlock()
		},
	}
}

func (p *probeAlg) Name() string { return "probe" }
func (p *probeAlg) Arity() int   { return p.a }
func (p *probeAlg) Shrink() int  { return 2 }
func (p *probeAlg) N() int       { return 1 << p.levels }
func (p *probeAlg) Levels() int  { return p.levels }

func (p *probeAlg) DivideBatch(level, lo, hi int) Batch {
	return p.record("divide", level, lo, hi)
}
func (p *probeAlg) BaseBatch(lo, hi int) Batch { return p.record("base", -1, lo, hi) }
func (p *probeAlg) CombineBatch(level, lo, hi int) Batch {
	return p.record("combine", level, lo, hi)
}
func (p *probeAlg) GPUDivideBatch(level, lo, hi int) Batch {
	return p.record("gpu-divide", level, lo, hi)
}
func (p *probeAlg) GPUBaseBatch(lo, hi int) Batch { return p.record("gpu-base", -1, lo, hi) }
func (p *probeAlg) GPUCombineBatch(level, lo, hi int) Batch {
	return p.record("gpu-combine", level, lo, hi)
}
func (p *probeAlg) GPUBytes(level, lo, hi int) int64 { return int64(hi-lo) * 64 }

// combinedRanges collects, per level, the executed combine ranges from both
// units.
func (p *probeAlg) combinedRanges() map[int][][2]int {
	out := map[int][][2]int{}
	for _, e := range p.events {
		if e.phase == "combine" || e.phase == "gpu-combine" {
			out[e.level] = append(out[e.level], [2]int{e.lo, e.hi})
		}
	}
	return out
}

func TestBreadthFirstStructure(t *testing.T) {
	p := newProbe(2, 5)
	be := hpu.MustSim(hpu.HPU1())
	if _, err := RunBreadthFirstCPUCtx(context.Background(), be, p); err != nil {
		t.Fatal(err)
	}

	var phases []string
	for _, e := range p.events {
		phases = append(phases, fmt.Sprintf("%s@%d", e.phase, e.level))
	}
	want := []string{
		"divide@0", "divide@1", "divide@2", "divide@3", "divide@4",
		"base@-1",
		"combine@4", "combine@3", "combine@2", "combine@1", "combine@0",
	}
	if len(phases) != len(want) {
		t.Fatalf("events = %v, want %v", phases, want)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("event %d = %s, want %s", i, phases[i], want[i])
		}
	}
}

func TestSequentialStructure(t *testing.T) {
	p := newProbe(3, 3)
	be := hpu.MustSim(hpu.HPU1())
	if _, err := RunSequentialCtx(context.Background(), be, p); err != nil {
		t.Fatal(err)
	}
	// Full-width divides 0..2, base over 27 leaves, combines 2..0; all on
	// the CPU phase names.
	for _, e := range p.events {
		if e.phase == "gpu-divide" || e.phase == "gpu-base" || e.phase == "gpu-combine" {
			t.Fatalf("sequential run used GPU batch %v", e)
		}
		if e.lo != 0 {
			t.Fatalf("sequential range not full-width: %v", e)
		}
	}
	last := p.events[len(p.events)-1]
	if last.phase != "combine" || last.level != 0 {
		t.Fatalf("last event = %v, want root combine", last)
	}
}

func TestBasicHybridStructure(t *testing.T) {
	p := newProbe(2, 8)
	be := hpu.MustSim(hpu.HPU1())
	const x = 3
	if _, err := RunBasicHybridCtx(context.Background(), be, p, x); err != nil {
		t.Fatal(err)
	}
	for _, e := range p.events {
		switch e.phase {
		case "divide", "combine":
			if e.level >= x {
				t.Errorf("CPU batch below the crossover: %v", e)
			}
		case "gpu-divide", "gpu-combine":
			if e.level < x {
				t.Errorf("GPU batch above the crossover: %v", e)
			}
		case "base":
			t.Errorf("base ran on the CPU in basic hybrid: %v", e)
		}
	}
}

func TestAdvancedHybridPartition(t *testing.T) {
	for _, arity := range []int{2, 3} {
		p := newProbe(arity, 6)
		be := hpu.MustSim(hpu.HPU1())
		prm := advParams{Alpha: 0.3, Y: 4, Split: 2}
		if _, err := RunAdvancedHybridCtx(context.Background(), be, p, prm.Alpha, prm.Y, WithSplit(prm.Split)); err != nil {
			t.Fatal(err)
		}
		width := TasksAtLevel(arity, 2)
		cCount := int(0.3*float64(width) + 0.5)

		for level, ranges := range p.combinedRanges() {
			total := 0
			for _, r := range ranges {
				total += r[1] - r[0]
			}
			if want := TasksAtLevel(arity, level); total != want {
				t.Errorf("a=%d level %d: combined tasks = %d, want %d (ranges %v)",
					arity, level, total, want, ranges)
			}
		}
		// GPU-side combine only between y and the leaves, and only over
		// the GPU portion.
		for _, e := range p.events {
			if e.phase == "gpu-combine" {
				if e.level < prm.Y {
					t.Errorf("a=%d: GPU combine above transfer level: %v", arity, e)
				}
				f := TasksAtLevel(arity, e.level-prm.Split)
				if e.lo != cCount*f {
					t.Errorf("a=%d: GPU combine range %v does not start at portion boundary %d",
						arity, e, cCount*f)
				}
			}
			if e.phase == "combine" && e.level >= prm.Split && e.level < prm.Y {
				// Between split and transfer level the CPU handles both
				// portions (its own below cL, the GPU's after handback).
				continue
			}
		}
	}
}

func TestAdvancedHybridAlphaExtremes(t *testing.T) {
	// α=1: no GPU events at all. α=0: no CPU-portion combine below split.
	p := newProbe(2, 6)
	be := hpu.MustSim(hpu.HPU1())
	if _, err := RunAdvancedHybridCtx(context.Background(), be, p, 1, 4, WithSplit(2)); err != nil {
		t.Fatal(err)
	}
	for _, e := range p.events {
		if e.phase == "gpu-combine" || e.phase == "gpu-base" || e.phase == "gpu-divide" {
			t.Errorf("α=1 run used the GPU: %v", e)
		}
	}

	p2 := newProbe(2, 6)
	be2 := hpu.MustSim(hpu.HPU1())
	if _, err := RunAdvancedHybridCtx(context.Background(), be2, p2, 0, 4, WithSplit(2)); err != nil {
		t.Fatal(err)
	}
	sawGPU := false
	for _, e := range p2.events {
		if e.phase == "gpu-combine" {
			sawGPU = true
		}
		if (e.phase == "combine" || e.phase == "base") && e.level > 4 {
			t.Errorf("α=0 run did CPU work below the transfer level: %v", e)
		}
	}
	if !sawGPU {
		t.Error("α=0 run never used the GPU")
	}
}

func TestGPUOnlyStructure(t *testing.T) {
	p := newProbe(2, 5)
	be := hpu.MustSim(hpu.HPU1())
	rep, err := RunGPUOnlyCtx(context.Background(), be, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range p.events {
		switch e.phase {
		case "divide", "base", "combine":
			t.Errorf("GPU-only run used CPU batch %v", e)
		}
	}
	if rep.GPUPortionSeconds <= 0 || rep.GPUPortionSeconds > rep.Seconds {
		t.Errorf("device time %g outside (0, %g]", rep.GPUPortionSeconds, rep.Seconds)
	}
}

// noGPU wraps a backend hiding its device.
type noGPU struct{ Backend }

func (n noGPU) GPU() LevelExecutor { return nil }

func TestExecutorsRequireGPU(t *testing.T) {
	p := newProbe(2, 4)
	be := noGPU{hpu.MustSim(hpu.HPU1())}
	if _, err := RunBasicHybridCtx(context.Background(), be, p, 2); err == nil {
		t.Error("RunBasicHybrid accepted a CPU-only backend")
	}
	if _, err := RunAdvancedHybridCtx(context.Background(), be, p, 0.5, 2, WithSplit(1)); err == nil {
		t.Error("RunAdvancedHybrid accepted a CPU-only backend")
	}
	if _, err := RunGPUOnlyCtx(context.Background(), be, p); err == nil {
		t.Error("RunGPUOnly accepted a CPU-only backend")
	}
}

func TestBasicHybridCrossoverBounds(t *testing.T) {
	p := newProbe(2, 4)
	be := hpu.MustSim(hpu.HPU1())
	if _, err := RunBasicHybridCtx(context.Background(), be, p, -1); err == nil {
		t.Error("accepted negative crossover")
	}
	if _, err := RunBasicHybridCtx(context.Background(), be, p, 5); err == nil {
		t.Error("accepted crossover beyond leaf level")
	}
}

// advParams groups advanced-division parameters for test tables. It
// replaces the deprecated core.AdvancedParams in test code.
type advParams struct {
	Alpha float64
	Y     int
	Split int
}
