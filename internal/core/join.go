package core

import "sync/atomic"

type joiner struct {
	remaining int64
	then      func()
}

func (j *joiner) done() {
	if atomic.AddInt64(&j.remaining, -1) == 0 {
		j.then()
	}
}
