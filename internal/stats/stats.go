// Package stats provides the small numeric toolkit the experiment harness
// needs: summaries, linear fits, and the saturation-knee detector used to
// estimate the GPU parallelism g from a time-vs-threads curve (§6.4).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Point is one (x, y) sample of a measured curve.
type Point struct {
	X, Y float64
}

// Mean returns the arithmetic mean of xs; NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the sample standard deviation of xs (0 for fewer than two
// samples).
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Median returns the median of xs; NaN for empty input.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MinMax returns the extrema of xs; NaNs for empty input.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// LinFit returns the least-squares line y = slope·x + intercept through the
// points. It errors on fewer than two points or a degenerate x range.
func LinFit(pts []Point) (slope, intercept float64, err error) {
	if len(pts) < 2 {
		return 0, 0, fmt.Errorf("stats: LinFit needs >= 2 points, got %d", len(pts))
	}
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		sx += p.X
		sy += p.Y
		sxx += p.X * p.X
		sxy += p.X * p.Y
	}
	n := float64(len(pts))
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, fmt.Errorf("stats: LinFit degenerate x values")
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept, nil
}

// SaturationKnee finds the knee of a decreasing-then-flat curve: the
// smallest x whose y is within tol (relative) of the curve's floor, taken as
// the median of the last tailFrac fraction of points. This is the paper's
// procedure for estimating g: "the value after which no improvement in
// performance was detected". Points must be sorted by X.
func SaturationKnee(pts []Point, tol, tailFrac float64) (float64, error) {
	if len(pts) < 4 {
		return 0, fmt.Errorf("stats: SaturationKnee needs >= 4 points, got %d", len(pts))
	}
	if tol <= 0 || tailFrac <= 0 || tailFrac > 1 {
		return 0, fmt.Errorf("stats: invalid tol=%g tailFrac=%g", tol, tailFrac)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X {
			return 0, fmt.Errorf("stats: points not sorted by X at index %d", i)
		}
	}
	tail := int(float64(len(pts)) * tailFrac)
	if tail < 2 {
		tail = 2
	}
	ys := make([]float64, 0, tail)
	for _, p := range pts[len(pts)-tail:] {
		ys = append(ys, p.Y)
	}
	floor := Median(ys)
	limit := floor * (1 + tol)
	for _, p := range pts {
		if p.Y <= limit {
			return p.X, nil
		}
	}
	return pts[len(pts)-1].X, nil
}
