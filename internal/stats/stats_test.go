package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaries(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Mean(xs); got != 2.5 {
		t.Errorf("Mean = %g, want 2.5", got)
	}
	if got := Median(xs); got != 2.5 {
		t.Errorf("Median = %g, want 2.5", got)
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd Median = %g, want 2", got)
	}
	if got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2.138) > 0.01 {
		t.Errorf("Stddev = %g, want ~2.138", got)
	}
	min, max := MinMax(xs)
	if min != 1 || max != 4 {
		t.Errorf("MinMax = %g, %g", min, max)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Median(nil)) {
		t.Error("empty summaries should be NaN")
	}
	if Stddev([]float64{1}) != 0 {
		t.Error("Stddev of one sample should be 0")
	}
}

func TestLinFit(t *testing.T) {
	pts := []Point{{0, 1}, {1, 3}, {2, 5}, {3, 7}}
	slope, intercept, err := LinFit(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 {
		t.Errorf("LinFit = (%g, %g), want (2, 1)", slope, intercept)
	}
	if _, _, err := LinFit(pts[:1]); err == nil {
		t.Error("LinFit accepted one point")
	}
	if _, _, err := LinFit([]Point{{1, 1}, {1, 2}}); err == nil {
		t.Error("LinFit accepted degenerate x")
	}
}

func TestLinFitRecoversRandomLines(t *testing.T) {
	f := func(slope, intercept float64) bool {
		if math.Abs(slope) > 1e6 || math.Abs(intercept) > 1e6 {
			return true
		}
		var pts []Point
		for i := 0; i < 10; i++ {
			x := float64(i)
			pts = append(pts, Point{x, slope*x + intercept})
		}
		s, b, err := LinFit(pts)
		if err != nil {
			return false
		}
		return math.Abs(s-slope) < 1e-6*(1+math.Abs(slope)) &&
			math.Abs(b-intercept) < 1e-6*(1+math.Abs(intercept))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSaturationKnee(t *testing.T) {
	// A 1/x curve that flattens at x = 100.
	var pts []Point
	for x := 10.0; x <= 300; x += 10 {
		y := 1.0
		if x < 100 {
			y = 100 / x
		}
		pts = append(pts, Point{x, y})
	}
	knee, err := SaturationKnee(pts, 0.05, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if knee < 90 || knee > 110 {
		t.Errorf("knee = %g, want ~100", knee)
	}
}

func TestSaturationKneeValidation(t *testing.T) {
	pts := []Point{{1, 1}, {2, 1}, {3, 1}, {4, 1}}
	if _, err := SaturationKnee(pts[:2], 0.05, 0.2); err == nil {
		t.Error("accepted too few points")
	}
	if _, err := SaturationKnee(pts, -1, 0.2); err == nil {
		t.Error("accepted negative tolerance")
	}
	if _, err := SaturationKnee(pts, 0.05, 2); err == nil {
		t.Error("accepted tailFrac > 1")
	}
	unsorted := []Point{{2, 1}, {1, 1}, {3, 1}, {4, 1}}
	if _, err := SaturationKnee(unsorted, 0.05, 0.5); err == nil {
		t.Error("accepted unsorted points")
	}
}
