package serve_test

import (
	"context"
	"testing"

	"repro/internal/algos/dcsum"
	"repro/internal/algos/mergesort"
	"repro/internal/algos/scan"
	"repro/internal/core"
	"repro/internal/mempool"
	"repro/internal/native"
	"repro/internal/serve"
	"repro/internal/workload"
)

// poolMisses sums miss counts across every pool and size class; in steady
// state it must stop growing, because every lease is served from a freelist.
func poolMisses() uint64 {
	var total uint64
	for _, ps := range mempool.Stats() {
		for _, cs := range ps.Classes {
			total += cs.Misses
		}
	}
	return total
}

// TestServePoolSteadyState is the leak gate for the zero-copy hot path: 1k
// mixed jobs (mergesort + scan + sum across all five strategies) through a
// serve.Server must reach pool steady state. After a warmup phase covering
// every (pool, class) combination the workload touches, a second identical
// phase must add zero pool misses and leave retained bytes unchanged —
// amortized heap growth per job is zero.
func TestServePoolSteadyState(t *testing.T) {
	if !mempool.Enabled() {
		t.Skip("pooling disabled (HPU_NOPOOL=1)")
	}
	mempool.ResetAll()

	be, err := native.New(native.Config{CPUWorkers: 4, DeviceLanes: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(be, serve.WithQueueDepth(8), serve.WithMaxInFlight(1))
	if err != nil {
		t.Fatal(err)
	}

	// Deterministic job shapes so both phases lease the same classes:
	// sizes cycle 256..4096, algorithms and strategies cycle in lockstep.
	// MaxInFlight(1) pins the per-class concurrent-lease high-water, so
	// phase two can never need a buffer phase one did not already create.
	runPhase := func(jobs, seed int) {
		for j := 0; j < jobs; j++ {
			n := 1 << (8 + j%5)
			data := workload.Uniform(n, int64(seed+j))
			var alg core.Alg
			var err error
			switch j % 3 {
			case 0:
				alg, err = mergesort.New(data)
			case 1:
				alg, err = scan.New(data)
			default:
				alg, err = dcsum.New(data)
			}
			if err != nil {
				t.Fatal(err)
			}
			job := serve.Job{Alg: alg}
			levels := alg.Levels()
			switch j % 5 {
			case 0:
				job.Strategy = serve.Sequential
			case 1:
				job.Strategy = serve.BreadthFirstCPU
			case 2:
				job.Strategy = serve.BasicHybrid
				job.Crossover = levels / 2
			case 3:
				job.Strategy = serve.AdvancedHybrid
				job.Alpha = 0.5
				job.Y = levels / 2
			default:
				job.Strategy = serve.GPUOnly
			}
			h, err := srv.Submit(context.Background(), job)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := h.Report(); err != nil {
				t.Fatalf("job %d: %v", j, err)
			}
			// The submitter owns Alg and releases it once settled.
			core.ReleaseAlg(alg)
		}
	}

	runPhase(500, 1)
	missesWarm := poolMisses()
	retainedWarm := mempool.TotalRetainedBytes()
	if missesWarm == 0 {
		t.Fatal("warmup phase recorded no pool misses: jobs are not leasing from the pool")
	}
	if retainedWarm == 0 {
		t.Fatal("warmup phase retained no buffers: releases are not reaching the pool")
	}

	runPhase(500, 4001)
	if got := poolMisses(); got != missesWarm {
		t.Errorf("steady-state phase added pool misses: %d -> %d", missesWarm, got)
	}
	if got := mempool.TotalRetainedBytes(); got != retainedWarm {
		t.Errorf("retained bytes drifted across steady-state phase: %d -> %d", retainedWarm, got)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := be.Close(); err != nil {
		t.Fatal(err)
	}
}
