package serve_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/algos/dcsum"
	"repro/internal/algos/mergesort"
	"repro/internal/algos/scan"
	"repro/internal/core"
	"repro/internal/dcerr"
	"repro/internal/hpu"
	"repro/internal/metrics"
	"repro/internal/native"
	"repro/internal/serve"
	"repro/internal/workload"
)

// fusedJob is one randomly generated GPUOnly job plus a pure-Go reference
// check of its result.
type fusedJob struct {
	kind  string
	alg   core.Alg
	check func(t *testing.T, i int)
}

func randomFusedJob(t *testing.T, rng *rand.Rand) fusedJob {
	t.Helper()
	n := 1 << (3 + rng.Intn(8)) // 8 … 1024
	data := workload.Uniform(n, rng.Int63())
	switch rng.Intn(3) {
	case 0:
		want := scan.Prefix(data)
		sc, err := scan.New(data)
		if err != nil {
			t.Fatal(err)
		}
		return fusedJob{"scan", sc, func(t *testing.T, i int) {
			got := sc.Result()
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("job %d (scan n=%d): result[%d] = %d, want %d", i, n, j, got[j], want[j])
				}
			}
		}}
	case 1:
		want := dcsum.Sum(data)
		sm, err := dcsum.New(data)
		if err != nil {
			t.Fatal(err)
		}
		return fusedJob{"dcsum", sm, func(t *testing.T, i int) {
			if got := sm.Result(); got != want {
				t.Fatalf("job %d (dcsum n=%d): result = %d, want %d", i, n, got, want)
			}
		}}
	default:
		want := append([]int32(nil), data...)
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		ms, err := mergesort.New(data)
		if err != nil {
			t.Fatal(err)
		}
		return fusedJob{"mergesort", ms, func(t *testing.T, i int) {
			got := ms.Result()
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("job %d (mergesort n=%d): result[%d] = %d, want %d", i, n, j, got[j], want[j])
				}
			}
		}}
	}
}

// blockServer submits a Sequential blocker job and waits until it occupies
// the server's single in-flight slot, so jobs submitted next accumulate in
// the queue; the returned release starts them.
func blockServer(t *testing.T, srv *serve.Server) (release func()) {
	t.Helper()
	gate := make(chan struct{})
	if _, err := srv.Submit(context.Background(),
		serve.Job{Alg: &gateAlg{name: "blocker", gate: gate}, Strategy: serve.Sequential}); err != nil {
		t.Fatal(err)
	}
	waitInFlight(t, srv, 1)
	return func() { close(gate) }
}

// TestFusionBitIdenticalProperty is the fusion correctness property test
// over the serving layer: random mixes of GPUOnly jobs (three kinds, random
// sizes) are queued behind a blocker so the dispatcher fuses same-kind
// groups, and every per-job result must be bit-identical to a pure-Go
// reference. Aggregate accounting must see every job exactly once.
func TestFusionBitIdenticalProperty(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			srv, err := serve.New(hpu.MustSim(hpu.HPU1()),
				serve.WithQueueDepth(64), serve.WithMaxFusedJobs(64))
			if err != nil {
				t.Fatal(err)
			}
			release := blockServer(t, srv)

			k := 4 + rng.Intn(13)
			jobs := make([]fusedJob, k)
			handles := make([]*serve.Handle, k)
			kinds := map[string]int{}
			for i := range jobs {
				jobs[i] = randomFusedJob(t, rng)
				kinds[jobs[i].kind]++
				handles[i], err = srv.Submit(context.Background(),
					serve.Job{Alg: jobs[i].alg, Strategy: serve.GPUOnly})
				if err != nil {
					t.Fatal(err)
				}
			}
			release()

			fusedReports := 0
			for i, h := range handles {
				rep, err := h.Report()
				if err != nil {
					t.Fatalf("job %d: %v", i, err)
				}
				jobs[i].check(t, i)
				if rep.Strategy == core.FusedStrategy {
					fusedReports++
				}
			}
			if err := srv.Close(); err != nil {
				t.Fatal(err)
			}

			// Every kind with ≥ 2 members must have fused at least once:
			// the first same-kind head absorbs all queued companions.
			wantFused := 0
			for _, c := range kinds {
				if c >= 2 {
					wantFused += c
				}
			}
			st := srv.Stats()
			if st.Completed != uint64(k+1) {
				t.Errorf("completed = %d, want %d", st.Completed, k+1)
			}
			if st.FusedJobs != uint64(wantFused) || fusedReports != wantFused {
				t.Errorf("fused jobs = %d (reports %d), want %d (kinds %v)",
					st.FusedJobs, fusedReports, wantFused, kinds)
			}
		})
	}
}

// TestFusionDeclinedForSingleton pins the zero-overhead fallback: a fusable
// job with no companion runs the ordinary gpu-only path and counts in no
// fused statistics.
func TestFusionDeclinedForSingleton(t *testing.T) {
	srv, err := serve.New(hpu.MustSim(hpu.HPU1()), serve.WithMaxFusedJobs(8))
	if err != nil {
		t.Fatal(err)
	}
	data := workload.Uniform(256, 1)
	sc, err := scan.New(data)
	if err != nil {
		t.Fatal(err)
	}
	h, err := srv.Submit(context.Background(), serve.Job{Alg: sc, Strategy: serve.GPUOnly})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Strategy != "gpu-only" {
		t.Errorf("strategy = %q, want gpu-only (fusion declined)", rep.Strategy)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.FusedRuns != 0 || st.FusedJobs != 0 {
		t.Errorf("fused stats = %+v, want none", st)
	}
}

// TestFusionRespectsBytesCap pins that FusedBytesCap declines companions
// whose summed transfer sizes would exceed the cap.
func TestFusionRespectsBytesCap(t *testing.T) {
	data := workload.Uniform(512, 2)
	one, err := scan.New(data)
	if err != nil {
		t.Fatal(err)
	}
	perJob := one.GPUBytes(0, 0, 1)

	srv, err := serve.New(hpu.MustSim(hpu.HPU1()),
		serve.WithMaxFusedJobs(8), serve.WithFusedBytesCap(perJob+perJob/2))
	if err != nil {
		t.Fatal(err)
	}
	release := blockServer(t, srv)
	var handles []*serve.Handle
	algs := []core.Alg{one}
	other, err := scan.New(workload.Uniform(512, 3))
	if err != nil {
		t.Fatal(err)
	}
	algs = append(algs, other)
	for _, a := range algs {
		h, err := srv.Submit(context.Background(), serve.Job{Alg: a, Strategy: serve.GPUOnly})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	release()
	for i, h := range handles {
		rep, err := h.Report()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if rep.Strategy != "gpu-only" {
			t.Errorf("job %d strategy = %q, want gpu-only (cap declined fusion)", i, rep.Strategy)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.FusedRuns != 0 {
		t.Errorf("fused runs = %d, want 0 under bytes cap", st.FusedRuns)
	}
}

// TestFusionBatchWindow pins the arrival-window path: a dispatched fusable
// job with an empty queue lingers for its window and fuses with a companion
// submitted shortly after.
func TestFusionBatchWindow(t *testing.T) {
	be, err := native.New(native.Config{CPUWorkers: 2, DeviceLanes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	srv, err := serve.New(be, serve.WithMaxInFlight(1),
		serve.WithMaxFusedJobs(2), serve.WithBatchWindow(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}

	a, err := scan.New(workload.Uniform(128, 4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := scan.New(workload.Uniform(128, 5))
	if err != nil {
		t.Fatal(err)
	}
	ha, err := srv.Submit(context.Background(), serve.Job{Alg: a, Strategy: serve.GPUOnly})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the head enter its batch window
	hb, err := srv.Submit(context.Background(), serve.Job{Alg: b, Strategy: serve.GPUOnly})
	if err != nil {
		t.Fatal(err)
	}
	repA, errA := ha.Report()
	repB, errB := hb.Report()
	if errA != nil || errB != nil {
		t.Fatalf("errors: %v, %v", errA, errB)
	}
	if repA.Strategy != core.FusedStrategy || repB.Strategy != core.FusedStrategy {
		t.Errorf("strategies = %q, %q, want both %q", repA.Strategy, repB.Strategy, core.FusedStrategy)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.FusedRuns != 1 || st.FusedJobs != 2 {
		t.Errorf("fused stats = %+v, want one run of two jobs", st)
	}
}

// TestFusionFairnessNoStarvation is the satellite fairness property: a
// low-priority job of a different kind completes while same-kind
// high-priority jobs keep arriving and fusing. Fusion must not bypass the
// stride scheduler's starvation-freedom.
func TestFusionFairnessNoStarvation(t *testing.T) {
	be, err := native.New(native.Config{CPUWorkers: 2, DeviceLanes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	srv, err := serve.New(be, serve.WithQueueDepth(256), serve.WithMaxInFlight(1),
		serve.WithMaxFusedJobs(4))
	if err != nil {
		t.Fatal(err)
	}

	release := blockServer(t, srv)

	lpAlg, err := dcsum.New(workload.Uniform(64, 6))
	if err != nil {
		t.Fatal(err)
	}
	lp, err := srv.Submit(context.Background(),
		serve.Job{Alg: lpAlg, Strategy: serve.GPUOnly, Opts: []core.Option{core.WithPriority(1)}})
	if err != nil {
		t.Fatal(err)
	}

	submitHP := func(rng *rand.Rand) {
		sc, err := scan.New(workload.Uniform(4096, rng.Int63()))
		if err != nil {
			return
		}
		_, _ = srv.Submit(context.Background(), serve.Job{
			Alg: sc, Strategy: serve.GPUOnly,
			Opts: []core.Option{core.WithPriority(8)},
		})
	}

	// A backlog of high-priority fusable scans already waiting, plus a
	// continuous stream of more arriving until the low-priority job
	// completes (or the test gives up).
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 12; i++ {
		submitHP(rng)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(100))
		for {
			select {
			case <-stop:
				return
			default:
			}
			submitHP(rng)
			time.Sleep(200 * time.Microsecond)
		}
	}()

	release()
	select {
	case <-lp.Done():
		// Starvation-free: the low-priority job finished against the stream.
	case <-time.After(10 * time.Second):
		t.Error("low-priority job starved behind fusing high-priority stream")
	}
	close(stop)
	wg.Wait()
	if err := lp.Err(); err != nil {
		t.Errorf("low-priority job failed: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.FusedRuns == 0 {
		t.Errorf("stream never fused (stats %+v); fairness test vacuous", st)
	}
}

// TestFusionCanceledMembers pins per-member cancellation semantics: members
// canceled while queued settle individually with ErrCanceled, and the
// survivors' fused run still completes.
func TestFusionCanceledMembers(t *testing.T) {
	srv, err := serve.New(hpu.MustSim(hpu.HPU1()),
		serve.WithMaxFusedJobs(8))
	if err != nil {
		t.Fatal(err)
	}
	release := blockServer(t, srv)

	data := workload.Uniform(256, 7)
	want := scan.Prefix(data)
	survivor, err := scan.New(data)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := srv.Submit(context.Background(), serve.Job{Alg: survivor, Strategy: serve.GPUOnly})
	if err != nil {
		t.Fatal(err)
	}
	var canceled []*serve.Handle
	for i := 0; i < 2; i++ {
		sc, err := scan.New(workload.Uniform(256, int64(8+i)))
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		h, err := srv.Submit(ctx, serve.Job{Alg: sc, Strategy: serve.GPUOnly})
		if err != nil {
			t.Fatal(err)
		}
		cancel()
		canceled = append(canceled, h)
	}
	release()

	if _, err := hs.Report(); err != nil {
		t.Fatalf("survivor: %v", err)
	}
	got := survivor.Result()
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("survivor result[%d] = %d, want %d", j, got[j], want[j])
		}
	}
	for i, h := range canceled {
		if _, err := h.Report(); !errors.Is(err, dcerr.ErrCanceled) {
			t.Errorf("canceled member %d: err = %v, want ErrCanceled", i, err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Canceled != 2 || st.Completed != 2 {
		t.Errorf("stats = %+v, want 2 canceled, 2 completed", st)
	}
}

// TestFusionMetrics pins the serve_fused_* exposition: counters and the
// fusion-ratio float move when a fused run completes.
func TestFusionMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	srv, err := serve.New(hpu.MustSim(hpu.HPU1()),
		serve.WithMaxFusedJobs(8), serve.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	release := blockServer(t, srv)
	var handles []*serve.Handle
	for i := 0; i < 3; i++ {
		sc, err := scan.New(workload.Uniform(128, int64(20+i)))
		if err != nil {
			t.Fatal(err)
		}
		h, err := srv.Submit(context.Background(), serve.Job{Alg: sc, Strategy: serve.GPUOnly})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	release()
	for _, h := range handles {
		if _, err := h.Report(); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(serve.MetricFusedRuns).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", serve.MetricFusedRuns, got)
	}
	if got := reg.Counter(serve.MetricFusedJobs).Value(); got != 3 {
		t.Errorf("%s = %d, want 3", serve.MetricFusedJobs, got)
	}
	ratio := reg.Float(serve.MetricFusionRatio).Value()
	if ratio <= 0 || ratio > 1 {
		t.Errorf("%s = %g, want in (0, 1]", serve.MetricFusionRatio, ratio)
	}
}
