package serve_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/algos/mergesort"
	"repro/internal/core"
	"repro/internal/dcerr"
	"repro/internal/faults"
	"repro/internal/native"
	"repro/internal/serve"
	"repro/internal/workload"
)

// sizedGateAlg is a gateAlg with a configurable problem size, so placement
// tests can submit jobs of very different modeled cost that all block on
// the same gate.
type sizedGateAlg struct {
	gateAlg
	n int
}

func (s *sizedGateAlg) N() int { return s.n }

// newPoolBackends builds n independent native backends and registers their
// cleanup.
func newPoolBackends(t *testing.T, n int) []core.Backend {
	t.Helper()
	pool := make([]core.Backend, n)
	for i := range pool {
		be, err := native.New(native.Config{CPUWorkers: 2, DeviceLanes: 4})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { be.Close() })
		pool[i] = be
	}
	return pool
}

func TestNewPoolValidation(t *testing.T) {
	if _, err := serve.NewPool(nil); !errors.Is(err, dcerr.ErrBadParam) {
		t.Errorf("empty pool: %v, want ErrBadParam", err)
	}
	be, err := native.New(native.Config{CPUWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	if _, err := serve.NewPool([]core.Backend{be, nil}); !errors.Is(err, dcerr.ErrBadParam) {
		t.Errorf("nil pool member: %v, want ErrBadParam", err)
	}
	closed, err := native.New(native.Config{CPUWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	closed.Close()
	if _, err := serve.NewPool([]core.Backend{be, closed}); !errors.Is(err, dcerr.ErrBackendClosed) {
		t.Errorf("closed pool member: %v, want ErrBackendClosed", err)
	}

	srv, err := serve.NewPool([]core.Backend{be})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.AddBackend(nil); !errors.Is(err, dcerr.ErrBadParam) {
		t.Errorf("AddBackend(nil): %v, want ErrBadParam", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.AddBackend(be); !errors.Is(err, dcerr.ErrServerClosed) {
		t.Errorf("AddBackend after Close: %v, want ErrServerClosed", err)
	}
	if err := srv.DrainBackend(context.Background(), 0); !errors.Is(err, dcerr.ErrServerClosed) {
		t.Errorf("DrainBackend after Close: %v, want ErrServerClosed", err)
	}
}

// TestPoolBitIdenticalToSingleDevice submits the same GPU-bound job mix to a
// single-device server and to a two-device pool and requires elementwise
// identical outputs — placement must never change results.
func TestPoolBitIdenticalToSingleDevice(t *testing.T) {
	const jobs = 24
	ctx := context.Background()

	runAll := func(t *testing.T, srv *serve.Server) [][]int32 {
		t.Helper()
		handles := make([]*serve.Handle, jobs)
		sorters := make([]*mergesort.Sorter, jobs)
		for i := 0; i < jobs; i++ {
			s, err := mergesort.New(workload.Uniform(1<<10, int64(i+1)))
			if err != nil {
				t.Fatal(err)
			}
			sorters[i] = s
			h, err := srv.Submit(ctx, serve.Job{Alg: s, Strategy: serve.GPUOnly})
			if err != nil {
				t.Fatal(err)
			}
			handles[i] = h
		}
		out := make([][]int32, jobs)
		for i, h := range handles {
			if _, err := h.Report(); err != nil {
				t.Fatalf("job %d: %v", i, err)
			}
			out[i] = sorters[i].Result()
		}
		return out
	}

	single, err := serve.New(newPoolBackends(t, 1)[0], serve.WithQueueDepth(jobs))
	if err != nil {
		t.Fatal(err)
	}
	want := runAll(t, single)
	if err := single.Close(); err != nil {
		t.Fatal(err)
	}

	srv, err := serve.NewPool(newPoolBackends(t, 2), serve.WithQueueDepth(jobs))
	if err != nil {
		t.Fatal(err)
	}
	got := runAll(t, srv)
	st := srv.Stats()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("job %d: length %d vs %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("job %d: pool result diverges from single-device at %d", i, j)
			}
		}
	}
	if len(st.Devices) != 2 {
		t.Fatalf("Stats.Devices = %d entries, want 2", len(st.Devices))
	}
	var placed uint64
	for _, d := range st.Devices {
		placed += d.Placements
	}
	if placed != jobs {
		t.Errorf("placements sum = %d, want %d", placed, jobs)
	}
}

// TestPoolPlacementSkew pins the two policies' behavior under skewed job
// sizes: with one huge job occupying device 0, PlaceModeledWork routes both
// following small jobs to device 1 (its backlog is far lighter), while
// PlaceJSQ — blind to size — sends the second small job back to device 0 on
// an occupancy tie.
func TestPoolPlacementSkew(t *testing.T) {
	run := func(t *testing.T, p serve.Placement) (d0, d1 uint64) {
		srv, err := serve.NewPool(newPoolBackends(t, 2),
			serve.WithMaxInFlight(2), serve.WithQueueDepth(16), serve.WithPlacement(p))
		if err != nil {
			t.Fatal(err)
		}
		gate := make(chan struct{})
		openGate := sync.OnceFunc(func() { close(gate) })
		defer openGate()
		submit := func(name string, n int) *serve.Handle {
			t.Helper()
			h, err := srv.Submit(context.Background(),
				serve.Job{Alg: &sizedGateAlg{gateAlg: gateAlg{name: name, gate: gate}, n: n}})
			if err != nil {
				t.Fatal(err)
			}
			return h
		}
		handles := []*serve.Handle{submit("huge", 1<<20)}
		waitInFlight(t, srv, 1) // the huge job holds a device-0 slot
		handles = append(handles, submit("small-1", 2), submit("small-2", 2))
		// Wait until both small jobs are placed (slots are free, so placement
		// pops them into execution).
		waitInFlight(t, srv, 3)
		st := srv.Stats()
		openGate()
		for _, h := range handles {
			if _, err := h.Report(); err != nil {
				t.Fatal(err)
			}
		}
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		return st.Devices[0].Placements, st.Devices[1].Placements
	}

	t.Run("modeled-work", func(t *testing.T) {
		d0, d1 := run(t, serve.PlaceModeledWork)
		if d0 != 1 || d1 != 2 {
			t.Errorf("placements (d0, d1) = (%d, %d), want (1, 2): small jobs must avoid the loaded device", d0, d1)
		}
	})
	t.Run("jsq", func(t *testing.T) {
		d0, d1 := run(t, serve.PlaceJSQ)
		if d0 != 2 || d1 != 1 {
			t.Errorf("placements (d0, d1) = (%d, %d), want (2, 1): JSQ ties break to the lower id", d0, d1)
		}
	})
}

// TestPoolBreakerIsolatesFaultyDevice is the re-route property: with faults
// injected into device 0 only, its breaker trips once and every subsequent
// GPU-bound job is served by device 1 — bit-identical results, zero sheds on
// the healthy device, zero ErrDegraded anywhere.
func TestPoolBreakerIsolatesFaultyDevice(t *testing.T) {
	ctx := context.Background()
	in, err := faults.New(faults.Config{Seed: 7, KernelErrorRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewPool(newPoolBackends(t, 2),
		serve.WithQueueDepth(32),
		serve.WithBreaker(1, time.Minute),
		serve.WithDeviceFaults(0, in))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Sacrifice one job to trip device 0: both devices are idle, so the
	// placement tie-break sends it to device 0, where every attempt faults.
	s0, err := mergesort.New(workload.Uniform(1<<8, 1))
	if err != nil {
		t.Fatal(err)
	}
	h0, err := srv.Submit(ctx, serve.Job{Alg: s0, Strategy: serve.GPUOnly})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h0.Report(); !errors.Is(err, dcerr.ErrDeviceFault) {
		t.Fatalf("tripping job: %v, want ErrDeviceFault", err)
	}
	if st := srv.Stats().Devices[0].BreakerState; st != serve.BreakerOpen {
		t.Fatalf("device 0 breaker = %d after the fault, want open", st)
	}

	const jobs = 12
	handles := make([]*serve.Handle, jobs)
	sorters := make([]*mergesort.Sorter, jobs)
	for i := 0; i < jobs; i++ {
		s, err := mergesort.New(workload.Uniform(1<<8, int64(i+2)))
		if err != nil {
			t.Fatal(err)
		}
		sorters[i] = s
		handles[i], err = srv.Submit(ctx, serve.Job{Alg: s, Strategy: serve.GPUOnly})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, h := range handles {
		if _, err := h.Report(); err != nil {
			t.Fatalf("job %d on the healthy pool: %v", i, err)
		}
		if !workload.IsSorted(sorters[i].Result()) {
			t.Fatalf("job %d: wrong result", i)
		}
	}

	st := srv.Stats()
	if st.Degraded != 0 {
		t.Errorf("Degraded = %d, want 0: healthy-device jobs must never shed", st.Degraded)
	}
	if got := st.Devices[1].Placements; got != jobs {
		t.Errorf("healthy device placements = %d, want %d", got, jobs)
	}
	if st.Devices[0].BreakerTrips < 1 || st.BreakerTrips < 1 {
		t.Errorf("breaker trips (device %d, total %d), want >= 1", st.Devices[0].BreakerTrips, st.BreakerTrips)
	}
	if st.Devices[1].BreakerTrips != 0 {
		t.Errorf("healthy device tripped %d times, want 0", st.Devices[1].BreakerTrips)
	}
	if st.Devices[1].BreakerState != serve.BreakerClosed {
		t.Errorf("healthy device breaker = %d, want closed", st.Devices[1].BreakerState)
	}
}

// TestPoolDrainValidation covers the drain state machine's refusals: unknown
// ids, double drains, and the last-active-device guard.
func TestPoolDrainValidation(t *testing.T) {
	ctx := context.Background()
	srv, err := serve.NewPool(newPoolBackends(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for _, id := range []int{-1, 2, 99} {
		if err := srv.DrainBackend(ctx, id); !errors.Is(err, dcerr.ErrBadParam) {
			t.Errorf("drain device %d: %v, want ErrBadParam", id, err)
		}
	}
	if err := srv.DrainBackend(ctx, 1); err != nil {
		t.Fatalf("drain device 1: %v", err)
	}
	if err := srv.DrainBackend(ctx, 1); !errors.Is(err, dcerr.ErrBadParam) {
		t.Errorf("drain removed device: %v, want ErrBadParam", err)
	}
	if err := srv.DrainBackend(ctx, 0); !errors.Is(err, dcerr.ErrBadParam) {
		t.Errorf("drain last active device: %v, want ErrBadParam", err)
	}
	st := srv.Stats()
	if !st.Devices[1].Removed || st.Devices[0].Removed {
		t.Errorf("drain state: %+v", st.Devices)
	}
	if st.Drains != 1 {
		t.Errorf("Drains = %d, want 1", st.Drains)
	}
}

// TestPoolDrainAddStress hammers a pool with concurrent submissions while a
// device drains out and a replacement joins: every accepted job must settle
// cleanly, queued work on the drained device included. Run under -race this
// is the concurrency gate for the topology-control path.
func TestPoolDrainAddStress(t *testing.T) {
	const jobs = 48
	ctx := context.Background()
	srv, err := serve.NewPool(newPoolBackends(t, 2),
		serve.WithQueueDepth(jobs), serve.WithMaxInFlight(2))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var (
		mu      sync.Mutex
		handles []*serve.Handle
		sorters []*mergesort.Sorter
	)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < jobs/4; i++ {
				s, err := mergesort.New(workload.Uniform(1<<9, int64(w*100+i+1)))
				if err != nil {
					t.Error(err)
					return
				}
				h, err := srv.Submit(ctx, serve.Job{Alg: s, Strategy: serve.GPUOnly})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				mu.Lock()
				handles = append(handles, h)
				sorters = append(sorters, s)
				mu.Unlock()
			}
		}(w)
	}

	// Drain device 1 mid-stream, then grow the pool back.
	if err := srv.DrainBackend(ctx, 1); err != nil {
		t.Errorf("drain: %v", err)
	}
	replacement, err := native.New(native.Config{CPUWorkers: 2, DeviceLanes: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { replacement.Close() })
	id, err := srv.AddBackend(replacement)
	if err != nil {
		t.Fatalf("AddBackend: %v", err)
	}
	if id != 2 {
		t.Errorf("new device id = %d, want 2", id)
	}
	wg.Wait()

	for i, h := range handles {
		if _, err := h.Report(); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if !workload.IsSorted(sorters[i].Result()) {
			t.Fatalf("job %d: wrong result", i)
		}
	}
	st := srv.Stats()
	if !st.Devices[1].Removed {
		t.Error("device 1 not removed after drain")
	}
	if st.Completed != jobs {
		t.Errorf("Completed = %d, want %d", st.Completed, jobs)
	}
	var placed uint64
	for _, d := range st.Devices {
		placed += d.Placements
	}
	// Rebalanced jobs are placed again, so placements may exceed the job
	// count but never undershoot it.
	if placed < jobs {
		t.Errorf("placements sum = %d, want >= %d", placed, jobs)
	}
}
