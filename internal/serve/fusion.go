package serve

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dcerr"
	"repro/internal/trace"
)

// Job fusion. When the stride scheduler dispatches a GPUOnly job whose
// algorithm kind matches other queued GPUOnly jobs, the dispatched job — the
// head — absorbs up to MaxFusedJobs-1 of them and the whole group executes
// as one fused breadth-first run (core.RunFusedGPUCtx) on the head's placed
// device: one kernel launch per recursion level across every member,
// double-buffered pipelined transfers, per-member Reports. This generalizes
// the paper's launch amortization (§4) across jobs, which is what the
// serving layer's small-job hot path needs: k fused jobs pay one launch per
// level instead of k.
//
// Fairness: fusion never changes which job is dispatched — the heap's head
// keeps its stride-scheduling position, and only same-kind followers are
// pulled out of turn. A queued job of a different kind keeps its virtual
// finish tag and is dispatched exactly as before, so the scheduler's
// starvation-freedom is preserved (fusing followers, if anything, drains
// the queue ahead of it faster).
//
// In a pool, batches form per device: companions are collected from the
// global heap (where capacity-gated placement keeps contended jobs) when
// the head reaches the front of its device's queue, and the whole group
// runs on that one device.
//
// Fusion is declined — the job runs the ordinary single path — when no
// companion is found in the queue (and within the batch window, if one is
// configured), when FusedBytesCap would be exceeded, or when every would-be
// companion was already canceled.

// fuseClass decides at admission whether a job may join a fused execution,
// returning its fusion key ("" when it cannot). A job is fusable when
// fusion is enabled (MaxFusedJobs ≥ 2), the strategy is GPUOnly (the only
// all-device-resident plan, so segments coexist on the card), the algorithm
// implements core.GPUAlg, and the job's options carry no per-run
// instrumentation — a backend wrapper, observer, or private metrics
// registry cannot be attributed to one member of a shared launch. The key
// groups jobs by algorithm kind and coalesce setting, because one fused run
// executes under one RunConfig.
func (s *Server) fuseClass(job Job, rc core.RunConfig) string {
	if s.cfg.MaxFusedJobs < 2 || job.Strategy != GPUOnly {
		return ""
	}
	if _, ok := job.Alg.(core.GPUAlg); !ok {
		return ""
	}
	if rc.Wrap != nil || rc.Observe != nil || rc.Metrics != nil {
		return ""
	}
	// A reliability policy needs per-job attempt control (retry, hedge,
	// fallback, deadline scoping), which a shared fused launch cannot give
	// one member; such jobs always run solo.
	if !rc.Reliability.Zero() {
		return ""
	}
	key := job.Alg.Name()
	if rc.Coalesce {
		key += "|coalesce"
	}
	return key
}

// collectLocked moves queued jobs with the given fusion key into members,
// in dispatch (virtual finish tag) order, until MaxFusedJobs or
// FusedBytesCap stops it. Must hold s.mu.
func (s *Server) collectLocked(key string, members []*queued, bytes int64) ([]*queued, int64) {
	if len(members) >= s.cfg.MaxFusedJobs {
		return members, bytes
	}
	var cand []*queued
	kept := s.queue[:0]
	for _, q := range s.queue {
		if q.fuseKey == key {
			cand = append(cand, q)
		} else {
			kept = append(kept, q)
		}
	}
	sort.Slice(cand, func(i, j int) bool {
		if cand[i].vfinish != cand[j].vfinish {
			return cand[i].vfinish < cand[j].vfinish
		}
		return cand[i].seq < cand[j].seq
	})
	for _, q := range cand {
		if len(members) < s.cfg.MaxFusedJobs &&
			(s.cfg.FusedBytesCap == 0 || bytes+q.gpuBytes <= s.cfg.FusedBytesCap) {
			members = append(members, q)
			bytes += q.gpuBytes
		} else {
			kept = append(kept, q)
		}
	}
	for i := len(kept); i < len(s.queue); i++ {
		s.queue[i] = nil
	}
	s.queue = s.queue[:len(kept)]
	heap.Init(&s.queue)
	s.mQueueDepth.Set(int64(s.totalQueuedLocked()))
	return members, bytes
}

// removeWaiterLocked unregisters a batch-window waiter. Must hold s.mu.
func (s *Server) removeWaiterLocked(key string, w chan struct{}) {
	ws := s.fuseWaiters[key]
	for i, c := range ws {
		if c == w {
			ws[i] = ws[len(ws)-1]
			ws = ws[:len(ws)-1]
			break
		}
	}
	if len(ws) == 0 {
		delete(s.fuseWaiters, key)
	} else {
		s.fuseWaiters[key] = ws
	}
}

// runFused attempts to execute the dispatched head job as a fused run on
// its placed device. It returns false — without having settled anything
// about the head — when fusion is declined and the caller should take the
// ordinary single-job path. When it returns true the head's execution slot
// has been released and every collected member settled.
func (s *Server) runFused(d *device, head *queued) bool {
	members := []*queued{head}
	bytes := head.gpuBytes
	s.mu.Lock()
	members, bytes = s.collectLocked(head.fuseKey, members, bytes)
	if len(members) < s.cfg.MaxFusedJobs && s.cfg.BatchWindow > 0 {
		wake := make(chan struct{}, 1)
		s.fuseWaiters[head.fuseKey] = append(s.fuseWaiters[head.fuseKey], wake)
		s.mu.Unlock()
		timer := time.NewTimer(s.cfg.BatchWindow)
	window:
		for {
			select {
			case <-wake:
				s.mu.Lock()
				members, bytes = s.collectLocked(head.fuseKey, members, bytes)
				full := len(members) >= s.cfg.MaxFusedJobs
				s.mu.Unlock()
				if full {
					break window
				}
			case <-timer.C:
				break window
			}
		}
		timer.Stop()
		s.mu.Lock()
		s.removeWaiterLocked(head.fuseKey, wake)
	}
	s.mu.Unlock()

	// Members canceled while queued settle individually and never touch
	// the backend; the survivors execute.
	var live, canceled []*queued
	for _, q := range members {
		if q.ctx.Err() != nil {
			canceled = append(canceled, q)
		} else {
			live = append(live, q)
		}
	}
	if len(live) == 1 && live[0] == head && len(canceled) == 0 {
		return false // fusion declined: nothing to fuse, zero overhead
	}
	for _, q := range canceled {
		s.settleQueuedCanceled(q)
	}
	if len(live) == 0 {
		// The head itself was canceled: release its slot (and its probe
		// token, if it held one).
		if head.ctx.Err() == nil {
			panic("serve: empty fused group with live head")
		}
		s.feedBreaker(d, head, verdictAbandon)
		s.mu.Lock()
		s.finishJobLocked(d, head)
		s.mu.Unlock()
		return true
	}

	now := time.Now()
	for _, q := range live {
		q.h.queueWait = now.Sub(q.wallIn).Seconds()
	}
	reps, err := s.executeFused(d, live)

	// The fused run is one device-path execution; its verdict feeds the
	// device's breaker through the head (the only member that can hold a
	// probe token).
	switch {
	case err == nil:
		s.feedBreaker(d, head, verdictSuccess)
	case errors.Is(err, dcerr.ErrDeviceFault):
		s.feedBreaker(d, head, verdictFault)
	default:
		s.feedBreaker(d, head, verdictAbandon)
	}

	for i, q := range live {
		var rep core.Report
		if i < len(reps) {
			rep = reps[i]
		}
		merr := err
		if err != nil {
			merr = fmt.Errorf("serve: job %d: %w", q.h.ID, err)
		}
		q.h.rep, q.h.err = rep, merr
		close(q.h.done)
	}

	s.mu.Lock()
	s.finishJobLocked(d, head)
	if len(live) >= 2 {
		s.stats.FusedRuns++
		s.stats.FusedJobs += uint64(len(live))
		s.mFusedRuns.Inc()
		s.mFusedJobs.Add(uint64(len(live)))
	}
	for _, q := range live {
		s.accountFinishedLocked(q, q.h.rep, q.h.err)
	}
	s.updateFusionRatioLocked()
	s.mu.Unlock()
	return true
}

// settleQueuedCanceled settles a member whose context was canceled before
// execution, mirroring run()'s canceled-while-queued path (but without an
// execution slot to release).
func (s *Server) settleQueuedCanceled(q *queued) {
	q.h.queueWait = time.Since(q.wallIn).Seconds()
	q.h.rep = core.Report{Algorithm: q.job.Alg.Name(), Strategy: q.job.Strategy.String(), Partial: true}
	q.h.err = fmt.Errorf("serve: job %d canceled while queued: %w", q.h.ID, dcerr.ErrCanceled)
	close(q.h.done)
	s.mu.Lock()
	s.accountFinishedLocked(q, q.h.rep, q.h.err)
	s.updateFusionRatioLocked()
	s.mu.Unlock()
}

// accountFinishedLocked records one finished job's outcome counters, wait
// accounting and latency histograms. Must hold s.mu.
func (s *Server) accountFinishedLocked(q *queued, rep core.Report, err error) {
	s.waitSum += q.h.queueWait
	s.waitN++
	s.stats.BusySeconds += rep.Seconds
	switch {
	case err == nil:
		s.stats.Completed++
		s.mCompleted.Inc()
	case errors.Is(err, dcerr.ErrCanceled):
		s.stats.Canceled++
		s.mCanceled.Inc()
	default:
		s.stats.Failed++
		s.mFailed.Inc()
	}
	wait, turnaround := s.latencyHists(q.weight)
	wait.Observe(q.h.queueWait)
	turnaround.Observe(time.Since(q.wallIn).Seconds())
}

// executeFused runs the group on the head's placed device, mirroring
// runAttempt: the server's metrics registry and a trace scope are prefixed,
// the group's shared coalesce setting is re-applied, and span stamping
// covers both the fused run (one "fused" span on the head's job ID naming
// every member) and the per-member "queue"/"job" spans.
func (s *Server) executeFused(d *device, members []*queued) ([]core.Report, error) {
	be := d.be
	head := members[0]
	algs := make([]core.GPUAlg, len(members))
	for i, q := range members {
		algs[i] = q.job.Alg.(core.GPUAlg)
	}

	var opts []core.Option
	if s.cfg.Metrics != nil {
		opts = append(opts, core.WithMetrics(s.cfg.Metrics))
	}
	var scope *trace.Scope
	if s.cfg.Trace != nil {
		scope = s.cfg.Trace.Scope(head.h.ID)
		opts = append(opts, core.WithBackendWrapper(func(inner core.Backend) core.Backend {
			return trace.Wrap(inner, scope)
		}))
	}
	if strings.HasSuffix(head.fuseKey, "|coalesce") {
		opts = append(opts, core.WithCoalesce())
	}

	ctx, stop := fusedContext(members)
	defer stop()
	start := be.Now()
	reps, err := core.RunFusedGPUCtx(ctx, be, algs, opts...)
	if scope != nil {
		end := be.Now()
		ids := make([]string, len(members))
		for i, q := range members {
			ids[i] = fmt.Sprintf("%d", q.h.ID)
		}
		scope.Add(trace.Span{
			Unit: "job",
			Label: fmt.Sprintf("fused ×%d %s jobs [%s] dev%d",
				len(members), head.job.Alg.Name(), strings.Join(ids, " "), d.id),
			Start: start, End: end,
		})
		for _, q := range members {
			ms := s.cfg.Trace.Scope(q.h.ID)
			label := fmt.Sprintf("job %d %s %s n=%d dev%d", q.h.ID, q.job.Alg.Name(),
				core.FusedStrategy, q.job.Alg.N(), d.id)
			ms.Add(trace.Span{Unit: "queue", Label: label,
				Start: start - q.h.queueWait, End: start})
			ms.Add(trace.Span{Unit: "job", Label: label, Start: start, End: end})
		}
	}
	return reps, err
}

// fusedContext derives the group's execution context: it cancels only when
// every member's submission context has been canceled, because the fused
// run is all-or-nothing — as long as one member still wants its result, the
// run must proceed. Members submitted with contexts that can never cancel
// keep the fused run alive unconditionally. The returned stop releases the
// watchers.
func fusedContext(members []*queued) (context.Context, func()) {
	ctx, cancel := context.WithCancel(context.Background())
	var remaining atomic.Int64
	remaining.Store(int64(len(members)))
	stops := make([]func() bool, 0, len(members))
	for _, q := range members {
		stops = append(stops, context.AfterFunc(q.ctx, func() {
			if remaining.Add(-1) == 0 {
				cancel()
			}
		}))
	}
	return ctx, func() {
		for _, st := range stops {
			st()
		}
		cancel()
	}
}
