package serve_test

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/algos/dcsum"
	"repro/internal/algos/mergesort"
	"repro/internal/algos/scan"
	"repro/internal/autotune"
	"repro/internal/core"
	"repro/internal/hpu"
	"repro/internal/serve"
	"repro/internal/workload"
)

// autoPropertySizes spans the CPU/GPU crossover on HPU1: at 256 elements
// the transfer-free CPU path wins, at 64Ki the device path dominates, and
// the middle sizes land near the §6 break-even region.
var autoPropertySizes = []int{1 << 8, 1 << 12, 1 << 16}

// TestAutoStrategyProperty is the Strategy Auto acceptance property, run for
// 8 seeds × {mergesort, scan, dcsum} × sizes spanning the crossover:
//
//  1. results are bit-identical to the plain-Go ground truth, and
//  2. every decision's chosen strategy prices at or below every rejected
//     strategy under the same calibration (the argmin invariant), verified
//     against the device's calibration via Server.Tuner.
//
// Each seed submits two rounds per (algorithm, size): the first lands on
// the cold-start analytic model, the second on fitted rates — so both the
// fallback and the calibrated path are exercised. Run under -race in CI.
func TestAutoStrategyProperty(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			srv, err := serve.New(hpu.MustSim(hpu.HPU1()))
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			ctx := context.Background()
			for round := 0; round < 2; round++ {
				for _, n := range autoPropertySizes {
					data := workload.Uniform(n, rng.Int63())
					checkAutoMergesort(ctx, t, srv, data)
					checkAutoScan(ctx, t, srv, data)
					checkAutoSum(ctx, t, srv, data)
				}
			}
			checkDecisionInvariant(t, srv)
		})
	}
}

func submitAuto(ctx context.Context, t *testing.T, srv *serve.Server, alg core.Alg) core.Report {
	t.Helper()
	h, err := srv.Submit(ctx, serve.Job{Alg: alg, Strategy: serve.Auto})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AutoStrategy == "" {
		t.Fatalf("auto job settled without a chosen strategy (report %+v)", rep)
	}
	return rep
}

func checkAutoMergesort(ctx context.Context, t *testing.T, srv *serve.Server, data []int32) {
	t.Helper()
	s, err := mergesort.New(data)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]int32(nil), data...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	submitAuto(ctx, t, srv, s)
	got := s.Result()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mergesort n=%d diverges from ground truth at %d: %d != %d",
				len(data), i, got[i], want[i])
		}
	}
}

func checkAutoScan(ctx context.Context, t *testing.T, srv *serve.Server, data []int32) {
	t.Helper()
	s, err := scan.New(data)
	if err != nil {
		t.Fatal(err)
	}
	submitAuto(ctx, t, srv, s)
	got := s.Result()
	run := int64(0)
	for i, v := range data {
		run += int64(v)
		if got[i] != run {
			t.Fatalf("scan n=%d diverges from ground truth at %d: %d != %d",
				len(data), i, got[i], run)
		}
	}
}

func checkAutoSum(ctx context.Context, t *testing.T, srv *serve.Server, data []int32) {
	t.Helper()
	s, err := dcsum.New(data)
	if err != nil {
		t.Fatal(err)
	}
	submitAuto(ctx, t, srv, s)
	want := int64(0)
	for _, v := range data {
		want += int64(v)
	}
	if got := s.Result(); got != want {
		t.Fatalf("dcsum n=%d diverges from ground truth: %d != %d", len(data), got, want)
	}
}

// checkDecisionInvariant prices every (algorithm, size) pair this test
// submitted against the server's single-device calibration — warm by now —
// and asserts the argmin property on the decision the server would make.
func checkDecisionInvariant(t *testing.T, srv *serve.Server) {
	t.Helper()
	for _, n := range autoPropertySizes {
		data := workload.Uniform(n, 1)
		ms, _ := mergesort.New(data)
		sc, _ := scan.New(data)
		su, _ := dcsum.New(data)
		for _, alg := range []core.Alg{ms, sc, su} {
			m := alg.(interface {
				ModelF() func(float64) float64
				ModelLeaf() float64
			})
			galg := alg.(core.GPUAlg)
			sp := autotune.Spec{
				Alg: alg.Name(), N: alg.N(),
				A: alg.Arity(), B: alg.Shrink(), Levels: alg.Levels(),
				F: m.ModelF(), Leaf: m.ModelLeaf(),
				P: 4, G: 4096, Gamma: 1.0 / 160,
				Bytes: galg.GPUBytes(0, 0, 1), HasGPU: true,
			}
			dec, err := srv.Tuner().Decide(0, sp)
			if err != nil {
				t.Fatal(err)
			}
			// Calibrated is not asserted: a bucket where one side always wins
			// never accumulates the losing side's observations, by design. The
			// argmin invariant must hold either way.
			for name, cost := range dec.Costs {
				if cost < dec.Predicted {
					t.Errorf("%s n=%d: rejected %s cost %g beats chosen %s cost %g",
						alg.Name(), n, name, cost, dec.Strategy, dec.Predicted)
				}
			}
		}
	}
}
