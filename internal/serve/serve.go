// Package serve multiplexes many concurrent divide-and-conquer jobs over a
// pool of shared backends. The paper's executors (Algorithms 3/8, §5) run
// one job to completion on a dedicated HPU; a production deployment instead
// sees a stream of jobs of mixed sizes competing for one or more CPU+GPU
// pairs, so the serving layer adds what the single-run model leaves out:
// bounded admission with backpressure, per-job context cancellation and
// deadlines, a weighted-fair dispatch order so one large mergesort cannot
// starve a queue of small scans, and load-aware placement across devices.
//
// Admission is a bounded queue: Submit returns an error wrapping
// dcerr.ErrQueueFull once QueueDepth jobs are waiting, pushing load shedding
// to the caller. Dispatch is stride scheduling over the job weights set with
// core.WithPriority: each queued job receives a virtual finish tag
// pass + 1/weight, and the dispatcher always places the smallest tag, which
// degrades to strict FIFO when all weights are equal and approaches
// weight-proportional service under contention while remaining
// starvation-free. Placement is join-shortest-modeled-work (or plain JSQ;
// see Placement) over the pool's devices, each with its own dispatch FIFO,
// circuit breaker and drain state (pool.go). Execution itself reuses the
// context-aware executors of internal/core, so a canceled job stops at its
// next level boundary and yields a partial core.Report.
//
// Backends that are not core.Autonomous (the virtual-time simulator, whose
// event engine is single-goroutine) are driven with at most one job in
// flight each; real-goroutine backends interleave up to MaxInFlight jobs,
// whose level batches then compete for the backend's worker pools.
package serve

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/autotune"
	"repro/internal/core"
	"repro/internal/dcerr"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Strategy selects which executor a job runs under.
type Strategy int

const (
	// Sequential runs the single-core recursive baseline.
	Sequential Strategy = iota
	// BreadthFirstCPU runs level-parallel on the CPU only.
	BreadthFirstCPU
	// BasicHybrid runs the §5.1 basic work division (needs a GPUAlg and a
	// backend with a GPU).
	BasicHybrid
	// AdvancedHybrid runs the §5.2 advanced work division (needs a GPUAlg
	// and a backend with a GPU).
	AdvancedHybrid
	// GPUOnly runs everything on the device.
	GPUOnly
	// Auto lets the server pick the strategy at dispatch: the device's
	// online calibration (internal/autotune) prices BreadthFirstCPU,
	// GPUOnly, every BasicHybrid crossover and an (α, y) grid of
	// AdvancedHybrid divisions for the job's N, and the argmin runs. The
	// job's Alpha/Y/Crossover fields are ignored; the chosen strategy and
	// parameters are stamped into Report.AutoStrategy. Until the
	// calibration warms up (and for algorithms without model hooks or
	// GPUAlg), the decision comes from the uncalibrated analytic model.
	Auto
)

// String returns the strategy's report name.
func (s Strategy) String() string {
	switch s {
	case Sequential:
		return "seq-1cpu"
	case BreadthFirstCPU:
		return "bf-cpu"
	case BasicHybrid:
		return "basic-hybrid"
	case AdvancedHybrid:
		return "advanced-hybrid"
	case GPUOnly:
		return "gpu-only"
	case Auto:
		return "auto"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Job describes one divide-and-conquer job.
type Job struct {
	// Alg is the instance to solve. For BasicHybrid, AdvancedHybrid and
	// GPUOnly it must implement core.GPUAlg.
	Alg core.Alg
	// Strategy selects the executor.
	Strategy Strategy
	// Alpha and Y parameterize AdvancedHybrid (the §5.2 α and transfer
	// level).
	Alpha float64
	Y     int
	// Crossover parameterizes BasicHybrid (the §5.1 switch level).
	Crossover int
	// Opts are per-job execution options (core.WithCoalesce,
	// core.WithSplit, core.WithPriority, ...). Options passed to Submit are
	// appended after these.
	Opts []core.Option
	// Fresh builds a new, unexecuted instance of the same problem. It is
	// required whenever the job's reliability policy can execute more than
	// once (WithRetry, WithHedge, WithFallback): a faulted attempt may have
	// partially mutated its instance, so re-execution always starts from a
	// fresh one. The instance that produced the job's result is available
	// from Handle.ResultAlg. Must be safe to call from the server's
	// goroutines.
	Fresh func() (core.Alg, error)
}

// Config describes a Server.
//
// Deprecated: construct servers with New(backend, options...) or
// NewPool(backends, options...); Config remains only as the resolved form
// of the options and for NewFromConfig-based callers.
type Config struct {
	// Backend is the shared execution platform — device 0 of the pool.
	// Required unless Pool is set.
	Backend core.Backend
	// Pool, when set, is the full device list; Backend defaults to Pool[0].
	Pool []core.Backend
	// Placement selects the pool placement policy (PlaceModeledWork, the
	// default, or PlaceJSQ).
	Placement Placement
	// QueueDepth bounds the admission queue; Submit rejects with
	// ErrQueueFull beyond it. Defaults to 64.
	QueueDepth int
	// MaxInFlight bounds how many jobs execute concurrently on each device.
	// Defaults to 4. Clamped to 1 per device whose backend is not
	// core.Autonomous (the single-goroutine simulator).
	MaxInFlight int
	// Trace, if non-nil, records one "queue" and one "job" span per job,
	// plus the job's batches and transfers through a per-job scope.
	Trace *trace.Recorder
	// Metrics, if non-nil, receives the server's operational metrics and is
	// forwarded to every job's executor.
	Metrics *metrics.Registry
	// MaxFusedJobs caps how many same-kind GPUOnly jobs one fused execution
	// may absorb. Values below 2 disable fusion (the default).
	MaxFusedJobs int
	// BatchWindow is how long a dispatched fusable job lingers for
	// same-kind companions to arrive before executing, when fewer than
	// MaxFusedJobs are already queued. 0 (the default) fuses only with jobs
	// already waiting in the queue.
	BatchWindow time.Duration
	// FusedBytesCap bounds the summed per-job transfer sizes (GPUBytes of
	// the whole instance) one fused execution may carry; 0 means unbounded.
	FusedBytesCap int64
	// BreakerThreshold enables the per-device circuit breakers: after this
	// many consecutive device-fault attempts on one device its GPU path is
	// shed (jobs reroute to other devices, fall back to the CPU path, or
	// fail with ErrDegraded) until a cooldown probe succeeds. 0 (the
	// default) disables the breakers.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker sheds before admitting a
	// half-open probe job. Defaults to 100ms when the breaker is enabled.
	BreakerCooldown time.Duration
	// AutoDrain lets a device whose breaker trips drain itself out of the
	// pool (unless it is the last active device): its queued jobs rebalance
	// to the global queue and the device is removed once idle.
	AutoDrain bool
	// SplitBytes, when positive, lets an otherwise-idle device split an
	// AdvancedHybrid job whose whole-instance transfer size is at least this
	// many bytes across its internal GPUs (core.RunMultiGPUCtx), when its
	// backend is a core.MultiGPUBackend with two or more devices. 0 (the
	// default) never splits.
	SplitBytes int64
	// Faults, if non-nil, wraps every attempt's backend with the fault
	// injector — the chaos-testing hook (see internal/faults). Fused
	// executions and jobs carrying their own WithBackendWrapper bypass it.
	Faults *faults.Injector
	// DeviceFaults overrides Faults per device id, so a chaos run can make
	// one pool member flaky while the rest stay healthy.
	DeviceFaults map[int]*faults.Injector
	// Tuner is the auto-strategy calibrator consulted for Strategy Auto
	// jobs and fed by every clean attempt's measurements. Nil lets the
	// server create a fresh one on demand; set it (WithAutoTuner) to share
	// or persist calibration across servers and restarts.
	Tuner *autotune.Tuner
}

// Stats is a point-in-time snapshot of the server's aggregate counters.
type Stats struct {
	// Submitted counts accepted submissions; Rejected counts queue-full
	// rejections (not included in Submitted).
	Submitted, Rejected uint64
	// Completed, Canceled and Failed partition finished jobs: clean runs,
	// runs that stopped on a canceled context (including expired deadlines
	// and cancellations while still queued), and runs whose executor
	// returned any other error.
	Completed, Canceled, Failed uint64
	// QueueDepth and InFlight are current occupancies (global queue plus
	// per-device queues, and all devices' execution slots); MaxQueueDepth is
	// the high-water mark of the admission queue.
	QueueDepth, InFlight, MaxQueueDepth int
	// AvgQueueWaitSeconds is the mean wall-clock time dispatched jobs spent
	// queued.
	AvgQueueWaitSeconds float64
	// BusySeconds is total wall-clock execution time across finished jobs
	// (virtual seconds on a simulated backend).
	BusySeconds float64
	// FusedRuns counts fused executions (≥ 2 members each); FusedJobs
	// counts the jobs that finished as members of one. FusedJobs over all
	// finished jobs is the fusion ratio exported as MetricFusionRatio.
	FusedRuns, FusedJobs uint64
	// Retries counts re-executed attempts after device faults; Fallbacks
	// counts CPU fallback executions (including breaker-shed jobs admitted
	// straight to the CPU path); HedgeWins counts jobs whose CPU hedge beat
	// the device path; Degraded counts GPU-bound jobs shed by open circuit
	// breakers (rejected at Submit or failed at dispatch with ErrDegraded).
	Retries, Fallbacks, HedgeWins, Degraded uint64
	// BreakerTrips counts closed/half-open → open transitions summed over
	// all devices; BreakerState is the worst current state across active
	// devices (BreakerClosed, BreakerHalfOpen, BreakerOpen). Both are zero
	// when the breakers are disabled.
	BreakerTrips uint64
	BreakerState int
	// Rebalanced counts jobs moved off a tripped or auto-draining device
	// back to the global queue (re-placed elsewhere, fairness order
	// intact); Drains counts completed device drains.
	Rebalanced, Drains uint64
	// Devices snapshots each pool member, indexed by device id (including
	// removed ones, whose ids stay reserved).
	Devices []DeviceStats
}

// Handle tracks one submitted job.
type Handle struct {
	// ID is the server-assigned submission sequence number.
	ID   uint64
	done chan struct{}

	// Written exactly once before done is closed.
	rep       core.Report
	err       error
	queueWait float64
	attempts  int
	hedgeWon  bool
	fellBack  bool
	resultAlg core.Alg
}

// Done returns a channel closed when the job has finished (successfully,
// canceled, or failed). It is the non-blocking composition point: select
// across many handles' Done channels, then read Err or Report.
func (h *Handle) Done() <-chan struct{} { return h.done }

// Err reports the job's terminal error without blocking: nil while the job
// is still running and after a clean completion, the execution error
// otherwise. Select on Done first to distinguish "running" from "clean".
func (h *Handle) Err() error {
	select {
	case <-h.done:
		return h.err
	default:
		return nil
	}
}

// Wait blocks until the job finishes or ctx is canceled. A ctx cancellation
// abandons only the wait — the job keeps running under its own submission
// context — and returns ctx's cause. A finished job always wins: once Done
// is closed, Wait returns the job's outcome even if ctx is already expired,
// so the job's own error (including ErrDegraded and ErrCanceled from the
// submission context) takes precedence over the wait context's.
func (h *Handle) Wait(ctx context.Context) (core.Report, error) {
	select {
	case <-h.done:
		return h.rep, h.err
	default:
	}
	select {
	case <-h.done:
		return h.rep, h.err
	case <-ctx.Done():
		return core.Report{}, fmt.Errorf("serve: wait for job %d: %w", h.ID, context.Cause(ctx))
	}
}

// Report blocks until the job finishes and returns its Report and error.
// On cancellation the error wraps dcerr.ErrCanceled and the Report is
// partial.
func (h *Handle) Report() (core.Report, error) {
	<-h.done
	return h.rep, h.err
}

// QueueWaitSeconds reports how long the job waited for dispatch; valid after
// Done is closed.
func (h *Handle) QueueWaitSeconds() float64 {
	<-h.done
	return h.queueWait
}

// Attempts blocks until the job finishes and reports how many executions
// the serving layer ran for it: 1 for a plain job, more under retry,
// hedging or fallback, 0 for a job canceled while still queued (and for
// members of a fused execution, which run exactly once by construction).
func (h *Handle) Attempts() int {
	<-h.done
	return h.attempts
}

// HedgeWon blocks until the job finishes and reports whether its result
// came from the CPU hedge rather than the primary device path.
func (h *Handle) HedgeWon() bool {
	<-h.done
	return h.hedgeWon
}

// FellBack blocks until the job finishes and reports whether its result
// came from the graceful-degradation CPU path (WithFallback) after the
// device path failed or was shed by the circuit breaker.
func (h *Handle) FellBack() bool {
	<-h.done
	return h.fellBack
}

// ResultAlg blocks until the job finishes and returns the instance holding
// the job's result: the submitted Job.Alg normally, or the fresh instance
// (Job.Fresh) that won when a retry, hedge or fallback produced the result.
// Callers that read output data out of their algorithm after Wait must read
// it from ResultAlg when the job carries a re-executing policy.
func (h *Handle) ResultAlg() core.Alg {
	<-h.done
	return h.resultAlg
}

// queued is one admission-queue entry.
type queued struct {
	h       *Handle
	ctx     context.Context
	job     Job
	opts    []core.Option
	weight  int
	vfinish float64
	seq     uint64
	wallIn  time.Time
	// fuseKey is the fusion compatibility class ("" when the job cannot
	// fuse); gpuBytes is the job's whole-instance transfer size, used
	// against FusedBytesCap and SplitBytes; cost is the modeled work used by
	// PlaceModeledWork. All computed at admission.
	fuseKey  string
	gpuBytes int64
	cost     float64
	// pol is the job's reliability policy; probe marks it as a circuit
	// breaker's half-open probe (it must report its verdict exactly once);
	// forceCPU routes it straight to the CPU fallback path (admitted or
	// placed while every breaker was open); multi marks an oversized
	// AdvancedHybrid job placed on an idle multi-GPU device, to be striped
	// across its internal devices.
	pol      core.Reliability
	probe    bool
	forceCPU bool
	multi    bool
	// Auto-strategy decision, made at placement (so it prices against the
	// placed device's calibration) and cleared whenever the job leaves its
	// device (requeue, rebalance) to be re-decided elsewhere. autoPredicted
	// is the decision's calibrated makespan, fed back as the prediction
	// error sample.
	autoDecided   bool
	autoStrat     Strategy
	autoAlpha     float64
	autoY         int
	autoCross     int
	autoPredicted float64
	autoCalibr    bool
}

// effective is the strategy the job will actually dispatch under: the
// submitted one, or — for Strategy Auto — the placement-time decision
// (BreadthFirstCPU until one is made: the undecided path must never
// require a device).
func (q *queued) effective() Strategy {
	if q.job.Strategy != Auto {
		return q.job.Strategy
	}
	if q.autoDecided {
		return q.autoStrat
	}
	return BreadthFirstCPU
}

// clearAutoDecision forgets a placement-time decision so the job re-decides
// against its next device's calibration.
func (q *queued) clearAutoDecision() {
	q.autoDecided = false
	q.autoStrat, q.autoAlpha, q.autoY, q.autoCross = 0, 0, 0, 0
	q.autoPredicted, q.autoCalibr = 0, false
}

// jobHeap orders queued jobs by (virtual finish tag, arrival), the stride
// scheduling dispatch order.
type jobHeap []*queued

func (q jobHeap) Len() int { return len(q) }
func (q jobHeap) Less(i, j int) bool {
	if q[i].vfinish != q[j].vfinish {
		return q[i].vfinish < q[j].vfinish
	}
	return q[i].seq < q[j].seq
}
func (q jobHeap) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *jobHeap) Push(x any)   { *q = append(*q, x.(*queued)) }
func (q *jobHeap) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Server schedules concurrent jobs over a pool of shared backends.
type Server struct {
	cfg Config

	mu       sync.Mutex
	cond     *sync.Cond
	queue    jobHeap
	devices  []*device
	pass     float64 // stride scheduling global pass (advances on placement)
	seq      uint64
	inflight int
	closed   bool
	stats    Stats
	waitSum  float64
	waitN    uint64

	dispatcherDone chan struct{}
	jobs           sync.WaitGroup
	runners        sync.WaitGroup

	// tuner is the auto-strategy calibrator (never nil after New).
	// autoActive gates the per-attempt metering: it flips on when a tuner
	// was configured explicitly or the first Auto job arrives, so servers
	// that never use Strategy Auto pay nothing.
	tuner      *autotune.Tuner
	autoActive atomic.Bool

	// Reliability counters are atomics because the breaker callbacks fire
	// under a breaker's own lock, where taking mu would invert the
	// placement lock order (mu → breaker.mu).
	nRetries, nFallbacks, nHedgeWins atomic.Uint64
	nDegraded, nTrips                atomic.Uint64

	// fuseWaiters holds, per fusion key, the notification channels of
	// dispatched jobs lingering in their batch window; Submit pokes them
	// when a matching job arrives. Guarded by mu.
	fuseWaiters map[string][]chan struct{}

	// Operational instruments; nil (no-op) unless Config.Metrics was set.
	mSubmitted, mRejected  *metrics.Counter
	mCompleted             *metrics.Counter
	mCanceled, mFailed     *metrics.Counter
	mQueueDepth, mQueueMax *metrics.Gauge
	mInFlight              *metrics.Gauge
	mFusedJobs, mFusedRuns *metrics.Counter
	mFusionRatio           *metrics.Float
	mRetries, mFallbacks   *metrics.Counter
	mHedgeWins, mDegraded  *metrics.Counter
	mBreakerTrips          *metrics.Counter
	mBreakerState          *metrics.Gauge
	mRebalances, mDrains   *metrics.Counter
	lastFusionRatio        float64                    // last value pushed to mFusionRatio, under mu
	waitHists, turnHists   map[int]*metrics.Histogram // keyed by priority, under mu
}

// New starts a server multiplexing jobs over the shared backend,
// configured by functional options (WithQueueDepth, WithMaxInFlight,
// WithMetrics, WithRecorder). Call Close to stop it; Close drains
// already-accepted jobs.
func New(be core.Backend, opts ...Option) (*Server, error) {
	cfg := Config{Backend: be}
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return NewFromConfig(cfg)
}

// NewPool starts a server sharding jobs across a pool of backends — one
// device per backend, each with its own dispatch queue, circuit breaker and
// drain state — placed by the policy set with WithPlacement. The pool can
// grow and shrink at runtime with AddBackend and DrainBackend.
func NewPool(pool []core.Backend, opts ...Option) (*Server, error) {
	if len(pool) == 0 {
		return nil, fmt.Errorf("serve: empty backend pool: %w", dcerr.ErrBadParam)
	}
	cfg := Config{Pool: pool}
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return NewFromConfig(cfg)
}

// NewFromConfig starts a server from a resolved Config.
//
// Deprecated: use New or NewPool with functional options.
func NewFromConfig(cfg Config) (*Server, error) {
	if len(cfg.Pool) == 0 {
		cfg.Pool = []core.Backend{cfg.Backend}
	}
	if cfg.Backend == nil {
		cfg.Backend = cfg.Pool[0]
	}
	for i, be := range cfg.Pool {
		if be == nil {
			return nil, fmt.Errorf("serve: nil backend (device %d): %w", i, dcerr.ErrBadParam)
		}
		if c, ok := be.(core.Closer); ok && c.Closed() {
			return nil, fmt.Errorf("serve: device %d: %w", i, dcerr.ErrBackendClosed)
		}
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	if cfg.QueueDepth < 0 {
		return nil, fmt.Errorf("serve: QueueDepth %d: %w", cfg.QueueDepth, dcerr.ErrBadParam)
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 4
	}
	if cfg.MaxInFlight < 0 {
		return nil, fmt.Errorf("serve: MaxInFlight %d: %w", cfg.MaxInFlight, dcerr.ErrBadParam)
	}
	if cfg.BatchWindow < 0 {
		return nil, fmt.Errorf("serve: BatchWindow %v: %w", cfg.BatchWindow, dcerr.ErrBadParam)
	}
	if cfg.FusedBytesCap < 0 {
		return nil, fmt.Errorf("serve: FusedBytesCap %d: %w", cfg.FusedBytesCap, dcerr.ErrBadParam)
	}
	if cfg.SplitBytes < 0 {
		return nil, fmt.Errorf("serve: SplitBytes %d: %w", cfg.SplitBytes, dcerr.ErrBadParam)
	}
	if cfg.BreakerThreshold < 0 || cfg.BreakerCooldown < 0 {
		return nil, fmt.Errorf("serve: breaker threshold %d cooldown %v: %w",
			cfg.BreakerThreshold, cfg.BreakerCooldown, dcerr.ErrBadParam)
	}
	if cfg.BreakerThreshold > 0 && cfg.BreakerCooldown == 0 {
		cfg.BreakerCooldown = 100 * time.Millisecond
	}
	s := &Server{
		cfg:            cfg,
		dispatcherDone: make(chan struct{}),
		fuseWaiters:    map[string][]chan struct{}{},
		tuner:          cfg.Tuner,
	}
	if s.tuner == nil {
		s.tuner = autotune.NewTuner()
	} else {
		s.autoActive.Store(true)
	}
	if cfg.Metrics != nil {
		s.tuner.AttachMetrics(cfg.Metrics)
	}
	if reg := cfg.Metrics; reg != nil {
		s.mSubmitted = reg.Counter(MetricSubmitted)
		s.mRejected = reg.Counter(MetricRejected)
		s.mCompleted = reg.Counter(MetricCompleted)
		s.mCanceled = reg.Counter(MetricCanceled)
		s.mFailed = reg.Counter(MetricFailed)
		s.mQueueDepth = reg.Gauge(MetricQueueDepth)
		s.mQueueMax = reg.Gauge(MetricQueueDepthMax)
		s.mInFlight = reg.Gauge(MetricInFlight)
		s.mFusedJobs = reg.Counter(MetricFusedJobs)
		s.mFusedRuns = reg.Counter(MetricFusedRuns)
		s.mFusionRatio = reg.Float(MetricFusionRatio)
		s.mRetries = reg.Counter(MetricRetries)
		s.mFallbacks = reg.Counter(MetricFallbacks)
		s.mHedgeWins = reg.Counter(MetricHedgeWins)
		s.mDegraded = reg.Counter(MetricDegraded)
		s.mBreakerTrips = reg.Counter(MetricBreakerTrips)
		s.mBreakerState = reg.Gauge(MetricBreakerState)
		s.mRebalances = reg.Counter(MetricRebalances)
		s.mDrains = reg.Counter(MetricDrains)
		s.waitHists = map[int]*metrics.Histogram{}
		s.turnHists = map[int]*metrics.Histogram{}
	}
	s.cond = sync.NewCond(&s.mu)
	for i, be := range cfg.Pool {
		d := s.newDevice(i, be)
		s.devices = append(s.devices, d)
		s.runners.Add(1)
		go s.deviceLoop(d)
	}
	go s.dispatch()
	return s, nil
}

// Submit enqueues a job. It returns immediately with a Handle, or an error
// wrapping dcerr.ErrQueueFull when the admission queue is at capacity,
// dcerr.ErrServerClosed after Close, dcerr.ErrDegraded when every device's
// circuit breaker is shedding GPU-bound work (unless the job carries a
// CPUOnly fallback, which is admitted on the CPU path instead), or
// dcerr.ErrBadParam for an invalid job — including a reliability policy
// that can re-execute (WithRetry, WithHedge, WithFallback) on a job with no
// Fresh factory. ctx governs the job's whole lifetime: canceling it (or
// passing a deadline) stops the job at its next level boundary, or skips it
// entirely if it is still queued.
func (s *Server) Submit(ctx context.Context, job Job, opts ...core.Option) (*Handle, error) {
	if job.Alg == nil {
		return nil, fmt.Errorf("serve: nil algorithm: %w", dcerr.ErrBadParam)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	merged := make([]core.Option, 0, len(job.Opts)+len(opts))
	merged = append(merged, job.Opts...)
	merged = append(merged, opts...)
	rc := core.NewRunConfig(merged...)
	pol := rc.Reliability
	if pol.MaxRetries < 0 || pol.Backoff < 0 || pol.Deadline < 0 || pol.Hedge < 0 {
		return nil, fmt.Errorf("serve: negative reliability policy %+v: %w", pol, dcerr.ErrBadParam)
	}
	if pol.Reexecutes() && job.Fresh == nil {
		return nil, fmt.Errorf("serve: reliability policy re-executes but Job.Fresh is nil: %w", dcerr.ErrBadParam)
	}
	if job.Strategy == Auto {
		// From here on, attempts are metered to feed the calibration.
		s.autoActive.Store(true)
	}
	weight := rc.Priority
	fuseKey := s.fuseClass(job, rc)
	var gpuBytes int64
	if galg, ok := job.Alg.(core.GPUAlg); ok {
		gpuBytes = galg.GPUBytes(0, 0, 1)
	}
	cost := modeledCost(job.Alg)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("serve: %w", dcerr.ErrServerClosed)
	}
	if qd := s.totalQueuedLocked(); qd >= s.cfg.QueueDepth {
		s.stats.Rejected++
		s.mRejected.Inc()
		return nil, fmt.Errorf("serve: %d jobs queued: %w", qd, dcerr.ErrQueueFull)
	}
	var forceCPU bool
	if gpuBound(job.Strategy) && s.cfg.BreakerThreshold > 0 && !s.anyHealthyGPULocked() {
		if pol.Fallback == core.FallbackCPUOnly {
			forceCPU = true
		} else {
			s.noteDegraded()
			return nil, fmt.Errorf("serve: GPU path shed by open circuit breaker: %w", dcerr.ErrDegraded)
		}
	}
	s.seq++
	h := &Handle{ID: s.seq, done: make(chan struct{}), resultAlg: job.Alg}
	q := &queued{
		h:        h,
		ctx:      ctx,
		job:      job,
		opts:     merged,
		weight:   weight,
		vfinish:  s.pass + 1/float64(weight),
		seq:      s.seq,
		wallIn:   time.Now(),
		fuseKey:  fuseKey,
		gpuBytes: gpuBytes,
		cost:     cost,
		pol:      pol,
		forceCPU: forceCPU,
	}
	heap.Push(&s.queue, q)
	if fuseKey != "" {
		for _, w := range s.fuseWaiters[fuseKey] {
			select {
			case w <- struct{}{}:
			default:
			}
		}
	}
	s.stats.Submitted++
	s.mSubmitted.Inc()
	qd := s.totalQueuedLocked()
	s.mQueueDepth.Set(int64(qd))
	s.mQueueMax.Max(int64(qd))
	if qd > s.stats.MaxQueueDepth {
		s.stats.MaxQueueDepth = qd
	}
	s.cond.Signal()
	return h, nil
}

// latencyHists returns the wait and turnaround histograms for a priority,
// creating and caching them on first use. Must be called with s.mu held;
// returns nils when metrics are disabled.
func (s *Server) latencyHists(priority int) (wait, turnaround *metrics.Histogram) {
	if s.waitHists == nil {
		return nil, nil
	}
	wait, ok := s.waitHists[priority]
	if !ok {
		wait = s.cfg.Metrics.Histogram(fmt.Sprintf(MetricWaitSecondsFmt, priority))
		s.waitHists[priority] = wait
		turnaround = s.cfg.Metrics.Histogram(fmt.Sprintf(MetricTurnaroundSecondsFmt, priority))
		s.turnHists[priority] = turnaround
		return wait, turnaround
	}
	return wait, s.turnHists[priority]
}

// Stats returns a snapshot of the aggregate counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.QueueDepth = s.totalQueuedLocked()
	st.InFlight = s.inflight
	if s.waitN > 0 {
		st.AvgQueueWaitSeconds = s.waitSum / float64(s.waitN)
	}
	st.Retries = s.nRetries.Load()
	st.Fallbacks = s.nFallbacks.Load()
	st.HedgeWins = s.nHedgeWins.Load()
	st.Degraded = s.nDegraded.Load()
	st.BreakerTrips = s.nTrips.Load()
	st.Devices = make([]DeviceStats, len(s.devices))
	for i, d := range s.devices {
		ds := DeviceStats{
			ID:         d.id,
			QueueDepth: len(d.queue),
			InFlight:   d.inflight,
			Placements: d.placements,
			Draining:   d.draining,
			Removed:    d.removed,
		}
		if d.breaker != nil {
			ds.BreakerState = d.breaker.stateNow()
			ds.BreakerTrips = d.trips.Load()
			if !d.removed && ds.BreakerState > st.BreakerState {
				st.BreakerState = ds.BreakerState
			}
		}
		st.Devices[i] = ds
	}
	return st
}

// Close stops admission and drains: already-accepted jobs (queued and in
// flight) run to completion — or to their contexts' cancellation — before
// Close returns. A second Close returns an error wrapping
// dcerr.ErrServerClosed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("serve: %w", dcerr.ErrServerClosed)
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.dispatcherDone
	s.mu.Lock()
	for _, d := range s.devices {
		d.cond.Broadcast()
	}
	s.mu.Unlock()
	// Device runners exit only once their FIFOs are empty and nothing is in
	// flight, so after runners.Wait no further s.jobs.Add can start from a
	// zero counter; only then is jobs.Wait race-free against the pop-time
	// Add. It still catches run goroutines in their final deferred Done and
	// hedge losers outliving their parent's settlement.
	s.runners.Wait()
	s.jobs.Wait()
	return nil
}

// dispatch is the scheduler loop: whenever a device can take work, it places
// the queued job with the smallest virtual finish tag on the best-scoring
// device (pool.go).
func (s *Server) dispatch() {
	defer close(s.dispatcherDone)
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for len(s.queue) > 0 && s.placeHeadLocked() {
		}
		if s.closed && len(s.queue) == 0 {
			for _, d := range s.devices {
				d.cond.Broadcast()
			}
			return
		}
		s.cond.Wait()
	}
}

// run executes one dispatched job on its placed device and settles its
// handle. A fusable job first tries to absorb same-kind queued companions
// into one fused execution (see fusion.go); the single-job path below is
// both the normal case and the fusion-declined fallback.
func (s *Server) run(d *device, q *queued) {
	defer s.jobs.Done()
	if q.fuseKey != "" && s.runFused(d, q) {
		return
	}
	if s.cfg.SplitBytes > 0 && q.job.Strategy == AdvancedHybrid && q.gpuBytes >= s.cfg.SplitBytes {
		if mbe, ok := d.be.(core.MultiGPUBackend); ok && len(mbe.GPUs()) >= 2 {
			s.mu.Lock()
			q.multi = d.inflight == 1 && len(d.queue) == 0
			s.mu.Unlock()
		}
	}
	q.h.queueWait = time.Since(q.wallIn).Seconds()

	var rep core.Report
	var err error
	if q.ctx.Err() != nil {
		// Canceled while still queued: never touches the backend. A probe
		// token held since placement is released without a verdict.
		s.feedBreaker(d, q, verdictAbandon)
		rep = core.Report{Algorithm: q.job.Alg.Name(), Strategy: q.job.Strategy.String(), Partial: true}
		err = fmt.Errorf("serve: job %d canceled while queued: %w", q.h.ID, dcerr.ErrCanceled)
	} else {
		rep, err = s.executeReliable(d, q)
	}

	if errors.Is(err, errRequeued) {
		// The device's breaker tripped while the job waited in its FIFO and
		// another device can still serve the GPU path: put the job back in
		// the global heap (fairness tag intact) instead of degrading it.
		s.mu.Lock()
		if !s.closed {
			q.probe = false
			q.multi = false
			q.clearAutoDecision() // re-decide against the next device
			heap.Push(&s.queue, q)
			s.stats.Rebalanced++
			s.mRebalances.Inc()
			s.finishJobLocked(d, q)
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		// Closing: the dispatcher may already be gone; shed instead.
		s.noteDegraded()
		rep = core.Report{Algorithm: q.job.Alg.Name(), Strategy: q.job.Strategy.String(), Partial: true}
		err = fmt.Errorf("serve: job %d: GPU path shed at dispatch: %w", q.h.ID, dcerr.ErrDegraded)
	}

	q.h.rep, q.h.err = rep, err
	close(q.h.done)

	s.mu.Lock()
	s.finishJobLocked(d, q)
	s.accountFinishedLocked(q, rep, err)
	s.updateFusionRatioLocked()
	s.mu.Unlock()
}

// updateFusionRatioLocked pushes the current fused-jobs-over-finished-jobs
// ratio to the MetricFusionRatio float (an Add-only accumulator, so the
// gauge semantics are emulated by adding the delta). Must hold s.mu.
func (s *Server) updateFusionRatioLocked() {
	if s.mFusionRatio == nil {
		return
	}
	finished := s.stats.Completed + s.stats.Canceled + s.stats.Failed
	if finished == 0 {
		return
	}
	ratio := float64(s.stats.FusedJobs) / float64(finished)
	s.mFusionRatio.Add(ratio - s.lastFusionRatio)
	s.lastFusionRatio = ratio
}

// runStrategy dispatches one attempt of alg under strat to the matching
// context-aware executor. alg and strat are parameters (not read off q)
// because reliability policies substitute both: retries and hedges run
// fresh instances, and the hedge/fallback paths run BreadthFirstCPU
// whatever the job's submitted strategy was.
func (s *Server) runStrategy(ctx context.Context, be core.Backend, alg core.Alg, strat Strategy, q *queued, opts []core.Option) (core.Report, error) {
	crossover, alpha, y := q.job.Crossover, q.job.Alpha, q.job.Y
	if strat == Auto {
		// Resolve an auto job to its placement-time decision (the policy
		// loop normally resolves before calling; this is the safety net).
		strat = q.effective()
	}
	if q.job.Strategy == Auto && q.autoDecided {
		crossover, alpha, y = q.autoCross, q.autoAlpha, q.autoY
	}
	switch strat {
	case Sequential:
		return core.RunSequentialCtx(ctx, be, alg, opts...)
	case BreadthFirstCPU:
		return core.RunBreadthFirstCPUCtx(ctx, be, alg, opts...)
	case BasicHybrid, AdvancedHybrid, GPUOnly:
		galg, ok := alg.(core.GPUAlg)
		if !ok {
			return core.Report{}, fmt.Errorf("serve: %s is not a GPUAlg (strategy %s): %w",
				alg.Name(), strat, dcerr.ErrBadParam)
		}
		switch strat {
		case BasicHybrid:
			return core.RunBasicHybridCtx(ctx, be, galg, crossover, opts...)
		case AdvancedHybrid:
			if q.multi {
				if mbe, ok := be.(core.MultiGPUBackend); ok && len(mbe.GPUs()) >= 2 {
					return core.RunMultiGPUCtx(ctx, mbe, galg, alpha, y, opts...)
				}
			}
			return core.RunAdvancedHybridCtx(ctx, be, galg, alpha, y, opts...)
		default:
			return core.RunGPUOnlyCtx(ctx, be, galg, opts...)
		}
	}
	return core.Report{}, fmt.Errorf("serve: unknown strategy %d: %w", int(strat), dcerr.ErrBadParam)
}
