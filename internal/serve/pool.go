package serve

// Backend pool: per-device dispatch queues, load-aware placement, runtime
// topology control (AddBackend / DrainBackend) and per-device health.
// DESIGN.md §13.
//
// The stride scheduler stays global — one virtual-time heap orders every
// queued job — and placement happens only at the head: when a device has a
// free execution slot, the job with the smallest virtual finish tag is
// handed to the best-scoring device's FIFO. Placement is capacity-gated
// (a device accepts at most cap jobs between its queue and its in-flight
// set), so under contention jobs accumulate in the global heap, where both
// the fairness order and job fusion keep working exactly as in the
// single-backend server.

import (
	"container/heap"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dcerr"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/model"
)

// Placement selects the load-aware placement policy for a backend pool.
type Placement int

const (
	// PlaceModeledWork is join-shortest-modeled-work, the default: each
	// device's backlog is the sum of its queued and in-flight jobs' modeled
	// sequential costs (internal/model, via the algorithms' ModelF/ModelLeaf
	// hooks), and the head job goes to the device with the least backlog.
	// Jobs without a cost model fall back to an N·(L+1) work proxy.
	PlaceModeledWork Placement = iota
	// PlaceJSQ is plain join-shortest-queue: occupancy (queued + in flight)
	// only, ignoring job sizes.
	PlaceJSQ
)

// String returns the policy name used in logs and BENCH artifacts.
func (p Placement) String() string {
	switch p {
	case PlaceModeledWork:
		return "modeled-work"
	case PlaceJSQ:
		return "jsq"
	}
	return fmt.Sprintf("placement(%d)", int(p))
}

// device is one pool member: a backend plus its dispatch queue, execution
// slots, health (circuit breaker, fault injector) and drain state. All
// mutable fields are guarded by Server.mu except the breaker (own lock) and
// the trip counter (atomic, incremented under the breaker's lock).
type device struct {
	id   int
	be   core.Backend
	cap  int  // execution slots; 1 for non-autonomous backends
	auto bool // backend runs submitted work on its own goroutines

	queue    []*queued // FIFO handoff between placement and the runner
	inflight int
	work     float64 // modeled backlog (queued + in flight), for placement

	draining bool          // no new placements; drains to removal
	removed  bool          // drained and gone; kept in the slice for ids
	drained  chan struct{} // closed when the drain completes

	cond *sync.Cond // on Server.mu; wakes the device's runner loop

	breaker *breaker
	faults  *faults.Injector

	placements uint64
	trips      atomic.Uint64

	mQueueDepth   *metrics.Gauge
	mPlacements   *metrics.Counter
	mBreakerState *metrics.Gauge
	mBreakerTrips *metrics.Counter
}

// DeviceStats is one device's slice of a Stats snapshot.
type DeviceStats struct {
	// ID is the device's stable pool index (AddBackend order).
	ID int
	// QueueDepth and InFlight are the device's current occupancies.
	QueueDepth, InFlight int
	// Placements counts jobs placed on this device.
	Placements uint64
	// Draining and Removed are the drain state machine's two terminal-bound
	// flags: a draining device accepts no placements; a removed one is gone.
	Draining, Removed bool
	// BreakerState and BreakerTrips are this device's circuit breaker.
	BreakerState int
	BreakerTrips uint64
}

// newDevice builds a pool member. Called at construction and from
// AddBackend, with s.mu held in the latter case (the breaker callbacks it
// installs never take s.mu, so construction order does not matter).
func (s *Server) newDevice(id int, be core.Backend) *device {
	d := &device{id: id, be: be, cap: s.cfg.MaxInFlight, drained: make(chan struct{})}
	if a, ok := be.(core.Autonomous); ok && a.Autonomous() {
		d.auto = true
	} else {
		// The event-loop simulator must never be driven from two
		// goroutines at once.
		d.cap = 1
	}
	d.cond = sync.NewCond(&s.mu)
	d.faults = s.cfg.Faults
	if in, ok := s.cfg.DeviceFaults[id]; ok {
		d.faults = in
	}
	if reg := s.cfg.Metrics; reg != nil {
		d.mQueueDepth = reg.Gauge(fmt.Sprintf(MetricDeviceQueueDepthFmt, id))
		d.mPlacements = reg.Counter(fmt.Sprintf(MetricDevicePlacementsFmt, id))
		d.mBreakerState = reg.Gauge(fmt.Sprintf(MetricDeviceBreakerStateFmt, id))
		d.mBreakerTrips = reg.Counter(fmt.Sprintf(MetricDeviceBreakerTripsFmt, id))
	}
	if s.cfg.BreakerThreshold > 0 {
		d.breaker = newBreaker(s.cfg.BreakerThreshold, s.cfg.BreakerCooldown,
			func(st int64) { d.mBreakerState.Set(st) },
			func() {
				d.trips.Add(1)
				d.mBreakerTrips.Inc()
				s.nTrips.Add(1)
				s.mBreakerTrips.Inc()
			})
	}
	return d
}

// modeledCost estimates a job's sequential work for placement. Algorithms
// exporting the paper's cost model (ModelF/ModelLeaf) get the §6 numeric
// sequential time; the rest fall back to N·(levels+1), the breadth-first
// task-count proxy.
func modeledCost(alg core.Alg) float64 {
	type modeled interface {
		ModelF() func(float64) float64
		ModelLeaf() float64
	}
	if m, ok := alg.(modeled); ok {
		num, err := model.NewNumeric(alg.Arity(), alg.Shrink(), alg.Levels(),
			m.ModelF(), m.ModelLeaf(), model.Machine{P: 1, G: 1, Gamma: 0.5})
		if err == nil {
			return num.SequentialTime()
		}
	}
	return float64(alg.N()) * float64(alg.Levels()+1)
}

// activeLocked counts devices accepting placements. Must hold s.mu.
func (s *Server) activeLocked() int {
	n := 0
	for _, d := range s.devices {
		if !d.removed && !d.draining {
			n++
		}
	}
	return n
}

// totalQueuedLocked is the admission-queue occupancy: the global heap plus
// every device's handoff FIFO (placed but not yet executing). Must hold s.mu.
func (s *Server) totalQueuedLocked() int {
	n := len(s.queue)
	for _, d := range s.devices {
		n += len(d.queue)
	}
	return n
}

// anyHealthyGPULocked reports whether some active device would admit a
// GPU-bound job right now (breaker closed, probing, or past cooldown).
// Must hold s.mu.
func (s *Server) anyHealthyGPULocked() bool {
	for _, d := range s.devices {
		if d.removed || d.draining {
			continue
		}
		if d.breaker == nil || d.breaker.canAdmit() {
			return true
		}
	}
	return false
}

// scoreLocked is the placement score (lower is better). Must hold s.mu.
func (s *Server) scoreLocked(d *device) float64 {
	if s.cfg.Placement == PlaceJSQ {
		return float64(d.inflight + len(d.queue))
	}
	return d.work
}

// placeHeadLocked tries to place the global heap's head job on a device.
// It returns false when nothing changed and the dispatcher should wait: the
// head stays queued (preserving the stride order) until a slot frees. Must
// hold s.mu; may temporarily settle a shed job. A true return means the
// loop should re-evaluate (a job was placed, rerouted to the CPU path, or
// shed).
func (s *Server) placeHeadLocked() bool {
	q := s.queue[0]
	gpu := gpuBound(q.job.Strategy) && !q.forceCPU

	var best *device
	gpuCapable := false // some active device could serve the GPU path later
	for _, d := range s.devices {
		if d.removed || d.draining {
			continue
		}
		if gpu && d.breaker != nil && !d.breaker.canAdmit() {
			continue
		}
		gpuCapable = true
		if d.inflight+len(d.queue) >= d.cap {
			continue
		}
		if best == nil || s.scoreLocked(d) < s.scoreLocked(best) ||
			(s.scoreLocked(d) == s.scoreLocked(best) && d.id < best.id) {
			best = d
		}
	}
	if best == nil {
		if gpuCapable || !gpu {
			return false // capacity wait: the head keeps its heap position
		}
		// GPU-bound head with every breaker open: degrade, as Submit would.
		if q.pol.Fallback == core.FallbackCPUOnly {
			q.forceCPU = true
			return true // re-place as a CPU-path job
		}
		heap.Pop(&s.queue)
		if q.vfinish > s.pass {
			s.pass = q.vfinish
		}
		s.noteDegraded()
		s.shedLocked(q, fmt.Errorf("serve: job %d: GPU path shed at dispatch: %w", q.h.ID, dcerr.ErrDegraded))
		return true
	}
	if gpu && best.breaker != nil {
		ok, probe := best.breaker.admit(proberOf(best))
		if !ok {
			return true // raced with a state change; re-evaluate
		}
		q.probe = probe
	}
	if q.job.Strategy == Auto && !q.autoDecided {
		// Price the job against the chosen device's calibration. A breaker
		// that would shed GPU-bound work restricts pricing to the CPU path;
		// a GPU-bound choice then takes the admission slot a fixed GPU-bound
		// job would have taken at the top of this function.
		s.decideAutoLocked(best, q, best.breaker == nil || best.breaker.canAdmit())
		if gpuBound(q.autoStrat) && best.breaker != nil {
			ok, probe := best.breaker.admit(proberOf(best))
			if !ok {
				// Slammed shut between the peek and the admit: re-decide on
				// the CPU path rather than spinning on this device.
				s.decideAutoLocked(best, q, false)
			} else {
				q.probe = probe
			}
		}
	}
	heap.Pop(&s.queue)
	if q.vfinish > s.pass {
		s.pass = q.vfinish
	}
	s.assignLocked(best, q)
	return true
}

// shedLocked settles a job that never reaches a backend (breaker shed at
// placement). Must hold s.mu.
func (s *Server) shedLocked(q *queued, err error) {
	q.h.queueWait = time.Since(q.wallIn).Seconds()
	q.h.rep = core.Report{Algorithm: q.job.Alg.Name(), Strategy: q.job.Strategy.String(), Partial: true}
	q.h.err = err
	close(q.h.done)
	s.accountFinishedLocked(q, q.h.rep, q.h.err)
	s.updateFusionRatioLocked()
	s.mQueueDepth.Set(int64(s.totalQueuedLocked()))
}

// assignLocked hands a job to a device's FIFO. Must hold s.mu.
func (s *Server) assignLocked(d *device, q *queued) {
	d.queue = append(d.queue, q)
	d.work += q.cost
	d.placements++
	d.mPlacements.Inc()
	d.mQueueDepth.Set(int64(len(d.queue)))
	d.cond.Signal()
}

// deviceLoop is a pool member's runner: it pops the device FIFO into
// execution slots, and retires the device when a drain (or server close)
// completes. One goroutine per device, registered on s.runners.
func (s *Server) deviceLoop(d *device) {
	defer s.runners.Done()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for len(d.queue) > 0 && d.inflight < d.cap {
			q := d.queue[0]
			copy(d.queue, d.queue[1:])
			d.queue[len(d.queue)-1] = nil
			d.queue = d.queue[:len(d.queue)-1]
			d.mQueueDepth.Set(int64(len(d.queue)))
			s.mQueueDepth.Set(int64(s.totalQueuedLocked()))
			d.inflight++
			s.inflight++
			s.mInFlight.Set(int64(s.inflight))
			s.jobs.Add(1)
			go s.run(d, q)
		}
		if d.inflight == 0 && len(d.queue) == 0 &&
			(d.draining || (s.closed && len(s.queue) == 0)) {
			if d.draining && !d.removed {
				d.removed = true
				d.draining = false
				s.stats.Drains++
				s.mDrains.Inc()
				close(d.drained)
				s.cond.Broadcast()
			}
			return
		}
		d.cond.Wait()
	}
}

// finishJobLocked releases a device execution slot. Must hold s.mu.
func (s *Server) finishJobLocked(d *device, q *queued) {
	d.inflight--
	s.inflight--
	d.work -= q.cost
	s.mInFlight.Set(int64(s.inflight))
	d.cond.Signal()
	s.cond.Signal()
}

// rebalanceLocked pushes a device's queued GPU-bound jobs back to the global
// heap — virtual finish tags intact, so the stride order is preserved — for
// placement on a healthier device. all also moves the CPU-path jobs (used by
// auto-drain, where the whole device is going away). Must hold s.mu.
func (s *Server) rebalanceLocked(d *device, all bool) {
	kept := d.queue[:0]
	for _, q := range d.queue {
		// Auto jobs move when their decided strategy is GPU-bound: the
		// decision was priced against this device, so it is cleared and the
		// job re-decides where it lands next.
		if all || (gpuBound(q.effective()) && !q.forceCPU) {
			if q.probe {
				d.breaker.abandon()
				q.probe = false
			}
			d.work -= q.cost
			if q.job.Strategy == Auto {
				q.clearAutoDecision()
			}
			heap.Push(&s.queue, q)
			s.stats.Rebalanced++
			s.mRebalances.Inc()
		} else {
			kept = append(kept, q)
		}
	}
	for i := len(kept); i < len(d.queue); i++ {
		d.queue[i] = nil
	}
	d.queue = kept
	d.mQueueDepth.Set(int64(len(d.queue)))
	s.cond.Broadcast()
}

// reactBreaker runs the pool's trip reaction after a device-fault verdict:
// queued GPU-bound work leaves the tripped device, and — with WithAutoDrain,
// when another device remains — the device drains itself out of the pool.
// Called without s.mu (the breaker callbacks themselves must not take it).
func (s *Server) reactBreaker(d *device) {
	if d.breaker == nil || d.breaker.stateNow() != BreakerOpen {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if d.removed {
		return
	}
	if s.cfg.AutoDrain && !d.draining && s.activeLocked() > 1 {
		d.draining = true
		s.rebalanceLocked(d, true)
		d.cond.Broadcast()
	} else if !d.draining {
		s.rebalanceLocked(d, false)
	}
	s.updateBreakerGaugeLocked()
}

// updateBreakerGaugeLocked refreshes the aggregate serve_breaker_state gauge
// (the worst state across active devices). Must hold s.mu.
func (s *Server) updateBreakerGaugeLocked() {
	worst := 0
	for _, d := range s.devices {
		if d.removed || d.breaker == nil {
			continue
		}
		if st := d.breaker.stateNow(); st > worst {
			worst = st
		}
	}
	s.mBreakerState.Set(int64(worst))
}

// AddBackend grows the pool at runtime: the backend becomes a new device,
// immediately eligible for placement, and its id (stable for DrainBackend,
// Stats.Devices and the per-device metrics) is returned.
func (s *Server) AddBackend(be core.Backend) (int, error) {
	if be == nil {
		return 0, fmt.Errorf("serve: nil backend: %w", dcerr.ErrBadParam)
	}
	if c, ok := be.(core.Closer); ok && c.Closed() {
		return 0, fmt.Errorf("serve: %w", dcerr.ErrBackendClosed)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("serve: %w", dcerr.ErrServerClosed)
	}
	d := s.newDevice(len(s.devices), be)
	s.devices = append(s.devices, d)
	s.runners.Add(1)
	go s.deviceLoop(d)
	s.cond.Broadcast()
	return d.id, nil
}

// DrainBackend removes a device from the pool gracefully: placement stops
// immediately, already-placed and in-flight jobs run to completion, then the
// device is retired (Stats.Devices shows it Removed) and DrainBackend
// returns. The last active device cannot be drained (ErrBadParam) — a server
// must keep one execution path. ctx bounds only the wait: on expiry the
// drain itself continues in the background.
func (s *Server) DrainBackend(ctx context.Context, id int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("serve: %w", dcerr.ErrServerClosed)
	}
	if id < 0 || id >= len(s.devices) || s.devices[id].removed {
		s.mu.Unlock()
		return fmt.Errorf("serve: no device %d: %w", id, dcerr.ErrBadParam)
	}
	d := s.devices[id]
	if !d.draining {
		if s.activeLocked() <= 1 {
			s.mu.Unlock()
			return fmt.Errorf("serve: device %d is the last active device: %w", id, dcerr.ErrBadParam)
		}
		d.draining = true
		d.cond.Broadcast()
	}
	s.mu.Unlock()
	select {
	case <-d.drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain device %d: %w", id, context.Cause(ctx))
	}
}

// proberOf returns a device's health hook, if its backend has one.
func proberOf(d *device) core.DeviceProber {
	p, _ := d.be.(core.DeviceProber)
	return p
}
