package serve_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/native"
	"repro/internal/serve"
	"repro/internal/trace"
)

// TestServerMetrics drives a metered server and checks the serving-layer
// counters, gauges, and per-priority latency histograms, plus that the
// registry was forwarded to the executors.
func TestServerMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	be, err := native.New(native.Config{CPUWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	srv, err := serve.New(be,
		serve.WithQueueDepth(1), serve.WithMaxInFlight(1), serve.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	blocker, err := srv.Submit(context.Background(), serve.Job{Alg: &gateAlg{name: "blocker", gate: gate}})
	if err != nil {
		t.Fatal(err)
	}
	waitInFlight(t, srv, 1)
	queued, err := srv.Submit(context.Background(),
		serve.Job{Alg: &gateAlg{name: "queued"}}, core.WithPriority(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(context.Background(), serve.Job{Alg: &gateAlg{name: "overflow"}}); err == nil {
		t.Fatal("overflow submission accepted")
	}

	s := reg.Snapshot()
	if got := s.Counters[serve.MetricSubmitted]; got != 2 {
		t.Errorf("%s = %d, want 2", serve.MetricSubmitted, got)
	}
	if got := s.Counters[serve.MetricRejected]; got != 1 {
		t.Errorf("%s = %d, want 1", serve.MetricRejected, got)
	}
	if got := s.Gauges[serve.MetricQueueDepth]; got != 1 {
		t.Errorf("%s = %d with one job queued, want 1", serve.MetricQueueDepth, got)
	}
	if got := s.Gauges[serve.MetricInFlight]; got != 1 {
		t.Errorf("%s = %d with blocker running, want 1", serve.MetricInFlight, got)
	}

	close(gate)
	for _, h := range []*serve.Handle{blocker, queued} {
		if _, err := h.Report(); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	s = reg.Snapshot()
	if got := s.Counters[serve.MetricCompleted]; got != 2 {
		t.Errorf("%s = %d, want 2", serve.MetricCompleted, got)
	}
	if got := s.Gauges[serve.MetricQueueDepthMax]; got != 1 {
		t.Errorf("%s = %d, want 1", serve.MetricQueueDepthMax, got)
	}
	if got := s.Gauges[serve.MetricInFlight]; got != 0 {
		t.Errorf("%s = %d after drain, want 0", serve.MetricInFlight, got)
	}
	// One job ran at the default weight, one at weight 3.
	for _, p := range []int{1, 3} {
		name := fmt.Sprintf(serve.MetricWaitSecondsFmt, p)
		if got := s.Histograms[name].Count; got != 1 {
			t.Errorf("%s count = %d, want 1", name, got)
		}
		name = fmt.Sprintf(serve.MetricTurnaroundSecondsFmt, p)
		if got := s.Histograms[name].Count; got != 1 {
			t.Errorf("%s count = %d, want 1", name, got)
		}
	}
	// The registry reached the executors: the jobs' runs were metered.
	if got := s.Counters[core.MetricRuns]; got != 2 {
		t.Errorf("%s = %d, want 2 (registry not forwarded to executors?)", core.MetricRuns, got)
	}
}

// TestServerPerJobSpans checks that a server recorder captures queue/job
// spans and executor batch spans, each stamped with its job's ID.
func TestServerPerJobSpans(t *testing.T) {
	rec := trace.NewRecorderLimit(256)
	be, err := native.New(native.Config{CPUWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	srv, err := serve.New(be, serve.WithRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}

	var handles []*serve.Handle
	for i := 0; i < 3; i++ {
		h, err := srv.Submit(context.Background(), serve.Job{Alg: &gateAlg{name: "traced"}})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	ids := map[uint64]bool{}
	for _, h := range handles {
		if _, err := h.Report(); err != nil {
			t.Fatal(err)
		}
		ids[h.ID] = true
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	jobSpans, unitSpans := 0, 0
	for _, sp := range rec.Spans() {
		if !ids[sp.Job] {
			t.Errorf("span %q carries unknown job ID %d", sp.Label, sp.Job)
		}
		switch sp.Unit {
		case "job":
			jobSpans++
		case trace.UnitCPU, trace.UnitGPU:
			unitSpans++
		}
	}
	if jobSpans != 3 {
		t.Errorf("job spans = %d, want 3", jobSpans)
	}
	if unitSpans == 0 {
		t.Error("no executor batch spans recorded through the per-job scope")
	}
}

// benchSubmit measures the Submit path alone: the only in-flight slot is
// pinned by a gated blocker and the queue is sized to hold every submission,
// so no benchmark iteration ever dispatches.
func benchSubmit(b *testing.B, opts ...serve.Option) {
	be, err := native.New(native.Config{CPUWorkers: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer be.Close()
	opts = append([]serve.Option{
		serve.WithQueueDepth(b.N + 2), serve.WithMaxInFlight(1)}, opts...)
	srv, err := serve.New(be, opts...)
	if err != nil {
		b.Fatal(err)
	}
	gate := make(chan struct{})
	if _, err := srv.Submit(context.Background(), serve.Job{Alg: &gateAlg{name: "blocker", gate: gate}}); err != nil {
		b.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().InFlight != 1 {
		if time.Now().After(deadline) {
			b.Fatal("blocker never dispatched")
		}
		time.Sleep(time.Millisecond)
	}
	job := serve.Job{Alg: &gateAlg{name: "bench"}}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Submit(ctx, job); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(gate)
	if err := srv.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkServeSubmit is the no-observability baseline; compare with
// BenchmarkServeSubmitMetrics to see the cost of enabling metrics (the
// disabled path must add 0 allocs/op over this baseline by construction —
// disabled instruments are nil pointers whose methods return immediately).
func BenchmarkServeSubmit(b *testing.B) { benchSubmit(b) }

// BenchmarkServeSubmitMetrics is Submit with a live registry.
func BenchmarkServeSubmitMetrics(b *testing.B) {
	benchSubmit(b, serve.WithMetrics(metrics.NewRegistry()))
}
