package serve

// Strategy Auto: the dispatch-time glue between the scheduler and the
// online calibrator (internal/autotune). A job submitted with Strategy
// Auto is priced at placement against the chosen device's calibration —
// bf-cpu vs gpu-only vs every basic-hybrid crossover vs an (α, y) grid of
// advanced-hybrid divisions — and the argmin runs. Every clean metered
// attempt (auto or fixed-strategy) feeds the device's calibration, so a
// server warms up from its regular traffic. DESIGN.md §16.

import (
	"repro/internal/autotune"
	"repro/internal/core"
)

// modeled is the cost-model hook pair the paper's algorithms export
// (mirrors pool.go's placement probe).
type autoModeled interface {
	ModelF() func(float64) float64
	ModelLeaf() float64
}

// autoSpec builds the pricing spec for alg on be, or ok=false when the
// algorithm exports no cost model (then Auto degrades to BreadthFirstCPU).
func autoSpec(alg core.Alg, be core.Backend) (autotune.Spec, bool) {
	m, ok := alg.(autoModeled)
	if !ok {
		return autotune.Spec{}, false
	}
	sp := autotune.Spec{
		Alg: alg.Name(), N: alg.N(),
		A: alg.Arity(), B: alg.Shrink(), Levels: alg.Levels(),
		F: m.ModelF(), Leaf: m.ModelLeaf(),
		P: be.CPU().Parallelism(),
	}
	if g := be.GPU(); g != nil {
		if galg, ok := alg.(core.GPUAlg); ok {
			sp.HasGPU = true
			sp.G = g.Parallelism()
			sp.Gamma = be.GPUGamma()
			sp.Bytes = galg.GPUBytes(0, 0, 1)
		}
	}
	return sp, true
}

// strategyFromChoice maps a decision's strategy name back to the enum.
func strategyFromChoice(name string) Strategy {
	switch name {
	case autotune.ChoiceGPUOnly:
		return GPUOnly
	case autotune.ChoiceBasic:
		return BasicHybrid
	case autotune.ChoiceAdvanced:
		return AdvancedHybrid
	}
	return BreadthFirstCPU
}

// decideAutoLocked makes (or remakes) the job's auto decision against a
// device's calibration. allowGPU=false restricts pricing to the CPU path —
// used while the device's breaker is shedding. The decision's predicted
// makespan replaces the job's placement cost, so PlaceModeledWork accounts
// the device's backlog with the same model that chose the strategy. Must
// hold s.mu (the tuner and breaker take only their own locks).
func (s *Server) decideAutoLocked(d *device, q *queued, allowGPU bool) {
	q.autoDecided = true
	q.autoStrat = BreadthFirstCPU
	sp, ok := autoSpec(q.job.Alg, d.be)
	if !ok {
		return
	}
	sp.HasGPU = sp.HasGPU && allowGPU && !q.forceCPU
	dec, err := s.tuner.Decide(d.id, sp)
	if err != nil {
		return
	}
	q.autoStrat = strategyFromChoice(dec.Strategy)
	q.autoCross, q.autoAlpha, q.autoY = dec.Crossover, dec.Alpha, dec.Y
	q.autoPredicted = dec.Predicted
	q.autoCalibr = dec.Calibrated
	q.cost = dec.Predicted
}

// feedAutotune folds one clean, complete, metered attempt into the placed
// device's calibration. Attempts whose meter saw nothing (a job's own
// backend wrapper replaced the server's instrumentation) are skipped — an
// empty sample would poison the rates.
func (s *Server) feedAutotune(d *device, q *queued, alg core.Alg, strat Strategy, m *autotune.Meter, rep core.Report) {
	if m.Empty() {
		return
	}
	sp, ok := autoSpec(alg, d.be)
	if !ok {
		return
	}
	crossover, alpha, y := q.job.Crossover, q.job.Alpha, q.job.Y
	predicted := 0.0
	if q.job.Strategy == Auto && q.autoDecided {
		crossover, alpha, y = q.autoCross, q.autoAlpha, q.autoY
		if strat == q.autoStrat && q.autoCalibr {
			// Only a calibrated prediction of the strategy that actually ran
			// is a meaningful model-error sample.
			predicted = q.autoPredicted
		}
	}
	cpuU, gpuU, err := autotune.UnitsFor(sp, strat.String(), crossover, alpha, y)
	if err != nil {
		return
	}
	smp := m.Snapshot()
	s.tuner.Observe(d.id, autotune.Observation{
		Alg: sp.Alg, N: sp.N,
		ModelCPUUnits: cpuU, ModelGPUUnits: gpuU,
		CPUSeconds: smp.CPUSeconds, GPUSeconds: smp.GPUSeconds,
		TransferBytes: smp.TransferBytes, TransferSeconds: smp.TransferSeconds,
		Transfers:        smp.Transfers,
		PredictedSeconds: predicted, Seconds: rep.Seconds,
	})
}

// Tuner returns the server's auto-strategy calibrator (never nil), so a
// caller can persist its state (MarshalJSON) at shutdown and restore it
// (autotune.LoadTuner + WithAutoTuner) on the next boot.
func (s *Server) Tuner() *autotune.Tuner { return s.tuner }
