package serve

// Reliability policies and degradation: per-job retry/deadline/hedge/
// fallback options, the per-device circuit breakers, and the policy-aware
// execution path that replaces a bare executor call. DESIGN.md §12, §13.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/autotune"
	"repro/internal/core"
	"repro/internal/dcerr"
	"repro/internal/trace"
)

// FallbackMode selects a job's degradation path; see WithFallback.
type FallbackMode = core.Fallback

// CPUOnly re-runs a device-failed job breadth-first on the CPU engine with
// bit-identical results, and keeps the job admissible while the circuit
// breakers have every GPU path open.
const CPUOnly = core.FallbackCPUOnly

// WithRetry re-executes a job up to max more times when an attempt fails
// with a device fault (errors.Is(err, ErrDeviceFault)), pausing backoff
// between attempts. Each re-execution runs on a fresh instance from
// Job.Fresh — required, because a faulted attempt may have partially
// mutated its instance — so Submit rejects a retry policy without one.
// When every attempt faults, the job fails with an error matching both
// ErrRetriesExhausted and ErrDeviceFault. Cancellation and deadlines are
// never retried.
func WithRetry(max int, backoff time.Duration) core.Option {
	return func(c *core.RunConfig) {
		c.Reliability.MaxRetries = max
		c.Reliability.Backoff = backoff
	}
}

// WithDeadline bounds the job's total execution budget (all attempts,
// hedges and fallbacks included) from dispatch. On expiry the running
// attempt stops at its next level boundary and the job fails with an error
// matching ErrCanceled, exactly like a caller-side context deadline —
// but scoped per job rather than per submission context.
func WithDeadline(d time.Duration) core.Option {
	return func(c *core.RunConfig) { c.Reliability.Deadline = d }
}

// WithHedge duplicates a straggling GPU-bound job onto the CPU path: if the
// first attempt has not finished after the given delay, a breadth-first CPU
// duplicate starts on a fresh instance (Job.Fresh, required) and the first
// clean result wins; the loser is canceled and drained before the job
// settles. Both paths compute bit-identical results, so the winner's
// identity (Handle.HedgeWon) changes latency only. Hedging is ignored on
// devices that are not core.Autonomous: the single-goroutine simulator
// cannot race two executors.
func WithHedge(after time.Duration) core.Option {
	return func(c *core.RunConfig) {
		c.Reliability.Hedge = after
		c.Reliability.HedgeSet = true
	}
}

// WithFallback selects the job's degradation path once its device attempts
// are spent (after retries, if any). With CPUOnly the job transparently
// re-runs breadth-first on the CPU engine — on a fresh instance from
// Job.Fresh (required) — and succeeds with bit-identical results;
// Handle.FellBack reports it. A CPUOnly job is also admitted (directly to
// the CPU path) while every device's breaker is shedding GPU-bound work.
func WithFallback(m FallbackMode) core.Option {
	return func(c *core.RunConfig) { c.Reliability.Fallback = m }
}

// Circuit breaker states, exported via Stats.BreakerState (the worst state
// across active devices), Stats.Devices and the serve_breaker_state gauges.
const (
	// BreakerClosed is the healthy state: GPU-bound jobs admitted freely.
	BreakerClosed = 0
	// BreakerHalfOpen admits exactly one probe job to test the device.
	BreakerHalfOpen = 1
	// BreakerOpen sheds the device's GPU-bound placement (jobs reroute to
	// other devices, fall back to the CPU path, or fail with ErrDegraded)
	// until the cooldown elapses.
	BreakerOpen = 2
)

// breaker is one device's circuit breaker (DESIGN.md §12): it trips open
// after `threshold` consecutive device-fault attempts, sheds GPU-bound
// placement while open, and after `cooldown` lets one probe job through
// (consulting the backend's core.DeviceProber first, when implemented);
// the probe's outcome closes or reopens it. It takes no server lock, so it
// is safe to call with or without Server.mu held — but its callbacks run
// under b.mu and must never take Server.mu.
type breaker struct {
	threshold int
	cooldown  time.Duration
	onState   func(state int64) // called on every transition, under b.mu
	onTrip    func()            // called on every closed/half-open → open

	mu       sync.Mutex
	state    int
	fails    int // consecutive device faults while closed
	openedAt time.Time
	probing  bool // a half-open probe job is in flight
}

func newBreaker(threshold int, cooldown time.Duration, onState func(int64), onTrip func()) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, onState: onState, onTrip: onTrip}
}

// setState transitions and notifies. Must hold b.mu.
func (b *breaker) setState(st int) {
	if b.state == st {
		return
	}
	b.state = st
	if b.onState != nil {
		b.onState(int64(st))
	}
}

// canAdmit is the non-mutating admission peek used at Submit time and for
// placement filtering: it reports whether admit would plausibly succeed,
// without consuming the half-open probe slot or touching the device prober.
func (b *breaker) canAdmit() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		return time.Since(b.openedAt) >= b.cooldown
	case BreakerHalfOpen:
		return !b.probing
	default:
		return true
	}
}

// admit decides whether a GPU-bound job may take this device's path now.
// probe reports that the job was admitted as the half-open probe and must
// report its outcome through result or abandon.
func (b *breaker) admit(p core.DeviceProber) (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false, false
		}
		// Cooldown over: ask the backend first — a device that cannot even
		// answer a health probe is not worth risking a job on.
		if p != nil {
			if err := p.ProbeDevice(); err != nil {
				b.openedAt = time.Now()
				return false, false
			}
		}
		b.setState(BreakerHalfOpen)
		b.probing = true
		return true, true
	case BreakerHalfOpen:
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	default:
		return true, false
	}
}

// result reports one GPU-bound attempt's verdict. A device fault in
// half-open — or the threshold-th consecutive one while closed — opens the
// breaker; a clean probe closes it.
func (b *breaker) result(probe, deviceFault bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
	}
	if deviceFault {
		b.fails++
		if b.state == BreakerHalfOpen || (b.threshold > 0 && b.fails >= b.threshold) {
			if b.state != BreakerOpen && b.onTrip != nil {
				b.onTrip()
			}
			b.setState(BreakerOpen)
			b.openedAt = time.Now()
			b.fails = 0
		}
		return
	}
	b.fails = 0
	if probe && b.state == BreakerHalfOpen {
		b.setState(BreakerClosed)
	}
}

// abandon releases a probe slot without a verdict (the probe job was
// canceled before reaching the device); the next admit grants a new probe.
func (b *breaker) abandon() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// stateNow snapshots the current state.
func (b *breaker) stateNow() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// gpuBound reports whether the strategy takes the device path (and is
// therefore subject to faults, breaker shedding, hedging and fallback).
func gpuBound(st Strategy) bool {
	return st == BasicHybrid || st == AdvancedHybrid || st == GPUOnly
}

// Breaker verdicts fed by the policy loop.
const (
	verdictSuccess = iota
	verdictFault
	verdictAbandon
)

// feedBreaker reports one device-path attempt's verdict to the device's
// breaker and consumes the job's probe token (a probe reports exactly
// once). A fault verdict also runs the pool's trip reaction (rebalance,
// auto-drain), so it must be called without s.mu held.
func (s *Server) feedBreaker(d *device, q *queued, verdict int) {
	if d.breaker == nil {
		return
	}
	probe := q.probe
	q.probe = false
	switch verdict {
	case verdictSuccess:
		d.breaker.result(probe, false)
	case verdictFault:
		d.breaker.result(probe, true)
		s.reactBreaker(d)
	default:
		if probe {
			d.breaker.abandon()
		}
	}
	s.mu.Lock()
	s.updateBreakerGaugeLocked()
	s.mu.Unlock()
}

// sleepCtx pauses for d or until ctx is canceled, whichever first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// errRequeued is the policy loop's signal that the job never started: its
// device's breaker tripped between placement and dispatch while another
// device can still serve the GPU path, so run() should push it back to the
// global heap instead of settling the handle.
var errRequeued = errors.New("serve: requeue on healthier device")

// executeReliable runs one dispatched job on its device under the job's
// reliability policy: deadline scoping, the attempt/retry loop with hedging,
// breaker feedback, and the CPU fallback. It replaces the bare executor
// call; a job with no policy makes exactly one attempt, so the plain path
// is unchanged.
func (s *Server) executeReliable(d *device, q *queued) (core.Report, error) {
	be := d.be
	ctx := q.ctx
	if q.pol.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, q.pol.Deadline)
		defer cancel()
	}
	var scope *trace.Scope
	if s.cfg.Trace != nil {
		scope = s.cfg.Trace.Scope(q.h.ID)
	}
	start := be.Now()
	rep, err := s.policyLoop(ctx, d, q, scope)
	if scope != nil && !errors.Is(err, errRequeued) {
		end := be.Now()
		label := fmt.Sprintf("job %d %s %s n=%d dev%d", q.h.ID, q.job.Alg.Name(), q.job.Strategy, q.job.Alg.N(), d.id)
		if n := q.h.attempts; n > 1 {
			label = fmt.Sprintf("%s (%d attempts)", label, n)
		}
		scope.Add(trace.Span{Unit: "queue", Label: label,
			Start: start - q.h.queueWait, End: start})
		scope.Add(trace.Span{Unit: "job", Label: label, Start: start, End: end})
	}
	return rep, err
}

// shouldRequeue reports whether a job whose device just shed it can instead
// go back to the global heap: the server is still open and some other
// active device would admit GPU-bound work.
func (s *Server) shouldRequeue(d *device) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	for _, o := range s.devices {
		if o == d || o.removed || o.draining {
			continue
		}
		if o.breaker == nil || o.breaker.canAdmit() {
			return true
		}
	}
	return false
}

// policyLoop is the attempt loop. Attempt 1 runs the submitted instance
// (hedged if configured); attempts 2..1+MaxRetries run fresh instances
// after device faults; then the CPU fallback, if configured, gets the last
// word. GPU-bound verdicts feed the device's circuit breaker.
func (s *Server) policyLoop(ctx context.Context, d *device, q *queued, scope *trace.Scope) (core.Report, error) {
	pol := q.pol
	strat := q.effective() // Auto resolves to its placement-time decision
	gpu := gpuBound(strat)
	forceCPU := q.forceCPU

	// Dispatch-time breaker check: the device's breaker may have tripped
	// while the job sat in its queue (or healed — a queued probe keeps its
	// token).
	if gpu && !forceCPU && !q.probe && d.breaker != nil {
		ok, probe := d.breaker.admit(proberOf(d))
		switch {
		case ok:
			q.probe = probe
		case s.shouldRequeue(d):
			return core.Report{}, errRequeued
		case pol.Fallback == core.FallbackCPUOnly:
			forceCPU = true
		default:
			s.noteDegraded()
			return core.Report{Algorithm: q.job.Alg.Name(), Strategy: q.job.Strategy.String(), Partial: true},
				fmt.Errorf("serve: job %d: GPU path shed at dispatch: %w", q.h.ID, dcerr.ErrDegraded)
		}
	}
	if forceCPU {
		return s.fallback(ctx, d, q, scope, q.job.Alg)
	}

	attempts := 1 + pol.MaxRetries
	var lastRep core.Report
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		alg := q.job.Alg
		if attempt > 1 {
			var ferr error
			if alg, ferr = q.job.Fresh(); ferr != nil {
				return lastRep, fmt.Errorf("serve: job %d attempt %d: fresh instance: %w", q.h.ID, attempt, ferr)
			}
		}
		var rep core.Report
		var err, devErr error
		if attempt == 1 && pol.HedgeSet && gpu && d.auto && q.job.Fresh != nil {
			rep, err, devErr = s.hedgedAttempt(ctx, d, q, scope, alg, strat)
		} else {
			rep, err = s.runAttempt(ctx, d, q, scope, alg, strat, attempt, "attempt")
			devErr = err
			if err == nil {
				q.h.resultAlg = alg
			}
		}
		q.h.attempts = attempt
		if gpu {
			switch {
			case devErr == nil:
				s.feedBreaker(d, q, verdictSuccess)
			case errors.Is(devErr, dcerr.ErrDeviceFault):
				s.feedBreaker(d, q, verdictFault)
			default:
				s.feedBreaker(d, q, verdictAbandon)
			}
		}
		if err == nil {
			return rep, nil
		}
		lastRep, lastErr = rep, err
		if attempt > 1 {
			// A failed retry instance is server-created garbage (the
			// executor has returned and a failed attempt's data is
			// invalid): hand its buffers back to the pool. Attempt 1 runs
			// the caller-owned q.job.Alg and is never released here.
			core.ReleaseAlg(alg)
		}
		if ctx.Err() != nil || !errors.Is(err, dcerr.ErrDeviceFault) {
			break
		}
		if attempt < attempts {
			s.noteRetry()
			if serr := sleepCtx(ctx, pol.Backoff); serr != nil {
				return lastRep, fmt.Errorf("serve: job %d: canceled between attempts: %w (%w)",
					q.h.ID, dcerr.ErrCanceled, serr)
			}
		}
	}

	fallbackable := errors.Is(lastErr, dcerr.ErrDeviceFault) || errors.Is(lastErr, dcerr.ErrNoGPU)
	if pol.Fallback == core.FallbackCPUOnly && fallbackable && ctx.Err() == nil {
		alg, ferr := q.job.Fresh()
		if ferr != nil {
			return lastRep, fmt.Errorf("serve: job %d fallback: fresh instance: %w", q.h.ID, ferr)
		}
		rep, err := s.fallback(ctx, d, q, scope, alg)
		if err != nil {
			core.ReleaseAlg(alg) // failed fallback instance: server-created garbage
			return rep, fmt.Errorf("serve: job %d: CPU fallback failed after %w (device: %w): %w",
				q.h.ID, dcerr.ErrRetriesExhausted, lastErr, err)
		}
		return rep, nil
	}
	if pol.MaxRetries > 0 && errors.Is(lastErr, dcerr.ErrDeviceFault) && ctx.Err() == nil {
		return lastRep, fmt.Errorf("serve: job %d: %d attempts: %w: %w",
			q.h.ID, q.h.attempts, dcerr.ErrRetriesExhausted, lastErr)
	}
	return lastRep, lastErr
}

// fallback runs the job breadth-first on the device's CPU engine — the
// degradation path — and marks the handle when it delivers the result.
func (s *Server) fallback(ctx context.Context, d *device, q *queued, scope *trace.Scope, alg core.Alg) (core.Report, error) {
	s.noteFallback()
	q.h.attempts++
	rep, err := s.runAttempt(ctx, d, q, scope, alg, BreadthFirstCPU, q.h.attempts, "fallback")
	if err == nil {
		q.h.fellBack = true
		q.h.resultAlg = alg
	}
	return rep, err
}

// errHedgeUnresolved marks a hedge win whose device path had not settled
// when the winner returned: the breaker must treat the attempt as abandoned
// (a hedge win must not vouch for — or against — the device).
var errHedgeUnresolved = errors.New("serve: hedge won before the device path settled")

// hedgedAttempt races attempt 1 against a delayed breadth-first CPU
// duplicate on a fresh instance. The first clean result wins, cancels the
// other path, and returns immediately; the loser is drained by a goroutine
// registered on the server's job WaitGroup, so Close still waits for every
// executor to come home. devErr is the device path's own verdict (for the
// breaker), or errHedgeUnresolved when the winner outran it.
func (s *Server) hedgedAttempt(ctx context.Context, d *device, q *queued, scope *trace.Scope, alg core.Alg, strat Strategy) (rep core.Report, err, devErr error) {
	type outcome struct {
		rep    core.Report
		err    error
		alg    core.Alg
		hedged bool
	}
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()

	resc := make(chan outcome, 2)
	go func() {
		r, e := s.runAttempt(pctx, d, q, scope, alg, strat, 1, "attempt")
		resc <- outcome{r, e, alg, false}
	}()
	inFlight := 1
	hedged := false
	timer := time.NewTimer(q.pol.Hedge)
	defer timer.Stop()

	var won, primary *outcome
	for won == nil && inFlight > 0 {
		select {
		case o := <-resc:
			inFlight--
			if !o.hedged {
				primary = &o
			}
			if o.err == nil {
				won = &o
				pcancel()
				hcancel()
			} else if o.hedged {
				// A failed hedge instance is server-created garbage; its
				// executor has returned, so the lease can end here.
				core.ReleaseAlg(o.alg)
			}
		case <-timer.C:
			if hedged {
				continue
			}
			hedged = true
			halg, ferr := q.job.Fresh()
			if ferr != nil {
				continue // cannot hedge; the primary races alone
			}
			inFlight++
			go func() {
				r, e := s.runAttempt(hctx, d, q, scope, halg, BreadthFirstCPU, 1, "hedge")
				resc <- outcome{r, e, halg, true}
			}()
		}
	}
	if won == nil {
		return primary.rep, primary.err, primary.err
	}
	if inFlight > 0 {
		// The loser is still executing under a canceled context. resc is
		// buffered, so its send cannot block; the drain exists to keep
		// Close from tearing the backend down under a live executor — and
		// to return the loser's buffers once it comes home. Only
		// server-created instances are released: the caller's Job.Alg and
		// the winner stay untouched.
		wonAlg := won.alg
		callerAlg := q.job.Alg
		s.jobs.Add(1)
		go func(n int) {
			defer s.jobs.Done()
			for i := 0; i < n; i++ {
				o := <-resc
				if o.alg != wonAlg && o.alg != callerAlg {
					core.ReleaseAlg(o.alg)
				}
			}
		}(inFlight)
	}
	if won.hedged {
		s.noteHedgeWin()
		q.h.hedgeWon = true
	}
	q.h.resultAlg = won.alg
	switch {
	case primary != nil:
		return won.rep, nil, primary.err
	default:
		return won.rep, nil, errHedgeUnresolved
	}
}

// runAttempt executes one attempt of a job under a given strategy on the
// job's placed device. The job's options are prefixed with the server's
// instrumentation: the metrics registry, and a backend wrapper composing the
// device's fault injector (innermost, so injected faults pass through
// tracing and metering like real ones) with the per-job trace scope and —
// once auto-strategy is active — an autotune meter (outermost, so it times
// the same work the executors see). Being prefixes, a job's own WithMetrics
// or WithBackendWrapper still wins — and then opts out of server-side fault
// injection, tracing, and calibration feedback for that job.
func (s *Server) runAttempt(ctx context.Context, d *device, q *queued, scope *trace.Scope, alg core.Alg,
	strat Strategy, attempt int, kind string) (core.Report, error) {
	be := d.be
	injector := d.faults
	meterOn := s.autoActive.Load()
	autoTag := q.job.Strategy == Auto && q.autoDecided
	var meter *autotune.Meter
	opts := q.opts
	if s.cfg.Metrics != nil || scope != nil || injector != nil || meterOn || autoTag {
		pre := make([]core.Option, 0, 3)
		if s.cfg.Metrics != nil {
			pre = append(pre, core.WithMetrics(s.cfg.Metrics))
		}
		if autoTag {
			pre = append(pre, core.WithAutoStrategy(q.autoStrat.String()))
		}
		if scope != nil || injector != nil || meterOn {
			pre = append(pre, core.WithBackendWrapper(func(inner core.Backend) core.Backend {
				wrapped := inner
				if injector != nil {
					wrapped = injector.Wrap(wrapped)
				}
				if scope != nil {
					wrapped = trace.Wrap(wrapped, scope)
				}
				if meterOn {
					m := autotune.NewMeter(wrapped)
					meter = m
					wrapped = m
				}
				return wrapped
			}))
		}
		opts = append(pre, q.opts...)
	}
	start := be.Now()
	rep, err := s.runStrategy(ctx, be, alg, strat, q, opts)
	if err == nil && !rep.Partial && meter != nil {
		s.feedAutotune(d, q, alg, strat, meter, rep)
	}
	if scope != nil {
		verdict := "ok"
		switch {
		case err == nil:
		case errors.Is(err, dcerr.ErrDeviceFault):
			verdict = "device-fault"
		case errors.Is(err, dcerr.ErrCanceled):
			verdict = "canceled"
		default:
			verdict = "failed"
		}
		scope.Add(trace.Span{Unit: "attempt",
			Label: fmt.Sprintf("job %d %s %d %s %s dev%d", q.h.ID, kind, attempt, strat, verdict, d.id),
			Start: start, End: be.Now()})
	}
	return rep, err
}

// Reliability event accounting (atomics: the breaker callbacks run under
// the breaker's own lock, so none of these may take Server.mu).
func (s *Server) noteRetry()    { s.nRetries.Add(1); s.mRetries.Inc() }
func (s *Server) noteFallback() { s.nFallbacks.Add(1); s.mFallbacks.Inc() }
func (s *Server) noteHedgeWin() { s.nHedgeWins.Add(1); s.mHedgeWins.Inc() }
func (s *Server) noteDegraded() { s.nDegraded.Add(1); s.mDegraded.Inc() }
