package serve_test

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/algos/mergesort"
	"repro/internal/core"
	"repro/internal/dcerr"
	"repro/internal/faults"
	"repro/internal/native"
	"repro/internal/serve"
	"repro/internal/workload"
)

// huntSeed finds a seed whose first len(pattern) attempt plans match the
// wanted fault pattern (true = the attempt faults). Plans are a pure
// function of (seed, attempt), so a probe injector predicts exactly what a
// server-side injector with the same config will draw.
func huntSeed(t *testing.T, cfg faults.Config, probe core.Backend, pattern []bool) int64 {
	t.Helper()
	for seed := int64(0); seed < 4096; seed++ {
		cfg.Seed = seed
		in, err := faults.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ok := true
		for _, want := range pattern {
			fb := in.Wrap(probe)
			for j := 0; j < 8; j++ {
				fb.TransferToGPU(1, func() {})
			}
			if (fb.Fault() != nil) != want {
				ok = false
				break
			}
		}
		if ok {
			return seed
		}
	}
	t.Fatalf("no seed under 4096 matches pattern %v for %+v", pattern, cfg)
	return 0
}

// sortJob builds a GPUOnly mergesort job over fresh uniform data, with a
// Fresh factory producing pristine copies of the same input.
func sortJob(t *testing.T, n int, dataSeed int64) (serve.Job, []int32) {
	t.Helper()
	data := workload.Uniform(n, dataSeed)
	alg, err := mergesort.New(data)
	if err != nil {
		t.Fatal(err)
	}
	job := serve.Job{
		Alg:      alg,
		Strategy: serve.GPUOnly,
		Fresh: func() (core.Alg, error) {
			a, err := mergesort.New(data)
			return a, err
		},
	}
	want := append([]int32(nil), data...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	return job, want
}

// checkSorted verifies the handle's winning instance holds the expected
// bit-identical output.
func checkSorted(t *testing.T, h *serve.Handle, want []int32) {
	t.Helper()
	out := h.ResultAlg().(*mergesort.Sorter).Result()
	if len(out) != len(want) {
		t.Fatalf("result length %d, want %d", len(out), len(want))
	}
	for i := range out {
		if out[i] != want[i] {
			t.Fatalf("result[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}

func newFaultyServer(t *testing.T, cfg faults.Config, extra ...serve.Option) (*serve.Server, *faults.Injector) {
	t.Helper()
	be, err := native.New(native.Config{CPUWorkers: 2, DeviceLanes: 4})
	if err != nil {
		t.Fatal(err)
	}
	in, err := faults.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(be, append([]serve.Option{serve.WithFaults(in)}, extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		be.Close()
	})
	return srv, in
}

func TestRetryRecoversAfterFault(t *testing.T) {
	probe, err := native.New(native.Config{CPUWorkers: 1, DeviceLanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	cfg := faults.Config{KernelErrorRate: 0.5}
	cfg.Seed = huntSeed(t, cfg, probe, []bool{true, false})

	srv, in := newFaultyServer(t, cfg)
	job, want := sortJob(t, 1<<8, 1)
	h, err := srv.Submit(context.Background(), job, serve.WithRetry(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Report(); err != nil {
		t.Fatalf("retried job failed: %v", err)
	}
	if got := h.Attempts(); got != 2 {
		t.Errorf("Attempts() = %d, want 2", got)
	}
	checkSorted(t, h, want)
	if st := srv.Stats(); st.Retries != 1 {
		t.Errorf("Stats.Retries = %d, want 1", st.Retries)
	}
	if c := in.Counts(); c.Injected != 1 {
		t.Errorf("injector counts = %+v, want exactly 1 injected fault", c)
	}
}

func TestRetriesExhausted(t *testing.T) {
	srv, _ := newFaultyServer(t, faults.Config{KernelErrorRate: 1})
	job, _ := sortJob(t, 1<<8, 2)
	h, err := srv.Submit(context.Background(), job, serve.WithRetry(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	_, err = h.Report()
	if !errors.Is(err, dcerr.ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	if !errors.Is(err, dcerr.ErrDeviceFault) {
		t.Fatalf("err = %v, should also match ErrDeviceFault", err)
	}
	if got := h.Attempts(); got != 3 {
		t.Errorf("Attempts() = %d, want 3", got)
	}
	if st := srv.Stats(); st.Failed != 1 || st.Retries != 2 {
		t.Errorf("stats = %+v, want 1 failed / 2 retries", st)
	}
}

func TestFallbackBitIdentical(t *testing.T) {
	srv, _ := newFaultyServer(t, faults.Config{KernelErrorRate: 1})
	job, want := sortJob(t, 1<<9, 3)

	// The reference: the same input run by the sequential executor.
	be, err := native.New(native.Config{CPUWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	ref, err := job.Fresh()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.RunSequentialCtx(context.Background(), be, ref); err != nil {
		t.Fatal(err)
	}

	h, err := srv.Submit(context.Background(), job, serve.WithRetry(1, 0), serve.WithFallback(serve.CPUOnly))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Report(); err != nil {
		t.Fatalf("fallback job failed: %v", err)
	}
	if !h.FellBack() {
		t.Error("FellBack() = false after an all-faulty device path")
	}
	checkSorted(t, h, want)
	got := h.ResultAlg().(*mergesort.Sorter).Result()
	refOut := ref.(*mergesort.Sorter).Result()
	for i := range got {
		if got[i] != refOut[i] {
			t.Fatalf("fallback result diverges from RunSequential at %d: %d != %d", i, got[i], refOut[i])
		}
	}
	if st := srv.Stats(); st.Fallbacks != 1 || st.Completed != 1 {
		t.Errorf("stats = %+v, want 1 fallback / 1 completed", st)
	}
}

func TestPolicyRequiresFresh(t *testing.T) {
	srv, _ := newFaultyServer(t, faults.Config{})
	data := workload.Uniform(1<<6, 1)
	alg, err := mergesort.New(data)
	if err != nil {
		t.Fatal(err)
	}
	job := serve.Job{Alg: alg, Strategy: serve.GPUOnly} // no Fresh
	for _, opt := range []core.Option{
		serve.WithRetry(1, 0),
		serve.WithHedge(time.Millisecond),
		serve.WithFallback(serve.CPUOnly),
	} {
		if _, err := srv.Submit(context.Background(), job, opt); !errors.Is(err, dcerr.ErrBadParam) {
			t.Errorf("Submit(re-executing policy, no Fresh) = %v, want ErrBadParam", err)
		}
	}
	if _, err := srv.Submit(context.Background(), job, serve.WithRetry(-1, 0)); !errors.Is(err, dcerr.ErrBadParam) {
		t.Errorf("Submit(negative retries) = %v, want ErrBadParam", err)
	}
	// Deadline alone does not re-execute: no Fresh needed.
	h, err := srv.Submit(context.Background(), job, serve.WithDeadline(time.Minute))
	if err != nil {
		t.Fatalf("Submit(deadline only, no Fresh) = %v, want nil", err)
	}
	if _, err := h.Report(); err != nil {
		t.Fatal(err)
	}
}

func TestHedgeWinsOverStuckDevice(t *testing.T) {
	srv, in := newFaultyServer(t, faults.Config{StuckRate: 1, Stall: 300 * time.Millisecond})
	job, want := sortJob(t, 1<<8, 5)
	h, err := srv.Submit(context.Background(), job, serve.WithHedge(2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := h.Report(); err != nil {
		t.Fatalf("hedged job failed: %v", err)
	}
	if !h.HedgeWon() {
		t.Error("HedgeWon() = false: CPU duplicate should beat a 300ms device stall")
	}
	if d := time.Since(start); d >= 300*time.Millisecond {
		t.Errorf("hedged job took %v: waited out the stall instead of racing it", d)
	}
	checkSorted(t, h, want)
	if st := srv.Stats(); st.HedgeWins != 1 {
		t.Errorf("Stats.HedgeWins = %d, want 1", st.HedgeWins)
	}
	if c := in.Counts(); c.StuckLaunches == 0 {
		t.Errorf("injector counts = %+v, expected a stuck launch", c)
	}
}

func TestDeadlineExpiresStuckJob(t *testing.T) {
	srv, _ := newFaultyServer(t, faults.Config{StuckRate: 1, Stall: 150 * time.Millisecond})
	job, _ := sortJob(t, 1<<8, 6)
	job.Fresh = nil // deadline alone does not re-execute
	h, err := srv.Submit(context.Background(), job, serve.WithDeadline(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Report()
	if !errors.Is(err, dcerr.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled from the job deadline", err)
	}
	if !rep.Partial {
		t.Error("deadline-expired report not marked partial")
	}
}

func TestBreakerTripsShedsAndRecovers(t *testing.T) {
	probe, err := native.New(native.Config{CPUWorkers: 1, DeviceLanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	cfg := faults.Config{KernelErrorRate: 0.5}
	cfg.Seed = huntSeed(t, cfg, probe, []bool{true, true, false, false})

	cooldown := 20 * time.Millisecond
	srv, _ := newFaultyServer(t, cfg, serve.WithBreaker(2, cooldown))

	// Two consecutive device faults trip the breaker.
	for i := 0; i < 2; i++ {
		job, _ := sortJob(t, 1<<7, int64(10+i))
		job.Fresh = nil
		h, err := srv.Submit(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Report(); !errors.Is(err, dcerr.ErrDeviceFault) {
			t.Fatalf("job %d: err = %v, want ErrDeviceFault", i, err)
		}
	}
	st := srv.Stats()
	if st.BreakerTrips != 1 || st.BreakerState != serve.BreakerOpen {
		t.Fatalf("after 2 faults: trips %d state %d, want 1 trip, open", st.BreakerTrips, st.BreakerState)
	}

	// Open breaker sheds GPU-bound admission with ErrDegraded...
	job, _ := sortJob(t, 1<<7, 20)
	job.Fresh = nil
	if _, err := srv.Submit(context.Background(), job); !errors.Is(err, dcerr.ErrDegraded) {
		t.Fatalf("Submit while open = %v, want ErrDegraded", err)
	}
	// ...but a CPUOnly-fallback job is admitted onto the CPU path.
	fjob, want := sortJob(t, 1<<7, 21)
	fh, err := srv.Submit(context.Background(), fjob, serve.WithFallback(serve.CPUOnly))
	if err != nil {
		t.Fatalf("Submit(fallback) while open = %v, want admission", err)
	}
	if _, err := fh.Report(); err != nil {
		t.Fatalf("shed-to-CPU job failed: %v", err)
	}
	if !fh.FellBack() {
		t.Error("FellBack() = false for a job admitted while the breaker was open")
	}
	checkSorted(t, fh, want)

	// After the cooldown, one probe job is admitted; its clean run (the
	// hunted seed's attempt plans are clean from here) closes the breaker.
	time.Sleep(cooldown + 10*time.Millisecond)
	pjob, pwant := sortJob(t, 1<<7, 22)
	pjob.Fresh = nil
	ph, err := srv.Submit(context.Background(), pjob)
	if err != nil {
		t.Fatalf("probe Submit after cooldown = %v, want admission", err)
	}
	if _, err := ph.Report(); err != nil {
		t.Fatalf("probe job failed: %v", err)
	}
	checkSorted(t, ph, pwant)
	st = srv.Stats()
	if st.BreakerState != serve.BreakerClosed {
		t.Errorf("after clean probe: state %d, want closed", st.BreakerState)
	}
	if st.Degraded == 0 {
		t.Errorf("Stats.Degraded = 0, want at least the shed job counted")
	}
}

func TestReliabilityNoGoroutineLeaks(t *testing.T) {
	base := runtime.NumGoroutine()
	func() {
		srv, _ := newFaultyServer(t,
			faults.Config{KernelErrorRate: 0.3, StuckRate: 0.2, Stall: time.Millisecond},
			serve.WithBreaker(3, 10*time.Millisecond))
		for i := 0; i < 24; i++ {
			job, _ := sortJob(t, 1<<7, int64(i))
			h, err := srv.Submit(context.Background(), job,
				serve.WithRetry(1, 100*time.Microsecond),
				serve.WithHedge(500*time.Microsecond),
				serve.WithFallback(serve.CPUOnly))
			if errors.Is(err, dcerr.ErrDegraded) || errors.Is(err, dcerr.ErrQueueFull) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			if _, err := h.Report(); err != nil && !errors.Is(err, dcerr.ErrDegraded) {
				t.Fatalf("job %d: %v", i, err)
			}
		}
	}()
	waitGoroutines(t, base)
}
