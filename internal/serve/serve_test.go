package serve_test

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/algos/dcsum"
	"repro/internal/algos/mergesort"
	"repro/internal/algos/scan"
	"repro/internal/core"
	"repro/internal/dcerr"
	"repro/internal/hpu"
	"repro/internal/native"
	"repro/internal/serve"
	"repro/internal/workload"
)

// waitGoroutines polls until the goroutine count returns to the baseline
// (plus slack for runtime helpers), failing if it never does.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutine leak: %d at start, %d after close", base, n)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// gateAlg is a two-leaf algorithm whose base tasks block on a channel,
// letting tests hold the backend busy (and the admission queue full) at a
// known point, and record when they actually execute.
type gateAlg struct {
	name string
	gate chan struct{} // base tasks block until this closes; nil = no gate
	ran  func()        // called once from the first base task
}

func (g *gateAlg) Name() string { return g.name }
func (g *gateAlg) Arity() int   { return 2 }
func (g *gateAlg) Shrink() int  { return 2 }
func (g *gateAlg) N() int       { return 2 }
func (g *gateAlg) Levels() int  { return 1 }

func (g *gateAlg) DivideBatch(level, lo, hi int) core.Batch { return core.Batch{} }
func (g *gateAlg) BaseBatch(lo, hi int) core.Batch {
	return core.Batch{
		Tasks: hi - lo,
		Cost:  core.Cost{Ops: 1},
		Run: func(i int) {
			if g.gate != nil {
				<-g.gate
			}
			if i == 0 && g.ran != nil {
				g.ran()
			}
		},
	}
}
func (g *gateAlg) CombineBatch(level, lo, hi int) core.Batch { return core.Batch{} }

// waitInFlight polls until the server reports n jobs executing.
func waitInFlight(t *testing.T, s *serve.Server, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().InFlight != n {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight never reached %d (stats %+v)", n, s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServerStressMixedJobs is the acceptance gate: at least 64 concurrent
// mixed jobs (mergesort + scan + sum) across all five strategies on one
// shared native backend, with random priorities and random cancellations,
// a bounded queue whose overflow must surface as ErrQueueFull, exact
// accounting, and zero leaked goroutines after Close.
func TestServerStressMixedJobs(t *testing.T) {
	base := runtime.NumGoroutine()
	be, err := native.New(native.Config{CPUWorkers: 4, DeviceLanes: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(be, serve.WithQueueDepth(8), serve.WithMaxInFlight(4))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	const accept = 96 // well above the 64-job floor
	type submission struct {
		h        *serve.Handle
		canceled bool
		sorter   *mergesort.Sorter // non-nil when the job is a mergesort
	}
	var subs []submission
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	rejected := uint64(0)
	for len(subs) < accept {
		n := 1 << (8 + rng.Intn(5)) // 256..4096 elements
		data := workload.Uniform(n, rng.Int63())
		var alg core.Alg
		var sorter *mergesort.Sorter
		switch rng.Intn(3) {
		case 0:
			sorter, err = mergesort.New(data)
			alg = sorter
		case 1:
			alg, err = scan.New(data)
		default:
			alg, err = dcsum.New(data)
		}
		if err != nil {
			t.Fatal(err)
		}
		job := serve.Job{Alg: alg}
		levels := alg.Levels()
		switch rng.Intn(5) {
		case 0:
			job.Strategy = serve.Sequential
		case 1:
			job.Strategy = serve.BreadthFirstCPU
		case 2:
			job.Strategy = serve.BasicHybrid
			job.Crossover = levels / 2
		case 3:
			job.Strategy = serve.AdvancedHybrid
			job.Alpha = 0.5
			job.Y = levels / 2
		default:
			job.Strategy = serve.GPUOnly
		}

		ctx, cancel := context.WithCancel(context.Background())
		h, err := srv.Submit(ctx, job, core.WithPriority(1+rng.Intn(3)))
		if err != nil {
			cancel()
			if !errors.Is(err, dcerr.ErrQueueFull) {
				t.Fatalf("Submit error %v does not unwrap to ErrQueueFull", err)
			}
			rejected++
			time.Sleep(100 * time.Microsecond) // shed load, retry
			continue
		}
		cancels = append(cancels, cancel)
		willCancel := rng.Intn(4) == 0
		if willCancel {
			delay := time.Duration(rng.Intn(300)) * time.Microsecond
			go func() {
				time.Sleep(delay)
				cancel()
			}()
		}
		subs = append(subs, submission{h: h, canceled: willCancel, sorter: sorter})
	}

	completed, canceled := 0, 0
	for i, sb := range subs {
		rep, err := sb.h.Report()
		switch {
		case err == nil:
			completed++
			if rep.Partial {
				t.Errorf("job %d: clean run marked Partial", i)
			}
			if sb.sorter != nil {
				out := sb.sorter.Result()
				if !sort.SliceIsSorted(out, func(a, b int) bool { return out[a] < out[b] }) {
					t.Errorf("job %d: completed mergesort left unsorted data", i)
				}
			}
		case errors.Is(err, dcerr.ErrCanceled):
			canceled++
			if !sb.canceled {
				t.Errorf("job %d: reported canceled but its context was never canceled", i)
			}
			if !rep.Partial {
				t.Errorf("job %d: canceled run's Report not marked Partial", i)
			}
		default:
			t.Errorf("job %d failed: %v", i, err)
		}
	}
	if rejected == 0 {
		t.Error("admission queue never filled: stress run exercised no backpressure")
	}

	st := srv.Stats()
	if st.Submitted != accept {
		t.Errorf("stats.Submitted = %d, want %d", st.Submitted, accept)
	}
	if st.Rejected != rejected {
		t.Errorf("stats.Rejected = %d, want %d", st.Rejected, rejected)
	}
	if st.Failed != 0 {
		t.Errorf("stats.Failed = %d, want 0", st.Failed)
	}
	if st.Completed+st.Canceled != accept {
		t.Errorf("stats: %d completed + %d canceled != %d accepted", st.Completed, st.Canceled, accept)
	}
	if int(st.Completed) != completed || int(st.Canceled) != canceled {
		t.Errorf("stats (%d completed, %d canceled) disagree with handles (%d, %d)",
			st.Completed, st.Canceled, completed, canceled)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := be.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, base)
}

// TestServerQueueFull holds the single in-flight slot busy with a gated job
// and asserts the QueueDepth+1-th submission is rejected with ErrQueueFull
// while earlier ones are queued.
func TestServerQueueFull(t *testing.T) {
	base := runtime.NumGoroutine()
	be, err := native.New(native.Config{CPUWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(be, serve.WithQueueDepth(1), serve.WithMaxInFlight(1))
	if err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	blocker, err := srv.Submit(context.Background(), serve.Job{Alg: &gateAlg{name: "blocker", gate: gate}})
	if err != nil {
		t.Fatal(err)
	}
	waitInFlight(t, srv, 1)

	queued, err := srv.Submit(context.Background(), serve.Job{Alg: &gateAlg{name: "queued"}})
	if err != nil {
		t.Fatalf("second submission should queue, got %v", err)
	}
	if _, err := srv.Submit(context.Background(), serve.Job{Alg: &gateAlg{name: "overflow"}}); !errors.Is(err, dcerr.ErrQueueFull) {
		t.Fatalf("overflow submission error %v does not unwrap to ErrQueueFull", err)
	}
	if st := srv.Stats(); st.Rejected != 1 || st.QueueDepth != 1 || st.MaxQueueDepth != 1 {
		t.Errorf("stats after overflow = %+v", st)
	}

	close(gate)
	for _, h := range []*serve.Handle{blocker, queued} {
		if _, err := h.Report(); err != nil {
			t.Errorf("%d: %v", h.ID, err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	be.Close()
	waitGoroutines(t, base)
}

// TestServerPriorityOrder fills the queue behind a gated blocker and asserts
// stride scheduling dispatches the heavier job first while keeping FIFO
// order among equal weights.
func TestServerPriorityOrder(t *testing.T) {
	be, err := native.New(native.Config{CPUWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	srv, err := serve.New(be, serve.WithQueueDepth(8), serve.WithMaxInFlight(1))
	if err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	if _, err := srv.Submit(context.Background(), serve.Job{Alg: &gateAlg{name: "blocker", gate: gate}}); err != nil {
		t.Fatal(err)
	}
	waitInFlight(t, srv, 1)

	var mu sync.Mutex
	var order []string
	submit := func(name string, weight int) *serve.Handle {
		alg := &gateAlg{name: name, ran: func() {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
		}}
		h, err := srv.Submit(context.Background(), serve.Job{Alg: alg}, core.WithPriority(weight))
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	// Queued while the blocker pins the only slot, so dispatch order is
	// decided purely by the scheduler.
	handles := []*serve.Handle{
		submit("low-a", 1),
		submit("low-b", 1),
		submit("high", 4),
	}

	close(gate)
	for _, h := range handles {
		if _, err := h.Report(); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	got := append([]string(nil), order...)
	mu.Unlock()
	want := []string{"high", "low-a", "low-b"}
	if len(got) != len(want) {
		t.Fatalf("execution order %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServerCancelWhileQueued cancels a job that never left the queue: it
// must settle with ErrCanceled and a partial Report without touching the
// backend.
func TestServerCancelWhileQueued(t *testing.T) {
	be, err := native.New(native.Config{CPUWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	srv, err := serve.New(be, serve.WithQueueDepth(4), serve.WithMaxInFlight(1))
	if err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	if _, err := srv.Submit(context.Background(), serve.Job{Alg: &gateAlg{name: "blocker", gate: gate}}); err != nil {
		t.Fatal(err)
	}
	waitInFlight(t, srv, 1)

	ran := false
	ctx, cancel := context.WithCancel(context.Background())
	h, err := srv.Submit(ctx, serve.Job{Alg: &gateAlg{name: "victim", ran: func() { ran = true }}})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	close(gate)

	rep, err := h.Report()
	if !errors.Is(err, dcerr.ErrCanceled) {
		t.Fatalf("error %v does not unwrap to ErrCanceled", err)
	}
	if !rep.Partial {
		t.Error("canceled-while-queued Report not marked Partial")
	}
	if ran {
		t.Error("canceled-while-queued job still executed")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.Canceled != 1 {
		t.Errorf("stats.Canceled = %d, want 1", st.Canceled)
	}
}

// TestServerClosedLifecycle covers the server's own lifecycle errors.
func TestServerClosedLifecycle(t *testing.T) {
	be, err := native.New(native.Config{CPUWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	srv, err := serve.New(be)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(context.Background(), serve.Job{Alg: &gateAlg{name: "late"}}); !errors.Is(err, dcerr.ErrServerClosed) {
		t.Errorf("Submit after Close: error %v does not unwrap to ErrServerClosed", err)
	}
	if err := srv.Close(); !errors.Is(err, dcerr.ErrServerClosed) {
		t.Errorf("second Close: error %v does not unwrap to ErrServerClosed", err)
	}
}

// TestServerRejectsBadConfig covers construction-time validation.
func TestServerRejectsBadConfig(t *testing.T) {
	if _, err := serve.New(nil); !errors.Is(err, dcerr.ErrBadParam) {
		t.Errorf("nil backend: error %v does not unwrap to ErrBadParam", err)
	}
	be, err := native.New(native.Config{CPUWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	be.Close()
	if _, err := serve.New(be); !errors.Is(err, dcerr.ErrBackendClosed) {
		t.Errorf("closed backend: error %v does not unwrap to ErrBackendClosed", err)
	}
	be2, err := native.New(native.Config{CPUWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer be2.Close()
	if _, err := serve.New(be2, serve.WithQueueDepth(-1)); !errors.Is(err, dcerr.ErrBadParam) {
		t.Errorf("negative QueueDepth: error %v does not unwrap to ErrBadParam", err)
	}
	srv, err := serve.New(be2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Submit(context.Background(), serve.Job{}); !errors.Is(err, dcerr.ErrBadParam) {
		t.Errorf("nil Alg: error %v does not unwrap to ErrBadParam", err)
	}
	// A hybrid strategy on an algorithm without device kernels is caught at
	// execution time and settles the handle as failed.
	h, err := srv.Submit(context.Background(),
		serve.Job{Alg: &gateAlg{name: "cpu-only"}, Strategy: serve.BasicHybrid})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Report(); !errors.Is(err, dcerr.ErrBadParam) {
		t.Errorf("hybrid on non-GPUAlg: error %v does not unwrap to ErrBadParam", err)
	}
}

// TestServerSimBackend drives the server over the single-goroutine
// virtual-time simulator: MaxInFlight is clamped internally, jobs serialize,
// and every result stays correct.
func TestServerSimBackend(t *testing.T) {
	be := hpu.MustSim(hpu.HPU1())
	srv, err := serve.New(be, serve.WithQueueDepth(16), serve.WithMaxInFlight(8))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	type jobOut struct {
		h      *serve.Handle
		sorter *mergesort.Sorter
	}
	var jobs []jobOut
	for i := 0; i < 8; i++ {
		data := workload.Uniform(1<<10, rng.Int63())
		sorter, err := mergesort.New(data)
		if err != nil {
			t.Fatal(err)
		}
		job := serve.Job{Alg: sorter}
		switch i % 4 {
		case 0:
			job.Strategy = serve.Sequential
		case 1:
			job.Strategy = serve.BreadthFirstCPU
		case 2:
			job.Strategy = serve.BasicHybrid
			job.Crossover = 3
		default:
			job.Strategy = serve.AdvancedHybrid
			job.Alpha = 0.4
			job.Y = 5
		}
		h, err := srv.Submit(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, jobOut{h, sorter})
	}
	for i, j := range jobs {
		rep, err := j.h.Report()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if rep.Seconds <= 0 {
			t.Errorf("job %d: virtual makespan %g", i, rep.Seconds)
		}
		out := j.sorter.Result()
		if !sort.SliceIsSorted(out, func(a, b int) bool { return out[a] < out[b] }) {
			t.Errorf("job %d left unsorted data", i)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.Completed != 8 || st.Failed != 0 {
		t.Errorf("stats = %+v, want 8 completed", st)
	}
}

// TestServerQueueWait asserts the handle exposes a plausible queue wait for a
// job held behind a blocker.
func TestServerQueueWait(t *testing.T) {
	be, err := native.New(native.Config{CPUWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	srv, err := serve.New(be, serve.WithQueueDepth(4), serve.WithMaxInFlight(1))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	gate := make(chan struct{})
	if _, err := srv.Submit(context.Background(), serve.Job{Alg: &gateAlg{name: "blocker", gate: gate}}); err != nil {
		t.Fatal(err)
	}
	waitInFlight(t, srv, 1)
	h, err := srv.Submit(context.Background(), serve.Job{Alg: &gateAlg{name: "waiter"}})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	close(gate)
	if _, err := h.Report(); err != nil {
		t.Fatal(err)
	}
	if w := h.QueueWaitSeconds(); w < 0.015 {
		t.Errorf("queue wait %gs, want >= 15ms", w)
	}
}

// TestServerCloseDrainsMidFlight pins the Close contract for in-flight and
// queued work: Close blocks until every admitted job settles, handles stay
// open (Done unclosed, Err nil) while the drain is in progress, and once a
// job has finished Wait returns its outcome even through an already-expired
// wait context.
func TestServerCloseDrainsMidFlight(t *testing.T) {
	be, err := native.New(native.Config{CPUWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	srv, err := serve.New(be, serve.WithQueueDepth(4), serve.WithMaxInFlight(1))
	if err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	var handles []*serve.Handle
	h0, err := srv.Submit(context.Background(), serve.Job{Alg: &gateAlg{name: "blocker", gate: gate}})
	if err != nil {
		t.Fatal(err)
	}
	handles = append(handles, h0)
	waitInFlight(t, srv, 1)
	for i := 0; i < 2; i++ {
		h, err := srv.Submit(context.Background(), serve.Job{Alg: &gateAlg{name: "queued", gate: gate}})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()

	// Close is now waiting on the drain: no handle may settle, and the
	// Close call itself must not return, while the gate holds.
	time.Sleep(20 * time.Millisecond)
	select {
	case err := <-closed:
		t.Fatalf("Close returned (%v) with jobs still gated", err)
	default:
	}
	for i, h := range handles {
		select {
		case <-h.Done():
			t.Fatalf("job %d (handle %d) settled with its gate held", h.ID, i)
		default:
		}
		if err := h.Err(); err != nil {
			t.Errorf("job %d: Err() = %v while running, want nil", h.ID, err)
		}
	}

	close(gate)
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Every admitted job drained to completion; a finished job's outcome is
	// readable through an expired wait context (done wins over ctx).
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	for _, h := range handles {
		select {
		case <-h.Done():
		default:
			t.Fatalf("job %d not settled after Close returned", h.ID)
		}
		if _, err := h.Wait(expired); err != nil {
			t.Errorf("job %d: Wait(expired) after drain = %v, want the job's nil outcome", h.ID, err)
		}
	}
	if st := srv.Stats(); st.Completed != 3 || st.Failed != 0 || st.Canceled != 0 {
		t.Errorf("stats = %+v, want 3 completed", st)
	}
}

// TestServerWaitAbandonMidFlight pins Wait's two-phase contract on a live
// job: an expiring wait context abandons only the wait — surfacing the
// context's cause while Done stays open and the job keeps running — and a
// later Wait on the finished job returns its clean outcome.
func TestServerWaitAbandonMidFlight(t *testing.T) {
	be, err := native.New(native.Config{CPUWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	srv, err := serve.New(be)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	gate := make(chan struct{})
	h, err := srv.Submit(context.Background(), serve.Job{Alg: &gateAlg{name: "gated", gate: gate}})
	if err != nil {
		t.Fatal(err)
	}

	cause := errors.New("caller moved on")
	waitCtx, cancel := context.WithCancelCause(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel(cause)
	}()
	if _, err := h.Wait(waitCtx); !errors.Is(err, cause) {
		t.Errorf("Wait on live job: error %v does not unwrap to the wait cause", err)
	}
	select {
	case <-h.Done():
		t.Fatal("abandoning a wait settled the job")
	default:
	}
	if err := h.Err(); err != nil {
		t.Errorf("Err() = %v after abandoned wait, want nil (job still running)", err)
	}

	close(gate)
	if _, err := h.Report(); err != nil {
		t.Fatalf("job failed after abandoned wait: %v", err)
	}
	// The same expired context no longer masks the settled outcome.
	if _, err := h.Wait(waitCtx); err != nil {
		t.Errorf("Wait(expired) on settled job = %v, want nil", err)
	}
}

// TestServerCancelDuringClose pins error precedence when a queued job's
// submission context is canceled while Close drains: the handle settles
// with ErrCanceled, and Wait reports that job error — not the wait
// context's — even when the wait context has also expired.
func TestServerCancelDuringClose(t *testing.T) {
	be, err := native.New(native.Config{CPUWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	srv, err := serve.New(be, serve.WithQueueDepth(4), serve.WithMaxInFlight(1))
	if err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	blocker, err := srv.Submit(context.Background(), serve.Job{Alg: &gateAlg{name: "blocker", gate: gate}})
	if err != nil {
		t.Fatal(err)
	}
	waitInFlight(t, srv, 1)

	jobCtx, cancelJob := context.WithCancel(context.Background())
	defer cancelJob()
	victim, err := srv.Submit(jobCtx, serve.Job{Alg: &gateAlg{name: "victim", gate: gate}})
	if err != nil {
		t.Fatal(err)
	}

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	time.Sleep(10 * time.Millisecond)
	cancelJob() // canceled while queued, mid-drain: never touches the backend

	close(gate)
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}

	if _, err := blocker.Wait(context.Background()); err != nil {
		t.Errorf("blocker failed: %v", err)
	}
	expired, cancelWait := context.WithCancel(context.Background())
	cancelWait()
	if _, err := victim.Wait(expired); !errors.Is(err, dcerr.ErrCanceled) {
		t.Errorf("victim Wait(expired) = %v, want the job's ErrCanceled to win over the wait context's", err)
	}
	if err := victim.Err(); !errors.Is(err, dcerr.ErrCanceled) {
		t.Errorf("victim Err() = %v, want ErrCanceled", err)
	}
	if st := srv.Stats(); st.Canceled != 1 || st.Completed != 1 {
		t.Errorf("stats = %+v, want 1 completed + 1 canceled", st)
	}
}
