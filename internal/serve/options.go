package serve

import (
	"time"

	"repro/internal/autotune"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Option configures a Server at construction. Options are accepted by New
// and applied over the defaults (QueueDepth 64, MaxInFlight 4, no metrics,
// no tracing).
type Option func(*Config)

// WithQueueDepth bounds the admission queue: Submit rejects with
// ErrQueueFull once n jobs are waiting. n <= 0 is rejected by New.
func WithQueueDepth(n int) Option {
	return func(c *Config) { c.QueueDepth = n }
}

// WithMaxInFlight bounds how many jobs execute concurrently on the backend.
// The bound is clamped to 1 when the backend is not core.Autonomous (the
// single-goroutine simulator must never be driven from two goroutines).
func WithMaxInFlight(n int) Option {
	return func(c *Config) { c.MaxInFlight = n }
}

// WithMetrics directs the server's operational metrics into the registry:
// submission/outcome counters, queue-depth and in-flight gauges, and
// per-priority wait and turnaround histograms (names in DESIGN.md §9). The
// registry is also forwarded to every job's executor via core.WithMetrics,
// so one scrape sees both layers. A nil registry disables metrics (the
// default) at zero per-submit cost.
func WithMetrics(reg *metrics.Registry) Option {
	return func(c *Config) { c.Metrics = reg }
}

// WithRecorder records spans into rec: one "queue" and one "job" span per
// job, plus — through a per-job scope wrapped around the backend — every
// batch and transfer the job's executor submits, all stamped with the job
// ID. Use trace.NewRecorderLimit for a server that should trace
// continuously at bounded memory.
func WithRecorder(rec *trace.Recorder) Option {
	return func(c *Config) { c.Trace = rec }
}

// WithMaxFusedJobs enables job fusion: when the dispatcher starts a GPUOnly
// job whose algorithm kind matches other queued GPUOnly jobs, up to n of
// them execute as one fused breadth-first run — one kernel launch per
// recursion level across all members, pipelined transfers — with per-job
// Handles settling independently (core.RunFusedGPUCtx). n < 2 disables
// fusion, the default. Fusion never reorders dispatch: the stride scheduler
// still picks the head job; fusion only lets compatible followers ride
// along, so per-job results remain bit-identical to unfused runs.
func WithMaxFusedJobs(n int) Option {
	return func(c *Config) { c.MaxFusedJobs = n }
}

// WithBatchWindow lets a dispatched fusable job wait up to d (wall clock)
// for same-kind companions to arrive when fewer than MaxFusedJobs are
// already queued, trading a bounded latency hit for a larger fused launch.
// The default 0 fuses only with jobs already waiting, adding no latency.
func WithBatchWindow(d time.Duration) Option {
	return func(c *Config) { c.BatchWindow = d }
}

// WithFusedBytesCap bounds the summed whole-instance transfer sizes
// (GPUAlg.GPUBytes of the full input) a single fused execution may carry,
// so fusion cannot build a device-resident working set beyond what the
// card holds. 0, the default, is unbounded.
func WithFusedBytesCap(b int64) Option {
	return func(c *Config) { c.FusedBytesCap = b }
}

// WithBreaker enables the per-backend circuit breaker: after threshold
// consecutive device-fault attempts the GPU path is shed — GPU-bound jobs
// are rejected (or fail at dispatch) with ErrDegraded, except jobs carrying
// a CPUOnly fallback, which run on the CPU path instead. After cooldown
// the breaker admits one half-open probe job (consulting the backend's
// core.DeviceProber first, when implemented); the probe's success closes
// the breaker, another fault reopens it. threshold <= 0 disables the
// breaker; cooldown 0 defaults to 100ms. DESIGN.md §12 has the state
// machine.
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(c *Config) {
		c.BreakerThreshold = threshold
		c.BreakerCooldown = cooldown
	}
}

// WithFaults wraps every job attempt's backend with the fault injector, so
// a chaos run exercises the reliability policies against deterministic,
// seeded device failures (see internal/faults). Fused executions and jobs
// carrying their own core.WithBackendWrapper bypass injection.
func WithFaults(in *faults.Injector) Option {
	return func(c *Config) { c.Faults = in }
}

// WithDeviceFaults overrides WithFaults for one pool device, so a chaos run
// can make a single pool member flaky while the rest stay healthy — the
// setup that exercises per-device breaker isolation and re-routing.
func WithDeviceFaults(dev int, in *faults.Injector) Option {
	return func(c *Config) {
		if c.DeviceFaults == nil {
			c.DeviceFaults = map[int]*faults.Injector{}
		}
		c.DeviceFaults[dev] = in
	}
}

// WithAutoTuner installs a pre-built (typically persisted-and-reloaded via
// autotune.LoadTuner) calibrator for Strategy Auto, and switches per-attempt
// metering on from the first job rather than from the first Auto submission.
// Without this option the server builds a fresh cold-start tuner lazily; the
// option exists so a restarted server keeps its learned per-device cost
// model (DESIGN.md §16).
func WithAutoTuner(t *autotune.Tuner) Option {
	return func(c *Config) { c.Tuner = t }
}

// WithPlacement selects the pool placement policy: PlaceModeledWork (the
// default) scores devices by the modeled sequential cost of their backlog;
// PlaceJSQ by occupancy alone. With a single backend the policy is moot.
func WithPlacement(p Placement) Option {
	return func(c *Config) { c.Placement = p }
}

// WithAutoDrain lets a device whose circuit breaker trips drain itself out
// of the pool: its queued jobs rebalance to the global queue (and healthier
// devices), its in-flight jobs finish, and the device is removed. The last
// active device never auto-drains — a server keeps at least one execution
// path. Off by default; meaningful only with WithBreaker.
func WithAutoDrain() Option {
	return func(c *Config) { c.AutoDrain = true }
}

// WithSplitOversized lets an AdvancedHybrid job whose whole-instance
// transfer size is at least bytes stripe across a device's internal GPUs
// (core.RunMultiGPUCtx) when that device is a core.MultiGPUBackend with two
// or more GPUs and has no other work — the pool's answer to one oversized
// job arriving at an idle multi-die device. 0, the default, never splits.
func WithSplitOversized(bytes int64) Option {
	return func(c *Config) { c.SplitBytes = bytes }
}

// Metric names recorded when WithMetrics is configured; semantics in
// DESIGN.md §9.
const (
	// MetricSubmitted counts accepted submissions; MetricRejected counts
	// queue-full rejections (disjoint).
	MetricSubmitted = "serve_submitted_total"
	MetricRejected  = "serve_rejected_total"
	// MetricCompleted/MetricCanceled/MetricFailed partition finished jobs.
	MetricCompleted = "serve_completed_total"
	MetricCanceled  = "serve_canceled_total"
	MetricFailed    = "serve_failed_total"
	// MetricQueueDepth and MetricInFlight are current occupancies;
	// MetricQueueDepthMax is the queue's high-water mark.
	MetricQueueDepth    = "serve_queue_depth"
	MetricQueueDepthMax = "serve_queue_depth_max"
	MetricInFlight      = "serve_inflight"
	// MetricFusedRuns counts fused executions (≥ 2 members); MetricFusedJobs
	// counts jobs finished as members of one. MetricFusionRatio is
	// MetricFusedJobs over all finished jobs.
	MetricFusedRuns   = "serve_fused_runs_total"
	MetricFusedJobs   = "serve_fused_jobs_total"
	MetricFusionRatio = "serve_fusion_ratio"
	// MetricRetries counts re-executed attempts after device faults;
	// MetricFallbacks counts CPU fallback executions; MetricHedgeWins
	// counts jobs whose CPU hedge beat the device path; MetricDegraded
	// counts GPU-bound jobs shed by the open circuit breaker.
	MetricRetries   = "serve_retries_total"
	MetricFallbacks = "serve_fallbacks_total"
	MetricHedgeWins = "serve_hedge_wins_total"
	MetricDegraded  = "serve_degraded_total"
	// MetricBreakerState is the worst breaker state across active devices
	// (0 closed, 1 half-open, 2 open); MetricBreakerTrips counts
	// transitions to open summed over all devices.
	MetricBreakerState = "serve_breaker_state"
	MetricBreakerTrips = "serve_breaker_trips_total"
	// MetricRebalances counts jobs moved off a tripped or draining device
	// back to the global queue; MetricDrains counts completed device drains.
	MetricRebalances = "serve_rebalances_total"
	MetricDrains     = "serve_drains_total"
)

// Per-device metric name formats (the %d is the device id).
const (
	// MetricDeviceQueueDepthFmt is the device's dispatch-FIFO occupancy.
	MetricDeviceQueueDepthFmt = "serve_device_queue_depth_dev%d"
	// MetricDevicePlacementsFmt counts jobs placed on the device.
	MetricDevicePlacementsFmt = "serve_placements_total_dev%d"
	// MetricDeviceBreakerStateFmt and MetricDeviceBreakerTripsFmt are the
	// device's own circuit breaker state and trip count.
	MetricDeviceBreakerStateFmt = "serve_breaker_state_dev%d"
	MetricDeviceBreakerTripsFmt = "serve_breaker_trips_dev%d"
)

// Per-priority histogram name formats (the %d is the job's scheduling
// weight): wall-clock wait from admission to dispatch, and turnaround from
// admission to settlement.
const (
	MetricWaitSecondsFmt       = "serve_wait_seconds_p%d"
	MetricTurnaroundSecondsFmt = "serve_turnaround_seconds_p%d"
)
