package native

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// waitCounter polls a snapshot counter until it becomes nonzero or the
// deadline passes (engine counters are flushed on busy→idle transitions, so
// they are eventually consistent).
func waitCounter(t *testing.T, reg *metrics.Registry, name string) uint64 {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := reg.Snapshot().Counters[name]; got > 0 || time.Now().After(deadline) {
			return got
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStealRebalancesSkewedBatch pins the engine's reason to exist: when one
// index range is far more expensive than the rest (≈90% of the work in the
// first quarter of the range), idle workers must steal split-off spans from
// the loaded worker, and the result must be identical to a sequential run.
// The suite's -race runs make this double as the stealing stress test.
func TestStealRebalancesSkewedBatch(t *testing.T) {
	reg := metrics.NewRegistry()
	b := newBackend(t, Config{CPUWorkers: 4, Metrics: reg})

	const tasks = 4096
	heavy := tasks / 4 // the first worker's initial span holds ~90% of the cost
	out := make([]uint64, tasks)
	work := func(i, rounds int) uint64 {
		v := uint64(i) + 1
		for r := 0; r < rounds; r++ {
			v ^= v << 13
			v ^= v >> 7
			v ^= v << 17
		}
		return v
	}
	// Heavy tasks must be slow enough that the loaded worker is still mid-
	// span when its peers go hungry, or the batch completes before any
	// split is exposed.
	rounds := func(i int) int {
		if i < heavy {
			return 50000
		}
		return 1000
	}

	for iter := 0; iter < 2; iter++ {
		var done sync.WaitGroup
		done.Add(1)
		b.CPU().Submit(core.Batch{Tasks: tasks, Run: func(i int) {
			out[i] = work(i, rounds(i))
		}}, done.Done)
		done.Wait()
	}
	b.Wait()

	for i := range out {
		if want := work(i, rounds(i)); out[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], want)
		}
	}
	if got := waitCounter(t, reg, PoolCPU+MetricSteals); got == 0 {
		t.Errorf("%s%s = 0 under skewed load, want > 0", PoolCPU, MetricSteals)
	}
}

// TestSaturatedSubmitNoGoroutineGrowth pins the fix for the old pool's
// full-channel fallback, which spawned one goroutine per overflowing chunk:
// with every worker blocked, submitting 10k more chunks must not grow the
// goroutine count — the spans queue in the injector instead.
func TestSaturatedSubmitNoGoroutineGrowth(t *testing.T) {
	b := newBackend(t, Config{CPUWorkers: 2})

	release := make(chan struct{})
	var blocked, done sync.WaitGroup
	blocked.Add(2)
	done.Add(1)
	// Saturate: one task per worker, each parked until released.
	b.CPU().Submit(core.Batch{Tasks: 2, Run: func(int) {
		blocked.Done()
		<-release
	}}, done.Done)
	blocked.Wait()

	before := runtime.NumGoroutine()
	const chunks = 10000
	var drained sync.WaitGroup
	drained.Add(chunks)
	for i := 0; i < chunks; i++ {
		b.CPU().Submit(core.Batch{Tasks: 1, Run: func(int) {}}, drained.Done)
	}
	after := runtime.NumGoroutine()
	if growth := after - before; growth > 4 {
		t.Errorf("goroutines grew by %d while submitting %d chunks to a saturated pool, want ~0", growth, chunks)
	}

	close(release)
	done.Wait()
	drained.Wait()
	b.Wait()
}

// TestSubmitZeroAlloc pins the hot-path cost contract: with a nil metrics
// registry, Submit performs no allocation — job and span descriptors are
// pooled and counter updates are no-ops.
func TestSubmitZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race, so allocation counts are not meaningful")
	}
	b := newBackend(t, Config{CPUWorkers: 2})

	fin := make(chan struct{})
	done := func() { fin <- struct{}{} }
	batch := core.Batch{Tasks: 64, Run: func(int) {}}
	// Warm the descriptor pools and the injector ring.
	for i := 0; i < 16; i++ {
		b.CPU().Submit(batch, done)
		<-fin
	}
	allocs := testing.AllocsPerRun(100, func() {
		b.CPU().Submit(batch, done)
		<-fin
	})
	if allocs > 0 {
		t.Errorf("Submit allocated %.1f times per run with nil registry, want 0", allocs)
	}
	b.Wait()
}

// TestEngineManySmallBatches exercises chained single-task submissions (the
// shape sequential executor steps take) and concurrent submitters.
func TestEngineManySmallBatches(t *testing.T) {
	b := newBackend(t, Config{CPUWorkers: 4})

	const submitters = 8
	const perSubmitter = 500
	var total sync.WaitGroup
	total.Add(submitters)
	sums := make([]int, submitters)
	for s := 0; s < submitters; s++ {
		go func(s int) {
			defer total.Done()
			for i := 0; i < perSubmitter; i++ {
				var done sync.WaitGroup
				done.Add(1)
				b.CPU().Submit(core.Batch{Tasks: 1, Run: func(int) { sums[s]++ }}, done.Done)
				done.Wait()
			}
		}(s)
	}
	total.Wait()
	b.Wait()
	for s, got := range sums {
		if got != perSubmitter {
			t.Errorf("submitter %d ran %d tasks, want %d", s, got, perSubmitter)
		}
	}
}
