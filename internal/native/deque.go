package native

import "sync/atomic"

// span is a contiguous index range [lo, hi) of one submitted batch. It is
// the unit of scheduling in the work-stealing engine: workers pop spans from
// their own deque bottom, thieves steal whole spans from the top, and a
// worker that notices hungry peers splits its current span in half rather
// than handing over single tasks — stealing moves an index range, never one
// task at a time.
type span struct {
	j      *job
	lo, hi int
}

// deque is a fixed-capacity Chase-Lev work-stealing deque of *span. The
// owning worker pushes and pops at the bottom (LIFO, cache-warm); any other
// worker steals from the top (FIFO, so thieves take the oldest — and after
// halving-splits, largest — span). Slots hold pointers behind atomics, so
// every cross-thread access is a plain atomic load/store/CAS and the
// implementation is race-detector-clean without unsafe.
//
// The capacity is fixed: push reports failure when the deque is full and the
// caller keeps the span for itself (it executes the range inline instead of
// exposing it to thieves), so overflow degrades granularity, never drops
// work and never allocates.
type deque struct {
	top atomic.Int64 // next index to steal (only ever incremented)
	_   [56]byte     // keep top and bottom on separate cache lines
	bot atomic.Int64 // next index to push (owner-written)
	_   [56]byte
	buf  []atomic.Pointer[span]
	mask int64
}

const dequeCapacity = 256 // spans per worker; plenty for halving-splits (log2 of any range)

func newDeque() *deque {
	d := &deque{buf: make([]atomic.Pointer[span], dequeCapacity)}
	d.mask = int64(len(d.buf) - 1)
	return d
}

// push appends s at the bottom. Owner only. Returns false when full.
func (d *deque) push(s *span) bool {
	b := d.bot.Load()
	t := d.top.Load()
	if b-t >= int64(len(d.buf)) {
		return false
	}
	// The slot at b cannot be observed by a thief until bot is published,
	// and cannot still be claimed by an old steal: top ≤ b-cap < b holds.
	d.buf[b&d.mask].Store(s)
	d.bot.Store(b + 1)
	return true
}

// pop removes and returns the bottom span, or nil. Owner only.
func (d *deque) pop() *span {
	b := d.bot.Load() - 1
	d.bot.Store(b) // reserve; thieves now stop at b
	t := d.top.Load()
	if t > b {
		// Empty: undo the reservation.
		d.bot.Store(b + 1)
		return nil
	}
	s := d.buf[b&d.mask].Load()
	if t == b {
		// Last element: race the thieves for it via top.
		if !d.top.CompareAndSwap(t, t+1) {
			s = nil // a thief won
		}
		d.bot.Store(b + 1)
		return s
	}
	return s
}

// steal removes and returns the top span, or nil. Any worker.
func (d *deque) steal() *span {
	for {
		t := d.top.Load()
		b := d.bot.Load()
		if t >= b {
			return nil
		}
		// Safe to read before the CAS: the slot at t&mask cannot be
		// overwritten by a push while top == t (pushes keep bot-top < cap),
		// and a successful CAS proves top was still t.
		s := d.buf[t&d.mask].Load()
		if d.top.CompareAndSwap(t, t+1) {
			return s
		}
		// Lost to the owner's pop or another thief; retry from fresh top.
	}
}

// drain empties the deque from the owner side, invoking f on every span.
// Owner only; used when a worker exits on Close to unwind leftover spans.
func (d *deque) drain(f func(*span)) {
	for {
		s := d.pop()
		if s == nil {
			return
		}
		f(s)
	}
}
