package native

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// TestPoolMetrics pins that a metered backend records chunk and task counts
// per pool, and that the busy-worker gauge returns to zero once idle. The
// engine flushes per-worker counters on busy→idle transitions, so the
// counters are eventually consistent (staleness bound in DESIGN.md §11) and
// the test polls briefly instead of asserting immediately after Wait.
func TestPoolMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	b := newBackend(t, Config{CPUWorkers: 2, DeviceLanes: 2, Metrics: reg})

	var ran sync.WaitGroup
	ran.Add(2)
	batch := core.Batch{Tasks: 8, Run: func(int) {}}
	b.CPU().Submit(batch, ran.Done)
	b.GPU().Submit(batch, ran.Done)
	ran.Wait()
	b.Wait()

	settled := func() bool {
		s := reg.Snapshot()
		for _, pool := range []string{PoolCPU, PoolGPU} {
			if s.Counters[pool+MetricChunks] == 0 || s.Gauges[pool+MetricBusyWorkers] != 0 {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(5 * time.Second)
	for !settled() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	s := reg.Snapshot()
	for _, pool := range []string{PoolCPU, PoolGPU} {
		if got := s.Counters[pool+MetricTasks]; got != 8 {
			t.Errorf("%s%s = %d, want 8", pool, MetricTasks, got)
		}
		// 8 tasks across 2 workers: at least one chunk was counted; the
		// exact count depends on how spans were split and stolen.
		if got := s.Counters[pool+MetricChunks]; got == 0 {
			t.Errorf("%s%s = 0, want > 0", pool, MetricChunks)
		}
		if got := s.Gauges[pool+MetricBusyWorkers]; got != 0 {
			t.Errorf("%s%s = %d after Wait, want 0", pool, MetricBusyWorkers, got)
		}
	}
	if got := s.Counters[MetricSubmitAfterClose]; got != 0 {
		t.Errorf("%s = %d before Close, want 0", MetricSubmitAfterClose, got)
	}
}

// TestSubmitAfterCloseCounted pins that work dropped by the close race is
// visible in the metrics rather than silently discarded.
func TestSubmitAfterCloseCounted(t *testing.T) {
	reg := metrics.NewRegistry()
	b, err := New(Config{CPUWorkers: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	var done sync.WaitGroup
	done.Add(1)
	b.CPU().Submit(core.Batch{Tasks: 1, Run: func(int) {}}, done.Done)
	done.Wait() // abort path still unwinds the completion chain
	if got := reg.Snapshot().Counters[MetricSubmitAfterClose]; got == 0 {
		t.Errorf("%s = 0 after submit-after-close, want > 0", MetricSubmitAfterClose)
	}
}
