// Package native runs the generic divide-and-conquer framework on real
// goroutines instead of the virtual-time simulator: a fixed CPU worker pool
// of p goroutines and, optionally, a wide "device" pool standing in for the
// GPU. It implements core.Backend with wall-clock timing.
//
// On a machine without a real GPU the device pool is just more goroutines on
// the same cores, so it cannot reproduce the paper's speed ratios — its
// purpose is (a) making the library genuinely useful for multi-core D&C
// parallelism, and (b) exercising every executor under real concurrency
// (including -race) in tests. The simulated backend in internal/hpu is the
// one that reproduces the paper's numbers.
package native

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"

	"repro/internal/dcerr"
)

// Metric names recorded by the backend when Config.Metrics is set;
// semantics in DESIGN.md §9. The {cpu,gpu} pair of each name is produced by
// prefixing PoolCPU or PoolGPU.
const (
	MetricChunks           = "_chunks_total"
	MetricTasks            = "_tasks_total"
	MetricBusyWorkers      = "_busy_workers"
	MetricSubmitAfterClose = "native_submit_after_close_total"
)

// Pool name prefixes for the per-pool metrics.
const (
	PoolCPU = "native_cpu"
	PoolGPU = "native_gpu"
)

// Config describes a native backend.
type Config struct {
	// CPUWorkers is the CPU pool size p. Defaults to runtime.GOMAXPROCS(0).
	CPUWorkers int
	// DeviceLanes is the device pool size (the stand-in for g). 0 disables
	// the device, yielding a CPU-only backend.
	DeviceLanes int
	// Gamma is the γ the planners should assume for the device. It has no
	// effect on actual execution speed. Defaults to 1/16 when a device is
	// configured.
	Gamma float64
	// TransferDelay, if nonzero, sleeps this long per host↔device transfer
	// to mimic link latency.
	TransferDelay time.Duration
	// Metrics, if non-nil, receives pool occupancy gauges, chunk/task
	// counters, and the count of submissions that raced Close (whose work
	// is dropped while their completion chains still unwind). Nil disables
	// metrics at zero cost.
	Metrics *metrics.Registry
}

// Backend is a real-goroutine hybrid platform.
type Backend struct {
	cfg     Config
	cpu     *pool
	gpu     *pool
	start   time.Time
	pending sync.WaitGroup
	closed  atomic.Bool
}

var _ core.Backend = (*Backend)(nil)

// New starts the worker pools. Call Close to stop them.
func New(cfg Config) (*Backend, error) {
	if cfg.CPUWorkers <= 0 {
		cfg.CPUWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.DeviceLanes < 0 {
		return nil, fmt.Errorf("native: negative DeviceLanes %d: %w", cfg.DeviceLanes, dcerr.ErrBadParam)
	}
	if cfg.Gamma == 0 {
		cfg.Gamma = 1.0 / 16
	}
	if cfg.Gamma < 0 || cfg.Gamma >= 1 {
		return nil, fmt.Errorf("native: Gamma must be in (0,1), got %g: %w", cfg.Gamma, dcerr.ErrBadParam)
	}
	b := &Backend{cfg: cfg, start: time.Now()}
	b.cpu = newPool(cfg.CPUWorkers, &b.pending, cfg.Metrics, PoolCPU)
	if cfg.DeviceLanes > 0 {
		b.gpu = newPool(cfg.DeviceLanes, &b.pending, cfg.Metrics, PoolGPU)
	}
	return b, nil
}

// Close stops the worker pools. The backend must be idle. Close is
// idempotent: the first call returns nil, every later call returns an error
// wrapping dcerr.ErrBackendClosed. Work submitted after Close is not
// executed; its completion callbacks fire immediately so chains unwind
// instead of deadlocking (executors guard with Closed first).
func (b *Backend) Close() error {
	if b.closed.Swap(true) {
		return fmt.Errorf("native: %w", dcerr.ErrBackendClosed)
	}
	b.cpu.close()
	if b.gpu != nil {
		b.gpu.close()
	}
	return nil
}

// Closed reports whether Close has been called. It implements core.Closer,
// so executors and the serving layer refuse new work with ErrBackendClosed.
func (b *Backend) Closed() bool { return b.closed.Load() }

// Autonomous implements core.Autonomous: submitted work progresses on the
// pools' own goroutines, so concurrent runs sharing this backend complete
// independently without driving Wait.
func (b *Backend) Autonomous() bool { return true }

// CPU implements core.Backend.
func (b *Backend) CPU() core.LevelExecutor { return b.cpu }

// GPU implements core.Backend.
func (b *Backend) GPU() core.LevelExecutor {
	if b.gpu == nil {
		return nil
	}
	return b.gpu
}

// GPUGamma implements core.Backend.
func (b *Backend) GPUGamma() float64 {
	if b.gpu == nil {
		return 0
	}
	return b.cfg.Gamma
}

// transfer mimics a link crossing.
func (b *Backend) transfer(done func()) {
	b.pending.Add(1)
	go func() {
		defer b.pending.Done()
		if b.cfg.TransferDelay > 0 {
			time.Sleep(b.cfg.TransferDelay)
		}
		if done != nil {
			done()
		}
	}()
}

// TransferToGPU implements core.Backend.
func (b *Backend) TransferToGPU(n int64, done func()) { b.transfer(done) }

// TransferToCPU implements core.Backend.
func (b *Backend) TransferToCPU(n int64, done func()) { b.transfer(done) }

// Now implements core.Backend: wall-clock seconds since construction.
func (b *Backend) Now() float64 { return time.Since(b.start).Seconds() }

// Wait implements core.Backend: blocks until all submitted work, including
// chained completions, has finished.
func (b *Backend) Wait() { b.pending.Wait() }

// pool is a fixed set of workers consuming task chunks.
type pool struct {
	workers int
	tasks   chan func()
	pending *sync.WaitGroup
	// mu guards closed against the channel close: senders hold it shared,
	// close holds it exclusively, so a send never races the close.
	mu     sync.RWMutex
	closed bool
	// Observability instruments; nil (no-op) unless Config.Metrics was set.
	busyWorkers *metrics.Gauge
	chunks      *metrics.Counter
	tasksRun    *metrics.Counter
	closeRaces  *metrics.Counter
}

var _ core.LevelExecutor = (*pool)(nil)

func newPool(workers int, pending *sync.WaitGroup, reg *metrics.Registry, prefix string) *pool {
	p := &pool{
		workers:     workers,
		tasks:       make(chan func(), 4*workers),
		pending:     pending,
		busyWorkers: reg.Gauge(prefix + MetricBusyWorkers),
		chunks:      reg.Counter(prefix + MetricChunks),
		tasksRun:    reg.Counter(prefix + MetricTasks),
		closeRaces:  reg.Counter(MetricSubmitAfterClose),
	}
	for i := 0; i < workers; i++ {
		go func() {
			for f := range p.tasks {
				p.busyWorkers.Add(1)
				f()
				p.busyWorkers.Add(-1)
			}
		}()
	}
	return p
}

func (p *pool) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	close(p.tasks)
}

// send enqueues a chunk, never blocking the caller (which may be a worker
// goroutine running a chained completion). If the pool is or becomes closed
// before the chunk can be enqueued, abort runs instead so the submitter's
// completion accounting still unwinds.
func (p *pool) send(chunk, abort func()) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		p.closeRaces.Inc()
		abort()
		return
	}
	select {
	case p.tasks <- chunk:
	default:
		go func() {
			p.mu.RLock()
			defer p.mu.RUnlock()
			if p.closed {
				p.closeRaces.Inc()
				abort()
				return
			}
			p.tasks <- chunk
		}()
	}
}

// Parallelism implements core.LevelExecutor.
func (p *pool) Parallelism() int { return p.workers }

// Submit implements core.LevelExecutor: the batch is split into one chunk
// per worker (tasks permitting) and done fires after the last chunk.
func (p *pool) Submit(b core.Batch, done func()) {
	if b.Empty() {
		if done != nil {
			done()
		}
		return
	}
	chunks := p.workers
	if b.Tasks < chunks {
		chunks = b.Tasks
	}
	p.chunks.Add(uint64(chunks))
	p.tasksRun.Add(uint64(b.Tasks))
	join := done
	if join == nil {
		join = func() {}
	}
	// The chain's continuation (done) may submit more work, so keep the
	// backend pending until it has run.
	p.pending.Add(chunks)
	finish := core.Join(chunks, func() {
		join()
		// Release the chunks only after the continuation completed, so
		// Wait cannot observe an idle instant mid-chain.
		for i := 0; i < chunks; i++ {
			p.pending.Done()
		}
	})
	base, rem := b.Tasks/chunks, b.Tasks%chunks
	lo := 0
	for i := 0; i < chunks; i++ {
		n := base
		if i < rem {
			n++
		}
		from, to := lo, lo+n
		lo = to
		chunk := func() {
			if b.Run != nil {
				for t := from; t < to; t++ {
					b.Run(t)
				}
			}
			finish()
		}
		// On a closed pool the chunk's work is dropped but finish still
		// runs, so the chain unwinds instead of deadlocking Wait.
		p.send(chunk, finish)
	}
}
