// Package native runs the generic divide-and-conquer framework on real
// goroutines instead of the virtual-time simulator: a fixed CPU worker pool
// of p goroutines and, optionally, a wide "device" pool standing in for the
// GPU. It implements core.Backend with wall-clock timing.
//
// Both pools are backed by a work-stealing engine (engine.go): each worker
// owns a bounded Chase-Lev deque of index-range spans, Submit turns a batch
// into at most p spans, and workers that notice hungry peers halve their
// current range so load balances by stealing rather than by up-front
// chunking. Idle workers spin briefly, then park; the steady state takes no
// locks and performs no allocation per Submit.
//
// On a machine without a real GPU the device pool is just more goroutines on
// the same cores, so it cannot reproduce the paper's speed ratios — its
// purpose is (a) making the library genuinely useful for multi-core D&C
// parallelism, and (b) exercising every executor under real concurrency
// (including -race) in tests. The simulated backend in internal/hpu is the
// one that reproduces the paper's numbers.
package native

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"

	"repro/internal/dcerr"
)

// Metric names recorded by the backend when Config.Metrics is set;
// semantics in DESIGN.md §9 and §11. The {cpu,gpu} pair of each name is
// produced by prefixing PoolCPU or PoolGPU.
const (
	MetricChunks           = "_chunks_total"
	MetricTasks            = "_tasks_total"
	MetricSteals           = "_steals_total"
	MetricBusyWorkers      = "_busy_workers"
	MetricSubmitAfterClose = "native_submit_after_close_total"
)

// Pool name prefixes for the per-pool metrics.
const (
	PoolCPU = "native_cpu"
	PoolGPU = "native_gpu"
)

// Config describes a native backend.
type Config struct {
	// CPUWorkers is the CPU pool size p. Defaults to runtime.GOMAXPROCS(0).
	CPUWorkers int
	// DeviceLanes is the device pool size (the stand-in for g). 0 disables
	// the device, yielding a CPU-only backend.
	DeviceLanes int
	// Gamma is the γ the planners should assume for the device. It has no
	// effect on actual execution speed. Defaults to 1/16 when a device is
	// configured.
	Gamma float64
	// TransferDelay, if nonzero, sleeps this long per host↔device transfer
	// to mimic link latency.
	TransferDelay time.Duration
	// Metrics, if non-nil, receives pool occupancy gauges, chunk/task/steal
	// counters, and the count of submissions that raced Close (whose work
	// is dropped while their completion chains still unwind). Nil disables
	// metrics at zero cost.
	Metrics *metrics.Registry
	// LegacyPool selects the pre-work-stealing channel fan-out pool. It is
	// retained solely so benchmarks (make bench-cpu) can compare the old
	// executor against the stealing engine on the same build; it keeps the
	// old pool's unbounded-goroutine overflow behavior and should not be
	// used outside benchmarks.
	LegacyPool bool
}

// executor is what a Backend pool must provide beyond core.LevelExecutor.
type executor interface {
	core.LevelExecutor
	close()
}

// Backend is a real-goroutine hybrid platform.
type Backend struct {
	cfg     Config
	cpu     executor
	gpu     executor
	start   time.Time
	pending sync.WaitGroup
	closed  atomic.Bool

	// segs models the device staging pool (core.SegmentAllocator):
	// executors lease per-run segments so repeated same-shape runs reuse
	// device residency instead of re-allocating.
	segs core.SegmentCache

	// Transfers run on one long-lived worker (in link order, matching the
	// simulator's in-order copy queue) instead of one goroutine per
	// crossing. transferMu fences enqueue against Close so no request is
	// stranded in the queue after the worker drains and exits.
	transferQ  chan func()
	quit       chan struct{}
	transferMu sync.RWMutex
}

var _ core.Backend = (*Backend)(nil)

// New starts the worker pools. Call Close to stop them.
func New(cfg Config) (*Backend, error) {
	if cfg.CPUWorkers <= 0 {
		cfg.CPUWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.DeviceLanes < 0 {
		return nil, fmt.Errorf("native: negative DeviceLanes %d: %w", cfg.DeviceLanes, dcerr.ErrBadParam)
	}
	if cfg.Gamma == 0 {
		cfg.Gamma = 1.0 / 16
	}
	if cfg.Gamma < 0 || cfg.Gamma >= 1 {
		return nil, fmt.Errorf("native: Gamma must be in (0,1), got %g: %w", cfg.Gamma, dcerr.ErrBadParam)
	}
	b := &Backend{
		cfg:       cfg,
		start:     time.Now(),
		transferQ: make(chan func(), 64),
		quit:      make(chan struct{}),
	}
	b.segs.SetMetrics("native", cfg.Metrics)
	go b.transferWorker()
	mk := func(workers int, prefix string) executor {
		if cfg.LegacyPool {
			return newPool(workers, &b.pending, cfg.Metrics, prefix)
		}
		return newEngine(workers, &b.pending, cfg.Metrics, prefix)
	}
	b.cpu = mk(cfg.CPUWorkers, PoolCPU)
	if cfg.DeviceLanes > 0 {
		b.gpu = mk(cfg.DeviceLanes, PoolGPU)
	}
	return b, nil
}

// Close stops the worker pools. The backend must be idle. Close is
// idempotent: the first call returns nil, every later call returns an error
// wrapping dcerr.ErrBackendClosed. Work submitted after Close is not
// executed; its completion callbacks fire immediately so chains unwind
// instead of deadlocking (executors guard with Closed first).
func (b *Backend) Close() error {
	if b.closed.Swap(true) {
		return fmt.Errorf("native: %w", dcerr.ErrBackendClosed)
	}
	b.cpu.close()
	if b.gpu != nil {
		b.gpu.close()
	}
	// Stop the transfer worker. Taking the write lock after flipping
	// closed guarantees no transfer can enqueue afterwards: every enqueue
	// holds the read lock and re-checks closed inside it.
	b.transferMu.Lock()
	close(b.quit)
	b.transferMu.Unlock()
	b.segs.Trim()
	return nil
}

// AllocSegment implements core.SegmentAllocator.
func (b *Backend) AllocSegment(n int64) *core.Segment { return b.segs.AllocSegment(n) }

// Segments exposes the device staging cache for tests and stats.
func (b *Backend) Segments() *core.SegmentCache { return &b.segs }

// Closed reports whether Close has been called. It implements core.Closer,
// so executors and the serving layer refuse new work with ErrBackendClosed.
func (b *Backend) Closed() bool { return b.closed.Load() }

// ProbeDevice implements core.DeviceProber: the health check the serving
// layer's circuit breaker runs before risking a half-open probe job. The
// device path is unhealthy once the backend is closed or was built without
// device lanes.
func (b *Backend) ProbeDevice() error {
	if b.closed.Load() {
		return fmt.Errorf("native: probe: %w", dcerr.ErrBackendClosed)
	}
	if b.gpu == nil {
		return fmt.Errorf("native: probe: %w", dcerr.ErrNoGPU)
	}
	return nil
}

// Autonomous implements core.Autonomous: submitted work progresses on the
// pools' own goroutines, so concurrent runs sharing this backend complete
// independently without driving Wait.
func (b *Backend) Autonomous() bool { return true }

// CPU implements core.Backend.
func (b *Backend) CPU() core.LevelExecutor { return b.cpu }

// GPU implements core.Backend.
func (b *Backend) GPU() core.LevelExecutor {
	if b.gpu == nil {
		return nil
	}
	return b.gpu
}

// GPUGamma implements core.Backend.
func (b *Backend) GPUGamma() float64 {
	if b.gpu == nil {
		return 0
	}
	return b.cfg.Gamma
}

// transfer mimics a link crossing. Crossings are serviced in order by the
// long-lived transfer worker — the link is one shared resource, as in the
// simulator — falling back to a dedicated goroutine only when the queue is
// full or the backend is closing (so chains always unwind).
func (b *Backend) transfer(done func()) {
	b.pending.Add(1)
	run := func() {
		defer b.pending.Done()
		if b.cfg.TransferDelay > 0 {
			time.Sleep(b.cfg.TransferDelay)
		}
		if done != nil {
			done()
		}
	}
	b.transferMu.RLock()
	if !b.closed.Load() {
		select {
		case b.transferQ <- run:
			b.transferMu.RUnlock()
			return
		default:
		}
	}
	b.transferMu.RUnlock()
	go run()
}

// transferWorker services the transfer queue until Close, then drains
// whatever was already enqueued and exits.
func (b *Backend) transferWorker() {
	for {
		select {
		case run := <-b.transferQ:
			run()
		case <-b.quit:
			for {
				select {
				case run := <-b.transferQ:
					run()
				default:
					return
				}
			}
		}
	}
}

// TransferToGPU implements core.Backend.
func (b *Backend) TransferToGPU(n int64, done func()) { b.transfer(done) }

// TransferToCPU implements core.Backend.
func (b *Backend) TransferToCPU(n int64, done func()) { b.transfer(done) }

// Now implements core.Backend: wall-clock seconds since construction.
func (b *Backend) Now() float64 { return time.Since(b.start).Seconds() }

// Wait implements core.Backend: blocks until all submitted work, including
// chained completions, has finished.
func (b *Backend) Wait() { b.pending.Wait() }
