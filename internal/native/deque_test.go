package native

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestDequeOwnerLIFO pins single-threaded owner semantics: pop returns the
// most recently pushed span, steal the oldest.
func TestDequeOwnerLIFO(t *testing.T) {
	d := newDeque()
	spans := []*span{{lo: 0}, {lo: 1}, {lo: 2}}
	for _, s := range spans {
		if !d.push(s) {
			t.Fatal("push failed on empty deque")
		}
	}
	if s := d.steal(); s == nil || s.lo != 0 {
		t.Fatalf("steal = %v, want span 0", s)
	}
	if s := d.pop(); s == nil || s.lo != 2 {
		t.Fatalf("pop = %v, want span 2", s)
	}
	if s := d.pop(); s == nil || s.lo != 1 {
		t.Fatalf("pop = %v, want span 1", s)
	}
	if s := d.pop(); s != nil {
		t.Fatalf("pop on empty = %v, want nil", s)
	}
	if s := d.steal(); s != nil {
		t.Fatalf("steal on empty = %v, want nil", s)
	}
}

// TestDequeFull pins that push reports failure at capacity instead of
// overwriting live slots.
func TestDequeFull(t *testing.T) {
	d := newDeque()
	for i := 0; i < dequeCapacity; i++ {
		if !d.push(&span{lo: i}) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	if d.push(&span{lo: dequeCapacity}) {
		t.Fatal("push succeeded on full deque")
	}
	if s := d.steal(); s == nil || s.lo != 0 {
		t.Fatalf("steal = %v, want span 0", s)
	}
	if !d.push(&span{lo: dequeCapacity}) {
		t.Fatal("push failed after steal freed a slot")
	}
}

// TestDequeConcurrentStealers runs one owner doing interleaved push/pop
// against several thieves and asserts every span is consumed exactly once —
// the core no-loss/no-duplication property of the Chase-Lev protocol. Run
// with -race in the suite's race job.
func TestDequeConcurrentStealers(t *testing.T) {
	const total = 20000
	const thieves = 3
	d := newDeque()
	seen := make([]atomic.Int32, total)
	consume := func(s *span) {
		if s.j != nil {
			t.Error("unexpected job pointer")
		}
		seen[s.lo].Add(1)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if s := d.steal(); s != nil {
					consume(s)
				}
			}
			// Final sweep after the owner finished.
			for {
				s := d.steal()
				if s == nil {
					return
				}
				consume(s)
			}
		}()
	}

	next := 0
	for next < total {
		if d.push(&span{lo: next}) {
			next++
		} else if s := d.pop(); s != nil {
			consume(s)
		}
		// Owner pops roughly every other push to exercise the pop/steal race.
		if next%2 == 0 {
			if s := d.pop(); s != nil {
				consume(s)
			}
		}
	}
	d.drain(consume)
	stop.Store(true)
	wg.Wait()

	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("span %d consumed %d times, want exactly once", i, n)
		}
	}
}
