package native

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/metrics"
)

// job is one submitted batch flowing through the engine. Instead of one
// closure per chunk (the old pool), a single job descriptor is shared by
// every span of the batch: workers call run directly over index ranges and
// decrement remaining once per range, so the per-chunk cost is two field
// reads and one atomic add — no allocation, no channel operation.
type job struct {
	run       func(i int)
	done      func()
	remaining atomic.Int64
}

// Engine tuning constants.
const (
	// chunkQuantum bounds how many tasks a worker runs between checks for
	// hungry peers, so a span of slow tasks becomes stealable at quantum
	// granularity instead of only at span boundaries.
	chunkQuantum = 64
	// searchRounds is how many full scan rounds (own deque, injector, every
	// victim) a worker spins through before parking.
	searchRounds = 4
)

// engine is the work-stealing executor behind Backend's pools: p resident
// worker goroutines, each owning a Chase-Lev deque of range spans, fed by a
// mutex-guarded FIFO injector that Submit fills. Idle workers spin briefly
// over the steal targets, then park on a condition variable; producers wake
// them only when a parked worker exists, so the steady state takes no locks.
type engine struct {
	workers []*worker
	pending *sync.WaitGroup

	// injector: spans submitted from outside the worker set. injMu also
	// guards closed against Submit, replacing the old pool's RWMutex —
	// a Submit that enqueued under closed == false is always drained.
	injMu   sync.Mutex
	inj     []*span
	injHead int
	closed  bool

	injLen     atomic.Int32 // len of injector, for lock-free empty checks
	stealable  atomic.Int64 // spans visible in the injector or any deque
	searching  atomic.Int32 // workers scanning for work right now
	idle       atomic.Int32 // workers parked in cond.Wait
	closedFlag atomic.Bool

	parkMu   sync.Mutex
	parkCond *sync.Cond

	spanPool sync.Pool
	jobPool  sync.Pool

	// Observability instruments; nil (no-op) unless Config.Metrics was set.
	// chunks and steals are accumulated per worker and flushed on busy→idle
	// transitions (staleness bound documented in DESIGN.md §9/§11).
	busyWorkers *metrics.Gauge
	chunks      *metrics.Counter
	tasksRun    *metrics.Counter
	steals      *metrics.Counter
	closeRaces  *metrics.Counter
}

// worker is one resident goroutine of an engine.
type worker struct {
	e  *engine
	id int
	dq *deque

	rng uint64
	// Local accumulators, flushed to the shared counters on busy→idle
	// transitions so hot loops never touch shared cache lines.
	localChunks uint64
	localSteals uint64
	busy        bool
}

var _ core.LevelExecutor = (*engine)(nil)

func newEngine(workers int, pending *sync.WaitGroup, reg *metrics.Registry, prefix string) *engine {
	e := &engine{
		pending:     pending,
		busyWorkers: reg.Gauge(prefix + MetricBusyWorkers),
		chunks:      reg.Counter(prefix + MetricChunks),
		tasksRun:    reg.Counter(prefix + MetricTasks),
		steals:      reg.Counter(prefix + MetricSteals),
		closeRaces:  reg.Counter(MetricSubmitAfterClose),
	}
	e.parkCond = sync.NewCond(&e.parkMu)
	e.spanPool.New = func() any { return new(span) }
	e.jobPool.New = func() any { return new(job) }
	e.inj = make([]*span, 0, 4*workers)
	e.workers = make([]*worker, workers)
	for i := range e.workers {
		w := &worker{e: e, id: i, dq: newDeque(), rng: uint64(i)*0x9e3779b97f4a7c15 + 1}
		e.workers[i] = w
	}
	for _, w := range e.workers {
		go w.loop()
	}
	return e
}

// Parallelism implements core.LevelExecutor.
func (e *engine) Parallelism() int { return len(e.workers) }

// Submit implements core.LevelExecutor: the batch becomes one shared job
// descriptor plus min(workers, tasks) initial range spans in the injector.
// Workers split spans further on demand (when a peer is searching or
// parked), so balance under skew comes from stealing, not from the submit
// path. With a nil metrics registry the call performs no allocation: job and
// span descriptors are pooled, and the counter updates below are batched
// once per Submit rather than per chunk.
func (e *engine) Submit(b core.Batch, done func()) {
	if b.Empty() {
		if done != nil {
			done()
		}
		return
	}
	e.tasksRun.Add(uint64(b.Tasks))
	j := e.jobPool.Get().(*job)
	j.run = b.Run
	j.done = done
	j.remaining.Store(int64(b.Tasks))

	// Keep the backend pending until the continuation has run, so Wait
	// cannot observe an idle instant mid-chain.
	e.pending.Add(1)

	k := len(e.workers)
	if b.Tasks < k {
		k = b.Tasks
	}
	base, rem := b.Tasks/k, b.Tasks%k

	e.injMu.Lock()
	if e.closed {
		e.injMu.Unlock()
		e.closeRaces.Inc()
		// Work submitted after Close is dropped, but the completion still
		// fires so the submitter's chain unwinds instead of deadlocking.
		j.run, j.done = nil, nil
		e.jobPool.Put(j)
		if done != nil {
			done()
		}
		e.pending.Done()
		return
	}
	lo := 0
	for i := 0; i < k; i++ {
		n := base
		if i < rem {
			n++
		}
		s := e.spanPool.Get().(*span)
		s.j, s.lo, s.hi = j, lo, lo+n
		lo += n
		e.injPush(s)
	}
	e.injLen.Add(int32(k))
	e.stealable.Add(int64(k))
	e.injMu.Unlock()
	e.wake(k)
}

// injPush appends a span to the injector ring. Caller holds injMu.
func (e *engine) injPush(s *span) {
	if e.injHead > 0 && e.injHead == len(e.inj) {
		// Fully drained: reset in place.
		e.inj = e.inj[:0]
		e.injHead = 0
	} else if e.injHead > cap(e.inj)/2 && e.injHead > 16 {
		// Mostly drained: compact so the backing array is reused instead of
		// growing without bound under chained submissions.
		n := copy(e.inj, e.inj[e.injHead:])
		e.inj = e.inj[:n]
		e.injHead = 0
	}
	e.inj = append(e.inj, s)
}

// takeInjected pops the oldest injected span, or nil.
func (e *engine) takeInjected() *span {
	if e.injLen.Load() == 0 {
		return nil
	}
	e.injMu.Lock()
	if e.injHead == len(e.inj) {
		e.injMu.Unlock()
		return nil
	}
	s := e.inj[e.injHead]
	e.inj[e.injHead] = nil
	e.injHead++
	e.injLen.Add(-1)
	e.stealable.Add(-1)
	e.injMu.Unlock()
	return s
}

// hungry reports whether some worker is looking for work right now — the
// signal that makes an executing worker split its span in half.
func (e *engine) hungry() bool {
	return e.searching.Load() > 0 || e.idle.Load() > 0
}

// wake rouses at most one parked worker, and only when no worker is already
// searching — a searching worker rescans the injector and every deque each
// round, so it will find the new spans itself (throttled wakeup, as in Go's
// and Tokio's schedulers). A woken worker cascades: when it takes a span and
// sees more work queued, it wakes the next one. In the steady state (a
// worker searching, or nobody parked) this is one or two atomic loads.
//
// No wakeup is lost: a parker decrements searching and then re-reads
// stealable/injLen under parkMu before waiting, while a producer publishes
// spans before reading searching/idle; with sequentially consistent
// atomics, either the producer observes the decrement (and signals) or the
// parker observes the spans (and skips the wait).
func (e *engine) wake(n int) {
	if n <= 0 || e.searching.Load() > 0 || e.idle.Load() == 0 {
		return
	}
	e.parkMu.Lock()
	e.parkCond.Signal()
	e.parkMu.Unlock()
}

// close stops the workers. Spans already enqueued keep executing (matching
// the old pool, which drained its channel); work submitted after close is
// aborted by Submit itself. close is idempotent.
func (e *engine) close() {
	e.injMu.Lock()
	if e.closed {
		e.injMu.Unlock()
		return
	}
	e.closed = true
	e.closedFlag.Store(true)
	e.injMu.Unlock()
	e.parkMu.Lock()
	e.parkCond.Broadcast()
	e.parkMu.Unlock()
}

// finishTasks credits n executed (or, on close, dropped) tasks to the job
// and fires its completion when the last range lands.
func (e *engine) finishTasks(j *job, n int) {
	if j.remaining.Add(-int64(n)) == 0 {
		done := j.done
		j.run, j.done = nil, nil
		e.jobPool.Put(j)
		if done != nil {
			done()
		}
		e.pending.Done()
	}
}

// loop is the worker body: pop local work, fall back to the injector, steal,
// spin a few rounds, park. Exits only after close, once every reachable
// source is drained.
func (w *worker) loop() {
	e := w.e
	rounds := 0
	for {
		if s := w.dq.pop(); s != nil {
			e.stealable.Add(-1)
			w.found(&rounds)
			w.runSpan(s)
			continue
		}
		if s := e.takeInjected(); s != nil {
			w.found(&rounds)
			// Cascaded wakeup: more injected spans can use another worker.
			if e.injLen.Load() > 0 {
				e.wake(1)
			}
			w.runSpan(s)
			continue
		}
		if s := w.trySteal(); s != nil {
			w.localSteals++
			w.found(&rounds)
			w.runSpan(s)
			continue
		}
		// Nothing anywhere. Spin a few rounds before sleeping: work often
		// arrives within microseconds when a chain's continuation resubmits.
		if rounds < searchRounds {
			rounds++
			if rounds == 1 {
				e.searching.Add(1)
			}
			runtime.Gosched()
			continue
		}
		if rounds >= 1 {
			e.searching.Add(-1)
		}
		rounds = 0
		w.flushIdle()
		if e.closedFlag.Load() {
			if w.exitIfDrained() {
				return
			}
			continue
		}
		w.park()
	}
}

// found resets the spin state after acquiring work.
func (w *worker) found(rounds *int) {
	if *rounds >= 1 {
		w.e.searching.Add(-1)
	}
	*rounds = 0
	if !w.busy {
		w.busy = true
		w.e.busyWorkers.Add(1)
	}
}

// flushIdle marks the busy→idle transition: the gauge steps down and the
// locally accumulated chunk/steal counts land in the shared counters.
func (w *worker) flushIdle() {
	if !w.busy {
		return
	}
	w.busy = false
	w.e.busyWorkers.Add(-1)
	if w.localChunks > 0 {
		w.e.chunks.Add(w.localChunks)
		w.localChunks = 0
	}
	if w.localSteals > 0 {
		w.e.steals.Add(w.localSteals)
		w.localSteals = 0
	}
}

// exitIfDrained re-checks the injector under its lock before the worker
// exits, so a Submit that enqueued spans moments before close set the flag
// is never stranded. Returns true when the worker should terminate.
func (w *worker) exitIfDrained() bool {
	e := w.e
	e.injMu.Lock()
	drained := e.injHead == len(e.inj)
	e.injMu.Unlock()
	return drained
}

// park blocks until work appears or the engine closes.
func (w *worker) park() {
	e := w.e
	e.parkMu.Lock()
	e.idle.Add(1)
	for e.stealable.Load() == 0 && e.injLen.Load() == 0 && !e.closedFlag.Load() {
		e.parkCond.Wait()
	}
	e.idle.Add(-1)
	e.parkMu.Unlock()
}

// trySteal scans every other worker's deque once, starting at a
// pseudo-random victim.
func (w *worker) trySteal() *span {
	e := w.e
	n := len(e.workers)
	if n == 1 {
		return nil
	}
	off := int(w.nextRand() % uint64(n))
	for i := 0; i < n; i++ {
		v := e.workers[(off+i)%n]
		if v == w {
			continue
		}
		if s := v.dq.steal(); s != nil {
			e.stealable.Add(-1)
			return s
		}
	}
	return nil
}

// nextRand is a xorshift64 step for victim selection.
func (w *worker) nextRand() uint64 {
	x := w.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	w.rng = x
	return x
}

// runSpan executes a span's index range. While peers are hungry the worker
// halves its remaining range, exposing the upper half on its own deque for
// thieves; execution proceeds in bounded quanta so even a span of expensive
// tasks becomes stealable quickly. The span descriptor is recycled
// immediately — the range lives in locals.
func (w *worker) runSpan(s *span) {
	e := w.e
	j, lo, hi := s.j, s.lo, s.hi
	s.j = nil
	e.spanPool.Put(s)
	// j.run is stable while this span holds uncounted tasks (finishTasks
	// clears it only after the last range lands), so load it once.
	run := j.run
	executed := 0
	for lo < hi {
		// Split only while the remainder exceeds the quantum: halves
		// smaller than one quantum cost more in descriptor and deque
		// traffic than a peer could save by stealing them.
		if hi-lo > chunkQuantum && e.hungry() {
			mid := lo + (hi-lo)/2
			half := e.spanPool.Get().(*span)
			half.j, half.lo, half.hi = j, mid, hi
			if w.dq.push(half) {
				e.stealable.Add(1)
				hi = mid
				e.wake(1)
				continue
			}
			// Deque full (pathological): keep the range inline.
			half.j = nil
			e.spanPool.Put(half)
		}
		q := hi - lo
		if q > chunkQuantum {
			q = chunkQuantum
		}
		if run != nil {
			for i := lo; i < lo+q; i++ {
				run(i)
			}
		}
		lo += q
		executed += q
		w.localChunks++
	}
	e.finishTasks(j, executed)
}
