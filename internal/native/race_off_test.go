//go:build !race

package native

const raceEnabled = false
