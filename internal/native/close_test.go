package native

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dcerr"
)

func TestCloseIdempotent(t *testing.T) {
	b, err := New(Config{CPUWorkers: 2, DeviceLanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if b.Closed() {
		t.Error("backend reports closed before Close")
	}
	if err := b.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if !b.Closed() {
		t.Error("backend does not report closed after Close")
	}
	// Subsequent Closes must return the typed error, not deadlock or panic
	// on a double channel close.
	for i := 0; i < 3; i++ {
		if err := b.Close(); !errors.Is(err, dcerr.ErrBackendClosed) {
			t.Fatalf("Close #%d: error %v does not unwrap to ErrBackendClosed", i+2, err)
		}
	}
}

// TestSubmitAfterCloseUnwinds submits directly to a closed pool: the work is
// dropped but the completion callback still fires, so an in-flight chain
// unwinds instead of deadlocking Wait.
func TestSubmitAfterCloseUnwinds(t *testing.T) {
	b, err := New(Config{CPUWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	ran := false
	done := make(chan struct{})
	b.CPU().Submit(core.Batch{
		Tasks: 4,
		Cost:  core.Cost{Ops: 1},
		Run:   func(int) { ran = true },
	}, func() { close(done) })

	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("completion callback never fired on a closed pool")
	}
	if ran {
		t.Error("closed pool still executed the dropped batch")
	}
	waitDone := make(chan struct{})
	go func() { b.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Wait deadlocked after submit-to-closed-pool")
	}
}

// TestCloseRacesSubmit closes the backend while another goroutine floods it
// with batches; under -race this verifies the pool's close/send guard.
func TestCloseRacesSubmit(t *testing.T) {
	b, err := New(Config{CPUWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	flooded := make(chan struct{})
	go func() {
		defer close(flooded)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			fired := make(chan struct{})
			b.CPU().Submit(core.Batch{Tasks: 3, Cost: core.Cost{Ops: 1}, Run: func(int) {}},
				func() { close(fired) })
			<-fired
		}
	}()
	time.Sleep(5 * time.Millisecond)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	select {
	case <-flooded:
	case <-time.After(5 * time.Second):
		t.Fatal("submitter hung after Close: a completion was lost")
	}
}

func TestAutonomous(t *testing.T) {
	b := newBackend(t, Config{CPUWorkers: 1})
	var be core.Backend = b
	a, ok := be.(core.Autonomous)
	if !ok || !a.Autonomous() {
		t.Error("native backend does not report itself Autonomous")
	}
	if _, ok := be.(core.Closer); !ok {
		t.Error("native backend does not implement core.Closer")
	}
}
