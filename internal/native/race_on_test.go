//go:build race

package native

// raceEnabled reports whether the race detector is active. sync.Pool
// deliberately drops items under -race to expose reuse races, so zero-alloc
// assertions cannot hold there.
const raceEnabled = true
