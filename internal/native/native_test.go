package native

import (
	"context"

	"runtime"
	"sort"
	"testing"

	"repro/internal/algos/mergesort"
	"repro/internal/core"
	"repro/internal/workload"
)

func newBackend(t *testing.T, cfg Config) *Backend {
	t.Helper()
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return b
}

func sortedCopy(in []int32) []int32 {
	out := append([]int32(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equal(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{DeviceLanes: -1}); err == nil {
		t.Error("New accepted negative DeviceLanes")
	}
	if _, err := New(Config{Gamma: 1.5}); err == nil {
		t.Error("New accepted Gamma > 1")
	}
	b, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.CPU().Parallelism() != runtime.GOMAXPROCS(0) {
		t.Errorf("default workers = %d, want GOMAXPROCS", b.CPU().Parallelism())
	}
	if b.GPU() != nil {
		t.Error("CPU-only config should have nil GPU")
	}
	if b.GPUGamma() != 0 {
		t.Errorf("CPU-only GPUGamma = %g, want 0", b.GPUGamma())
	}
}

func TestSubmitRunsAllTasks(t *testing.T) {
	b := newBackend(t, Config{CPUWorkers: 4})
	const n = 100_000
	hits := make([]int32, n)
	done := false
	b.CPU().Submit(core.Batch{
		Tasks: n,
		Run:   func(i int) { hits[i]++ },
	}, func() { done = true })
	b.Wait()
	if !done {
		t.Fatal("done callback not invoked")
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("task %d ran %d times", i, h)
		}
	}
}

func TestEmptyBatchCompletesImmediately(t *testing.T) {
	b := newBackend(t, Config{CPUWorkers: 2})
	called := false
	b.CPU().Submit(core.Batch{}, func() { called = true })
	if !called {
		t.Error("empty batch done not called synchronously")
	}
}

func TestChainedSubmissions(t *testing.T) {
	// A long chain of dependent batches must not deadlock the pool.
	b := newBackend(t, Config{CPUWorkers: 2})
	count := 0
	var step func()
	step = func() {
		if count == 500 {
			return
		}
		count++
		b.CPU().Submit(core.Batch{Tasks: 3, Run: func(int) {}}, step)
	}
	step()
	b.Wait()
	if count != 500 {
		t.Fatalf("chain stopped at %d", count)
	}
}

func TestSequentialMergesortNative(t *testing.T) {
	in := workload.Uniform(1<<12, 3)
	b := newBackend(t, Config{CPUWorkers: 4})
	s, err := mergesort.New(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.RunSequentialCtx(context.Background(), b, s); err != nil {
		t.Fatal(err)
	}
	if !equal(s.Result(), sortedCopy(in)) {
		t.Error("native sequential run unsorted")
	}
}

func TestBreadthFirstMergesortNative(t *testing.T) {
	in := workload.Uniform(1<<14, 4)
	b := newBackend(t, Config{CPUWorkers: 4})
	s, err := mergesort.New(in)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.RunBreadthFirstCPUCtx(context.Background(), b, s)
	if err != nil {
		t.Fatal(err)
	}
	if !equal(s.Result(), sortedCopy(in)) {
		t.Error("native breadth-first run unsorted")
	}
	if rep.Seconds <= 0 {
		t.Errorf("nonpositive duration %g", rep.Seconds)
	}
}

func TestAdvancedHybridNative(t *testing.T) {
	// Exercise the full hybrid plan — fork, device pool, transfers, join —
	// on real goroutines with the device pool standing in for the GPU.
	for _, coalesce := range []bool{false, true} {
		in := workload.Uniform(1<<13, 5)
		b := newBackend(t, Config{CPUWorkers: 4, DeviceLanes: 32})
		s, err := mergesort.New(in)
		if err != nil {
			t.Fatal(err)
		}
		prm := advParams{Alpha: 0.25, Y: 6, Split: -1}
		if _, err := core.RunAdvancedHybridCtx(context.Background(), b, s, prm.Alpha, prm.Y,
			append(coalesceOpts(coalesce), core.WithSplit(prm.Split))...); err != nil {
			t.Fatal(err)
		}
		if !equal(s.Result(), sortedCopy(in)) {
			t.Errorf("native advanced hybrid unsorted (coalesce=%v)", coalesce)
		}
	}
}

func TestBasicHybridNative(t *testing.T) {
	in := workload.Uniform(1<<13, 6)
	b := newBackend(t, Config{CPUWorkers: 4, DeviceLanes: 16})
	s, err := mergesort.New(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.RunBasicHybridCtx(context.Background(), b, s, 6, core.WithCoalesce()); err != nil {
		t.Fatal(err)
	}
	if !equal(s.Result(), sortedCopy(in)) {
		t.Error("native basic hybrid unsorted")
	}
}

func TestGPUOnlyNative(t *testing.T) {
	in := workload.Uniform(1<<12, 7)
	b := newBackend(t, Config{CPUWorkers: 2, DeviceLanes: 64})
	s, err := mergesort.NewParallel(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.RunGPUOnlyCtx(context.Background(), b, s); err != nil {
		t.Fatal(err)
	}
	if !equal(s.Result(), sortedCopy(in)) {
		t.Error("native gpu-only unsorted")
	}
}

func TestTransferDelay(t *testing.T) {
	b := newBackend(t, Config{CPUWorkers: 1, DeviceLanes: 1, TransferDelay: 1e6}) // 1ms
	start := b.Now()
	done := false
	b.TransferToGPU(1024, func() { done = true })
	b.Wait()
	if !done {
		t.Fatal("transfer done not called")
	}
	if b.Now()-start < 0.0009 {
		t.Errorf("transfer completed too fast: %gs", b.Now()-start)
	}
}

// advParams groups advanced-division parameters for test tables. It
// replaces the deprecated core.AdvancedParams in test code.
type advParams struct {
	Alpha float64
	Y     int
	Split int
}

// coalesceOpts returns the coalescing option when on, for table-driven
// tests that toggle it.
func coalesceOpts(on bool) []core.Option {
	if on {
		return []core.Option{core.WithCoalesce()}
	}
	return nil
}
