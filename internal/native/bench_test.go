package native

import (
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
)

// benchSubmit measures one Submit+completion round trip of a small batch
// through the backend's CPU executor. The reported allocs/op is the
// satellite contract: the engine's nil-registry path must be 0 allocs/op
// (descriptors are pooled, disabled instruments are nil no-ops), and the
// metrics path must not add per-task cost (counters are batched once per
// Submit, per-worker tallies flushed on idle transitions).
func benchSubmit(b *testing.B, cfg Config) {
	be, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer be.Close()

	fin := make(chan struct{})
	done := func() { fin <- struct{}{} }
	batch := core.Batch{Tasks: 64, Run: func(int) {}}
	// Warm the descriptor pools and the injector ring.
	for i := 0; i < 16; i++ {
		be.CPU().Submit(batch, done)
		<-fin
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		be.CPU().Submit(batch, done)
		<-fin
	}
	b.StopTimer()
	be.Wait()
}

// BenchmarkSubmit is the engine's no-observability baseline: 0 allocs/op.
func BenchmarkSubmit(b *testing.B) {
	benchSubmit(b, Config{CPUWorkers: 2})
}

// BenchmarkSubmitMetrics is Submit with a live registry; compare with
// BenchmarkSubmit to see the cost of enabling metrics.
func BenchmarkSubmitMetrics(b *testing.B) {
	benchSubmit(b, Config{CPUWorkers: 2, Metrics: metrics.NewRegistry()})
}

// BenchmarkSubmitLegacyPool is the pre-rewrite channel fan-out pool, the
// before side of the README's before/after table.
func BenchmarkSubmitLegacyPool(b *testing.B) {
	benchSubmit(b, Config{CPUWorkers: 2, LegacyPool: true})
}
