package native

import (
	"sync"

	"repro/internal/core"
	"repro/internal/metrics"
)

// This file preserves the pre-work-stealing channel fan-out pool, selected
// only by Config.LegacyPool. It exists so `make bench-cpu` can measure the
// old executor against the stealing engine on the same build; nothing else
// should use it. Known deficiencies that motivated the engine (DESIGN.md
// §11): a closure allocation and channel operation per chunk, per-chunk
// busyWorkers gauge traffic, and a full-channel fallback in send that spawns
// one goroutine per overflowing chunk — unbounded under burst.

// pool is a fixed set of workers consuming task chunks.
type pool struct {
	workers int
	tasks   chan func()
	pending *sync.WaitGroup
	// mu guards closed against the channel close: senders hold it shared,
	// close holds it exclusively, so a send never races the close.
	mu     sync.RWMutex
	closed bool
	// Observability instruments; nil (no-op) unless Config.Metrics was set.
	busyWorkers *metrics.Gauge
	chunks      *metrics.Counter
	tasksRun    *metrics.Counter
	closeRaces  *metrics.Counter
}

var _ core.LevelExecutor = (*pool)(nil)

func newPool(workers int, pending *sync.WaitGroup, reg *metrics.Registry, prefix string) *pool {
	p := &pool{
		workers:     workers,
		tasks:       make(chan func(), 4*workers),
		pending:     pending,
		busyWorkers: reg.Gauge(prefix + MetricBusyWorkers),
		chunks:      reg.Counter(prefix + MetricChunks),
		tasksRun:    reg.Counter(prefix + MetricTasks),
		closeRaces:  reg.Counter(MetricSubmitAfterClose),
	}
	for i := 0; i < workers; i++ {
		go func() {
			for f := range p.tasks {
				p.busyWorkers.Add(1)
				f()
				p.busyWorkers.Add(-1)
			}
		}()
	}
	return p
}

func (p *pool) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	close(p.tasks)
}

// send enqueues a chunk, never blocking the caller (which may be a worker
// goroutine running a chained completion). If the pool is or becomes closed
// before the chunk can be enqueued, abort runs instead so the submitter's
// completion accounting still unwinds.
func (p *pool) send(chunk, abort func()) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		p.closeRaces.Inc()
		abort()
		return
	}
	select {
	case p.tasks <- chunk:
	default:
		go func() {
			p.mu.RLock()
			defer p.mu.RUnlock()
			if p.closed {
				p.closeRaces.Inc()
				abort()
				return
			}
			p.tasks <- chunk
		}()
	}
}

// Parallelism implements core.LevelExecutor.
func (p *pool) Parallelism() int { return p.workers }

// Submit implements core.LevelExecutor: the batch is split into one chunk
// per worker (tasks permitting) and done fires after the last chunk.
func (p *pool) Submit(b core.Batch, done func()) {
	if b.Empty() {
		if done != nil {
			done()
		}
		return
	}
	chunks := p.workers
	if b.Tasks < chunks {
		chunks = b.Tasks
	}
	p.chunks.Add(uint64(chunks))
	p.tasksRun.Add(uint64(b.Tasks))
	join := done
	if join == nil {
		join = func() {}
	}
	// The chain's continuation (done) may submit more work, so keep the
	// backend pending until it has run.
	p.pending.Add(chunks)
	finish := core.Join(chunks, func() {
		join()
		// Release the chunks only after the continuation completed, so
		// Wait cannot observe an idle instant mid-chain.
		for i := 0; i < chunks; i++ {
			p.pending.Done()
		}
	})
	base, rem := b.Tasks/chunks, b.Tasks%chunks
	lo := 0
	for i := 0; i < chunks; i++ {
		n := base
		if i < rem {
			n++
		}
		from, to := lo, lo+n
		lo = to
		chunk := func() {
			if b.Run != nil {
				for t := from; t < to; t++ {
					b.Run(t)
				}
			}
			finish()
		}
		// On a closed pool the chunk's work is dropped but finish still
		// runs, so the chain unwinds instead of deadlocking Wait.
		p.send(chunk, finish)
	}
}
