package tune

import (
	"fmt"
	"math"
	"testing"
)

func TestGrainFindsSyntheticOptimum(t *testing.T) {
	// A synthetic makespan curve with its minimum at grain = 16: coarsening
	// saves scheduling overhead up to a point, then kills parallel slack.
	trial := func(grain int) (float64, error) {
		g := float64(grain)
		if g < 1 {
			g = 1
		}
		d := math.Log2(g) - 4 // optimum at 2^4
		return 1 + 0.1*d*d, nil
	}
	res, err := Grain(trial, GrainConfig{Levels: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Grain != 16 {
		t.Errorf("tuned grain = %d, want 16", res.Grain)
	}
	if res.Trials != 11 { // k = 0..10
		t.Errorf("trials = %d, want 11", res.Trials)
	}
}

func TestGrainPrefersPlainWhenCoarseningLoses(t *testing.T) {
	trial := func(grain int) (float64, error) {
		return 1 + float64(grain)*0.01, nil
	}
	res, err := Grain(trial, GrainConfig{Levels: 8, Repeats: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Grain != 0 {
		t.Errorf("tuned grain = %d, want 0 (plain breadth-first)", res.Grain)
	}
	if res.Trials != 18 { // 9 rungs x 2 repeats
		t.Errorf("trials = %d, want 18", res.Trials)
	}
}

func TestGrainPropagatesErrors(t *testing.T) {
	boom := fmt.Errorf("boom")
	trial := func(grain int) (float64, error) { return 0, boom }
	if _, err := Grain(trial, GrainConfig{Levels: 4}); err == nil {
		t.Error("expected trial error to propagate")
	}
	if _, err := Grain(nil, GrainConfig{Levels: 4}); err == nil {
		t.Error("accepted nil trial")
	}
	if _, err := Grain(trial, GrainConfig{}); err == nil {
		t.Error("accepted zero levels")
	}
	if _, err := Grain(func(int) (float64, error) { return 1, nil }, GrainConfig{Levels: 4, Arity: 1}); err == nil {
		t.Error("accepted arity < 2")
	}
}
