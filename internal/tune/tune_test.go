package tune

import (
	"context"

	"fmt"
	"math"
	"testing"

	"repro/internal/algos/mergesort"
	"repro/internal/core"
	"repro/internal/hpu"
	"repro/internal/workload"
)

func TestAdvancedFindsSyntheticOptimum(t *testing.T) {
	// A smooth bowl with minimum at (α=0.22, y=7).
	trial := func(alpha float64, y int) (float64, error) {
		da := alpha - 0.22
		dy := float64(y - 7)
		return 1 + 10*da*da + 0.05*dy*dy, nil
	}
	res, err := Advanced(trial, Config{Levels: 20})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Alpha-0.22) > 0.04 {
		t.Errorf("tuned alpha = %.3f, want ~0.22", res.Alpha)
	}
	if res.Y != 7 {
		t.Errorf("tuned y = %d, want 7", res.Y)
	}
	if res.Trials == 0 || res.Trials > 64 {
		t.Errorf("trials = %d, want in (0, 64]", res.Trials)
	}
}

func TestAdvancedRespectsMaxTrials(t *testing.T) {
	calls := 0
	trial := func(alpha float64, y int) (float64, error) {
		calls++
		return alpha + float64(y), nil
	}
	res, err := Advanced(trial, Config{Levels: 24, MaxTrials: 10})
	if err != nil {
		t.Fatal(err)
	}
	if calls > 10 {
		t.Errorf("trial called %d times, cap was 10", calls)
	}
	if res.Trials != calls {
		t.Errorf("Trials = %d, want %d", res.Trials, calls)
	}
}

func TestAdvancedPropagatesErrors(t *testing.T) {
	boom := fmt.Errorf("boom")
	trial := func(alpha float64, y int) (float64, error) { return 0, boom }
	if _, err := Advanced(trial, Config{Levels: 8}); err == nil {
		t.Error("expected trial error to propagate")
	}
	if _, err := Advanced(nil, Config{Levels: 8}); err == nil {
		t.Error("accepted nil trial")
	}
	if _, err := Advanced(trial, Config{}); err == nil {
		t.Error("accepted zero levels")
	}
}

// TestTuneMergesortBeatsModelParams runs the empirical tuner against the
// simulator and checks it is at least as good as the closed-form model's
// parameters — the situation of Fig 10, where measured optima drift from
// predictions at sizes with cache effects.
func TestTuneMergesortBeatsModelParams(t *testing.T) {
	const logN = 16
	pl := hpu.HPU1()
	in := workload.Uniform(1<<logN, 4)

	runOnce := func(alpha float64, y int) (float64, error) {
		be, err := hpu.NewSim(pl)
		if err != nil {
			return 0, err
		}
		s, err := mergesort.New(in)
		if err != nil {
			return 0, err
		}
		rep, err := core.RunAdvancedHybridCtx(context.Background(), be, s, alpha, y, core.WithCoalesce())
		if err != nil {
			return 0, err
		}
		if !workload.IsSorted(s.Result()) {
			return 0, fmt.Errorf("unsorted output")
		}
		return rep.Seconds, nil
	}

	res, err := Advanced(runOnce, Config{Levels: logN})
	if err != nil {
		t.Fatal(err)
	}
	// Compare against the model's choice.
	modelSecs, err := runOnce(0.172, 9) // Poly optimum for 2^16-ish
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds > modelSecs*1.02 {
		t.Errorf("tuned %.5fs worse than model params %.5fs", res.Seconds, modelSecs)
	}
	if res.Alpha <= 0 || res.Alpha >= 1 {
		t.Errorf("tuned alpha %.3f out of range", res.Alpha)
	}
}
