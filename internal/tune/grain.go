package tune

import (
	"fmt"
	"math"
)

// GrainTrial runs one configuration with the given leaf-coarsening grain
// (core.WithGrain semantics: 0 disables coarsening, n > 1 collapses the
// bottom ⌊log_a(n)⌋ levels) and returns its makespan in seconds.
type GrainTrial func(grain int) (float64, error)

// GrainConfig bounds the grain search.
type GrainConfig struct {
	// Arity is the algorithm's branching factor a; candidate grains are the
	// subtree sizes a^k. Defaults to 2.
	Arity int
	// Levels is the instance's recursion depth L; k is searched in [0, L].
	Levels int
	// Repeats is how many trials to run per candidate, keeping the minimum
	// (wall-clock noise rejection). Defaults to 1.
	Repeats int
}

// GrainResult reports the search outcome.
type GrainResult struct {
	// Grain is the best grain found: 0 when plain breadth-first execution
	// won, otherwise a^k for the best k.
	Grain int
	// Seconds is the best observed makespan.
	Seconds float64
	// Trials is the number of trial runs executed.
	Trials int
}

// Grain searches the power-of-a grain ladder for the coarsening that
// minimizes the trial makespan. It is the empirical counterpart of
// core.GrainAuto: auto picks the largest grain preserving parallel slack
// without running anything, while Grain measures each rung — use it when
// the per-task cost structure is unusual enough that the slack heuristic
// may not be optimal (e.g. cache cliffs, Fig 10 of the paper).
func Grain(trial GrainTrial, cfg GrainConfig) (GrainResult, error) {
	if trial == nil {
		return GrainResult{}, fmt.Errorf("tune: nil trial function")
	}
	if cfg.Levels < 1 {
		return GrainResult{}, fmt.Errorf("tune: Levels must be >= 1, got %d", cfg.Levels)
	}
	if cfg.Arity == 0 {
		cfg.Arity = 2
	}
	if cfg.Arity < 2 {
		return GrainResult{}, fmt.Errorf("tune: Arity must be >= 2, got %d", cfg.Arity)
	}
	if cfg.Repeats < 1 {
		cfg.Repeats = 1
	}

	best := GrainResult{Seconds: math.Inf(1)}
	grain := 0 // k = 0: plain breadth-first
	for k := 0; k <= cfg.Levels; k++ {
		s := math.Inf(1)
		for r := 0; r < cfg.Repeats; r++ {
			v, err := trial(grain)
			if err != nil {
				return GrainResult{}, err
			}
			best.Trials++
			if v < s {
				s = v
			}
		}
		if s < best.Seconds {
			best.Seconds = s
			best.Grain = grain
		}
		if grain == 0 {
			grain = cfg.Arity
		} else {
			next := grain * cfg.Arity
			if next/cfg.Arity != grain { // overflow guard
				break
			}
			grain = next
		}
	}
	if math.IsInf(best.Seconds, 1) {
		return GrainResult{}, fmt.Errorf("tune: no successful trials")
	}
	return best, nil
}
