// Package tune finds the advanced division's (α, y) parameters empirically,
// the "determined experimentally for each particular application" path of
// the paper's §7: run trials, keep the best, refine locally. It complements
// the analytic model (internal/model), which the paper shows gets close but
// not exact — especially at sizes where cache effects bite (Fig 10).
package tune

import (
	"fmt"
	"math"
)

// Trial runs one configuration and returns its makespan in seconds. The
// caller decides what a trial is: a simulated run, a native run, or even a
// model evaluation.
type Trial func(alpha float64, y int) (float64, error)

// Config bounds the search.
type Config struct {
	// Levels is the instance's recursion depth L; y is searched in [0, L].
	Levels int
	// AlphaGrid is the coarse seed grid (defaults to 0.05..0.5).
	AlphaGrid []float64
	// YGrid is the coarse transfer-level grid (defaults to a spread over
	// [0, Levels]).
	YGrid []int
	// RefineRounds of local α bisection around the incumbent (default 4).
	RefineRounds int
	// MaxTrials caps the total number of trial runs (default 64).
	MaxTrials int
}

// Result reports the search outcome.
type Result struct {
	Alpha   float64
	Y       int
	Seconds float64
	// Trials is the number of configurations evaluated.
	Trials int
}

// Advanced searches for the (α, y) minimizing the trial makespan.
func Advanced(trial Trial, cfg Config) (Result, error) {
	if trial == nil {
		return Result{}, fmt.Errorf("tune: nil trial function")
	}
	if cfg.Levels < 1 {
		return Result{}, fmt.Errorf("tune: Levels must be >= 1, got %d", cfg.Levels)
	}
	if len(cfg.AlphaGrid) == 0 {
		cfg.AlphaGrid = []float64{0.05, 0.1, 0.16, 0.25, 0.4, 0.5}
	}
	if len(cfg.YGrid) == 0 {
		step := cfg.Levels / 6
		if step < 1 {
			step = 1
		}
		for y := 0; y <= cfg.Levels; y += step {
			cfg.YGrid = append(cfg.YGrid, y)
		}
	}
	if cfg.RefineRounds == 0 {
		cfg.RefineRounds = 4
	}
	if cfg.MaxTrials == 0 {
		cfg.MaxTrials = 64
	}

	best := Result{Seconds: math.Inf(1)}
	cache := map[[2]int]float64{} // (α in 1e-4 units, y) → seconds
	run := func(alpha float64, y int) (float64, error) {
		if alpha < 0 {
			alpha = 0
		}
		if alpha > 1 {
			alpha = 1
		}
		if y < 0 {
			y = 0
		}
		if y > cfg.Levels {
			y = cfg.Levels
		}
		key := [2]int{int(alpha * 1e4), y}
		if s, ok := cache[key]; ok {
			return s, nil
		}
		if best.Trials >= cfg.MaxTrials {
			return math.Inf(1), nil
		}
		s, err := trial(alpha, y)
		if err != nil {
			return 0, err
		}
		best.Trials++
		cache[key] = s
		if s < best.Seconds {
			best.Seconds = s
			best.Alpha = alpha
			best.Y = y
		}
		return s, nil
	}

	// Coarse grid.
	for _, alpha := range cfg.AlphaGrid {
		for _, y := range cfg.YGrid {
			if _, err := run(alpha, y); err != nil {
				return Result{}, err
			}
		}
	}
	// Local refinement: bisect α around the incumbent and probe adjacent
	// transfer levels.
	width := 0.1
	for round := 0; round < cfg.RefineRounds; round++ {
		a0, y0 := best.Alpha, best.Y
		for _, alpha := range []float64{a0 - width, a0 + width} {
			for _, y := range []int{y0 - 1, y0, y0 + 1} {
				if _, err := run(alpha, y); err != nil {
					return Result{}, err
				}
			}
		}
		width /= 2
	}
	if math.IsInf(best.Seconds, 1) {
		return Result{}, fmt.Errorf("tune: no successful trials")
	}
	return best, nil
}
