package autotune

import (
	"sync"

	"repro/internal/core"
)

// Meter is a per-run backend wrapper measuring the raw material of an
// Observation: busy seconds per side and the link's bytes and seconds. It
// is the calibrator's tap on the signals the executors already emit —
// batch completion timing and transfer sizes — composed by the serving
// layer inside the per-attempt backend wrapper (outermost, so it accounts
// the attempt exactly as driven). The mutex is required because a native
// backend completes batches on many goroutines.
type Meter struct {
	inner core.Backend
	cpu   *meterExec
	gpu   *meterExec

	mu        sync.Mutex
	xferBytes int64
	xferSec   float64
	xferN     int
}

var _ core.Backend = (*Meter)(nil)

// NewMeter wraps be for one attempt's measurement.
func NewMeter(be core.Backend) *Meter {
	m := &Meter{inner: be}
	m.cpu = &meterExec{m: m, inner: be.CPU()}
	if g := be.GPU(); g != nil {
		m.gpu = &meterExec{m: m, inner: g}
	}
	return m
}

// Sample is the meter's aggregated measurement.
type Sample struct {
	CPUSeconds, GPUSeconds float64
	TransferBytes          int64
	TransferSeconds        float64
	Transfers              int
	CPUBatches, GPUBatches int
}

// Snapshot returns the accumulated measurement.
func (m *Meter) Snapshot() Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Sample{TransferBytes: m.xferBytes, TransferSeconds: m.xferSec, Transfers: m.xferN}
	s.CPUSeconds, s.CPUBatches = m.cpu.sec, m.cpu.n
	if m.gpu != nil {
		s.GPUSeconds, s.GPUBatches = m.gpu.sec, m.gpu.n
	}
	return s
}

// Empty reports that the meter saw no work — the attempt bypassed it (a
// job's own backend wrapper replaced the server's), so there is nothing to
// calibrate from.
func (m *Meter) Empty() bool {
	s := m.Snapshot()
	return s.CPUBatches == 0 && s.GPUBatches == 0 && s.Transfers == 0
}

// CPU implements core.Backend.
func (m *Meter) CPU() core.LevelExecutor { return m.cpu }

// GPU implements core.Backend.
func (m *Meter) GPU() core.LevelExecutor {
	if m.gpu == nil {
		return nil
	}
	return m.gpu
}

// GPUGamma implements core.Backend.
func (m *Meter) GPUGamma() float64 { return m.inner.GPUGamma() }

// TransferToGPU implements core.Backend.
func (m *Meter) TransferToGPU(n int64, done func()) {
	start := m.inner.Now()
	m.inner.TransferToGPU(n, func() {
		m.record(n, m.inner.Now()-start)
		if done != nil {
			done()
		}
	})
}

// TransferToCPU implements core.Backend.
func (m *Meter) TransferToCPU(n int64, done func()) {
	start := m.inner.Now()
	m.inner.TransferToCPU(n, func() {
		m.record(n, m.inner.Now()-start)
		if done != nil {
			done()
		}
	})
}

func (m *Meter) record(n int64, secs float64) {
	m.mu.Lock()
	m.xferBytes += n
	m.xferSec += secs
	m.xferN++
	m.mu.Unlock()
}

// Now implements core.Backend.
func (m *Meter) Now() float64 { return m.inner.Now() }

// Wait implements core.Backend.
func (m *Meter) Wait() { m.inner.Wait() }

// Unwrap implements core.Unwrapper so capability probes (segment
// allocation) reach the wrapped backend.
func (m *Meter) Unwrap() core.Backend { return m.inner }

// Autonomous forwards the wrapped backend's marker.
func (m *Meter) Autonomous() bool {
	a, ok := m.inner.(core.Autonomous)
	return ok && a.Autonomous()
}

// Closed forwards the wrapped backend's Closer state.
func (m *Meter) Closed() bool {
	c, ok := m.inner.(core.Closer)
	return ok && c.Closed()
}

// Fault forwards the wrapped backend's Faulter state, so a device fault
// recorded beneath the meter still reaches the executor's settlement.
func (m *Meter) Fault() error {
	if f, ok := m.inner.(core.Faulter); ok {
		return f.Fault()
	}
	return nil
}

// meterExec accounts one side's batch completions.
type meterExec struct {
	m     *Meter
	inner core.LevelExecutor
	sec   float64 // guarded by m.mu
	n     int     // guarded by m.mu
}

var _ core.LevelExecutor = (*meterExec)(nil)

// Parallelism implements core.LevelExecutor.
func (e *meterExec) Parallelism() int { return e.inner.Parallelism() }

// Submit implements core.LevelExecutor.
func (e *meterExec) Submit(b core.Batch, done func()) {
	if b.Empty() {
		if done != nil {
			done()
		}
		return
	}
	start := e.m.inner.Now()
	e.inner.Submit(b, func() {
		d := e.m.inner.Now() - start
		e.m.mu.Lock()
		e.sec += d
		e.n++
		e.m.mu.Unlock()
		if done != nil {
			done()
		}
	})
}
