package autotune

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"

	"repro/internal/dcerr"
	"repro/internal/metrics"
)

// Metric names exported when AttachMetrics is configured. The decisions
// counter is per chosen strategy (the registry is flat, so the strategy
// label folds into the name with dashes mapped to underscores).
const (
	// MetricRefits counts calibration refits (observations that updated a
	// rate or the link fit) across all devices.
	MetricRefits = "autotune_refits_total"
	// MetricDecisionsFmt counts auto decisions by chosen strategy; the %s is
	// the strategy name with "-" replaced by "_".
	MetricDecisionsFmt = "autotune_decisions_total_%s"
	// MetricModelRMSE is the decayed root-mean-square relative error of the
	// calibrated model's makespan predictions (worst device).
	MetricModelRMSE = "autotune_model_rmse"
)

// Tuner is the serving layer's auto-strategy brain: one Calibration per
// pool device (calibration is keyed like the breaker state — per device,
// because devices age and heal independently), plus the metric plumbing.
// Safe for concurrent use.
type Tuner struct {
	mu       sync.Mutex
	minObs   int
	decay    float64
	devs     map[int]*Calibration
	reg      *metrics.Registry
	mRefits  *metrics.Counter
	mRMSE    *metrics.Float
	mChoices map[string]*metrics.Counter
	lastRMSE float64
}

// TunerOption configures NewTuner.
type TunerOption func(*Tuner)

// WithMinObservations sets how many observations a (algorithm, size-class)
// bucket needs before fitted rates replace the cold-start analytic model.
func WithMinObservations(k int) TunerOption {
	return func(t *Tuner) { t.minObs = k }
}

// WithDecay sets the EWMA retention per observation (0 < d < 1).
func WithDecay(d float64) TunerOption {
	return func(t *Tuner) { t.decay = d }
}

// NewTuner builds an empty tuner.
func NewTuner(opts ...TunerOption) *Tuner {
	t := &Tuner{devs: map[int]*Calibration{}}
	for _, o := range opts {
		if o != nil {
			o(t)
		}
	}
	return t
}

// AttachMetrics directs the tuner's instruments into reg (idempotent; the
// first registry wins, so a server attaching its registry does not clobber
// one the caller already attached).
func (t *Tuner) AttachMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.reg != nil {
		return
	}
	t.reg = reg
	t.mRefits = reg.Counter(MetricRefits)
	t.mRMSE = reg.Float(MetricModelRMSE)
	t.mChoices = map[string]*metrics.Counter{}
}

// ForDevice returns (creating) the device's calibration.
func (t *Tuner) ForDevice(id int) *Calibration {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.devs[id]
	if !ok {
		c = NewCalibration(t.minObs, t.decay)
		t.devs[id] = c
	}
	return c
}

// Observe feeds one finished run on a device into its calibration and
// updates the refit counter and model-error gauge.
func (t *Tuner) Observe(dev int, obs Observation) {
	c := t.ForDevice(dev)
	if !c.Observe(obs) {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.mRefits.Inc()
	if t.mRMSE == nil {
		return
	}
	// The Float is add-only; gauge semantics are emulated by pushing the
	// delta from the last exported value (the fusion-ratio pattern). The
	// exported value is the worst RMSE across devices.
	worst := 0.0
	for _, dc := range t.devs {
		if r := dc.RMSE(); r > worst {
			worst = r
		}
	}
	t.mRMSE.Add(worst - t.lastRMSE)
	t.lastRMSE = worst
}

// Decide prices the job against the device's calibration and counts the
// chosen strategy.
func (t *Tuner) Decide(dev int, sp Spec) (Decision, error) {
	dec, err := t.ForDevice(dev).Decide(sp)
	if err != nil {
		return dec, err
	}
	t.mu.Lock()
	if t.mChoices != nil {
		ctr, ok := t.mChoices[dec.Strategy]
		if !ok {
			name := fmt.Sprintf(MetricDecisionsFmt, strings.ReplaceAll(dec.Strategy, "-", "_"))
			ctr = t.reg.Counter(name)
			t.mChoices[dec.Strategy] = ctr
		}
		ctr.Inc()
	}
	t.mu.Unlock()
	return dec, nil
}

// tunerJSON is the tuner's persistence schema: every device's calibration.
type tunerJSON struct {
	Version int                        `json:"version"`
	Devices map[string]json.RawMessage `json:"devices"`
}

// MarshalJSON snapshots every device's calibration.
func (t *Tuner) MarshalJSON() ([]byte, error) {
	t.mu.Lock()
	devs := make(map[int]*Calibration, len(t.devs))
	for id, c := range t.devs {
		devs[id] = c
	}
	t.mu.Unlock()
	out := tunerJSON{Version: 1, Devices: map[string]json.RawMessage{}}
	for id, c := range devs {
		raw, err := c.MarshalJSON()
		if err != nil {
			return nil, err
		}
		out.Devices[fmt.Sprintf("%d", id)] = raw
	}
	return json.Marshal(out)
}

// LoadTuner restores a tuner persisted with MarshalJSON, so a warm restart
// skips every device's cold start.
func LoadTuner(data []byte, opts ...TunerOption) (*Tuner, error) {
	var in tunerJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("autotune: load tuner: %w (%w)", dcerr.ErrBadParam, err)
	}
	if in.Version != 1 {
		return nil, fmt.Errorf("autotune: tuner version %d: %w", in.Version, dcerr.ErrBadParam)
	}
	t := NewTuner(opts...)
	for key, raw := range in.Devices {
		var id int
		if _, err := fmt.Sscanf(key, "%d", &id); err != nil {
			return nil, fmt.Errorf("autotune: tuner device key %q: %w", key, dcerr.ErrBadParam)
		}
		c, err := Load(raw)
		if err != nil {
			return nil, err
		}
		t.devs[id] = c
	}
	return t, nil
}
