package autotune_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/autotune"
	"repro/internal/dcerr"
	"repro/internal/metrics"
	"repro/internal/model"
)

// testSpec builds a mergesort-shaped pricing spec (f(s)=2s, leaf 0, binary
// recurrence) for n elements on an HPU1-like machine.
func testSpec(n int, hasGPU bool) autotune.Spec {
	levels := 0
	for s := n; s > 1; s >>= 1 {
		levels++
	}
	return autotune.Spec{
		Alg: "mergesort", N: n,
		A: 2, B: 2, Levels: levels,
		F:    func(s float64) float64 { return 2 * s },
		Leaf: 0,
		P:    4, G: 4096, Gamma: 1.0 / 160,
		Bytes: int64(4 * n), HasGPU: hasGPU,
	}
}

func TestSizeClass(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {1023, 9}, {1024, 10},
	} {
		if got := autotune.SizeClass(tc.n); got != tc.want {
			t.Errorf("SizeClass(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// TestColdStartMatchesAnalytic pins the fallback rule: with no observations
// the decision is uncalibrated and its bf-cpu price is exactly the paper's
// analytic §5 prediction (tcpu = 1, no link term).
func TestColdStartMatchesAnalytic(t *testing.T) {
	c := autotune.NewCalibration(0, 0)
	sp := testSpec(1<<12, true)
	dec, err := c.Decide(sp)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Calibrated {
		t.Fatal("cold-start decision reported calibrated")
	}
	num, err := model.NewNumeric(sp.A, sp.B, sp.Levels, sp.F, sp.Leaf,
		model.Machine{P: sp.P, G: sp.G, Gamma: sp.Gamma})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := dec.Costs[autotune.ChoiceCPU], num.PredictBreadthFirstCPU(); got != want {
		t.Errorf("cold-start bf-cpu cost %g, want analytic %g", got, want)
	}
	if got, want := dec.Costs[autotune.ChoiceGPUOnly], num.PredictGPUOnly(); got != want {
		t.Errorf("cold-start gpu-only cost %g, want analytic %g (no link term)", got, want)
	}
}

// TestDecisionArgmin is the pricing invariant: for random calibration
// states, the chosen strategy's cost is the minimum over every priced
// strategy, and Predicted equals that cost.
func TestDecisionArgmin(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := autotune.NewCalibration(0, 0)
		sp := testSpec(1<<uint(8+rng.Intn(10)), true)
		for i := 0; i < 2+rng.Intn(10); i++ {
			c.Observe(autotune.Observation{
				Alg: sp.Alg, N: sp.N,
				ModelCPUUnits: 1 + rng.Float64(), CPUSeconds: 0.5 + rng.Float64(),
				ModelGPUUnits: 1 + rng.Float64(), GPUSeconds: 0.5 + rng.Float64(),
				TransferBytes: int64(1 + rng.Intn(1<<20)), TransferSeconds: rng.Float64() / 100,
				Transfers: 1 + rng.Intn(4),
				Seconds:   1,
			})
		}
		dec, err := c.Decide(sp)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Costs[dec.Strategy] != dec.Predicted {
			t.Fatalf("seed %d: Predicted %g != Costs[%s] %g",
				seed, dec.Predicted, dec.Strategy, dec.Costs[dec.Strategy])
		}
		for name, cost := range dec.Costs {
			if cost < dec.Predicted {
				t.Errorf("seed %d: rejected %s cost %g beats chosen %s cost %g",
					seed, name, cost, dec.Strategy, dec.Predicted)
			}
		}
	}
}

// TestCalibrationShiftsDecision drives the rates far enough apart that the
// calibrated argmin flips away from the analytic choice: a GPU measured
// 1000x slower than modeled must push the decision to the CPU path.
func TestCalibrationShiftsDecision(t *testing.T) {
	c := autotune.NewCalibration(2, 0.5)
	sp := testSpec(1<<14, true)
	cold, err := c.Decide(sp)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Strategy == autotune.ChoiceCPU {
		t.Skip("analytic model already prefers CPU at this size; pick a larger N")
	}
	for i := 0; i < 4; i++ {
		c.Observe(autotune.Observation{
			Alg: sp.Alg, N: sp.N,
			ModelCPUUnits: 100, CPUSeconds: 100, // tcpu = 1
			ModelGPUUnits: 100, GPUSeconds: 100_000, // tgpu = 1000
			Seconds: 1,
		})
	}
	warm, err := c.Decide(sp)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Calibrated {
		t.Fatal("decision still uncalibrated after minObs observations on both sides")
	}
	if warm.Strategy != autotune.ChoiceCPU {
		t.Errorf("with a 1000x-slow GPU the argmin is %s, want %s (costs %v)",
			warm.Strategy, autotune.ChoiceCPU, warm.Costs)
	}
}

// TestLinkFitRecovers pins the decayed least-squares transfer model: samples
// drawn from seconds = λ + δ·bytes must recover λ and δ closely enough that
// the gpu-only price carries the round-trip link term.
func TestLinkFitRecovers(t *testing.T) {
	const lambda, delta = 6e-5, 1.0 / 3e9
	c := autotune.NewCalibration(2, 0.5)
	sp := testSpec(1<<16, true)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 16; i++ {
		bytes := int64(1<<12 + rng.Intn(1<<22))
		c.Observe(autotune.Observation{
			Alg: sp.Alg, N: sp.N,
			ModelCPUUnits: 100, CPUSeconds: 100,
			ModelGPUUnits: 100, GPUSeconds: 100,
			TransferBytes: bytes, TransferSeconds: lambda + delta*float64(bytes),
			Transfers: 1, Seconds: 1,
		})
	}
	dec, err := c.Decide(sp)
	if err != nil {
		t.Fatal(err)
	}
	num, err := model.NewNumeric(sp.A, sp.B, sp.Levels, sp.F, sp.Leaf,
		model.Machine{P: sp.P, G: sp.G, Gamma: sp.Gamma})
	if err != nil {
		t.Fatal(err)
	}
	// tgpu fitted to 1, so the gpu-only price is analytic + 2(λ+δB).
	want := num.PredictGPUOnly() + 2*(lambda+delta*float64(sp.Bytes))
	got := dec.Costs[autotune.ChoiceGPUOnly]
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("gpu-only price %g, want %g ±5%% (link fit off)", got, want)
	}
}

// TestMarshalLoadRoundTrip pins the persistence format: a restored
// calibration reproduces the original's decision exactly, including the
// calibrated flag — the warm-restart contract.
func TestMarshalLoadRoundTrip(t *testing.T) {
	c := autotune.NewCalibration(2, 0.6)
	sp := testSpec(1<<12, true)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 6; i++ {
		c.Observe(autotune.Observation{
			Alg: sp.Alg, N: sp.N,
			ModelCPUUnits: 1 + rng.Float64(), CPUSeconds: 1 + rng.Float64(),
			ModelGPUUnits: 1 + rng.Float64(), GPUSeconds: 1 + rng.Float64(),
			TransferBytes: int64(1 << 16), TransferSeconds: 1e-4,
			Transfers: 2, Seconds: 1, PredictedSeconds: 1.1,
		})
	}
	raw, err := c.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := autotune.Load(raw)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := c.Decide(sp)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := c2.Decide(sp)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Strategy != d2.Strategy || d1.Calibrated != d2.Calibrated ||
		d1.Predicted != d2.Predicted {
		t.Fatalf("round trip changed the decision: %+v vs %+v", d1, d2)
	}
	for name, cost := range d1.Costs {
		if d2.Costs[name] != cost {
			t.Errorf("round trip changed %s cost: %g vs %g", name, cost, d2.Costs[name])
		}
	}
	if got, want := c2.RMSE(), c.RMSE(); got != want {
		t.Errorf("round trip changed RMSE: %g vs %g", got, want)
	}
	if _, err := autotune.Load([]byte(`{"version":9}`)); !errors.Is(err, dcerr.ErrBadParam) {
		t.Errorf("unknown version error %v, want ErrBadParam", err)
	}
}

// TestTunerPerDeviceAndMetrics pins the per-device isolation (calibrating
// device 0 leaves device 1 cold) and the metric plumbing.
func TestTunerPerDeviceAndMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	tn := autotune.NewTuner(autotune.WithMinObservations(2), autotune.WithDecay(0.5))
	tn.AttachMetrics(reg)
	sp := testSpec(1<<12, true)
	for i := 0; i < 4; i++ {
		tn.Observe(0, autotune.Observation{
			Alg: sp.Alg, N: sp.N,
			ModelCPUUnits: 1, CPUSeconds: 1,
			ModelGPUUnits: 1, GPUSeconds: 1,
			Seconds: 1,
		})
	}
	d0, err := tn.Decide(0, sp)
	if err != nil {
		t.Fatal(err)
	}
	if !d0.Calibrated {
		t.Error("device 0 still cold after 4 observations")
	}
	d1, err := tn.Decide(1, sp)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Calibrated {
		t.Error("device 1 calibrated without any observation (state leaked across devices)")
	}
	snap := reg.Snapshot()
	if got := snap.Counters[autotune.MetricRefits]; got != 4 {
		t.Errorf("%s = %d, want 4", autotune.MetricRefits, got)
	}

	raw, err := tn.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	tn2, err := autotune.LoadTuner(raw)
	if err != nil {
		t.Fatal(err)
	}
	r0, err := tn2.Decide(0, sp)
	if err != nil {
		t.Fatal(err)
	}
	if r0.Strategy != d0.Strategy || r0.Calibrated != d0.Calibrated {
		t.Errorf("tuner round trip changed device 0 decision: %+v vs %+v", r0, d0)
	}
}

// TestUnitsForRejectsUnknown pins the error taxonomy.
func TestUnitsForRejectsUnknown(t *testing.T) {
	if _, _, err := autotune.UnitsFor(testSpec(1<<10, true), "warp-drive", 0, 0, 0); !errors.Is(err, dcerr.ErrBadParam) {
		t.Errorf("unknown strategy error %v, want ErrBadParam", err)
	}
}
