// Package autotune closes the loop from observability back into scheduling:
// an online calibrator that ingests the per-level span timings and
// transfer-byte meters the executors already emit, continuously refits the
// platform model's per-algorithm cost parameters, and at dispatch time
// prices every executable strategy for a job's N and picks the argmin.
//
// The paper's §5 model predicts makespans in abstract cost units under the
// (p, g, γ) machine triple; real platforms deviate from it by per-unit
// throughput factors (how many model units one second of CPU or GPU time
// buys) and by the link cost the model deliberately ignores (§3.2). The
// calibrator learns exactly those residuals:
//
//   - tcpu, tgpu — seconds per model unit, per (algorithm, size-class),
//     EWMA-smoothed over recent jobs;
//   - λ, δ — the per-transfer latency and per-byte time of the host↔device
//     link, fitted by decayed least squares over observed transfers.
//
// A calibrated decision prices bf-cpu, gpu-only, every basic-hybrid
// crossover x and an (α, y) grid of advanced-hybrid divisions, so the
// serving layer's Strategy Auto selects the division the paper's §6 sweeps
// found by hand. Until a size class has MinObs observations the rates fall
// back to the uncalibrated analytic model (tcpu = tgpu = 1, no link cost),
// which reduces the decision to the static §5 heuristic.
//
// Calibration state serializes with MarshalJSON and restores with Load, so
// a warm restart skips the cold start. DESIGN.md §16.
package autotune

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"

	"repro/internal/dcerr"
	"repro/internal/model"
)

// Strategy names a decision can choose, matching serve.Strategy.String().
const (
	ChoiceCPU      = "bf-cpu"
	ChoiceGPUOnly  = "gpu-only"
	ChoiceBasic    = "basic-hybrid"
	ChoiceAdvanced = "advanced-hybrid"
)

// Key identifies one calibration bucket: an algorithm at a size class
// (log2 of N), the granularity at which per-unit rates are tracked.
type Key struct {
	Alg       string `json:"alg"`
	SizeClass int    `json:"size_class"`
}

// SizeClass buckets an input size: ⌊log2(n)⌋, 0 for n < 2.
func SizeClass(n int) int {
	c := 0
	for n > 1 {
		n >>= 1
		c++
	}
	return c
}

// entry is one bucket's fitted per-unit rates.
type entry struct {
	// TCPU and TGPU are EWMA seconds per model unit on each side.
	TCPU float64 `json:"tcpu"`
	TGPU float64 `json:"tgpu"`
	// CPUObs and GPUObs count observations that updated each rate.
	CPUObs int `json:"cpu_obs"`
	GPUObs int `json:"gpu_obs"`
}

// linkFit is the decayed least-squares state for the transfer model
// seconds = λ + δ·bytes, over per-transfer averages.
type linkFit struct {
	Sw, Sx, Sy, Sxx, Sxy float64
	Lambda, Delta        float64
	Obs                  int
}

// observe folds one (bytes, seconds) per-transfer sample into the fit.
func (l *linkFit) observe(decay, bytes, secs float64) {
	l.Sw = decay*l.Sw + 1
	l.Sx = decay*l.Sx + bytes
	l.Sy = decay*l.Sy + secs
	l.Sxx = decay*l.Sxx + bytes*bytes
	l.Sxy = decay*l.Sxy + bytes*secs
	l.Obs++
	den := l.Sw*l.Sxx - l.Sx*l.Sx
	if den > 1e-12*l.Sxx {
		l.Delta = (l.Sw*l.Sxy - l.Sx*l.Sy) / den
	}
	// Degenerate spread (all transfers the same size): keep the existing
	// slope and fit only the intercept through the decayed means.
	if l.Sw > 0 {
		l.Lambda = (l.Sy - l.Delta*l.Sx) / l.Sw
	}
	if l.Delta < 0 {
		l.Delta = 0
		if l.Sw > 0 {
			l.Lambda = l.Sy / l.Sw
		}
	}
	if l.Lambda < 0 {
		l.Lambda = 0
	}
}

// Observation is one finished run's measured profile, fed to Observe. The
// model-unit fields are computed by UnitsFor from the strategy the run
// actually executed.
type Observation struct {
	// Alg and N identify the calibration bucket.
	Alg string
	N   int
	// ModelCPUUnits and ModelGPUUnits are the run's predicted unit times on
	// each side under the machine triple (0 when the side was unused).
	ModelCPUUnits float64
	ModelGPUUnits float64
	// CPUSeconds and GPUSeconds are the measured busy times on each side.
	CPUSeconds float64
	GPUSeconds float64
	// TransferBytes, TransferSeconds and Transfers aggregate the run's
	// host↔device link activity.
	TransferBytes   int64
	TransferSeconds float64
	Transfers       int
	// PredictedSeconds is the decision's calibrated makespan prediction for
	// this run (0 when the run was not auto-placed), used for the model-error
	// gauge; Seconds is the measured makespan.
	PredictedSeconds float64
	Seconds          float64
}

// Decision is a priced strategy choice for one job.
type Decision struct {
	// Strategy is the argmin choice (one of the Choice names); Crossover,
	// Alpha and Y are its parameters where applicable.
	Strategy  string
	Crossover int
	Alpha     float64
	Y         int
	// Costs maps every priced strategy to its calibrated predicted seconds
	// (model units when uncalibrated); Predicted is Costs[Strategy].
	Costs     map[string]float64
	Predicted float64
	// Calibrated reports whether fitted rates (vs the cold-start analytic
	// model) produced this decision.
	Calibrated bool
}

// Spec describes one job for pricing: the algorithm's recurrence and cost
// hooks plus the device's machine triple.
type Spec struct {
	// Alg is the calibration bucket name; N the input size.
	Alg string
	N   int
	// A, B, Levels, F, Leaf are the model inputs (Alg.Arity, Alg.Shrink,
	// Alg.Levels, ModelF, ModelLeaf).
	A, B, Levels int
	F            func(float64) float64
	Leaf         float64
	// P, G, Gamma are the device's machine triple.
	P, G  int
	Gamma float64
	// Bytes is the whole-instance transfer size (GPUAlg.GPUBytes of the full
	// input); HasGPU gates the device-path strategies.
	Bytes  int64
	HasGPU bool
}

// numeric builds the spec's model under its machine triple.
func (sp Spec) numeric() (model.Numeric, error) {
	g, gamma := sp.G, sp.Gamma
	if !sp.HasGPU {
		g, gamma = 1, 0.5 // unused: CPU-only pricing never calls gpuLevel
	}
	return model.NewNumeric(sp.A, sp.B, sp.Levels, sp.F, sp.Leaf,
		model.Machine{P: sp.P, G: g, Gamma: gamma})
}

// Calibration is one device's fitted state: per-(algorithm, size-class)
// unit rates plus the device's link fit. Safe for concurrent use.
type Calibration struct {
	mu      sync.Mutex
	minObs  int
	decay   float64
	entries map[Key]*entry
	link    linkFit
	// errSq is the decayed mean squared relative prediction error; errW its
	// decayed weight. RMSE = sqrt(errSq/errW).
	errSq, errW float64
	// gen increments on every refit, invalidating cached decisions.
	gen   uint64
	cache map[cacheKey]cachedDecision
}

// cacheKey includes HasGPU: the serving layer prices CPU-restricted
// decisions while a device's breaker is open, and those must not shadow
// (or be shadowed by) full-device pricing for the same bucket.
type cacheKey struct {
	Key
	hasGPU bool
}

type cachedDecision struct {
	gen uint64
	dec Decision
}

// Defaults for NewCalibration.
const (
	// DefaultMinObs is how many observations a (algorithm, size-class)
	// bucket needs before its fitted rates replace the analytic cold-start
	// model.
	DefaultMinObs = 3
	// DefaultDecay is the EWMA retention per observation: each new sample
	// carries weight 1−DefaultDecay.
	DefaultDecay = 0.7
)

// NewCalibration builds an empty calibration. minObs <= 0 and decay outside
// (0,1) take the defaults.
func NewCalibration(minObs int, decay float64) *Calibration {
	if minObs <= 0 {
		minObs = DefaultMinObs
	}
	if decay <= 0 || decay >= 1 {
		decay = DefaultDecay
	}
	return &Calibration{minObs: minObs, decay: decay,
		entries: map[Key]*entry{}, cache: map[cacheKey]cachedDecision{}}
}

// Observe folds one finished run into the fitted state and reports whether
// it refit anything (a run with no usable samples is ignored).
func (c *Calibration) Observe(obs Observation) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	refit := false
	k := Key{Alg: obs.Alg, SizeClass: SizeClass(obs.N)}
	ewma := func(old, sample float64, n int) float64 {
		if n == 0 {
			return sample
		}
		return c.decay*old + (1-c.decay)*sample
	}
	if obs.ModelCPUUnits > 0 && obs.CPUSeconds > 0 {
		e := c.entry(k)
		e.TCPU = ewma(e.TCPU, obs.CPUSeconds/obs.ModelCPUUnits, e.CPUObs)
		e.CPUObs++
		refit = true
	}
	if obs.ModelGPUUnits > 0 && obs.GPUSeconds > 0 {
		e := c.entry(k)
		e.TGPU = ewma(e.TGPU, obs.GPUSeconds/obs.ModelGPUUnits, e.GPUObs)
		e.GPUObs++
		refit = true
	}
	if obs.Transfers > 0 && obs.TransferSeconds > 0 {
		c.link.observe(c.decay, float64(obs.TransferBytes)/float64(obs.Transfers),
			obs.TransferSeconds/float64(obs.Transfers))
		refit = true
	}
	if obs.PredictedSeconds > 0 && obs.Seconds > 0 {
		rel := (obs.PredictedSeconds - obs.Seconds) / obs.Seconds
		c.errSq = c.decay*c.errSq + rel*rel
		c.errW = c.decay*c.errW + 1
	}
	if refit {
		c.gen++
	}
	return refit
}

// entry returns (creating) a bucket. Must hold c.mu.
func (c *Calibration) entry(k Key) *entry {
	e, ok := c.entries[k]
	if !ok {
		e = &entry{}
		c.entries[k] = e
	}
	return e
}

// RMSE is the decayed root-mean-square relative prediction error of
// auto-placed runs, 0 before any prediction has settled.
func (c *Calibration) RMSE() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.errW == 0 {
		return 0
	}
	return math.Sqrt(c.errSq / c.errW)
}

// rates returns the bucket's fitted (tcpu, tgpu) and whether both sides the
// job can use are past the cold-start threshold. Must hold c.mu.
func (c *Calibration) rates(k Key, needGPU bool) (tcpu, tgpu float64, calibrated bool) {
	e, ok := c.entries[k]
	if !ok {
		return 1, 1, false
	}
	tcpu, tgpu = 1, 1
	calibrated = e.CPUObs >= c.minObs
	if e.CPUObs > 0 && e.TCPU > 0 {
		tcpu = e.TCPU
	}
	if needGPU {
		if e.GPUObs < c.minObs {
			calibrated = false
		}
		if e.GPUObs > 0 && e.TGPU > 0 {
			tgpu = e.TGPU
		}
	}
	return tcpu, tgpu, calibrated
}

// Decide prices every executable strategy for the job and returns the
// argmin. Decisions are cached per (algorithm, size-class) and invalidated
// by refits, so a steady stream of same-shape jobs decides in O(1).
func (c *Calibration) Decide(sp Spec) (Decision, error) {
	if sp.F == nil {
		return Decision{}, fmt.Errorf("autotune: nil cost function for %s: %w", sp.Alg, dcerr.ErrBadParam)
	}
	k := Key{Alg: sp.Alg, SizeClass: SizeClass(sp.N)}
	ck := cacheKey{Key: k, hasGPU: sp.HasGPU}
	c.mu.Lock()
	if cd, ok := c.cache[ck]; ok && cd.gen == c.gen {
		c.mu.Unlock()
		return cd.dec, nil
	}
	tcpu, tgpu, calibrated := c.rates(k, sp.HasGPU)
	lambda, delta := c.link.Lambda, c.link.Delta
	gen := c.gen
	c.mu.Unlock()
	if !calibrated {
		// Cold start: the pure analytic model (§5), which ignores the link.
		tcpu, tgpu, lambda, delta = 1, 1, 0, 0
	}

	num, err := sp.numeric()
	if err != nil {
		return Decision{}, err
	}
	dec := Decision{Costs: map[string]float64{}, Calibrated: calibrated}
	best := math.Inf(1)
	consider := func(name string, cost float64, crossover int, alpha float64, y int) {
		if prev, ok := dec.Costs[name]; !ok || cost < prev {
			dec.Costs[name] = cost
		}
		if cost < best {
			best = cost
			dec.Strategy, dec.Predicted = name, cost
			dec.Crossover, dec.Alpha, dec.Y = crossover, alpha, y
		}
	}

	consider(ChoiceCPU, tcpu*num.PredictBreadthFirstCPU(), 0, 0, 0)
	if sp.HasGPU {
		link := func(bytes float64) float64 {
			if bytes <= 0 {
				return 0
			}
			return 2 * (lambda + delta*bytes)
		}
		consider(ChoiceGPUOnly, tgpu*num.PredictGPUOnly()+link(float64(sp.Bytes)), 0, 0, 0)
		// Basic: every crossover x — the headline the paper computes once,
		// offline, from the static machine triple.
		for x := 0; x <= sp.Levels; x++ {
			cpu, gpu, perr := num.PredictBasicParts(x)
			if perr != nil {
				continue
			}
			consider(ChoiceBasic, tcpu*cpu+tgpu*gpu+link(float64(sp.Bytes)), x, 0, 0)
		}
		// Advanced: an (α, y) grid with the split at its default, calibrated
		// per phase so the max() overlap uses the fitted rates.
		const alphaSteps = 20
		for y := 0; y <= sp.Levels; y++ {
			for i := 1; i < alphaSteps; i++ {
				a := float64(i) / float64(alphaSteps)
				s := num.DefaultSplit(a, y)
				pr, perr := num.PredictAdvanced(a, y, s)
				if perr != nil {
					continue
				}
				gb := (1 - a) * float64(sp.Bytes)
				cost := math.Max(tcpu*pr.CPUPhase, tgpu*pr.GPUPhase+link(gb)) + tcpu*pr.Tail
				consider(ChoiceAdvanced, cost, 0, a, y)
			}
		}
	}

	c.mu.Lock()
	if c.gen == gen {
		c.cache[ck] = cachedDecision{gen: gen, dec: dec}
	}
	c.mu.Unlock()
	return dec, nil
}

// UnitsFor computes the model unit times a run of the given strategy spends
// on each side — the denominators for the observed-rate fit. The executed
// strategy's parameters (crossover for basic, α and y for advanced) must be
// the ones the run actually used.
func UnitsFor(sp Spec, strategy string, crossover int, alpha float64, y int) (cpuUnits, gpuUnits float64, err error) {
	num, err := sp.numeric()
	if err != nil {
		return 0, 0, err
	}
	switch strategy {
	case "seq-1cpu":
		// submitSeq folds onto one core, so the unscaled sequential time is
		// the consistent unit count.
		return num.SequentialTime(), 0, nil
	case ChoiceCPU:
		return num.PredictBreadthFirstCPU(), 0, nil
	case ChoiceGPUOnly:
		return 0, num.PredictGPUOnly(), nil
	case ChoiceBasic:
		cpu, gpu, perr := num.PredictBasicParts(crossover)
		return cpu, gpu, perr
	case ChoiceAdvanced:
		s := num.DefaultSplit(alpha, y)
		pr, perr := num.PredictAdvanced(alpha, y, s)
		if perr != nil {
			return 0, 0, perr
		}
		return pr.CPUPhase + pr.Tail, pr.GPUPhase, nil
	}
	return 0, 0, fmt.Errorf("autotune: unknown strategy %q: %w", strategy, dcerr.ErrBadParam)
}

// calibrationJSON is the persistence schema (DESIGN.md §16).
type calibrationJSON struct {
	Version int         `json:"version"`
	MinObs  int         `json:"min_obs"`
	Decay   float64     `json:"decay"`
	Entries []entryJSON `json:"entries"`
	Link    linkFitJSON `json:"link"`
	ErrSq   float64     `json:"err_sq"`
	ErrW    float64     `json:"err_w"`
}

type entryJSON struct {
	Key Key `json:"key"`
	entry
}

type linkFitJSON struct {
	Sw     float64 `json:"sw"`
	Sx     float64 `json:"sx"`
	Sy     float64 `json:"sy"`
	Sxx    float64 `json:"sxx"`
	Sxy    float64 `json:"sxy"`
	Lambda float64 `json:"lambda"`
	Delta  float64 `json:"delta"`
	Obs    int     `json:"obs"`
}

// MarshalJSON snapshots the fitted state, so a server can persist its warm
// calibration across restarts (Load restores it).
func (c *Calibration) MarshalJSON() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := calibrationJSON{Version: 1, MinObs: c.minObs, Decay: c.decay,
		Link: linkFitJSON{Sw: c.link.Sw, Sx: c.link.Sx, Sy: c.link.Sy,
			Sxx: c.link.Sxx, Sxy: c.link.Sxy,
			Lambda: c.link.Lambda, Delta: c.link.Delta, Obs: c.link.Obs},
		ErrSq: c.errSq, ErrW: c.errW}
	for k, e := range c.entries {
		out.Entries = append(out.Entries, entryJSON{Key: k, entry: *e})
	}
	return json.Marshal(out)
}

// Load restores a calibration persisted with MarshalJSON.
func Load(data []byte) (*Calibration, error) {
	var in calibrationJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("autotune: load calibration: %w (%w)", dcerr.ErrBadParam, err)
	}
	if in.Version != 1 {
		return nil, fmt.Errorf("autotune: calibration version %d: %w", in.Version, dcerr.ErrBadParam)
	}
	c := NewCalibration(in.MinObs, in.Decay)
	for _, e := range in.Entries {
		ent := e.entry
		c.entries[e.Key] = &ent
	}
	c.link = linkFit{Sw: in.Link.Sw, Sx: in.Link.Sx, Sy: in.Link.Sy,
		Sxx: in.Link.Sxx, Sxy: in.Link.Sxy,
		Lambda: in.Link.Lambda, Delta: in.Link.Delta, Obs: in.Link.Obs}
	c.errSq, c.errW = in.ErrSq, in.ErrW
	c.gen = 1 // restored state is warm: invalidate nothing, but be nonzero
	return c, nil
}
