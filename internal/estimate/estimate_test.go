package estimate

import (
	"testing"

	"repro/internal/hpu"
)

// TestTable2 checks that the estimation harness recovers the paper's
// Table 2 parameters from the calibrated platforms: (p=4, g=4096, γ⁻¹≈160)
// for HPU1 and (p=4, g=1200, γ⁻¹≈65) for HPU2.
func TestTable2(t *testing.T) {
	cases := []struct {
		platform hpu.Platform
		wantG    int
		gTol     int
		wantInv  float64
	}{
		{hpu.HPU1(), 4096, 64, 160},
		{hpu.HPU2(), 1200, 32, 65},
	}
	for _, c := range cases {
		res, err := Platform(c.platform)
		if err != nil {
			t.Fatalf("%s: %v", c.platform.Name, err)
		}
		if res.P != 4 {
			t.Errorf("%s: p = %d, want 4", c.platform.Name, res.P)
		}
		if res.G < c.wantG-c.gTol || res.G > c.wantG+c.gTol {
			t.Errorf("%s: g = %d, want %d±%d", c.platform.Name, res.G, c.wantG, c.gTol)
		}
		if res.GammaInv < c.wantInv*0.93 || res.GammaInv > c.wantInv*1.07 {
			t.Errorf("%s: γ⁻¹ = %.1f, want ≈%.0f", c.platform.Name, res.GammaInv, c.wantInv)
		}
	}
}

// TestSaturationCurveShape checks the Fig 5 curve: decreasing before the
// knee, flat after it.
func TestSaturationCurveShape(t *testing.T) {
	sim := hpu.MustSim(hpu.HPU1())
	cfg := DefaultSaturationConfig()
	cfg.Step = 128
	pts, err := SaturationCurve(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := float64(hpu.HPU1().GPU.SatThreads)
	for i := 1; i < len(pts); i++ {
		prev, cur := pts[i-1], pts[i]
		switch {
		case cur.X <= g:
			if cur.Y >= prev.Y {
				t.Fatalf("curve not decreasing below knee at w=%g: %g >= %g",
					cur.X, cur.Y, prev.Y)
			}
		case prev.X >= g:
			if rel := (cur.Y - prev.Y) / prev.Y; rel > 0.001 || rel < -0.001 {
				t.Fatalf("curve not flat above knee at w=%g: rel change %g", cur.X, rel)
			}
		}
	}
}

// TestGammaCurveConstant checks the Fig 6 property: the single-thread
// GPU:CPU merge ratio is essentially independent of input size.
func TestGammaCurveConstant(t *testing.T) {
	pts, err := GammaCurve(hpu.HPU2(), DefaultGammaConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 3 {
		t.Fatalf("too few points: %d", len(pts))
	}
	lo, hi := pts[0].Ratio, pts[0].Ratio
	for _, p := range pts {
		if p.Ratio < lo {
			lo = p.Ratio
		}
		if p.Ratio > hi {
			hi = p.Ratio
		}
	}
	if hi/lo > 1.15 {
		t.Errorf("ratio varies too much across sizes: min=%.1f max=%.1f", lo, hi)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, _, err := EstimateG(hpu.HPU1(), SaturationConfig{}); err == nil {
		t.Error("EstimateG accepted zero config")
	}
	if _, err := GammaCurve(hpu.HPU1(), GammaConfig{}); err == nil {
		t.Error("GammaCurve accepted empty sizes")
	}
	if _, err := GammaCurve(hpu.HPU1(), GammaConfig{Sizes: []int{-1}}); err == nil {
		t.Error("GammaCurve accepted negative size")
	}
}
