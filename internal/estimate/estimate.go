// Package estimate implements the paper's §6.4 parameter-estimation
// procedures: the GPU parallelism g from the saturation curve of an
// element-wise array sum (Fig 5), and the scalar speed ratio γ from a
// single-thread merge timed on both units (Fig 6). Together these produce
// the platform rows of Table 2.
//
// Estimation drives the simulated platform exactly as an OpenCL host program
// would — launching kernels and timing them — so it validates that the
// calibrated device models reproduce the published parameters, and it works
// unchanged on user-defined platforms.
package estimate

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hpu"
	"repro/internal/stats"
)

// SaturationConfig controls the g estimation sweep.
type SaturationConfig struct {
	// Work is the total number of array elements summed per launch (the
	// paper used arrays of 2^24; larger values drown the launch overhead).
	Work int
	// MaxThreads bounds the sweep (the paper plotted up to 10000 on HPU1
	// and 2500 on HPU2).
	MaxThreads int
	// Step is the thread-count increment between samples.
	Step int
	// Tolerance is the relative slack over the curve floor that still
	// counts as "no further improvement".
	Tolerance float64
}

// DefaultSaturationConfig returns the sweep used for Table 2.
func DefaultSaturationConfig() SaturationConfig {
	return SaturationConfig{Work: 1 << 26, MaxThreads: 10000, Step: 8, Tolerance: 0.02}
}

// sumCost is the per-item cost of the element-wise sum kernel when each of w
// work-items handles chunk consecutive elements: per element, one add and
// three words of coalesced traffic (two reads, one write).
func sumCost(chunk float64) core.Cost {
	return core.Cost{
		Ops:       chunk,
		MemWords:  3 * chunk,
		Coalesced: true,
		Divergent: false,
	}
}

// SaturationCurve measures launch time as a function of the number of
// work-items for a fixed total amount of work (Fig 5). The returned points
// are sorted by thread count.
func SaturationCurve(sim *hpu.Sim, cfg SaturationConfig) ([]stats.Point, error) {
	if cfg.Work <= 0 || cfg.MaxThreads <= 0 || cfg.Step <= 0 {
		return nil, fmt.Errorf("estimate: invalid saturation config %+v", cfg)
	}
	var pts []stats.Point
	for w := cfg.Step; w <= cfg.MaxThreads; w += cfg.Step {
		chunk := float64(cfg.Work) / float64(w)
		start := sim.Now()
		done := false
		sim.GPU().Submit(core.Batch{Tasks: w, Cost: sumCost(chunk)}, func() { done = true })
		sim.Wait()
		if !done {
			return nil, fmt.Errorf("estimate: saturation launch with %d threads did not complete", w)
		}
		pts = append(pts, stats.Point{X: float64(w), Y: sim.Now() - start})
	}
	return pts, nil
}

// EstimateG runs the saturation sweep and locates its knee: the paper's
// empirical degree of parallelism g.
func EstimateG(platform hpu.Platform, cfg SaturationConfig) (int, []stats.Point, error) {
	sim, err := hpu.NewSim(platform)
	if err != nil {
		return 0, nil, err
	}
	pts, err := SaturationCurve(sim, cfg)
	if err != nil {
		return 0, nil, err
	}
	knee, err := stats.SaturationKnee(pts, cfg.Tolerance, 0.1)
	if err != nil {
		return 0, nil, err
	}
	return int(knee + 0.5), pts, nil
}

// GammaConfig controls the γ estimation sweep.
type GammaConfig struct {
	// Sizes are the merge input sizes to time (the paper swept up to 2·10^7
	// on HPU1 and 9·10^6 on HPU2).
	Sizes []int
}

// DefaultGammaConfig returns the sweep used for Table 2.
func DefaultGammaConfig() GammaConfig {
	var sizes []int
	for s := 1 << 18; s <= 2<<23; s += 1 << 20 {
		sizes = append(sizes, s)
	}
	return GammaConfig{Sizes: sizes}
}

// mergeCost is the cost of one sequential merge producing s elements, the
// same convention as the mergesort package.
func mergeCost(s int) core.Cost {
	return core.Cost{
		Ops:        float64(s),
		MemWords:   2 * float64(s),
		Coalesced:  true, // a single work-item's streaming access
		Divergent:  true,
		WorkingSet: int64(s) * 8,
	}
}

// GammaPoint is one sample of the Fig 6 curve.
type GammaPoint struct {
	// Size is the merged output length.
	Size int
	// CPUSeconds and GPUSeconds are the single-thread merge times.
	CPUSeconds, GPUSeconds float64
	// Ratio is GPUSeconds / CPUSeconds, an estimate of 1/γ.
	Ratio float64
}

// GammaCurve times a one-thread merge of each size on both units (Fig 6).
func GammaCurve(platform hpu.Platform, cfg GammaConfig) ([]GammaPoint, error) {
	if len(cfg.Sizes) == 0 {
		return nil, fmt.Errorf("estimate: no merge sizes configured")
	}
	var pts []GammaPoint
	for _, s := range cfg.Sizes {
		if s <= 0 {
			return nil, fmt.Errorf("estimate: invalid merge size %d", s)
		}
		sim, err := hpu.NewSim(platform)
		if err != nil {
			return nil, err
		}
		cost := mergeCost(s)
		start := sim.Now()
		sim.CPU().Submit(core.Batch{Tasks: 1, Cost: cost}, nil)
		sim.Wait()
		cpuT := sim.Now() - start

		start = sim.Now()
		sim.GPU().Submit(core.Batch{Tasks: 1, Cost: cost}, nil)
		sim.Wait()
		gpuT := sim.Now() - start

		pts = append(pts, GammaPoint{
			Size: s, CPUSeconds: cpuT, GPUSeconds: gpuT, Ratio: gpuT / cpuT,
		})
	}
	return pts, nil
}

// EstimateGammaInv returns the estimated 1/γ: the mean of the per-size
// GPU:CPU time ratios, which Fig 6 shows to be essentially constant.
func EstimateGammaInv(platform hpu.Platform, cfg GammaConfig) (float64, []GammaPoint, error) {
	pts, err := GammaCurve(platform, cfg)
	if err != nil {
		return 0, nil, err
	}
	ratios := make([]float64, len(pts))
	for i, p := range pts {
		ratios[i] = p.Ratio
	}
	return stats.Mean(ratios), pts, nil
}

// Result is one platform row of Table 2.
type Result struct {
	Platform string
	P        int
	G        int
	GammaInv float64
}

// Platform estimates the full (p, g, γ) triple for a platform, as done once
// per machine in §6.4.
func Platform(platform hpu.Platform) (Result, error) {
	g, _, err := EstimateG(platform, DefaultSaturationConfig())
	if err != nil {
		return Result{}, err
	}
	gammaInv, _, err := EstimateGammaInv(platform, DefaultGammaConfig())
	if err != nil {
		return Result{}, err
	}
	return Result{
		Platform: platform.Name,
		P:        platform.CPU.Cores,
		G:        g,
		GammaInv: gammaInv,
	}, nil
}
