package exp

import (
	"sort"
	"testing"

	"repro/internal/hpu"
	"repro/internal/model"
	"repro/internal/workload"
)

// TestModelSimRankConsistency checks that the analytic model and the
// simulator agree on the *ordering* of parameter choices: configurations the
// model predicts to be faster should generally measure faster on the
// simulator. The simulator adds effects the model omits (transfers, launch
// overheads, cache contention), so exact times differ; the paper's claim is
// that the model still ranks the design space well enough to choose (α, y)
// — which is what this asserts via rank correlation.
func TestModelSimRankConsistency(t *testing.T) {
	const logN = 16
	pl := hpu.HPU1()
	in := workload.Uniform(1<<logN, 5)
	num, err := mergesortNumeric(pl, logN)
	if err != nil {
		t.Fatal(err)
	}

	type cell struct{ pred, meas float64 }
	var cells []cell
	for _, alpha := range []float64{0.05, 0.12, 0.2, 0.35, 0.6} {
		for _, y := range []int{5, 7, 9, 11} {
			s := num.DefaultSplit(alpha, y)
			pr, err := num.PredictAdvanced(alpha, y, s)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := advancedMergesort(pl, in, alpha, y)
			if err != nil {
				t.Fatal(err)
			}
			cells = append(cells, cell{pred: pr.Makespan, meas: rep.Seconds})
		}
	}

	// Spearman rank correlation between predicted and measured times.
	rank := func(get func(cell) float64) []float64 {
		idx := make([]int, len(cells))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return get(cells[idx[a]]) < get(cells[idx[b]]) })
		r := make([]float64, len(cells))
		for pos, i := range idx {
			r[i] = float64(pos)
		}
		return r
	}
	rp := rank(func(c cell) float64 { return c.pred })
	rm := rank(func(c cell) float64 { return c.meas })
	n := float64(len(cells))
	var d2 float64
	for i := range cells {
		d := rp[i] - rm[i]
		d2 += d * d
	}
	rho := 1 - 6*d2/(n*(n*n-1))
	if rho < 0.7 {
		t.Errorf("model-simulator rank correlation ρ = %.3f, want >= 0.7", rho)
	}
}

// TestModelUnderestimatesSim checks the direction of the model-simulator
// gap: the model ignores transfers, kernel-launch overheads and memory
// contention, so measured hybrid times should never beat the model's
// makespan by a wide margin (allowing slack for integer rounding effects).
func TestModelUnderestimatesSim(t *testing.T) {
	const logN = 18
	pl := hpu.HPU1()
	in := workload.Uniform(1<<logN, 6)
	num, err := mergesortNumeric(pl, logN)
	if err != nil {
		t.Fatal(err)
	}
	// Normalize model ops to seconds via the CPU rate.
	opsToSec := 1 / pl.CPU.RateOpsPerSec

	for _, alpha := range []float64{0.1, 0.17, 0.3} {
		y := 8
		pr, err := num.PredictAdvanced(alpha, y, num.DefaultSplit(alpha, y))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := advancedMergesort(pl, in, alpha, y)
		if err != nil {
			t.Fatal(err)
		}
		predSec := pr.Makespan * opsToSec
		if rep.Seconds < 0.9*predSec {
			t.Errorf("α=%.2f: measured %.5fs beats model %.5fs by >10%%",
				alpha, rep.Seconds, predSec)
		}
		if rep.Seconds > 3*predSec {
			t.Errorf("α=%.2f: measured %.5fs exceeds model %.5fs by >3x — calibration drift",
				alpha, rep.Seconds, predSec)
		}
	}
}

// TestSequentialSimMatchesModel anchors the calibration: the simulated
// 1-core recursive baseline must match the model's sequential time almost
// exactly (same cost convention, no contention at one core).
func TestSequentialSimMatchesModel(t *testing.T) {
	const logN = 16
	pl := hpu.HPU1()
	in := workload.Uniform(1<<logN, 7)
	num, err := mergesortNumeric(pl, logN)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := sequentialMergesort(pl, in)
	if err != nil {
		t.Fatal(err)
	}
	want := num.SequentialTime() / pl.CPU.RateOpsPerSec
	if seq < 0.98*want || seq > 1.05*want {
		t.Errorf("sequential sim %.6fs vs model %.6fs", seq, want)
	}
}

// TestPolyNumericAgree cross-checks the two model variants on the
// mergesort family: the closed form's GPU work fraction at its optimum and
// the numeric model's fraction at the same parameters must agree closely.
func TestPolyNumericAgree(t *testing.T) {
	mach := model.Machine{P: 4, G: 4096, Gamma: 1.0 / 160}
	poly, err := model.NewPoly(2, 2, 1<<20, mach)
	if err != nil {
		t.Fatal(err)
	}
	num, err := model.NewNumeric(2, 2, 20, func(s float64) float64 { return s }, 1, mach)
	if err != nil {
		t.Fatal(err)
	}
	alpha, yf, frac := poly.Optimum()
	y := int(yf + 0.5)
	pr, err := num.PredictAdvanced(alpha, y, num.DefaultSplit(alpha, y))
	if err != nil {
		t.Fatal(err)
	}
	if pr.GPUWorkFraction < frac-0.08 || pr.GPUWorkFraction > frac+0.08 {
		t.Errorf("numeric GPU fraction %.3f vs closed form %.3f", pr.GPUWorkFraction, frac)
	}
}
