package exp

import (
	"context"
	"fmt"

	"repro/internal/algos/mergesort"
	"repro/internal/core"
	"repro/internal/hpu"
	"repro/internal/sched"
	"repro/internal/workload"
)

// AblationConfig parameterizes the strategy-comparison table (not a paper
// artifact; it isolates the design choices DESIGN.md §6 calls out).
type AblationConfig struct {
	Platform hpu.Platform
	LogN     int
	Seed     int64
	// Alpha and Y are the advanced division's parameters; negative means
	// model-optimal.
	Alpha float64
	Y     int
}

// DefaultAblationConfig compares strategies at n = 2^20 on HPU1.
func DefaultAblationConfig() AblationConfig {
	return AblationConfig{Platform: hpu.HPU1(), LogN: 20, Seed: 1, Alpha: -1, Y: -1}
}

// Ablation runs every execution strategy on one instance and tabulates
// makespan and speedup over the 1-core recursive baseline.
func Ablation(cfg AblationConfig) (Table, error) {
	if cfg.LogN < 4 || cfg.LogN > 30 {
		return Table{}, fmt.Errorf("exp: ablation logN %d out of range [4,30]", cfg.LogN)
	}
	n := 1 << cfg.LogN
	in := workload.Uniform(n, cfg.Seed)

	alpha, y := cfg.Alpha, cfg.Y
	if alpha < 0 || y < 0 {
		pa, py, _, err := predictedOptimum(cfg.Platform, cfg.LogN)
		if err != nil {
			return Table{}, err
		}
		if alpha < 0 {
			alpha = pa
		}
		if y < 0 {
			y = py
		}
	}

	seq, err := sequentialMergesort(cfg.Platform, in)
	if err != nil {
		return Table{}, err
	}

	type result struct {
		name    string
		seconds float64
	}
	var results []result
	add := func(name string, seconds float64) {
		results = append(results, result{name, seconds})
	}
	add("sequential 1-core (baseline)", seq)

	fresh := func() (*hpu.Sim, *mergesort.Sorter, error) {
		be, err := hpu.NewSim(cfg.Platform)
		if err != nil {
			return nil, nil, err
		}
		s, err := mergesort.New(in)
		return be, s, err
	}
	check := func(s *mergesort.Sorter, name string) error {
		if !workload.IsSorted(s.Result()) {
			return fmt.Errorf("exp: ablation %s produced unsorted output", name)
		}
		return nil
	}

	{
		be, s, err := fresh()
		if err != nil {
			return Table{}, err
		}
		rep, err := core.RunBreadthFirstCPUCtx(context.Background(), be, s)
		if err != nil {
			return Table{}, err
		}
		if err := check(s, "bf-cpu"); err != nil {
			return Table{}, err
		}
		add(fmt.Sprintf("breadth-first CPU (%d cores)", cfg.Platform.CPU.Cores), rep.Seconds)
	}
	{
		be, s, err := fresh()
		if err != nil {
			return Table{}, err
		}
		x := clampY(y+1, cfg.LogN) // the basic crossover sits near y
		rep, err := core.RunBasicHybridCtx(context.Background(), be, s, x, core.WithCoalesce())
		if err != nil {
			return Table{}, err
		}
		if err := check(s, "basic"); err != nil {
			return Table{}, err
		}
		add(fmt.Sprintf("basic hybrid (crossover %d)", x), rep.Seconds)
	}
	for _, coalesce := range []bool{true, false} {
		be, s, err := fresh()
		if err != nil {
			return Table{}, err
		}
		var opts []core.Option
		if coalesce {
			opts = append(opts, core.WithCoalesce())
		}
		rep, err := core.RunAdvancedHybridCtx(context.Background(), be, s, alpha, y, opts...)
		if err != nil {
			return Table{}, err
		}
		if err := check(s, "advanced"); err != nil {
			return Table{}, err
		}
		name := fmt.Sprintf("advanced hybrid (α=%.2f, y=%d)", alpha, y)
		if !coalesce {
			name += " no coalescing"
		}
		add(name, rep.Seconds)
	}
	{
		be, s, err := fresh()
		if err != nil {
			return Table{}, err
		}
		rep, err := sched.RunDynamicHybrid(be, s)
		if err != nil {
			return Table{}, err
		}
		if err := check(s, "dynamic"); err != nil {
			return Table{}, err
		}
		add("dynamic per-level (StarPU-style)", rep.Seconds)
	}
	{
		be, err := hpu.NewSim(cfg.Platform)
		if err != nil {
			return Table{}, err
		}
		s, err := mergesort.NewParallel(in)
		if err != nil {
			return Table{}, err
		}
		rep, err := core.RunGPUOnlyCtx(context.Background(), be, s)
		if err != nil {
			return Table{}, err
		}
		if !workload.IsSorted(s.Result()) {
			return Table{}, fmt.Errorf("exp: gpu-only ablation unsorted")
		}
		add("gpu-only parallel merge (incl. transfer)", rep.Seconds)
	}

	t := Table{
		ID: "ablation",
		Title: fmt.Sprintf("Strategy ablation: mergesort n=2^%d on %s",
			cfg.LogN, cfg.Platform.Name),
		Columns: []string{"strategy", "time (s)", "speedup"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.name,
			fmt.Sprintf("%.4f", r.seconds),
			fmt.Sprintf("%.2fx", seq/r.seconds),
		})
	}
	return t, nil
}
