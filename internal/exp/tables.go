package exp

import (
	"fmt"

	"repro/internal/estimate"
	"repro/internal/hpu"
)

// Table1 reproduces Table 1: the specification of the hybrid platforms.
func Table1() Table {
	t := Table{
		ID:      "table1",
		Title:   "Specification of hybrid platforms used in experiments",
		Columns: []string{"Platform", "CPU", "GPU", "Link"},
		Notes: []string{
			"Hardware is simulated; see DESIGN.md for the substitution rationale.",
		},
	}
	for _, pl := range hpu.Platforms() {
		t.Rows = append(t.Rows, []string{
			pl.Name,
			fmt.Sprintf("%s (%d cores @ %.1f GHz, %d MB cache)",
				pl.CPU.Name, pl.CPU.Cores, pl.CPU.ClockGHz, pl.CPU.LLCBytes>>20),
			fmt.Sprintf("%s (%d PEs)", pl.GPU.Name, pl.GPU.PhysicalPEs),
			pl.Link.Name,
		})
	}
	return t
}

// Table2 reproduces Table 2: the estimated platform parameters (p, g, γ⁻¹),
// recovered by running the §6.4 estimation procedures on the simulated
// devices.
func Table2() (Table, error) {
	t := Table{
		ID:      "table2",
		Title:   "Platform parameters (p: CPU cores, g: GPU cores, γ: scalar ratio)",
		Columns: []string{"Platform", "p", "g", "1/γ"},
		Notes: []string{
			"g from the Fig 5 saturation knee; γ from the Fig 6 merge ratio.",
			"Paper values: HPU1 (4, 4096, 160); HPU2 (4, 1200, 65).",
		},
	}
	for _, pl := range hpu.Platforms() {
		res, err := estimate.Platform(pl)
		if err != nil {
			return Table{}, fmt.Errorf("exp: estimating %s: %w", pl.Name, err)
		}
		t.Rows = append(t.Rows, []string{
			res.Platform,
			fmt.Sprintf("%d", res.P),
			fmt.Sprintf("%d", res.G),
			fmt.Sprintf("%.0f", res.GammaInv),
		})
	}
	return t, nil
}
