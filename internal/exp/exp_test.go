package exp

import (
	"fmt"
	"strconv"
	"testing"

	"repro/internal/hpu"
)

func TestTable1(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 2 {
		t.Fatalf("Table1 rows = %d, want 2", len(tab.Rows))
	}
	if tab.Rows[0][0] != "HPU1" || tab.Rows[1][0] != "HPU2" {
		t.Errorf("unexpected platform order: %v, %v", tab.Rows[0][0], tab.Rows[1][0])
	}
}

func TestTable2(t *testing.T) {
	tab, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][2]int{
		"HPU1": {4096, 160},
		"HPU2": {1200, 65},
	}
	for _, row := range tab.Rows {
		w, ok := want[row[0]]
		if !ok {
			t.Fatalf("unexpected platform %q", row[0])
		}
		g, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatalf("bad g %q: %v", row[2], err)
		}
		inv, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad 1/γ %q: %v", row[3], err)
		}
		if g < w[0]-w[0]/20 || g > w[0]+w[0]/20 {
			t.Errorf("%s: g = %d, want ≈%d", row[0], g, w[0])
		}
		if inv < float64(w[1])*0.93 || inv > float64(w[1])*1.07 {
			t.Errorf("%s: 1/γ = %g, want ≈%d", row[0], inv, w[1])
		}
	}
}

func TestFig3Shape(t *testing.T) {
	fig, err := Fig3(DefaultFig3Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("Fig3 series = %d, want 2", len(fig.Series))
	}
	// y(α) must be nonincreasing.
	y := fig.Series[0].Points
	for i := 1; i < len(y); i++ {
		if y[i].Y > y[i-1].Y+1e-9 {
			t.Fatalf("y(alpha) increases at alpha=%.3f", y[i].X)
		}
	}
	// The GPU work fraction must peak in the paper's region and be ~52 %.
	w := fig.Series[1].Points
	bestX, bestY := 0.0, -1.0
	for _, p := range w {
		if p.Y > bestY {
			bestX, bestY = p.X, p.Y
		}
	}
	if bestX < 0.10 || bestX > 0.22 {
		t.Errorf("GPU work peaks at alpha=%.3f, want ~0.16", bestX)
	}
	if bestY < 47 || bestY > 57 {
		t.Errorf("peak GPU work = %.1f%%, want ~52%%", bestY)
	}
}

func TestFig4(t *testing.T) {
	tab, err := Fig4(DefaultFig3Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || len(tab.Rows[0]) != 5 {
		t.Fatalf("Fig4 shape = %dx%d, want 1x5", len(tab.Rows), len(tab.Rows[0]))
	}
}

func TestFig5Small(t *testing.T) {
	cfg := Fig5Config{MaxThreads: []int{6000, 2000}, Work: 1 << 26, Step: 64}
	fig, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("Fig5 series = %d, want 2", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) < 10 {
			t.Errorf("series %s has too few points: %d", s.Name, len(s.Points))
		}
	}
}

func TestFig6Small(t *testing.T) {
	cfg := Fig6Config{Sizes: [][]int{{1 << 20, 1 << 22}, {1 << 19, 1 << 21}}}
	fig, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Ratios must sit near the platform γ values.
	for i, want := range []float64{160, 65} {
		for _, p := range fig.Series[i].Points {
			if p.Y < want*0.9 || p.Y > want*1.1 {
				t.Errorf("%s: ratio %g at size %g, want ≈%g",
					fig.Series[i].Name, p.Y, p.X, want)
			}
		}
	}
}

func smallSweep() SweepConfig {
	cfg := DefaultSweepConfig(hpu.HPU1())
	cfg.LogNs = []int{12, 14, 16}
	cfg.AlphaFactors = []float64{0.75, 1.0, 1.25}
	cfg.YOffsets = []int{0, 1}
	return cfg
}

func TestFig7Small(t *testing.T) {
	cfg := Fig7Config{
		Platform: hpu.HPU1(),
		LogN:     14,
		Alphas:   []float64{0.05, 0.15, 0.25, 0.35},
		Ys:       []int{5, 7, 9},
		Seed:     1,
	}
	fig, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("Fig7 series = %d, want 3", len(fig.Series))
	}
	best := 0.0
	for _, s := range fig.Series {
		for _, p := range s.Points {
			if p.Y > best {
				best = p.Y
			}
		}
	}
	if best < 2 {
		t.Errorf("best Fig7 speedup = %.2f, want > 2", best)
	}
}

func TestFig8Small(t *testing.T) {
	fig, err := Fig8(smallSweep())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("Fig8 series = %d, want 3", len(fig.Series))
	}
	measured := fig.Series[0].Points
	if len(measured) != 3 {
		t.Fatalf("measured points = %d, want 3", len(measured))
	}
	// Speedup should grow with n over this range (before the cache
	// roll-off) and beat 2x at 2^16.
	if measured[len(measured)-1].Y < 2 {
		t.Errorf("speedup at largest size = %.2f, want > 2", measured[len(measured)-1].Y)
	}
	if measured[0].Y > measured[len(measured)-1].Y {
		t.Errorf("speedup not growing: %.2f at small vs %.2f at large",
			measured[0].Y, measured[len(measured)-1].Y)
	}
}

func TestFig9Small(t *testing.T) {
	cfg := Fig9Config{Platform: hpu.HPU1(), LogNs: []int{12, 16, 18}, Seed: 1}
	times, speedups, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(times.Series) != 3 || len(speedups.Series) != 2 {
		t.Fatalf("Fig9 series = %d/%d, want 3/2", len(times.Series), len(speedups.Series))
	}
	sortOnly := speedups.Series[0].Points
	withXfer := speedups.Series[1].Points
	for i := range sortOnly {
		if withXfer[i].Y > sortOnly[i].Y {
			t.Errorf("transfer made the GPU run faster at n=%g", sortOnly[i].X)
		}
	}
	// At the largest size the uniform kernel should be far ahead of 1 CPU.
	if last := sortOnly[len(sortOnly)-1].Y; last < 6 {
		t.Errorf("sort-only speedup at 2^18 = %.1f, want > 6", last)
	}
}

func TestFig10Small(t *testing.T) {
	alphaFig, levelFig, err := Fig10(smallSweep())
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range []Figure{alphaFig, levelFig} {
		if len(fig.Series) != 2 {
			t.Fatalf("%s series = %d, want 2", fig.ID, len(fig.Series))
		}
		if len(fig.Series[0].Points) != len(fig.Series[1].Points) {
			t.Fatalf("%s: obtained/predicted lengths differ", fig.ID)
		}
	}
	// Obtained α must stay within the searched neighborhood of predictions.
	for i, p := range alphaFig.Series[0].Points {
		pred := alphaFig.Series[1].Points[i].Y
		if p.Y < pred*0.5-1e-9 || p.Y > pred*1.5+1e-9 {
			t.Errorf("obtained alpha %.3f outside sweep range of prediction %.3f", p.Y, pred)
		}
	}
}

func TestSweepValidation(t *testing.T) {
	if _, err := MergesortSweep(SweepConfig{Platform: hpu.HPU1()}); err == nil {
		t.Error("MergesortSweep accepted empty config")
	}
	bad := smallSweep()
	bad.LogNs = []int{40}
	if _, err := MergesortSweep(bad); err == nil {
		t.Error("MergesortSweep accepted logN=40")
	}
}

func TestMultiGPUExperiment(t *testing.T) {
	cfg := MultiGPUConfig{
		Platform: hpu.HPU1(),
		LogNs:    []int{12, 14, 16},
		Devices:  []int{1, 2},
		Seed:     1,
	}
	fig, err := MultiGPU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 3 {
			t.Fatalf("%s: points = %d, want 3", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Y <= 0.5 {
				t.Errorf("%s: speedup %.2f at n=%g implausibly low", s.Name, p.Y, p.X)
			}
		}
	}
	// Footnote 5: the second die should not bring a dramatic win.
	for i := range fig.Series[0].Points {
		one, two := fig.Series[0].Points[i].Y, fig.Series[1].Points[i].Y
		if two > 1.4*one {
			t.Errorf("dual-die speedup %.2f far exceeds single %.2f at n=%g",
				two, one, fig.Series[0].Points[i].X)
		}
	}
}

func TestAblationTable(t *testing.T) {
	cfg := DefaultAblationConfig()
	cfg.LogN = 14
	tab, err := Ablation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("ablation rows = %d, want 7", len(tab.Rows))
	}
	if tab.Rows[0][2] != "1.00x" {
		t.Errorf("baseline speedup = %s, want 1.00x", tab.Rows[0][2])
	}
	speedup := func(row int) float64 {
		var v float64
		if _, err := fmt.Sscanf(tab.Rows[row][2], "%fx", &v); err != nil {
			t.Fatalf("parsing %q: %v", tab.Rows[row][2], err)
		}
		return v
	}
	bf, basic, adv, advRaw, dyn := speedup(1), speedup(2), speedup(3), speedup(4), speedup(5)
	if !(adv > basic && basic > 1 && bf > 1) {
		t.Errorf("ordering violated: bf=%.2f basic=%.2f advanced=%.2f", bf, basic, adv)
	}
	if advRaw >= adv {
		t.Errorf("coalescing did not help: %.2f vs %.2f", advRaw, adv)
	}
	if dyn >= adv {
		t.Errorf("dynamic scheduler (%.2f) beat the static advanced division (%.2f)", dyn, adv)
	}
	if _, err := Ablation(AblationConfig{Platform: hpu.HPU1(), LogN: 99}); err == nil {
		t.Error("Ablation accepted logN=99")
	}
}
