package exp

import (
	"fmt"

	"repro/internal/hpu"
	"repro/internal/model"
	"repro/internal/stats"
)

// Fig3Config parameterizes the closed-form model curves.
type Fig3Config struct {
	Platform hpu.Platform
	LogN     int
	// AlphaSteps is the number of samples across the α range.
	AlphaSteps int
}

// DefaultFig3Config reproduces the paper's example: mergesort on HPU1 with
// n = 2^24.
func DefaultFig3Config() Fig3Config {
	return Fig3Config{Platform: hpu.HPU1(), LogN: 24, AlphaSteps: 200}
}

// Fig3 reproduces Figure 3: for mergesort (a = b = 2, f(n) = Θ(n)), the
// transfer level y(α) reached by the GPU (left panel) and the fraction of
// total work done by the GPU (right panel), as functions of the work ratio α.
func Fig3(cfg Fig3Config) (Figure, error) {
	if cfg.AlphaSteps < 2 {
		return Figure{}, fmt.Errorf("exp: Fig3 needs at least 2 alpha steps, got %d", cfg.AlphaSteps)
	}
	poly, err := model.NewPoly(2, 2, float64(uint64(1)<<cfg.LogN), machineOf(cfg.Platform))
	if err != nil {
		return Figure{}, err
	}
	var yPts, wPts []stats.Point
	lo := poly.MinAlpha()
	for i := 0; i <= cfg.AlphaSteps; i++ {
		alpha := lo + (0.999-lo)*float64(i)/float64(cfg.AlphaSteps)
		y, _ := poly.Y(alpha)
		yPts = append(yPts, stats.Point{X: alpha, Y: y})
		wPts = append(wPts, stats.Point{X: alpha, Y: 100 * poly.GPUWorkFraction(alpha)})
	}
	aStar, yStar, frac := poly.Optimum()
	return Figure{
		ID:     "fig3",
		Title:  fmt.Sprintf("Model curves for mergesort on %s, n=2^%d", cfg.Platform.Name, cfg.LogN),
		XLabel: "work ratio alpha",
		YLabel: "level y(alpha) / GPU work %",
		Series: []Series{
			{Name: "y(alpha)", Points: yPts},
			{Name: "GPU work % of total", Points: wPts},
		},
		Notes: []string{
			fmt.Sprintf("optimum: alpha*=%.3f, y=%.2f, GPU work=%.1f%%", aStar, yStar, 100*frac),
			"paper (HPU1, n=2^24): alpha*~0.16, y~10, GPU work ~52%",
		},
	}, nil
}

// Fig4 reproduces Figure 4's summary: the advanced work division chosen for
// mergesort — the split of the input, the transfer level, and the share of
// work per unit.
func Fig4(cfg Fig3Config) (Table, error) {
	poly, err := model.NewPoly(2, 2, float64(uint64(1)<<cfg.LogN), machineOf(cfg.Platform))
	if err != nil {
		return Table{}, err
	}
	alpha, y, frac := poly.Optimum()
	m := machineOf(cfg.Platform)
	return Table{
		ID:    "fig4",
		Title: fmt.Sprintf("Advanced hybrid work division for mergesort on %s, n=2^%d", cfg.Platform.Name, cfg.LogN),
		Columns: []string{
			"alpha* (CPU share)", "transfer level y", "GPU work fraction",
			"CPU leaves", "GPU leaves",
		},
		Rows: [][]string{{
			fmt.Sprintf("%.3f", alpha),
			fmt.Sprintf("%.2f", y),
			fmt.Sprintf("%.1f%%", 100*frac),
			fmt.Sprintf("%.3g", alpha*poly.LevelWork()),
			fmt.Sprintf("%.3g", (1-alpha)*poly.LevelWork()),
		}},
		Notes: []string{
			fmt.Sprintf("machine: p=%d, g=%d, 1/γ=%.0f", m.P, m.G, 1/m.Gamma),
			"paper (Fig 4): α≈0.16 (0.16n | 0.84n), transfer level 10",
		},
	}, nil
}
