package exp

import (
	"fmt"

	"repro/internal/estimate"
	"repro/internal/hpu"
	"repro/internal/stats"
)

// Fig5Config parameterizes the saturation sweep.
type Fig5Config struct {
	// MaxThreads per platform, in paper order (HPU1 plotted to 10000,
	// HPU2 to 2500).
	MaxThreads []int
	Work       int
	Step       int
}

// DefaultFig5Config matches the paper's plot ranges.
func DefaultFig5Config() Fig5Config {
	return Fig5Config{MaxThreads: []int{10000, 2500}, Work: 1 << 26, Step: 32}
}

// Fig5 reproduces Figure 5: element-wise sum time as a function of the
// number of GPU threads, one series per platform, with the saturation knee
// that estimates g.
func Fig5(cfg Fig5Config) (Figure, error) {
	platforms := hpu.Platforms()
	if len(cfg.MaxThreads) != len(platforms) {
		return Figure{}, fmt.Errorf("exp: Fig5 needs %d MaxThreads entries, got %d",
			len(platforms), len(cfg.MaxThreads))
	}
	fig := Figure{
		ID:     "fig5",
		Title:  "Execution time vs parallel GPU threads (element-wise sum)",
		XLabel: "number of threads",
		YLabel: "execution time (s)",
	}
	for i, pl := range platforms {
		scfg := estimate.SaturationConfig{
			Work: cfg.Work, MaxThreads: cfg.MaxThreads[i], Step: cfg.Step, Tolerance: 0.02,
		}
		g, pts, err := estimate.EstimateG(pl, scfg)
		if err != nil {
			return Figure{}, fmt.Errorf("exp: Fig5 on %s: %w", pl.Name, err)
		}
		fig.Series = append(fig.Series, Series{Name: pl.Name, Points: pts})
		fig.Notes = append(fig.Notes,
			fmt.Sprintf("%s: knee (estimated g) = %d (paper: %d)", pl.Name, g, pl.GPU.SatThreads))
	}
	return fig, nil
}

// Fig6Config parameterizes the scalar-ratio sweep.
type Fig6Config struct {
	// Sizes per platform (the paper swept to 2·10^7 on HPU1, 9·10^6 on
	// HPU2).
	Sizes [][]int
}

// DefaultFig6Config matches the paper's size ranges.
func DefaultFig6Config() Fig6Config {
	var s1, s2 []int
	for s := 1 << 20; s <= 20_000_000; s += 1 << 21 {
		s1 = append(s1, s)
	}
	for s := 1 << 19; s <= 9_000_000; s += 1 << 20 {
		s2 = append(s2, s)
	}
	return Fig6Config{Sizes: [][]int{s1, s2}}
}

// Fig6 reproduces Figure 6: the ratio between single-thread GPU and CPU
// merge times as a function of input size, one series per platform.
func Fig6(cfg Fig6Config) (Figure, error) {
	platforms := hpu.Platforms()
	if len(cfg.Sizes) != len(platforms) {
		return Figure{}, fmt.Errorf("exp: Fig6 needs %d size lists, got %d",
			len(platforms), len(cfg.Sizes))
	}
	fig := Figure{
		ID:     "fig6",
		Title:  "Single-thread merge: GPU/CPU time ratio vs input size",
		XLabel: "test size (elements)",
		YLabel: "time GPU / time CPU",
	}
	for i, pl := range platforms {
		inv, pts, err := estimate.EstimateGammaInv(pl, estimate.GammaConfig{Sizes: cfg.Sizes[i]})
		if err != nil {
			return Figure{}, fmt.Errorf("exp: Fig6 on %s: %w", pl.Name, err)
		}
		sp := make([]stats.Point, len(pts))
		for j, p := range pts {
			sp[j] = stats.Point{X: float64(p.Size), Y: p.Ratio}
		}
		fig.Series = append(fig.Series, Series{Name: pl.Name, Points: sp})
		fig.Notes = append(fig.Notes,
			fmt.Sprintf("%s: mean 1/γ = %.1f (paper: %.0f)", pl.Name, inv, 1/pl.GPU.Gamma))
	}
	return fig, nil
}
