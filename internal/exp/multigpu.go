package exp

import (
	"context"
	"fmt"

	"repro/internal/algos/mergesort"
	"repro/internal/core"
	"repro/internal/hpu"
	"repro/internal/stats"
	"repro/internal/workload"
)

// MultiGPUConfig parameterizes the §3.2 multiple-cards extension experiment
// (the trade-off behind the paper's footnote 5: HPU1's HD 5970 has two dies
// but only one was used).
type MultiGPUConfig struct {
	Platform hpu.Platform
	LogNs    []int
	Devices  []int
	Seed     int64
}

// DefaultMultiGPUConfig sweeps 1 and 2 dies across the paper's size range.
func DefaultMultiGPUConfig() MultiGPUConfig {
	return MultiGPUConfig{
		Platform: hpu.HPU1(),
		LogNs:    []int{14, 16, 18, 20, 22, 24},
		Devices:  []int{1, 2},
		Seed:     1,
	}
}

// MultiGPU measures hybrid mergesort speedup over the 1-core baseline as a
// function of input size, one series per device count.
func MultiGPU(cfg MultiGPUConfig) (Figure, error) {
	if len(cfg.LogNs) == 0 || len(cfg.Devices) == 0 {
		return Figure{}, fmt.Errorf("exp: multi-GPU sweep needs sizes and device counts")
	}
	fig := Figure{
		ID: "multigpu",
		Title: fmt.Sprintf("Hybrid mergesort with multiple GPU dies on %s (§3.2 extension)",
			cfg.Platform.Name),
		XLabel: "input size",
		YLabel: "speedup over 1-CPU",
		LogX:   true,
		Notes: []string{
			"paper footnote 5: only one die of the HD 5970 was used — the",
			"parallelism above the transfer level cannot saturate both dies.",
		},
	}
	series := make([]Series, len(cfg.Devices))
	for i, d := range cfg.Devices {
		series[i].Name = fmt.Sprintf("%d die(s)", d)
	}
	for _, logN := range cfg.LogNs {
		n := 1 << logN
		in := workload.Uniform(n, cfg.Seed)
		seq, err := sequentialMergesort(cfg.Platform, in)
		if err != nil {
			return Figure{}, err
		}
		alpha, y, _, err := predictedOptimum(cfg.Platform, logN)
		if err != nil {
			return Figure{}, err
		}
		for i, d := range cfg.Devices {
			be, err := hpu.NewMultiSim(cfg.Platform, d)
			if err != nil {
				return Figure{}, err
			}
			s, err := mergesort.New(in)
			if err != nil {
				return Figure{}, err
			}
			rep, err := core.RunMultiGPUCtx(context.Background(), be, s, alpha, y, core.WithCoalesce())
			if err != nil {
				return Figure{}, err
			}
			if !workload.IsSorted(s.Result()) {
				return Figure{}, fmt.Errorf("exp: multi-GPU run (d=%d, n=2^%d) unsorted", d, logN)
			}
			series[i].Points = append(series[i].Points,
				stats.Point{X: float64(n), Y: seq / rep.Seconds})
		}
	}
	fig.Series = series
	return fig, nil
}
