// Package exp contains one driver per table and figure of the paper's
// evaluation (§6.4). Each driver runs the relevant workload on the simulated
// platforms and returns the series or rows the paper reports, so the
// cmd/hpubench tool (and the benchmark suite) can regenerate every artifact.
//
// The drivers accept explicit configs; Default*Config functions return
// paper-scale settings, and tests use reduced sizes. All runs are
// deterministic given the config's seed.
package exp

import (
	"context"
	"fmt"

	"repro/internal/algos/mergesort"
	"repro/internal/core"
	"repro/internal/hpu"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Series is one named curve of a figure.
type Series struct {
	Name   string
	Points []stats.Point
}

// Figure is a reproduced figure: a set of series over a common axis pair.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	// LogX indicates the paper plots this figure with a logarithmic x
	// axis (input-size sweeps).
	LogX   bool
	Series []Series
	Notes  []string
}

// Table is a reproduced table.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// machineOf extracts the model's parameter triple from a platform.
func machineOf(pl hpu.Platform) model.Machine {
	return model.Machine{P: pl.CPU.Cores, G: pl.GPU.SatThreads, Gamma: pl.GPU.Gamma}
}

// mergesortNumeric builds the level-by-level model for mergesort at n = 2^logN
// using the shared cost convention f(size) = 2·size.
func mergesortNumeric(pl hpu.Platform, logN int) (model.Numeric, error) {
	return model.NewNumeric(2, 2, logN,
		func(size float64) float64 { return 2 * size }, 0, machineOf(pl))
}

// sequentialMergesort measures the single-core recursive baseline.
func sequentialMergesort(pl hpu.Platform, in []int32) (float64, error) {
	be, err := hpu.NewSim(pl)
	if err != nil {
		return 0, err
	}
	s, err := mergesort.New(in)
	if err != nil {
		return 0, err
	}
	rep, err := core.RunSequentialCtx(context.Background(), be, s)
	if err != nil {
		return 0, err
	}
	if !workload.IsSorted(s.Result()) {
		return 0, fmt.Errorf("exp: sequential baseline produced unsorted output")
	}
	return rep.Seconds, nil
}

// advancedMergesort runs one advanced-hybrid mergesort and validates the
// output.
func advancedMergesort(pl hpu.Platform, in []int32, alpha float64, y int) (core.Report, error) {
	be, err := hpu.NewSim(pl)
	if err != nil {
		return core.Report{}, err
	}
	s, err := mergesort.New(in)
	if err != nil {
		return core.Report{}, err
	}
	rep, err := core.RunAdvancedHybridCtx(context.Background(), be, s, alpha, y, core.WithCoalesce())
	if err != nil {
		return core.Report{}, err
	}
	if !workload.IsSorted(s.Result()) {
		return core.Report{}, fmt.Errorf("exp: hybrid run (α=%g, y=%d) produced unsorted output", alpha, y)
	}
	return rep, nil
}

// clampY keeps a transfer level inside [0, L].
func clampY(y, levels int) int {
	if y < 0 {
		return 0
	}
	if y > levels {
		return levels
	}
	return y
}

// predictedOptimum returns the closed-form model's (α*, y*) for mergesort at
// n = 2^logN, with y rounded to an executable integer level.
func predictedOptimum(pl hpu.Platform, logN int) (alpha float64, y int, frac float64, err error) {
	poly, err := model.NewPoly(2, 2, float64(uint64(1)<<logN), machineOf(pl))
	if err != nil {
		return 0, 0, 0, err
	}
	a, yf, fr := poly.Optimum()
	return a, clampY(int(yf+0.5), logN), fr, nil
}
