package exp

import (
	"context"
	"fmt"

	"repro/internal/algos/mergesort"
	"repro/internal/core"
	"repro/internal/hpu"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig7Config parameterizes the α × y sweep of the advanced hybrid mergesort.
type Fig7Config struct {
	Platform hpu.Platform
	LogN     int
	// Alphas are the transfer-ratio sample points.
	Alphas []float64
	// Ys are the transfer levels, one series each (the paper plots 7–12).
	Ys   []int
	Seed int64
}

// DefaultFig7Config matches the paper: HPU1, n = 2^24, y ∈ {7..12}. (Use a
// smaller LogN for quick runs; the shape is size-stable.)
func DefaultFig7Config() Fig7Config {
	var alphas []float64
	for a := 0.02; a <= 0.35; a += 0.03 {
		alphas = append(alphas, a)
	}
	return Fig7Config{
		Platform: hpu.HPU1(),
		LogN:     24,
		Alphas:   alphas,
		Ys:       []int{7, 8, 9, 10, 11, 12},
		Seed:     1,
	}
}

// Fig7 reproduces Figure 7: speedup of the advanced hybrid mergesort over
// the 1-core recursive baseline, as a function of the work ratio α, one
// series per transfer level y.
func Fig7(cfg Fig7Config) (Figure, error) {
	if len(cfg.Alphas) == 0 || len(cfg.Ys) == 0 {
		return Figure{}, fmt.Errorf("exp: Fig7 needs nonempty alpha and y grids")
	}
	n := 1 << cfg.LogN
	in := workload.Uniform(n, cfg.Seed)
	seq, err := sequentialMergesort(cfg.Platform, in)
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID: "fig7",
		Title: fmt.Sprintf("CPU(%d)-GPU mergesort speedup vs transfer ratio on %s, n=2^%d",
			cfg.Platform.CPU.Cores, cfg.Platform.Name, cfg.LogN),
		XLabel: "transfer ratio (alpha)",
		YLabel: "speedup over 1-CPU",
	}
	for _, y := range cfg.Ys {
		yc := clampY(y, cfg.LogN)
		s := Series{Name: fmt.Sprintf("y=%d", y)}
		for _, alpha := range cfg.Alphas {
			rep, err := advancedMergesort(cfg.Platform, in, alpha, yc)
			if err != nil {
				return Figure{}, err
			}
			s.Points = append(s.Points, stats.Point{X: alpha, Y: seq / rep.Seconds})
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes,
		"paper (HPU1, n=2^24): peak ~4.5x near alpha~0.16, best levels 9-11")
	return fig, nil
}

// SweepConfig parameterizes the per-size parameter sweep shared by Fig 8 and
// Fig 10.
type SweepConfig struct {
	Platform hpu.Platform
	// LogNs are the input sizes, as exponents of 2.
	LogNs []int
	// AlphaFactors scale the model-predicted α* to form the local search
	// grid, as the paper's per-size tuning does.
	AlphaFactors []float64
	// YOffsets are added to the model-predicted transfer level.
	YOffsets []int
	Seed     int64
}

// DefaultSweepConfig covers the paper's size range at sweep cost that stays
// tractable in simulation (the paper plots 10^3..10^8; 2^10..2^24 spans it
// up to the last half-decade).
func DefaultSweepConfig(pl hpu.Platform) SweepConfig {
	return SweepConfig{
		Platform:     pl,
		LogNs:        []int{10, 12, 14, 16, 18, 20, 22, 24},
		AlphaFactors: []float64{0.5, 0.75, 1.0, 1.25, 1.5},
		YOffsets:     []int{-1, 0, 1},
		Seed:         1,
	}
}

// SizeResult is the sweep outcome for one input size.
type SizeResult struct {
	LogN int
	// SeqSeconds is the 1-core recursive baseline.
	SeqSeconds float64
	// BestSeconds is the fastest hybrid run, achieved at BestAlpha/BestY.
	BestSeconds float64
	BestAlpha   float64
	BestY       int
	// BestReport carries the phase breakdown of the best run.
	BestReport core.Report
	// PredAlpha, PredY are the closed-form model's optimal parameters.
	PredAlpha float64
	PredY     int
	// PredSpeedup is the numeric model's predicted speedup at the
	// predicted parameters.
	PredSpeedup float64
}

// MergesortSweep runs, for each size, a local parameter sweep around the
// model's predicted optimum and records the best measured configuration —
// the methodology behind Figs 8 and 10.
func MergesortSweep(cfg SweepConfig) ([]SizeResult, error) {
	if len(cfg.LogNs) == 0 || len(cfg.AlphaFactors) == 0 || len(cfg.YOffsets) == 0 {
		return nil, fmt.Errorf("exp: sweep needs nonempty size and parameter grids")
	}
	var out []SizeResult
	for _, logN := range cfg.LogNs {
		if logN < 2 || logN > 30 {
			return nil, fmt.Errorf("exp: logN %d out of range [2,30]", logN)
		}
		n := 1 << logN
		in := workload.Uniform(n, cfg.Seed)
		res := SizeResult{LogN: logN}

		var err error
		res.SeqSeconds, err = sequentialMergesort(cfg.Platform, in)
		if err != nil {
			return nil, err
		}

		var predFrac float64
		res.PredAlpha, res.PredY, predFrac, err = predictedOptimum(cfg.Platform, logN)
		if err != nil {
			return nil, err
		}
		_ = predFrac

		num, err := mergesortNumeric(cfg.Platform, logN)
		if err != nil {
			return nil, err
		}
		pred, err := num.PredictAdvanced(res.PredAlpha, res.PredY,
			num.DefaultSplit(res.PredAlpha, res.PredY))
		if err != nil {
			return nil, err
		}
		res.PredSpeedup = num.SequentialTime() / pred.Makespan

		res.BestSeconds = -1
		for _, f := range cfg.AlphaFactors {
			alpha := res.PredAlpha * f
			if alpha <= 0 || alpha >= 1 {
				continue
			}
			for _, dy := range cfg.YOffsets {
				y := clampY(res.PredY+dy, logN)
				rep, err := advancedMergesort(cfg.Platform, in, alpha, y)
				if err != nil {
					return nil, err
				}
				if res.BestSeconds < 0 || rep.Seconds < res.BestSeconds {
					res.BestSeconds = rep.Seconds
					res.BestAlpha = alpha
					res.BestY = y
					res.BestReport = rep
				}
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// Fig8 reproduces Figure 8: hybrid mergesort speedup as a function of input
// size — measured at the per-size best parameters (red), the model's
// predicted speedup (green), and the ratio between the GPU chain's time and
// the CPU's fully-utilized time (blue).
func Fig8(cfg SweepConfig) (Figure, error) {
	results, err := MergesortSweep(cfg)
	if err != nil {
		return Figure{}, err
	}
	var measured, predicted, ratio []stats.Point
	for _, r := range results {
		x := float64(uint64(1) << r.LogN)
		measured = append(measured, stats.Point{X: x, Y: r.SeqSeconds / r.BestSeconds})
		predicted = append(predicted, stats.Point{X: x, Y: r.PredSpeedup})
		if r.BestReport.CPUPortionSeconds > 0 {
			ratio = append(ratio, stats.Point{
				X: x,
				Y: r.BestReport.GPUPortionSeconds / r.BestReport.CPUPortionSeconds,
			})
		}
	}
	return Figure{
		ID:     "fig8",
		Title:  fmt.Sprintf("Hybrid mergesort speedups on %s", cfg.Platform.Name),
		XLabel: "input size",
		YLabel: "speedup",
		LogX:   true,
		Series: []Series{
			{Name: "time(CPU(1))/time(hybrid)", Points: measured},
			{Name: "predicted", Points: predicted},
			{Name: "GPU/CPU", Points: ratio},
		},
		Notes: []string{
			"paper: max 4.54x on HPU1 / 4.35x on HPU2; predicted 5.47x / 5.7x",
			"paper: speedups decline past n=2^20 (LLC exhaustion)",
		},
	}, nil
}

// Fig10 reproduces Figure 10: the work ratio α (left) and transfer level y
// (right) that gave the best measured time per input size, against the
// model's predictions.
func Fig10(cfg SweepConfig) (Figure, Figure, error) {
	results, err := MergesortSweep(cfg)
	if err != nil {
		return Figure{}, Figure{}, err
	}
	var obA, prA, obY, prY []stats.Point
	for _, r := range results {
		x := float64(uint64(1) << r.LogN)
		obA = append(obA, stats.Point{X: x, Y: r.BestAlpha})
		prA = append(prA, stats.Point{X: x, Y: r.PredAlpha})
		obY = append(obY, stats.Point{X: x, Y: float64(r.BestY)})
		prY = append(prY, stats.Point{X: x, Y: float64(r.PredY)})
	}
	alphaFig := Figure{
		ID:     "fig10a",
		Title:  fmt.Sprintf("Optimal work ratio vs input size on %s", cfg.Platform.Name),
		XLabel: "input size",
		YLabel: "ratio alpha",
		LogX:   true,
		Series: []Series{
			{Name: "obtained ratio", Points: obA},
			{Name: "predicted", Points: prA},
		},
		Notes: []string{"paper: obtained values approach predictions as n grows"},
	}
	levelFig := Figure{
		ID:     "fig10b",
		Title:  fmt.Sprintf("Optimal transfer level vs input size on %s", cfg.Platform.Name),
		XLabel: "input size",
		YLabel: "level y",
		LogX:   true,
		Series: []Series{
			{Name: "obtained level", Points: obY},
			{Name: "predicted", Points: prY},
		},
		Notes: []string{"paper: obtained levels coincide with predictions at large n"},
	}
	return alphaFig, levelFig, nil
}

// Fig9Config parameterizes the GPU-only parallel-merge baseline sweep.
type Fig9Config struct {
	Platform hpu.Platform
	LogNs    []int
	Seed     int64
}

// DefaultFig9Config matches the paper's HPU1 sweep.
func DefaultFig9Config() Fig9Config {
	return Fig9Config{
		Platform: hpu.HPU1(),
		LogNs:    []int{10, 12, 14, 16, 18, 20, 22, 24},
		Seed:     1,
	}
}

// Fig9 reproduces Figure 9: times (left axis series) and speedups over the
// 1-core recursive baseline (right series) of the GPU-only mergesort with
// parallel binary-search merges, with and without transfer overhead.
func Fig9(cfg Fig9Config) (Figure, Figure, error) {
	if len(cfg.LogNs) == 0 {
		return Figure{}, Figure{}, fmt.Errorf("exp: Fig9 needs at least one size")
	}
	var tCPU, tSort, tTotal []stats.Point
	var spSort, spTotal []stats.Point
	for _, logN := range cfg.LogNs {
		n := 1 << logN
		in := workload.Uniform(n, cfg.Seed)
		seq, err := sequentialMergesort(cfg.Platform, in)
		if err != nil {
			return Figure{}, Figure{}, err
		}
		be, err := hpu.NewSim(cfg.Platform)
		if err != nil {
			return Figure{}, Figure{}, err
		}
		s, err := mergesort.NewParallel(in)
		if err != nil {
			return Figure{}, Figure{}, err
		}
		rep, err := core.RunGPUOnlyCtx(context.Background(), be, s)
		if err != nil {
			return Figure{}, Figure{}, err
		}
		if !workload.IsSorted(s.Result()) {
			return Figure{}, Figure{}, fmt.Errorf("exp: gpu-only run at n=2^%d unsorted", logN)
		}
		x := float64(n)
		tCPU = append(tCPU, stats.Point{X: x, Y: seq})
		tSort = append(tSort, stats.Point{X: x, Y: rep.GPUPortionSeconds})
		tTotal = append(tTotal, stats.Point{X: x, Y: rep.Seconds})
		spSort = append(spSort, stats.Point{X: x, Y: seq / rep.GPUPortionSeconds})
		spTotal = append(spTotal, stats.Point{X: x, Y: seq / rep.Seconds})
	}
	times := Figure{
		ID:     "fig9a",
		Title:  fmt.Sprintf("Mergesort times on %s (GPU parallel merge)", cfg.Platform.Name),
		XLabel: "input size",
		YLabel: "time (s)",
		LogX:   true,
		Series: []Series{
			{Name: "time(GPU) sort", Points: tSort},
			{Name: "time(GPU) sort + transfer", Points: tTotal},
			{Name: "time(CPU)", Points: tCPU},
		},
	}
	speedups := Figure{
		ID:     "fig9b",
		Title:  fmt.Sprintf("Parallel GPU mergesort speedups on %s", cfg.Platform.Name),
		XLabel: "input size",
		YLabel: "speedup over 1-CPU",
		LogX:   true,
		Series: []Series{
			{Name: "time(CPU)/time(GPU) sort", Points: spSort},
			{Name: "time(CPU)/time(GPU) sort + transfer", Points: spTotal},
		},
		Notes: []string{
			"paper: 18-20x sort-only at large n, ~12x including transfers",
		},
	}
	return times, speedups, nil
}
