package exp

import (
	"math"
	"testing"

	"repro/internal/hpu"
	"repro/internal/model"
	"repro/internal/workload"
)

// mergesortExtended builds the §7 refined model for mergesort on a platform.
func mergesortExtended(pl hpu.Platform, logN int) (model.Extended, error) {
	num, err := mergesortNumeric(pl, logN)
	if err != nil {
		return model.Extended{}, err
	}
	return model.NewExtended(num, model.ExtendedParams{
		CoreRate:             pl.CPU.RateOpsPerSec,
		MemBW:                pl.CPU.MemBWOpsPerSec,
		LLCBytes:             pl.CPU.LLCBytes,
		BytesPerSize:         8, // src + dst int32 per merged element
		TransferBytesPerSize: 4,
		HideFactor:           pl.GPU.HideFactor,
		Divergent:            true, // sequential merge per work-item
		LaunchSec:            pl.GPU.LaunchOverheadSec,
		DispatchSec:          pl.CPU.DispatchOverheadSec,
		LinkLatencySec:       pl.Link.LatencySec,
		LinkSecPerByte:       pl.Link.SecPerByte,
	})
}

// TestExtendedModelAccuracy quantifies the paper's §7 conjecture: adding
// cache, communication and scheduling costs to the model makes it track the
// measured (simulated) times much more closely than the abstract §5 model.
func TestExtendedModelAccuracy(t *testing.T) {
	const logN = 18
	pl := hpu.HPU1()
	in := workload.Uniform(1<<logN, 8)
	num, err := mergesortNumeric(pl, logN)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := mergesortExtended(pl, logN)
	if err != nil {
		t.Fatal(err)
	}

	var plainErr, extErr float64
	cells := 0
	for _, alpha := range []float64{0.08, 0.17, 0.3} {
		for _, y := range []int{6, 8, 10} {
			s := num.DefaultSplit(alpha, y)
			plain, err := num.PredictAdvanced(alpha, y, s)
			if err != nil {
				t.Fatal(err)
			}
			refined, err := ext.PredictAdvancedSeconds(alpha, y, s)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := advancedMergesort(pl, in, alpha, y)
			if err != nil {
				t.Fatal(err)
			}
			plainSec := plain.Makespan / pl.CPU.RateOpsPerSec
			plainErr += math.Abs(plainSec-rep.Seconds) / rep.Seconds
			extErr += math.Abs(refined.Makespan-rep.Seconds) / rep.Seconds
			cells++
		}
	}
	plainErr /= float64(cells)
	extErr /= float64(cells)
	t.Logf("mean relative error: plain %.1f%%, extended %.1f%%", 100*plainErr, 100*extErr)
	if extErr >= plainErr {
		t.Errorf("extended model (%.3f) no better than plain (%.3f)", extErr, plainErr)
	}
	if extErr > 0.15 {
		t.Errorf("extended model mean error %.1f%% exceeds 15%%", 100*extErr)
	}
}

// TestExtendedSequentialMatchesSim anchors the extended calibration.
func TestExtendedSequentialMatchesSim(t *testing.T) {
	const logN = 16
	pl := hpu.HPU2()
	ext, err := mergesortExtended(pl, logN)
	if err != nil {
		t.Fatal(err)
	}
	in := workload.Uniform(1<<logN, 9)
	seq, err := sequentialMergesort(pl, in)
	if err != nil {
		t.Fatal(err)
	}
	want := ext.SequentialSeconds()
	if seq < 0.97*want || seq > 1.06*want {
		t.Errorf("sim sequential %.6fs vs extended model %.6fs", seq, want)
	}
}

// TestExtendedBestParamsNearSweepBest: the refined model's chosen (α, y)
// should be competitive with the sweep's best measured configuration.
func TestExtendedBestParamsNearSweepBest(t *testing.T) {
	const logN = 16
	pl := hpu.HPU1()
	in := workload.Uniform(1<<logN, 10)
	ext, err := mergesortExtended(pl, logN)
	if err != nil {
		t.Fatal(err)
	}
	alpha, y, _ := ext.BestAdvancedSeconds(40)
	chosen, err := advancedMergesort(pl, in, alpha, y)
	if err != nil {
		t.Fatal(err)
	}

	// Small sweep around the plain model's optimum for a reference best.
	cfg := DefaultSweepConfig(pl)
	cfg.LogNs = []int{logN}
	results, err := MergesortSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	best := results[0].BestSeconds
	if chosen.Seconds > 1.15*best {
		t.Errorf("extended-model params (α=%.2f y=%d → %.5fs) >15%% worse than sweep best %.5fs",
			alpha, y, chosen.Seconds, best)
	}
}

func TestExtendedValidation(t *testing.T) {
	num, _ := model.NewNumeric(2, 2, 8, func(s float64) float64 { return s }, 0,
		model.Machine{P: 4, G: 64, Gamma: 0.1})
	bad := model.ExtendedParams{}
	if _, err := model.NewExtended(num, bad); err == nil {
		t.Error("NewExtended accepted zero params")
	}
	ext, err := mergesortExtended(hpu.HPU1(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ext.PredictAdvancedSeconds(2, 4, 2); err == nil {
		t.Error("accepted alpha > 1")
	}
	if _, err := ext.PredictAdvancedSeconds(0.5, 99, 2); err == nil {
		t.Error("accepted y > L")
	}
}
