package vtime

// Resource models a pool of identical servers (e.g. CPU cores, a DMA link)
// with FIFO admission. Requests acquire one server for a caller-computed
// duration and release it automatically when the duration elapses.
//
// The duration of a request may depend on how many servers are busy when it
// starts (e.g. memory-bandwidth contention), so it is supplied by a callback
// invoked at dispatch time.
type Resource struct {
	eng      *Engine
	capacity int
	busy     int
	waiting  []request
	// totalBusy accumulates server-seconds of usage for utilization stats.
	totalBusy float64
}

type request struct {
	// duration computes the service time given the number of servers that
	// are busy including this one.
	duration func(active int) float64
	done     func()
}

// NewResource creates a resource with the given number of servers.
func NewResource(eng *Engine, capacity int) *Resource {
	if capacity <= 0 {
		panic("vtime: resource capacity must be positive")
	}
	return &Resource{eng: eng, capacity: capacity}
}

// Capacity reports the number of servers.
func (r *Resource) Capacity() int { return r.capacity }

// Busy reports how many servers are currently serving requests.
func (r *Resource) Busy() int { return r.busy }

// QueueLen reports how many requests are waiting for a server.
func (r *Resource) QueueLen() int { return len(r.waiting) }

// BusySeconds reports accumulated server-seconds of service.
func (r *Resource) BusySeconds() float64 { return r.totalBusy }

// Request asks for one server. duration is evaluated when the request is
// dispatched and receives the number of busy servers including this request;
// done runs when service completes. Requests are served FIFO.
func (r *Resource) Request(duration func(active int) float64, done func()) {
	if duration == nil {
		panic("vtime: nil duration function")
	}
	req := request{duration: duration, done: done}
	if r.busy < r.capacity {
		r.dispatch(req)
		return
	}
	r.waiting = append(r.waiting, req)
}

// RequestFixed is Request with a precomputed duration.
func (r *Resource) RequestFixed(d float64, done func()) {
	r.Request(func(int) float64 { return d }, done)
}

func (r *Resource) dispatch(req request) {
	r.busy++
	d := req.duration(r.busy)
	if d < 0 {
		panic("vtime: negative service duration")
	}
	r.totalBusy += d
	r.eng.After(d, func() {
		r.busy--
		if req.done != nil {
			req.done()
		}
		// Serve the next waiting request, if any. Done callbacks may have
		// enqueued more work already; FIFO order is preserved.
		if len(r.waiting) > 0 && r.busy < r.capacity {
			next := r.waiting[0]
			copy(r.waiting, r.waiting[1:])
			r.waiting = r.waiting[:len(r.waiting)-1]
			r.dispatch(next)
		}
	})
}
