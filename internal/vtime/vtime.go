// Package vtime provides a deterministic discrete-event simulation engine
// with a virtual clock measured in seconds.
//
// The engine executes scheduled events in nondecreasing time order. Events
// scheduled for the same instant run in FIFO order of scheduling, which keeps
// simulations fully deterministic. All methods must be called from a single
// goroutine (typically the one driving Engine.Run); the engine performs no
// internal locking.
package vtime

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since the start of the
// simulation.
type Time = float64

// Event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is ready to use and
// starts at time 0.
type Engine struct {
	now   Time
	queue eventHeap
	seq   uint64
	// processed counts executed events, for diagnostics and loop guards.
	processed uint64
	// MaxEvents, when nonzero, bounds the number of events Run will execute
	// before panicking; it guards against runaway self-scheduling loops in
	// tests.
	MaxEvents uint64
}

// New returns a fresh engine at time zero.
func New() *Engine { return &Engine{} }

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed reports how many events have been executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending reports how many events are queued but not yet executed.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) panics: it indicates a cost-model bug rather than a recoverable
// condition.
func (e *Engine) At(t Time, fn func()) {
	if fn == nil {
		panic("vtime: nil event function")
	}
	if t < e.now {
		panic(fmt.Sprintf("vtime: scheduling into the past: t=%g now=%g", t, e.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("vtime: non-finite event time %g", t))
	}
	e.seq++
	heap.Push(&e.queue, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d seconds from now. Negative delays panic.
func (e *Engine) After(d float64, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("vtime: negative delay %g", d))
	}
	e.At(e.now+d, fn)
}

// Run executes events until the queue is empty. Event functions may schedule
// further events; they run in time order.
func (e *Engine) Run() {
	for len(e.queue) > 0 {
		e.step()
	}
}

// RunUntil executes events with time <= t, then advances the clock to t.
// Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t Time) {
	for len(e.queue) > 0 && e.queue[0].at <= t {
		e.step()
	}
	if t > e.now {
		e.now = t
	}
}

func (e *Engine) step() {
	ev := heap.Pop(&e.queue).(event)
	e.now = ev.at
	e.processed++
	if e.MaxEvents != 0 && e.processed > e.MaxEvents {
		panic(fmt.Sprintf("vtime: exceeded MaxEvents=%d (runaway event loop?)", e.MaxEvents))
	}
	ev.fn()
}
