package vtime

import (
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	e.At(3, func() { order = append(order, 3) })
	e.At(1, func() { order = append(order, 1) })
	e.At(2, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("execution order = %v, want [1 2 3]", order)
	}
	if e.Now() != 3 {
		t.Errorf("Now() = %g, want 3", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of FIFO order: %v", order)
		}
	}
}

func TestAfterAndNesting(t *testing.T) {
	e := New()
	var times []Time
	e.After(1, func() {
		times = append(times, e.Now())
		e.After(2, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("times = %v, want [1 3]", times)
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	ran := 0
	e.At(1, func() { ran++ })
	e.At(5, func() { ran++ })
	e.RunUntil(2)
	if ran != 1 {
		t.Errorf("ran = %d, want 1", ran)
	}
	if e.Now() != 2 {
		t.Errorf("Now() = %g, want 2", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", e.Pending())
	}
	e.Run()
	if ran != 2 || e.Now() != 5 {
		t.Errorf("after Run: ran=%d Now=%g", ran, e.Now())
	}
}

func TestPanicsOnPastScheduling(t *testing.T) {
	e := New()
	e.At(5, func() {})
	e.Run()
	assertPanics(t, "past", func() { e.At(1, func() {}) })
	assertPanics(t, "negative delay", func() { e.After(-1, func() {}) })
	assertPanics(t, "nil fn", func() { e.At(10, nil) })
}

func TestMaxEventsGuard(t *testing.T) {
	e := New()
	e.MaxEvents = 10
	var loop func()
	loop = func() { e.After(1, loop) }
	e.After(1, loop)
	assertPanics(t, "runaway loop", e.Run)
}

func TestResourceCapacityAndFIFO(t *testing.T) {
	e := New()
	r := NewResource(e, 2)
	var done []int
	for i := 0; i < 4; i++ {
		i := i
		r.RequestFixed(1, func() { done = append(done, i) })
	}
	if r.Busy() != 2 || r.QueueLen() != 2 {
		t.Fatalf("busy=%d queued=%d, want 2/2", r.Busy(), r.QueueLen())
	}
	e.Run()
	if e.Now() != 2 {
		t.Errorf("4 unit jobs on 2 servers finished at %g, want 2", e.Now())
	}
	for i, v := range done {
		if v != i {
			t.Fatalf("completion order = %v, want FIFO", done)
		}
	}
	if r.BusySeconds() != 4 {
		t.Errorf("BusySeconds = %g, want 4", r.BusySeconds())
	}
}

func TestResourceActiveCount(t *testing.T) {
	e := New()
	r := NewResource(e, 3)
	var actives []int
	for i := 0; i < 3; i++ {
		r.Request(func(active int) float64 {
			actives = append(actives, active)
			return 1
		}, nil)
	}
	e.Run()
	if len(actives) != 3 || actives[0] != 1 || actives[1] != 2 || actives[2] != 3 {
		t.Errorf("active counts = %v, want [1 2 3]", actives)
	}
}

func TestResourceValidation(t *testing.T) {
	e := New()
	assertPanics(t, "zero capacity", func() { NewResource(e, 0) })
	r := NewResource(e, 1)
	assertPanics(t, "nil duration", func() { r.Request(nil, nil) })
	assertPanics(t, "negative duration", func() {
		r.RequestFixed(-1, nil)
		e.Run()
	})
}

// TestResourceConservation checks a queueing invariant with random jobs:
// total busy time equals the sum of service durations, and the makespan is
// at least total/capacity.
func TestResourceConservation(t *testing.T) {
	f := func(durRaw []uint8, capRaw uint8) bool {
		if len(durRaw) == 0 {
			return true
		}
		capacity := 1 + int(capRaw%8)
		e := New()
		r := NewResource(e, capacity)
		total := 0.0
		for _, d := range durRaw {
			dur := float64(d%100) / 10
			total += dur
			r.RequestFixed(dur, nil)
		}
		e.Run()
		if r.BusySeconds() != total {
			return false
		}
		return e.Now() >= total/float64(capacity)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
