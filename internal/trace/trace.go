// Package trace records execution timelines of hybrid runs: every batch
// submitted to a processing unit and every link transfer becomes a span.
// A Recorder wraps any core.Backend, so both the simulated and the native
// backends can be traced. Spans carry a job ID and recursion level, so a
// serving deployment can trace many concurrent jobs into one recorder and
// still attribute every interval. Spans can be summarized (per-unit
// utilization), rendered as an ASCII Gantt chart, or exported as Chrome
// trace-event JSON for chrome://tracing — grouped per job in the viewer.
//
// A Recorder built with NewRecorder grows without bound, which suits one-off
// runs; a busy server should use NewRecorderLimit, whose bounded ring buffer
// keeps only the most recent spans (Dropped reports how many were evicted),
// so tracing can stay on continuously at a fixed memory cost.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
)

// Unit identifies a resource lane in the timeline.
type Unit string

// The units recorded by a wrapped backend.
const (
	UnitCPU  Unit = "cpu"
	UnitGPU  Unit = "gpu"
	UnitLink Unit = "link"
)

// Span is one recorded interval.
type Span struct {
	Unit  Unit
	Label string
	// Job attributes the span to a serving-layer job; 0 means a direct
	// (unserved) run. Scoped recorders (Recorder.Scope) stamp it.
	Job uint64
	// Level is the recursion level the span's batch belongs to (0 = root);
	// meaningful only for unit spans whose batch was stamped by an executor.
	Level int
	// Start and End are backend timestamps in seconds.
	Start, End float64
}

// Duration returns the span length.
func (s Span) Duration() float64 { return s.End - s.Start }

// Adder is anything spans can be recorded into: a *Recorder, or a scoped
// view of one.
type Adder interface {
	Add(Span)
}

// Recorder collects spans. It is safe for concurrent use (the native
// backend completes batches on multiple goroutines). With a capacity limit
// it is a ring buffer: the newest span evicts the oldest.
type Recorder struct {
	mu      sync.Mutex
	spans   []Span
	limit   int // 0 = unbounded
	next    int // ring write index, used once len(spans) == limit
	dropped uint64
}

// NewRecorder returns an empty, unbounded recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// NewRecorderLimit returns a recorder that retains at most limit spans,
// evicting the oldest when full. limit <= 0 means unbounded.
func NewRecorderLimit(limit int) *Recorder {
	if limit < 0 {
		limit = 0
	}
	return &Recorder{limit: limit}
}

// Add appends a span, evicting the oldest if the recorder is at capacity.
func (r *Recorder) Add(s Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.limit > 0 && len(r.spans) == r.limit {
		r.spans[r.next] = s
		r.next = (r.next + 1) % r.limit
		r.dropped++
		return
	}
	r.spans = append(r.spans, s)
}

// Dropped reports how many spans the ring buffer has evicted.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Len reports how many spans are currently retained.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Scope returns a view of the recorder that stamps every added span with the
// given job ID. Concurrent jobs can each hold their own scope over one
// shared recorder.
func (r *Recorder) Scope(job uint64) *Scope { return &Scope{r: r, job: job} }

// Scope is a per-job view of a Recorder.
type Scope struct {
	r   *Recorder
	job uint64
}

// Add stamps the span with the scope's job ID and records it.
func (s *Scope) Add(sp Span) {
	sp.Job = s.job
	s.r.Add(sp)
}

// Spans returns a copy of the recorded spans sorted by start time.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]Span(nil), r.spans...)
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Utilization reports, per unit, the fraction of the overall makespan the
// unit spent busy (span overlap within a unit is not double-counted).
func (r *Recorder) Utilization() map[Unit]float64 {
	spans := r.Spans()
	if len(spans) == 0 {
		return nil
	}
	t0, t1 := spans[0].Start, spans[0].End
	perUnit := map[Unit][]Span{}
	for _, s := range spans {
		if s.Start < t0 {
			t0 = s.Start
		}
		if s.End > t1 {
			t1 = s.End
		}
		perUnit[s.Unit] = append(perUnit[s.Unit], s)
	}
	total := t1 - t0
	if total <= 0 {
		return nil
	}
	out := map[Unit]float64{}
	for unit, ss := range perUnit {
		// Merge overlapping intervals before summing.
		sort.Slice(ss, func(i, j int) bool { return ss[i].Start < ss[j].Start })
		busy, curS, curE := 0.0, ss[0].Start, ss[0].End
		for _, s := range ss[1:] {
			if s.Start > curE {
				busy += curE - curS
				curS, curE = s.Start, s.End
			} else if s.End > curE {
				curE = s.End
			}
		}
		busy += curE - curS
		out[unit] = busy / total
	}
	return out
}

// Gantt renders the timeline as an ASCII chart with one row per unit.
func (r *Recorder) Gantt(width int) string {
	spans := r.Spans()
	if len(spans) == 0 {
		return "(no spans)\n"
	}
	if width < 20 {
		width = 20
	}
	t0, t1 := spans[0].Start, spans[0].End
	for _, s := range spans {
		if s.Start < t0 {
			t0 = s.Start
		}
		if s.End > t1 {
			t1 = s.End
		}
	}
	scale := float64(width) / (t1 - t0)
	rows := map[Unit][]byte{}
	order := []Unit{UnitCPU, UnitGPU, UnitLink}
	for _, u := range order {
		rows[u] = []byte(strings.Repeat(".", width))
	}
	for _, s := range spans {
		row, ok := rows[s.Unit]
		if !ok {
			row = []byte(strings.Repeat(".", width))
			rows[s.Unit] = row
			order = append(order, s.Unit)
		}
		from := int((s.Start - t0) * scale)
		to := int((s.End - t0) * scale)
		if to >= width {
			to = width - 1
		}
		for i := from; i <= to; i++ {
			row[i] = '#'
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline %.6fs .. %.6fs\n", t0, t1)
	for _, u := range order {
		fmt.Fprintf(&b, "%5s |%s|\n", u, rows[u])
	}
	return b.String()
}

// chromeEvent is one Chrome trace-event (phase "X": complete event).
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

// WriteChromeTrace emits the spans as a Chrome trace-event JSON array,
// loadable in chrome://tracing or Perfetto. Each job becomes one process
// group (pid = job ID + 1; direct runs are pid 1), with one thread lane per
// unit, so a multi-job server trace stays readable.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	tids := map[Unit]int{UnitCPU: 1, UnitGPU: 2, UnitLink: 3}
	var events []chromeEvent
	for _, s := range r.Spans() {
		tid, ok := tids[s.Unit]
		if !ok {
			tid = len(tids) + 1
			tids[s.Unit] = tid
		}
		name := s.Label
		if s.Level > 0 {
			name = fmt.Sprintf("L%d %s", s.Level, s.Label)
		}
		events = append(events, chromeEvent{
			Name: name, Ph: "X",
			Ts: s.Start * 1e6, Dur: s.Duration() * 1e6,
			PID: int(s.Job) + 1, TID: tid,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// Backend wraps a core.Backend, recording every batch and transfer.
type Backend struct {
	inner core.Backend
	rec   Adder
	cpu   core.LevelExecutor
	gpu   core.LevelExecutor
}

var _ core.Backend = (*Backend)(nil)

// Wrap returns a tracing view of be that records into rec — a *Recorder, or
// a per-job Scope of one.
func Wrap(be core.Backend, rec Adder) *Backend {
	t := &Backend{inner: be, rec: rec}
	t.cpu = &tracedExecutor{inner: be.CPU(), unit: UnitCPU, be: be, rec: rec}
	if g := be.GPU(); g != nil {
		t.gpu = &tracedExecutor{inner: g, unit: UnitGPU, be: be, rec: rec}
	}
	return t
}

// CPU implements core.Backend.
func (t *Backend) CPU() core.LevelExecutor { return t.cpu }

// GPU implements core.Backend.
func (t *Backend) GPU() core.LevelExecutor { return t.gpu }

// GPUGamma implements core.Backend.
func (t *Backend) GPUGamma() float64 { return t.inner.GPUGamma() }

// TransferToGPU implements core.Backend.
func (t *Backend) TransferToGPU(n int64, done func()) {
	start := t.inner.Now()
	t.inner.TransferToGPU(n, func() {
		t.rec.Add(Span{Unit: UnitLink, Label: fmt.Sprintf("to-gpu %dB", n),
			Start: start, End: t.inner.Now()})
		done()
	})
}

// TransferToCPU implements core.Backend.
func (t *Backend) TransferToCPU(n int64, done func()) {
	start := t.inner.Now()
	t.inner.TransferToCPU(n, func() {
		t.rec.Add(Span{Unit: UnitLink, Label: fmt.Sprintf("to-cpu %dB", n),
			Start: start, End: t.inner.Now()})
		done()
	})
}

// Now implements core.Backend.
func (t *Backend) Now() float64 { return t.inner.Now() }

// Wait implements core.Backend.
func (t *Backend) Wait() { t.inner.Wait() }

// Autonomous forwards the wrapped backend's core.Autonomous marker, so
// executors drive a traced native backend the same way as a bare one.
func (t *Backend) Autonomous() bool {
	a, ok := t.inner.(core.Autonomous)
	return ok && a.Autonomous()
}

// Closed forwards the wrapped backend's core.Closer state.
func (t *Backend) Closed() bool {
	c, ok := t.inner.(core.Closer)
	return ok && c.Closed()
}

// Fault forwards the wrapped backend's core.Faulter state, so a fault
// injector beneath the tracer still reaches the executor's settlement.
func (t *Backend) Fault() error {
	if f, ok := t.inner.(core.Faulter); ok {
		return f.Fault()
	}
	return nil
}

type tracedExecutor struct {
	inner core.LevelExecutor
	unit  Unit
	be    core.Backend
	rec   Adder
}

// Parallelism implements core.LevelExecutor.
func (e *tracedExecutor) Parallelism() int { return e.inner.Parallelism() }

// Submit implements core.LevelExecutor. The span covers queueing plus
// service, bracketed by backend timestamps, and carries the batch's
// recursion level.
func (e *tracedExecutor) Submit(b core.Batch, done func()) {
	if b.Empty() {
		if done != nil {
			done()
		}
		return
	}
	start := e.be.Now()
	label := fmt.Sprintf("%d tasks x %.0f ops", b.Tasks, b.Cost.Ops)
	level := b.Level
	e.inner.Submit(b, func() {
		e.rec.Add(Span{Unit: e.unit, Label: label, Level: level, Start: start, End: e.be.Now()})
		if done != nil {
			done()
		}
	})
}
