package trace

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"

	"repro/internal/algos/mergesort"
	"repro/internal/core"
	"repro/internal/hpu"
	"repro/internal/workload"
)

func tracedRun(t *testing.T) *Recorder {
	t.Helper()
	rec := NewRecorder()
	be := Wrap(hpu.MustSim(hpu.HPU1()), rec)
	in := workload.Uniform(1<<10, 1)
	s, err := mergesort.New(in)
	if err != nil {
		t.Fatal(err)
	}
	prm := core.AdvancedParams{Alpha: 0.25, Y: 5, Split: -1}
	if _, err := core.RunAdvancedHybrid(be, s, prm, core.Options{Coalesce: true}); err != nil {
		t.Fatal(err)
	}
	want := append([]int32(nil), in...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i, v := range s.Result() {
		if v != want[i] {
			t.Fatal("traced run produced unsorted output")
		}
	}
	return rec
}

func TestRecorderCapturesAllUnits(t *testing.T) {
	rec := tracedRun(t)
	seen := map[Unit]bool{}
	for _, s := range rec.Spans() {
		seen[s.Unit] = true
		if s.End < s.Start {
			t.Errorf("span %q ends before it starts", s.Label)
		}
	}
	for _, u := range []Unit{UnitCPU, UnitGPU, UnitLink} {
		if !seen[u] {
			t.Errorf("no spans recorded for unit %s", u)
		}
	}
	// The advanced division performs exactly two transfers.
	links := 0
	for _, s := range rec.Spans() {
		if s.Unit == UnitLink {
			links++
		}
	}
	if links != 2 {
		t.Errorf("link spans = %d, want 2 (the paper's single round trip)", links)
	}
}

func TestSpansSortedByStart(t *testing.T) {
	spans := tracedRun(t).Spans()
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatal("Spans() not sorted by start time")
		}
	}
}

func TestUtilization(t *testing.T) {
	util := tracedRun(t).Utilization()
	for u, f := range util {
		if f <= 0 || f > 1 {
			t.Errorf("utilization[%s] = %g outside (0,1]", u, f)
		}
	}
	if util[UnitCPU] == 0 {
		t.Error("CPU utilization missing")
	}
}

func TestUtilizationMergesOverlaps(t *testing.T) {
	rec := NewRecorder()
	rec.Add(Span{Unit: UnitCPU, Start: 0, End: 2})
	rec.Add(Span{Unit: UnitCPU, Start: 1, End: 3})
	rec.Add(Span{Unit: UnitGPU, Start: 0, End: 4})
	util := rec.Utilization()
	if got := util[UnitCPU]; got != 0.75 {
		t.Errorf("CPU utilization = %g, want 0.75 (merged 0..3 over 0..4)", got)
	}
	if got := util[UnitGPU]; got != 1.0 {
		t.Errorf("GPU utilization = %g, want 1", got)
	}
}

func TestGantt(t *testing.T) {
	out := tracedRun(t).Gantt(60)
	for _, want := range []string{"cpu", "gpu", "link", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("Gantt output missing %q:\n%s", want, out)
		}
	}
	if got := NewRecorder().Gantt(60); got != "(no spans)\n" {
		t.Errorf("empty Gantt = %q", got)
	}
}

func TestChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := tracedRun(t).WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no trace events")
	}
	for _, e := range events {
		if e["ph"] != "X" {
			t.Errorf("unexpected phase %v", e["ph"])
		}
	}
}
