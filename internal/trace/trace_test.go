package trace

import (
	"context"

	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/algos/mergesort"
	"repro/internal/core"
	"repro/internal/hpu"
	"repro/internal/workload"
)

func tracedRun(t *testing.T) *Recorder {
	t.Helper()
	rec := NewRecorder()
	be := Wrap(hpu.MustSim(hpu.HPU1()), rec)
	in := workload.Uniform(1<<10, 1)
	s, err := mergesort.New(in)
	if err != nil {
		t.Fatal(err)
	}
	prm := advParams{Alpha: 0.25, Y: 5, Split: -1}
	if _, err := core.RunAdvancedHybridCtx(context.Background(), be, s, prm.Alpha, prm.Y, core.WithCoalesce(), core.WithSplit(prm.Split)); err != nil {
		t.Fatal(err)
	}
	want := append([]int32(nil), in...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i, v := range s.Result() {
		if v != want[i] {
			t.Fatal("traced run produced unsorted output")
		}
	}
	return rec
}

func TestRecorderCapturesAllUnits(t *testing.T) {
	rec := tracedRun(t)
	seen := map[Unit]bool{}
	for _, s := range rec.Spans() {
		seen[s.Unit] = true
		if s.End < s.Start {
			t.Errorf("span %q ends before it starts", s.Label)
		}
	}
	for _, u := range []Unit{UnitCPU, UnitGPU, UnitLink} {
		if !seen[u] {
			t.Errorf("no spans recorded for unit %s", u)
		}
	}
	// The advanced division performs exactly two transfers.
	links := 0
	for _, s := range rec.Spans() {
		if s.Unit == UnitLink {
			links++
		}
	}
	if links != 2 {
		t.Errorf("link spans = %d, want 2 (the paper's single round trip)", links)
	}
}

func TestSpansSortedByStart(t *testing.T) {
	spans := tracedRun(t).Spans()
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatal("Spans() not sorted by start time")
		}
	}
}

func TestUtilization(t *testing.T) {
	util := tracedRun(t).Utilization()
	for u, f := range util {
		if f <= 0 || f > 1 {
			t.Errorf("utilization[%s] = %g outside (0,1]", u, f)
		}
	}
	if util[UnitCPU] == 0 {
		t.Error("CPU utilization missing")
	}
}

func TestUtilizationMergesOverlaps(t *testing.T) {
	rec := NewRecorder()
	rec.Add(Span{Unit: UnitCPU, Start: 0, End: 2})
	rec.Add(Span{Unit: UnitCPU, Start: 1, End: 3})
	rec.Add(Span{Unit: UnitGPU, Start: 0, End: 4})
	util := rec.Utilization()
	if got := util[UnitCPU]; got != 0.75 {
		t.Errorf("CPU utilization = %g, want 0.75 (merged 0..3 over 0..4)", got)
	}
	if got := util[UnitGPU]; got != 1.0 {
		t.Errorf("GPU utilization = %g, want 1", got)
	}
}

func TestGantt(t *testing.T) {
	out := tracedRun(t).Gantt(60)
	for _, want := range []string{"cpu", "gpu", "link", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("Gantt output missing %q:\n%s", want, out)
		}
	}
	if got := NewRecorder().Gantt(60); got != "(no spans)\n" {
		t.Errorf("empty Gantt = %q", got)
	}
}

func TestChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := tracedRun(t).WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no trace events")
	}
	for _, e := range events {
		if e["ph"] != "X" {
			t.Errorf("unexpected phase %v", e["ph"])
		}
	}
}

func TestRingBufferEvictsOldest(t *testing.T) {
	rec := NewRecorderLimit(3)
	for i := 0; i < 5; i++ {
		rec.Add(Span{Unit: UnitCPU, Start: float64(i), End: float64(i) + 0.5})
	}
	if got := rec.Len(); got != 3 {
		t.Errorf("Len = %d, want 3", got)
	}
	if got := rec.Dropped(); got != 2 {
		t.Errorf("Dropped = %d, want 2", got)
	}
	// The two oldest spans (starts 0 and 1) were evicted.
	for _, s := range rec.Spans() {
		if s.Start < 2 {
			t.Errorf("span with start %g survived eviction", s.Start)
		}
	}
	// Unbounded recorders never drop.
	un := NewRecorder()
	for i := 0; i < 5; i++ {
		un.Add(Span{Unit: UnitCPU, Start: float64(i), End: float64(i) + 1})
	}
	if un.Dropped() != 0 || un.Len() != 5 {
		t.Errorf("unbounded recorder dropped %d of %d", un.Dropped(), 5-un.Len())
	}
}

func TestScopeStampsJob(t *testing.T) {
	rec := NewRecorder()
	rec.Scope(7).Add(Span{Unit: UnitCPU, Start: 0, End: 1})
	rec.Scope(9).Add(Span{Unit: UnitGPU, Start: 1, End: 2})
	rec.Add(Span{Unit: UnitLink, Start: 2, End: 3}) // direct, job 0
	jobs := map[Unit]uint64{}
	for _, s := range rec.Spans() {
		jobs[s.Unit] = s.Job
	}
	if jobs[UnitCPU] != 7 || jobs[UnitGPU] != 9 || jobs[UnitLink] != 0 {
		t.Errorf("job stamping wrong: %v", jobs)
	}
}

func TestUtilizationEdgeCases(t *testing.T) {
	// Empty recorder: nil.
	if got := NewRecorder().Utilization(); got != nil {
		t.Errorf("empty Utilization = %v, want nil", got)
	}
	// All spans zero-duration: makespan 0, nil rather than NaN.
	zero := NewRecorder()
	zero.Add(Span{Unit: UnitCPU, Start: 1, End: 1})
	zero.Add(Span{Unit: UnitGPU, Start: 1, End: 1})
	if got := zero.Utilization(); got != nil {
		t.Errorf("zero-makespan Utilization = %v, want nil", got)
	}
	// A single span: its unit is 100% busy.
	one := NewRecorder()
	one.Add(Span{Unit: UnitCPU, Start: 2, End: 5})
	util := one.Utilization()
	if got := util[UnitCPU]; got != 1 {
		t.Errorf("single-span utilization = %g, want 1", got)
	}
	// A zero-duration span alongside a real one contributes nothing.
	mixed := NewRecorder()
	mixed.Add(Span{Unit: UnitCPU, Start: 0, End: 4})
	mixed.Add(Span{Unit: UnitGPU, Start: 2, End: 2})
	util = mixed.Utilization()
	if got := util[UnitGPU]; got != 0 {
		t.Errorf("zero-duration span utilization = %g, want 0", got)
	}
}

// TestChromeTraceGolden pins the exact export format: pid grouping by job,
// tid lanes per unit, and the level prefix in names.
func TestChromeTraceGolden(t *testing.T) {
	rec := NewRecorder()
	rec.Add(Span{Unit: UnitCPU, Label: "4 tasks x 10 ops", Level: 2, Start: 0, End: 0.001})
	rec.Scope(3).Add(Span{Unit: UnitLink, Label: "to-gpu 64B", Start: 0.001, End: 0.002})
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	want := `[{"name":"L2 4 tasks x 10 ops","ph":"X","ts":0,"dur":1000,"pid":1,"tid":1},` +
		`{"name":"to-gpu 64B","ph":"X","ts":1000,"dur":1000,"pid":4,"tid":3}]` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("chrome trace mismatch:\ngot  %s\nwant %s", got, want)
	}
}

func TestConcurrentAdd(t *testing.T) {
	rec := NewRecorderLimit(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sc := rec.Scope(uint64(g))
			for i := 0; i < 100; i++ {
				sc.Add(Span{Unit: UnitCPU, Start: float64(i), End: float64(i) + 1})
			}
		}(g)
	}
	wg.Wait()
	if got := rec.Len(); got != 64 {
		t.Errorf("Len = %d, want 64", got)
	}
	if got := rec.Dropped(); got != 8*100-64 {
		t.Errorf("Dropped = %d, want %d", got, 8*100-64)
	}
}

// advParams groups advanced-division parameters for test tables. It
// replaces the deprecated core.AdvancedParams in test code.
type advParams struct {
	Alpha float64
	Y     int
	Split int
}
