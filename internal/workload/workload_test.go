package workload

import (
	"testing"
	"testing/quick"
)

func TestUniformDeterministicAndRanged(t *testing.T) {
	a := Uniform(1000, 7)
	b := Uniform(1000, 7)
	c := Uniform(1000, 8)
	same := true
	diff := false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
		if a[i] < 0 || int(a[i]) >= 2000 {
			t.Fatalf("value %d out of [0, 2n)", a[i])
		}
	}
	if !same {
		t.Error("same seed produced different data")
	}
	if !diff {
		t.Error("different seeds produced identical data")
	}
}

func TestSortedAndReverse(t *testing.T) {
	if !IsSorted(Sorted(100)) {
		t.Error("Sorted not sorted")
	}
	r := Reverse(100)
	if IsSorted(r) {
		t.Error("Reverse is sorted")
	}
	if r[0] != 99 || r[99] != 0 {
		t.Errorf("Reverse endpoints = %d, %d", r[0], r[99])
	}
}

func TestFewDistinct(t *testing.T) {
	a := FewDistinct(1000, 3, 1)
	seen := map[int32]bool{}
	for _, v := range a {
		seen[v] = true
	}
	if len(seen) > 3 {
		t.Errorf("FewDistinct produced %d distinct values, want <= 3", len(seen))
	}
	b := FewDistinct(10, 0, 1) // k clamped to 1
	for _, v := range b {
		if v != 0 {
			t.Errorf("FewDistinct(k=0) produced %d", v)
		}
	}
}

func TestGaussianNonNegative(t *testing.T) {
	for _, v := range Gaussian(10000, 2) {
		if v < 0 {
			t.Fatalf("Gaussian produced negative value %d", v)
		}
	}
}

func TestIsSorted(t *testing.T) {
	cases := []struct {
		in   []int32
		want bool
	}{
		{nil, true},
		{[]int32{1}, true},
		{[]int32{1, 1, 2}, true},
		{[]int32{2, 1}, false},
	}
	for _, c := range cases {
		if got := IsSorted(c.in); got != c.want {
			t.Errorf("IsSorted(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIsPermutation(t *testing.T) {
	if !IsPermutation([]int32{1, 2, 2}, []int32{2, 1, 2}) {
		t.Error("rejected a valid permutation")
	}
	if IsPermutation([]int32{1, 2}, []int32{1, 1}) {
		t.Error("accepted multiset mismatch")
	}
	if IsPermutation([]int32{1}, []int32{1, 1}) {
		t.Error("accepted length mismatch")
	}
	f := func(a []int32) bool {
		b := append([]int32(nil), a...)
		for i := len(b) - 1; i > 0; i-- {
			b[i], b[i/2] = b[i/2], b[i]
		}
		return IsPermutation(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
