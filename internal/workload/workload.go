// Package workload generates deterministic, seeded inputs for the
// experiments. The paper draws mergesort inputs uniformly at random from
// [0, 2n) (§6.4); additional shapes are provided for robustness testing.
package workload

import "math/rand"

// Uniform returns n int32 values drawn uniformly from [0, 2n), the paper's
// input distribution, from a deterministic seed.
func Uniform(n int, seed int64) []int32 {
	r := rand.New(rand.NewSource(seed))
	a := make([]int32, n)
	limit := int64(2 * n)
	if limit <= 0 {
		limit = 1
	}
	for i := range a {
		a[i] = int32(r.Int63n(limit))
	}
	return a
}

// Sorted returns 0..n-1, an already-sorted input.
func Sorted(n int) []int32 {
	a := make([]int32, n)
	for i := range a {
		a[i] = int32(i)
	}
	return a
}

// Reverse returns n-1..0, the adversarially reversed input.
func Reverse(n int) []int32 {
	a := make([]int32, n)
	for i := range a {
		a[i] = int32(n - 1 - i)
	}
	return a
}

// FewDistinct returns n values drawn from only k distinct keys, stressing
// duplicate handling in merges.
func FewDistinct(n, k int, seed int64) []int32 {
	if k < 1 {
		k = 1
	}
	r := rand.New(rand.NewSource(seed))
	a := make([]int32, n)
	for i := range a {
		a[i] = int32(r.Intn(k))
	}
	return a
}

// Gaussian returns n values from a clipped normal distribution centered at
// n with standard deviation n/4.
func Gaussian(n int, seed int64) []int32 {
	r := rand.New(rand.NewSource(seed))
	a := make([]int32, n)
	mean, sd := float64(n), float64(n)/4
	for i := range a {
		v := mean + sd*r.NormFloat64()
		if v < 0 {
			v = 0
		}
		a[i] = int32(v)
	}
	return a
}

// IsSorted reports whether a is nondecreasing.
func IsSorted(a []int32) bool {
	for i := 1; i < len(a); i++ {
		if a[i-1] > a[i] {
			return false
		}
	}
	return true
}

// IsPermutation reports whether b is a permutation of a, using a counting
// map. It is intended for test assertions.
func IsPermutation(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	counts := make(map[int32]int, len(a))
	for _, v := range a {
		counts[v]++
	}
	for _, v := range b {
		counts[v]--
		if counts[v] < 0 {
			return false
		}
	}
	return true
}
