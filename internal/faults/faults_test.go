package faults_test

import (
	"context"
	"errors"
	"sort"
	"testing"
	"time"

	"repro/internal/algos/mergesort"
	"repro/internal/core"
	"repro/internal/dcerr"
	"repro/internal/faults"
	"repro/internal/hpu"
	"repro/internal/native"
	"repro/internal/workload"
)

// plans reads n attempt plans off a fresh injector by wrapping a throwaway
// backend and probing what each wrap decided.
func plans(t *testing.T, cfg faults.Config, be core.Backend, n int) []error {
	t.Helper()
	in, err := faults.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]error, n)
	for i := range out {
		fb := in.Wrap(be)
		// Trip enough device ops to reach any trigger.
		for j := 0; j < 8; j++ {
			fb.TransferToGPU(1, func() {})
		}
		out[i] = fb.Fault()
	}
	return out
}

func TestDeterministicUnderSeed(t *testing.T) {
	be, err := native.New(native.Config{CPUWorkers: 1, DeviceLanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	cfg := faults.Config{Seed: 42, KernelErrorRate: 0.3, TransferErrorRate: 0.2, CloseRaceRate: 0.1}
	a := plans(t, cfg, be, 64)
	b := plans(t, cfg, be, 64)
	faulted := 0
	for i := range a {
		if (a[i] == nil) != (b[i] == nil) {
			t.Fatalf("attempt %d: schedule not reproducible: %v vs %v", i, a[i], b[i])
		}
		if a[i] != nil {
			faulted++
			if a[i].Error() != b[i].Error() {
				t.Fatalf("attempt %d: different fault: %q vs %q", i, a[i], b[i])
			}
		}
	}
	if faulted == 0 {
		t.Fatal("no faults drawn in 64 attempts at 60% rate")
	}
	// A different seed must give a different schedule.
	c := plans(t, faults.Config{Seed: 43, KernelErrorRate: 0.3, TransferErrorRate: 0.2, CloseRaceRate: 0.1}, be, 64)
	same := 0
	for i := range a {
		if (a[i] == nil) == (c[i] == nil) {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seed 42 and 43 drew identical schedules")
	}
}

func TestValidate(t *testing.T) {
	for _, cfg := range []faults.Config{
		{KernelErrorRate: -0.1},
		{KernelErrorRate: 1.5},
		{KernelErrorRate: 0.6, TransferErrorRate: 0.6},
		{TriggerSpan: -1},
	} {
		if _, err := faults.New(cfg); !errors.Is(err, dcerr.ErrBadParam) {
			t.Errorf("New(%+v) = %v, want ErrBadParam", cfg, err)
		}
	}
	if _, err := faults.New(faults.Config{KernelErrorRate: 0.5, StuckRate: 0.5}); err != nil {
		t.Errorf("rates summing to exactly 1 rejected: %v", err)
	}
}

// runFaulted runs GPU-only mergesorts under a 100% fault rate and checks
// the executor surfaces the fault as ErrDeviceFault with a partial report.
func runFaulted(t *testing.T, be core.Backend, kind string, cfg faults.Config) {
	t.Helper()
	in, err := faults.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := mergesort.New(workload.Uniform(1<<8, 7))
	if err != nil {
		t.Fatal(err)
	}
	fb := in.Wrap(be)
	rep, err := core.RunGPUOnlyCtx(context.Background(), fb, alg)
	if !errors.Is(err, dcerr.ErrDeviceFault) {
		t.Fatalf("%s: err = %v, want ErrDeviceFault", kind, err)
	}
	if !rep.Partial {
		t.Errorf("%s: faulted run's report not marked partial", kind)
	}
	if c := in.Counts(); c.Injected != 1 || c.Attempts != 1 {
		t.Errorf("%s: counts = %+v, want 1 injected / 1 attempt", kind, c)
	}
}

func TestFaultsSurfaceOnNativeBackend(t *testing.T) {
	be, err := native.New(native.Config{CPUWorkers: 2, DeviceLanes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	runFaulted(t, be, "kernel", faults.Config{Seed: 1, KernelErrorRate: 1})
	runFaulted(t, be, "transfer", faults.Config{Seed: 1, TransferErrorRate: 1})
	runFaulted(t, be, "close-race", faults.Config{Seed: 1, CloseRaceRate: 1})
}

func TestCloseRaceAlsoMatchesBackendClosed(t *testing.T) {
	be, err := native.New(native.Config{CPUWorkers: 2, DeviceLanes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	in, err := faults.New(faults.Config{Seed: 1, CloseRaceRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	alg, err := mergesort.New(workload.Uniform(1<<8, 7))
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.RunGPUOnlyCtx(context.Background(), in.Wrap(be), alg)
	if !errors.Is(err, dcerr.ErrDeviceFault) || !errors.Is(err, dcerr.ErrBackendClosed) {
		t.Fatalf("close race err = %v, want both ErrDeviceFault and ErrBackendClosed", err)
	}
}

func TestFaultsSurfaceOnSimBackend(t *testing.T) {
	sim := hpu.MustSim(hpu.HPU1())
	runFaulted(t, sim, "sim-kernel", faults.Config{Seed: 3, KernelErrorRate: 1})
}

// TestStuckLaunchCompletes checks a StuckLaunch delays but does not corrupt:
// the run finishes with a correct result and no recorded fault error.
func TestStuckLaunchCompletes(t *testing.T) {
	for name, be := range map[string]core.Backend{
		"native": func() core.Backend {
			b, err := native.New(native.Config{CPUWorkers: 2, DeviceLanes: 4})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { b.Close() })
			return b
		}(),
		"sim": hpu.MustSim(hpu.HPU1()),
	} {
		in, err := faults.New(faults.Config{Seed: 5, StuckRate: 1, Stall: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		alg, err := mergesort.New(workload.Uniform(1<<8, 11))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.RunGPUOnlyCtx(context.Background(), in.Wrap(be), alg); err != nil {
			t.Fatalf("%s: stuck launch failed the run: %v", name, err)
		}
		out := alg.Result()
		if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i] < out[j] }) {
			t.Errorf("%s: output not sorted after stuck launch", name)
		}
		if c := in.Counts(); c.StuckLaunches != 1 {
			t.Errorf("%s: counts = %+v, want 1 stuck launch", name, c)
		}
	}
}
