// Package faults injects deterministic device failures beneath the
// framework's executors, so the serving layer's reliability policies
// (retry, hedge, CPU fallback, circuit breaking) can be exercised — and CI
// can soak them — without real flaky hardware.
//
// An Injector is configured once with a seed and per-kind fault rates and
// then wraps a core.Backend once per execution attempt (Wrap). Each wrap
// draws a fault plan — whether this attempt faults, which kind, and on
// which device operation it fires — as a pure function of the seed and the
// attempt index (a splitmix64 PRF), so a chaos run's fault schedule is
// reproducible from its seed alone, independent of goroutine interleaving.
//
// Fault kinds, mirroring how real hybrid deployments degrade:
//
//   - KernelError: a device kernel launch fails. The device is considered
//     lost for the rest of the attempt: every later submission and transfer
//     short-circuits, so the attempt fails fast.
//   - TransferError: a host↔device transfer corrupts or times out; the
//     device is likewise lost for the rest of the attempt.
//   - StuckLaunch: one device operation hangs for Stall (wall clock on
//     autonomous backends, a synthetic in-order queue occupation on the
//     virtual-time simulator) and then completes normally. The attempt
//     stays correct but straggles — the case hedging and deadlines exist
//     for.
//   - CloseRace: the device vanishes mid-run as if its backend had been
//     closed concurrently; classified under both dcerr.ErrDeviceFault and
//     dcerr.ErrBackendClosed.
//
// Failing attempts never execute the faulted operation or anything after it
// on either unit, so a failed attempt leaves its instance's data
// incomplete, not subtly wrong — which is why the serving layer re-executes
// on a fresh instance (serve.Job.Fresh) rather than in place.
//
// Faults are reported through the core.Faulter interface: executors consult
// it at settlement and classify the run under dcerr.ErrDeviceFault with a
// partial Report.
package faults

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dcerr"
)

// Kind identifies an injected fault class.
type Kind int

const (
	// None means the attempt runs clean.
	None Kind = iota
	// KernelError fails a device kernel launch.
	KernelError
	// TransferError corrupts a host↔device transfer.
	TransferError
	// StuckLaunch stalls one device operation, then lets it complete.
	StuckLaunch
	// CloseRace makes the device vanish as if its backend closed mid-run.
	CloseRace
)

// String returns the kind's report name.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case KernelError:
		return "kernel-error"
	case TransferError:
		return "transfer-error"
	case StuckLaunch:
		return "stuck-launch"
	case CloseRace:
		return "close-race"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Config describes an Injector. Rates are per execution attempt: each
// wrapped attempt draws at most one fault, of a kind chosen with
// probability proportional to its rate. The rates must sum to at most 1.
type Config struct {
	// Seed determines the whole fault schedule.
	Seed int64
	// KernelErrorRate, TransferErrorRate, StuckRate and CloseRaceRate are
	// the per-attempt probabilities of each fault kind, each in [0, 1].
	KernelErrorRate   float64
	TransferErrorRate float64
	StuckRate         float64
	CloseRaceRate     float64
	// Stall is how long a StuckLaunch hangs on a wall-clock (autonomous)
	// backend. Defaults to 2ms.
	Stall time.Duration
	// StallOps is the synthetic kernel cost (normalized scalar ops) a
	// StuckLaunch occupies a virtual-time device's in-order queue with.
	// Defaults to 1e6.
	StallOps float64
	// TriggerSpan bounds which device operation of the attempt the fault
	// fires on: a draw uniform in [1, TriggerSpan]. Attempts with fewer
	// device operations than the draw (in particular CPU-only strategies,
	// which have none) run clean. Defaults to 4.
	TriggerSpan int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	sum := 0.0
	for _, r := range []float64{c.KernelErrorRate, c.TransferErrorRate, c.StuckRate, c.CloseRaceRate} {
		if r < 0 || r > 1 {
			return fmt.Errorf("faults: rate %g outside [0,1]: %w", r, dcerr.ErrBadParam)
		}
		sum += r
	}
	if sum > 1 {
		return fmt.Errorf("faults: rates sum to %g > 1: %w", sum, dcerr.ErrBadParam)
	}
	if c.Stall < 0 || c.StallOps < 0 || c.TriggerSpan < 0 {
		return fmt.Errorf("faults: negative stall or trigger span: %w", dcerr.ErrBadParam)
	}
	return nil
}

// Counts is a snapshot of everything an injector has done.
type Counts struct {
	// Attempts is how many execution attempts were wrapped.
	Attempts uint64
	// Injected is how many faults actually fired (an attempt whose plan
	// triggers on a device operation it never reached does not count).
	Injected uint64
	// Per-kind fired counts.
	KernelErrors, TransferErrors, StuckLaunches, CloseRaces uint64
}

// Injector hands out per-attempt fault-injecting backend wrappers.
type Injector struct {
	cfg Config
	seq atomic.Uint64

	injected                            atomic.Uint64
	kernel, transfer, stuck, closeRaces atomic.Uint64
}

// New validates the configuration and returns an injector.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Stall == 0 {
		cfg.Stall = 2 * time.Millisecond
	}
	if cfg.StallOps == 0 {
		cfg.StallOps = 1e6
	}
	if cfg.TriggerSpan == 0 {
		cfg.TriggerSpan = 4
	}
	return &Injector{cfg: cfg}, nil
}

// Counts snapshots the injector's activity.
func (in *Injector) Counts() Counts {
	return Counts{
		Attempts:       in.seq.Load(),
		Injected:       in.injected.Load(),
		KernelErrors:   in.kernel.Load(),
		TransferErrors: in.transfer.Load(),
		StuckLaunches:  in.stuck.Load(),
		CloseRaces:     in.closeRaces.Load(),
	}
}

// splitmix64 is the PRF behind the fault schedule: a well-mixed pure
// function of its input, so plans depend only on (seed, attempt, salt).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a PRF output to [0, 1).
func unit(x uint64) float64 { return float64(x>>11) / float64(1<<53) }

// plan draws attempt k's fate.
func (in *Injector) plan(k uint64) (Kind, uint64) {
	seed := uint64(in.cfg.Seed)
	r := unit(splitmix64(seed ^ splitmix64(k) ^ 0xfa017))
	kind := None
	for _, c := range []struct {
		k    Kind
		rate float64
	}{
		{KernelError, in.cfg.KernelErrorRate},
		{TransferError, in.cfg.TransferErrorRate},
		{StuckLaunch, in.cfg.StuckRate},
		{CloseRace, in.cfg.CloseRaceRate},
	} {
		if r < c.rate {
			kind = c.k
			break
		}
		r -= c.rate
	}
	if kind == None {
		return None, 0
	}
	trigger := 1 + splitmix64(seed^splitmix64(k)^0x7419e4)%uint64(in.cfg.TriggerSpan)
	return kind, trigger
}

// Wrap returns a fault-injecting view of be for one execution attempt. The
// attempt's fault plan is fixed at wrap time; the returned backend
// implements core.Backend, core.Autonomous, core.Closer, core.DeviceProber
// and core.Faulter.
func (in *Injector) Wrap(be core.Backend) *Backend {
	k := in.seq.Add(1) - 1
	kind, trigger := in.plan(k)
	f := &Backend{inner: be, in: in, attempt: k, kind: kind, trigger: trigger}
	f.cpu = &faultExecutor{f: f, inner: be.CPU(), gpu: false}
	if g := be.GPU(); g != nil {
		f.gpu = &faultExecutor{f: f, inner: g, gpu: true}
	}
	return f
}

// virtualStaller is implemented by simulated backends that can occupy the
// device's in-order compute queue for a modeled cost (hpu.Sim); it lets a
// StuckLaunch stall virtual time instead of wall time.
type virtualStaller interface {
	StallDevice(ops float64, done func())
}

// Backend is one attempt's fault-injecting view of an inner backend.
type Backend struct {
	inner   core.Backend
	in      *Injector
	attempt uint64
	kind    Kind
	trigger uint64

	ops   atomic.Uint64 // device operations seen so far
	dead  atomic.Bool   // device lost: short-circuit everything
	fault atomic.Pointer[error]

	cpu core.LevelExecutor
	gpu core.LevelExecutor
}

var _ core.Backend = (*Backend)(nil)
var _ core.Faulter = (*Backend)(nil)

// Fault implements core.Faulter.
func (f *Backend) Fault() error {
	if p := f.fault.Load(); p != nil {
		return *p
	}
	return nil
}

// recordFault stores the attempt's fault (first wins) and kills the device.
func (f *Backend) recordFault(err error) {
	f.fault.CompareAndSwap(nil, &err)
	f.dead.Store(true)
	f.in.injected.Add(1)
}

// deviceOp accounts one device interaction and returns what to do with it.
// ok=false means the operation (and everything after it) short-circuits.
func (f *Backend) deviceOp() (stall bool, ok bool) {
	if f.dead.Load() {
		return false, false
	}
	n := f.ops.Add(1)
	if f.kind == None || n != f.trigger {
		return false, true
	}
	switch f.kind {
	case KernelError:
		f.in.kernel.Add(1)
		f.recordFault(fmt.Errorf("faults: injected kernel error (attempt %d, device op %d): %w",
			f.attempt, n, dcerr.ErrDeviceFault))
		return false, false
	case TransferError:
		f.in.transfer.Add(1)
		f.recordFault(fmt.Errorf("faults: injected transfer corruption (attempt %d, device op %d): %w",
			f.attempt, n, dcerr.ErrDeviceFault))
		return false, false
	case CloseRace:
		f.in.closeRaces.Add(1)
		f.recordFault(fmt.Errorf("faults: injected submit-after-close race (attempt %d, device op %d): %w: %w",
			f.attempt, n, dcerr.ErrDeviceFault, dcerr.ErrBackendClosed))
		return false, false
	case StuckLaunch:
		f.in.stuck.Add(1)
		f.in.injected.Add(1)
		return true, true
	}
	return false, true
}

// stallThen delays op by the configured stall — wall clock on autonomous
// backends, a synthetic occupation of the simulated device's in-order queue
// otherwise — and then runs it.
func (f *Backend) stallThen(op func()) {
	if vs, ok := f.inner.(virtualStaller); ok {
		vs.StallDevice(f.in.cfg.StallOps, op)
		return
	}
	if a, ok := f.inner.(core.Autonomous); ok && a.Autonomous() {
		time.AfterFunc(f.in.cfg.Stall, op)
		return
	}
	// No way to model the stall on this backend: run the op directly.
	op()
}

// CPU implements core.Backend.
func (f *Backend) CPU() core.LevelExecutor { return f.cpu }

// GPU implements core.Backend.
func (f *Backend) GPU() core.LevelExecutor {
	if f.gpu == nil {
		return nil
	}
	return f.gpu
}

// GPUGamma implements core.Backend.
func (f *Backend) GPUGamma() float64 { return f.inner.GPUGamma() }

// TransferToGPU implements core.Backend.
func (f *Backend) TransferToGPU(n int64, done func()) {
	f.transfer(n, done, f.inner.TransferToGPU)
}

// TransferToCPU implements core.Backend.
func (f *Backend) TransferToCPU(n int64, done func()) {
	f.transfer(n, done, f.inner.TransferToCPU)
}

func (f *Backend) transfer(n int64, done func(), inner func(int64, func())) {
	stall, ok := f.deviceOp()
	if !ok {
		if done != nil {
			done()
		}
		return
	}
	if stall {
		f.stallThen(func() { inner(n, done) })
		return
	}
	inner(n, done)
}

// Now implements core.Backend.
func (f *Backend) Now() float64 { return f.inner.Now() }

// Unwrap implements core.Unwrapper so capability probes (segment
// allocation) reach the wrapped backend.
func (f *Backend) Unwrap() core.Backend { return f.inner }

// Wait implements core.Backend.
func (f *Backend) Wait() { f.inner.Wait() }

// Autonomous forwards the inner backend's marker.
func (f *Backend) Autonomous() bool {
	a, ok := f.inner.(core.Autonomous)
	return ok && a.Autonomous()
}

// Closed forwards the inner backend's core.Closer state.
func (f *Backend) Closed() bool {
	c, ok := f.inner.(core.Closer)
	return ok && c.Closed()
}

// ProbeDevice implements core.DeviceProber: a lost device reports its
// fault; otherwise the probe forwards to the inner backend.
func (f *Backend) ProbeDevice() error {
	if err := f.Fault(); err != nil {
		return err
	}
	if p, ok := f.inner.(core.DeviceProber); ok {
		return p.ProbeDevice()
	}
	return nil
}

// faultExecutor interposes the fault plan on one unit's submissions.
type faultExecutor struct {
	f     *Backend
	inner core.LevelExecutor
	gpu   bool
}

var _ core.LevelExecutor = (*faultExecutor)(nil)

// Parallelism implements core.LevelExecutor.
func (e *faultExecutor) Parallelism() int { return e.inner.Parallelism() }

// Submit implements core.LevelExecutor. CPU submissions are never faulted,
// but short-circuit once the device is lost so the doomed attempt fails
// fast instead of finishing its combine phases on garbage.
func (e *faultExecutor) Submit(b core.Batch, done func()) {
	if !e.gpu {
		if e.f.dead.Load() {
			if done != nil {
				done()
			}
			return
		}
		e.inner.Submit(b, done)
		return
	}
	stall, ok := e.f.deviceOp()
	if !ok {
		if done != nil {
			done()
		}
		return
	}
	if stall {
		e.f.stallThen(func() { e.inner.Submit(b, done) })
		return
	}
	e.inner.Submit(b, done)
}
