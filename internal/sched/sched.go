// Package sched provides an alternative, dynamic scheduling baseline for the
// ablation study: a StarPU-flavored greedy scheduler that re-splits every
// recursion level between CPU and GPU according to their estimated rates,
// shipping the GPU's share across the link each level.
//
// The paper argues (§2, §5) that for regular divide-and-conquer trees a
// tailored static division with a single round trip beats dynamic schemes
// because the dependency structure is known in advance; this executor makes
// that comparison concrete. It is deliberately transfer-naive — exactly the
// cost the advanced division is designed to avoid — while still overlapping
// CPU and GPU work within each level.
package sched

import (
	"fmt"

	"repro/internal/core"

	"repro/internal/dcerr"
)

// RunDynamicHybrid executes the algorithm breadth-first; at every base and
// combine level it greedily assigns the GPU a share of tasks proportional to
// the units' aggregate rates (p vs γ·min(k, g)), transferring that share's
// data to the device and back around the launch. Divide levels run on the
// CPU.
func RunDynamicHybrid(be core.Backend, alg core.GPUAlg) (core.Report, error) {
	if be.GPU() == nil {
		return core.Report{}, fmt.Errorf("sched: %w", dcerr.ErrNoGPU)
	}
	L := alg.Levels()
	a := alg.Arity()
	p := float64(be.CPU().Parallelism())
	g := float64(be.GPU().Parallelism())
	gamma := be.GPUGamma()

	// split returns how many of k tasks stay on the CPU.
	split := func(k int) int {
		if float64(k) <= 2*p {
			return k // too narrow to be worth a transfer
		}
		gpuCap := gamma * g
		if float64(k) < g {
			gpuCap = gamma * float64(k)
		}
		cpuShare := p / (p + gpuCap)
		kc := int(cpuShare*float64(k) + 0.5)
		if kc < 0 {
			kc = 0
		}
		if kc > k {
			kc = k
		}
		return kc
	}

	start := be.Now()
	var steps []step

	for l := 0; l < L; l++ {
		b := alg.DivideBatch(l, 0, core.TasksAtLevel(a, l))
		steps = append(steps, func(next func()) { be.CPU().Submit(b, next) })
	}

	// hybridLevel runs one level's k tasks split across both units, with a
	// round trip for the GPU share.
	hybridLevel := func(k, kc int, cpuB core.Batch, gpuB func() core.Batch, bytes int64) step {
		return func(next func()) {
			if kc == k {
				be.CPU().Submit(cpuB, next)
				return
			}
			join := core.Join(2, next)
			be.CPU().Submit(cpuB, join)
			be.TransferToGPU(bytes, func() {
				be.GPU().Submit(gpuB(), func() {
					be.TransferToCPU(bytes, join)
				})
			})
		}
	}

	leaves := core.TasksAtLevel(a, L)
	{
		kc := split(leaves)
		steps = append(steps, hybridLevel(leaves, kc,
			alg.BaseBatch(0, kc),
			func() core.Batch { return alg.GPUBaseBatch(kc, leaves) },
			alg.GPUBytes(L, kc, leaves)))
	}
	for l := L - 1; l >= 0; l-- {
		l := l
		k := core.TasksAtLevel(a, l)
		kc := split(k)
		steps = append(steps, hybridLevel(k, kc,
			alg.CombineBatch(l, 0, kc),
			func() core.Batch { return alg.GPUCombineBatch(l, kc, k) },
			alg.GPUBytes(l, kc, k)))
	}

	completed := false
	runSeq(steps, func() { completed = true })
	be.Wait()
	if !completed {
		panic("sched: dynamic hybrid execution did not complete")
	}
	finish(alg)
	return core.Report{
		Algorithm: alg.Name(),
		Strategy:  "dynamic-hybrid",
		Seconds:   be.Now() - start,
	}, nil
}

type step func(next func())

func runSeq(steps []step, done func()) {
	var at func(i int)
	at = func(i int) {
		if i == len(steps) {
			done()
			return
		}
		steps[i](func() { at(i + 1) })
	}
	at(0)
}

func finish(alg core.Alg) {
	type finisher interface{ Finish() }
	if f, ok := alg.(finisher); ok {
		f.Finish()
	}
}
