package sched

import (
	"context"

	"sort"
	"testing"

	"repro/internal/algos/dcsum"
	"repro/internal/algos/mergesort"
	"repro/internal/core"
	"repro/internal/hpu"
	"repro/internal/workload"
)

func TestDynamicHybridSortsCorrectly(t *testing.T) {
	for _, logN := range []int{8, 12, 14} {
		in := workload.Uniform(1<<logN, int64(logN))
		be := hpu.MustSim(hpu.HPU1())
		s, err := mergesort.New(in)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := RunDynamicHybrid(be, s)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]int32(nil), in...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := s.Result()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=2^%d: unsorted at %d", logN, i)
			}
		}
		if rep.Seconds <= 0 {
			t.Errorf("n=2^%d: nonpositive duration", logN)
		}
	}
}

func TestDynamicHybridSum(t *testing.T) {
	in := workload.Uniform(1<<12, 9)
	be := hpu.MustSim(hpu.HPU2())
	s, err := dcsum.New(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunDynamicHybrid(be, s); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Result(), dcsum.Sum(in); got != want {
		t.Errorf("dynamic sum = %d, want %d", got, want)
	}
}

// TestStaticBeatsDynamic encodes the paper's §2 argument: for a regular D&C
// tree with known dependencies, the tailored two-transfer static division
// outperforms a per-level dynamic scheme that pays the link cost every
// level.
func TestStaticBeatsDynamic(t *testing.T) {
	in := workload.Uniform(1<<18, 10)

	dynBe := hpu.MustSim(hpu.HPU1())
	dynS, _ := mergesort.New(in)
	dyn, err := RunDynamicHybrid(dynBe, dynS)
	if err != nil {
		t.Fatal(err)
	}

	advBe := hpu.MustSim(hpu.HPU1())
	advS, _ := mergesort.New(in)
	adv, err := core.RunAdvancedHybridCtx(context.Background(), advBe, advS, 0.17, 9, core.WithCoalesce())
	if err != nil {
		t.Fatal(err)
	}
	if adv.Seconds >= dyn.Seconds {
		t.Errorf("advanced static (%.4fs) did not beat dynamic per-level (%.4fs)",
			adv.Seconds, dyn.Seconds)
	}
}

func TestDynamicRequiresGPU(t *testing.T) {
	in := workload.Uniform(1<<8, 1)
	s, _ := mergesort.New(in)
	if _, err := RunDynamicHybrid(cpuOnly{hpu.MustSim(hpu.HPU1())}, s); err == nil {
		t.Error("RunDynamicHybrid accepted a backend without GPU")
	}
}

// cpuOnly masks the GPU of a backend.
type cpuOnly struct{ *hpu.Sim }

func (c cpuOnly) GPU() core.LevelExecutor { return nil }
