// Package hpu assembles a Hybrid Processing Unit (§3.2 of the paper): a
// simulated multi-core CPU, a simulated GPU device, and the host↔device link
// with transfer cost λ + δ·w, under one discrete-event engine. It implements
// core.Backend and defines the two experimental platforms of Table 1/2.
package hpu

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/simcpu"
	"repro/internal/simgpu"
	"repro/internal/vtime"

	"repro/internal/dcerr"
)

// LinkParams describes the host↔device interconnect. Transferring w bytes
// takes LatencySec + w·SecPerByte seconds, serialized on the link.
type LinkParams struct {
	Name       string
	LatencySec float64
	SecPerByte float64
}

// Validate reports whether the parameters are usable.
func (l LinkParams) Validate() error {
	if l.LatencySec < 0 || l.SecPerByte < 0 {
		return fmt.Errorf("hpu: link parameters must be nonnegative, got λ=%g δ=%g: %w",
			l.LatencySec, l.SecPerByte, dcerr.ErrBadParam)
	}
	return nil
}

// Platform is the full specification of an HPU: a CPU, a GPU and their link.
type Platform struct {
	Name string
	CPU  simcpu.Params
	GPU  simgpu.Params
	Link LinkParams
}

// Validate reports whether the platform is usable.
func (p Platform) Validate() error {
	if err := p.CPU.Validate(); err != nil {
		return err
	}
	if err := p.GPU.Validate(); err != nil {
		return err
	}
	return p.Link.Validate()
}

// Sim is a simulated HPU. It implements core.Backend; all execution advances
// a virtual clock.
type Sim struct {
	platform Platform
	eng      *vtime.Engine
	cpu      *simcpu.CPU
	gpu      *simgpu.GPU
	// transferred accumulates bytes moved across the link, for reports.
	transferred int64
}

var _ core.Backend = (*Sim)(nil)

// NewSim builds a simulated HPU for the platform.
func NewSim(p Platform) (*Sim, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	eng := vtime.New()
	cpu, err := simcpu.New(eng, p.CPU)
	if err != nil {
		return nil, err
	}
	gpu, err := simgpu.New(eng, p.GPU)
	if err != nil {
		return nil, err
	}
	return &Sim{
		platform: p,
		eng:      eng,
		cpu:      cpu,
		gpu:      gpu,
	}, nil
}

// MustSim is NewSim panicking on error, for use with the built-in platforms.
func MustSim(p Platform) *Sim {
	s, err := NewSim(p)
	if err != nil {
		panic(err)
	}
	return s
}

// Platform returns the simulated platform's specification.
func (s *Sim) Platform() Platform { return s.platform }

// SetMetrics attaches a registry to the simulated device so kernel-launch
// observability (wavefront occupancy, coalesced vs uncoalesced word
// traffic) is recorded; see simgpu.SetMetrics. Host-side transfer metrics
// come from the executors' core.WithMetrics instead.
func (s *Sim) SetMetrics(reg *metrics.Registry) { s.gpu.SetMetrics(reg) }

// Engine exposes the event engine (for estimation harnesses that schedule
// their own probes).
func (s *Sim) Engine() *vtime.Engine { return s.eng }

// SimCPU returns the simulated CPU.
func (s *Sim) SimCPU() *simcpu.CPU { return s.cpu }

// SimGPU returns the simulated GPU.
func (s *Sim) SimGPU() *simgpu.GPU { return s.gpu }

// AllocSegment implements core.SegmentAllocator: executors lease device
// staging segments from the simulated GPU's cache, so repeated same-shape
// runs reuse modeled device residency instead of re-staging per run.
func (s *Sim) AllocSegment(n int64) *core.Segment { return s.gpu.Segments().AllocSegment(n) }

// CPU implements core.Backend.
func (s *Sim) CPU() core.LevelExecutor { return s.cpu }

// GPU implements core.Backend.
func (s *Sim) GPU() core.LevelExecutor { return s.gpu }

// GPUGamma implements core.Backend.
func (s *Sim) GPUGamma() float64 { return s.gpu.Gamma() }

// transfer models one DMA in either direction. Transfers are priced by the
// link (λ + δ·w) and serialize on the device's copy queue, which runs
// concurrently with the compute queue — so an upload can overlap a kernel,
// as the pipelined fused executor requires.
func (s *Sim) transfer(n int64, done func()) {
	if n < 0 {
		panic(fmt.Sprintf("hpu: negative transfer size %d", n))
	}
	s.transferred += n
	d := s.platform.Link.LatencySec + float64(n)*s.platform.Link.SecPerByte
	s.gpu.SubmitCopy(d, done)
}

// TransferToGPU implements core.Backend.
func (s *Sim) TransferToGPU(n int64, done func()) { s.transfer(n, done) }

// TransferToCPU implements core.Backend.
func (s *Sim) TransferToCPU(n int64, done func()) { s.transfer(n, done) }

// TransferredBytes reports total bytes moved across the link so far.
func (s *Sim) TransferredBytes() int64 { return s.transferred }

// LinkBusySeconds reports accumulated seconds the link (the device copy
// queue) spent servicing transfers.
func (s *Sim) LinkBusySeconds() float64 { return s.gpu.CopyBusySeconds() }

// TransferSeconds reports the modeled duration of a single n-byte transfer.
func (s *Sim) TransferSeconds(n int64) float64 {
	return s.platform.Link.LatencySec + float64(n)*s.platform.Link.SecPerByte
}

// StallDevice occupies the device's in-order compute queue with a synthetic
// hung launch of the given normalized op cost, then calls done. The fault
// injector uses it to model a stuck kernel in virtual time.
func (s *Sim) StallDevice(ops float64, done func()) {
	s.gpu.Stall(s.gpu.ItemSeconds(core.Cost{Ops: ops}), done)
}

// ProbeDevice implements core.DeviceProber. The simulated device cannot be
// lost, so a bare Sim always probes healthy; fault-injecting wrappers
// interpose their own answer.
func (s *Sim) ProbeDevice() error { return nil }

// Now implements core.Backend: the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.eng.Now() }

// Wait implements core.Backend: runs the event loop until all submitted work
// and chained completions have finished.
func (s *Sim) Wait() { s.eng.Run() }
