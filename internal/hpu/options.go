package hpu

import (
	"repro/internal/simcpu"
	"repro/internal/simgpu"
)

// Option customizes the platform a Sim is built from. Options apply in
// order on top of the HPU1 baseline (or whatever WithPlatform set), so a
// caller can start from a paper platform and vary one knob:
//
//	sim, err := hpu.New(hpu.WithPlatform(hpu.HPU2()), hpu.WithCPUCores(8))
//
// The named constructors remain as thin wrappers: NewSim(p) is exactly
// New(WithPlatform(p)).
type Option func(*Platform)

// WithPlatform replaces the whole platform specification. Apply it first;
// later options then modify the chosen baseline.
func WithPlatform(p Platform) Option {
	return func(dst *Platform) { *dst = p }
}

// WithName sets the platform name used in reports.
func WithName(name string) Option {
	return func(p *Platform) { p.Name = name }
}

// WithCPUCores sets p, the CPU core count of the model.
func WithCPUCores(cores int) Option {
	return func(p *Platform) { p.CPU.Cores = cores }
}

// WithCPU replaces the full CPU specification.
func WithCPU(c simcpu.Params) Option {
	return func(p *Platform) { p.CPU = c }
}

// WithGPU sets the two quantities the paper's model characterizes a device
// by (§3.2, Table 2): g, the saturation thread count, and γ, the
// single-thread speed ratio. The remaining device parameters keep the
// baseline's values.
func WithGPU(g int, gamma float64) Option {
	return func(p *Platform) {
		p.GPU.SatThreads = g
		p.GPU.Gamma = gamma
	}
}

// WithGPUParams replaces the full GPU specification.
func WithGPUParams(g simgpu.Params) Option {
	return func(p *Platform) { p.GPU = g }
}

// WithLink sets the transfer cost model: a transfer of w bytes takes
// lambda + w·secPerByte seconds (§3.2's λ + δ·w).
func WithLink(lambda, secPerByte float64) Option {
	return func(p *Platform) {
		p.Link.LatencySec = lambda
		p.Link.SecPerByte = secPerByte
	}
}

// New builds a simulated HPU from functional options over the HPU1
// baseline. Validation happens once, after all options have applied, so
// partially-specified intermediate states are fine.
func New(opts ...Option) (*Sim, error) {
	p := HPU1()
	for _, o := range opts {
		o(&p)
	}
	return NewSim(p)
}
