package hpu

import (
	"math"
	"testing"

	"repro/internal/core"
)

func TestBuiltinPlatformsValid(t *testing.T) {
	for _, pl := range Platforms() {
		if err := pl.Validate(); err != nil {
			t.Errorf("%s: %v", pl.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"HPU1", "HPU2"} {
		pl, ok := ByName(name)
		if !ok || pl.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, pl.Name, ok)
		}
	}
	if _, ok := ByName("HPU3"); ok {
		t.Error("ByName accepted unknown platform")
	}
}

func TestPaperParameters(t *testing.T) {
	// Table 2 anchors are encoded directly in the platform definitions.
	p1, p2 := HPU1(), HPU2()
	if p1.CPU.Cores != 4 || p1.GPU.SatThreads != 4096 || math.Abs(1/p1.GPU.Gamma-160) > 1e-9 {
		t.Errorf("HPU1 parameters off: p=%d g=%d 1/γ=%g",
			p1.CPU.Cores, p1.GPU.SatThreads, 1/p1.GPU.Gamma)
	}
	if p2.CPU.Cores != 4 || p2.GPU.SatThreads != 1200 || math.Abs(1/p2.GPU.Gamma-65) > 1e-9 {
		t.Errorf("HPU2 parameters off: p=%d g=%d 1/γ=%g",
			p2.CPU.Cores, p2.GPU.SatThreads, 1/p2.GPU.Gamma)
	}
	// The model's premise γ·g > p must hold on both platforms (§3.2).
	for _, pl := range Platforms() {
		if pl.GPU.Gamma*float64(pl.GPU.SatThreads) <= float64(pl.CPU.Cores) {
			t.Errorf("%s: γ·g <= p, the HPU premise fails", pl.Name)
		}
	}
}

func TestTransferCost(t *testing.T) {
	sim := MustSim(HPU1())
	n := int64(64 << 20)
	want := HPU1().Link.LatencySec + float64(n)/3e9
	if got := sim.TransferSeconds(n); math.Abs(got-want) > 1e-12 {
		t.Errorf("TransferSeconds = %g, want %g", got, want)
	}
	done := false
	sim.TransferToGPU(n, func() { done = true })
	sim.Wait()
	if !done {
		t.Fatal("transfer done not called")
	}
	if got := sim.Now(); math.Abs(got-want) > 1e-12 {
		t.Errorf("transfer advanced clock to %g, want %g", got, want)
	}
	if sim.TransferredBytes() != n {
		t.Errorf("TransferredBytes = %d, want %d", sim.TransferredBytes(), n)
	}
}

func TestTransfersSerializeOnLink(t *testing.T) {
	sim := MustSim(HPU1())
	n := int64(3 << 30) // 1s each at 3 GB/s
	sim.TransferToGPU(n, nil)
	sim.TransferToCPU(n, nil)
	sim.Wait()
	want := 2 * sim.TransferSeconds(n)
	if got := sim.Now(); math.Abs(got-want) > 1e-9 {
		t.Errorf("two transfers took %g, want %g (serialized)", got, want)
	}
}

func TestBackendInterface(t *testing.T) {
	sim := MustSim(HPU2())
	var be core.Backend = sim
	if be.CPU() == nil || be.GPU() == nil {
		t.Fatal("nil executors")
	}
	if be.CPU().Parallelism() != 4 {
		t.Errorf("CPU parallelism = %d", be.CPU().Parallelism())
	}
	if be.GPU().Parallelism() != 1200 {
		t.Errorf("GPU parallelism = %d", be.GPU().Parallelism())
	}
	if math.Abs(be.GPUGamma()-1.0/65) > 1e-12 {
		t.Errorf("GPUGamma = %g", be.GPUGamma())
	}
}

func TestNewSimRejectsBadPlatform(t *testing.T) {
	bad := HPU1()
	bad.CPU.Cores = 0
	if _, err := NewSim(bad); err == nil {
		t.Error("NewSim accepted invalid CPU")
	}
	bad2 := HPU1()
	bad2.Link.LatencySec = -1
	if _, err := NewSim(bad2); err == nil {
		t.Error("NewSim accepted invalid link")
	}
	assertPanics(t, func() { MustSim(bad) })
}

func TestNegativeTransferPanics(t *testing.T) {
	sim := MustSim(HPU1())
	assertPanics(t, func() { sim.TransferToGPU(-1, nil) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
