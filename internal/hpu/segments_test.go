package hpu

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/algos/mergesort"
	"repro/internal/core"
)

// TestSegmentReuseAcrossRuns pins the device-buffer reuse contract: two
// GPU-only runs of the same shape on one simulator must lease the same
// staging segment, growing modeled device residency only once.
func TestSegmentReuseAcrossRuns(t *testing.T) {
	sim := MustSim(HPU1())
	rng := rand.New(rand.NewSource(7))
	run := func() {
		data := make([]int32, 1<<10)
		for i := range data {
			data[i] = rng.Int31()
		}
		s, err := mergesort.New(data)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.RunGPUOnlyCtx(context.Background(), sim, s); err != nil {
			t.Fatal(err)
		}
		s.Release()
	}

	run()
	st1 := sim.SimGPU().Segments().Stats()
	if st1.Allocs == 0 {
		t.Fatal("first run leased no device segment")
	}
	if st1.LeasedBytes != 0 {
		t.Fatalf("segments still leased after run: %d bytes", st1.LeasedBytes)
	}

	run()
	st2 := sim.SimGPU().Segments().Stats()
	if st2.Allocs != st1.Allocs {
		t.Errorf("second same-shape run grew residency: allocs %d -> %d", st1.Allocs, st2.Allocs)
	}
	if st2.Reuses <= st1.Reuses {
		t.Errorf("second same-shape run did not reuse a segment: reuses %d -> %d", st1.Reuses, st2.Reuses)
	}
	if st2.ResidentBytes != st1.ResidentBytes {
		t.Errorf("resident bytes changed across same-shape runs: %d -> %d", st1.ResidentBytes, st2.ResidentBytes)
	}
}

// TestSegmentReuseFused pins reuse across fused runs of the same shape.
func TestSegmentReuseFused(t *testing.T) {
	sim := MustSim(HPU1())
	rng := rand.New(rand.NewSource(11))
	run := func() {
		algs := make([]core.GPUAlg, 4)
		for m := range algs {
			data := make([]int32, 1<<9)
			for i := range data {
				data[i] = rng.Int31()
			}
			s, err := mergesort.New(data)
			if err != nil {
				t.Fatal(err)
			}
			algs[m] = s
		}
		if _, err := core.RunFusedGPUCtx(context.Background(), sim, algs); err != nil {
			t.Fatal(err)
		}
		for _, a := range algs {
			core.ReleaseAlg(a)
		}
	}

	run()
	st1 := sim.SimGPU().Segments().Stats()
	if st1.Allocs == 0 || st1.LeasedBytes != 0 {
		t.Fatalf("after first fused run: %+v", st1)
	}
	run()
	st2 := sim.SimGPU().Segments().Stats()
	if st2.Allocs != st1.Allocs {
		t.Errorf("second fused run of same shape grew residency: allocs %d -> %d", st1.Allocs, st2.Allocs)
	}
	if st2.ResidentBytes != st1.ResidentBytes {
		t.Errorf("fused resident bytes changed: %d -> %d", st1.ResidentBytes, st2.ResidentBytes)
	}
}
