package hpu

import (
	"repro/internal/simcpu"
	"repro/internal/simgpu"
)

// The two experimental platforms of the paper (Table 1), calibrated so the
// estimation harness reproduces Table 2: HPU1 → (p=4, g=4096, γ⁻¹=160),
// HPU2 → (p=4, g=1200, γ⁻¹=65).
//
// Cost-model anchors (see DESIGN.md §5):
//
//   - RateOpsPerSec is the normalized CPU core rate R. With the merge
//     convention of 2 op-equivalents per output element (1 op + 2 words at
//     MemWeight 0.5), R = 4.0e8 gives ≈ 200 M merged elements/s per core on
//     the Q6850-class CPU — a realistic figure for that hardware.
//   - MemBWOpsPerSec caps the aggregate rate when the working set exceeds
//     the LLC. It is what reproduces the paper's speedup roll-off past
//     n = 2^20 (§6.4): four streaming cores share it.
//   - HideFactor separates the single-thread γ of Table 2 from the
//     saturated throughput that lets the uniform binary-search kernel of
//     Fig 9 reach 18–20× while the divergent sequential-merge kernel stays
//     at γ per lane, as the §5 model assumes.

// MemWeight is the shared op-equivalent cost of moving one 4-byte word,
// used by both device models so the γ estimate depends only on rates.
const MemWeight = 0.5

// HPU1 returns the paper's first platform: an Intel Core 2 Extreme Q6850
// (4 cores, 3.0 GHz, 8 MB shared LLC) with a discrete ATI Radeon HD 5970
// over PCIe.
func HPU1() Platform {
	return Platform{
		Name: "HPU1",
		CPU: simcpu.Params{
			Name:                "Intel Core 2 Extreme Q6850",
			Cores:               4,
			ClockGHz:            3.0,
			RateOpsPerSec:       4.0e8,
			LLCBytes:            8 << 20,
			MemBWOpsPerSec:      1.0e9,
			MemWeight:           MemWeight,
			DispatchOverheadSec: 2e-6,
		},
		GPU: simgpu.Params{
			Name:              "ATI Radeon HD 5970",
			SatThreads:        4096,
			PhysicalPEs:       1600, // one die of the dual-GPU card, as in the paper
			Gamma:             1.0 / 160,
			HideFactor:        16,
			BaseRateOpsPerSec: 4.0e8,
			MemWeight:         MemWeight,
			StridePenalty:     4,
			LaunchOverheadSec: 2e-5,
		},
		Link: LinkParams{
			Name:       "PCIe 2.0 x16",
			LatencySec: 6e-5,
			SecPerByte: 1.0 / 3e9,
		},
	}
}

// HPU2 returns the paper's second platform: an AMD A6-3650 APU (4 cores,
// 2.6 GHz, 4 MB LLC) with its integrated ATI Radeon HD 6530D.
func HPU2() Platform {
	return Platform{
		Name: "HPU2",
		CPU: simcpu.Params{
			Name:                "AMD A6 3650",
			Cores:               4,
			ClockGHz:            2.6,
			RateOpsPerSec:       3.4e8,
			LLCBytes:            4 << 20,
			MemBWOpsPerSec:      6.5e8,
			MemWeight:           MemWeight,
			DispatchOverheadSec: 2e-6,
		},
		GPU: simgpu.Params{
			Name:              "ATI Radeon HD 6530D",
			SatThreads:        1200,
			PhysicalPEs:       320,
			Gamma:             1.0 / 65,
			HideFactor:        8,
			BaseRateOpsPerSec: 3.4e8,
			MemWeight:         MemWeight,
			StridePenalty:     4,
			LaunchOverheadSec: 1.5e-5,
		},
		Link: LinkParams{
			Name:       "integrated (shared memory controller)",
			LatencySec: 1.5e-5,
			SecPerByte: 1.0 / 6e9,
		},
	}
}

// Platforms returns the built-in platforms in paper order.
func Platforms() []Platform { return []Platform{HPU1(), HPU2()} }

// ByName returns the built-in platform with the given name (case-sensitive:
// "HPU1" or "HPU2"), or false if unknown.
func ByName(name string) (Platform, bool) {
	for _, p := range Platforms() {
		if p.Name == name {
			return p, true
		}
	}
	return Platform{}, false
}
