package hpu

import (
	"math"
	"testing"

	"repro/internal/core"
)

func TestMultiSimBasics(t *testing.T) {
	m, err := NewMultiSim(HPU1(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Platform().Name != "HPU1" {
		t.Errorf("Platform = %s", m.Platform().Name)
	}
	gpus := m.GPUs()
	if len(gpus) != 3 {
		t.Fatalf("GPUs = %d, want 3", len(gpus))
	}
	if m.GPU() != gpus[0] {
		t.Error("GPU() is not the first device")
	}
	if m.CPU().Parallelism() != 4 {
		t.Errorf("CPU parallelism = %d", m.CPU().Parallelism())
	}
	if math.Abs(m.GPUGamma()-1.0/160) > 1e-12 {
		t.Errorf("GPUGamma = %g", m.GPUGamma())
	}
}

func TestMultiSimDevicesIndependent(t *testing.T) {
	// Two devices execute launches concurrently; the same two launches on
	// one device serialize.
	run := func(devices int) float64 {
		m, err := NewMultiSim(HPU1(), devices)
		if err != nil {
			t.Fatal(err)
		}
		b := core.Batch{Tasks: 1 << 14, Cost: core.Cost{Ops: 1e4, Coalesced: true}}
		for d := 0; d < 2; d++ {
			dev := m.GPUs()[d%devices]
			dev.Submit(b, nil)
		}
		m.Wait()
		return m.Now()
	}
	one, two := run(1), run(2)
	if two >= one {
		t.Errorf("two devices (%g) not faster than one (%g) for independent launches", two, one)
	}
}

func TestMultiSimSharedLinkSerializes(t *testing.T) {
	m, err := NewMultiSim(HPU1(), 2)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(3 << 30) // 1s each at 3 GB/s
	m.TransferToGPU(n, nil)
	m.TransferToCPU(n, nil)
	m.Wait()
	single := HPU1().Link.LatencySec + float64(n)/3e9
	if got := m.Now(); math.Abs(got-2*single) > 1e-9 {
		t.Errorf("two transfers on the shared link took %g, want %g", got, 2*single)
	}
}

func TestMultiSimValidation(t *testing.T) {
	if _, err := NewMultiSim(HPU1(), 0); err == nil {
		t.Error("accepted 0 devices")
	}
	bad := HPU1()
	bad.GPU.SatThreads = 0
	if _, err := NewMultiSim(bad, 2); err == nil {
		t.Error("accepted invalid GPU params")
	}
	m, _ := NewMultiSim(HPU1(), 1)
	defer func() {
		if recover() == nil {
			t.Error("negative transfer did not panic")
		}
	}()
	m.TransferToGPU(-1, nil)
}

func TestSimAccessors(t *testing.T) {
	s := MustSim(HPU2())
	if s.Platform().Name != "HPU2" {
		t.Errorf("Platform = %s", s.Platform().Name)
	}
	if s.Engine() == nil || s.SimCPU() == nil || s.SimGPU() == nil {
		t.Error("nil accessors")
	}
	if s.SimGPU().Params().SatThreads != 1200 {
		t.Errorf("SimGPU SatThreads = %d", s.SimGPU().Params().SatThreads)
	}
}
