package hpu

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dcerr"
)

// TestNewDefaultsToHPU1 pins that the zero-option construction is exactly
// the HPU1 named constructor.
func TestNewDefaultsToHPU1(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if s.Platform() != HPU1() {
		t.Errorf("New() platform = %+v, want HPU1", s.Platform())
	}
}

// TestNewOptionsCompose pins option semantics: a platform baseline first,
// then targeted knob overrides in application order.
func TestNewOptionsCompose(t *testing.T) {
	s, err := New(
		WithPlatform(HPU2()),
		WithName("custom"),
		WithCPUCores(8),
		WithGPU(2048, 1.0/100),
		WithLink(1e-6, 1.0/1e9),
	)
	if err != nil {
		t.Fatal(err)
	}
	p := s.Platform()
	if p.Name != "custom" {
		t.Errorf("Name = %q, want custom", p.Name)
	}
	if p.CPU.Cores != 8 {
		t.Errorf("Cores = %d, want 8", p.CPU.Cores)
	}
	if p.GPU.SatThreads != 2048 || p.GPU.Gamma != 1.0/100 {
		t.Errorf("GPU (g, γ) = (%d, %g), want (2048, 0.01)", p.GPU.SatThreads, p.GPU.Gamma)
	}
	// Knobs not touched by WithGPU keep the HPU2 baseline.
	if p.GPU.HideFactor != HPU2().GPU.HideFactor {
		t.Errorf("HideFactor = %g, want HPU2 baseline %g", p.GPU.HideFactor, HPU2().GPU.HideFactor)
	}
	if p.Link.LatencySec != 1e-6 || p.Link.SecPerByte != 1.0/1e9 {
		t.Errorf("Link = %+v, want λ=1e-6 δ=1e-9", p.Link)
	}
	if got, want := s.TransferSeconds(1000), 1e-6+1000.0/1e9; math.Abs(got-want) > 1e-15 {
		t.Errorf("TransferSeconds(1000) = %g, want %g", got, want)
	}
}

// TestNewValidatesAfterOptions pins that validation covers the final
// composed platform.
func TestNewValidatesAfterOptions(t *testing.T) {
	if _, err := New(WithGPU(0, 0.5)); !errors.Is(err, dcerr.ErrBadParam) {
		t.Errorf("invalid g: err = %v, want ErrBadParam", err)
	}
	if _, err := New(WithLink(-1, 0)); !errors.Is(err, dcerr.ErrBadParam) {
		t.Errorf("negative λ: err = %v, want ErrBadParam", err)
	}
}

// TestNewSimIsThinWrapper pins the named constructor's equivalence to the
// options form.
func TestNewSimIsThinWrapper(t *testing.T) {
	a, err := NewSim(HPU2())
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(WithPlatform(HPU2()))
	if err != nil {
		t.Fatal(err)
	}
	if a.Platform() != b.Platform() {
		t.Errorf("NewSim(HPU2) != New(WithPlatform(HPU2))")
	}
}
