package hpu

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/simcpu"
	"repro/internal/simgpu"
	"repro/internal/vtime"

	"repro/internal/dcerr"
)

// MultiSim is a simulated HPU with several identical GPU devices sharing one
// host link — the §3.2 extension to multiple GPU cards. HPU1's Radeon
// HD 5970 is physically such a card (two dies); the paper used one die
// (footnote 5), a decision the multi-GPU experiments in internal/exp
// revisit. MultiSim implements core.Backend (GPU() returns device 0) and
// exposes the full device list for core.RunMultiGPUCtx.
type MultiSim struct {
	platform Platform
	eng      *vtime.Engine
	cpu      *simcpu.CPU
	gpus     []*simgpu.GPU
	link     *vtime.Resource
}

var _ core.Backend = (*MultiSim)(nil)

// NewMultiSim builds a simulated HPU with `devices` copies of the
// platform's GPU.
func NewMultiSim(p Platform, devices int) (*MultiSim, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if devices < 1 {
		return nil, fmt.Errorf("hpu: need at least one device, got %d: %w", devices, dcerr.ErrBadParam)
	}
	eng := vtime.New()
	cpu, err := simcpu.New(eng, p.CPU)
	if err != nil {
		return nil, err
	}
	m := &MultiSim{platform: p, eng: eng, cpu: cpu, link: vtime.NewResource(eng, 1)}
	for i := 0; i < devices; i++ {
		g, err := simgpu.New(eng, p.GPU)
		if err != nil {
			return nil, err
		}
		m.gpus = append(m.gpus, g)
	}
	return m, nil
}

// Platform returns the specification.
func (m *MultiSim) Platform() Platform { return m.platform }

// CPU implements core.Backend.
func (m *MultiSim) CPU() core.LevelExecutor { return m.cpu }

// GPU implements core.Backend: the first device.
func (m *MultiSim) GPU() core.LevelExecutor { return m.gpus[0] }

// GPUs returns all devices.
func (m *MultiSim) GPUs() []core.LevelExecutor {
	out := make([]core.LevelExecutor, len(m.gpus))
	for i, g := range m.gpus {
		out[i] = g
	}
	return out
}

// GPUGamma implements core.Backend.
func (m *MultiSim) GPUGamma() float64 { return m.gpus[0].Gamma() }

func (m *MultiSim) transfer(n int64, done func()) {
	if n < 0 {
		panic(fmt.Sprintf("hpu: negative transfer size %d", n))
	}
	d := m.platform.Link.LatencySec + float64(n)*m.platform.Link.SecPerByte
	m.link.RequestFixed(d, done)
}

// TransferToGPU implements core.Backend. All devices share the one link, as
// on a dual-die card behind a single PCIe slot.
func (m *MultiSim) TransferToGPU(n int64, done func()) { m.transfer(n, done) }

// TransferToCPU implements core.Backend.
func (m *MultiSim) TransferToCPU(n int64, done func()) { m.transfer(n, done) }

// Now implements core.Backend.
func (m *MultiSim) Now() float64 { return m.eng.Now() }

// Wait implements core.Backend.
func (m *MultiSim) Wait() { m.eng.Run() }
