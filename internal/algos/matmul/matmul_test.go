package matmul

import (
	"context"

	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/hpu"
	"repro/internal/native"
)

func randomMatrix(n int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	m := make([]float64, n*n)
	for i := range m {
		m[i] = float64(r.Intn(21) - 10)
	}
	return m
}

func close(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			return false
		}
	}
	return true
}

func TestNewValidation(t *testing.T) {
	if _, err := New(make([]float64, 9), make([]float64, 9), 3, 1); err == nil {
		t.Error("New accepted non-power-of-two dimension")
	}
	if _, err := New(make([]float64, 16), make([]float64, 4), 4, 1); err == nil {
		t.Error("New accepted mismatched operand sizes")
	}
	if _, err := New(make([]float64, 16), make([]float64, 16), 4, 0); err == nil {
		t.Error("New accepted depth 0")
	}
	if _, err := New(make([]float64, 16), make([]float64, 16), 4, 5); err == nil {
		t.Error("New accepted depth beyond dimension")
	}
}

func TestMultiplyIdentity(t *testing.T) {
	n := 8
	id := make([]float64, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	a := randomMatrix(n, 1)
	if got := Multiply(a, id, n); !close(got, a) {
		t.Error("A·I != A")
	}
	if got := Multiply(id, a, n); !close(got, a) {
		t.Error("I·A != A")
	}
}

func TestExecutors(t *testing.T) {
	n, depth := 32, 3
	a, b := randomMatrix(n, 2), randomMatrix(n, 3)
	want := Multiply(a, b, n)

	t.Run("sequential", func(t *testing.T) {
		be := hpu.MustSim(hpu.HPU1())
		m, err := New(a, b, n, depth)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.RunSequentialCtx(context.Background(), be, m); err != nil {
			t.Fatal(err)
		}
		if !close(m.Result(), want) {
			t.Error("sequential product incorrect")
		}
	})
	t.Run("bf-cpu", func(t *testing.T) {
		be := hpu.MustSim(hpu.HPU1())
		m, _ := New(a, b, n, depth)
		if _, err := core.RunBreadthFirstCPUCtx(context.Background(), be, m); err != nil {
			t.Fatal(err)
		}
		if !close(m.Result(), want) {
			t.Error("breadth-first product incorrect")
		}
	})
	t.Run("basic-hybrid", func(t *testing.T) {
		be := hpu.MustSim(hpu.HPU1())
		m, _ := New(a, b, n, depth)
		if _, err := core.RunBasicHybridCtx(context.Background(), be, m, 2); err != nil {
			t.Fatal(err)
		}
		if !close(m.Result(), want) {
			t.Error("basic hybrid product incorrect")
		}
	})
	t.Run("advanced-hybrid", func(t *testing.T) {
		be := hpu.MustSim(hpu.HPU2())
		m, _ := New(a, b, n, depth)
		prm := advParams{Alpha: 0.25, Y: 2, Split: 1}
		if _, err := core.RunAdvancedHybridCtx(context.Background(), be, m, prm.Alpha, prm.Y, core.WithSplit(prm.Split)); err != nil {
			t.Fatal(err)
		}
		if !close(m.Result(), want) {
			t.Error("advanced hybrid product incorrect")
		}
	})
	t.Run("gpu-only", func(t *testing.T) {
		be := hpu.MustSim(hpu.HPU1())
		m, _ := New(a, b, n, depth)
		if _, err := core.RunGPUOnlyCtx(context.Background(), be, m); err != nil {
			t.Fatal(err)
		}
		if !close(m.Result(), want) {
			t.Error("gpu-only product incorrect")
		}
	})
	t.Run("native", func(t *testing.T) {
		be, err := native.New(native.Config{CPUWorkers: 4, DeviceLanes: 16})
		if err != nil {
			t.Fatal(err)
		}
		defer be.Close()
		m, _ := New(a, b, n, depth)
		prm := advParams{Alpha: 0.5, Y: 2, Split: 1}
		if _, err := core.RunAdvancedHybridCtx(context.Background(), be, m, prm.Alpha, prm.Y, core.WithSplit(prm.Split)); err != nil {
			t.Fatal(err)
		}
		if !close(m.Result(), want) {
			t.Error("native product incorrect")
		}
	})
}

func TestDepthEquivalence(t *testing.T) {
	// Different truncation depths must give the same product.
	n := 16
	a, b := randomMatrix(n, 4), randomMatrix(n, 5)
	want := Multiply(a, b, n)
	for depth := 1; depth <= 4; depth++ {
		be := hpu.MustSim(hpu.HPU1())
		m, err := New(a, b, n, depth)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.RunBreadthFirstCPUCtx(context.Background(), be, m); err != nil {
			t.Fatal(err)
		}
		if !close(m.Result(), want) {
			t.Errorf("depth %d product incorrect", depth)
		}
	}
}

func TestArityEightSplits(t *testing.T) {
	n := 16
	a, b := randomMatrix(n, 6), randomMatrix(n, 7)
	want := Multiply(a, b, n)
	for _, prm := range []advParams{
		{Alpha: 0.1, Y: 1, Split: 1},
		{Alpha: 0.4, Y: 2, Split: 1},
		{Alpha: 0.8, Y: 2, Split: 2},
	} {
		be := hpu.MustSim(hpu.HPU1())
		m, _ := New(a, b, n, 3)
		if _, err := core.RunAdvancedHybridCtx(context.Background(), be, m, prm.Alpha, prm.Y, core.WithSplit(prm.Split)); err != nil {
			t.Fatalf("%+v: %v", prm, err)
		}
		if !close(m.Result(), want) {
			t.Errorf("%+v: product incorrect", prm)
		}
	}
}

// advParams groups advanced-division parameters for test tables. It
// replaces the deprecated core.AdvancedParams in test code.
type advParams struct {
	Alpha float64
	Y     int
	Split int
}
