// Package matmul implements divide-and-conquer dense matrix multiplication
// (T(n) = 8T(n/2) + Θ(n²)) for the generic hybrid framework. Unlike the
// other case studies it truncates the recursion at a configurable depth and
// multiplies the leaf blocks directly — the paper's §7 suggestion of
// switching to non-recursive kernels at the lowest levels — which keeps the
// breadth-first expansion's memory footprint (8^l blocks at level l)
// bounded.
package matmul

import (
	"fmt"

	"repro/internal/core"

	"repro/internal/dcerr"
)

// block is a square row-major matrix.
type block struct {
	dim int
	v   []float64
}

func newBlock(dim int) block { return block{dim: dim, v: make([]float64, dim*dim)} }

func (b block) at(r, c int) float64     { return b.v[r*b.dim+c] }
func (b block) set(r, c int, x float64) { b.v[r*b.dim+c] = x }

// quadrant copies quadrant (qr, qc) ∈ {0,1}² of src into dst (dim src/2).
func quadrant(dst, src block, qr, qc int) {
	h := src.dim / 2
	for r := 0; r < h; r++ {
		copy(dst.v[r*h:(r+1)*h], src.v[(qr*h+r)*src.dim+qc*h:][:h])
	}
}

// addInto adds src into quadrant (qr, qc) of dst (dim 2·src.dim).
func addInto(dst, src block, qr, qc int) {
	h := src.dim
	for r := 0; r < h; r++ {
		drow := dst.v[(qr*h+r)*dst.dim+qc*h:][:h]
		srow := src.v[r*h : (r+1)*h]
		for c := range srow {
			drow[c] += srow[c]
		}
	}
}

// mulInto computes dst = a·b for equal-dim blocks (naive cubic kernel).
func mulInto(dst, a, b block) {
	d := dst.dim
	for r := 0; r < d; r++ {
		drow := dst.v[r*d : (r+1)*d]
		for c := range drow {
			drow[c] = 0
		}
		for k := 0; k < d; k++ {
			x := a.v[r*d+k]
			if x == 0 {
				continue
			}
			brow := b.v[k*d : (k+1)*d]
			for c := range drow {
				drow[c] += x * brow[c]
			}
		}
	}
}

// children maps child q ∈ [0,8) of a node to the operand quadrants and the
// output quadrant it contributes to: C[cq] += A[aq0,aq1] · B[bq0,bq1].
var children = [8]struct{ ar, ac, br, bc, cr, cc int }{
	{0, 0, 0, 0, 0, 0}, // A11·B11 → C11
	{0, 1, 1, 0, 0, 0}, // A12·B21 → C11
	{0, 0, 0, 1, 0, 1}, // A11·B12 → C12
	{0, 1, 1, 1, 0, 1}, // A12·B22 → C12
	{1, 0, 0, 0, 1, 0}, // A21·B11 → C21
	{1, 1, 1, 0, 1, 0}, // A22·B21 → C21
	{1, 0, 0, 1, 1, 1}, // A21·B12 → C22
	{1, 1, 1, 1, 1, 1}, // A22·B22 → C22
}

// Multiplier is a breadth-first D&C matrix multiplication instance. It
// implements core.GPUAlg. Single-use.
type Multiplier struct {
	n     int // matrix dimension
	depth int // recursion depth; leaves are (n>>depth)-dim block products
	// ops[l] and prods[l] hold the 8^l operand pairs and products of
	// level l, each of dimension n>>l.
	opsA, opsB [][]block
	prods      [][]block
	finished   bool
}

var _ core.GPUAlg = (*Multiplier)(nil)

// New builds a Multiplier for C = A·B, with A and B given row-major of
// dimension n (a power of two). depth is the recursion depth: 8^depth leaf
// blocks of dimension n>>depth are multiplied directly; it must satisfy
// 1 ≤ depth and n>>depth ≥ 1.
func New(a, b []float64, n, depth int) (*Multiplier, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("matmul: dimension %d: %w", n, dcerr.ErrNotPowerOfTwo)
	}
	if len(a) != n*n || len(b) != n*n {
		return nil, fmt.Errorf("matmul: operand sizes %d, %d do not match n²=%d: %w", len(a), len(b), n*n, dcerr.ErrBadShape)
	}
	if depth < 1 || n>>depth < 1 {
		return nil, fmt.Errorf("matmul: depth %d out of range for n=%d: %w", depth, n, dcerr.ErrBadShape)
	}
	m := &Multiplier{n: n, depth: depth}
	nodes := 1
	m.opsA = make([][]block, depth+1)
	m.opsB = make([][]block, depth+1)
	m.prods = make([][]block, depth+1)
	for l := 0; l <= depth; l++ {
		dim := n >> l
		m.opsA[l] = make([]block, nodes)
		m.opsB[l] = make([]block, nodes)
		m.prods[l] = make([]block, nodes)
		for i := 0; i < nodes; i++ {
			if l > 0 {
				m.opsA[l][i] = newBlock(dim)
				m.opsB[l][i] = newBlock(dim)
			}
			m.prods[l][i] = newBlock(dim)
		}
		nodes *= 8
	}
	m.opsA[0][0] = block{dim: n, v: append([]float64(nil), a...)}
	m.opsB[0][0] = block{dim: n, v: append([]float64(nil), b...)}
	return m, nil
}

// Name implements core.Alg.
func (m *Multiplier) Name() string { return "matmul" }

// Arity implements core.Alg: a = 8.
func (m *Multiplier) Arity() int { return 8 }

// Shrink implements core.Alg: b = 2.
func (m *Multiplier) Shrink() int { return 2 }

// N implements core.Alg: the matrix dimension.
func (m *Multiplier) N() int { return m.n }

// Levels implements core.Alg: the truncated recursion depth.
func (m *Multiplier) Levels() int { return m.depth }

// DivideBatch implements core.Alg: node idx extracts the operand quadrants
// of its eight children.
func (m *Multiplier) DivideBatch(level, lo, hi int) core.Batch {
	if hi <= lo {
		return core.Batch{}
	}
	dim := m.n >> level
	elems := float64(dim) * float64(dim)
	a, b := m.opsA[level], m.opsB[level]
	ca, cb := m.opsA[level+1], m.opsB[level+1]
	return core.Batch{
		Tasks: hi - lo,
		Cost: core.Cost{
			Ops: elems, MemWords: 4 * elems, Coalesced: false, Divergent: false,
			WorkingSet: int64(hi-lo) * int64(elems) * 8 * 3,
		},
		Run: func(i int) {
			idx := lo + i
			for q, ch := range children {
				c := 8*idx + q
				quadrant(ca[c], a[idx], ch.ar, ch.ac)
				quadrant(cb[c], b[idx], ch.br, ch.bc)
			}
		},
	}
}

// BaseBatch implements core.Alg: each leaf is a direct block product.
func (m *Multiplier) BaseBatch(lo, hi int) core.Batch {
	if hi <= lo {
		return core.Batch{}
	}
	dim := m.n >> m.depth
	cube := float64(dim) * float64(dim) * float64(dim)
	a, b, p := m.opsA[m.depth], m.opsB[m.depth], m.prods[m.depth]
	return core.Batch{
		Tasks: hi - lo,
		Cost: core.Cost{
			Ops: 2 * cube, MemWords: cube, Coalesced: false, Divergent: false,
			WorkingSet: int64(hi-lo) * int64(dim) * int64(dim) * 8 * 3,
		},
		Run: func(i int) {
			idx := lo + i
			mulInto(p[idx], a[idx], b[idx])
		},
	}
}

// CombineBatch implements core.Alg: node idx accumulates its eight child
// products into its output quadrants.
func (m *Multiplier) CombineBatch(level, lo, hi int) core.Batch {
	if hi <= lo {
		return core.Batch{}
	}
	dim := m.n >> level
	elems := float64(dim) * float64(dim)
	p, cp := m.prods[level], m.prods[level+1]
	return core.Batch{
		Tasks: hi - lo,
		Cost: core.Cost{
			Ops: 2 * elems, MemWords: 3 * elems, Coalesced: false, Divergent: false,
			WorkingSet: int64(hi-lo) * int64(elems) * 8 * 3,
		},
		Run: func(i int) {
			idx := lo + i
			out := p[idx]
			for j := range out.v {
				out.v[j] = 0
			}
			for q, ch := range children {
				addInto(out, cp[8*idx+q], ch.cr, ch.cc)
			}
		},
	}
}

// GPUDivideBatch implements core.GPUAlg.
func (m *Multiplier) GPUDivideBatch(level, lo, hi int) core.Batch {
	return m.DivideBatch(level, lo, hi)
}

// GPUBaseBatch implements core.GPUAlg.
func (m *Multiplier) GPUBaseBatch(lo, hi int) core.Batch { return m.BaseBatch(lo, hi) }

// GPUCombineBatch implements core.GPUAlg.
func (m *Multiplier) GPUCombineBatch(level, lo, hi int) core.Batch {
	return m.CombineBatch(level, lo, hi)
}

// GPUBytes implements core.GPUAlg.
func (m *Multiplier) GPUBytes(level, lo, hi int) int64 {
	dim := int64(m.n >> level)
	return int64(hi-lo) * dim * dim * 8 * 3
}

// Finish implements the executors' completion hook.
func (m *Multiplier) Finish() { m.finished = true }

// Result returns C = A·B row-major. Valid only after an executor completed.
func (m *Multiplier) Result() []float64 {
	if !m.finished {
		panic("matmul: Result before execution finished")
	}
	return m.prods[0][0].v
}

// ModelF returns the model-level per-node divide+combine cost Θ(size²),
// where size is the block dimension.
func (m *Multiplier) ModelF() func(float64) float64 {
	return func(size float64) float64 { return 6.5 * size * size }
}

// ModelLeaf returns the model-level cost of one leaf block product.
func (m *Multiplier) ModelLeaf() float64 {
	d := float64(m.n >> m.depth)
	return 2.5 * d * d * d
}

// Multiply is the sequential cubic reference.
func Multiply(a, b []float64, n int) []float64 {
	out := make([]float64, n*n)
	ab := block{dim: n, v: a}
	bb := block{dim: n, v: b}
	mulInto(block{dim: n, v: out}, ab, bb)
	return out
}
