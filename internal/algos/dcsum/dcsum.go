// Package dcsum implements the paper's §4.3 running example: a
// divide-and-conquer sum of an array (Algorithms 4 and 5). It exists to
// demonstrate the generic translation on the simplest possible recurrence,
// T(n) = 2T(n/2) + Θ(1).
//
// The CPU combine follows Algorithm 4's layout: the partial sum of the
// subproblem over [idx·sz, (idx+1)·sz) is held at its first element, so a
// combine adds the right half's sum into the left's. The GPU combine, after
// the (free, leaf-level) layout switch of PermuteForGPU, follows
// Algorithm 5: the k partial sums of a region live compacted at its first k
// slots and work-item id executes sums[id] += sums[id+k/2] — a fully
// coalesced access pattern. Because addition is commutative and associative,
// the device pairing need not match the recursion tree's sibling structure.
package dcsum

import (
	"fmt"
	"math/bits"

	"repro/internal/core"
	"repro/internal/mempool"

	"repro/internal/dcerr"
)

// Summer is a breadth-first divide-and-conquer sum over a power-of-two
// input. It implements core.GPUAlg and core.Transformable. Partial sums are
// held as int64 to avoid overflow. Single-use, like mergesort.Sorter.
type Summer struct {
	n int
	l int
	v []int64
	// compact, when active, marks the region [base, base+count) of v as
	// holding that region's partial sums contiguously (Algorithm 5 layout).
	compact struct {
		active bool
		base   int
		count  int
	}
	finished bool
}

var (
	_ core.GPUAlg        = (*Summer)(nil)
	_ core.Transformable = (*Summer)(nil)
)

// New builds a Summer over a copy of data; len(data) must be a power of two
// of at least 2.
func New(data []int32) (*Summer, error) {
	n := len(data)
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dcsum: input length %d: %w", n, dcerr.ErrNotPowerOfTwo)
	}
	// The partial-sum vector is a pool lease, fully initialized from data
	// below, so its unspecified initial contents never surface.
	s := &Summer{n: n, l: bits.TrailingZeros(uint(n)), v: mempool.Int64s.Get(n)}
	for i, x := range data {
		s.v[i] = int64(x)
	}
	return s, nil
}

// Release implements core.Releaser: it returns the sum vector to the pool.
// Idempotent; must not be called after Release while Result's value is
// still needed (Result copies nothing — it reads v[0]).
func (s *Summer) Release() {
	if s.v != nil {
		mempool.Int64s.Put(s.v)
		s.v = nil
	}
}

// Name implements core.Alg.
func (s *Summer) Name() string { return "dcsum" }

// Arity implements core.Alg.
func (s *Summer) Arity() int { return 2 }

// Shrink implements core.Alg.
func (s *Summer) Shrink() int { return 2 }

// N implements core.Alg.
func (s *Summer) N() int { return s.n }

// Levels implements core.Alg.
func (s *Summer) Levels() int { return s.l }

// DivideBatch implements core.Alg: division is positional.
func (s *Summer) DivideBatch(level, lo, hi int) core.Batch { return core.Batch{} }

// BaseBatch implements core.Alg: a single element is its own sum.
func (s *Summer) BaseBatch(lo, hi int) core.Batch { return core.Batch{} }

// combineCost is the per-task cost of one pairwise add.
func combineCost(span int64, coalesced bool) core.Cost {
	return core.Cost{
		Ops:        1,
		MemWords:   3,
		Coalesced:  coalesced,
		Divergent:  false,
		WorkingSet: span,
	}
}

// CombineBatch implements core.Alg (Algorithm 4's layout): task idx adds the
// right child's sum into the left child's slot.
func (s *Summer) CombineBatch(level, lo, hi int) core.Batch {
	if hi <= lo {
		return core.Batch{}
	}
	sz := s.n >> level
	return core.Batch{
		Tasks: hi - lo,
		Cost:  combineCost(int64(hi-lo)*int64(sz)*8, false),
		Run: func(i int) {
			off := (lo + i) * sz
			s.v[off] += s.v[off+sz/2]
		},
	}
}

// GPUDivideBatch implements core.GPUAlg.
func (s *Summer) GPUDivideBatch(level, lo, hi int) core.Batch { return core.Batch{} }

// GPUBaseBatch implements core.GPUAlg.
func (s *Summer) GPUBaseBatch(lo, hi int) core.Batch { return core.Batch{} }

// GPUBytes implements core.GPUAlg (8-byte partial sums).
func (s *Summer) GPUBytes(level, lo, hi int) int64 {
	return int64(hi-lo) * int64(s.n>>level) * 8
}

// GPUCombineBatch implements core.GPUAlg. In the compact region layout this
// is exactly Algorithm 5: sums[id] += sums[id + numSubProblems].
func (s *Summer) GPUCombineBatch(level, lo, hi int) core.Batch {
	if hi <= lo {
		return core.Batch{}
	}
	if !s.compact.active {
		return s.CombineBatch(level, lo, hi)
	}
	k := hi - lo // number of sums after this combine
	if s.compact.count != 2*k {
		panic(fmt.Sprintf("dcsum: compact count %d does not match range [%d,%d)",
			s.compact.count, lo, hi))
	}
	base := s.compact.base
	s.compact.count = k
	return core.Batch{
		Tasks: k,
		Cost:  combineCost(int64(2*k)*8, true),
		Run: func(id int) {
			s.v[base+id] += s.v[base+id+k]
		},
	}
}

// PermuteForGPU implements core.Transformable. At the leaf level every
// element is its own partial sum, so the compact layout coincides with the
// natural one and the switch is free — the situation the §4.3 GPU kernel
// exploits.
func (s *Summer) PermuteForGPU(level, lo, hi int) core.Batch {
	if s.compact.active {
		panic("dcsum: PermuteForGPU while a region is already compact")
	}
	sz := s.n >> level
	if sz != 1 {
		panic("dcsum: PermuteForGPU is only supported at the leaf level")
	}
	s.compact.active = true
	s.compact.base = lo
	s.compact.count = hi - lo
	return core.Batch{}
}

// PermuteBack implements core.Transformable: it scatters the region's k
// compacted sums back to the Algorithm 4 positions idx·sz, so the CPU can
// continue combining above the transfer level.
func (s *Summer) PermuteBack(level, lo, hi int) core.Batch {
	if !s.compact.active {
		panic("dcsum: PermuteBack without a compact region")
	}
	k := hi - lo
	if s.compact.count != k {
		panic(fmt.Sprintf("dcsum: PermuteBack count %d does not match range [%d,%d)",
			s.compact.count, lo, hi))
	}
	base := s.compact.base
	s.compact.active = false
	sz := s.n >> level
	if sz == 1 {
		return core.Batch{} // layouts coincide
	}
	return core.Batch{
		Tasks: k,
		Cost: core.Cost{
			Ops:        1,
			MemWords:   2,
			Coalesced:  true,
			Divergent:  false,
			WorkingSet: int64(k) * int64(sz) * 8,
		},
		Run: func(i int) {
			if i != 0 {
				return
			}
			// Descending order: the target idx·sz of sum idx never
			// overwrites a smaller, not-yet-moved source slot.
			for idx := k - 1; idx >= 1; idx-- {
				s.v[base+idx*sz] = s.v[base+idx]
				s.v[base+idx] = 0
			}
		},
	}
}

// Finish implements the executors' completion hook.
func (s *Summer) Finish() { s.finished = true }

// Result returns the total sum. Valid only after an executor completed.
func (s *Summer) Result() int64 {
	if !s.finished {
		panic("dcsum: Result before execution finished")
	}
	return s.v[0]
}

// ModelF returns the model-level combine cost: constant per subproblem
// (T(n) = 2T(n/2) + Θ(1)).
func (s *Summer) ModelF() func(float64) float64 {
	return func(float64) float64 { return 2.5 }
}

// ModelLeaf returns the model-level base-case cost.
func (s *Summer) ModelLeaf() float64 { return 0 }

// Sum is the sequential reference (Algorithm 4 run to completion).
func Sum(data []int32) int64 {
	var t int64
	for _, v := range data {
		t += int64(v)
	}
	return t
}
