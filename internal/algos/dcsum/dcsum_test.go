package dcsum

import (
	"context"

	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/hpu"
	"repro/internal/native"
	"repro/internal/workload"
)

func TestNewValidation(t *testing.T) {
	for _, n := range []int{0, 1, 3, 12} {
		if _, err := New(make([]int32, n)); err == nil {
			t.Errorf("New accepted length %d", n)
		}
	}
}

func TestSequential(t *testing.T) {
	in := workload.Uniform(1<<10, 1)
	be := hpu.MustSim(hpu.HPU1())
	s, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.RunSequentialCtx(context.Background(), be, s); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Result(), Sum(in); got != want {
		t.Errorf("sequential sum = %d, want %d", got, want)
	}
}

func TestBreadthFirstCPU(t *testing.T) {
	in := workload.Reverse(1 << 12)
	be := hpu.MustSim(hpu.HPU2())
	s, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.RunBreadthFirstCPUCtx(context.Background(), be, s); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Result(), Sum(in); got != want {
		t.Errorf("bf sum = %d, want %d", got, want)
	}
}

func TestBasicHybrid(t *testing.T) {
	for _, coalesce := range []bool{false, true} {
		for _, x := range []int{0, 3, 7} {
			in := workload.Uniform(1<<10, int64(x))
			be := hpu.MustSim(hpu.HPU1())
			s, err := New(in)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := core.RunBasicHybridCtx(context.Background(), be, s, x, coalesceOpts(coalesce)...); err != nil {
				t.Fatal(err)
			}
			if got, want := s.Result(), Sum(in); got != want {
				t.Errorf("basic(x=%d,coalesce=%v) sum = %d, want %d", x, coalesce, got, want)
			}
		}
	}
}

func TestAdvancedHybrid(t *testing.T) {
	for _, coalesce := range []bool{false, true} {
		for _, prm := range []advParams{
			{Alpha: 0.16, Y: 5, Split: -1},
			{Alpha: 0.5, Y: 8, Split: 2},
			{Alpha: 0, Y: 4, Split: 0},
			{Alpha: 1, Y: 6, Split: -1},
		} {
			in := workload.Uniform(1<<10, 99)
			be := hpu.MustSim(hpu.HPU1())
			s, err := New(in)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := core.RunAdvancedHybridCtx(context.Background(), be, s, prm.Alpha, prm.Y,
				append(coalesceOpts(coalesce), core.WithSplit(prm.Split))...); err != nil {
				t.Fatal(err)
			}
			if got, want := s.Result(), Sum(in); got != want {
				t.Errorf("advanced(%+v,coalesce=%v) sum = %d, want %d", prm, coalesce, got, want)
			}
		}
	}
}

func TestGPUOnly(t *testing.T) {
	in := workload.Gaussian(1<<12, 5)
	be := hpu.MustSim(hpu.HPU1())
	s, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.RunGPUOnlyCtx(context.Background(), be, s, core.WithCoalesce()); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Result(), Sum(in); got != want {
		t.Errorf("gpu-only sum = %d, want %d", got, want)
	}
}

func TestNativeAdvanced(t *testing.T) {
	in := workload.Uniform(1<<12, 8)
	be, err := native.New(native.Config{CPUWorkers: 4, DeviceLanes: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	s, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	prm := advParams{Alpha: 0.25, Y: 6, Split: -1}
	if _, err := core.RunAdvancedHybridCtx(context.Background(), be, s, prm.Alpha, prm.Y, core.WithCoalesce(), core.WithSplit(prm.Split)); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Result(), Sum(in); got != want {
		t.Errorf("native advanced sum = %d, want %d", got, want)
	}
}

func TestQuickProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(3))}
	f := func(seed int64, sizePow, yRaw uint8, alphaRaw uint16) bool {
		logN := 2 + int(sizePow%9)
		n := 1 << logN
		in := workload.Uniform(n, seed)
		be := hpu.MustSim(hpu.HPU2())
		s, err := New(in)
		if err != nil {
			return false
		}
		prm := advParams{
			Alpha: float64(alphaRaw) / 65535,
			Y:     int(yRaw) % (logN + 1),
			Split: -1,
		}
		if _, err := core.RunAdvancedHybridCtx(context.Background(), be, s, prm.Alpha, prm.Y, core.WithCoalesce(), core.WithSplit(prm.Split)); err != nil {
			return false
		}
		return s.Result() == Sum(in)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestResultBeforeRunPanics(t *testing.T) {
	s, _ := New(make([]int32, 4))
	defer func() {
		if recover() == nil {
			t.Error("Result() before execution did not panic")
		}
	}()
	_ = s.Result()
}

// advParams groups advanced-division parameters for test tables. It
// replaces the deprecated core.AdvancedParams in test code.
type advParams struct {
	Alpha float64
	Y     int
	Split int
}

// coalesceOpts returns the coalescing option when on, for table-driven
// tests that toggle it.
func coalesceOpts(on bool) []core.Option {
	if on {
		return []core.Option{core.WithCoalesce()}
	}
	return nil
}
