package strassen

import (
	"context"

	"math"
	"math/rand"
	"testing"

	"repro/internal/algos/matmul"
	"repro/internal/core"
	"repro/internal/hpu"
	"repro/internal/native"
)

func randomMatrix(n int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	m := make([]float64, n*n)
	for i := range m {
		m[i] = float64(r.Intn(11) - 5)
	}
	return m
}

func closeTo(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-6 {
			return false
		}
	}
	return true
}

func TestNewValidation(t *testing.T) {
	if _, err := New(make([]float64, 9), make([]float64, 9), 3, 1); err == nil {
		t.Error("accepted non-power-of-two dimension")
	}
	if _, err := New(make([]float64, 16), make([]float64, 8), 4, 1); err == nil {
		t.Error("accepted mismatched operands")
	}
	if _, err := New(make([]float64, 16), make([]float64, 16), 4, 0); err == nil {
		t.Error("accepted depth 0")
	}
}

func TestMatchesNaiveMultiply(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32} {
		a, b := randomMatrix(n, int64(n)), randomMatrix(n, int64(n)+1)
		want := matmul.Multiply(a, b, n)
		m, err := New(a, b, n, 2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.RunBreadthFirstCPUCtx(context.Background(), hpu.MustSim(hpu.HPU1()), m); err != nil {
			t.Fatal(err)
		}
		if !closeTo(m.Result(), want) {
			t.Errorf("n=%d: Strassen product differs from naive", n)
		}
	}
}

func TestDepthEquivalence(t *testing.T) {
	n := 16
	a, b := randomMatrix(n, 7), randomMatrix(n, 8)
	want := matmul.Multiply(a, b, n)
	for depth := 1; depth <= 4; depth++ {
		m, err := New(a, b, n, depth)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.RunBreadthFirstCPUCtx(context.Background(), hpu.MustSim(hpu.HPU1()), m); err != nil {
			t.Fatal(err)
		}
		if !closeTo(m.Result(), want) {
			t.Errorf("depth %d: incorrect product", depth)
		}
	}
}

func TestExecutorsAritySeven(t *testing.T) {
	n, depth := 32, 2
	a, b := randomMatrix(n, 9), randomMatrix(n, 10)
	want := matmul.Multiply(a, b, n)

	t.Run("sequential", func(t *testing.T) {
		m, _ := New(a, b, n, depth)
		if _, err := core.RunSequentialCtx(context.Background(), hpu.MustSim(hpu.HPU1()), m); err != nil {
			t.Fatal(err)
		}
		if !closeTo(m.Result(), want) {
			t.Error("incorrect product")
		}
	})
	t.Run("basic-hybrid", func(t *testing.T) {
		m, _ := New(a, b, n, depth)
		if _, err := core.RunBasicHybridCtx(context.Background(), hpu.MustSim(hpu.HPU1()), m, 1); err != nil {
			t.Fatal(err)
		}
		if !closeTo(m.Result(), want) {
			t.Error("incorrect product")
		}
	})
	t.Run("advanced-hybrid", func(t *testing.T) {
		for _, prm := range []advParams{
			{Alpha: 0.2, Y: 1, Split: 1},
			{Alpha: 0.45, Y: 2, Split: 1},
			{Alpha: 0.7, Y: 2, Split: 2},
		} {
			m, _ := New(a, b, n, depth)
			if _, err := core.RunAdvancedHybridCtx(context.Background(), hpu.MustSim(hpu.HPU2()), m, prm.Alpha, prm.Y, core.WithSplit(prm.Split)); err != nil {
				t.Fatalf("%+v: %v", prm, err)
			}
			if !closeTo(m.Result(), want) {
				t.Errorf("%+v: incorrect product", prm)
			}
		}
	})
	t.Run("gpu-only", func(t *testing.T) {
		m, _ := New(a, b, n, depth)
		if _, err := core.RunGPUOnlyCtx(context.Background(), hpu.MustSim(hpu.HPU1()), m); err != nil {
			t.Fatal(err)
		}
		if !closeTo(m.Result(), want) {
			t.Error("incorrect product")
		}
	})
	t.Run("native", func(t *testing.T) {
		be, err := native.New(native.Config{CPUWorkers: 4, DeviceLanes: 8})
		if err != nil {
			t.Fatal(err)
		}
		defer be.Close()
		m, _ := New(a, b, n, depth)
		if _, err := core.RunAdvancedHybridCtx(context.Background(), be, m, 0.3, 2, core.WithSplit(1)); err != nil {
			t.Fatal(err)
		}
		if !closeTo(m.Result(), want) {
			t.Error("incorrect product")
		}
	})
}

func TestIdentity(t *testing.T) {
	n := 8
	id := make([]float64, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	a := randomMatrix(n, 11)
	m, _ := New(a, id, n, 2)
	if _, err := core.RunBreadthFirstCPUCtx(context.Background(), hpu.MustSim(hpu.HPU1()), m); err != nil {
		t.Fatal(err)
	}
	if !closeTo(m.Result(), a) {
		t.Error("A·I != A")
	}
}

// advParams groups advanced-division parameters for test tables. It
// replaces the deprecated core.AdvancedParams in test code.
type advParams struct {
	Alpha float64
	Y     int
	Split int
}
