// Package strassen implements Strassen's matrix multiplication
// (T(n) = 7T(n/2) + Θ(n²)) for the generic hybrid framework. With a = 7 it
// exercises an odd branching factor, a divide phase that computes the ten
// Strassen operand sums, and — like internal/algos/matmul — a recursion
// truncated at a configurable depth with direct leaf block products.
package strassen

import (
	"fmt"

	"repro/internal/core"

	"repro/internal/dcerr"
)

// mat is a square row-major matrix of dimension dim.
type mat struct {
	dim int
	v   []float64
}

func newMat(dim int) mat { return mat{dim: dim, v: make([]float64, dim*dim)} }

// quad returns a copy of quadrant (qr, qc) of m.
func (m mat) quad(dst mat, qr, qc int) {
	h := m.dim / 2
	for r := 0; r < h; r++ {
		copy(dst.v[r*h:(r+1)*h], m.v[(qr*h+r)*m.dim+qc*h:][:h])
	}
}

// setQuadAdd adds src (dim h) scaled by sign into quadrant (qr, qc) of m.
func (m mat) setQuadAdd(src mat, qr, qc int, sign float64) {
	h := src.dim
	for r := 0; r < h; r++ {
		drow := m.v[(qr*h+r)*m.dim+qc*h:][:h]
		srow := src.v[r*h : (r+1)*h]
		for c := range srow {
			drow[c] += sign * srow[c]
		}
	}
}

// addQuads writes qa(A) op qb(A) into dst: dst = quad(m, a) + sign·quad(m, b).
func addQuads(dst, m mat, ar, ac int, sign float64, br, bc int) {
	h := m.dim / 2
	for r := 0; r < h; r++ {
		arow := m.v[(ar*h+r)*m.dim+ac*h:][:h]
		brow := m.v[(br*h+r)*m.dim+bc*h:][:h]
		drow := dst.v[r*h : (r+1)*h]
		for c := range drow {
			drow[c] = arow[c] + sign*brow[c]
		}
	}
}

func mulInto(dst, a, b mat) {
	d := dst.dim
	for r := 0; r < d; r++ {
		drow := dst.v[r*d : (r+1)*d]
		for c := range drow {
			drow[c] = 0
		}
		for k := 0; k < d; k++ {
			x := a.v[r*d+k]
			if x == 0 {
				continue
			}
			brow := b.v[k*d : (k+1)*d]
			for c := range drow {
				drow[c] += x * brow[c]
			}
		}
	}
}

// Strassen's seven products, expressed as (left operand, right operand)
// where each operand is quad1 ± quad2 of A or B (quad2 dim < 0 means "no
// second quadrant").
//
//	M1 = (A11+A22)(B11+B22)   M2 = (A21+A22)B11     M3 = A11(B12−B22)
//	M4 = A22(B21−B11)          M5 = (A11+A12)B22    M6 = (A21−A11)(B11+B12)
//	M7 = (A12−A22)(B21+B22)
type operand struct {
	r1, c1 int
	sign   float64 // 0 means single quadrant
	r2, c2 int
}

var products = [7]struct{ a, b operand }{
	{operand{0, 0, +1, 1, 1}, operand{0, 0, +1, 1, 1}}, // M1
	{operand{1, 0, +1, 1, 1}, operand{0, 0, 0, 0, 0}},  // M2
	{operand{0, 0, 0, 0, 0}, operand{0, 1, -1, 1, 1}},  // M3
	{operand{1, 1, 0, 0, 0}, operand{1, 0, -1, 0, 0}},  // M4
	{operand{0, 0, +1, 0, 1}, operand{1, 1, 0, 0, 0}},  // M5
	{operand{1, 0, -1, 0, 0}, operand{0, 0, +1, 0, 1}}, // M6
	{operand{0, 1, -1, 1, 1}, operand{1, 0, +1, 1, 1}}, // M7
}

// combineTerms maps output quadrant (index qr*2+qc) to signed products:
//
//	C11 = M1+M4−M5+M7; C12 = M3+M5; C21 = M2+M4; C22 = M1−M2+M3+M6.
var combineTerms = [4][]struct {
	m    int
	sign float64
}{
	{{0, 1}, {3, 1}, {4, -1}, {6, 1}},
	{{2, 1}, {4, 1}},
	{{1, 1}, {3, 1}},
	{{0, 1}, {1, -1}, {2, 1}, {5, 1}},
}

// Multiplier is a breadth-first Strassen instance. It implements
// core.GPUAlg. Single-use.
type Multiplier struct {
	n, depth   int
	opsA, opsB [][]mat
	prods      [][]mat
	finished   bool
}

var _ core.GPUAlg = (*Multiplier)(nil)

// New builds a Multiplier for C = A·B with row-major operands of dimension
// n (a power of two). 8^… memory note: level l stores 7^l blocks, so depth
// is typically small (≤ 4).
func New(a, b []float64, n, depth int) (*Multiplier, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("strassen: dimension %d: %w", n, dcerr.ErrNotPowerOfTwo)
	}
	if len(a) != n*n || len(b) != n*n {
		return nil, fmt.Errorf("strassen: operand sizes %d, %d do not match n²=%d: %w", len(a), len(b), n*n, dcerr.ErrBadShape)
	}
	if depth < 1 || n>>depth < 1 {
		return nil, fmt.Errorf("strassen: depth %d out of range for n=%d: %w", depth, n, dcerr.ErrBadShape)
	}
	m := &Multiplier{n: n, depth: depth}
	nodes := 1
	m.opsA = make([][]mat, depth+1)
	m.opsB = make([][]mat, depth+1)
	m.prods = make([][]mat, depth+1)
	for l := 0; l <= depth; l++ {
		dim := n >> l
		m.opsA[l] = make([]mat, nodes)
		m.opsB[l] = make([]mat, nodes)
		m.prods[l] = make([]mat, nodes)
		for i := 0; i < nodes; i++ {
			if l > 0 {
				m.opsA[l][i] = newMat(dim)
				m.opsB[l][i] = newMat(dim)
			}
			m.prods[l][i] = newMat(dim)
		}
		nodes *= 7
	}
	m.opsA[0][0] = mat{dim: n, v: append([]float64(nil), a...)}
	m.opsB[0][0] = mat{dim: n, v: append([]float64(nil), b...)}
	return m, nil
}

// Name implements core.Alg.
func (m *Multiplier) Name() string { return "strassen" }

// Arity implements core.Alg: a = 7.
func (m *Multiplier) Arity() int { return 7 }

// Shrink implements core.Alg: b = 2.
func (m *Multiplier) Shrink() int { return 2 }

// N implements core.Alg: the matrix dimension.
func (m *Multiplier) N() int { return m.n }

// Levels implements core.Alg: the truncated recursion depth.
func (m *Multiplier) Levels() int { return m.depth }

// buildOperand materializes one Strassen operand into dst.
func buildOperand(dst, src mat, op operand) {
	if op.sign == 0 {
		src.quad(dst, op.r1, op.c1)
		return
	}
	addQuads(dst, src, op.r1, op.c1, op.sign, op.r2, op.c2)
}

// DivideBatch implements core.Alg: node idx forms the seven children's
// operand pairs (the ten Strassen sums plus four plain quadrants).
func (m *Multiplier) DivideBatch(level, lo, hi int) core.Batch {
	if hi <= lo {
		return core.Batch{}
	}
	dim := m.n >> level
	elems := float64(dim) * float64(dim)
	a, bm := m.opsA[level], m.opsB[level]
	ca, cb := m.opsA[level+1], m.opsB[level+1]
	return core.Batch{
		Tasks: hi - lo,
		Cost: core.Cost{
			Ops: 2.5 * elems, MemWords: 7 * elems, Coalesced: false, Divergent: false,
			WorkingSet: int64(hi-lo) * int64(elems) * 8 * 3,
		},
		Run: func(i int) {
			idx := lo + i
			for q, pr := range products {
				c := 7*idx + q
				buildOperand(ca[c], a[idx], pr.a)
				buildOperand(cb[c], bm[idx], pr.b)
			}
		},
	}
}

// BaseBatch implements core.Alg: direct leaf block products.
func (m *Multiplier) BaseBatch(lo, hi int) core.Batch {
	if hi <= lo {
		return core.Batch{}
	}
	dim := m.n >> m.depth
	cube := float64(dim) * float64(dim) * float64(dim)
	a, b, p := m.opsA[m.depth], m.opsB[m.depth], m.prods[m.depth]
	return core.Batch{
		Tasks: hi - lo,
		Cost: core.Cost{
			Ops: 2 * cube, MemWords: cube, Coalesced: false, Divergent: false,
			WorkingSet: int64(hi-lo) * int64(dim) * int64(dim) * 8 * 3,
		},
		Run: func(i int) {
			idx := lo + i
			mulInto(p[idx], a[idx], b[idx])
		},
	}
}

// CombineBatch implements core.Alg: node idx assembles its product's four
// quadrants from the seven child products.
func (m *Multiplier) CombineBatch(level, lo, hi int) core.Batch {
	if hi <= lo {
		return core.Batch{}
	}
	dim := m.n >> level
	elems := float64(dim) * float64(dim)
	p, cp := m.prods[level], m.prods[level+1]
	return core.Batch{
		Tasks: hi - lo,
		Cost: core.Cost{
			Ops: 3 * elems, MemWords: 5 * elems, Coalesced: false, Divergent: false,
			WorkingSet: int64(hi-lo) * int64(elems) * 8 * 2,
		},
		Run: func(i int) {
			idx := lo + i
			out := p[idx]
			for j := range out.v {
				out.v[j] = 0
			}
			for quad, terms := range combineTerms {
				for _, tm := range terms {
					out.setQuadAdd(cp[7*idx+tm.m], quad/2, quad%2, tm.sign)
				}
			}
		},
	}
}

// GPUDivideBatch implements core.GPUAlg.
func (m *Multiplier) GPUDivideBatch(level, lo, hi int) core.Batch {
	return m.DivideBatch(level, lo, hi)
}

// GPUBaseBatch implements core.GPUAlg.
func (m *Multiplier) GPUBaseBatch(lo, hi int) core.Batch { return m.BaseBatch(lo, hi) }

// GPUCombineBatch implements core.GPUAlg.
func (m *Multiplier) GPUCombineBatch(level, lo, hi int) core.Batch {
	return m.CombineBatch(level, lo, hi)
}

// GPUBytes implements core.GPUAlg.
func (m *Multiplier) GPUBytes(level, lo, hi int) int64 {
	dim := int64(m.n >> level)
	return int64(hi-lo) * dim * dim * 8 * 3
}

// Finish implements the executors' completion hook.
func (m *Multiplier) Finish() { m.finished = true }

// Result returns C = A·B row-major. Valid only after an executor completed.
func (m *Multiplier) Result() []float64 {
	if !m.finished {
		panic("strassen: Result before execution finished")
	}
	return m.prods[0][0].v
}

// ModelF returns the model-level per-node divide+combine cost Θ(size²).
func (m *Multiplier) ModelF() func(float64) float64 {
	return func(size float64) float64 { return 11.5 * size * size }
}

// ModelLeaf returns the model-level cost of one leaf block product.
func (m *Multiplier) ModelLeaf() float64 {
	d := float64(m.n >> m.depth)
	return 2.5 * d * d * d
}
