package fft

import (
	"context"

	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/hpu"
	"repro/internal/native"
)

func randomSignal(n int, seed int64) []complex128 {
	r := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.Float64()*2-1, r.Float64()*2-1)
	}
	return x
}

func closeTo(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestNewValidation(t *testing.T) {
	for _, n := range []int{0, 1, 3, 100} {
		if _, err := New(make([]complex128, n)); err == nil {
			t.Errorf("New accepted length %d", n)
		}
	}
}

func TestMatchesDFTAllExecutors(t *testing.T) {
	n := 1 << 8
	x := randomSignal(n, 1)
	want := DFT(x)

	runs := []struct {
		name string
		run  func(tr *Transform) error
	}{
		{"sequential", func(tr *Transform) error {
			_, err := core.RunSequentialCtx(context.Background(), hpu.MustSim(hpu.HPU1()), tr)
			return err
		}},
		{"bf-cpu", func(tr *Transform) error {
			_, err := core.RunBreadthFirstCPUCtx(context.Background(), hpu.MustSim(hpu.HPU1()), tr)
			return err
		}},
		{"basic-hybrid", func(tr *Transform) error {
			_, err := core.RunBasicHybridCtx(context.Background(), hpu.MustSim(hpu.HPU1()), tr, 4)
			return err
		}},
		{"advanced-hybrid", func(tr *Transform) error {
			_, err := core.RunAdvancedHybridCtx(context.Background(), hpu.MustSim(hpu.HPU2()), tr, 0.25, 5)
			return err
		}},
		{"gpu-only", func(tr *Transform) error {
			_, err := core.RunGPUOnlyCtx(context.Background(), hpu.MustSim(hpu.HPU1()), tr)
			return err
		}},
	}
	for _, rc := range runs {
		t.Run(rc.name, func(t *testing.T) {
			tr, err := New(x)
			if err != nil {
				t.Fatal(err)
			}
			if err := rc.run(tr); err != nil {
				t.Fatal(err)
			}
			if !closeTo(tr.Result(), want, 1e-9*float64(n)) {
				t.Error("FFT does not match the direct DFT")
			}
		})
	}
}

func TestRoundTrip(t *testing.T) {
	n := 1 << 10
	x := randomSignal(n, 2)
	fwd, err := New(x)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.RunBreadthFirstCPUCtx(context.Background(), hpu.MustSim(hpu.HPU1()), fwd); err != nil {
		t.Fatal(err)
	}

	inv, err := NewInverse(fwd.Result())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.RunBreadthFirstCPUCtx(context.Background(), hpu.MustSim(hpu.HPU1()), inv); err != nil {
		t.Fatal(err)
	}
	if !closeTo(inv.Result(), x, 1e-9*float64(n)) {
		t.Error("inverse(forward(x)) != x")
	}
}

func TestParseval(t *testing.T) {
	// Energy conservation: Σ|x|² = (1/n)·Σ|X|².
	n := 1 << 12
	x := randomSignal(n, 3)
	tr, _ := New(x)
	if _, err := core.RunBreadthFirstCPUCtx(context.Background(), hpu.MustSim(hpu.HPU1()), tr); err != nil {
		t.Fatal(err)
	}
	var ex, eX float64
	for i := range x {
		ex += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		X := tr.Result()[i]
		eX += real(X)*real(X) + imag(X)*imag(X)
	}
	if math.Abs(ex-eX/float64(n)) > 1e-6*ex {
		t.Errorf("Parseval violated: %g vs %g", ex, eX/float64(n))
	}
}

func TestLinearity(t *testing.T) {
	n := 1 << 8
	a := randomSignal(n, 4)
	b := randomSignal(n, 5)
	sum := make([]complex128, n)
	for i := range sum {
		sum[i] = a[i] + 2*b[i]
	}
	fa, _ := New(a)
	fb, _ := New(b)
	fs, _ := New(sum)
	for _, tr := range []*Transform{fa, fb, fs} {
		if _, err := core.RunBreadthFirstCPUCtx(context.Background(), hpu.MustSim(hpu.HPU1()), tr); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		want := fa.Result()[i] + 2*fb.Result()[i]
		if cmplx.Abs(fs.Result()[i]-want) > 1e-9*float64(n) {
			t.Fatalf("linearity violated at bin %d", i)
		}
	}
}

func TestImpulseIsFlat(t *testing.T) {
	n := 64
	x := make([]complex128, n)
	x[0] = 1
	tr, _ := New(x)
	if _, err := core.RunBreadthFirstCPUCtx(context.Background(), hpu.MustSim(hpu.HPU1()), tr); err != nil {
		t.Fatal(err)
	}
	for i, v := range tr.Result() {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT bin %d = %v, want 1", i, v)
		}
	}
}

func TestNativeBackend(t *testing.T) {
	n := 1 << 9
	x := randomSignal(n, 6)
	want := DFT(x)
	be, err := native.New(native.Config{CPUWorkers: 4, DeviceLanes: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	tr, _ := New(x)
	if _, err := core.RunAdvancedHybridCtx(context.Background(), be, tr, 0.3, 5); err != nil {
		t.Fatal(err)
	}
	if !closeTo(tr.Result(), want, 1e-9*float64(n)) {
		t.Error("native FFT incorrect")
	}
}
