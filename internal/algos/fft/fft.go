// Package fft implements the Cooley-Tukey fast Fourier transform as a
// breadth-first divide-and-conquer algorithm (T(n) = 2T(n/2) + Θ(n)) for the
// generic hybrid framework. Unlike mergesort, its divide phase does real
// work: each node splits its segment into even- and odd-indexed halves on
// the way down; the combine phase applies the butterfly pass on the way up.
// The per-level cost shape is the same Θ(n^{log_b a}) family as mergesort,
// so the closed-form §5.2.2 model applies directly.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"

	"repro/internal/core"

	"repro/internal/dcerr"
)

// Transform is a breadth-first FFT instance over a power-of-two-length
// complex input. It implements core.GPUAlg. Single-use.
type Transform struct {
	n int
	l int
	// v holds the working data; scratch is shared by divide tasks, which
	// operate on disjoint segments.
	v        []complex128
	scratch  []complex128
	inverse  bool
	finished bool
}

var _ core.GPUAlg = (*Transform)(nil)

// New builds a forward transform over a copy of data; len(data) must be a
// power of two of at least 2.
func New(data []complex128) (*Transform, error) { return newT(data, false) }

// NewInverse builds an inverse transform (up to the 1/n scale, applied in
// Finish).
func NewInverse(data []complex128) (*Transform, error) { return newT(data, true) }

func newT(data []complex128, inverse bool) (*Transform, error) {
	n := len(data)
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: input length %d: %w", n, dcerr.ErrNotPowerOfTwo)
	}
	t := &Transform{
		n: n, l: bits.TrailingZeros(uint(n)),
		v:       append([]complex128(nil), data...),
		scratch: make([]complex128, n),
		inverse: inverse,
	}
	return t, nil
}

// Name implements core.Alg.
func (t *Transform) Name() string { return "fft" }

// Arity implements core.Alg.
func (t *Transform) Arity() int { return 2 }

// Shrink implements core.Alg.
func (t *Transform) Shrink() int { return 2 }

// N implements core.Alg.
func (t *Transform) N() int { return t.n }

// Levels implements core.Alg.
func (t *Transform) Levels() int { return t.l }

// DivideBatch implements core.Alg: node idx of the level partitions its
// segment into even-indexed then odd-indexed elements (the Cooley-Tukey
// decimation in time).
func (t *Transform) DivideBatch(level, lo, hi int) core.Batch {
	if hi <= lo {
		return core.Batch{}
	}
	sz := t.n >> level
	return core.Batch{
		Tasks: hi - lo,
		Cost: core.Cost{
			Ops: float64(sz), MemWords: 4 * float64(sz),
			Coalesced: false, Divergent: false,
			WorkingSet: int64(hi-lo) * int64(sz) * 32,
		},
		Run: func(i int) {
			off := (lo + i) * sz
			half := sz / 2
			seg := t.v[off : off+sz]
			tmp := t.scratch[off : off+sz]
			for j := 0; j < half; j++ {
				tmp[j] = seg[2*j]
				tmp[half+j] = seg[2*j+1]
			}
			copy(seg, tmp)
		},
	}
}

// BaseBatch implements core.Alg: a single sample is its own DFT.
func (t *Transform) BaseBatch(lo, hi int) core.Batch { return core.Batch{} }

// CombineBatch implements core.Alg: node idx applies the butterfly pass that
// merges the DFTs of its two halves.
func (t *Transform) CombineBatch(level, lo, hi int) core.Batch {
	if hi <= lo {
		return core.Batch{}
	}
	sz := t.n >> level
	sign := -2 * math.Pi
	if t.inverse {
		sign = 2 * math.Pi
	}
	return core.Batch{
		Tasks: hi - lo,
		Cost: core.Cost{
			Ops: 6 * float64(sz), MemWords: 4 * float64(sz),
			Coalesced: false, Divergent: false,
			WorkingSet: int64(hi-lo) * int64(sz) * 32,
		},
		Run: func(i int) {
			off := (lo + i) * sz
			half := sz / 2
			seg := t.v[off : off+sz]
			for j := 0; j < half; j++ {
				w := cmplx.Exp(complex(0, sign*float64(j)/float64(sz)))
				e, o := seg[j], w*seg[half+j]
				seg[j] = e + o
				seg[half+j] = e - o
			}
		},
	}
}

// GPUDivideBatch implements core.GPUAlg.
func (t *Transform) GPUDivideBatch(level, lo, hi int) core.Batch {
	return t.DivideBatch(level, lo, hi)
}

// GPUBaseBatch implements core.GPUAlg.
func (t *Transform) GPUBaseBatch(lo, hi int) core.Batch { return core.Batch{} }

// GPUCombineBatch implements core.GPUAlg. The butterfly loop is uniform, so
// the kernel is non-divergent; accesses are strided across work-items.
func (t *Transform) GPUCombineBatch(level, lo, hi int) core.Batch {
	return t.CombineBatch(level, lo, hi)
}

// GPUBytes implements core.GPUAlg: 16 bytes per complex sample each way.
func (t *Transform) GPUBytes(level, lo, hi int) int64 {
	return int64(hi-lo) * int64(t.n>>level) * 16
}

// Finish implements the executors' completion hook: inverse transforms are
// scaled by 1/n.
func (t *Transform) Finish() {
	if t.finished {
		return
	}
	t.finished = true
	if t.inverse {
		s := complex(1/float64(t.n), 0)
		for i := range t.v {
			t.v[i] *= s
		}
	}
}

// Result returns the transformed samples. Valid only after an executor
// completed.
func (t *Transform) Result() []complex128 {
	if !t.finished {
		panic("fft: Result before execution finished")
	}
	return t.v
}

// ModelF returns the model-level per-node divide+combine cost, 9·size ops
// (in the same Θ(n^{log_b a}) family as mergesort, so PolyModel applies).
func (t *Transform) ModelF() func(float64) float64 {
	return func(size float64) float64 { return 9 * size }
}

// ModelLeaf returns the model-level base-case cost.
func (t *Transform) ModelLeaf() float64 { return 0 }

// DFT is the quadratic reference transform used in tests.
func DFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			out[k] += x[j] * cmplx.Exp(complex(0, -2*math.Pi*float64(k*j)/float64(n)))
		}
	}
	return out
}
