package mergesort

import (
	"context"

	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/hpu"
	"repro/internal/workload"
)

func reference(a []int32) []int32 {
	out := append([]int32(nil), a...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equal(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSortReference(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 100, 1023, 4096} {
		in := workload.Uniform(n, int64(n)+1)
		got := append([]int32(nil), in...)
		Sort(got)
		if !equal(got, reference(in)) {
			t.Errorf("Sort(n=%d) incorrect", n)
		}
	}
}

func TestSortBreadthFirst(t *testing.T) {
	for _, n := range []int{2, 4, 64, 1024, 1 << 14} {
		in := workload.Uniform(n, int64(n)+7)
		got := append([]int32(nil), in...)
		SortBreadthFirst(got)
		if !equal(got, reference(in)) {
			t.Errorf("SortBreadthFirst(n=%d) incorrect", n)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("SortBreadthFirst accepted non-power-of-two length")
		}
	}()
	SortBreadthFirst(make([]int32, 3))
}

func TestNewValidation(t *testing.T) {
	for _, n := range []int{0, 1, 3, 6, 1000} {
		if _, err := New(make([]int32, n)); err == nil {
			t.Errorf("New accepted length %d", n)
		}
	}
	if _, err := New(make([]int32, 8)); err != nil {
		t.Errorf("New rejected length 8: %v", err)
	}
}

func TestMergeInterleaved(t *testing.T) {
	// Two runs of 4, interleaved: runs {1,3,5,7} and {2,4,6,8}.
	// Interleaved layout (count=2): [1,2, 3,4, 5,6, 7,8] by j-major order.
	src := []int32{1, 2, 3, 4, 5, 6, 7, 8}
	dst := make([]int32, 8)
	mergeInterleaved(dst, src, 0, 2, 4, 0)
	// Output: 1 run of 8 with count/2 = 1 → contiguous sorted.
	want := []int32{1, 2, 3, 4, 5, 6, 7, 8}
	if !equal(dst, want) {
		t.Errorf("mergeInterleaved = %v, want %v", dst, want)
	}

	// Four runs of 2: {5,9},{1,4},{3,3},{0,8} interleaved with count=4:
	// j=0: 5,1,3,0 ; j=1: 9,4,3,8.
	src = []int32{5, 1, 3, 0, 9, 4, 3, 8}
	dst = make([]int32, 8)
	mergeInterleaved(dst, src, 0, 4, 2, 0) // runs 0,1 → out run 0
	mergeInterleaved(dst, src, 0, 4, 2, 1) // runs 2,3 → out run 1
	// Output layout: 2 runs of 4 interleaved (outCount=2):
	// run0 = {1,4,5,9}, run1 = {0,3,3,8} → [1,0, 4,3, 5,3, 9,8].
	want = []int32{1, 0, 4, 3, 5, 3, 9, 8}
	if !equal(dst, want) {
		t.Errorf("mergeInterleaved 4-run = %v, want %v", dst, want)
	}
}

// runAll exercises one input through every executor and checks the result.
func checkSorted(t *testing.T, name string, s *Sorter, in []int32) {
	t.Helper()
	if !equal(s.Result(), reference(in)) {
		t.Errorf("%s: result not sorted correctly (n=%d)", name, len(in))
	}
}

func TestSequentialExecutor(t *testing.T) {
	in := workload.Uniform(1<<12, 42)
	be := hpu.MustSim(hpu.HPU1())
	s, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.RunSequentialCtx(context.Background(), be, s)
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, "sequential", s, in)
	if rep.Seconds <= 0 {
		t.Errorf("sequential: nonpositive duration %g", rep.Seconds)
	}
}

func TestBreadthFirstCPUExecutor(t *testing.T) {
	in := workload.Uniform(1<<12, 43)
	be := hpu.MustSim(hpu.HPU1())
	s, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.RunBreadthFirstCPUCtx(context.Background(), be, s)
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, "bf-cpu", s, in)
	if rep.Seconds <= 0 {
		t.Errorf("bf-cpu: nonpositive duration %g", rep.Seconds)
	}
}

func TestBasicHybridExecutor(t *testing.T) {
	for _, coalesce := range []bool{false, true} {
		for _, crossover := range []int{0, 5, 10, 12} {
			in := workload.Uniform(1<<12, int64(100+crossover))
			be := hpu.MustSim(hpu.HPU1())
			s, err := New(in)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := core.RunBasicHybridCtx(context.Background(), be, s, crossover, coalesceOpts(coalesce)...)
			if err != nil {
				t.Fatalf("basic(x=%d,coalesce=%v): %v", crossover, coalesce, err)
			}
			checkSorted(t, "basic-hybrid", s, in)
			if rep.Seconds <= 0 {
				t.Errorf("basic: nonpositive duration %g", rep.Seconds)
			}
		}
	}
}

func TestAdvancedHybridExecutor(t *testing.T) {
	cases := []struct {
		alpha float64
		y     int
	}{
		{0.16, 6}, {0.16, 9}, {0.3, 8}, {0.05, 4}, {0.5, 10}, {0.0, 5}, {1.0, 8},
	}
	for _, coalesce := range []bool{false, true} {
		for _, c := range cases {
			in := workload.Uniform(1<<12, int64(1000+c.y))
			be := hpu.MustSim(hpu.HPU1())
			s, err := New(in)
			if err != nil {
				t.Fatal(err)
			}
			prm := advParams{Alpha: c.alpha, Y: c.y, Split: -1}
			rep, err := core.RunAdvancedHybridCtx(context.Background(), be, s, prm.Alpha, prm.Y,
				append(coalesceOpts(coalesce), core.WithSplit(prm.Split))...)
			if err != nil {
				t.Fatalf("advanced(α=%g,y=%d,coalesce=%v): %v", c.alpha, c.y, coalesce, err)
			}
			checkSorted(t, "advanced-hybrid", s, in)
			if rep.Seconds <= 0 {
				t.Errorf("advanced: nonpositive duration %g", rep.Seconds)
			}
		}
	}
}

func TestAdvancedHybridExplicitSplits(t *testing.T) {
	for _, split := range []int{0, 1, 3, 5} {
		in := workload.Uniform(1<<10, int64(split))
		be := hpu.MustSim(hpu.HPU2())
		s, err := New(in)
		if err != nil {
			t.Fatal(err)
		}
		prm := advParams{Alpha: 0.25, Y: 5, Split: split}
		if _, err := core.RunAdvancedHybridCtx(context.Background(), be, s, prm.Alpha, prm.Y, core.WithCoalesce(), core.WithSplit(prm.Split)); err != nil {
			t.Fatalf("split=%d: %v", split, err)
		}
		checkSorted(t, "advanced-split", s, in)
	}
}

func TestAdvancedHybridRejectsBadParams(t *testing.T) {
	in := workload.Uniform(1<<10, 5)
	be := hpu.MustSim(hpu.HPU1())
	s, _ := New(in)
	bad := []advParams{
		{Alpha: -0.1, Y: 5, Split: 0},
		{Alpha: 1.1, Y: 5, Split: 0},
		{Alpha: 0.5, Y: 99, Split: 0},
		{Alpha: 0.5, Y: 3, Split: 4},
	}
	for _, prm := range bad {
		if _, err := core.RunAdvancedHybridCtx(context.Background(), be, s, prm.Alpha, prm.Y, core.WithSplit(prm.Split)); err == nil {
			t.Errorf("accepted bad params %+v", prm)
		}
	}
}

func TestGPUOnlyParallel(t *testing.T) {
	in := workload.Uniform(1<<12, 77)
	be := hpu.MustSim(hpu.HPU1())
	s, err := NewParallel(in)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.RunGPUOnlyCtx(context.Background(), be, s)
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, "gpu-only", s.Sorter, in)
	if rep.GPUPortionSeconds <= 0 || rep.GPUPortionSeconds > rep.Seconds {
		t.Errorf("gpu-only: device time %g outside (0, total=%g]",
			rep.GPUPortionSeconds, rep.Seconds)
	}
}

func TestParallelSorterDuplicatesStable(t *testing.T) {
	// All-equal and few-distinct inputs stress the binary-search ranking:
	// every element must land on a distinct output slot.
	for _, in := range [][]int32{
		workload.FewDistinct(1<<10, 3, 9),
		make([]int32, 1<<10), // all zeros
	} {
		be := hpu.MustSim(hpu.HPU1())
		s, err := NewParallel(in)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.RunGPUOnlyCtx(context.Background(), be, s); err != nil {
			t.Fatal(err)
		}
		checkSorted(t, "gpu-only-dups", s.Sorter, in)
	}
}

func TestHybridSpeedupOverSequential(t *testing.T) {
	// On the simulated HPU1, the advanced hybrid with near-optimal
	// parameters must beat the single-core baseline substantially.
	n := 1 << 16
	in := workload.Uniform(n, 1)

	seqBe := hpu.MustSim(hpu.HPU1())
	seqS, _ := New(in)
	seqRep, err := core.RunSequentialCtx(context.Background(), seqBe, seqS)
	if err != nil {
		t.Fatal(err)
	}

	hyBe := hpu.MustSim(hpu.HPU1())
	hyS, _ := New(in)
	rep, err := core.RunAdvancedHybridCtx(context.Background(), hyBe, hyS, 0.16, 8, core.WithCoalesce())
	if err != nil {
		t.Fatal(err)
	}
	speedup := seqRep.Seconds / rep.Seconds
	if speedup < 2 {
		t.Errorf("advanced hybrid speedup = %.2f, want > 2", speedup)
	}
}

func TestCoalescingHelps(t *testing.T) {
	// The §6.3 transformation should make the device phase cheaper: run
	// the basic hybrid (all-GPU below the crossover) with and without it.
	n := 1 << 16
	in := workload.Uniform(n, 2)

	run := func(coalesce bool) float64 {
		be := hpu.MustSim(hpu.HPU1())
		s, _ := New(in)
		rep, err := core.RunBasicHybridCtx(context.Background(), be, s, 10, coalesceOpts(coalesce)...)
		if err != nil {
			t.Fatal(err)
		}
		checkSorted(t, "coalesce-check", s, in)
		return rep.Seconds
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Errorf("coalescing did not help: with=%g without=%g", with, without)
	}
}

func TestHybridQuick(t *testing.T) {
	// Property: for random inputs, sizes and parameters, the advanced
	// hybrid produces exactly the reference sort.
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(11))}
	f := func(seed int64, sizePow uint8, alphaRaw uint16, yRaw, coalesce uint8) bool {
		logN := 4 + int(sizePow%8) // n in [2^4, 2^11]
		n := 1 << logN
		alpha := float64(alphaRaw) / 65535
		y := int(yRaw) % (logN + 1)
		in := workload.Uniform(n, seed)
		be := hpu.MustSim(hpu.HPU1())
		s, err := New(in)
		if err != nil {
			return false
		}
		prm := advParams{Alpha: alpha, Y: y, Split: -1}
		if _, err := core.RunAdvancedHybridCtx(context.Background(), be, s, prm.Alpha, prm.Y,
			append(coalesceOpts(coalesce%2 == 0), core.WithSplit(prm.Split))...); err != nil {
			return false
		}
		return equal(s.Result(), reference(in))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestResultBeforeRunPanics(t *testing.T) {
	s, _ := New(make([]int32, 8))
	defer func() {
		if recover() == nil {
			t.Error("Result() before execution did not panic")
		}
	}()
	_ = s.Result()
}

// advParams groups advanced-division parameters for test tables. It
// replaces the deprecated core.AdvancedParams in test code.
type advParams struct {
	Alpha float64
	Y     int
	Split int
}

// coalesceOpts returns the coalescing option when on, for table-driven
// tests that toggle it.
func coalesceOpts(on bool) []core.Option {
	if on {
		return []core.Option{core.WithCoalesce()}
	}
	return nil
}
