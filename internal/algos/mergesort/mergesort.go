// Package mergesort implements the paper's §6 case study: mergesort rewritten
// breadth-first (Algorithm 7), with sequential-merge kernels for the hybrid
// executors (Algorithm 8), the §6.3 memory-coalescing layout transformation,
// and the GPU-only parallel binary-search merge baseline of Fig 9.
//
// Cost convention (shared with internal/hpu's calibration): merging into a
// run of s elements costs Ops = s scalar operations and MemWords = 2s words
// (read s, write s). With the platforms' MemWeight of 0.5 this is 2s
// op-equivalents per merge task, so the model-level cost function is
// f(size) = 2·size with zero leaf cost.
package mergesort

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/core"
	"repro/internal/mempool"

	"repro/internal/dcerr"
)

// Sorter is a breadth-first mergesort instance over a power-of-two input.
// It implements core.GPUAlg and core.Transformable. A Sorter is single-use:
// run it through exactly one executor, then read Result.
type Sorter struct {
	n int
	l int // log2 n
	// buf holds the ping-pong merge buffers. The combine at level lvl
	// (producing runs of size n>>lvl) is pass number l-lvl and reads from
	// buf[(l-lvl-1)%2], writing to buf[(l-lvl)%2]. The input starts in
	// buf[0].
	buf [2][]int32
	// inter tracks the §6.3 interleaved device layout, one entry per
	// active region (several devices may hold disjoint regions at once):
	// a region [base, base+count·runSize) of the current parity buffer
	// stores element j of run i at offset base + j·count + i.
	inter    []interRegion
	interMu  sync.Mutex
	finished bool
}

type interRegion struct {
	base    int // element offset of the region
	count   int // number of runs currently in the region
	runSize int // size of each run
}

var (
	_ core.GPUAlg        = (*Sorter)(nil)
	_ core.Transformable = (*Sorter)(nil)
)

// New builds a Sorter over a copy of data. len(data) must be a power of two
// of at least 2.
func New(data []int32) (*Sorter, error) {
	n := len(data)
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("mergesort: input length %d: %w", n, dcerr.ErrNotPowerOfTwo)
	}
	s := &Sorter{n: n, l: bits.TrailingZeros(uint(n))}
	// Both parity buffers are pool leases. buf[1] starts with unspecified
	// contents, which is safe: every merge pass fully writes its
	// destination buffer across [0, n) before the next pass reads it, so
	// no stale element ever reaches the output. Release returns the
	// leases.
	s.buf[0] = mempool.Int32s.Get(n)
	s.buf[1] = mempool.Int32s.Get(n)
	copy(s.buf[0], data)
	return s, nil
}

// Release implements core.Releaser: it returns the parity buffers to the
// pool. Idempotent; must not be called while the slice from Result is still
// in use.
func (s *Sorter) Release() {
	for i := range s.buf {
		if s.buf[i] != nil {
			mempool.Int32s.Put(s.buf[i])
			s.buf[i] = nil
		}
	}
}

// Name implements core.Alg.
func (s *Sorter) Name() string { return "mergesort" }

// Arity implements core.Alg: a = 2.
func (s *Sorter) Arity() int { return 2 }

// Shrink implements core.Alg: b = 2.
func (s *Sorter) Shrink() int { return 2 }

// N implements core.Alg.
func (s *Sorter) N() int { return s.n }

// Levels implements core.Alg: log2 n internal levels.
func (s *Sorter) Levels() int { return s.l }

// src and dst return the parity buffers for the combine at a level.
func (s *Sorter) src(level int) []int32 { return s.buf[(s.l-level-1)%2] }
func (s *Sorter) dst(level int) []int32 { return s.buf[(s.l-level)%2] }

// runSize returns the output run size of the combine at a level.
func (s *Sorter) runSize(level int) int { return s.n >> level }

// DivideBatch implements core.Alg. Mergesort's division is positional: no
// data moves, so the batch is empty.
func (s *Sorter) DivideBatch(level, lo, hi int) core.Batch { return core.Batch{} }

// BaseBatch implements core.Alg. Single elements are already sorted.
func (s *Sorter) BaseBatch(lo, hi int) core.Batch { return core.Batch{} }

// mergeCost is the per-task cost of a sequential merge producing sz
// elements, with the given batch width for the working-set term.
func mergeCost(sz, tasks int, coalesced bool) core.Cost {
	return core.Cost{
		Ops:        float64(sz),
		MemWords:   2 * float64(sz),
		Coalesced:  coalesced,
		Divergent:  true,
		WorkingSet: int64(tasks) * int64(sz) * 8, // src + dst, 4 B each
	}
}

// CombineBatch implements core.Alg: task idx merges the two sorted halves of
// subproblem idx at the level (contiguous layout).
func (s *Sorter) CombineBatch(level, lo, hi int) core.Batch {
	if hi <= lo {
		return core.Batch{}
	}
	sz := s.runSize(level)
	src, dst := s.src(level), s.dst(level)
	return core.Batch{
		Tasks: hi - lo,
		Cost:  mergeCost(sz, hi-lo, false),
		Run: func(i int) {
			off := (lo + i) * sz
			mergeRuns(dst[off:off+sz], src[off:off+sz/2], src[off+sz/2:off+sz])
		},
	}
}

// GPUDivideBatch implements core.GPUAlg.
func (s *Sorter) GPUDivideBatch(level, lo, hi int) core.Batch { return core.Batch{} }

// GPUBaseBatch implements core.GPUAlg.
func (s *Sorter) GPUBaseBatch(lo, hi int) core.Batch { return core.Batch{} }

// GPUBytes implements core.GPUAlg: 4 bytes per element in the range.
func (s *Sorter) GPUBytes(level, lo, hi int) int64 {
	return int64(hi-lo) * int64(s.runSize(level)) * 4
}

// GPUCombineBatch implements core.GPUAlg: one sequential merge per
// work-item (the divergent kernel of §6.1/6.2). If the region has been put
// into the interleaved device layout by PermuteForGPU, the merge reads and
// writes interleaved and is coalesced; otherwise adjacent work-items touch
// addresses a run apart and the access is strided.
//
// The executors construct GPU batches immediately before submitting them
// (state such as the interleave run count must be current), and submission
// executes the functional work eagerly; GPUCombineBatch therefore advances
// the interleave state itself.
func (s *Sorter) GPUCombineBatch(level, lo, hi int) core.Batch {
	if hi <= lo {
		return core.Batch{}
	}
	sz := s.runSize(level)
	src, dst := s.src(level), s.dst(level)
	reg := s.lookupRegion(lo * sz)
	if reg == nil {
		return s.CombineBatch(level, lo, hi)
	}
	// Interleaved merge: the region holds count runs of size sz/2 in src;
	// the batch merges them pairwise into count/2 runs of size sz in dst,
	// preserving the interleaved layout.
	if reg.runSize != sz/2 {
		panic(fmt.Sprintf("mergesort: interleaved run size %d does not match level %d (want %d)",
			reg.runSize, level, sz/2))
	}
	if reg.count != 2*(hi-lo) {
		panic(fmt.Sprintf("mergesort: interleaved run count %d does not match range [%d,%d)",
			reg.count, lo, hi))
	}
	base, count := reg.base, reg.count
	reg.count = count / 2
	reg.runSize = sz
	return core.Batch{
		Tasks: hi - lo,
		Cost:  mergeCost(sz, hi-lo, true),
		Run: func(t int) {
			mergeInterleaved(dst, src, base, count, sz/2, t)
		},
	}
}

// lookupRegion returns the active interleaved region starting at the given
// element offset, or nil. Device chains of a multi-GPU run construct batches
// from different goroutines on the native backend, hence the lock.
func (s *Sorter) lookupRegion(base int) *interRegion {
	s.interMu.Lock()
	defer s.interMu.Unlock()
	for i := range s.inter {
		if s.inter[i].base == base {
			return &s.inter[i]
		}
	}
	return nil
}

// addRegion registers a new interleaved region; overlap with an existing
// one indicates an executor bug.
func (s *Sorter) addRegion(r interRegion) {
	s.interMu.Lock()
	defer s.interMu.Unlock()
	end := r.base + r.count*r.runSize
	for _, x := range s.inter {
		xEnd := x.base + x.count*x.runSize
		if r.base < xEnd && x.base < end {
			panic(fmt.Sprintf("mergesort: interleaved regions overlap: %+v vs %+v", r, x))
		}
	}
	s.inter = append(s.inter, r)
}

// removeRegion deletes the region starting at base.
func (s *Sorter) removeRegion(base int) interRegion {
	s.interMu.Lock()
	defer s.interMu.Unlock()
	for i := range s.inter {
		if s.inter[i].base == base {
			r := s.inter[i]
			s.inter = append(s.inter[:i], s.inter[i+1:]...)
			return r
		}
	}
	panic(fmt.Sprintf("mergesort: no interleaved region at base %d", base))
}

// Finish implements the executors' optional completion hook: it leaves the
// fully sorted data in buf[0].
func (s *Sorter) Finish() {
	if s.finished {
		return
	}
	s.finished = true
	// The final combine (level 0) wrote to buf[l%2].
	if s.l%2 == 1 {
		copy(s.buf[0], s.buf[1])
	}
}

// Result returns the sorted data. Valid only after an executor has run the
// Sorter to completion.
func (s *Sorter) Result() []int32 {
	if !s.finished {
		panic("mergesort: Result before execution finished")
	}
	return s.buf[0]
}

// ModelF returns the model-level combine cost function f(size) = 2·size, in
// the normalized op units shared with the platform calibration.
func (s *Sorter) ModelF() func(float64) float64 {
	return func(size float64) float64 { return 2 * size }
}

// ModelLeaf returns the model-level base-case cost (none for mergesort).
func (s *Sorter) ModelLeaf() float64 { return 0 }

// mergeRuns merges the sorted runs a and b into out. len(out) must be
// len(a)+len(b).
func mergeRuns(out, a, b []int32) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out[k] = a[i]
			i++
		} else {
			out[k] = b[j]
			j++
		}
		k++
	}
	for i < len(a) {
		out[k] = a[i]
		i++
		k++
	}
	for j < len(b) {
		out[k] = b[j]
		j++
		k++
	}
}

// mergeInterleaved merges runs 2t and 2t+1 of an interleaved region (count
// runs of runSize elements at base) into run t of the output layout (count/2
// runs of 2·runSize elements at the same base).
func mergeInterleaved(dst, src []int32, base, count, runSize, t int) {
	at := func(run, j int) int32 { return src[base+j*count+run] }
	outCount := count / 2
	i, j := 0, 0
	for k := 0; k < 2*runSize; k++ {
		var v int32
		switch {
		case i == runSize:
			v = at(2*t+1, j)
			j++
		case j == runSize:
			v = at(2*t, i)
			i++
		case at(2*t, i) <= at(2*t+1, j):
			v = at(2*t, i)
			i++
		default:
			v = at(2*t+1, j)
			j++
		}
		dst[base+k*outCount+t] = v
	}
}
