package mergesort

import (
	"math/bits"
	"sort"

	"repro/internal/core"
)

// ParallelSorter is the GPU-only baseline of Fig 9: merging two runs is
// itself parallelized by assigning one work-item per element, which finds
// its output position with a binary search in the sibling run. The kernel
// is uniform (every work-item at a level executes the same number of search
// steps), so it benefits from the device's full saturated throughput —
// unlike the divergent one-merge-per-thread kernel of the hybrid strategy.
//
// ParallelSorter intentionally does not use the §6.3 interleaved layout: its
// accesses are data-dependent (gather), which the cost model captures with
// Coalesced=false.
type ParallelSorter struct {
	*Sorter
}

var _ core.GPUAlg = (*ParallelSorter)(nil)

// NewParallel builds a parallel-merge GPU sorter over a copy of data.
func NewParallel(data []int32) (*ParallelSorter, error) {
	s, err := New(data)
	if err != nil {
		return nil, err
	}
	return &ParallelSorter{Sorter: s}, nil
}

// Name implements core.Alg.
func (s *ParallelSorter) Name() string { return "mergesort-parallel-gpu" }

// GPUCombineBatch implements core.GPUAlg with one work-item per element of
// the range: element e of output run t determines its rank in the merged
// run by binary search.
func (s *ParallelSorter) GPUCombineBatch(level, lo, hi int) core.Batch {
	if hi <= lo {
		return core.Batch{}
	}
	sz := s.runSize(level)
	half := sz / 2
	src, dst := s.src(level), s.dst(level)
	searchSteps := float64(bits.Len(uint(half)) + 1)
	return core.Batch{
		Tasks: (hi - lo) * sz,
		Cost: core.Cost{
			Ops:        searchSteps + 2,
			MemWords:   searchSteps + 2,
			Coalesced:  false, // gather pattern
			Divergent:  false, // uniform loop bound per level
			WorkingSet: int64(hi-lo) * int64(sz) * 8,
		},
		Run: func(i int) {
			e := lo*sz + i
			off := (e / sz) * sz // start of this element's output run
			q := e - off         // position within the pair of input runs
			a := src[off : off+half]
			b := src[off+half : off+sz]
			var rank int
			var v int32
			if q < half {
				// Element from run a: equal keys from a come first.
				v = a[q]
				rank = q + sort.Search(len(b), func(j int) bool { return b[j] >= v })
			} else {
				v = b[q-half]
				rank = q - half + sort.Search(len(a), func(j int) bool { return a[j] > v })
			}
			dst[off+rank] = v
		},
	}
}

// PermuteForGPU overrides the embedded Sorter's transformation: the parallel
// kernel keeps the contiguous layout.
func (s *ParallelSorter) PermuteForGPU(level, lo, hi int) core.Batch { return core.Batch{} }

// PermuteBack overrides the embedded Sorter's transformation.
func (s *ParallelSorter) PermuteBack(level, lo, hi int) core.Batch { return core.Batch{} }
