package mergesort

import (
	"context"

	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/core"
	"repro/internal/hpu"
)

// decodeInt32s turns fuzz bytes into a slice of int32 values.
func decodeInt32s(data []byte) []int32 {
	var out []int32
	r := bytes.NewReader(data)
	for {
		var v int32
		if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
			return out
		}
		out = append(out, v)
	}
}

// FuzzMergeRuns checks that merging two individually-sorted halves always
// yields the reference sort of their concatenation.
func FuzzMergeRuns(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0, 4, 0, 0, 0}, uint8(2))
	f.Add([]byte{255, 255, 255, 255, 0, 0, 0, 0}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, splitRaw uint8) {
		vals := decodeInt32s(data)
		if len(vals) < 2 {
			t.Skip()
		}
		split := 1 + int(splitRaw)%(len(vals)-1)
		a := append([]int32(nil), vals[:split]...)
		b := append([]int32(nil), vals[split:]...)
		Sort(a)
		Sort(b)
		out := make([]int32, len(vals))
		mergeRuns(out, a, b)
		if !equal(out, reference(vals)) {
			t.Fatalf("mergeRuns(%v, %v) = %v", a, b, out)
		}
	})
}

// FuzzAnySorter runs arbitrary byte-derived inputs and hybrid parameters
// through the full advanced executor on the simulated platform.
func FuzzAnySorter(f *testing.F) {
	f.Add([]byte{9, 0, 0, 0, 1, 0, 0, 0, 5, 0, 0, 0}, uint16(20000), uint8(4))
	f.Fuzz(func(t *testing.T, data []byte, alphaRaw uint16, yRaw uint8) {
		in := decodeInt32s(data)
		if len(in) < 2 {
			t.Skip()
		}
		if len(in) > 1<<12 {
			in = in[:1<<12]
		}
		s, err := NewAny(in)
		if err != nil {
			t.Fatal(err)
		}
		prm := advParams{
			Alpha: float64(alphaRaw) / 65535,
			Y:     int(yRaw) % (s.Levels() + 1),
			Split: -1,
		}
		be := hpu.MustSim(hpu.HPU1())
		if _, err := core.RunAdvancedHybridCtx(context.Background(), be, s, prm.Alpha, prm.Y, core.WithSplit(prm.Split)); err != nil {
			t.Fatal(err)
		}
		if !equal(s.Result(), reference(in)) {
			t.Fatalf("unsorted output for n=%d prm=%+v", len(in), prm)
		}
	})
}

// FuzzSorterPow2 exercises the power-of-two Sorter with the coalescing
// transformation enabled under arbitrary data.
func FuzzSorterPow2(f *testing.F) {
	f.Add([]byte{3, 0, 0, 0, 1, 0, 0, 0, 7, 0, 0, 0, 2, 0, 0, 0}, uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, yRaw uint8) {
		vals := decodeInt32s(data)
		n := 4
		for n*2 <= len(vals) && n < 1<<10 {
			n *= 2
		}
		if len(vals) < n {
			t.Skip()
		}
		in := vals[:n]
		s, err := New(in)
		if err != nil {
			t.Fatal(err)
		}
		prm := advParams{
			Alpha: 0.3,
			Y:     int(yRaw) % (s.Levels() + 1),
			Split: -1,
		}
		be := hpu.MustSim(hpu.HPU2())
		if _, err := core.RunAdvancedHybridCtx(context.Background(), be, s, prm.Alpha, prm.Y, core.WithCoalesce(), core.WithSplit(prm.Split)); err != nil {
			t.Fatal(err)
		}
		if !equal(s.Result(), reference(in)) {
			t.Fatalf("unsorted output for n=%d y=%d", n, prm.Y)
		}
	})
}
