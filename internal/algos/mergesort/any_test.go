package mergesort

import (
	"context"

	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/hpu"
	"repro/internal/native"
	"repro/internal/workload"
)

func TestNewAnyValidation(t *testing.T) {
	for _, n := range []int{0, 1} {
		if _, err := NewAny(make([]int32, n)); err == nil {
			t.Errorf("NewAny accepted length %d", n)
		}
	}
	if _, err := NewAny(make([]int32, 3)); err != nil {
		t.Errorf("NewAny rejected length 3: %v", err)
	}
}

func TestAnySorterOddSizes(t *testing.T) {
	for _, n := range []int{2, 3, 5, 7, 100, 1000, 12345, 65537} {
		in := workload.Uniform(n, int64(n))
		be := hpu.MustSim(hpu.HPU1())
		s, err := NewAny(in)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.RunBreadthFirstCPUCtx(context.Background(), be, s); err != nil {
			t.Fatal(err)
		}
		if !equal(s.Result(), reference(in)) {
			t.Errorf("n=%d: breadth-first result unsorted", n)
		}
	}
}

func TestAnySorterAllExecutors(t *testing.T) {
	n := 50_000 // not a power of two
	in := workload.Uniform(n, 3)
	want := reference(in)

	t.Run("sequential", func(t *testing.T) {
		s, _ := NewAny(in)
		if _, err := core.RunSequentialCtx(context.Background(), hpu.MustSim(hpu.HPU1()), s); err != nil {
			t.Fatal(err)
		}
		if !equal(s.Result(), want) {
			t.Error("unsorted")
		}
	})
	t.Run("basic-hybrid", func(t *testing.T) {
		s, _ := NewAny(in)
		if _, err := core.RunBasicHybridCtx(context.Background(), hpu.MustSim(hpu.HPU1()), s, 8, core.WithCoalesce()); err != nil {
			t.Fatal(err)
		}
		if !equal(s.Result(), want) {
			t.Error("unsorted")
		}
	})
	t.Run("advanced-hybrid", func(t *testing.T) {
		for _, prm := range []advParams{
			{Alpha: 0.17, Y: 9, Split: -1},
			{Alpha: 0.4, Y: 6, Split: 3},
		} {
			s, _ := NewAny(in)
			if _, err := core.RunAdvancedHybridCtx(context.Background(), hpu.MustSim(hpu.HPU2()), s, prm.Alpha, prm.Y, core.WithSplit(prm.Split)); err != nil {
				t.Fatal(err)
			}
			if !equal(s.Result(), want) {
				t.Errorf("%+v: unsorted", prm)
			}
		}
	})
	t.Run("native", func(t *testing.T) {
		be, err := native.New(native.Config{CPUWorkers: 4, DeviceLanes: 16})
		if err != nil {
			t.Fatal(err)
		}
		defer be.Close()
		s, _ := NewAny(in)
		if _, err := core.RunAdvancedHybridCtx(context.Background(), be, s, 0.25, 7); err != nil {
			t.Fatal(err)
		}
		if !equal(s.Result(), want) {
			t.Error("unsorted")
		}
	})
}

func TestAnySorterEdgeShapes(t *testing.T) {
	// Already sorted, reversed, all-equal, few distinct.
	inputs := [][]int32{
		workload.Sorted(777),
		workload.Reverse(1023),
		make([]int32, 513),
		workload.FewDistinct(999, 2, 1),
	}
	for i, in := range inputs {
		s, err := NewAny(in)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.RunBreadthFirstCPUCtx(context.Background(), hpu.MustSim(hpu.HPU1()), s); err != nil {
			t.Fatal(err)
		}
		if !equal(s.Result(), reference(in)) {
			t.Errorf("input %d: unsorted", i)
		}
	}
}

func TestAnySorterQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(12))}
	f := func(seed int64, nRaw uint16, alphaRaw uint16, yRaw uint8) bool {
		n := 2 + int(nRaw%3000)
		in := workload.Uniform(n, seed)
		s, err := NewAny(in)
		if err != nil {
			return false
		}
		levels := s.Levels()
		prm := advParams{
			Alpha: float64(alphaRaw) / 65535,
			Y:     int(yRaw) % (levels + 1),
			Split: -1,
		}
		if _, err := core.RunAdvancedHybridCtx(context.Background(), hpu.MustSim(hpu.HPU1()), s, prm.Alpha, prm.Y, core.WithSplit(prm.Split)); err != nil {
			return false
		}
		return equal(s.Result(), reference(in))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestAnySorterMatchesPow2Sorter(t *testing.T) {
	// On a power-of-two input both implementations must agree.
	in := workload.Uniform(1<<12, 9)
	a, _ := NewAny(in)
	if _, err := core.RunBreadthFirstCPUCtx(context.Background(), hpu.MustSim(hpu.HPU1()), a); err != nil {
		t.Fatal(err)
	}
	b, _ := New(in)
	if _, err := core.RunBreadthFirstCPUCtx(context.Background(), hpu.MustSim(hpu.HPU1()), b); err != nil {
		t.Fatal(err)
	}
	if !equal(a.Result(), b.Result()) {
		t.Error("AnySorter and Sorter disagree on a power-of-two input")
	}
}
