package mergesort

import (
	"fmt"

	"repro/internal/core"
)

// PermuteForGPU implements core.Transformable (§6.3): it switches the region
// holding subproblems [lo, hi) of the given level into the interleaved
// device layout, in which the j-th elements of all runs are contiguous so
// that work-items merging adjacent runs issue coalesced accesses.
//
// The hybrid executors invoke this at the leaf level, where runs have size 1
// and the interleaved layout coincides with the contiguous one — the switch
// is then free, and coalescing is maintained structurally by the interleaved
// merges as runs grow. (Called at a coarser level, the permutation really
// moves data and is costed accordingly.)
func (s *Sorter) PermuteForGPU(level, lo, hi int) core.Batch {
	if hi <= lo {
		return core.Batch{}
	}
	rsz := s.runSize(level)
	s.addRegion(interRegion{base: lo * rsz, count: hi - lo, runSize: rsz})
	if rsz == 1 {
		return core.Batch{} // identity layout change
	}
	// General case: physically interleave `count` contiguous runs. The
	// data currently lives in the buffer the next combine will read, i.e.
	// src(level-1).
	cur := s.src(level - 1)
	return s.permutationBatch(cur, lo*rsz, hi-lo, rsz, true)
}

// PermuteBack implements core.Transformable: it restores the contiguous
// layout of subproblems [lo, hi) at the given level (the transfer level y)
// before results return to the CPU.
func (s *Sorter) PermuteBack(level, lo, hi int) core.Batch {
	rsz := s.runSize(level)
	reg := s.removeRegion(lo * rsz)
	if reg.count != hi-lo || reg.runSize != rsz {
		panic(fmt.Sprintf("mergesort: PermuteBack(%d,[%d,%d)) does not match interleaved state (count=%d runSize=%d)",
			level, lo, hi, reg.count, reg.runSize))
	}
	if reg.count == 1 || rsz == 1 {
		return core.Batch{} // interleaving a single run (or unit runs) is the identity
	}
	// The last combine at `level` wrote to dst(level); de-interleave there.
	cur := s.dst(level)
	return s.permutationBatch(cur, lo*rsz, hi-lo, rsz, false)
}

// permutationBatch builds the batch that (de)interleaves count runs of
// runSize elements at element offset base within cur, using the idle parity
// buffer as scratch. The whole data movement happens in task 0 (two passes
// over the region); Tasks still reflects the element count so the device
// cost model charges one uniform work-item per element.
func (s *Sorter) permutationBatch(cur []int32, base, count, runSize int, toInterleaved bool) core.Batch {
	m := count * runSize
	scratch := s.buf[0]
	if &scratch[0] == &cur[0] {
		scratch = s.buf[1]
	}
	return core.Batch{
		Tasks: m,
		Cost: core.Cost{
			Ops:        1,
			MemWords:   4, // read+write into scratch, read+write back
			Coalesced:  true,
			Divergent:  false,
			WorkingSet: int64(m) * 8,
		},
		Run: func(i int) {
			if i != 0 {
				return
			}
			for run := 0; run < count; run++ {
				for j := 0; j < runSize; j++ {
					contiguous := base + run*runSize + j
					interleaved := base + j*count + run
					if toInterleaved {
						scratch[interleaved] = cur[contiguous]
					} else {
						scratch[contiguous] = cur[interleaved]
					}
				}
			}
			copy(cur[base:base+m], scratch[base:base+m])
		},
	}
}
