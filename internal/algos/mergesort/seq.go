package mergesort

// Sort is the classic recursive mergesort of the paper's Algorithm 6, used
// as the functional reference implementation in tests and as the native
// backend's sequential baseline. It sorts a in place and accepts any length.
func Sort(a []int32) {
	if len(a) < 2 {
		return
	}
	aux := make([]int32, len(a))
	sortRec(a, aux)
}

func sortRec(a, aux []int32) {
	if len(a) < 2 {
		return
	}
	mid := len(a) / 2
	sortRec(a[:mid], aux[:mid])
	sortRec(a[mid:], aux[mid:])
	mergeRuns(aux[:len(a)], a[:mid], a[mid:])
	copy(a, aux[:len(a)])
}

// SortBreadthFirst is the paper's Algorithm 7: the breadth-first rewrite of
// mergesort, executed sequentially. It sorts a in place; len(a) must be a
// power of two (the restriction the paper adopts in §4.1's footnote).
func SortBreadthFirst(a []int32) {
	n := len(a)
	if n < 2 {
		return
	}
	if n&(n-1) != 0 {
		panic("mergesort: SortBreadthFirst requires a power-of-two length")
	}
	src := a
	dst := make([]int32, n)
	for size := 2; size <= n; size *= 2 {
		for off := 0; off < n; off += size {
			mergeRuns(dst[off:off+size], src[off:off+size/2], src[off+size/2:off+size])
		}
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		copy(a, src)
	}
}
