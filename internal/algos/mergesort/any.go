package mergesort

import (
	"fmt"
	"math/bits"

	"repro/internal/core"
	"repro/internal/mempool"

	"repro/internal/dcerr"
)

// AnySorter is the footnote-4 generalization of Sorter to arbitrary input
// lengths: the recursion tree is the one of the next power of two, but runs
// are clamped to the real data, so the trailing subproblems are short or
// empty (an empty right half degenerates the merge into a copy between the
// parity buffers). It implements core.GPUAlg; the §6.3 interleaved layout is
// not supported for ragged runs, so AnySorter is not Transformable and the
// Coalesce option is a no-op.
type AnySorter struct {
	n        int // actual input length
	l        int // ceil(log2 n)
	buf      [2][]int32
	finished bool
}

var _ core.GPUAlg = (*AnySorter)(nil)

// NewAny builds an AnySorter over a copy of data; any length >= 2 works.
func NewAny(data []int32) (*AnySorter, error) {
	n := len(data)
	if n < 2 {
		return nil, fmt.Errorf("mergesort: input length %d too short: %w", n, dcerr.ErrBadShape)
	}
	l := bits.Len(uint(n - 1)) // ceil(log2 n)
	s := &AnySorter{n: n, l: l}
	// Pool leases, like Sorter: every pass fully writes its destination
	// parity buffer over [0, n) (ragged trailing runs degenerate to
	// copies), so buf[1]'s unspecified initial contents never surface.
	s.buf[0] = mempool.Int32s.Get(n)
	s.buf[1] = mempool.Int32s.Get(n)
	copy(s.buf[0], data)
	return s, nil
}

// Release implements core.Releaser: it returns the parity buffers to the
// pool. Idempotent; must not be called while the slice from Result is still
// in use.
func (s *AnySorter) Release() {
	for i := range s.buf {
		if s.buf[i] != nil {
			mempool.Int32s.Put(s.buf[i])
			s.buf[i] = nil
		}
	}
}

// Name implements core.Alg.
func (s *AnySorter) Name() string { return "mergesort-any" }

// Arity implements core.Alg.
func (s *AnySorter) Arity() int { return 2 }

// Shrink implements core.Alg.
func (s *AnySorter) Shrink() int { return 2 }

// N implements core.Alg: the actual input length.
func (s *AnySorter) N() int { return s.n }

// Levels implements core.Alg: the padded tree depth ⌈log2 n⌉.
func (s *AnySorter) Levels() int { return s.l }

func (s *AnySorter) src(level int) []int32 { return s.buf[(s.l-level-1)%2] }
func (s *AnySorter) dst(level int) []int32 { return s.buf[(s.l-level)%2] }

// DivideBatch implements core.Alg.
func (s *AnySorter) DivideBatch(level, lo, hi int) core.Batch { return core.Batch{} }

// BaseBatch implements core.Alg.
func (s *AnySorter) BaseBatch(lo, hi int) core.Batch { return core.Batch{} }

// clamp returns the data boundaries of virtual subproblem idx at a level:
// its start, midpoint and end within [0, n].
func (s *AnySorter) clamp(level, idx int) (off, mid, end int) {
	sz := 1 << (s.l - level) // virtual run size
	off = idx * sz
	if off > s.n {
		off = s.n
	}
	mid = off + sz/2
	if mid > s.n {
		mid = s.n
	}
	end = off + sz
	if end > s.n {
		end = s.n
	}
	return off, mid, end
}

// CombineBatch implements core.Alg: virtual task idx merges its clamped
// halves; a task past the data end is a no-op, and an empty right half
// degenerates to a copy (the parity buffers still have to swap).
func (s *AnySorter) CombineBatch(level, lo, hi int) core.Batch {
	if hi <= lo {
		return core.Batch{}
	}
	// Per-task cost uses the average real elements per virtual task so the
	// level's total cost stays exact.
	tasks := hi - lo
	virtual := 1 << level
	avg := float64(s.n) / float64(virtual)
	src, dst := s.src(level), s.dst(level)
	return core.Batch{
		Tasks: tasks,
		Cost: core.Cost{
			Ops:        avg,
			MemWords:   2 * avg,
			Coalesced:  false,
			Divergent:  true,
			WorkingSet: int64(float64(tasks) * avg * 8),
		},
		// Ragged tasks near the data end are cheaper (or free); the exact
		// per-task cost lets the simulated GPU price SIMD divergence.
		CostOps: func(i int) float64 {
			off, _, end := s.clamp(level, lo+i)
			return float64(end - off)
		},
		Run: func(i int) {
			off, mid, end := s.clamp(level, lo+i)
			if off >= end {
				return
			}
			mergeRuns(dst[off:end], src[off:mid], src[mid:end])
		},
	}
}

// GPUDivideBatch implements core.GPUAlg.
func (s *AnySorter) GPUDivideBatch(level, lo, hi int) core.Batch { return core.Batch{} }

// GPUBaseBatch implements core.GPUAlg.
func (s *AnySorter) GPUBaseBatch(lo, hi int) core.Batch { return core.Batch{} }

// GPUCombineBatch implements core.GPUAlg: the same clamped merges as device
// work-items (strided, divergent — ragged runs diverge even more than
// uniform ones, which the Divergent flag already prices at γ per lane).
func (s *AnySorter) GPUCombineBatch(level, lo, hi int) core.Batch {
	return s.CombineBatch(level, lo, hi)
}

// GPUBytes implements core.GPUAlg: only real data crosses the link.
func (s *AnySorter) GPUBytes(level, lo, hi int) int64 {
	loOff, _, _ := s.clamp(level, lo)
	hiOff, _, _ := s.clamp(level, hi)
	return int64(hiOff-loOff) * 4
}

// Finish implements the executors' completion hook.
func (s *AnySorter) Finish() {
	if s.finished {
		return
	}
	s.finished = true
	if s.l%2 == 1 {
		copy(s.buf[0], s.buf[1])
	}
}

// Result returns the sorted data.
func (s *AnySorter) Result() []int32 {
	if !s.finished {
		panic("mergesort: Result before execution finished")
	}
	return s.buf[0]
}

// ModelF returns the model-level combine cost function.
func (s *AnySorter) ModelF() func(float64) float64 {
	return func(size float64) float64 { return 2 * size }
}

// ModelLeaf returns the model-level base-case cost.
func (s *AnySorter) ModelLeaf() float64 { return 0 }
