// Package maxsubarray solves the maximum (non-empty) subarray sum problem
// with the classic divide-and-conquer recurrence T(n) = 2T(n/2) + Θ(1),
// rewritten breadth-first for the generic hybrid framework. Each recursion
// node carries the (total, best prefix, best suffix, best) quadruple, so a
// combine is a constant-size fold — an algorithm whose per-task work is
// uniform, making its level batches a natural fit for the GPU.
package maxsubarray

import (
	"fmt"
	"math/bits"

	"repro/internal/core"

	"repro/internal/dcerr"
)

// node summarizes one subproblem.
type node struct {
	total  int64 // sum of the whole range
	prefix int64 // best sum of a non-empty prefix
	suffix int64 // best sum of a non-empty suffix
	best   int64 // best sum of any non-empty subarray
}

// combine folds two adjacent children into their parent.
func combine(l, r node) node {
	return node{
		total:  l.total + r.total,
		prefix: max64(l.prefix, l.total+r.prefix),
		suffix: max64(r.suffix, r.total+l.suffix),
		best:   max64(max64(l.best, r.best), l.suffix+r.prefix),
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Solver is a breadth-first maximum-subarray instance over a power-of-two
// input. It implements core.GPUAlg. Nodes are stored in place at positions
// idx·(n>>level), so combines never conflict. Single-use.
type Solver struct {
	n        int
	l        int
	data     []int32
	nodes    []node
	finished bool
}

var _ core.GPUAlg = (*Solver)(nil)

// New builds a Solver over a copy of data; len(data) must be a power of two
// of at least 2.
func New(data []int32) (*Solver, error) {
	n := len(data)
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("maxsubarray: input length %d: %w", n, dcerr.ErrNotPowerOfTwo)
	}
	return &Solver{
		n:     n,
		l:     bits.TrailingZeros(uint(n)),
		data:  append([]int32(nil), data...),
		nodes: make([]node, n),
	}, nil
}

// Name implements core.Alg.
func (s *Solver) Name() string { return "maxsubarray" }

// Arity implements core.Alg.
func (s *Solver) Arity() int { return 2 }

// Shrink implements core.Alg.
func (s *Solver) Shrink() int { return 2 }

// N implements core.Alg.
func (s *Solver) N() int { return s.n }

// Levels implements core.Alg.
func (s *Solver) Levels() int { return s.l }

// DivideBatch implements core.Alg: division is positional.
func (s *Solver) DivideBatch(level, lo, hi int) core.Batch { return core.Batch{} }

// baseCost is the per-leaf initialization cost.
func baseCost(tasks int, coalesced bool) core.Cost {
	return core.Cost{
		Ops:        4,
		MemWords:   5,
		Coalesced:  coalesced,
		Divergent:  false,
		WorkingSet: int64(tasks) * 36, // one int32 read, one node written
	}
}

// BaseBatch implements core.Alg: leaf i becomes the quadruple of element i.
func (s *Solver) BaseBatch(lo, hi int) core.Batch {
	if hi <= lo {
		return core.Batch{}
	}
	return core.Batch{
		Tasks: hi - lo,
		Cost:  baseCost(hi-lo, true),
		Run: func(i int) {
			v := int64(s.data[lo+i])
			s.nodes[lo+i] = node{total: v, prefix: v, suffix: v, best: v}
		},
	}
}

// combineCost is the per-task fold cost.
func combineCost(tasks, sz int, coalesced bool) core.Cost {
	return core.Cost{
		Ops:        10,
		MemWords:   12,
		Coalesced:  coalesced,
		Divergent:  false,
		WorkingSet: int64(tasks) * int64(sz) * 32 / 2,
	}
}

// CombineBatch implements core.Alg: task idx folds its two children, stored
// at idx·sz and idx·sz + sz/2, into idx·sz.
func (s *Solver) CombineBatch(level, lo, hi int) core.Batch {
	if hi <= lo {
		return core.Batch{}
	}
	sz := s.n >> level
	return core.Batch{
		Tasks: hi - lo,
		Cost:  combineCost(hi-lo, sz, false),
		Run: func(i int) {
			off := (lo + i) * sz
			s.nodes[off] = combine(s.nodes[off], s.nodes[off+sz/2])
		},
	}
}

// GPUDivideBatch implements core.GPUAlg.
func (s *Solver) GPUDivideBatch(level, lo, hi int) core.Batch { return core.Batch{} }

// GPUBaseBatch implements core.GPUAlg.
func (s *Solver) GPUBaseBatch(lo, hi int) core.Batch { return s.BaseBatch(lo, hi) }

// GPUCombineBatch implements core.GPUAlg: same fold with strided (scattered)
// access, since nodes sit a subproblem apart.
func (s *Solver) GPUCombineBatch(level, lo, hi int) core.Batch {
	return s.CombineBatch(level, lo, hi)
}

// GPUBytes implements core.GPUAlg: the element data plus the node slots of
// the range.
func (s *Solver) GPUBytes(level, lo, hi int) int64 {
	return int64(hi-lo) * int64(s.n>>level) * (4 + 32)
}

// Finish implements the executors' completion hook.
func (s *Solver) Finish() { s.finished = true }

// Result returns the maximum non-empty subarray sum. Valid only after an
// executor completed.
func (s *Solver) Result() int64 {
	if !s.finished {
		panic("maxsubarray: Result before execution finished")
	}
	return s.nodes[0].best
}

// ModelF returns the model-level combine cost: constant per subproblem.
func (s *Solver) ModelF() func(float64) float64 {
	return func(float64) float64 { return 16 }
}

// ModelLeaf returns the model-level base-case cost.
func (s *Solver) ModelLeaf() float64 { return 6.5 }

// Kadane is the linear-time sequential reference.
func Kadane(data []int32) int64 {
	if len(data) == 0 {
		panic("maxsubarray: empty input")
	}
	best := int64(data[0])
	cur := int64(data[0])
	for _, v := range data[1:] {
		x := int64(v)
		if cur < 0 {
			cur = x
		} else {
			cur += x
		}
		if cur > best {
			best = cur
		}
	}
	return best
}
