package maxsubarray

import (
	"context"

	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/hpu"
	"repro/internal/native"
)

// signed returns a seeded input with positive and negative values, the
// interesting regime for this problem.
func signed(n int, seed int64) []int32 {
	r := rand.New(rand.NewSource(seed))
	a := make([]int32, n)
	for i := range a {
		a[i] = int32(r.Intn(2001) - 1000)
	}
	return a
}

func TestKadaneBasics(t *testing.T) {
	cases := []struct {
		in   []int32
		want int64
	}{
		{[]int32{1, 2, 3, 4}, 10},
		{[]int32{-1, -2, -3}, -1},
		{[]int32{5, -9, 6, -2, 3}, 7},
		{[]int32{-2, 1, -3, 4, -1, 2, 1, -5, 4}, 6},
		{[]int32{0}, 0},
	}
	for _, c := range cases {
		if got := Kadane(c.in); got != c.want {
			t.Errorf("Kadane(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestCombineAssociativity(t *testing.T) {
	// Folding three leaves left-to-right in tree shape must match the
	// direct computation over the concatenation.
	f := func(a, b, c, d int16) bool {
		in := []int32{int32(a), int32(b), int32(c), int32(d)}
		leaf := func(v int32) node {
			x := int64(v)
			return node{x, x, x, x}
		}
		root := combine(combine(leaf(in[0]), leaf(in[1])), combine(leaf(in[2]), leaf(in[3])))
		return root.best == Kadane(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNewValidation(t *testing.T) {
	for _, n := range []int{0, 1, 3, 100} {
		if _, err := New(make([]int32, n)); err == nil {
			t.Errorf("New accepted length %d", n)
		}
	}
}

func TestExecutors(t *testing.T) {
	in := signed(1<<12, 7)
	want := Kadane(in)

	t.Run("sequential", func(t *testing.T) {
		be := hpu.MustSim(hpu.HPU1())
		s, _ := New(in)
		if _, err := core.RunSequentialCtx(context.Background(), be, s); err != nil {
			t.Fatal(err)
		}
		if got := s.Result(); got != want {
			t.Errorf("got %d, want %d", got, want)
		}
	})
	t.Run("bf-cpu", func(t *testing.T) {
		be := hpu.MustSim(hpu.HPU1())
		s, _ := New(in)
		if _, err := core.RunBreadthFirstCPUCtx(context.Background(), be, s); err != nil {
			t.Fatal(err)
		}
		if got := s.Result(); got != want {
			t.Errorf("got %d, want %d", got, want)
		}
	})
	t.Run("basic-hybrid", func(t *testing.T) {
		be := hpu.MustSim(hpu.HPU1())
		s, _ := New(in)
		if _, err := core.RunBasicHybridCtx(context.Background(), be, s, 6); err != nil {
			t.Fatal(err)
		}
		if got := s.Result(); got != want {
			t.Errorf("got %d, want %d", got, want)
		}
	})
	t.Run("advanced-hybrid", func(t *testing.T) {
		be := hpu.MustSim(hpu.HPU2())
		s, _ := New(in)
		prm := advParams{Alpha: 0.2, Y: 7, Split: -1}
		if _, err := core.RunAdvancedHybridCtx(context.Background(), be, s, prm.Alpha, prm.Y, core.WithSplit(prm.Split)); err != nil {
			t.Fatal(err)
		}
		if got := s.Result(); got != want {
			t.Errorf("got %d, want %d", got, want)
		}
	})
	t.Run("gpu-only", func(t *testing.T) {
		be := hpu.MustSim(hpu.HPU1())
		s, _ := New(in)
		if _, err := core.RunGPUOnlyCtx(context.Background(), be, s); err != nil {
			t.Fatal(err)
		}
		if got := s.Result(); got != want {
			t.Errorf("got %d, want %d", got, want)
		}
	})
	t.Run("native", func(t *testing.T) {
		be, err := native.New(native.Config{CPUWorkers: 4, DeviceLanes: 16})
		if err != nil {
			t.Fatal(err)
		}
		defer be.Close()
		s, _ := New(in)
		prm := advParams{Alpha: 0.3, Y: 6, Split: -1}
		if _, err := core.RunAdvancedHybridCtx(context.Background(), be, s, prm.Alpha, prm.Y, core.WithSplit(prm.Split)); err != nil {
			t.Fatal(err)
		}
		if got := s.Result(); got != want {
			t.Errorf("got %d, want %d", got, want)
		}
	})
}

func TestQuickProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(4))}
	f := func(seed int64, sizePow, yRaw uint8, alphaRaw uint16) bool {
		logN := 1 + int(sizePow%10)
		n := 1 << logN
		in := signed(n, seed)
		be := hpu.MustSim(hpu.HPU1())
		s, err := New(in)
		if err != nil {
			return false
		}
		prm := advParams{
			Alpha: float64(alphaRaw) / 65535,
			Y:     int(yRaw) % (logN + 1),
			Split: -1,
		}
		if _, err := core.RunAdvancedHybridCtx(context.Background(), be, s, prm.Alpha, prm.Y, core.WithSplit(prm.Split)); err != nil {
			return false
		}
		return s.Result() == Kadane(in)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// advParams groups advanced-division parameters for test tables. It
// replaces the deprecated core.AdvancedParams in test code.
type advParams struct {
	Alpha float64
	Y     int
	Split int
}
