package scan

import (
	"context"

	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/hpu"
	"repro/internal/native"
	"repro/internal/workload"
)

func equal(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNewValidation(t *testing.T) {
	for _, n := range []int{0, 1, 3, 100} {
		if _, err := New(make([]int32, n)); err == nil {
			t.Errorf("New accepted length %d", n)
		}
	}
}

func TestPrefixReference(t *testing.T) {
	got := Prefix([]int32{3, -1, 4, 1})
	want := []int64{3, 2, 6, 7}
	if !equal(got, want) {
		t.Errorf("Prefix = %v, want %v", got, want)
	}
}

func TestExecutors(t *testing.T) {
	in := workload.Uniform(1<<12, 1)
	want := Prefix(in)

	t.Run("sequential", func(t *testing.T) {
		s, _ := New(in)
		if _, err := core.RunSequentialCtx(context.Background(), hpu.MustSim(hpu.HPU1()), s); err != nil {
			t.Fatal(err)
		}
		if !equal(s.Result(), want) {
			t.Error("incorrect scan")
		}
	})
	t.Run("bf-cpu", func(t *testing.T) {
		s, _ := New(in)
		if _, err := core.RunBreadthFirstCPUCtx(context.Background(), hpu.MustSim(hpu.HPU1()), s); err != nil {
			t.Fatal(err)
		}
		if !equal(s.Result(), want) {
			t.Error("incorrect scan")
		}
	})
	t.Run("basic-hybrid", func(t *testing.T) {
		s, _ := New(in)
		if _, err := core.RunBasicHybridCtx(context.Background(), hpu.MustSim(hpu.HPU1()), s, 6); err != nil {
			t.Fatal(err)
		}
		if !equal(s.Result(), want) {
			t.Error("incorrect scan")
		}
	})
	t.Run("advanced-hybrid", func(t *testing.T) {
		s, _ := New(in)
		prm := advParams{Alpha: 0.2, Y: 7, Split: -1}
		if _, err := core.RunAdvancedHybridCtx(context.Background(), hpu.MustSim(hpu.HPU2()), s, prm.Alpha, prm.Y, core.WithSplit(prm.Split)); err != nil {
			t.Fatal(err)
		}
		if !equal(s.Result(), want) {
			t.Error("incorrect scan")
		}
	})
	t.Run("gpu-only", func(t *testing.T) {
		s, _ := New(in)
		if _, err := core.RunGPUOnlyCtx(context.Background(), hpu.MustSim(hpu.HPU1()), s); err != nil {
			t.Fatal(err)
		}
		if !equal(s.Result(), want) {
			t.Error("incorrect scan")
		}
	})
	t.Run("multi-gpu", func(t *testing.T) {
		be, err := hpu.NewMultiSim(hpu.HPU1(), 2)
		if err != nil {
			t.Fatal(err)
		}
		s, _ := New(in)
		if _, err := core.RunMultiGPUCtx(context.Background(), be, s, 0.2, 7); err != nil {
			t.Fatal(err)
		}
		if !equal(s.Result(), want) {
			t.Error("incorrect scan")
		}
	})
	t.Run("native", func(t *testing.T) {
		be, err := native.New(native.Config{CPUWorkers: 4, DeviceLanes: 16})
		if err != nil {
			t.Fatal(err)
		}
		defer be.Close()
		s, _ := New(in)
		prm := advParams{Alpha: 0.3, Y: 6, Split: -1}
		if _, err := core.RunAdvancedHybridCtx(context.Background(), be, s, prm.Alpha, prm.Y, core.WithSplit(prm.Split)); err != nil {
			t.Fatal(err)
		}
		if !equal(s.Result(), want) {
			t.Error("incorrect scan")
		}
	})
}

func TestScanIsMonotoneForNonNegative(t *testing.T) {
	in := workload.Uniform(1<<10, 2) // nonnegative by construction
	s, _ := New(in)
	if _, err := core.RunBreadthFirstCPUCtx(context.Background(), hpu.MustSim(hpu.HPU1()), s); err != nil {
		t.Fatal(err)
	}
	out := s.Result()
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			t.Fatalf("prefix sums of nonnegative input decrease at %d", i)
		}
	}
	if out[len(out)-1] != Prefix(in)[len(in)-1] {
		t.Error("total mismatch")
	}
}

func TestQuickProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(6))}
	f := func(seed int64, sizePow, yRaw uint8, alphaRaw uint16) bool {
		logN := 1 + int(sizePow%10)
		n := 1 << logN
		r := rand.New(rand.NewSource(seed))
		in := make([]int32, n)
		for i := range in {
			in[i] = int32(r.Intn(2001) - 1000)
		}
		s, err := New(in)
		if err != nil {
			return false
		}
		prm := advParams{
			Alpha: float64(alphaRaw) / 65535,
			Y:     int(yRaw) % (logN + 1),
			Split: -1,
		}
		if _, err := core.RunAdvancedHybridCtx(context.Background(), hpu.MustSim(hpu.HPU1()), s, prm.Alpha, prm.Y, core.WithSplit(prm.Split)); err != nil {
			return false
		}
		return equal(s.Result(), Prefix(in))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// advParams groups advanced-division parameters for test tables. It
// replaces the deprecated core.AdvancedParams in test code.
type advParams struct {
	Alpha float64
	Y     int
	Split int
}
