// Package scan implements an inclusive prefix sum as a divide-and-conquer
// algorithm for the generic hybrid framework: scan both halves, then add the
// left half's total into every element of the right half, giving
// T(n) = 2T(n/2) + Θ(n) — the same cost family as mergesort, so the
// closed-form §5.2.2 model applies. Prefix sums are the canonical GPU
// primitive, and unlike mergesort the combine is a uniform loop (no data-
// dependent branching), so its kernel is non-divergent and benefits from
// the device's full latency-hidden throughput.
package scan

import (
	"fmt"
	"math/bits"

	"repro/internal/core"
	"repro/internal/mempool"

	"repro/internal/dcerr"
)

// Scanner is a breadth-first inclusive-prefix-sum instance over a
// power-of-two input. Sums are int64 to avoid overflow. It implements
// core.GPUAlg and operates in place (combines of distinct subproblems touch
// disjoint segments). Single-use.
type Scanner struct {
	n        int
	l        int
	v        []int64
	finished bool
}

var _ core.GPUAlg = (*Scanner)(nil)

// New builds a Scanner over a copy of data; len(data) must be a power of
// two of at least 2.
func New(data []int32) (*Scanner, error) {
	n := len(data)
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("scan: input length %d: %w", n, dcerr.ErrNotPowerOfTwo)
	}
	// The vector is a pool lease, fully initialized from data below, so
	// its unspecified initial contents never surface.
	s := &Scanner{n: n, l: bits.TrailingZeros(uint(n)), v: mempool.Int64s.Get(n)}
	for i, x := range data {
		s.v[i] = int64(x)
	}
	return s, nil
}

// Release implements core.Releaser: it returns the sum vector to the pool.
// Idempotent; must not be called while the slice from Result is still in
// use.
func (s *Scanner) Release() {
	if s.v != nil {
		mempool.Int64s.Put(s.v)
		s.v = nil
	}
}

// Name implements core.Alg.
func (s *Scanner) Name() string { return "scan" }

// Arity implements core.Alg.
func (s *Scanner) Arity() int { return 2 }

// Shrink implements core.Alg.
func (s *Scanner) Shrink() int { return 2 }

// N implements core.Alg.
func (s *Scanner) N() int { return s.n }

// Levels implements core.Alg.
func (s *Scanner) Levels() int { return s.l }

// DivideBatch implements core.Alg: division is positional.
func (s *Scanner) DivideBatch(level, lo, hi int) core.Batch { return core.Batch{} }

// BaseBatch implements core.Alg: one element is its own prefix sum.
func (s *Scanner) BaseBatch(lo, hi int) core.Batch { return core.Batch{} }

// combineCost prices the offset propagation over sz/2 elements.
func combineCost(sz, tasks int, coalesced bool) core.Cost {
	half := float64(sz) / 2
	return core.Cost{
		Ops:        half,
		MemWords:   2 * half,
		Coalesced:  coalesced,
		Divergent:  false, // uniform loop: full latency hiding on the device
		WorkingSet: int64(tasks) * int64(sz) * 8,
	}
}

// CombineBatch implements core.Alg: task idx adds its left half's total into
// every element of its right half.
func (s *Scanner) CombineBatch(level, lo, hi int) core.Batch {
	if hi <= lo {
		return core.Batch{}
	}
	sz := s.n >> level
	return core.Batch{
		Tasks: hi - lo,
		Cost:  combineCost(sz, hi-lo, false),
		Run: func(i int) {
			off := (lo + i) * sz
			offset := s.v[off+sz/2-1]
			right := s.v[off+sz/2 : off+sz]
			for j := range right {
				right[j] += offset
			}
		},
	}
}

// GPUDivideBatch implements core.GPUAlg.
func (s *Scanner) GPUDivideBatch(level, lo, hi int) core.Batch { return core.Batch{} }

// GPUBaseBatch implements core.GPUAlg.
func (s *Scanner) GPUBaseBatch(lo, hi int) core.Batch { return core.Batch{} }

// GPUCombineBatch implements core.GPUAlg.
func (s *Scanner) GPUCombineBatch(level, lo, hi int) core.Batch {
	return s.CombineBatch(level, lo, hi)
}

// GPUBytes implements core.GPUAlg (8-byte partial sums).
func (s *Scanner) GPUBytes(level, lo, hi int) int64 {
	return int64(hi-lo) * int64(s.n>>level) * 8
}

// Finish implements the executors' completion hook.
func (s *Scanner) Finish() { s.finished = true }

// Result returns the inclusive prefix sums. Valid only after an executor
// completed.
func (s *Scanner) Result() []int64 {
	if !s.finished {
		panic("scan: Result before execution finished")
	}
	return s.v
}

// ModelF returns the model-level combine cost, size·1.5 ops (half the
// elements, each one op plus two words at weight 0.5) — the Θ(n^{log_b a})
// family.
func (s *Scanner) ModelF() func(float64) float64 {
	return func(size float64) float64 { return 1.5 * size }
}

// ModelLeaf returns the model-level base-case cost.
func (s *Scanner) ModelLeaf() float64 { return 0 }

// Prefix is the sequential reference: the inclusive prefix sums of data.
func Prefix(data []int32) []int64 {
	out := make([]int64, len(data))
	var acc int64
	for i, v := range data {
		acc += int64(v)
		out[i] = acc
	}
	return out
}
