// Package karatsuba implements Karatsuba polynomial multiplication as a
// breadth-first divide-and-conquer algorithm for the generic hybrid
// framework. Its recurrence T(n) = 3T(n/2) + Θ(n) exercises two framework
// paths the mergesort case study does not: a branching factor a ≠ b and a
// non-trivial divide phase (the third child's operands are sums of the
// halves, so real work happens on the way down the tree).
package karatsuba

import (
	"fmt"
	"math/bits"

	"repro/internal/core"

	"repro/internal/dcerr"
)

// opPair is one node's operands: two polynomials of equal length given by
// their coefficient slices.
type opPair struct {
	a, b []int64
}

// Multiplier is a breadth-first Karatsuba instance computing the product of
// two polynomials with n coefficients each (n a power of two). It implements
// core.GPUAlg. Single-use.
type Multiplier struct {
	n int
	l int
	// ops[l] holds the 3^l operand pairs of level l, each of size n>>l.
	// Children 0 and 1 alias their parent's halves; child 2 owns storage
	// for the half-sums, filled by the divide batch.
	ops [][]opPair
	// prods[l] holds the 3^l products of level l, each of size 2·(n>>l).
	prods    [][][]int64
	finished bool
}

var _ core.GPUAlg = (*Multiplier)(nil)

// New builds a Multiplier over copies of the coefficient slices a and b,
// which must have the same power-of-two length >= 2.
func New(a, b []int32) (*Multiplier, error) {
	n := len(a)
	if len(b) != n {
		return nil, fmt.Errorf("karatsuba: operand lengths differ: %d vs %d: %w", n, len(b), dcerr.ErrBadShape)
	}
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("karatsuba: operand length %d: %w", n, dcerr.ErrNotPowerOfTwo)
	}
	m := &Multiplier{n: n, l: bits.TrailingZeros(uint(n))}
	m.ops = make([][]opPair, m.l+1)
	m.prods = make([][][]int64, m.l+1)
	nodes := 1
	for lvl := 0; lvl <= m.l; lvl++ {
		m.ops[lvl] = make([]opPair, nodes)
		m.prods[lvl] = make([][]int64, nodes)
		sz := n >> lvl
		for idx := range m.prods[lvl] {
			m.prods[lvl][idx] = make([]int64, 2*sz)
			// Child 2 of every node needs its own operand storage; other
			// children alias parent halves during the divide phase.
			if lvl > 0 && idx%3 == 2 {
				m.ops[lvl][idx] = opPair{make([]int64, sz), make([]int64, sz)}
			}
		}
		nodes *= 3
	}
	root := opPair{make([]int64, n), make([]int64, n)}
	for i := 0; i < n; i++ {
		root.a[i] = int64(a[i])
		root.b[i] = int64(b[i])
	}
	m.ops[0][0] = root
	return m, nil
}

// Name implements core.Alg.
func (m *Multiplier) Name() string { return "karatsuba" }

// Arity implements core.Alg: a = 3.
func (m *Multiplier) Arity() int { return 3 }

// Shrink implements core.Alg: b = 2.
func (m *Multiplier) Shrink() int { return 2 }

// N implements core.Alg.
func (m *Multiplier) N() int { return m.n }

// Levels implements core.Alg.
func (m *Multiplier) Levels() int { return m.l }

// divideCost is the per-node cost of splitting operands of size sz.
func divideCost(sz int, coalesced bool) core.Cost {
	return core.Cost{
		Ops:        float64(sz), // two half-sums of sz/2 adds each
		MemWords:   3 * float64(sz),
		Coalesced:  coalesced,
		Divergent:  false,
		WorkingSet: int64(sz) * 8 * 4,
	}
}

// DivideBatch implements core.Alg: node idx of the level splits its operand
// pair into the three Karatsuba subproblems at level+1.
func (m *Multiplier) DivideBatch(level, lo, hi int) core.Batch {
	if hi <= lo {
		return core.Batch{}
	}
	sz := m.n >> level
	half := sz / 2
	cur, next := m.ops[level], m.ops[level+1]
	return core.Batch{
		Tasks: hi - lo,
		Cost:  divideCost(sz, false),
		Run: func(i int) {
			idx := lo + i
			p := cur[idx]
			next[3*idx] = opPair{p.a[:half], p.b[:half]}
			next[3*idx+1] = opPair{p.a[half:], p.b[half:]}
			mid := next[3*idx+2]
			for j := 0; j < half; j++ {
				mid.a[j] = p.a[j] + p.a[half+j]
				mid.b[j] = p.b[j] + p.b[half+j]
			}
		},
	}
}

// BaseBatch implements core.Alg: a leaf multiplies two constants.
func (m *Multiplier) BaseBatch(lo, hi int) core.Batch {
	if hi <= lo {
		return core.Batch{}
	}
	leafOps, leafProds := m.ops[m.l], m.prods[m.l]
	return core.Batch{
		Tasks: hi - lo,
		Cost: core.Cost{
			Ops: 1, MemWords: 3, Coalesced: false, Divergent: false,
			WorkingSet: int64(hi-lo) * 32,
		},
		Run: func(i int) {
			idx := lo + i
			leafProds[idx][0] = leafOps[idx].a[0] * leafOps[idx].b[0]
			leafProds[idx][1] = 0
		},
	}
}

// combineCost is the per-node cost of assembling a product of size 2·sz.
func combineCost(sz int, coalesced bool) core.Cost {
	return core.Cost{
		Ops:        4 * float64(sz),
		MemWords:   8 * float64(sz),
		Coalesced:  coalesced,
		Divergent:  false,
		WorkingSet: int64(sz) * 8 * 8,
	}
}

// CombineBatch implements core.Alg: node idx assembles its product from its
// three children: R = P0 + (P2 − P0 − P1)·x^half + P1·x^sz.
func (m *Multiplier) CombineBatch(level, lo, hi int) core.Batch {
	if hi <= lo {
		return core.Batch{}
	}
	sz := m.n >> level
	half := sz / 2
	cur, child := m.prods[level], m.prods[level+1]
	return core.Batch{
		Tasks: hi - lo,
		Cost:  combineCost(sz, false),
		Run: func(i int) {
			idx := lo + i
			r := cur[idx]
			p0, p1, p2 := child[3*idx], child[3*idx+1], child[3*idx+2]
			for j := range r {
				r[j] = 0
			}
			for j := 0; j < 2*half; j++ {
				r[j] += p0[j]
				r[j+sz] += p1[j]
				r[j+half] += p2[j] - p0[j] - p1[j]
			}
		},
	}
}

// GPUDivideBatch implements core.GPUAlg.
func (m *Multiplier) GPUDivideBatch(level, lo, hi int) core.Batch {
	return m.DivideBatch(level, lo, hi)
}

// GPUBaseBatch implements core.GPUAlg.
func (m *Multiplier) GPUBaseBatch(lo, hi int) core.Batch { return m.BaseBatch(lo, hi) }

// GPUCombineBatch implements core.GPUAlg.
func (m *Multiplier) GPUCombineBatch(level, lo, hi int) core.Batch {
	return m.CombineBatch(level, lo, hi)
}

// GPUBytes implements core.GPUAlg: operands down plus product back.
func (m *Multiplier) GPUBytes(level, lo, hi int) int64 {
	return int64(hi-lo) * int64(m.n>>level) * 8 * 4
}

// Finish implements the executors' completion hook.
func (m *Multiplier) Finish() { m.finished = true }

// Result returns the product's 2n coefficients (the top one is zero).
// Valid only after an executor completed.
func (m *Multiplier) Result() []int64 {
	if !m.finished {
		panic("karatsuba: Result before execution finished")
	}
	return m.prods[0][0]
}

// ModelF returns the model-level per-node divide+combine cost.
func (m *Multiplier) ModelF() func(float64) float64 {
	return func(size float64) float64 { return 10 * size }
}

// ModelLeaf returns the model-level base-case cost.
func (m *Multiplier) ModelLeaf() float64 { return 2.5 }

// Multiply is the sequential schoolbook reference: the 2n-coefficient
// product of two n-coefficient polynomials.
func Multiply(a, b []int32) []int64 {
	out := make([]int64, 2*len(a))
	for i, x := range a {
		for j, y := range b {
			out[i+j] += int64(x) * int64(y)
		}
	}
	return out
}
