package karatsuba

import (
	"context"

	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/hpu"
	"repro/internal/native"
)

func coeffs(n int, seed int64) []int32 {
	r := rand.New(rand.NewSource(seed))
	a := make([]int32, n)
	for i := range a {
		a[i] = int32(r.Intn(2001) - 1000)
	}
	return a
}

func equal(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNewValidation(t *testing.T) {
	if _, err := New(make([]int32, 4), make([]int32, 8)); err == nil {
		t.Error("New accepted mismatched lengths")
	}
	for _, n := range []int{0, 1, 3, 12} {
		if _, err := New(make([]int32, n), make([]int32, n)); err == nil {
			t.Errorf("New accepted length %d", n)
		}
	}
}

func TestMultiplyReference(t *testing.T) {
	a := []int32{1, 2}
	b := []int32{3, 4}
	// (1 + 2x)(3 + 4x) = 3 + 10x + 8x².
	want := []int64{3, 10, 8, 0}
	if got := Multiply(a, b); !equal(got, want) {
		t.Errorf("Multiply = %v, want %v", got, want)
	}
}

func TestExecutors(t *testing.T) {
	n := 1 << 6
	a, b := coeffs(n, 1), coeffs(n, 2)
	want := Multiply(a, b)

	t.Run("sequential", func(t *testing.T) {
		be := hpu.MustSim(hpu.HPU1())
		m, err := New(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.RunSequentialCtx(context.Background(), be, m); err != nil {
			t.Fatal(err)
		}
		if !equal(m.Result(), want) {
			t.Error("sequential product incorrect")
		}
	})
	t.Run("bf-cpu", func(t *testing.T) {
		be := hpu.MustSim(hpu.HPU1())
		m, _ := New(a, b)
		if _, err := core.RunBreadthFirstCPUCtx(context.Background(), be, m); err != nil {
			t.Fatal(err)
		}
		if !equal(m.Result(), want) {
			t.Error("breadth-first product incorrect")
		}
	})
	t.Run("basic-hybrid", func(t *testing.T) {
		be := hpu.MustSim(hpu.HPU1())
		m, _ := New(a, b)
		if _, err := core.RunBasicHybridCtx(context.Background(), be, m, 3); err != nil {
			t.Fatal(err)
		}
		if !equal(m.Result(), want) {
			t.Error("basic hybrid product incorrect")
		}
	})
	t.Run("advanced-hybrid", func(t *testing.T) {
		be := hpu.MustSim(hpu.HPU2())
		m, _ := New(a, b)
		prm := advParams{Alpha: 0.3, Y: 4, Split: -1}
		if _, err := core.RunAdvancedHybridCtx(context.Background(), be, m, prm.Alpha, prm.Y, core.WithSplit(prm.Split)); err != nil {
			t.Fatal(err)
		}
		if !equal(m.Result(), want) {
			t.Error("advanced hybrid product incorrect")
		}
	})
	t.Run("gpu-only", func(t *testing.T) {
		be := hpu.MustSim(hpu.HPU1())
		m, _ := New(a, b)
		if _, err := core.RunGPUOnlyCtx(context.Background(), be, m); err != nil {
			t.Fatal(err)
		}
		if !equal(m.Result(), want) {
			t.Error("gpu-only product incorrect")
		}
	})
	t.Run("native", func(t *testing.T) {
		be, err := native.New(native.Config{CPUWorkers: 4, DeviceLanes: 8})
		if err != nil {
			t.Fatal(err)
		}
		defer be.Close()
		m, _ := New(a, b)
		prm := advParams{Alpha: 0.4, Y: 3, Split: 1}
		if _, err := core.RunAdvancedHybridCtx(context.Background(), be, m, prm.Alpha, prm.Y, core.WithSplit(prm.Split)); err != nil {
			t.Fatal(err)
		}
		if !equal(m.Result(), want) {
			t.Error("native product incorrect")
		}
	})
}

func TestArityThreeSplits(t *testing.T) {
	// Odd arity makes the α rounding at the split level non-trivial; cover
	// several splits and ratios.
	n := 1 << 5
	a, b := coeffs(n, 3), coeffs(n, 4)
	want := Multiply(a, b)
	for _, prm := range []advParams{
		{Alpha: 0.1, Y: 3, Split: 1},
		{Alpha: 0.34, Y: 2, Split: 2},
		{Alpha: 0.67, Y: 4, Split: 0},
		{Alpha: 0.9, Y: 5, Split: 3},
	} {
		be := hpu.MustSim(hpu.HPU1())
		m, _ := New(a, b)
		if _, err := core.RunAdvancedHybridCtx(context.Background(), be, m, prm.Alpha, prm.Y, core.WithSplit(prm.Split)); err != nil {
			t.Fatalf("%+v: %v", prm, err)
		}
		if !equal(m.Result(), want) {
			t.Errorf("%+v: product incorrect", prm)
		}
	}
}

func TestQuickProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(5))}
	f := func(seed int64, sizePow, yRaw uint8, alphaRaw uint16) bool {
		logN := 1 + int(sizePow%6)
		n := 1 << logN
		a, b := coeffs(n, seed), coeffs(n, seed+1)
		be := hpu.MustSim(hpu.HPU1())
		m, err := New(a, b)
		if err != nil {
			return false
		}
		prm := advParams{
			Alpha: float64(alphaRaw) / 65535,
			Y:     int(yRaw) % (logN + 1),
			Split: -1,
		}
		if _, err := core.RunAdvancedHybridCtx(context.Background(), be, m, prm.Alpha, prm.Y, core.WithSplit(prm.Split)); err != nil {
			return false
		}
		return equal(m.Result(), Multiply(a, b))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// advParams groups advanced-division parameters for test tables. It
// replaces the deprecated core.AdvancedParams in test code.
type advParams struct {
	Alpha float64
	Y     int
	Split int
}
