package simgpu

import (
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
)

// TestKernelMetrics pins the wavefront, occupancy, and memory-coalescing
// accounting recorded per launch.
func TestKernelMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	eng, g := newGPU(t, params())
	g.SetMetrics(reg)

	// params() leaves WavefrontWidth at 0 → default SIMD width 64.
	coalesced := core.Batch{Tasks: 512, Cost: core.Cost{Ops: 100, MemWords: 2, Coalesced: true}}
	strided := core.Batch{Tasks: 100, Cost: core.Cost{Ops: 100, MemWords: 3}}
	g.Submit(coalesced, nil)
	g.Submit(strided, nil)
	eng.Run()

	s := reg.Snapshot()
	if got := s.Counters[MetricLaunches]; got != 2 {
		t.Errorf("%s = %d, want 2", MetricLaunches, got)
	}
	if got := s.Counters[MetricWorkItems]; got != 612 {
		t.Errorf("%s = %d, want 612", MetricWorkItems, got)
	}
	// 512/64 = 8 full wavefronts, plus ceil(100/64) = 2 partial.
	if got := s.Counters[MetricWavefronts]; got != 10 {
		t.Errorf("%s = %d, want 10", MetricWavefronts, got)
	}
	if got := s.Counters[MetricCoalescedWords]; got != 512*2 {
		t.Errorf("%s = %d, want %d", MetricCoalescedWords, got, 512*2)
	}
	if got := s.Counters[MetricUncoalescedWords]; got != 100*3 {
		t.Errorf("%s = %d, want %d", MetricUncoalescedWords, got, 100*3)
	}
	occ := s.Histograms[MetricOccupancy]
	if occ.Count != 2 {
		t.Fatalf("%s count = %d, want 2", MetricOccupancy, occ.Count)
	}
	// Occupancies 0.5 and ~0.098, both below saturation.
	if occ.Sum > 1 {
		t.Errorf("%s sum = %g, want < 1", MetricOccupancy, occ.Sum)
	}
}

// TestNoMetricsZeroCost pins that an uninstrumented GPU skips accounting.
func TestNoMetricsZeroCost(t *testing.T) {
	eng, g := newGPU(t, params())
	g.Submit(core.Batch{Tasks: 4, Cost: core.Cost{Ops: 1}}, nil)
	eng.Run() // must not panic on nil instruments
}
