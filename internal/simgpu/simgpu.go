// Package simgpu models an OpenCL-style GPU device under the discrete-event
// engine of internal/vtime. It implements core.LevelExecutor.
//
// The model follows §3 of the paper: rather than simulating physical
// processing elements cycle by cycle, the device is characterized by the
// observables the HPU model needs — the empirical degree of parallelism g
// (the number of resident work-items that saturates the device, §6.4) and
// the single-thread scalar speed ratio γ relative to one CPU core (Fig 6) —
// plus a latency-hiding factor that separates single-thread speed from
// saturated throughput.
//
// A kernel launch of W uniform work-items of effective per-item cost c takes
//
//	launch + c/(γ·H·R) · slow(W) · max(1, W/g)
//
// seconds, where R is the platform's normalized CPU core rate, H ≥ 1 is the
// latency-hiding factor (saturated per-lane throughput is γ·H·R ops/s), and
//
//	slow(W) = max(1, D, 1 + (H−1)·(g−W)/(g−1) for W < g)
//
// exposes latency when the device is under-occupied (W < g) or when the
// kernel is divergent (D = H for data-dependent control flow, 1 otherwise).
// Consequences, matching the paper:
//
//   - A single work-item runs at γ·R ops/s regardless of kernel shape, so
//     the Fig 6 estimation measures exactly 1/γ.
//   - A divergent kernel (one sequential merge per thread) runs at γ·R per
//     lane even when saturated — the assumption behind every TGPU term in
//     §5's analysis.
//   - A uniform kernel (element-wise sum, the binary-search parallel merge
//     of Fig 9) reaches γ·H·R per lane when saturated, which is what lets
//     the GPU-only parallel mergesort hit the paper's 18–20× speedups.
//   - Fixed total work split across w threads yields the Fig 5 saturation
//     curve with its knee at w = g.
//
// Uncoalesced global access inflates the memory component of c by
// StridePenalty (§6.3). Kernels execute functionally on host memory at
// submit time, so data transformations really happen; only time is virtual.
// Launches serialize on an in-order command queue, as in the paper's OpenCL
// host programs.
package simgpu

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/vtime"

	"repro/internal/dcerr"
)

// Metric names recorded by the device when metrics are attached with
// SetMetrics; semantics in DESIGN.md §9. The coalesced/uncoalesced word
// counters surface the §6.3 access-pattern split that previously only
// inflated modeled cost internally.
const (
	MetricLaunches         = "simgpu_launches_total"
	MetricWavefronts       = "simgpu_wavefronts_total"
	MetricWorkItems        = "simgpu_work_items_total"
	MetricCoalescedWords   = "simgpu_coalesced_words_total"
	MetricUncoalescedWords = "simgpu_uncoalesced_words_total"
	MetricOccupancy        = "simgpu_occupancy"
	MetricCopies           = "simgpu_copies_total"
)

// OccupancyBuckets bound the occupancy histogram: the fraction W/g of the
// device's saturation thread count a launch brings (values above 1 mean
// multiple waves).
var OccupancyBuckets = []float64{0.01, 0.05, 0.25, 0.5, 1, 2, 8}

// Params describes a simulated GPU device.
type Params struct {
	// Name identifies the device in reports (e.g. "ATI Radeon HD 5970").
	Name string
	// SatThreads is g: the number of work-items after which adding more
	// yields no further speedup (Fig 5's knee). It exceeds the physical PE
	// count because of latency hiding.
	SatThreads int
	// PhysicalPEs is the physical processing-element count, reported in
	// the spec table only.
	PhysicalPEs int
	// Gamma is γ < 1: single-thread ops per unit time of one GPU core
	// relative to one CPU core, the quantity Table 2 reports.
	Gamma float64
	// HideFactor is H ≥ 1: the ratio of saturated per-lane throughput to
	// single-thread speed, achieved by latency hiding on uniform kernels.
	// Divergent kernels never benefit from it.
	HideFactor float64
	// BaseRateOpsPerSec anchors γ: one GPU lane at single-thread speed
	// executes Gamma · BaseRateOpsPerSec normalized ops per second. Set it
	// to the platform CPU's RateOpsPerSec.
	BaseRateOpsPerSec float64
	// MemWeight converts one word of global-memory traffic into op
	// equivalents (same convention as simcpu.Params.MemWeight).
	MemWeight float64
	// StridePenalty multiplies the memory component of un-coalesced
	// kernels. 1 disables the coalescing model.
	StridePenalty float64
	// LaunchOverheadSec is the fixed host-side cost of enqueueing a kernel.
	LaunchOverheadSec float64
	// WavefrontWidth is the SIMD width used to price heterogeneous batches
	// (Batch.CostOps): every lane of a wavefront pays its slowest item.
	// 0 means 64, the width of the paper's AMD devices.
	WavefrontWidth int
}

// wavefront returns the effective SIMD width.
func (p Params) wavefront() int {
	if p.WavefrontWidth <= 0 {
		return 64
	}
	return p.WavefrontWidth
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.SatThreads <= 0 {
		return fmt.Errorf("simgpu: SatThreads must be positive, got %d: %w", p.SatThreads, dcerr.ErrBadParam)
	}
	if p.Gamma <= 0 || p.Gamma >= 1 {
		return fmt.Errorf("simgpu: Gamma must be in (0,1), got %g: %w", p.Gamma, dcerr.ErrBadParam)
	}
	if p.HideFactor < 1 {
		return fmt.Errorf("simgpu: HideFactor must be >= 1, got %g: %w", p.HideFactor, dcerr.ErrBadParam)
	}
	if p.BaseRateOpsPerSec <= 0 {
		return fmt.Errorf("simgpu: BaseRateOpsPerSec must be positive, got %g: %w", p.BaseRateOpsPerSec, dcerr.ErrBadParam)
	}
	if p.StridePenalty < 1 {
		return fmt.Errorf("simgpu: StridePenalty must be >= 1, got %g: %w", p.StridePenalty, dcerr.ErrBadParam)
	}
	if p.MemWeight < 0 {
		return fmt.Errorf("simgpu: MemWeight must be nonnegative, got %g: %w", p.MemWeight, dcerr.ErrBadParam)
	}
	return nil
}

// GPU is a simulated device with two in-order command queues: a compute
// queue for kernel launches and a copy queue for host↔device DMAs. As in
// the dual-queue OpenCL idiom, work serializes within each queue but the
// two queues progress concurrently, so a transfer can overlap a kernel —
// the property the pipelined fused executor relies on. (The paper's host
// programs use a single in-order queue; its §5.2 overlap comes from the CPU
// working concurrently, which the model also keeps.)
type GPU struct {
	params Params
	queue  *vtime.Resource
	copy   *vtime.Resource

	// Observability instruments; nil (no-op) until SetMetrics.
	launches    *metrics.Counter
	wavefronts  *metrics.Counter
	workItems   *metrics.Counter
	coalesced   *metrics.Counter
	uncoalesced *metrics.Counter
	occupancy   *metrics.Histogram
	copies      *metrics.Counter

	// segs models the device's staging allocator. Kernels execute on host
	// memory (only time is virtual), so segments are pure accounting: the
	// cache tracks residency and reuse exactly as a device memory pool
	// would, letting executors exercise the lease discipline and metrics
	// observe it.
	segs core.SegmentCache
}

var _ core.LevelExecutor = (*GPU)(nil)

// Segments exposes the device's staging cache so the owning backend can
// serve core.SegmentAllocator and tests can assert reuse.
func (g *GPU) Segments() *core.SegmentCache { return &g.segs }

// New creates a GPU bound to the given engine.
func New(eng *vtime.Engine, p Params) (*GPU, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &GPU{
		params: p,
		queue:  vtime.NewResource(eng, 1),
		copy:   vtime.NewResource(eng, 1),
	}, nil
}

// SetMetrics attaches a registry to the device: every kernel launch then
// records its wavefront count, occupancy (work-items over g), and the
// coalesced vs uncoalesced global-memory word traffic of §6.3. Call before
// submitting work; a nil registry detaches.
func (g *GPU) SetMetrics(reg *metrics.Registry) {
	g.segs.SetMetrics("simgpu", reg)
	g.launches = reg.Counter(MetricLaunches)
	g.wavefronts = reg.Counter(MetricWavefronts)
	g.workItems = reg.Counter(MetricWorkItems)
	g.coalesced = reg.Counter(MetricCoalescedWords)
	g.uncoalesced = reg.Counter(MetricUncoalescedWords)
	g.occupancy = reg.Histogram(MetricOccupancy, OccupancyBuckets...)
	g.copies = reg.Counter(MetricCopies)
}

// Params returns the device parameters.
func (g *GPU) Params() Params { return g.params }

// Parallelism reports g, the saturation thread count.
func (g *GPU) Parallelism() int { return g.params.SatThreads }

// Gamma reports the single-thread ratio γ.
func (g *GPU) Gamma() float64 { return g.params.Gamma }

// BusySeconds reports accumulated device-seconds of kernel service on the
// compute queue.
func (g *GPU) BusySeconds() float64 { return g.queue.BusySeconds() }

// CopyBusySeconds reports accumulated seconds of DMA service on the copy
// queue.
func (g *GPU) CopyBusySeconds() float64 { return g.copy.BusySeconds() }

// SubmitCopy enqueues a host↔device DMA of the given modeled duration on
// the copy queue. Copies serialize among themselves (one DMA engine) but
// overlap kernel launches on the compute queue. The link's cost model
// (λ + δ·w) lives with the platform, so callers pass seconds, not bytes.
func (g *GPU) SubmitCopy(seconds float64, done func()) {
	if g.copies != nil {
		g.copies.Inc()
	}
	g.copy.RequestFixed(seconds, done)
}

// Stall occupies the in-order compute queue for the given modeled duration
// without performing work — a hung kernel launch. Everything already queued
// behind it waits it out, exactly like a real stuck launch on an in-order
// device stream. Used by the fault-injection layer.
func (g *GPU) Stall(seconds float64, done func()) {
	g.queue.RequestFixed(seconds, done)
}

// itemCost is the effective normalized op cost of one work-item.
func (g *GPU) itemCost(c core.Cost) float64 {
	mem := c.MemWords * g.params.MemWeight
	if !c.Coalesced {
		mem *= g.params.StridePenalty
	}
	return c.Ops + mem
}

// ItemSeconds reports how long a single work-item of the given cost takes
// when launched alone (the Fig 6 measurement): exactly c_eff/(γ·R).
func (g *GPU) ItemSeconds(c core.Cost) float64 {
	return g.LaunchSeconds(1, c) - g.params.LaunchOverheadSec
}

// LaunchSeconds reports the modeled duration of a launch of w work-items of
// the given per-item cost, excluding queueing. Exposed so the estimation
// harness (Fig 5) and tests can probe the occupancy curve directly.
func (g *GPU) LaunchSeconds(w int, c core.Cost) float64 {
	if w <= 0 {
		return 0
	}
	p := g.params
	satLaneRate := p.Gamma * p.HideFactor * p.BaseRateOpsPerSec
	itemTime := g.itemCost(c) / satLaneRate

	slow := 1.0
	if w < p.SatThreads && p.SatThreads > 1 {
		// Linear latency exposure from H at a single resident work-item
		// down to 1 at full occupancy.
		frac := float64(p.SatThreads-w) / float64(p.SatThreads-1)
		slow = 1 + (p.HideFactor-1)*frac
	}
	if c.Divergent && p.HideFactor > slow {
		slow = p.HideFactor
	}
	waves := 1.0
	if w > p.SatThreads {
		waves = float64(w) / float64(p.SatThreads)
	}
	return p.LaunchOverheadSec + itemTime*slow*waves
}

// HeterogeneousSeconds prices a batch whose items have individual op counts
// (Batch.CostOps) at wavefront granularity: within each SIMD wavefront all
// lanes execute in lockstep, so every lane pays the wavefront's slowest
// item — the divergence cost the §6.1 one-merge-per-thread kernel suffers
// when run sizes differ.
func (g *GPU) HeterogeneousSeconds(w int, c core.Cost, costOps func(i int) float64) float64 {
	if w <= 0 {
		return 0
	}
	p := g.params
	mem := c.MemWords * p.MemWeight
	if !c.Coalesced {
		mem *= p.StridePenalty
	}
	width := p.wavefront()
	var effTotal, maxItem float64
	for lo := 0; lo < w; lo += width {
		hi := lo + width
		if hi > w {
			hi = w
		}
		waveMax := 0.0
		for i := lo; i < hi; i++ {
			if ops := costOps(i); ops > waveMax {
				waveMax = ops
			}
		}
		waveCost := waveMax + mem
		effTotal += float64(hi-lo) * waveCost
		if waveCost > maxItem {
			maxItem = waveCost
		}
	}
	satLaneRate := p.Gamma * p.HideFactor * p.BaseRateOpsPerSec
	slow := 1.0
	if w < p.SatThreads && p.SatThreads > 1 {
		frac := float64(p.SatThreads-w) / float64(p.SatThreads-1)
		slow = 1 + (p.HideFactor-1)*frac
	}
	if c.Divergent && p.HideFactor > slow {
		slow = p.HideFactor
	}
	bound := math.Max(maxItem, effTotal/float64(p.SatThreads))
	return p.LaunchOverheadSec + slow*bound/satLaneRate
}

// Submit implements core.LevelExecutor: the batch becomes one kernel launch.
// Functional work runs eagerly on host memory; the launch occupies the
// in-order queue for the modeled duration.
func (g *GPU) Submit(b core.Batch, done func()) {
	if b.Empty() {
		if done != nil {
			done()
		}
		return
	}
	if b.Run != nil {
		for i := 0; i < b.Tasks; i++ {
			b.Run(i)
		}
	}
	g.account(b)
	var d float64
	if b.CostOps != nil {
		d = g.HeterogeneousSeconds(b.Tasks, b.Cost, b.CostOps)
	} else {
		d = g.LaunchSeconds(b.Tasks, b.Cost)
	}
	g.queue.RequestFixed(d, done)
}

// account records the launch's observability counters (no-ops when metrics
// are not attached).
func (g *GPU) account(b core.Batch) {
	if g.launches == nil {
		return
	}
	g.launches.Inc()
	g.workItems.Add(uint64(b.Tasks))
	width := g.params.wavefront()
	g.wavefronts.Add(uint64((b.Tasks + width - 1) / width))
	g.occupancy.Observe(float64(b.Tasks) / float64(g.params.SatThreads))
	words := uint64(b.Cost.MemWords * float64(b.Tasks))
	if b.Cost.Coalesced {
		g.coalesced.Add(words)
	} else {
		g.uncoalesced.Add(words)
	}
}
