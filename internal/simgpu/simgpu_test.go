package simgpu

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/vtime"
)

func params() Params {
	return Params{
		Name: "test", SatThreads: 1024, PhysicalPEs: 256,
		Gamma: 1.0 / 100, HideFactor: 10, BaseRateOpsPerSec: 1e8,
		MemWeight: 0.5, StridePenalty: 4, LaunchOverheadSec: 0,
	}
}

func newGPU(t *testing.T, p Params) (*vtime.Engine, *GPU) {
	t.Helper()
	eng := vtime.New()
	g, err := New(eng, p)
	if err != nil {
		t.Fatal(err)
	}
	return eng, g
}

func TestValidation(t *testing.T) {
	bad := []Params{
		{},
		{SatThreads: 1},
		{SatThreads: 1, Gamma: 0.5},
		{SatThreads: 1, Gamma: 0.5, HideFactor: 0.5},
		{SatThreads: 1, Gamma: 0.5, HideFactor: 1, BaseRateOpsPerSec: 1, StridePenalty: 0.5},
		{SatThreads: 1, Gamma: 2, HideFactor: 1, BaseRateOpsPerSec: 1, StridePenalty: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
	if err := params().Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestSingleItemRunsAtGamma(t *testing.T) {
	// One work-item of c ops must take c/(γ·R) regardless of divergence —
	// this is what makes the Fig 6 estimate read exactly 1/γ.
	_, g := newGPU(t, params())
	for _, div := range []bool{false, true} {
		c := core.Cost{Ops: 1e6, Coalesced: true, Divergent: div}
		want := 1e6 / (1.0 / 100 * 1e8) // = 1s
		if got := g.ItemSeconds(c); math.Abs(got-want) > 1e-9 {
			t.Errorf("divergent=%v: ItemSeconds = %g, want %g", div, got, want)
		}
	}
}

func TestSaturatedUniformThroughput(t *testing.T) {
	// W ≥ g uniform kernel: duration = total/(γ·H·R·g)·... i.e. the full
	// hidden-latency throughput.
	_, g := newGPU(t, params())
	c := core.Cost{Ops: 1e6, Coalesced: true}
	w := 2048 // 2·g
	want := 1e6 / (1e8 / 100 * 10) * 2048 / 1024
	if got := g.LaunchSeconds(w, c); math.Abs(got-want) > 1e-9*want {
		t.Errorf("saturated uniform launch = %g, want %g", got, want)
	}
}

func TestSaturatedDivergentPaysGammaPerLane(t *testing.T) {
	// A divergent kernel never benefits from latency hiding: the §5 model
	// assumption that a saturated level costs k·f/(γ·g).
	_, g := newGPU(t, params())
	c := core.Cost{Ops: 1e6, Coalesced: true, Divergent: true}
	w := 2048
	want := 1e6 / (1e8 / 100) * 2048 / 1024 // per-lane at γ·R, 2 waves
	if got := g.LaunchSeconds(w, c); math.Abs(got-want) > 1e-9*want {
		t.Errorf("saturated divergent launch = %g, want %g", got, want)
	}
}

func TestStridePenaltyAppliesToMemoryOnly(t *testing.T) {
	_, g := newGPU(t, params())
	co := core.Cost{Ops: 100, MemWords: 200, Coalesced: true}
	st := core.Cost{Ops: 100, MemWords: 200, Coalesced: false}
	// coalesced: 100 + 200·0.5 = 200; strided: 100 + 200·0.5·4 = 500.
	ratio := g.ItemSeconds(st) / g.ItemSeconds(co)
	if math.Abs(ratio-2.5) > 1e-9 {
		t.Errorf("stride penalty ratio = %g, want 2.5", ratio)
	}
}

func TestSaturationCurveShape(t *testing.T) {
	// Fixed total work split over w threads: decreasing below g, flat
	// above (the Fig 5 shape with a knee at exactly g).
	_, g := newGPU(t, params())
	total := 1e9
	timeAt := func(w int) float64 {
		return g.LaunchSeconds(w, core.Cost{Ops: total / float64(w), Coalesced: true})
	}
	prev := math.Inf(1)
	for w := 64; w <= 1024; w += 64 {
		cur := timeAt(w)
		if cur >= prev {
			t.Fatalf("curve not decreasing at w=%d: %g >= %g", w, cur, prev)
		}
		prev = cur
	}
	flat := timeAt(1024)
	for w := 1024; w <= 4096; w += 512 {
		if got := timeAt(w); math.Abs(got-flat) > 1e-9*flat {
			t.Fatalf("curve not flat at w=%d: %g vs %g", w, got, flat)
		}
	}
}

func TestLaunchOverheadAndQueueing(t *testing.T) {
	p := params()
	p.LaunchOverheadSec = 0.5
	eng, g := newGPU(t, p)
	// Two launches serialize on the in-order queue.
	b := core.Batch{Tasks: 1, Cost: core.Cost{Ops: 1e6, Coalesced: true}}
	g.Submit(b, nil)
	g.Submit(b, nil)
	eng.Run()
	want := 2 * (0.5 + 1.0)
	if got := eng.Now(); math.Abs(got-want) > 1e-9 {
		t.Errorf("two queued launches took %g, want %g", got, want)
	}
}

func TestFunctionalExecution(t *testing.T) {
	eng, g := newGPU(t, params())
	hits := make([]int, 100)
	g.Submit(core.Batch{Tasks: 100, Cost: core.Cost{Ops: 1},
		Run: func(i int) { hits[i]++ }}, nil)
	eng.Run()
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("item %d ran %d times", i, h)
		}
	}
}

func TestEmptyBatch(t *testing.T) {
	_, g := newGPU(t, params())
	called := false
	g.Submit(core.Batch{}, func() { called = true })
	if !called {
		t.Error("empty batch done not called")
	}
	if g.LaunchSeconds(0, core.Cost{Ops: 1}) != 0 {
		t.Error("zero-item launch should take no time")
	}
}

func TestHeterogeneousWavefrontDivergence(t *testing.T) {
	// 128 items in wavefronts of 64: costs alternate 10 and 1000 ops within
	// each wavefront, so every lane pays 1000 — the effective total is
	// 128·1000, not Σc_i.
	p := params()
	p.WavefrontWidth = 64
	_, g := newGPU(t, p)
	costs := func(i int) float64 {
		if i%2 == 0 {
			return 10
		}
		return 1000
	}
	c := core.Cost{Coalesced: true}
	const w = 4096 // 4·g: throughput-bound, so wavefront packing matters
	het := g.HeterogeneousSeconds(w, c, costs)
	uniform := g.LaunchSeconds(w, core.Cost{Ops: 1000, Coalesced: true})
	if math.Abs(het-uniform) > 1e-12*uniform {
		t.Errorf("divergent wavefront = %g, want lockstep max pricing %g", het, uniform)
	}
	// If the expensive items are packed into their own wavefronts, the
	// cheap wavefronts no longer pay for them.
	sorted := func(i int) float64 {
		if i < w/2 {
			return 10
		}
		return 1000
	}
	packed := g.HeterogeneousSeconds(w, c, sorted)
	if packed >= het {
		t.Errorf("packed wavefronts %g not cheaper than interleaved %g", packed, het)
	}
}

func TestHeterogeneousMatchesUniform(t *testing.T) {
	// Constant per-item costs must reproduce LaunchSeconds exactly, both
	// under- and over-saturated.
	_, g := newGPU(t, params())
	for _, w := range []int{1, 64, 1000, 1024, 5000} {
		c := core.Cost{MemWords: 8, Coalesced: false, Divergent: true}
		cu := c
		cu.Ops = 77
		want := g.LaunchSeconds(w, cu)
		got := g.HeterogeneousSeconds(w, c, func(int) float64 { return 77 })
		if math.Abs(got-want) > 1e-12*want {
			t.Errorf("w=%d: heterogeneous %g != uniform %g", w, got, want)
		}
	}
}

// TestCopyQueueOverlapsCompute pins the dual-queue model: a DMA on the copy
// queue runs concurrently with a kernel on the compute queue, so the
// makespan is the maximum of the two, not the sum.
func TestCopyQueueOverlapsCompute(t *testing.T) {
	p := params()
	p.LaunchOverheadSec = 0
	eng, g := newGPU(t, p)

	kernel := g.LaunchSeconds(p.SatThreads, core.Cost{Ops: 1000, Coalesced: true})
	copyD := kernel / 2
	var kernelDone, copyDone float64
	g.Submit(core.Batch{Tasks: p.SatThreads, Cost: core.Cost{Ops: 1000, Coalesced: true}},
		func() { kernelDone = eng.Now() })
	g.SubmitCopy(copyD, func() { copyDone = eng.Now() })
	eng.Run()

	if math.Abs(copyDone-copyD) > 1e-12 {
		t.Errorf("copy finished at %g, want %g (overlapped)", copyDone, copyD)
	}
	if math.Abs(kernelDone-kernel) > 1e-12 {
		t.Errorf("kernel finished at %g, want %g (overlapped)", kernelDone, kernel)
	}
	if got, want := eng.Now(), math.Max(kernel, copyD); math.Abs(got-want) > 1e-12 {
		t.Errorf("makespan %g, want max(%g, %g)", got, kernel, copyD)
	}
	if got := g.CopyBusySeconds(); math.Abs(got-copyD) > 1e-12 {
		t.Errorf("CopyBusySeconds = %g, want %g", got, copyD)
	}
}

// TestCopiesSerialize pins that the copy queue itself is in-order: two DMAs
// take the sum of their durations (one DMA engine).
func TestCopiesSerialize(t *testing.T) {
	eng, g := newGPU(t, params())
	g.SubmitCopy(3, func() {})
	g.SubmitCopy(4, func() {})
	eng.Run()
	if got := eng.Now(); math.Abs(got-7) > 1e-12 {
		t.Errorf("two copies took %g, want 7 (serialized)", got)
	}
}
