package dcerr

import (
	"errors"
	"net/http"
)

// HTTPMapping is one row of the wire contract: a sentinel error, its stable
// wire label (the "kind" field of API error bodies), and the HTTP status a
// remote caller sees. The table is the single source of truth shared by the
// HTTP front-end (internal/api), the load driver (cmd/hpuserve), and the Go
// client (internal/api/client), which maps kinds back to sentinels so
// errors.Is keeps working across the wire.
type HTTPMapping struct {
	// Err is the sentinel matched with errors.Is.
	Err error
	// Kind is the stable wire label; it never changes once published.
	Kind string
	// Status is the HTTP response status.
	Status int
}

// HTTPTable maps every sentinel to its wire kind and HTTP status, ordered by
// match priority: the first errors.Is hit wins, so the more specific
// reliability sentinels precede the generic ones they may wrap
// (ErrRetriesExhausted always wraps the final attempt's ErrDeviceFault, and
// must be matched first).
//
// The status choices follow what the caller can do about the failure:
//
//   - 400: the request itself is wrong — fix the payload or parameters.
//   - 429: the admission queue is full — back off and retry (Retry-After).
//   - 502: the device path failed upstream — the request was valid, retry
//     or attach a reliability policy.
//   - 503: the service is shedding (open circuit breaker) or shutting
//     down — retry later (Retry-After).
//   - 504: the job's deadline or the request's wait budget expired.
var HTTPTable = []HTTPMapping{
	{Err: ErrQueueFull, Kind: "queue-full", Status: http.StatusTooManyRequests},
	{Err: ErrRetriesExhausted, Kind: "retries-exhausted", Status: http.StatusBadGateway},
	{Err: ErrDegraded, Kind: "degraded", Status: http.StatusServiceUnavailable},
	{Err: ErrDeviceFault, Kind: "device-fault", Status: http.StatusBadGateway},
	{Err: ErrServerClosed, Kind: "server-closed", Status: http.StatusServiceUnavailable},
	{Err: ErrBackendClosed, Kind: "backend-closed", Status: http.StatusServiceUnavailable},
	{Err: ErrCanceled, Kind: "canceled", Status: http.StatusGatewayTimeout},
	{Err: ErrNotPowerOfTwo, Kind: "not-power-of-two", Status: http.StatusBadRequest},
	{Err: ErrBadShape, Kind: "bad-shape", Status: http.StatusBadRequest},
	{Err: ErrBadAlpha, Kind: "bad-alpha", Status: http.StatusBadRequest},
	{Err: ErrBadLevel, Kind: "bad-level", Status: http.StatusBadRequest},
	{Err: ErrNoGPU, Kind: "no-gpu", Status: http.StatusBadRequest},
	{Err: ErrBadParam, Kind: "bad-param", Status: http.StatusBadRequest},
}

// HTTPStatus classifies err against HTTPTable and returns its status.
// Unclassified errors (and nil) map to 500.
func HTTPStatus(err error) int {
	for _, m := range HTTPTable {
		if errors.Is(err, m.Err) {
			return m.Status
		}
	}
	return http.StatusInternalServerError
}

// KindOf classifies err against HTTPTable and returns its wire kind, or ""
// for an unclassified error.
func KindOf(err error) string {
	for _, m := range HTTPTable {
		if errors.Is(err, m.Err) {
			return m.Kind
		}
	}
	return ""
}

// ByKind returns the sentinel for a wire kind, or nil for an unknown one —
// the client-side inverse of KindOf, restoring errors.Is classification
// after a round trip through the HTTP API.
func ByKind(kind string) error {
	for _, m := range HTTPTable {
		if m.Kind == kind {
			return m.Err
		}
	}
	return nil
}
