package dcerr

import (
	"errors"
	"fmt"
	"net/http"
	"testing"
)

// The wire contract: kinds and statuses are pinned — changing a row breaks
// deployed remote clients.
func TestHTTPTablePinned(t *testing.T) {
	want := map[string]int{
		"queue-full":        429,
		"retries-exhausted": 502,
		"degraded":          503,
		"device-fault":      502,
		"server-closed":     503,
		"backend-closed":    503,
		"canceled":          504,
		"not-power-of-two":  400,
		"bad-shape":         400,
		"bad-alpha":         400,
		"bad-level":         400,
		"no-gpu":            400,
		"bad-param":         400,
	}
	if len(HTTPTable) != len(want) {
		t.Fatalf("HTTPTable has %d rows, want %d", len(HTTPTable), len(want))
	}
	for _, m := range HTTPTable {
		status, ok := want[m.Kind]
		if !ok {
			t.Errorf("unexpected kind %q", m.Kind)
			continue
		}
		if m.Status != status {
			t.Errorf("kind %q: status %d, want %d", m.Kind, m.Status, status)
		}
	}
}

func TestHTTPStatusMatchesThroughWrapping(t *testing.T) {
	wrapped := fmt.Errorf("serve: 64 jobs queued: %w", ErrQueueFull)
	if got := HTTPStatus(wrapped); got != http.StatusTooManyRequests {
		t.Errorf("HTTPStatus(wrapped ErrQueueFull) = %d, want 429", got)
	}
	if got := KindOf(wrapped); got != "queue-full" {
		t.Errorf("KindOf(wrapped ErrQueueFull) = %q, want queue-full", got)
	}
}

// ErrRetriesExhausted always wraps the final attempt's ErrDeviceFault; the
// table must classify the pair as retries-exhausted, not device-fault.
func TestRetriesExhaustedBeatsDeviceFault(t *testing.T) {
	err := fmt.Errorf("%w: %w", ErrRetriesExhausted, ErrDeviceFault)
	if got := KindOf(err); got != "retries-exhausted" {
		t.Errorf("KindOf = %q, want retries-exhausted", got)
	}
	if got := HTTPStatus(err); got != http.StatusBadGateway {
		t.Errorf("HTTPStatus = %d, want 502", got)
	}
}

func TestUnclassified(t *testing.T) {
	err := errors.New("some other failure")
	if got := HTTPStatus(err); got != http.StatusInternalServerError {
		t.Errorf("HTTPStatus(unclassified) = %d, want 500", got)
	}
	if got := KindOf(err); got != "" {
		t.Errorf("KindOf(unclassified) = %q, want empty", got)
	}
	if got := HTTPStatus(nil); got != http.StatusInternalServerError {
		t.Errorf("HTTPStatus(nil) = %d, want 500", got)
	}
}

// ByKind is the exact inverse of KindOf over the whole table.
func TestByKindRoundTrip(t *testing.T) {
	for _, m := range HTTPTable {
		got := ByKind(m.Kind)
		if !errors.Is(got, m.Err) {
			t.Errorf("ByKind(%q) = %v, want %v", m.Kind, got, m.Err)
		}
		if KindOf(got) != m.Kind {
			t.Errorf("KindOf(ByKind(%q)) = %q", m.Kind, KindOf(got))
		}
	}
	if ByKind("no-such-kind") != nil {
		t.Error("ByKind(unknown) != nil")
	}
}
