// Package dcerr defines the framework's error taxonomy: a small set of
// sentinel errors that every public constructor and executor wraps with %w,
// so callers can classify failures with errors.Is regardless of which
// package produced them.
//
// The taxonomy groups errors by what the caller can do about them:
//
//   - Input-shape errors (ErrNotPowerOfTwo, ErrBadShape): the instance data
//     cannot be expressed as the required recursion tree — fix the input.
//   - Parameter errors (ErrBadAlpha, ErrBadLevel, ErrBadParam): a planner or
//     caller supplied an out-of-range tuning value — fix the configuration.
//   - Capability errors (ErrNoGPU): the chosen strategy needs a unit the
//     backend does not have — pick another strategy or backend.
//   - Lifecycle errors (ErrQueueFull, ErrCanceled, ErrBackendClosed,
//     ErrServerClosed): a runtime condition of the serving layer — retry,
//     shed load, or shut down cleanly.
//   - Reliability errors (ErrDeviceFault, ErrDegraded,
//     ErrRetriesExhausted): the device path failed or was shed at runtime —
//     retry, fall back to the CPU path, or surface the degradation.
//
// dcerr imports nothing from the rest of the module, so every layer (core,
// backends, algorithms, the serving layer, the public facade) can depend on
// it without cycles.
package dcerr

import "errors"

// Input-shape errors.
var (
	// ErrNotPowerOfTwo reports an instance whose size is not a power of two
	// of at least 2, required by the uniform-recursion algorithms.
	ErrNotPowerOfTwo = errors.New("input size is not a power of two >= 2")
	// ErrBadShape reports structurally invalid instance data other than the
	// power-of-two requirement (mismatched operand lengths, undersized
	// inputs, out-of-range recursion depths).
	ErrBadShape = errors.New("invalid instance shape")
)

// Parameter errors.
var (
	// ErrBadAlpha reports a CPU work fraction α outside [0, 1].
	ErrBadAlpha = errors.New("alpha out of range [0,1]")
	// ErrBadLevel reports a level parameter (transfer level y, split level,
	// or crossover) outside the recursion tree.
	ErrBadLevel = errors.New("level out of range")
	// ErrBadParam reports an invalid machine, platform, or model parameter.
	ErrBadParam = errors.New("invalid parameter")
)

// Capability errors.
var (
	// ErrNoGPU reports a hybrid or GPU-only strategy on a CPU-only backend.
	ErrNoGPU = errors.New("backend has no GPU")
)

// Lifecycle errors.
var (
	// ErrQueueFull reports that a job server's bounded admission queue
	// rejected a submission; the caller should shed load or retry later.
	ErrQueueFull = errors.New("admission queue full")
	// ErrCanceled reports an execution stopped at a level boundary because
	// its context was canceled or its deadline expired; the accompanying
	// Report is partial.
	ErrCanceled = errors.New("execution canceled")
	// ErrBackendClosed reports an operation on a backend after Close.
	ErrBackendClosed = errors.New("backend closed")
	// ErrServerClosed reports a submission to a server after Close.
	ErrServerClosed = errors.New("server closed")
)

// Reliability errors.
var (
	// ErrDeviceFault reports a device-path failure during a run: a kernel
	// launch error, a corrupted or timed-out host↔device transfer, or a
	// submission that raced the device's shutdown. The accompanying Report
	// is partial; the job may be retried or re-run on the CPU path.
	ErrDeviceFault = errors.New("device fault")
	// ErrDegraded reports a GPU-bound job shed because the serving layer's
	// circuit breaker has the device path open; resubmit later or attach a
	// CPU fallback policy.
	ErrDegraded = errors.New("service degraded: GPU path shed by circuit breaker")
	// ErrRetriesExhausted reports that a job's retry policy ran out of
	// attempts; it always wraps the final attempt's error, so errors.Is
	// also matches the underlying ErrDeviceFault.
	ErrRetriesExhausted = errors.New("retries exhausted")
)
