package model

import (
	"math"
	"testing"
)

// extParams is a simple calibration for unit-level checks: R = 1e8 ops/s,
// ample bandwidth, no overheads.
func extParams() ExtendedParams {
	return ExtendedParams{
		CoreRate: 1e8, MemBW: 4e8, LLCBytes: 1 << 20,
		BytesPerSize: 8, TransferBytesPerSize: 4,
		HideFactor: 10, Divergent: true,
	}
}

func extModel(t *testing.T) Extended {
	t.Helper()
	num, err := NewNumeric(2, 2, 10, func(s float64) float64 { return 2 * s }, 0,
		Machine{P: 4, G: 256, Gamma: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	ext, err := NewExtended(num, extParams())
	if err != nil {
		t.Fatal(err)
	}
	return ext
}

func TestExtendedParamsValidate(t *testing.T) {
	good := extParams()
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []func(*ExtendedParams){
		func(p *ExtendedParams) { p.CoreRate = 0 },
		func(p *ExtendedParams) { p.MemBW = -1 },
		func(p *ExtendedParams) { p.LLCBytes = 0 },
		func(p *ExtendedParams) { p.HideFactor = 0.5 },
		func(p *ExtendedParams) { p.BytesPerSize = -1 },
		func(p *ExtendedParams) { p.LaunchSec = -1 },
		func(p *ExtendedParams) { p.LinkSecPerByte = -1 },
	}
	for i, mutate := range bad {
		p := extParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
}

func TestExtendedSequentialSeconds(t *testing.T) {
	ext := extModel(t)
	// 2^10 input, f = 2·size per node, zero leaves: 10 levels × 2·1024 ops.
	want := 10 * 2 * 1024.0 / 1e8
	if got := ext.SequentialSeconds(); math.Abs(got-want) > 1e-12 {
		t.Errorf("SequentialSeconds = %g, want %g", got, want)
	}
}

func TestExtendedTransfersCounted(t *testing.T) {
	// With link costs, a GPU-heavy split must include two transfers.
	p := extParams()
	p.LinkLatencySec = 0.5
	num, _ := NewNumeric(2, 2, 10, func(s float64) float64 { return 2 * s }, 0,
		Machine{P: 4, G: 256, Gamma: 0.01})
	ext, err := NewExtended(num, p)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := ext.PredictAdvancedSeconds(0.25, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Transfers < 1.0 {
		t.Errorf("Transfers = %g, want >= 2·λ = 1.0", pr.Transfers)
	}
	if pr.GPUPhase < pr.Transfers {
		t.Errorf("GPUPhase %g excludes transfers %g", pr.GPUPhase, pr.Transfers)
	}
	// α = 1: no GPU portion, no transfers.
	pr1, err := ext.PredictAdvancedSeconds(1, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pr1.Transfers != 0 || pr1.GPUPhase != 0 {
		t.Errorf("α=1 prediction has GPU costs: %+v", pr1)
	}
}

func TestExtendedContentionSlowsCPU(t *testing.T) {
	// Same work with a working set beyond the LLC must take longer when
	// all cores stream (MemBW/4 < R).
	small := extParams()
	small.MemBW = 1e8 // 4 cores → 2.5e7 each, 4× slower than R
	numBig, _ := NewNumeric(2, 2, 18, func(s float64) float64 { return 2 * s }, 0,
		Machine{P: 4, G: 256, Gamma: 0.01})
	fast, _ := NewExtended(numBig, extParams())
	slow, _ := NewExtended(numBig, small)
	pf, _ := fast.PredictAdvancedSeconds(1, 9, 4)
	ps, _ := slow.PredictAdvancedSeconds(1, 9, 4)
	if ps.Makespan <= pf.Makespan {
		t.Errorf("bandwidth contention did not slow the CPU: %g vs %g",
			ps.Makespan, pf.Makespan)
	}
}

func TestExtendedBestSearch(t *testing.T) {
	ext := extModel(t)
	alpha, y, best := ext.BestAdvancedSeconds(30)
	if alpha <= 0 || alpha >= 1 || y < 0 || y > 10 {
		t.Fatalf("best params out of range: α=%g y=%d", alpha, y)
	}
	// The optimum must not lose to an arbitrary configuration.
	other, err := ext.PredictAdvancedSeconds(0.9, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if best.Makespan > other.Makespan {
		t.Errorf("BestAdvancedSeconds %g worse than arbitrary %g", best.Makespan, other.Makespan)
	}
}

func TestExtendedValidationErrors(t *testing.T) {
	ext := extModel(t)
	if _, err := ext.PredictAdvancedSeconds(-0.1, 5, 2); err == nil {
		t.Error("accepted alpha < 0")
	}
	if _, err := ext.PredictAdvancedSeconds(0.5, 11, 2); err == nil {
		t.Error("accepted y > L")
	}
	if _, err := ext.PredictAdvancedSeconds(0.5, 5, 6); err == nil {
		t.Error("accepted s > y")
	}
	num, _ := NewNumeric(2, 2, 4, func(s float64) float64 { return s }, 0,
		Machine{P: 4, G: 64, Gamma: 0.1})
	if _, err := NewExtended(num, ExtendedParams{}); err == nil {
		t.Error("NewExtended accepted zero params")
	}
}

func TestGPUWorkFractionBounds(t *testing.T) {
	p, err := NewPoly(2, 2, 1<<20, Machine{P: 4, G: 4096, Gamma: 1.0 / 160})
	if err != nil {
		t.Fatal(err)
	}
	for alpha := 0.01; alpha < 1; alpha += 0.05 {
		f := p.GPUWorkFraction(alpha)
		if f < 0 || f > 1 {
			t.Fatalf("GPUWorkFraction(%g) = %g outside [0,1]", alpha, f)
		}
	}
}
