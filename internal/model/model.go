// Package model implements the paper's analytic HPU model (§5): the basic
// work-division crossover level, and the advanced division's CPU/GPU time
// functions, transfer-level function y(α), GPU work maximization, and
// predicted speedups.
//
// Two variants are provided. Poly is the closed-form model of §5.2.2 for
// algorithms with f(n) = Θ(n^{log_b a}) (every full recursion level costs
// the same; mergesort is the canonical example). Numeric handles arbitrary
// per-level cost functions by direct level-by-level evaluation and also
// yields end-to-end makespan predictions for the executors in internal/core.
//
// Conventions: work is measured in normalized CPU-core operations (γ_c = 1),
// and level indices count from the root, level 0, down to the leaf level
// L = log_b n, matching the paper's figures.
package model

import (
	"fmt"
	"math"

	"repro/internal/dcerr"
)

// Machine is the HPU parameter triple of Table 2.
type Machine struct {
	// P is the number of CPU cores.
	P int
	// G is the empirical GPU parallelism (saturation thread count).
	G int
	// Gamma is the single-thread GPU:CPU speed ratio γ < 1.
	Gamma float64
}

// Validate reports whether the machine parameters are usable.
func (m Machine) Validate() error {
	if m.P <= 0 {
		return fmt.Errorf("model: P must be positive, got %d: %w", m.P, dcerr.ErrBadParam)
	}
	if m.G <= 0 {
		return fmt.Errorf("model: G must be positive, got %d: %w", m.G, dcerr.ErrBadParam)
	}
	if m.Gamma <= 0 || m.Gamma >= 1 {
		return fmt.Errorf("model: Gamma must be in (0,1), got %g: %w", m.Gamma, dcerr.ErrBadParam)
	}
	return nil
}

// BasicCrossover returns the level at which the basic work division (§5.1)
// moves execution from the CPU to the GPU: i = ⌈log_a(p/γ)⌉. The second
// return is false when γ·g < p, i.e. the GPU never wins and everything
// should stay on the CPU.
func BasicCrossover(a int, m Machine) (int, bool) {
	if float64(m.G)*m.Gamma < float64(m.P) {
		return 0, false
	}
	level := math.Log(float64(m.P)/m.Gamma) / math.Log(float64(a))
	return int(math.Ceil(level)), true
}

// Poly is the closed-form advanced-division model of §5.2.2 for
// f(n) = Θ(n^{log_b a}).
type Poly struct {
	// A and B are the recurrence parameters of T(n) = a·T(n/b) + f(n).
	A, B float64
	// N is the input size.
	N float64
	// Mach is the HPU parameter triple.
	Mach Machine
}

// NewPoly validates and builds a closed-form model.
func NewPoly(a, b int, n float64, mach Machine) (Poly, error) {
	if a < 2 || b < 2 {
		return Poly{}, fmt.Errorf("model: recurrence needs a,b >= 2, got a=%d b=%d: %w", a, b, dcerr.ErrBadParam)
	}
	if n < float64(b) {
		return Poly{}, fmt.Errorf("model: input size %g smaller than b=%d: %w", n, b, dcerr.ErrBadParam)
	}
	if err := mach.Validate(); err != nil {
		return Poly{}, err
	}
	return Poly{A: float64(a), B: float64(b), N: n, Mach: mach}, nil
}

// Levels returns m = log_b n, the depth of the recursion tree.
func (p Poly) Levels() float64 { return math.Log(p.N) / math.Log(p.B) }

// LevelWork returns M = n^{log_b a}: the cost of one full internal level,
// which for this cost family is also the number of leaves.
func (p Poly) LevelWork() float64 {
	return math.Pow(p.N, math.Log(p.A)/math.Log(p.B))
}

// TotalWork returns the total sequential work M·(m+1) (internal levels plus
// the leaf level at unit leaf cost).
func (p Poly) TotalWork() float64 { return p.LevelWork() * (p.Levels() + 1) }

// Tc returns the time the CPU takes, executing bottom-up with all P cores
// busy, to reduce its α-portion to P subproblems (§5.2.2):
//
//	Tc = (α·M/p)·(log_b n − log_a(p/α) + 1)
func (p Poly) Tc(alpha float64) float64 {
	pp := float64(p.Mach.P)
	return alpha * p.LevelWork() / pp * (p.Levels() - p.logA(pp/alpha) + 1)
}

// TmaxG returns the maximum time the GPU can run fully saturated on its
// (1−α)-portion (§5.2.2).
func (p Poly) TmaxG(alpha float64) float64 {
	g := float64(p.Mach.G)
	return (1 - alpha) * p.LevelWork() / (p.Mach.Gamma * g) *
		(p.Levels() - p.logA(g/(1-alpha)) + 1)
}

// GPUCase identifies which branch of the piecewise Tg function (§5.2.1)
// applies for a given α.
type GPUCase int

const (
	// GPUNeverSaturated: (1−α)·M < g; the GPU always has more cores than
	// tasks.
	GPUNeverSaturated GPUCase = iota + 1
	// GPUAlwaysSaturated: the CPU finishes its portion before the GPU
	// drops below g tasks.
	GPUAlwaysSaturated
	// GPUMixed: the GPU is saturated near the leaves and unsaturated near
	// the transfer level.
	GPUMixed
)

// Y solves T_g(y) = T_c(α) for the transfer level y: how high the GPU gets,
// starting at the leaves, in the time the CPU needs to reduce its portion to
// P subproblems. The result is clamped to [0, m+1]; y = m+1 means the GPU
// contributes nothing (its portion is empty).
func (p Poly) Y(alpha float64) (float64, GPUCase) {
	m := p.Levels()
	if alpha >= 1 {
		return m + 1, GPUNeverSaturated
	}
	M := p.LevelWork()
	a := p.A
	g := float64(p.Mach.G)
	gamma := p.Mach.Gamma
	tc := p.Tc(alpha)

	clamp := func(y float64) float64 { return math.Max(0, math.Min(y, m+1)) }

	if (1-alpha)*M < g {
		// Case (i): never saturated.
		// Tc = (1/γ)·(M·(a/(a−1))·a^{−y} − 1/(a−1))
		x := (tc*gamma + 1/(a-1)) * (a - 1) / (M * a)
		return clamp(-math.Log(x) / math.Log(a)), GPUNeverSaturated
	}
	if tmax := p.TmaxG(alpha); tc <= tmax {
		// Case (ii): always saturated.
		// Tc = ((1−α)·M/(γg))·(m − y + 1)
		y := m + 1 - tc*gamma*g/((1-alpha)*M)
		return clamp(y), GPUAlwaysSaturated
	}
	// Case (iii): saturated near the bottom, then unsaturated.
	// Tc = TmaxG + (M·a/(γ(a−1)))·(a^{−y} − (1−α)/g)
	x := (tc-p.TmaxG(alpha))*gamma*(a-1)/(M*a) + (1-alpha)/g
	return clamp(-math.Log(x) / math.Log(a)), GPUMixed
}

// GPUWork returns W_g(α): the work the GPU completes between the leaves and
// level y(α) (§5.2.1), the objective the advanced division maximizes.
func (p Poly) GPUWork(alpha float64) float64 {
	y, _ := p.Y(alpha)
	return (1 - alpha) * p.LevelWork() * (p.Levels() - y + 1)
}

// GPUWorkFraction returns W_g(α) over the total work.
func (p Poly) GPUWorkFraction(alpha float64) float64 {
	return p.GPUWork(alpha) / p.TotalWork()
}

// MinAlpha is the smallest admissible work ratio, p/M: the CPU must start
// the bottom level with at least p tasks (§5.2.1).
func (p Poly) MinAlpha() float64 {
	return float64(p.Mach.P) / p.LevelWork()
}

// Optimum maximizes W_g over α ∈ [MinAlpha, 1) and returns the optimal
// ratio, its transfer level, and the GPU's fraction of total work — the
// (α* ≈ 0.16, y ≈ 10, ≈52 %) triple of the paper's Fig 3/4 example.
func (p Poly) Optimum() (alpha, y, fraction float64) {
	lo := p.MinAlpha()
	if lo >= 1 {
		return 1, p.Levels() + 1, 0
	}
	best, bestW := lo, -1.0
	const steps = 4000
	for i := 0; i <= steps; i++ {
		a := lo + (0.999-lo)*float64(i)/steps
		if w := p.GPUWork(a); w > bestW {
			bestW, best = w, a
		}
	}
	// Local refinement around the grid winner.
	width := (0.999 - lo) / steps
	for pass := 0; pass < 40; pass++ {
		improved := false
		for _, cand := range []float64{best - width, best + width} {
			if cand <= lo || cand >= 0.999 {
				continue
			}
			if w := p.GPUWork(cand); w > bestW {
				bestW, best, improved = w, cand, true
			}
		}
		if !improved {
			width /= 2
		}
	}
	yy, _ := p.Y(best)
	return best, yy, bestW / p.TotalWork()
}

func (p Poly) logA(x float64) float64 { return math.Log(x) / math.Log(p.A) }
