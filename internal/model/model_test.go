package model

import (
	"math"
	"testing"
)

// hpu1 is the paper's example machine: p=4, g=2^12, γ=1/160.
func hpu1() Machine { return Machine{P: 4, G: 4096, Gamma: 1.0 / 160} }

func mergesortPoly(t *testing.T, n float64) Poly {
	t.Helper()
	p, err := NewPoly(2, 2, n, hpu1())
	if err != nil {
		t.Fatalf("NewPoly: %v", err)
	}
	return p
}

func TestPolyLevelQuantities(t *testing.T) {
	p := mergesortPoly(t, 1<<24)
	if got := p.Levels(); got != 24 {
		t.Errorf("Levels() = %g, want 24", got)
	}
	if got := p.LevelWork(); math.Abs(got-(1<<24)) > 1 {
		t.Errorf("LevelWork() = %g, want 2^24", got)
	}
	if got := p.TotalWork(); math.Abs(got-25*(1<<24)) > 1 {
		t.Errorf("TotalWork() = %g, want 25*2^24", got)
	}
}

// TestPaperExample checks the §5.2.2 example: for mergesort on HPU1 with
// n = 2^24, the work ratio maximizing GPU work is α* ≈ 0.16, the transfer
// level y ≈ 10, and the GPU does ≈ 52 % of the total work.
func TestPaperExample(t *testing.T) {
	p := mergesortPoly(t, 1<<24)
	alpha, y, frac := p.Optimum()
	if alpha < 0.12 || alpha > 0.20 {
		t.Errorf("optimal alpha = %.4f, want ~0.16", alpha)
	}
	if y < 9 || y > 11 {
		t.Errorf("transfer level y = %.2f, want ~10", y)
	}
	if frac < 0.47 || frac > 0.57 {
		t.Errorf("GPU work fraction = %.3f, want ~0.52", frac)
	}
	// The paper observes the GPU is both saturated and unsaturated during
	// its execution at α* (since y < log_a g = 12 the run crosses the
	// saturation boundary).
	if _, c := p.Y(alpha); c != GPUMixed {
		t.Errorf("GPU case at alpha* = %v, want GPUMixed", c)
	}
}

func TestTcMatchesClosedForm(t *testing.T) {
	p := mergesortPoly(t, 1<<24)
	// Tc(α) = (α n / p)(log_b n − log_a(p/α) + 1) for a=b=2.
	for _, alpha := range []float64{0.05, 0.16, 0.5, 0.9} {
		want := alpha * float64(1<<24) / 4 * (24 - math.Log2(4/alpha) + 1)
		if got := p.Tc(alpha); math.Abs(got-want) > 1e-6*want {
			t.Errorf("Tc(%g) = %g, want %g", alpha, got, want)
		}
	}
}

func TestYMonotoneInAlpha(t *testing.T) {
	// More CPU share (larger α) gives the GPU more time, so the GPU climbs
	// higher: y must be nonincreasing in α.
	p := mergesortPoly(t, 1<<24)
	prev := math.Inf(1)
	for alpha := p.MinAlpha(); alpha < 0.99; alpha += 0.01 {
		y, _ := p.Y(alpha)
		if y > prev+1e-9 {
			t.Fatalf("y(α) increased at α=%.3f: %.4f > %.4f", alpha, y, prev)
		}
		prev = y
	}
}

func TestYCasesConsistent(t *testing.T) {
	// At the reported case boundaries the piecewise branches must agree on
	// Tg(y) = Tc.
	p := mergesortPoly(t, 1<<24)
	for _, alpha := range []float64{0.01, 0.05, 0.16, 0.3, 0.6, 0.95} {
		y, c := p.Y(alpha)
		if y <= 0 || y >= p.Levels()+1 {
			continue // clamped; no equality to check
		}
		tg := p.tgAt(alpha, y, c)
		tc := p.Tc(alpha)
		if math.Abs(tg-tc) > 1e-6*tc {
			t.Errorf("alpha=%g case=%v: Tg(y)=%g != Tc=%g", alpha, c, tg, tc)
		}
	}
}

// tgAt evaluates the piecewise Tg at a given y for verification.
func (p Poly) tgAt(alpha, y float64, c GPUCase) float64 {
	M := p.LevelWork()
	a := p.A
	g := float64(p.Mach.G)
	switch c {
	case GPUNeverSaturated:
		return (1 / p.Mach.Gamma) * (M*(a/(a-1))*math.Pow(a, -y) - 1/(a-1))
	case GPUAlwaysSaturated:
		return (1 - alpha) * M / (p.Mach.Gamma * g) * (p.Levels() - y + 1)
	default:
		return p.TmaxG(alpha) +
			M*a/(p.Mach.Gamma*(a-1))*(math.Pow(a, -y)-(1-alpha)/g)
	}
}

func TestBasicCrossover(t *testing.T) {
	// log_2(4·160) = log_2(640) ≈ 9.32 → level 10.
	lvl, ok := BasicCrossover(2, hpu1())
	if !ok {
		t.Fatal("BasicCrossover: GPU should win below some level")
	}
	if lvl != 10 {
		t.Errorf("crossover = %d, want 10", lvl)
	}
	// A GPU with γ·g < p never wins.
	if _, ok := BasicCrossover(2, Machine{P: 16, G: 100, Gamma: 0.01}); ok {
		t.Error("BasicCrossover: expected no GPU benefit when γ·g < p")
	}
}

func TestNumericSequentialMatchesPoly(t *testing.T) {
	// With f(n)=n and unit leaves, Numeric and Poly agree on total work.
	num, err := NewNumeric(2, 2, 24, func(s float64) float64 { return s }, 1, hpu1())
	if err != nil {
		t.Fatalf("NewNumeric: %v", err)
	}
	p := mergesortPoly(t, 1<<24)
	if got, want := num.SequentialTime(), p.TotalWork(); math.Abs(got-want) > 1e-6*want {
		t.Errorf("SequentialTime = %g, want %g", got, want)
	}
}

func TestNumericPredictAdvancedSane(t *testing.T) {
	num, err := NewNumeric(2, 2, 24, func(s float64) float64 { return s }, 0, hpu1())
	if err != nil {
		t.Fatalf("NewNumeric: %v", err)
	}
	seq := num.SequentialTime()
	pr, err := num.PredictAdvanced(0.16, 10, num.DefaultSplit(0.16, 10))
	if err != nil {
		t.Fatalf("PredictAdvanced: %v", err)
	}
	speedup := seq / pr.Makespan
	// The paper's analysis estimates ≈5.5× for this configuration; our
	// level-by-level variant should land in the same region.
	if speedup < 4 || speedup > 8 {
		t.Errorf("predicted speedup = %.2f, want ~5.5", speedup)
	}
	if pr.GPUWorkFraction < 0.35 || pr.GPUWorkFraction > 0.65 {
		t.Errorf("GPU work fraction = %.3f, want ~0.5", pr.GPUWorkFraction)
	}
	// The two phases should be roughly balanced at the model's optimum.
	ratio := pr.GPUPhase / pr.CPUPhase
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("phase balance GPU/CPU = %.2f, want near 1", ratio)
	}
}

func TestNumericBestAdvancedBeatsArbitrary(t *testing.T) {
	num, err := NewNumeric(2, 2, 20, func(s float64) float64 { return s }, 0, hpu1())
	if err != nil {
		t.Fatalf("NewNumeric: %v", err)
	}
	alpha, y, best := num.BestAdvanced(64)
	bad, err := num.PredictAdvanced(0.9, 2, num.DefaultSplit(0.9, 2))
	if err != nil {
		t.Fatalf("PredictAdvanced: %v", err)
	}
	if best.Makespan > bad.Makespan {
		t.Errorf("BestAdvanced (α=%.2f, y=%d) %.3g worse than arbitrary %.3g",
			alpha, y, best.Makespan, bad.Makespan)
	}
	if alpha <= 0 || alpha >= 1 {
		t.Errorf("best alpha = %g out of (0,1)", alpha)
	}
}

func TestPredictBasicMonotoneRegions(t *testing.T) {
	num, err := NewNumeric(2, 2, 20, func(s float64) float64 { return s }, 0, hpu1())
	if err != nil {
		t.Fatalf("NewNumeric: %v", err)
	}
	// The paper's crossover should be no worse than extreme choices.
	x, ok := BasicCrossover(2, hpu1())
	if !ok {
		t.Fatal("expected crossover")
	}
	atX, err := num.PredictBasic(x)
	if err != nil {
		t.Fatal(err)
	}
	allCPU, err := num.PredictBasic(num.L)
	if err != nil {
		t.Fatal(err)
	}
	allGPU, err := num.PredictBasic(0)
	if err != nil {
		t.Fatal(err)
	}
	if atX > allCPU || atX > allGPU {
		t.Errorf("crossover %d time %.3g worse than pure CPU %.3g or pure GPU %.3g",
			x, atX, allCPU, allGPU)
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewPoly(1, 2, 1024, hpu1()); err == nil {
		t.Error("NewPoly accepted a=1")
	}
	if _, err := NewPoly(2, 2, 1, hpu1()); err == nil {
		t.Error("NewPoly accepted n<b")
	}
	if _, err := NewPoly(2, 2, 1024, Machine{P: 4, G: 4096, Gamma: 2}); err == nil {
		t.Error("NewPoly accepted gamma>1")
	}
	if _, err := NewNumeric(2, 2, 0, func(s float64) float64 { return s }, 0, hpu1()); err == nil {
		t.Error("NewNumeric accepted 0 levels")
	}
	if _, err := NewNumeric(2, 2, 4, nil, 0, hpu1()); err == nil {
		t.Error("NewNumeric accepted nil cost function")
	}
	num, _ := NewNumeric(2, 2, 4, func(s float64) float64 { return s }, 0, hpu1())
	if _, err := num.PredictAdvanced(-0.1, 2, 1); err == nil {
		t.Error("PredictAdvanced accepted alpha<0")
	}
	if _, err := num.PredictAdvanced(0.5, 99, 1); err == nil {
		t.Error("PredictAdvanced accepted y>L")
	}
	if _, err := num.PredictAdvanced(0.5, 2, 3); err == nil {
		t.Error("PredictAdvanced accepted s>y")
	}
}
