package model

import (
	"fmt"
	"math"

	"repro/internal/dcerr"
)

// Numeric is the level-by-level model for an arbitrary divide-and-conquer
// cost profile. Unlike Poly it makes no assumption on f, uses the same
// integer rounding as the executors in internal/core, and produces
// end-to-end makespan predictions (the green "predicted" series of Fig 8).
type Numeric struct {
	// A, B are the recurrence parameters.
	A, B int
	// L is the number of internal levels (leaf level is L).
	L int
	// N is the input size (b^L).
	N float64
	// F is the divide+combine cost of one subproblem of the given size, in
	// normalized ops.
	F func(size float64) float64
	// Leaf is the cost of one base case.
	Leaf float64
	// Mach is the HPU parameter triple.
	Mach Machine
}

// NewNumeric validates and builds a numeric model for n = b^levels.
func NewNumeric(a, b, levels int, f func(float64) float64, leaf float64, mach Machine) (Numeric, error) {
	if a < 2 || b < 2 {
		return Numeric{}, fmt.Errorf("model: recurrence needs a,b >= 2, got a=%d b=%d: %w", a, b, dcerr.ErrBadParam)
	}
	if levels < 1 {
		return Numeric{}, fmt.Errorf("model: need at least one level, got %d: %w", levels, dcerr.ErrBadParam)
	}
	if f == nil {
		return Numeric{}, fmt.Errorf("model: nil cost function: %w", dcerr.ErrBadParam)
	}
	if leaf < 0 {
		return Numeric{}, fmt.Errorf("model: negative leaf cost %g: %w", leaf, dcerr.ErrBadParam)
	}
	if err := mach.Validate(); err != nil {
		return Numeric{}, err
	}
	return Numeric{A: a, B: b, L: levels, N: math.Pow(float64(b), float64(levels)),
		F: f, Leaf: leaf, Mach: mach}, nil
}

// size returns the subproblem size at a level.
func (m Numeric) size(level int) float64 {
	return m.N / math.Pow(float64(m.B), float64(level))
}

// tasks returns a^level as a float (levels can be deep enough to overflow
// int for a > 2).
func (m Numeric) tasks(level int) float64 {
	return math.Pow(float64(m.A), float64(level))
}

// cpuLevel returns the time for k tasks of cost c on the p-core CPU.
func (m Numeric) cpuLevel(k, c float64) float64 {
	if k <= 0 {
		return 0
	}
	return c * math.Ceil(k/float64(m.Mach.P))
}

// gpuLevel returns the time for k tasks of cost c on the GPU, at the §5
// assumption of γ per lane (divergent kernels).
func (m Numeric) gpuLevel(k, c float64) float64 {
	if k <= 0 {
		return 0
	}
	return c / m.Mach.Gamma * math.Max(1, k/float64(m.Mach.G))
}

// SequentialTime is the single-core makespan: the denominator of every
// speedup in §6.4.
func (m Numeric) SequentialTime() float64 {
	t := m.tasks(m.L) * m.Leaf
	for i := 0; i < m.L; i++ {
		t += m.tasks(i) * m.F(m.size(i))
	}
	return t
}

// Prediction decomposes a predicted advanced-division makespan.
type Prediction struct {
	// CPUPhase is the CPU chain's bottom-up time over its α-portion.
	CPUPhase float64
	// GPUPhase is the GPU chain's bottom-up time through the transfer
	// level (no link cost: the model ignores transfers, as in §3.2).
	GPUPhase float64
	// Tail is the CPU-only remainder after the two chains join.
	Tail float64
	// Makespan is max(CPUPhase, GPUPhase) + Tail.
	Makespan float64
	// GPUWorkFraction is the share of total work the GPU executed.
	GPUWorkFraction float64
}

// PredictAdvanced evaluates the advanced division with CPU ratio alpha,
// transfer level y and split level s, using the same integer rounding as
// core.RunAdvancedHybrid.
func (m Numeric) PredictAdvanced(alpha float64, y, s int) (Prediction, error) {
	if alpha < 0 || alpha > 1 {
		return Prediction{}, fmt.Errorf("model: alpha %g: %w", alpha, dcerr.ErrBadAlpha)
	}
	if y < 0 || y > m.L {
		return Prediction{}, fmt.Errorf("model: transfer level %d out of range [0,%d]: %w", y, m.L, dcerr.ErrBadLevel)
	}
	if s < 0 || s > y {
		return Prediction{}, fmt.Errorf("model: split level %d out of range [0,%d]: %w", s, y, dcerr.ErrBadLevel)
	}
	width := m.tasks(s)
	cCount := math.Round(alpha * width)
	gCount := width - cCount
	scale := func(level int) float64 { return math.Pow(float64(m.A), float64(level-s)) }

	var pr Prediction
	var gpuWork float64

	// CPU chain: its portion, leaves up to the split level.
	if cCount > 0 {
		pr.CPUPhase += m.cpuLevel(cCount*scale(m.L), m.Leaf)
		for i := m.L - 1; i >= s; i-- {
			pr.CPUPhase += m.cpuLevel(cCount*scale(i), m.F(m.size(i)))
		}
	}
	// GPU chain: its portion, leaves up to the transfer level.
	if gCount > 0 {
		kLeaf := gCount * scale(m.L)
		pr.GPUPhase += m.gpuLevel(kLeaf, m.Leaf)
		gpuWork += kLeaf * m.Leaf
		for i := m.L - 1; i >= y; i-- {
			k := gCount * scale(i)
			pr.GPUPhase += m.gpuLevel(k, m.F(m.size(i)))
			gpuWork += k * m.F(m.size(i))
		}
		// Above the transfer level the GPU portion finishes on the CPU.
		for i := y - 1; i >= s; i-- {
			pr.Tail += m.cpuLevel(gCount*scale(i), m.F(m.size(i)))
		}
	}
	// Joint levels above the split.
	for i := s - 1; i >= 0; i-- {
		pr.Tail += m.cpuLevel(m.tasks(i), m.F(m.size(i)))
	}
	pr.Makespan = math.Max(pr.CPUPhase, pr.GPUPhase) + pr.Tail
	pr.GPUWorkFraction = gpuWork / m.SequentialTime()
	return pr, nil
}

// PredictBasic evaluates the basic division (§5.1) with the GPU running all
// levels at and below the crossover.
func (m Numeric) PredictBasic(crossover int) (float64, error) {
	if crossover < 0 || crossover > m.L {
		return 0, fmt.Errorf("model: crossover %d out of range [0,%d]: %w", crossover, m.L, dcerr.ErrBadLevel)
	}
	var t float64
	for i := 0; i < crossover; i++ {
		t += m.cpuLevel(m.tasks(i), m.F(m.size(i)))
	}
	for i := crossover; i < m.L; i++ {
		t += m.gpuLevel(m.tasks(i), m.F(m.size(i)))
	}
	t += m.gpuLevel(m.tasks(m.L), m.Leaf)
	return t, nil
}

// PredictBasicParts decomposes PredictBasic(crossover) into its CPU and GPU
// unit times, so an online calibrator can scale each side by an observed
// per-unit rate before summing (internal/autotune). PredictBasic(x) equals
// the sum of the two parts.
func (m Numeric) PredictBasicParts(crossover int) (cpu, gpu float64, err error) {
	if crossover < 0 || crossover > m.L {
		return 0, 0, fmt.Errorf("model: crossover %d out of range [0,%d]: %w", crossover, m.L, dcerr.ErrBadLevel)
	}
	for i := 0; i < crossover; i++ {
		cpu += m.cpuLevel(m.tasks(i), m.F(m.size(i)))
	}
	for i := crossover; i < m.L; i++ {
		gpu += m.gpuLevel(m.tasks(i), m.F(m.size(i)))
	}
	gpu += m.gpuLevel(m.tasks(m.L), m.Leaf)
	return cpu, gpu, nil
}

// PredictBreadthFirstCPU is the level-parallel CPU-only makespan: every
// level at full width on the p-core CPU, leaves included.
func (m Numeric) PredictBreadthFirstCPU() float64 {
	t := m.cpuLevel(m.tasks(m.L), m.Leaf)
	for i := 0; i < m.L; i++ {
		t += m.cpuLevel(m.tasks(i), m.F(m.size(i)))
	}
	return t
}

// PredictGPUOnly is the all-device makespan (PredictBasic with the crossover
// at the root): every level breadth-first on the GPU. Link cost is not
// included, as in §3.2; calibrated callers add their fitted transfer model.
func (m Numeric) PredictGPUOnly() float64 {
	t, _ := m.PredictBasic(0)
	return t
}

// DefaultSplit mirrors core.DefaultSplit: ⌈log_a(p/α)⌉ clamped to [0, y].
func (m Numeric) DefaultSplit(alpha float64, y int) int {
	if alpha <= 0 {
		return 0
	}
	s := 0
	for alpha*m.tasks(s) < float64(m.Mach.P) && s < y {
		s++
	}
	return s
}

// BestAdvanced searches (α, y) for the minimum predicted makespan, with the
// split level at its default. alphaSteps controls the grid resolution.
func (m Numeric) BestAdvanced(alphaSteps int) (alpha float64, y int, best Prediction) {
	if alphaSteps < 2 {
		alphaSteps = 100
	}
	best.Makespan = math.Inf(1)
	for yi := 0; yi <= m.L; yi++ {
		for i := 1; i < alphaSteps; i++ {
			a := float64(i) / float64(alphaSteps)
			s := m.DefaultSplit(a, yi)
			pr, err := m.PredictAdvanced(a, yi, s)
			if err == nil && pr.Makespan < best.Makespan {
				best, alpha, y = pr, a, yi
			}
		}
	}
	return alpha, y, best
}
