package model

import (
	"fmt"
	"math"

	"repro/internal/dcerr"
)

// ExtendedParams augment the abstract HPU model with the costs §7 of the
// paper proposes to add in future work: explicit host↔device transfers
// (λ + δ·w), kernel launch and thread dispatch overheads, GPU latency
// hiding, and CPU cache/memory-bandwidth contention. The fields mirror the
// simulator's calibration so the extended model is its fast analytic twin.
type ExtendedParams struct {
	// CoreRate is the CPU core rate R in normalized ops per second.
	CoreRate float64
	// MemBW is the aggregate out-of-cache op rate shared by streaming
	// cores.
	MemBW float64
	// LLCBytes is the shared last-level cache capacity.
	LLCBytes int64
	// BytesPerSize converts one unit of subproblem size into working-set
	// bytes (mergesort touches 8 B per element: source + destination).
	BytesPerSize float64
	// TransferBytesPerSize converts one unit of size into link bytes
	// (mergesort ships 4 B per element).
	TransferBytesPerSize float64
	// HideFactor is the GPU's latency-hiding factor H.
	HideFactor float64
	// Divergent marks the combine kernel as running at γ per lane even
	// when saturated (true for one-merge-per-thread).
	Divergent bool
	// LaunchSec is the per-kernel-launch overhead.
	LaunchSec float64
	// DispatchSec is the per-chunk CPU dispatch overhead.
	DispatchSec float64
	// LinkLatencySec and LinkSecPerByte are the λ and δ of the link.
	LinkLatencySec float64
	LinkSecPerByte float64
}

// Validate reports whether the parameters are usable.
func (p ExtendedParams) Validate() error {
	if p.CoreRate <= 0 || p.MemBW <= 0 {
		return fmt.Errorf("model: extended rates must be positive, got R=%g B=%g: %w", p.CoreRate, p.MemBW, dcerr.ErrBadParam)
	}
	if p.LLCBytes <= 0 {
		return fmt.Errorf("model: LLCBytes must be positive, got %d: %w", p.LLCBytes, dcerr.ErrBadParam)
	}
	if p.HideFactor < 1 {
		return fmt.Errorf("model: HideFactor must be >= 1, got %g: %w", p.HideFactor, dcerr.ErrBadParam)
	}
	if p.BytesPerSize < 0 || p.TransferBytesPerSize < 0 {
		return fmt.Errorf("model: byte factors must be nonnegative: %w", dcerr.ErrBadParam)
	}
	if p.LaunchSec < 0 || p.DispatchSec < 0 || p.LinkLatencySec < 0 || p.LinkSecPerByte < 0 {
		return fmt.Errorf("model: overheads must be nonnegative: %w", dcerr.ErrBadParam)
	}
	return nil
}

// Extended is the §7 refined model: Numeric's level-by-level structure with
// explicit cache, communication and scheduling costs. All its predictions
// are in seconds.
type Extended struct {
	Num Numeric
	Par ExtendedParams
}

// NewExtended validates and builds an extended model.
func NewExtended(num Numeric, par ExtendedParams) (Extended, error) {
	if err := par.Validate(); err != nil {
		return Extended{}, err
	}
	return Extended{Num: num, Par: par}, nil
}

// cpuLevelSec is the CPU time for k tasks of per-task cost c ops whose batch
// working set is ws bytes, mirroring internal/simcpu.
func (e Extended) cpuLevelSec(k, c float64, ws int64) float64 {
	if k <= 0 {
		return 0
	}
	p := float64(e.Num.Mach.P)
	active := math.Min(k, p)
	rate := e.Par.CoreRate
	if ws > e.Par.LLCBytes {
		if shared := e.Par.MemBW / active; shared < rate {
			rate = shared
		}
	}
	waves := math.Ceil(k / p)
	return e.Par.DispatchSec + waves*c/rate
}

// gpuLevelSec is the device time for k work-items of effective per-item
// cost c ops, mirroring internal/simgpu.
func (e Extended) gpuLevelSec(k, c float64) float64 {
	if k <= 0 {
		return 0
	}
	g := float64(e.Num.Mach.G)
	h := e.Par.HideFactor
	satLane := e.Num.Mach.Gamma * h * e.Par.CoreRate
	itemTime := c / satLane
	slow := 1.0
	if k < g && g > 1 {
		slow = 1 + (h-1)*(g-k)/(g-1)
	}
	if e.Par.Divergent && h > slow {
		slow = h
	}
	waves := math.Max(1, k/g)
	return e.Par.LaunchSec + itemTime*slow*waves
}

// transferSec is one λ + δ·w link crossing for `size` units of data.
func (e Extended) transferSec(size float64) float64 {
	return e.Par.LinkLatencySec + size*e.Par.TransferBytesPerSize*e.Par.LinkSecPerByte
}

// SequentialSeconds is the 1-core baseline in seconds. A single core is
// never bandwidth-capped under the calibration (B > R), matching the
// simulator.
func (e Extended) SequentialSeconds() float64 {
	return e.Num.SequentialTime() / e.Par.CoreRate
}

// PredictionSec decomposes an extended prediction (all seconds).
type PredictionSec struct {
	CPUPhase  float64
	GPUPhase  float64 // device levels plus both transfers
	Tail      float64
	Makespan  float64
	Transfers float64
}

// PredictAdvancedSeconds predicts the advanced division's makespan with all
// extended costs, mirroring core.RunAdvancedHybrid's structure.
func (e Extended) PredictAdvancedSeconds(alpha float64, y, s int) (PredictionSec, error) {
	n := e.Num
	if alpha < 0 || alpha > 1 {
		return PredictionSec{}, fmt.Errorf("model: alpha %g: %w", alpha, dcerr.ErrBadAlpha)
	}
	if y < 0 || y > n.L || s < 0 || s > y {
		return PredictionSec{}, fmt.Errorf("model: invalid levels y=%d s=%d (L=%d): %w", y, s, n.L, dcerr.ErrBadLevel)
	}
	width := n.tasks(s)
	cCount := math.Round(alpha * width)
	gCount := width - cCount
	scale := func(level int) float64 { return math.Pow(float64(n.A), float64(level-s)) }
	ws := func(k float64, level int) int64 {
		return int64(k * n.size(level) * e.Par.BytesPerSize)
	}

	var pr PredictionSec

	if cCount > 0 {
		kLeaf := cCount * scale(n.L)
		pr.CPUPhase += e.cpuLevelSec(kLeaf, n.Leaf, ws(kLeaf, n.L))
		for i := n.L - 1; i >= s; i-- {
			k := cCount * scale(i)
			pr.CPUPhase += e.cpuLevelSec(k, n.F(n.size(i)), ws(k, i))
		}
	}
	if gCount > 0 {
		portion := gCount * scale(n.L) * 1 // leaf units
		_ = portion
		sizeUnits := gCount * n.size(s)
		pr.Transfers = 2 * e.transferSec(sizeUnits)
		pr.GPUPhase += pr.Transfers
		pr.GPUPhase += e.gpuLevelSec(gCount*scale(n.L), n.Leaf)
		for i := n.L - 1; i >= y; i-- {
			pr.GPUPhase += e.gpuLevelSec(gCount*scale(i), n.F(n.size(i)))
		}
		for i := y - 1; i >= s; i-- {
			k := gCount * scale(i)
			pr.Tail += e.cpuLevelSec(k, n.F(n.size(i)), ws(k, i))
		}
	}
	for i := s - 1; i >= 0; i-- {
		k := n.tasks(i)
		pr.Tail += e.cpuLevelSec(k, n.F(n.size(i)), ws(k, i))
	}
	pr.Makespan = math.Max(pr.CPUPhase, pr.GPUPhase) + pr.Tail
	return pr, nil
}

// BestAdvancedSeconds searches (α, y) for the minimum extended-model
// makespan, the "determined analytically" path of §7 with the refined
// costs.
func (e Extended) BestAdvancedSeconds(alphaSteps int) (alpha float64, y int, best PredictionSec) {
	if alphaSteps < 2 {
		alphaSteps = 100
	}
	best.Makespan = math.Inf(1)
	for yi := 0; yi <= e.Num.L; yi++ {
		for i := 1; i < alphaSteps; i++ {
			a := float64(i) / float64(alphaSteps)
			s := e.Num.DefaultSplit(a, yi)
			pr, err := e.PredictAdvancedSeconds(a, yi, s)
			if err == nil && pr.Makespan < best.Makespan {
				best, alpha, y = pr, a, yi
			}
		}
	}
	return alpha, y, best
}
