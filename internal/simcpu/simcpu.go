// Package simcpu models a multi-core CPU under the discrete-event engine of
// internal/vtime. It implements core.LevelExecutor.
//
// The model has p identical cores. A task's service time follows the paper's
// normalized cost convention: a task of cost c (scalar ops plus weighted
// memory words) takes c/R seconds on one core, where R is the core's
// operation rate. When a batch's working set exceeds the shared last-level
// cache, the cores stream from memory and the per-core rate is capped by the
// aggregate memory bandwidth divided by the number of concurrently active
// cores — this contention is what produces the paper's observed speedup
// roll-off beyond n = 2^20 on both test platforms (§6.4).
package simcpu

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/vtime"

	"repro/internal/dcerr"
)

// Params describes a simulated CPU.
type Params struct {
	// Name identifies the processor in reports (e.g. "Intel Core 2 Extreme
	// Q6850").
	Name string
	// Cores is p, the number of cores available for processing tasks.
	Cores int
	// ClockGHz is reported in the platform spec table; it does not enter
	// the cost model directly (RateOpsPerSec does).
	ClockGHz float64
	// RateOpsPerSec is the per-core operation rate R for cache-resident
	// work, in normalized ops per second. This is the γ_c = 1 anchor of
	// the paper's model.
	RateOpsPerSec float64
	// LLCBytes is the shared last-level cache capacity.
	LLCBytes int64
	// MemBWOpsPerSec is the aggregate operation rate sustainable when the
	// working set does not fit the LLC; k active streaming cores each get
	// min(R, MemBW/k).
	MemBWOpsPerSec float64
	// MemWeight converts one 4-byte word of memory traffic into op
	// equivalents (shared convention with the GPU model so the γ estimate
	// is rate-only).
	MemWeight float64
	// DispatchOverheadSec is the fixed cost of handing a chunk of tasks to
	// a core (thread wake-up). The paper found scheduling overhead
	// negligible; keep this small but nonzero.
	DispatchOverheadSec float64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Cores <= 0 {
		return fmt.Errorf("simcpu: Cores must be positive, got %d: %w", p.Cores, dcerr.ErrBadParam)
	}
	if p.RateOpsPerSec <= 0 {
		return fmt.Errorf("simcpu: RateOpsPerSec must be positive, got %g: %w", p.RateOpsPerSec, dcerr.ErrBadParam)
	}
	if p.MemBWOpsPerSec <= 0 {
		return fmt.Errorf("simcpu: MemBWOpsPerSec must be positive, got %g: %w", p.MemBWOpsPerSec, dcerr.ErrBadParam)
	}
	if p.LLCBytes <= 0 {
		return fmt.Errorf("simcpu: LLCBytes must be positive, got %d: %w", p.LLCBytes, dcerr.ErrBadParam)
	}
	if p.MemWeight < 0 {
		return fmt.Errorf("simcpu: MemWeight must be nonnegative, got %g: %w", p.MemWeight, dcerr.ErrBadParam)
	}
	return nil
}

// CPU is a simulated multi-core processor.
type CPU struct {
	params Params
	cores  *vtime.Resource
}

var _ core.LevelExecutor = (*CPU)(nil)

// New creates a CPU bound to the given engine.
func New(eng *vtime.Engine, p Params) (*CPU, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &CPU{params: p, cores: vtime.NewResource(eng, p.Cores)}, nil
}

// Params returns the CPU's parameters.
func (c *CPU) Params() Params { return c.params }

// Parallelism reports p.
func (c *CPU) Parallelism() int { return c.params.Cores }

// BusySeconds reports accumulated core-seconds of service, for utilization
// accounting.
func (c *CPU) BusySeconds() float64 { return c.cores.BusySeconds() }

// taskCost is the normalized op cost of one task.
func taskCost(cost core.Cost, memWeight float64) float64 {
	return cost.Ops + cost.MemWords*memWeight
}

// rate returns the effective per-core op rate given the batch working set
// and the number of concurrently active cores.
func (c *CPU) rate(workingSet int64, active int) float64 {
	r := c.params.RateOpsPerSec
	if workingSet > c.params.LLCBytes {
		if shared := c.params.MemBWOpsPerSec / float64(active); shared < r {
			r = shared
		}
	}
	return r
}

// TaskSeconds reports how long one task of the given cost takes on one core
// with `active` cores streaming concurrently. Exposed for the estimation
// harness (Fig 6) and the analytic model calibration.
func (c *CPU) TaskSeconds(cost core.Cost, active int) float64 {
	return taskCost(cost, c.params.MemWeight) / c.rate(cost.WorkingSet, active)
}

// Submit implements core.LevelExecutor. The batch's functional work runs
// eagerly on host memory (order within the batch is unspecified, tasks are
// independent by contract); its cost is then split into at most p chunks
// that occupy cores under FIFO contention with any concurrently submitted
// batches.
func (c *CPU) Submit(b core.Batch, done func()) {
	if b.Empty() {
		if done != nil {
			done()
		}
		return
	}
	if b.Run != nil {
		for i := 0; i < b.Tasks; i++ {
			b.Run(i)
		}
	}
	chunks := c.params.Cores
	if b.Tasks < chunks {
		chunks = b.Tasks
	}
	join := done
	if join == nil {
		join = func() {}
	}
	finished := core.Join(chunks, join)
	perTask := taskCost(b.Cost, c.params.MemWeight)
	memPerTask := b.Cost.MemWords * c.params.MemWeight
	base, rem := b.Tasks/chunks, b.Tasks%chunks
	lo := 0
	for i := 0; i < chunks; i++ {
		n := base
		if i < rem {
			n++
		}
		var chunkOps float64
		if b.CostOps != nil {
			// Heterogeneous batch: sum the chunk's exact task costs.
			for t := lo; t < lo+n; t++ {
				chunkOps += b.CostOps(t) + memPerTask
			}
		} else {
			chunkOps = float64(n) * perTask
		}
		lo += n
		ws := b.Cost.WorkingSet
		c.cores.Request(func(active int) float64 {
			return c.params.DispatchOverheadSec + chunkOps/c.rate(ws, active)
		}, finished)
	}
}
