package simcpu

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/vtime"
)

func params() Params {
	return Params{
		Name: "test", Cores: 4, ClockGHz: 3,
		RateOpsPerSec: 1e8, LLCBytes: 1 << 20, MemBWOpsPerSec: 2e8,
		MemWeight: 0.5, DispatchOverheadSec: 0,
	}
}

func newCPU(t *testing.T, p Params) (*vtime.Engine, *CPU) {
	t.Helper()
	eng := vtime.New()
	c, err := New(eng, p)
	if err != nil {
		t.Fatal(err)
	}
	return eng, c
}

func TestValidation(t *testing.T) {
	bad := []Params{
		{},
		{Cores: 4},
		{Cores: 4, RateOpsPerSec: 1},
		{Cores: 4, RateOpsPerSec: 1, MemBWOpsPerSec: 1},
		{Cores: 4, RateOpsPerSec: 1, MemBWOpsPerSec: 1, LLCBytes: 1, MemWeight: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
	if err := params().Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestPerfectScalingInCache(t *testing.T) {
	// 4 cores, 4 equal tasks fitting in cache: time = one task's time.
	eng, c := newCPU(t, params())
	b := core.Batch{Tasks: 4, Cost: core.Cost{Ops: 1e8}}
	c.Submit(b, nil)
	eng.Run()
	if got := eng.Now(); math.Abs(got-1) > 1e-9 {
		t.Errorf("4 tasks on 4 cores took %g, want 1", got)
	}
}

func TestSerialTaskUsesOneCore(t *testing.T) {
	eng, c := newCPU(t, params())
	c.Submit(core.Batch{Tasks: 1, Cost: core.Cost{Ops: 2e8}}, nil)
	eng.Run()
	if got := eng.Now(); math.Abs(got-2) > 1e-9 {
		t.Errorf("single task took %g, want 2", got)
	}
}

func TestBandwidthContention(t *testing.T) {
	// Out-of-cache batches: 4 streaming cores share MemBW (2e8), so per
	// core 5e7 — four 1e8-op tasks take 2s instead of 1s.
	eng, c := newCPU(t, params())
	b := core.Batch{Tasks: 4, Cost: core.Cost{Ops: 1e8, WorkingSet: 4 << 20}}
	c.Submit(b, nil)
	eng.Run()
	if got := eng.Now(); math.Abs(got-2) > 1e-9 {
		t.Errorf("contended batch took %g, want 2", got)
	}
	// A single out-of-cache task is not slowed (MemBW/1 > core rate).
	eng2, c2 := newCPU(t, params())
	c2.Submit(core.Batch{Tasks: 1, Cost: core.Cost{Ops: 1e8, WorkingSet: 4 << 20}}, nil)
	eng2.Run()
	if got := eng2.Now(); math.Abs(got-1) > 1e-9 {
		t.Errorf("single streaming task took %g, want 1", got)
	}
}

func TestMemWeightCounts(t *testing.T) {
	eng, c := newCPU(t, params())
	// 1e8 words at weight 0.5 = 5e7 op-equivalents.
	c.Submit(core.Batch{Tasks: 1, Cost: core.Cost{MemWords: 1e8}}, nil)
	eng.Run()
	if got := eng.Now(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("memory-only task took %g, want 0.5", got)
	}
}

func TestFunctionalExecution(t *testing.T) {
	eng, c := newCPU(t, params())
	hits := make([]int, 10)
	c.Submit(core.Batch{Tasks: 10, Cost: core.Cost{Ops: 1}, Run: func(i int) { hits[i]++ }}, nil)
	eng.Run()
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("task %d ran %d times", i, h)
		}
	}
}

func TestEmptyBatch(t *testing.T) {
	_, c := newCPU(t, params())
	called := false
	c.Submit(core.Batch{}, func() { called = true })
	if !called {
		t.Error("empty batch done not called")
	}
}

func TestConcurrentBatchesShareCores(t *testing.T) {
	// Two 2-task batches on 4 cores run fully in parallel.
	eng, c := newCPU(t, params())
	b := core.Batch{Tasks: 2, Cost: core.Cost{Ops: 1e8}}
	c.Submit(b, nil)
	c.Submit(b, nil)
	eng.Run()
	if got := eng.Now(); math.Abs(got-1) > 1e-9 {
		t.Errorf("two 2-task batches took %g, want 1", got)
	}
	if got := c.BusySeconds(); math.Abs(got-4) > 1e-9 {
		t.Errorf("BusySeconds = %g, want 4", got)
	}
}

func TestTaskSeconds(t *testing.T) {
	_, c := newCPU(t, params())
	cost := core.Cost{Ops: 1e8, MemWords: 2e8, WorkingSet: 1}
	// 1e8 + 2e8·0.5 = 2e8 ops at 1e8/s.
	if got := c.TaskSeconds(cost, 1); math.Abs(got-2) > 1e-9 {
		t.Errorf("TaskSeconds = %g, want 2", got)
	}
}
