package ascii

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestRenderSeriesBasics(t *testing.T) {
	ch := Chart{Width: 40, Height: 10}
	pts := []stats.Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 4}, {X: 3, Y: 9}}
	out := ch.RenderSeries([]string{"squares"}, [][]stats.Point{pts})
	if !strings.Contains(out, "squares") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("marker missing")
	}
	if lines := strings.Count(out, "\n"); lines < 12 {
		t.Errorf("output has %d lines, want >= 12", lines)
	}
}

func TestRenderMultipleSeriesDistinctMarkers(t *testing.T) {
	ch := Chart{Width: 40, Height: 10}
	a := []stats.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}
	b := []stats.Point{{X: 0, Y: 1}, {X: 1, Y: 0}}
	out := ch.RenderSeries([]string{"a", "b"}, [][]stats.Point{a, b})
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Errorf("expected two distinct markers:\n%s", out)
	}
}

func TestLogXSkipsNonPositive(t *testing.T) {
	ch := Chart{Width: 40, Height: 10, LogX: true}
	pts := []stats.Point{{X: -1, Y: 5}, {X: 0, Y: 5}, {X: 10, Y: 1}, {X: 100, Y: 2}, {X: 1000, Y: 3}}
	out := ch.RenderSeries([]string{"s"}, [][]stats.Point{pts})
	if strings.Contains(out, "no data") {
		t.Error("log chart dropped all data")
	}
}

func TestDegenerateInputs(t *testing.T) {
	ch := Chart{Width: 40, Height: 10}
	if out := ch.RenderSeries([]string{"s"}, [][]stats.Point{nil}); out != "(no data)" {
		t.Errorf("empty series = %q", out)
	}
	small := Chart{Width: 2, Height: 2}
	if out := small.RenderSeries([]string{"s"}, [][]stats.Point{{{X: 1, Y: 1}}}); out != "(chart too small)" {
		t.Errorf("tiny chart = %q", out)
	}
	if out := ch.RenderSeries([]string{"a", "b"}, [][]stats.Point{{{X: 1, Y: 1}}}); !strings.Contains(out, "mismatched") {
		t.Errorf("mismatch = %q", out)
	}
	// A single point (degenerate ranges) must not divide by zero.
	out := ch.RenderSeries([]string{"one"}, [][]stats.Point{{{X: 5, Y: 5}}})
	if !strings.Contains(out, "*") {
		t.Error("single point not plotted")
	}
}

func TestRenderTable(t *testing.T) {
	out := RenderTable([]string{"name", "value"}, [][]string{
		{"alpha", "0.16"},
		{"longer-name", "10"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[1], "---") {
		t.Errorf("header malformed:\n%s", out)
	}
	// Columns align: every row starts "name-column" padded to same width.
	if len(lines[2]) < len("longer-name") {
		t.Error("column not padded to widest cell")
	}
}
