// Package ascii renders simple line charts and aligned tables as text, so
// the cmd tools can show reproduced figures directly in a terminal.
package ascii

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/stats"
)

// markers distinguishes series in a chart, in order.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Chart renders named series into a width×height character grid with
// numeric axis labels. If logX is set, x values are spread on a log scale
// (all x must then be positive).
type Chart struct {
	Width, Height int
	LogX          bool
	LogY          bool
}

// DefaultChart returns a terminal-friendly chart size.
func DefaultChart() Chart { return Chart{Width: 72, Height: 20} }

type namedSeries struct {
	name   string
	points []stats.Point
}

// Render draws the series. Series are (name, points) pairs supplied via
// AddTo; the convenience function RenderSeries covers the common case.
func (c Chart) render(series []namedSeries) string {
	if c.Width < 16 || c.Height < 4 {
		return "(chart too small)"
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	tx := func(x float64) float64 {
		if c.LogX {
			return math.Log(x)
		}
		return x
	}
	ty := func(y float64) float64 {
		if c.LogY {
			return math.Log(y)
		}
		return y
	}
	n := 0
	for _, s := range series {
		for _, p := range s.points {
			if c.LogX && p.X <= 0 || c.LogY && p.Y <= 0 {
				continue
			}
			minX, maxX = math.Min(minX, tx(p.X)), math.Max(maxX, tx(p.X))
			minY, maxY = math.Min(minY, ty(p.Y)), math.Max(maxY, ty(p.Y))
			n++
		}
	}
	if n == 0 {
		return "(no data)"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, c.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", c.Width))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for _, p := range s.points {
			if c.LogX && p.X <= 0 || c.LogY && p.Y <= 0 {
				continue
			}
			col := int((tx(p.X) - minX) / (maxX - minX) * float64(c.Width-1))
			row := c.Height - 1 - int((ty(p.Y)-minY)/(maxY-minY)*float64(c.Height-1))
			grid[row][col] = mark
		}
	}

	var b strings.Builder
	inv := func(v float64, log bool) float64 {
		if log {
			return math.Exp(v)
		}
		return v
	}
	for i, row := range grid {
		yv := inv(maxY-(maxY-minY)*float64(i)/float64(c.Height-1), c.LogY)
		fmt.Fprintf(&b, "%10.4g |%s\n", yv, string(row))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", c.Width))
	left := fmt.Sprintf("%.4g", inv(minX, c.LogX))
	right := fmt.Sprintf("%.4g", inv(maxX, c.LogX))
	pad := c.Width - len(left) - len(right)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%10s  %s%s%s\n", "", left, strings.Repeat(" ", pad), right)
	for si, s := range series {
		fmt.Fprintf(&b, "%12c %s\n", markers[si%len(markers)], s.name)
	}
	return b.String()
}

// RenderSeries draws one or more named series.
func (c Chart) RenderSeries(names []string, pts [][]stats.Point) string {
	if len(names) != len(pts) {
		return "(mismatched series names and points)"
	}
	series := make([]namedSeries, len(names))
	for i := range names {
		series[i] = namedSeries{name: names[i], points: pts[i]}
	}
	return c.render(series)
}

// RenderTable formats rows with aligned columns.
func RenderTable(columns []string, rows [][]string) string {
	widths := make([]int, len(columns))
	for i, c := range columns {
		widths[i] = len(c)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(columns)
	sep := make([]string, len(columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
