package mempool

import (
	"strings"
	"sync"
	"testing"
)

// withCleanPool gives each test an isolated view of the global switches
// and empty freelists, restoring the defaults afterwards.
func withCleanPool(t *testing.T) {
	t.Helper()
	ResetAll()
	SetEnabled(true)
	SetPoison(false)
	t.Cleanup(func() {
		ResetAll()
		SetEnabled(true)
		SetPoison(false)
	})
}

func TestClassRounding(t *testing.T) {
	cases := []struct {
		n    int
		want int // expected capacity class in elements; 0 = oversize
	}{
		{1, 64}, {63, 64}, {64, 64}, {65, 128}, {128, 128}, {129, 256},
		{1000, 1024}, {1024, 1024}, {1025, 2048},
		{1 << 20, 1 << 20}, {1<<20 + 1, 1 << 21},
		{1 << 24, 1 << 24}, {1<<24 + 1, 0},
	}
	for _, tc := range cases {
		ci := classFor(tc.n)
		if tc.want == 0 {
			if ci != -1 {
				t.Errorf("classFor(%d) = %d, want oversize", tc.n, ci)
			}
			continue
		}
		if ci < 0 || 1<<(minShift+ci) != tc.want {
			t.Errorf("classFor(%d) = class %d, want capacity %d", tc.n, ci, tc.want)
		}
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	withCleanPool(t)
	p := New[int32]("test")

	a := p.Get(100)
	if len(a) != 100 || cap(a) != 128 {
		t.Fatalf("Get(100): len=%d cap=%d, want 100/128", len(a), cap(a))
	}
	p.Put(a)
	b := p.Get(120)
	if cap(b) != 128 {
		t.Fatalf("Get(120) after Put: cap=%d, want reuse of 128-class", cap(b))
	}
	st := p.Stats()
	var hits, misses uint64
	for _, c := range st.Classes {
		hits += c.Hits
		misses += c.Misses
	}
	if hits != 1 || misses != 1 {
		t.Fatalf("stats: hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestOversizeBypassesPool(t *testing.T) {
	withCleanPool(t)
	p := New[byte]("test")
	s := p.Get(1<<24 + 1)
	if len(s) != 1<<24+1 {
		t.Fatalf("oversize Get returned len %d", len(s))
	}
	p.Put(s) // must be a silent drop
	if st := p.Stats(); st.RetainedBytes != 0 || st.Oversize != 1 {
		t.Fatalf("oversize leaked into pool: %+v", st)
	}
}

func TestForeignCapacityDropped(t *testing.T) {
	withCleanPool(t)
	p := New[int64]("test")
	p.Put(make([]int64, 100)) // cap 100 is not a class
	if st := p.Stats(); st.RetainedBytes != 0 {
		t.Fatalf("foreign-capacity buffer retained: %+v", st)
	}
}

func TestDisabledBypasses(t *testing.T) {
	withCleanPool(t)
	SetEnabled(false)
	p := New[int32]("test")
	s := p.Get(64)
	p.Put(s)
	if st := p.Stats(); st.RetainedBytes != 0 {
		t.Fatalf("disabled pool retained bytes: %+v", st)
	}
}

func TestBudgetDiscards(t *testing.T) {
	withCleanPool(t)
	p := New[byte]("test")
	// Fill the 16Mi-element (16 MiB) byte class past its 32 MiB budget.
	bufs := make([][]byte, 3)
	for i := range bufs {
		bufs[i] = make([]byte, 1<<24)
	}
	for _, b := range bufs {
		p.Put(b)
	}
	st := p.Stats()
	var discards uint64
	for _, c := range st.Classes {
		discards += c.Discards
	}
	if st.RetainedBytes > classBudgetBytes {
		t.Fatalf("retained %d bytes exceeds class budget %d", st.RetainedBytes, int64(classBudgetBytes))
	}
	if discards == 0 {
		t.Fatalf("expected at least one discard past the budget, stats %+v", st)
	}
}

func TestConcurrentGetPut(t *testing.T) {
	withCleanPool(t)
	p := New[int32]("test")
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			sizes := []int{17, 64, 100, 1024, 5000, 1 << 15}
			for i := 0; i < 2000; i++ {
				n := sizes[(i+seed)%len(sizes)]
				s := p.Get(n)
				if len(s) != n {
					panic("short buffer")
				}
				s[0], s[n-1] = int32(seed), int32(i)
				p.Put(s)
			}
		}(w)
	}
	wg.Wait()
	st := p.Stats()
	var total uint64
	for _, c := range st.Classes {
		total += c.Hits + c.Misses
	}
	if want := uint64(workers * 2000); total != want {
		t.Fatalf("accounted %d gets, want %d", total, want)
	}
}

func TestPoisonCatchesUseAfterPut(t *testing.T) {
	withCleanPool(t)
	SetPoison(true)
	p := New[int32]("poisoned")

	s := p.Get(64)
	p.Put(s)
	s[3] = 42 // seeded use-after-put: writing through a stale lease

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("poison mode did not catch the seeded use-after-put")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "use-after-put") || !strings.Contains(msg, "poisoned") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	p.Get(64) // reuse must verify the poison pattern and panic
}

func TestPoisonCleanReuse(t *testing.T) {
	withCleanPool(t)
	SetPoison(true)
	p := New[int64]("test")
	s := p.Get(128)
	for i := range s {
		s[i] = int64(i)
	}
	p.Put(s)
	r := p.Get(128) // untouched while free: must reuse without panicking
	if cap(r) != 128 {
		t.Fatalf("expected clean poisoned reuse, got cap %d", cap(r))
	}
}

func TestRetainedBytesAccounting(t *testing.T) {
	withCleanPool(t)
	base := TotalRetainedBytes()
	s := Int32s.Get(1024)
	Int32s.Put(s)
	if got := TotalRetainedBytes() - base; got != 4096 {
		t.Fatalf("retained delta = %d bytes, want 4096", got)
	}
	_ = Int32s.Get(1024)
	if got := TotalRetainedBytes() - base; got != 0 {
		t.Fatalf("retained delta after re-lease = %d, want 0", got)
	}
}

func BenchmarkGetPut(b *testing.B) {
	p := New[int32]("bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s := p.Get(4096)
			s[0] = 1
			p.Put(s)
		}
	})
}
