// Package mempool is a size-classed buffer pool for the hot paths of the
// serving stack. The paper's HPU cost model charges λ + δ·w per transfer
// and the scheduling layers above already minimize launches; what remains
// on the profile is the allocate-copy-free tax paid per job by the
// executors (per-level scratch), the backends (staging segments) and the
// wire layer (encode/decode buffers). This package makes those buffers a
// leased, measured resource instead of garbage.
//
// Design:
//
//   - Power-of-two size classes from 64 elements up to 1<<24 elements.
//     Get(n) rounds n up to the smallest class and returns a slice of
//     len n from that class's freelist (or a fresh allocation on miss);
//     Put returns the slice to its class. Oversize requests bypass the
//     pool entirely.
//   - Each class retains at most a fixed byte budget; beyond it, Put
//     discards the buffer to the garbage collector so bursty workloads
//     cannot pin unbounded memory.
//   - Per-class hit/miss/put/discard counts and retained bytes are
//     available through Stats; aggregate counters can be attached to a
//     metrics.Registry with SetMetrics (nil-safe, zero cost when unset).
//   - Returned buffers have UNSPECIFIED contents. Callers must fully
//     write every element they will later read. All current users
//     (ping-pong merge buffers, scan/sum vectors initialized from input,
//     wire staging) satisfy this, which is what keeps results
//     bit-identical with pooling on.
//   - HPU_NOPOOL=1 (or SetEnabled(false)) disables pooling globally:
//     Get degrades to make, Put to a no-op. This is the A/B escape
//     hatch pinned by the identity tests.
//   - HPU_POOLPOISON=1 (or SetPoison(true)) enables the use-after-put
//     detector: Put fills the buffer with a poison pattern and Get
//     verifies the pattern is intact before reuse, panicking if any
//     element was overwritten while the buffer sat in the freelist.
//
// The pool is safe for concurrent use; every class is guarded by its own
// mutex and the global switches are atomics, so it is race-detector clean.
package mempool

import (
	"fmt"
	"math/bits"
	"os"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/metrics"
)

// Scalar is the set of element types the pool serves. All are plain
// fixed-size machine scalars, so pooled backing arrays carry no pointers
// and never extend object lifetimes.
type Scalar interface {
	~byte | ~int32 | ~int64 | ~int | ~float64
}

const (
	minShift = 6  // smallest class: 64 elements
	maxShift = 24 // largest class: 16Mi elements
	classes  = maxShift - minShift + 1

	// classBudgetBytes caps the bytes each class may retain. With 19
	// classes per typed pool this bounds worst-case retention per pool
	// at classes*classBudgetBytes, though steady-state workloads touch
	// only a few classes.
	classBudgetBytes = 32 << 20

	// poisonByte seeds the per-type poison value. 0x5A is unlikely to
	// survive a legitimate full rewrite of a buffer by accident.
	poisonByte = 0x5A
)

var (
	enabled   atomic.Bool
	poisoning atomic.Bool

	// Aggregate instruments across every typed pool. All nil-safe.
	mHits     atomic.Pointer[metrics.Counter]
	mMisses   atomic.Pointer[metrics.Counter]
	mDiscards atomic.Pointer[metrics.Counter]
	mRetained atomic.Pointer[metrics.Gauge]

	// retainedBytes tracks bytes currently parked across all pools, for
	// the shared gauge and for leak tests via TotalRetainedBytes.
	retainedBytes atomic.Int64
)

func init() {
	enabled.Store(os.Getenv("HPU_NOPOOL") != "1")
	poisoning.Store(os.Getenv("HPU_POOLPOISON") == "1")
}

// SetEnabled switches pooling on or off globally. Buffers already leased
// remain valid either way; disabling only changes what Get and Put do
// next. Intended for tests and A/B benchmarking (HPU_NOPOOL=1 sets the
// initial state).
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether pooling is active.
func Enabled() bool { return enabled.Load() }

// SetPoison switches the use-after-put detector on or off
// (HPU_POOLPOISON=1 sets the initial state).
func SetPoison(on bool) { poisoning.Store(on) }

// Poisoning reports whether the use-after-put detector is active.
func Poisoning() bool { return poisoning.Load() }

// SetMetrics attaches aggregate pool instruments to r:
//
//	mempool_hits_total      freelist hits across all pools
//	mempool_misses_total    Gets served by a fresh allocation
//	mempool_discards_total  Puts dropped by a full class budget
//	mempool_retained_bytes  bytes currently parked in freelists
//
// A nil registry detaches (the default state observes nothing and costs
// one atomic load per event).
func SetMetrics(r *metrics.Registry) {
	if r == nil {
		mHits.Store(nil)
		mMisses.Store(nil)
		mDiscards.Store(nil)
		mRetained.Store(nil)
		return
	}
	mHits.Store(r.Counter("mempool_hits_total"))
	mMisses.Store(r.Counter("mempool_misses_total"))
	mDiscards.Store(r.Counter("mempool_discards_total"))
	mRetained.Store(r.Gauge("mempool_retained_bytes"))
}

func addRetained(delta int64) {
	n := retainedBytes.Add(delta)
	mRetained.Load().Set(n)
}

// class holds one size class's freelist and counters, all under one mutex.
type class[T Scalar] struct {
	mu       sync.Mutex
	free     [][]T
	held     int64 // bytes currently retained in free
	hits     uint64
	misses   uint64
	puts     uint64
	discards uint64
}

// Pool is a size-classed freelist of []T buffers. The zero value is not
// usable; construct with New. Package-level typed pools (Bytes, Int32s,
// Int64s, Ints, Float64s) cover every element type used on the hot path
// and share the global enable/poison/metrics switches.
type Pool[T Scalar] struct {
	name     string
	classes  [classes]class[T]
	oversize atomic.Uint64 // Gets too large for any class
}

// New returns an empty pool. name labels it in Stats output.
func New[T Scalar](name string) *Pool[T] {
	return &Pool[T]{name: name}
}

// Typed pools shared across the repo. Layers lease from these rather than
// constructing their own so the budget, stats and leak tests see one
// global picture.
var (
	Bytes    = New[byte]("byte")
	Int32s   = New[int32]("int32")
	Int64s   = New[int64]("int64")
	Ints     = New[int]("int")
	Float64s = New[float64]("float64")
)

// classFor returns the class index whose capacity (1<<(minShift+idx))
// is the smallest holding n elements, or -1 if n exceeds every class.
func classFor(n int) int {
	if n <= 1<<minShift {
		return 0
	}
	shift := bits.Len(uint(n - 1)) // ceil(log2(n))
	if shift > maxShift {
		return -1
	}
	return shift - minShift
}

func elemSize[T Scalar]() int64 {
	var z T
	return int64(unsafe.Sizeof(z))
}

func poisonVal[T Scalar]() T {
	return T(poisonByte)
}

// Get leases a buffer of length n with unspecified contents. The caller
// must write every element before reading it and should hand the buffer
// back with Put when its lease ends. n <= 0 returns nil.
func (p *Pool[T]) Get(n int) []T {
	if n <= 0 {
		return nil
	}
	if !enabled.Load() {
		return make([]T, n)
	}
	ci := classFor(n)
	if ci < 0 {
		p.oversize.Add(1)
		mMisses.Load().Inc()
		return make([]T, n)
	}
	c := &p.classes[ci]
	c.mu.Lock()
	if k := len(c.free); k > 0 {
		buf := c.free[k-1]
		c.free[k-1] = nil
		c.free = c.free[:k-1]
		c.held -= int64(cap(buf)) * elemSize[T]()
		c.hits++
		c.mu.Unlock()
		addRetained(-int64(cap(buf)) * elemSize[T]())
		mHits.Load().Inc()
		if poisoning.Load() {
			verifyPoison(p.name, buf)
		}
		return buf[:n]
	}
	c.misses++
	c.mu.Unlock()
	mMisses.Load().Inc()
	return make([]T, n, 1<<(minShift+ci))
}

// Put returns a leased buffer to its class. Buffers whose capacity is not
// a pool class (or anything when pooling is disabled) are dropped for the
// garbage collector; so are buffers that would push the class past its
// retention budget. Put(nil) is a no-op. The caller must not touch the
// slice after Put.
func (p *Pool[T]) Put(s []T) {
	if cap(s) == 0 || !enabled.Load() {
		return
	}
	ci := classFor(cap(s))
	if ci < 0 || cap(s) != 1<<(minShift+ci) {
		// Not one of ours (or oversize): let the GC have it.
		return
	}
	if poisoning.Load() {
		fillPoison(s[:cap(s)])
	}
	bytes := int64(cap(s)) * elemSize[T]()
	c := &p.classes[ci]
	c.mu.Lock()
	c.puts++
	if c.held+bytes > classBudgetBytes {
		c.discards++
		c.mu.Unlock()
		mDiscards.Load().Inc()
		return
	}
	c.free = append(c.free, s[:cap(s)])
	c.held += bytes
	c.mu.Unlock()
	addRetained(bytes)
}

func fillPoison[T Scalar](s []T) {
	pv := poisonVal[T]()
	for i := range s {
		s[i] = pv
	}
}

func verifyPoison[T Scalar](name string, s []T) {
	pv := poisonVal[T]()
	for i := range s {
		if s[i] != pv {
			panic(fmt.Sprintf(
				"mempool: use-after-put detected in pool %q: element %d of a pooled buffer (cap %d) was modified while free",
				name, i, cap(s)))
		}
	}
}

// ClassStats is one size class's counters.
type ClassStats struct {
	Elems         int    `json:"elems"` // class capacity in elements
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Puts          uint64 `json:"puts"`
	Discards      uint64 `json:"discards"`
	Retained      int    `json:"retained"` // buffers currently parked
	RetainedBytes int64  `json:"retained_bytes"`
}

// PoolStats is a point-in-time snapshot of one pool. Classes with no
// activity are omitted.
type PoolStats struct {
	Name          string       `json:"name"`
	Oversize      uint64       `json:"oversize"`
	RetainedBytes int64        `json:"retained_bytes"`
	Classes       []ClassStats `json:"classes"`
}

// Stats snapshots the pool's per-class counters.
func (p *Pool[T]) Stats() PoolStats {
	st := PoolStats{Name: p.name, Oversize: p.oversize.Load()}
	for i := range p.classes {
		c := &p.classes[i]
		c.mu.Lock()
		cs := ClassStats{
			Elems:         1 << (minShift + i),
			Hits:          c.hits,
			Misses:        c.misses,
			Puts:          c.puts,
			Discards:      c.discards,
			Retained:      len(c.free),
			RetainedBytes: c.held,
		}
		c.mu.Unlock()
		if cs.Hits|cs.Misses|cs.Puts|cs.Discards == 0 && cs.Retained == 0 {
			continue
		}
		st.RetainedBytes += cs.RetainedBytes
		st.Classes = append(st.Classes, cs)
	}
	return st
}

// Reset drops every retained buffer (counters are kept). Used by tests to
// establish a clean baseline.
func (p *Pool[T]) Reset() {
	for i := range p.classes {
		c := &p.classes[i]
		c.mu.Lock()
		freed := c.held
		c.free = nil
		c.held = 0
		c.mu.Unlock()
		if freed != 0 {
			addRetained(-freed)
		}
	}
}

// Stats snapshots every package-level typed pool.
func Stats() []PoolStats {
	return []PoolStats{
		Bytes.Stats(), Int32s.Stats(), Int64s.Stats(), Ints.Stats(), Float64s.Stats(),
	}
}

// TotalRetainedBytes reports bytes currently parked across all pools
// (package-level and any pool built with New).
func TotalRetainedBytes() int64 { return retainedBytes.Load() }

// ResetAll drops every retained buffer in the package-level typed pools.
func ResetAll() {
	Bytes.Reset()
	Int32s.Reset()
	Int64s.Reset()
	Ints.Reset()
	Float64s.Reset()
}
