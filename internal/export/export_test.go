package export

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/exp"
	"repro/internal/stats"
)

func sampleFigure() exp.Figure {
	return exp.Figure{
		ID: "figX", Title: "sample", XLabel: "n", YLabel: "speedup", LogX: true,
		Series: []exp.Series{
			{Name: "measured", Points: []stats.Point{{X: 1024, Y: 2.5}, {X: 4096, Y: 3.75}}},
			{Name: "predicted", Points: []stats.Point{{X: 1024, Y: 3}, {X: 4096, Y: 4}}},
		},
		Notes: []string{"a note"},
	}
}

func TestFigureCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFigureCSV(&buf, sampleFigure()); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("rows = %d, want 5 (header + 4 points)", len(recs))
	}
	if recs[0][0] != "series" || recs[0][1] != "n" || recs[0][2] != "speedup" {
		t.Errorf("header = %v", recs[0])
	}
	if recs[1][0] != "measured" || recs[1][1] != "1024" || recs[1][2] != "2.5" {
		t.Errorf("first row = %v", recs[1])
	}
}

func TestTableCSV(t *testing.T) {
	tab := exp.Table{
		ID: "t", Title: "t", Columns: []string{"a", "b"},
		Rows: [][]string{{"1", "x"}, {"2", "y"}},
	}
	var buf bytes.Buffer
	if err := WriteTableCSV(&buf, tab); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2][1] != "y" {
		t.Errorf("table CSV = %v", recs)
	}
}

func TestFigureJSONRoundTrip(t *testing.T) {
	want := sampleFigure()
	var buf bytes.Buffer
	if err := WriteFigureJSON(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFigureJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != want.ID || got.Title != want.Title || !got.LogX {
		t.Errorf("metadata mismatch: %+v", got)
	}
	if len(got.Series) != 2 || got.Series[1].Name != "predicted" {
		t.Fatalf("series mismatch: %+v", got.Series)
	}
	for i, s := range got.Series {
		for j, p := range s.Points {
			if p != want.Series[i].Points[j] {
				t.Errorf("point [%d][%d] = %v, want %v", i, j, p, want.Series[i].Points[j])
			}
		}
	}
}

func TestTableJSON(t *testing.T) {
	tab := exp.Table{ID: "t2", Columns: []string{"c"}, Rows: [][]string{{"v"}}}
	var buf bytes.Buffer
	if err := WriteTableJSON(&buf, tab); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"id": "t2"`, `"columns"`, `"v"`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %q:\n%s", want, s)
		}
	}
}

func TestReadFigureJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadFigureJSON(strings.NewReader("{not json")); err == nil {
		t.Error("accepted invalid JSON")
	}
}
