// Package export serializes reproduced figures and tables to CSV and JSON,
// so the regenerated evaluation can be re-plotted with external tooling
// (gnuplot, matplotlib) exactly as the paper's original data would be.
package export

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/exp"
	"repro/internal/stats"
)

// WriteFigureCSV emits one row per point: series, x, y.
func WriteFigureCSV(w io.Writer, f exp.Figure) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", f.XLabel, f.YLabel}); err != nil {
		return err
	}
	for _, s := range f.Series {
		for _, p := range s.Points {
			rec := []string{
				s.Name,
				strconv.FormatFloat(p.X, 'g', -1, 64),
				strconv.FormatFloat(p.Y, 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTableCSV emits the table with its header row.
func WriteTableCSV(w io.Writer, t exp.Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// figureJSON is the JSON shape of a figure.
type figureJSON struct {
	ID     string       `json:"id"`
	Title  string       `json:"title"`
	XLabel string       `json:"xlabel"`
	YLabel string       `json:"ylabel"`
	LogX   bool         `json:"logx,omitempty"`
	Series []seriesJSON `json:"series"`
	Notes  []string     `json:"notes,omitempty"`
}

type seriesJSON struct {
	Name   string       `json:"name"`
	Points [][2]float64 `json:"points"`
}

// WriteFigureJSON emits the figure as a single JSON document.
func WriteFigureJSON(w io.Writer, f exp.Figure) error {
	out := figureJSON{
		ID: f.ID, Title: f.Title, XLabel: f.XLabel, YLabel: f.YLabel,
		LogX: f.LogX, Notes: f.Notes,
	}
	for _, s := range f.Series {
		sj := seriesJSON{Name: s.Name, Points: make([][2]float64, len(s.Points))}
		for i, p := range s.Points {
			sj.Points[i] = [2]float64{p.X, p.Y}
		}
		out.Series = append(out.Series, sj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// tableJSON is the JSON shape of a table.
type tableJSON struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// WriteTableJSON emits the table as a single JSON document.
func WriteTableJSON(w io.Writer, t exp.Table) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tableJSON{
		ID: t.ID, Title: t.Title, Columns: t.Columns, Rows: t.Rows, Notes: t.Notes,
	})
}

// ReadFigureJSON parses a figure written by WriteFigureJSON, for round-trip
// tooling and tests.
func ReadFigureJSON(r io.Reader) (exp.Figure, error) {
	var in figureJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return exp.Figure{}, fmt.Errorf("export: decoding figure: %w", err)
	}
	f := exp.Figure{
		ID: in.ID, Title: in.Title, XLabel: in.XLabel, YLabel: in.YLabel,
		LogX: in.LogX, Notes: in.Notes,
	}
	for _, sj := range in.Series {
		s := exp.Series{Name: sj.Name}
		for _, p := range sj.Points {
			s.Points = append(s.Points, point(p))
		}
		f.Series = append(f.Series, s)
	}
	return f, nil
}

// point converts a JSON pair into a stats.Point.
func point(p [2]float64) stats.Point { return stats.Point{X: p[0], Y: p[1]} }
