package hybriddc

import (
	"context"

	"testing"

	"repro/internal/workload"
)

// TestPublicAPIQuickstart exercises the documented entry points end to end:
// build an algorithm, plan the division, run it hybrid, read the result.
func TestPublicAPIQuickstart(t *testing.T) {
	in := workload.Uniform(1<<14, 1)
	be := MustSim(HPU1())
	s, err := NewMergesort(in)
	if err != nil {
		t.Fatal(err)
	}
	alpha, y := PlanAdvanced(be, s)
	if alpha <= 0 || alpha >= 1 {
		t.Fatalf("planned alpha = %g", alpha)
	}
	if y < 0 || y > s.Levels() {
		t.Fatalf("planned y = %d", y)
	}
	rep, err := RunAdvancedHybridCtx(context.Background(), be, s, alpha, y, WithCoalesce())
	if err != nil {
		t.Fatal(err)
	}
	if !workload.IsSorted(s.Result()) {
		t.Error("result not sorted")
	}
	if rep.Seconds <= 0 {
		t.Error("nonpositive duration")
	}
}

func TestPlanAdvancedMatchesPaperExample(t *testing.T) {
	// For mergesort at n = 2^24 on HPU1, the planner must land on the
	// paper's α* ≈ 0.16, y ≈ 10 (it routes through the closed-form model).
	in := make([]int32, 1<<24)
	s, err := NewMergesort(in[:1<<24])
	if err != nil {
		t.Fatal(err)
	}
	alpha, y := PlanAdvanced(MustSim(HPU1()), s)
	if alpha < 0.12 || alpha > 0.20 {
		t.Errorf("alpha = %.3f, want ~0.16", alpha)
	}
	if y < 9 || y > 11 {
		t.Errorf("y = %d, want ~10", y)
	}
}

func TestPlanAdvancedNumericFallback(t *testing.T) {
	// The sum's f = Θ(1) is outside the closed-form family; the planner
	// must fall back to the numeric search and return valid parameters.
	in := workload.Uniform(1<<16, 2)
	s, err := NewSum(in)
	if err != nil {
		t.Fatal(err)
	}
	alpha, y := PlanAdvanced(MustSim(HPU1()), s)
	if alpha <= 0 || alpha >= 1 || y < 0 || y > s.Levels() {
		t.Errorf("numeric plan invalid: alpha=%g y=%d", alpha, y)
	}
}

func TestEstimatePlatformPublic(t *testing.T) {
	res, err := EstimatePlatform(HPU2())
	if err != nil {
		t.Fatal(err)
	}
	if res.G < 1100 || res.G > 1300 {
		t.Errorf("estimated g = %d, want ~1200", res.G)
	}
}

func TestBasicCrossoverPublic(t *testing.T) {
	x, ok := BasicCrossover(2, MachineOf(MustSim(HPU1())))
	if !ok || x != 10 {
		t.Errorf("crossover = %d/%v, want 10/true", x, ok)
	}
}

func TestAllConstructorsValidate(t *testing.T) {
	if _, err := NewMergesort(make([]int32, 3)); err == nil {
		t.Error("NewMergesort accepted bad length")
	}
	if _, err := NewParallelMergesort(make([]int32, 3)); err == nil {
		t.Error("NewParallelMergesort accepted bad length")
	}
	if _, err := NewSum(make([]int32, 3)); err == nil {
		t.Error("NewSum accepted bad length")
	}
	if _, err := NewMaxSubarray(make([]int32, 3)); err == nil {
		t.Error("NewMaxSubarray accepted bad length")
	}
	if _, err := NewKaratsuba(make([]int32, 4), make([]int32, 2)); err == nil {
		t.Error("NewKaratsuba accepted mismatched lengths")
	}
	if _, err := NewMatMul(make([]float64, 16), make([]float64, 16), 4, 9); err == nil {
		t.Error("NewMatMul accepted bad depth")
	}
}
