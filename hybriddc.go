// Package hybriddc is the public API of a generic hybrid CPU-GPU
// divide-and-conquer framework, a reproduction of
//
//	A. López-Ortiz, A. Salinger, R. Suderman. "Toward a Generic Hybrid
//	CPU-GPU Parallelization of Divide-and-Conquer Algorithms."
//	IJNC 4(1):131–150, 2014 (APDCM/IPDPSW 2013).
//
// The framework takes a recursive divide-and-conquer algorithm expressed as
// per-level task batches (the paper's breadth-first rewrite, Algorithm 2)
// and schedules it across a Hybrid Processing Unit — a p-core CPU plus a
// GPU with g effective cores of relative speed γ — using either the basic
// (§5.1, whole levels per unit) or the advanced (§5.2, α:(1−α) split with a
// single round trip) work division. The analytic model of §5 chooses α and
// the transfer level y.
//
// Two backends execute the same plans: a deterministic virtual-time
// simulator calibrated to the paper's two platforms (for reproducing its
// evaluation; Go has no GPU bindings), and a real-goroutine backend for
// multi-core execution and race testing.
//
// # Quick start
//
//	in := ...                        // a power-of-two []int32
//	sorter, _ := hybriddc.NewMergesort(in)
//	be := hybriddc.MustSim(hybriddc.HPU1())
//	alpha, y := hybriddc.PlanAdvanced(be, sorter)
//	rep, _ := hybriddc.RunAdvancedHybridCtx(context.Background(), be, sorter,
//	    alpha, y, hybriddc.WithCoalesce())
//	sorted := sorter.Result()
//
// The *Ctx executors accept a context for cancellation and functional
// options (WithCoalesce, WithSplit, WithMetrics, WithSpanRecorder, ...).
//
// See the examples/ directory for complete programs, and internal/exp for
// the drivers that regenerate every table and figure of the paper.
package hybriddc

import (
	"math"

	"repro/internal/algos/dcsum"
	"repro/internal/algos/fft"
	"repro/internal/algos/karatsuba"
	"repro/internal/algos/matmul"
	"repro/internal/algos/maxsubarray"
	"repro/internal/algos/mergesort"
	"repro/internal/algos/scan"
	"repro/internal/algos/strassen"
	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/hpu"
	"repro/internal/model"
	"repro/internal/native"
	"repro/internal/tune"
)

// Core framework types.
type (
	// Cost is the normalized per-task cost description.
	Cost = core.Cost
	// Batch is a homogeneous set of independent tasks (one level slice).
	Batch = core.Batch
	// Alg is a breadth-first divide-and-conquer algorithm.
	Alg = core.Alg
	// GPUAlg is an Alg with device kernels.
	GPUAlg = core.GPUAlg
	// Transformable is a GPUAlg supporting the §6.3 coalescing layout.
	Transformable = core.Transformable
	// Backend is an execution platform (simulated or native).
	Backend = core.Backend
	// LevelExecutor is one processing unit of a Backend.
	LevelExecutor = core.LevelExecutor
	// Report summarizes one execution.
	Report = core.Report
)

// Platforms and backends.
type (
	// Platform is a full HPU specification (CPU, GPU, link).
	Platform = hpu.Platform
	// Sim is the virtual-time simulated backend.
	Sim = hpu.Sim
	// NativeConfig configures the real-goroutine backend.
	NativeConfig = native.Config
	// Native is the real-goroutine backend.
	Native = native.Backend
)

// HPU1 returns the paper's first platform (Core 2 Q6850 + Radeon HD 5970).
func HPU1() Platform { return hpu.HPU1() }

// HPU2 returns the paper's second platform (AMD A6-3650 APU + HD 6530D).
func HPU2() Platform { return hpu.HPU2() }

// NewSim builds a simulated backend for a platform.
func NewSim(p Platform) (*Sim, error) { return hpu.NewSim(p) }

// MustSim is NewSim panicking on error.
func MustSim(p Platform) *Sim { return hpu.MustSim(p) }

// PlatformOption customizes the platform NewHPU builds, starting from the
// HPU1 baseline (or the platform chosen with WithPlatform).
type PlatformOption = hpu.Option

// NewHPU builds a simulated backend from functional options over the HPU1
// baseline: NewHPU() is HPU1, NewHPU(WithPlatform(HPU2()), WithCPUCores(8))
// is HPU2 with eight cores.
func NewHPU(opts ...PlatformOption) (*Sim, error) { return hpu.New(opts...) }

// WithPlatform starts platform construction from a full specification.
func WithPlatform(p Platform) PlatformOption { return hpu.WithPlatform(p) }

// WithPlatformName sets the platform name used in reports.
func WithPlatformName(name string) PlatformOption { return hpu.WithName(name) }

// WithCPUCores sets p, the CPU core count of the model.
func WithCPUCores(cores int) PlatformOption { return hpu.WithCPUCores(cores) }

// WithGPU sets the device's saturation thread count g and single-thread
// speed ratio γ, the §3.2 characterization.
func WithGPU(g int, gamma float64) PlatformOption { return hpu.WithGPU(g, gamma) }

// WithLink sets the transfer cost model λ + δ·w.
func WithLink(lambda, secPerByte float64) PlatformOption { return hpu.WithLink(lambda, secPerByte) }

// NewNative starts a real-goroutine backend; call Close when done.
func NewNative(cfg NativeConfig) (*Native, error) { return native.New(cfg) }

// Analytic model.
type (
	// Machine is the (p, g, γ) triple of Table 2.
	Machine = model.Machine
	// PolyModel is the closed-form §5.2.2 model for f(n) = Θ(n^{log_b a}).
	PolyModel = model.Poly
	// NumericModel is the level-by-level model for arbitrary cost shapes.
	NumericModel = model.Numeric
	// Prediction decomposes a predicted advanced-division makespan.
	Prediction = model.Prediction
)

// NewPolyModel builds a closed-form model.
func NewPolyModel(a, b int, n float64, m Machine) (PolyModel, error) {
	return model.NewPoly(a, b, n, m)
}

// NewNumericModel builds a level-by-level model.
func NewNumericModel(a, b, levels int, f func(float64) float64, leaf float64, m Machine) (NumericModel, error) {
	return model.NewNumeric(a, b, levels, f, leaf, m)
}

// BasicCrossover returns the §5.1 crossover level ⌈log_a(p/γ)⌉ and whether
// the GPU wins at all (γ·g ≥ p).
func BasicCrossover(a int, m Machine) (int, bool) { return model.BasicCrossover(a, m) }

// MachineOf extracts the model machine from a simulated backend.
func MachineOf(be *Sim) Machine {
	pl := be.Platform()
	return Machine{P: pl.CPU.Cores, G: pl.GPU.SatThreads, Gamma: pl.GPU.Gamma}
}

// Modeled is implemented by the built-in algorithms: it exposes the
// model-level cost function of the recurrence T(n) = a·T(n/b) + f(n).
type Modeled interface {
	ModelF() func(float64) float64
	ModelLeaf() float64
}

// PlanAdvanced chooses (α, y) for an algorithm on a simulated backend by
// maximizing GPU work under the closed-form model when the algorithm's cost
// is of the Θ(n^{log_b a}) family, falling back to a numeric makespan search
// otherwise. It mirrors the parameter selection of §5.2.2/§6.4.
func PlanAdvanced(be *Sim, alg Alg) (alpha float64, y int) {
	mach := MachineOf(be)
	L := alg.Levels()
	if m, ok := alg.(Modeled); ok {
		f := m.ModelF()
		// Detect the polynomial family: f(size)/size^{log_b a} constant.
		e := math.Log(float64(alg.Arity())) / math.Log(float64(alg.Shrink()))
		r1 := f(1<<10) / math.Pow(1<<10, e)
		r2 := f(1<<16) / math.Pow(1<<16, e)
		if math.Abs(r1-r2) < 1e-9*math.Abs(r1) {
			if poly, err := model.NewPoly(alg.Arity(), alg.Shrink(),
				math.Pow(float64(alg.Shrink()), float64(L)), mach); err == nil {
				a, yf, _ := poly.Optimum()
				yi := int(yf + 0.5)
				if yi < 0 {
					yi = 0
				}
				if yi > L {
					yi = L
				}
				return a, yi
			}
		}
		if num, err := model.NewNumeric(alg.Arity(), alg.Shrink(), L, f, m.ModelLeaf(), mach); err == nil {
			a, yi, _ := num.BestAdvanced(100)
			return a, yi
		}
	}
	// No cost information: fall back to the paper's mergesort-like shape.
	x, ok := model.BasicCrossover(alg.Arity(), mach)
	if !ok {
		return 1, L
	}
	if x > L {
		x = L
	}
	return float64(mach.P) / float64(mach.G), x
}

// TuneConfig bounds the empirical parameter search (§7's experimental
// alternative to the analytic model).
type TuneConfig = tune.Config

// TuneResult reports a tuned configuration.
type TuneResult = tune.Result

// TuneAdvanced searches (α, y) empirically: trial runs one configuration
// and returns its makespan in seconds.
func TuneAdvanced(trial func(alpha float64, y int) (float64, error), cfg TuneConfig) (TuneResult, error) {
	return tune.Advanced(trial, cfg)
}

// TuneGrainConfig bounds the empirical leaf-coarsening grain search.
type TuneGrainConfig = tune.GrainConfig

// TuneGrainResult reports a tuned grain.
type TuneGrainResult = tune.GrainResult

// TuneGrain searches the power-of-a grain ladder empirically: trial runs
// one configuration with the given WithGrain value and returns its makespan
// in seconds. It is the measured counterpart of GrainAuto's slack heuristic.
func TuneGrain(trial func(grain int) (float64, error), cfg TuneGrainConfig) (TuneGrainResult, error) {
	return tune.Grain(trial, cfg)
}

// RunMultiGPUCtx is the §3.2 multiple-cards extension of the advanced
// division, with cancellation and functional options; use it with
// NewMultiSim (or any backend exposing several devices through GPUs()).
var RunMultiGPUCtx = core.RunMultiGPUCtx

// MultiSim is a simulated HPU with several GPU devices sharing one link.
type MultiSim = hpu.MultiSim

// NewMultiSim builds a simulated HPU with `devices` copies of the
// platform's GPU (HPU1's HD 5970 is physically devices=2).
func NewMultiSim(p Platform, devices int) (*MultiSim, error) {
	return hpu.NewMultiSim(p, devices)
}

// Parameter estimation (§6.4).
type (
	// EstimateResult is one platform row of Table 2.
	EstimateResult = estimate.Result
)

// EstimatePlatform recovers (p, g, γ) by running the §6.4 procedures on the
// simulated platform.
func EstimatePlatform(p Platform) (EstimateResult, error) { return estimate.Platform(p) }

// Built-in algorithms.

// NewMergesort builds the §6 case-study sorter over a copy of data
// (power-of-two length). It supports the §6.3 coalescing transformation.
func NewMergesort(data []int32) (*mergesort.Sorter, error) { return mergesort.New(data) }

// NewMergesortAny builds a sorter for any input length >= 2 (the paper's
// footnote-4 generalization; no coalescing transformation).
func NewMergesortAny(data []int32) (*mergesort.AnySorter, error) { return mergesort.NewAny(data) }

// NewParallelMergesort builds the Fig 9 GPU-only baseline with parallel
// binary-search merges.
func NewParallelMergesort(data []int32) (*mergesort.ParallelSorter, error) {
	return mergesort.NewParallel(data)
}

// NewSum builds the §4.3 divide-and-conquer sum example.
func NewSum(data []int32) (*dcsum.Summer, error) { return dcsum.New(data) }

// NewMaxSubarray builds a maximum-subarray solver.
func NewMaxSubarray(data []int32) (*maxsubarray.Solver, error) { return maxsubarray.New(data) }

// NewKaratsuba builds a Karatsuba polynomial multiplier (a=3, b=2).
func NewKaratsuba(a, b []int32) (*karatsuba.Multiplier, error) { return karatsuba.New(a, b) }

// NewMatMul builds a D&C matrix multiplier (a=8, b=2) with the recursion
// truncated at the given depth.
func NewMatMul(a, b []float64, n, depth int) (*matmul.Multiplier, error) {
	return matmul.New(a, b, n, depth)
}

// NewScan builds an inclusive prefix-sum scanner (a=2, b=2, uniform
// non-divergent combine — the canonical GPU primitive).
func NewScan(data []int32) (*scan.Scanner, error) { return scan.New(data) }

// NewFFT builds a forward Cooley-Tukey transform (a=2, b=2, real divide
// work).
func NewFFT(data []complex128) (*fft.Transform, error) { return fft.New(data) }

// NewInverseFFT builds the inverse transform (scaled by 1/n on Finish).
func NewInverseFFT(data []complex128) (*fft.Transform, error) { return fft.NewInverse(data) }

// NewStrassen builds a Strassen matrix multiplier (a=7, b=2) truncated at
// the given depth.
func NewStrassen(a, b []float64, n, depth int) (*strassen.Multiplier, error) {
	return strassen.New(a, b, n, depth)
}
