// Multi-device serving benchmark: the same GPU-bound 64-job mix served by
// pools of 1, 2 and 4 simulated devices, timed in deterministic virtual
// seconds (each device is an independent hpu.Sim with its own clock; the
// pool's makespan is the slowest device's clock when the last job settles).
// Writes BENCH_multidev.json and exits nonzero if the 2-device pool falls
// short of the 1.6x served-throughput acceptance floor or any per-job
// result diverges from the single-device run.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"repro"
	"repro/internal/workload"
)

// multiBenchEntry is one pool size's measurement.
type multiBenchEntry struct {
	Devices        int      `json:"devices"`
	Jobs           int      `json:"jobs"`
	VirtualSeconds float64  `json:"virtual_seconds"` // slowest device's clock
	Throughput     float64  `json:"throughput_jobs_per_vsec"`
	Speedup        float64  `json:"speedup_vs_single"`
	Placements     []uint64 `json:"placements_per_device"`
}

// multiBenchReport is the BENCH_multidev.json artifact.
type multiBenchReport struct {
	Jobs      int               `json:"jobs"`
	Placement string            `json:"placement"`
	Identical bool              `json:"results_identical_across_pools"`
	Floor     float64           `json:"speedup_floor_2dev"`
	Entries   []multiBenchEntry `json:"entries"`
}

// runMultiDeviceBench measures served throughput against pool size.
func runMultiDeviceBench(outPath string) error {
	const jobs = 64
	deviceCounts := []int{1, 2, 4}
	const floor = 1.6 // 2-device acceptance floor vs 1 device

	// The GPU-bound mix: mergesort at four sizes, fixed seeds, all GPUOnly.
	// Sizes rotate through blocks of four (a Latin square over i/4) so every
	// residue class of job indices mod 2 or mod 4 carries the same total
	// work: the mix stays balanced however the pool interleaves devices.
	inputs := make([][]int32, jobs)
	for i := range inputs {
		logN := 12 + (i+i/4)%4
		inputs[i] = workload.Uniform(1<<logN, int64(i+1))
	}

	report := multiBenchReport{Jobs: jobs, Placement: hybriddc.PlaceModeledWork.String(),
		Identical: true, Floor: floor}
	var baseline [][]int32  // single-device outputs, the identity reference
	var baseSeconds float64 // single-device virtual makespan

	for _, devs := range deviceCounts {
		sims := make([]*hybriddc.Sim, devs)
		pool := make([]hybriddc.Backend, devs)
		for i := range pool {
			s, err := hybriddc.NewSim(hybriddc.HPU1())
			if err != nil {
				return err
			}
			sims[i] = s
			pool[i] = s
		}
		srv, err := hybriddc.NewServerPool(pool, hybriddc.WithQueueDepth(jobs+8))
		if err != nil {
			return err
		}

		handles := make([]*hybriddc.JobHandle, jobs)
		sorters := make([]interface{ Result() []int32 }, jobs)
		for i := range inputs {
			s, err := hybriddc.NewMergesort(inputs[i])
			if err != nil {
				return err
			}
			sorters[i] = s
			handles[i], err = srv.Submit(context.Background(),
				hybriddc.JobSpec{Alg: s, Strategy: hybriddc.JobGPUOnly})
			if err != nil {
				return fmt.Errorf("bench-multi: submit job %d to %d-device pool: %w", i, devs, err)
			}
		}
		outputs := make([][]int32, jobs)
		for i, h := range handles {
			if _, err := h.Report(); err != nil {
				return fmt.Errorf("bench-multi: job %d on %d-device pool: %w", i, devs, err)
			}
			outputs[i] = sorters[i].Result()
		}
		st := srv.Stats()
		if err := srv.Close(); err != nil {
			return err
		}

		makespan := 0.0
		for _, s := range sims {
			if now := s.Now(); now > makespan {
				makespan = now
			}
		}
		entry := multiBenchEntry{Devices: devs, Jobs: jobs, VirtualSeconds: makespan,
			Throughput: float64(jobs) / makespan}
		for _, d := range st.Devices {
			entry.Placements = append(entry.Placements, d.Placements)
		}

		if baseline == nil {
			baseline = outputs
			baseSeconds = makespan
			entry.Speedup = 1
		} else {
			entry.Speedup = baseSeconds / makespan
			for i := range outputs {
				if len(outputs[i]) != len(baseline[i]) {
					report.Identical = false
					break
				}
				for j := range outputs[i] {
					if outputs[i][j] != baseline[i][j] {
						report.Identical = false
						break
					}
				}
			}
		}
		report.Entries = append(report.Entries, entry)
		fmt.Printf("bench-multi: %d device(s): %.3f virtual s, %.2f jobs/vs, speedup %.2fx, placements %v\n",
			devs, entry.VirtualSeconds, entry.Throughput, entry.Speedup, entry.Placements)
	}

	if outPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("bench-multi: results written to %s\n", outPath)
	}

	if !report.Identical {
		return fmt.Errorf("bench-multi: pool results diverge from the single-device run")
	}
	var two multiBenchEntry
	for _, e := range report.Entries {
		if e.Devices == 2 {
			two = e
		}
	}
	if two.Speedup < floor {
		return fmt.Errorf("bench-multi: 2-device speedup %.2fx below the %.1fx floor", two.Speedup, floor)
	}
	return nil
}
