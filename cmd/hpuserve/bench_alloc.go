package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"testing"
	"time"

	"repro"
	"repro/internal/api/client"
	"repro/internal/core"
	"repro/internal/mempool"
	"repro/internal/serve"
	"repro/internal/workload"
)

// allocStats is one measured configuration of --bench-alloc.
type allocStats struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// benchAllocReport is BENCH_alloc.json: the allocation profile of the
// serving hot paths with the buffer pool off vs on, the JSON vs binary API
// round trip at 1M elements, and the pass/fail gates.
type benchAllocReport struct {
	Submit struct {
		PoolOff allocStats `json:"pool_off"`
		PoolOn  allocStats `json:"pool_on"`
	} `json:"submit"`
	FusedGPU struct {
		PoolOff         allocStats `json:"pool_off"`
		PoolOn          allocStats `json:"pool_on"`
		AllocsReduction float64    `json:"allocs_reduction"`
		BytesReduction  float64    `json:"bytes_reduction"`
	} `json:"fused_gpu"`
	APIRoundTrip1M struct {
		JSON    allocStats `json:"json"`
		Binary  allocStats `json:"binary"`
		Speedup float64    `json:"speedup"`
	} `json:"api_roundtrip_1m"`
	Gates struct {
		SubmitNoWorse  bool `json:"submit_pool_allocs_no_worse"`
		FusedHalved    bool `json:"fused_gpu_halved"`
		BinaryTwice    bool `json:"binary_roundtrip_2x"`
		BinaryBitExact bool `json:"binary_bit_exact"`
	} `json:"gates"`
}

func stats(r testing.BenchmarkResult) allocStats {
	return allocStats{
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// benchSubmit measures one served mergesort job end to end on a native
// backend: build the instance, submit, wait, release.
func benchSubmit() (testing.BenchmarkResult, error) {
	be, err := hybriddc.NewNative(hybriddc.NativeConfig{CPUWorkers: 2, DeviceLanes: 2})
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	defer be.Close()
	srv, err := hybriddc.NewServer(be, hybriddc.WithQueueDepth(4))
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	defer srv.Close()
	data := workload.Uniform(1<<12, 7)
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			alg, err := hybriddc.NewMergesort(data)
			if err != nil {
				b.Fatal(err)
			}
			h, err := srv.Submit(context.Background(), serve.Job{Alg: alg, Strategy: serve.BreadthFirstCPU})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := h.Report(); err != nil {
				b.Fatal(err)
			}
			core.ReleaseAlg(alg)
		}
	})
	return res, nil
}

// benchFusedGPU measures one fused launch of 4 same-shape mergesort members
// on the HPU1 simulator — the executor the serving layer's fusion path runs.
func benchFusedGPU() testing.BenchmarkResult {
	const members, n = 4, 1 << 14
	datas := make([][]int32, members)
	for i := range datas {
		datas[i] = workload.Uniform(n, int64(100+i))
	}
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			be := hybriddc.MustSim(hybriddc.HPU1())
			algs := make([]core.GPUAlg, members)
			for m := range algs {
				s, err := hybriddc.NewMergesort(datas[m])
				if err != nil {
					b.Fatal(err)
				}
				algs[m] = s
			}
			if _, err := core.RunFusedGPUCtx(context.Background(), be, algs); err != nil {
				b.Fatal(err)
			}
			for _, a := range algs {
				core.ReleaseAlg(a)
			}
		}
	})
}

// benchAPIRoundTrip measures one remote scan job at 1M elements over real
// TCP: submit the payload, wait for the 1M-element result. The same data
// runs both wire formats; the returned flag reports bit-identity.
func benchAPIRoundTrip() (jsonRes, binRes testing.BenchmarkResult, identical bool, err error) {
	be, err := hybriddc.NewNative(hybriddc.NativeConfig{CPUWorkers: 4, DeviceLanes: 4})
	if err != nil {
		return jsonRes, binRes, false, err
	}
	defer be.Close()
	srv, err := hybriddc.NewServer(be, hybriddc.WithQueueDepth(4))
	if err != nil {
		return jsonRes, binRes, false, err
	}
	defer srv.Close()
	apiSrv, err := hybriddc.NewAPIServer(srv, hybriddc.WithAPIMaxBodyBytes(64<<20))
	if err != nil {
		return jsonRes, binRes, false, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return jsonRes, binRes, false, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- apiSrv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		apiSrv.Shutdown(ctx)
		<-serveDone
	}()

	base := "http://" + ln.Addr().String()
	data := workload.Uniform(1<<20, 42)
	req := hybriddc.APIJobRequest{Algorithm: "scan", Data: data, Strategy: "bf-cpu"}

	run := func(cli *client.Client) (testing.BenchmarkResult, []int64, error) {
		var last []int64
		var benchErr error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h, err := cli.Submit(context.Background(), req)
				if err != nil {
					benchErr = err
					b.Fatal(err)
				}
				out, err := h.Wait(context.Background())
				if err != nil {
					benchErr = err
					b.Fatal(err)
				}
				last = out.Scan
			}
		})
		return res, last, benchErr
	}

	jsonCli := client.New(base)
	binCli := client.New(base, client.WithBinary())
	jsonRes, jsonOut, err := run(jsonCli)
	if err != nil {
		return jsonRes, binRes, false, fmt.Errorf("bench-alloc JSON round trip: %w", err)
	}
	binRes, binOut, err := run(binCli)
	if err != nil {
		return jsonRes, binRes, false, fmt.Errorf("bench-alloc binary round trip: %w", err)
	}
	identical = len(jsonOut) == len(binOut)
	for i := 0; identical && i < len(jsonOut); i++ {
		identical = jsonOut[i] == binOut[i]
	}
	return jsonRes, binRes, identical, nil
}

// runBenchAlloc is --bench-alloc: the allocation-regression gate for the
// zero-copy hot path. It profiles the served submit path and the fused GPU
// executor with the buffer pool disabled vs enabled, races the JSON and
// binary API round trips at 1M elements, writes BENCH_alloc.json, and exits
// nonzero when pooling regresses allocations, the fused path's allocation
// footprint is not at least halved, the binary wire is not at least 2x
// faster, or the two wire formats disagree.
func runBenchAlloc(out string) error {
	if !mempool.Enabled() {
		return fmt.Errorf("bench-alloc: buffer pool disabled (HPU_NOPOOL=1); the comparison needs both states")
	}
	var rep benchAllocReport

	mempool.SetEnabled(false)
	offSubmit, err := benchSubmit()
	if err != nil {
		mempool.SetEnabled(true)
		return err
	}
	offFused := benchFusedGPU()
	mempool.SetEnabled(true)
	mempool.ResetAll()
	onSubmit, err := benchSubmit()
	if err != nil {
		return err
	}
	onFused := benchFusedGPU()

	rep.Submit.PoolOff = stats(offSubmit)
	rep.Submit.PoolOn = stats(onSubmit)
	rep.FusedGPU.PoolOff = stats(offFused)
	rep.FusedGPU.PoolOn = stats(onFused)
	if off := rep.FusedGPU.PoolOff.AllocsPerOp; off > 0 {
		rep.FusedGPU.AllocsReduction = 1 - float64(rep.FusedGPU.PoolOn.AllocsPerOp)/float64(off)
	}
	if off := rep.FusedGPU.PoolOff.BytesPerOp; off > 0 {
		rep.FusedGPU.BytesReduction = 1 - float64(rep.FusedGPU.PoolOn.BytesPerOp)/float64(off)
	}

	jsonRT, binRT, identical, err := benchAPIRoundTrip()
	if err != nil {
		return err
	}
	rep.APIRoundTrip1M.JSON = stats(jsonRT)
	rep.APIRoundTrip1M.Binary = stats(binRT)
	if binRT.NsPerOp() > 0 {
		rep.APIRoundTrip1M.Speedup = float64(jsonRT.NsPerOp()) / float64(binRT.NsPerOp())
	}

	rep.Gates.SubmitNoWorse = rep.Submit.PoolOn.AllocsPerOp <= rep.Submit.PoolOff.AllocsPerOp
	// The fused gate is on bytes/op: pooling recycles the large buffers, so
	// the byte footprint is where the halving shows; allocs/op is reported
	// alongside (the remainder is per-chunk closures, not payload buffers).
	rep.Gates.FusedHalved = rep.FusedGPU.BytesReduction >= 0.5
	rep.Gates.BinaryTwice = rep.APIRoundTrip1M.Speedup >= 2
	rep.Gates.BinaryBitExact = identical

	if out != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("bench-alloc: submit %d -> %d allocs/op; fused %d -> %d allocs/op, %.0f%% fewer bytes/op; api 1M round trip %.2fx via binary (bit-exact: %v)\n",
		rep.Submit.PoolOff.AllocsPerOp, rep.Submit.PoolOn.AllocsPerOp,
		rep.FusedGPU.PoolOff.AllocsPerOp, rep.FusedGPU.PoolOn.AllocsPerOp,
		100*rep.FusedGPU.BytesReduction, rep.APIRoundTrip1M.Speedup, identical)

	switch {
	case !rep.Gates.SubmitNoWorse:
		return fmt.Errorf("bench-alloc: pooling regressed submit allocations: %d -> %d allocs/op",
			rep.Submit.PoolOff.AllocsPerOp, rep.Submit.PoolOn.AllocsPerOp)
	case !rep.Gates.FusedHalved:
		return fmt.Errorf("bench-alloc: fused GPU bytes/op reduction %.0f%% below the 50%% floor",
			100*rep.FusedGPU.BytesReduction)
	case !rep.Gates.BinaryTwice:
		return fmt.Errorf("bench-alloc: binary round trip speedup %.2fx below the 2x floor", rep.APIRoundTrip1M.Speedup)
	case !rep.Gates.BinaryBitExact:
		return fmt.Errorf("bench-alloc: binary and JSON results differ")
	}
	return nil
}
