// Auto-strategy benchmark: Strategy Auto against every fixed strategy on
// the simulated HPU1, across a mergesort size sweep spanning the CPU/GPU
// crossover, timed in deterministic virtual seconds. The auto server is
// warmed with a short fixed-strategy training phase (the calibrator learns
// from regular traffic, not just auto jobs), then each size is measured
// once. Writes BENCH_auto.json and exits nonzero unless:
//
//   - auto is within 10% of the best fixed strategy at every size,
//   - auto beats the worst fixed strategy by at least 1.5x at one or more
//     sizes (the cost of shipping one static choice to every size), and
//   - every measured run's output is bit-identical to the plain-Go sort.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"repro"
	"repro/internal/model"
	"repro/internal/workload"
)

// autoBenchLogSizes spans the crossover on HPU1: at 2^12 the device path
// drowns in launch and transfer overhead, by 2^20 it dominates the CPU.
var autoBenchLogSizes = []int{12, 14, 16, 18, 20}

// autoBenchEntry is one input size's measurements.
type autoBenchEntry struct {
	N              int                `json:"n"`
	AutoSeconds    float64            `json:"auto_virtual_seconds"`
	ChosenStrategy string             `json:"chosen_strategy"`
	Fixed          map[string]float64 `json:"fixed_virtual_seconds"`
	BestFixed      string             `json:"best_fixed"`
	WorstFixed     string             `json:"worst_fixed"`
	AutoOverBest   float64            `json:"auto_over_best"`  // gate: <= 1.10
	WorstOverAuto  float64            `json:"worst_over_auto"` // gate: >= 1.5 somewhere
}

// autoBenchReport is the BENCH_auto.json artifact.
type autoBenchReport struct {
	Platform     string           `json:"platform"`
	Algorithm    string           `json:"algorithm"`
	TrainPerSide int              `json:"training_jobs_per_side"`
	WithinFactor float64          `json:"gate_auto_over_best_max"`
	BeatsFactor  float64          `json:"gate_worst_over_auto_min"`
	BitExact     bool             `json:"bit_exact"`
	Entries      []autoBenchEntry `json:"entries"`
}

// sortedCopy is the plain-Go ground truth every measured run must match.
func sortedCopy(data []int32) []int32 {
	out := append([]int32(nil), data...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// runSortJob submits one mergesort job, waits, and verifies the result is
// bit-identical to want. It returns the job's report and the virtual-time
// makespan (the sim clock advance).
func runSortJob(srv *hybriddc.Server, sim *hybriddc.Sim, data, want []int32,
	job hybriddc.JobSpec) (hybriddc.Report, float64, error) {
	s, err := hybriddc.NewMergesort(data)
	if err != nil {
		return hybriddc.Report{}, 0, err
	}
	job.Alg = s
	before := sim.Now()
	h, err := srv.Submit(context.Background(), job)
	if err != nil {
		return hybriddc.Report{}, 0, err
	}
	rep, err := h.Report()
	if err != nil {
		return rep, 0, err
	}
	got := s.Result()
	for i := range want {
		if got[i] != want[i] {
			return rep, 0, fmt.Errorf("bench-auto: %s result diverges from ground truth at %d (n=%d)",
				job.Strategy, i, len(data))
		}
	}
	return rep, sim.Now() - before, nil
}

// staticParams derives the paper's offline parameter choices for the fixed
// basic and advanced strategies from the analytic model — the crossover x
// minimizing PredictBasic and the (α, y) from BestAdvanced.
func staticParams(n int) (crossover int, alpha float64, y int, err error) {
	levels := 0
	for s := n; s > 1; s >>= 1 {
		levels++
	}
	num, err := model.NewNumeric(2, 2, levels,
		func(s float64) float64 { return 2 * s }, 0,
		model.Machine{P: 4, G: 4096, Gamma: 1.0 / 160})
	if err != nil {
		return 0, 0, 0, err
	}
	best := math.Inf(1)
	for x := 0; x <= levels; x++ {
		if t, perr := num.PredictBasic(x); perr == nil && t < best {
			best, crossover = t, x
		}
	}
	alpha, y, _ = num.BestAdvanced(20)
	return crossover, alpha, y, nil
}

// runAutoBench measures Strategy Auto against the fixed strategies.
func runAutoBench(outPath string) error {
	const (
		trainPerSide = 3    // fixed-strategy warmup jobs per side per size
		withinFactor = 1.10 // auto vs best fixed, every size
		beatsFactor  = 1.5  // worst fixed vs auto, at least one size
	)
	report := autoBenchReport{
		Platform: "HPU1", Algorithm: "mergesort",
		TrainPerSide: trainPerSide,
		WithinFactor: withinFactor, BeatsFactor: beatsFactor,
		BitExact: true,
	}

	// The auto server: one sim, one long-lived tuner. The training phase
	// feeds both sides of every size class (the calibrator learns from any
	// metered job, whatever its strategy), so the measured auto decisions
	// run on fitted rates, not the cold-start analytic model.
	autoSim, err := hybriddc.NewSim(hybriddc.HPU1())
	if err != nil {
		return err
	}
	autoSrv, err := hybriddc.NewServer(autoSim, hybriddc.WithAutoTuner(hybriddc.NewAutoTuner()))
	if err != nil {
		return err
	}
	defer autoSrv.Close()

	type fixedJob struct {
		name string
		job  func(n int) (hybriddc.JobSpec, error)
	}
	fixed := []fixedJob{
		{"bf-cpu", func(int) (hybriddc.JobSpec, error) {
			return hybriddc.JobSpec{Strategy: hybriddc.JobBreadthFirstCPU}, nil
		}},
		{"gpu-only", func(int) (hybriddc.JobSpec, error) {
			return hybriddc.JobSpec{Strategy: hybriddc.JobGPUOnly}, nil
		}},
		{"basic-hybrid", func(n int) (hybriddc.JobSpec, error) {
			x, _, _, err := staticParams(n)
			return hybriddc.JobSpec{Strategy: hybriddc.JobBasicHybrid, Crossover: x}, err
		}},
		{"advanced-hybrid", func(n int) (hybriddc.JobSpec, error) {
			_, a, y, err := staticParams(n)
			return hybriddc.JobSpec{Strategy: hybriddc.JobAdvancedHybrid, Alpha: a, Y: y}, err
		}},
	}

	// Train: per size, trainPerSide rounds over every fixed strategy. The
	// mix matters: fitted rates are EWMAs over whatever shapes actually ran,
	// and the hybrid strategies' phase shapes (depth-first CPU subtrees,
	// per-level kernel launches over a sub-range) price accurately only when
	// runs of those shapes contributed to the rates.
	for _, logN := range autoBenchLogSizes {
		n := 1 << logN
		for i := 0; i < trainPerSide; i++ {
			data := workload.Uniform(n, int64(1000*logN+i))
			want := sortedCopy(data)
			for _, f := range fixed {
				job, err := f.job(n)
				if err != nil {
					return err
				}
				if _, _, err := runSortJob(autoSrv, autoSim, data, want, job); err != nil {
					return err
				}
			}
		}
	}

	// Measure: auto on the warm server, each fixed strategy on a fresh sim
	// (so every measurement is a clean single-job virtual makespan).
	for _, logN := range autoBenchLogSizes {
		n := 1 << logN
		data := workload.Uniform(n, int64(7000+logN))
		want := sortedCopy(data)

		rep, autoSecs, err := runSortJob(autoSrv, autoSim, data, want,
			hybriddc.JobSpec{Strategy: hybriddc.JobAuto})
		if err != nil {
			return err
		}
		entry := autoBenchEntry{N: n, AutoSeconds: autoSecs,
			ChosenStrategy: rep.AutoStrategy, Fixed: map[string]float64{}}

		bestSecs, worstSecs := math.Inf(1), 0.0
		for _, f := range fixed {
			sim, err := hybriddc.NewSim(hybriddc.HPU1())
			if err != nil {
				return err
			}
			srv, err := hybriddc.NewServer(sim)
			if err != nil {
				return err
			}
			job, err := f.job(n)
			if err == nil {
				_, secs, jerr := runSortJob(srv, sim, data, want, job)
				err = jerr
				entry.Fixed[f.name] = secs
				if secs < bestSecs {
					bestSecs, entry.BestFixed = secs, f.name
				}
				if secs > worstSecs {
					worstSecs, entry.WorstFixed = secs, f.name
				}
			}
			srv.Close()
			if err != nil {
				return err
			}
		}
		entry.AutoOverBest = entry.AutoSeconds / bestSecs
		entry.WorstOverAuto = worstSecs / entry.AutoSeconds
		report.Entries = append(report.Entries, entry)
		fmt.Printf("bench-auto: n=2^%-2d auto %.4gs via %-15s best %-15s %.4gs (auto/best %.3f)  worst %-15s %.4gs (worst/auto %.2fx)\n",
			logN, entry.AutoSeconds, entry.ChosenStrategy,
			entry.BestFixed, bestSecs, entry.AutoOverBest,
			entry.WorstFixed, worstSecs, entry.WorstOverAuto)
	}

	if outPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("bench-auto: results written to %s\n", outPath)
	}

	beatsWorst := false
	for _, e := range report.Entries {
		if e.AutoOverBest > withinFactor {
			return fmt.Errorf("bench-auto: n=%d auto %.4gs is %.2fx the best fixed (%s), over the %.2fx gate",
				e.N, e.AutoSeconds, e.AutoOverBest, e.BestFixed, withinFactor)
		}
		if e.WorstOverAuto >= beatsFactor {
			beatsWorst = true
		}
	}
	if !beatsWorst {
		return fmt.Errorf("bench-auto: no size where auto beats the worst fixed strategy by %.1fx", beatsFactor)
	}
	return nil
}
