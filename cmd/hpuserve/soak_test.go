package main

// Go-test wrappers around the 240-job soaks, so `go test ./...` exercises
// the chaos and remote-serving paths without a separate make target — and
// `go test -short ./...` skips them, keeping the short suite's wall clock
// developer-sized (under ~30s). CI runs both: the short sweep on every
// check, the full soaks in their own make targets.

import (
	"runtime"
	"testing"
)

// TestChaosSoak runs the full single-device fault-injection soak: 240 jobs
// at a 20% per-attempt fault rate, every surviving result verified against
// ground truth.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping 240-job chaos soak in -short mode")
	}
	err := runChaos(chaosConfig{
		Jobs:      240,
		FaultRate: 0.2,
		Seed:      1,
		Workers:   runtime.GOMAXPROCS(0),
		Lanes:     64,
		Devices:   1,
	}, "")
	if err != nil {
		t.Fatalf("chaos soak: %v", err)
	}
}

// TestChaosPoolSoak runs the pool variant: faults injected into the
// highest-id device only, asserting breaker isolation and auto-drain.
func TestChaosPoolSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping 240-job pool chaos soak in -short mode")
	}
	err := runChaos(chaosConfig{
		Jobs:      240,
		FaultRate: 0.2,
		Seed:      1,
		Workers:   runtime.GOMAXPROCS(0),
		Lanes:     64,
		Devices:   2,
	}, "")
	if err != nil {
		t.Fatalf("pool chaos soak: %v", err)
	}
}

// TestAPISmokeSoak runs the remote-serving self-check over real TCP:
// concurrent clients, bit-exact results, observed 429 backpressure, /events
// progress, and a SIGTERM drain.
func TestAPISmokeSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping remote-serving soak in -short mode")
	}
	err := runAPISmoke(apiConfig{
		Addr:     "127.0.0.1:0",
		Workers:  runtime.GOMAXPROCS(0),
		Lanes:    64,
		Devices:  1,
		InFlight: 2,
		QDepth:   4,
	}, 16, 2, 1)
	if err != nil {
		t.Fatalf("api smoke soak: %v", err)
	}
}
